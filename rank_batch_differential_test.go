package lapushdb

// Differential tests for batched evaluation: RankBatch shares subplan
// results across the batch's queries, and the contract is that sharing
// is invisible — every query's answers are bit-identical (values,
// order, and float64 score bits) to a standalone Rank with the same
// options, at every Workers setting. Run under -race these also
// exercise the shared memo for data races between plan workers.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/engine/oracle"
	"lapushdb/internal/workload"
)

// assertBatchMatchesRank evaluates the queries one at a time and as a
// batch, requiring bit-identical answers, and returns the batch stats.
func assertBatchMatchesRank(t *testing.T, label string, db *DB, queries []string, workers int) BatchStats {
	t.Helper()
	stats := &RankStats{}
	results := db.RankBatch(queries, &Options{Workers: workers, Stats: stats})
	if len(results) != len(queries) {
		t.Fatalf("%s: %d results for %d queries", label, len(results), len(queries))
	}
	for i, query := range queries {
		want, err := db.Rank(query, &Options{Workers: workers})
		if err != nil {
			t.Fatalf("%s: standalone Rank(%q): %v", label, query, err)
		}
		if results[i].Err != nil {
			t.Fatalf("%s: batch query %d (%q): %v", label, i, query, results[i].Err)
		}
		got := results[i].Answers
		if len(got) != len(want) {
			t.Fatalf("%s: query %d: %d answers vs %d standalone", label, i, len(got), len(want))
		}
		for j := range want {
			if math.Float64bits(got[j].Score) != math.Float64bits(want[j].Score) {
				t.Fatalf("%s: query %d answer %d: score bits %x != %x (%v vs %v)",
					label, i, j, math.Float64bits(got[j].Score), math.Float64bits(want[j].Score),
					got[j].Score, want[j].Score)
			}
			if len(got[j].Values) != len(want[j].Values) {
				t.Fatalf("%s: query %d answer %d: values %v vs %v", label, i, j, got[j].Values, want[j].Values)
			}
			for k := range want[j].Values {
				if got[j].Values[k] != want[j].Values[k] {
					t.Fatalf("%s: query %d answer %d: values %v vs %v", label, i, j, got[j].Values, want[j].Values)
				}
			}
		}
	}
	return BatchStats{SharedSubplanHits: stats.SharedSubplanHits, SharedSubplanMisses: stats.SharedSubplanMisses}
}

// TestRankBatchDifferentialChain runs overlapping chain queries — the
// full 3-chain, its 2-chain prefix and suffix, and a duplicate of the
// full query — and requires bit-identical answers plus at least one
// shared-subplan hit (the duplicate reuses the first query's work
// wholesale).
func TestRankBatchDifferentialChain(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	edb, q := workload.Chain(3, 2000, 300, 0.5, rng)
	db := fromEngineDB(t, edb)
	queries := []string{
		q.String(),
		"q(x0, x2) :- R1(x0, x1), R2(x1, x2)",
		"q(x1, x3) :- R2(x1, x2), R3(x2, x3)",
		q.String(), // duplicate: full cross-query reuse
	}
	for _, w := range []int{1, 4} {
		bs := assertBatchMatchesRank(t, "chain3", db, queries, w)
		if bs.SharedSubplanHits == 0 {
			t.Errorf("w=%d: no shared subplan hits across overlapping chain queries", w)
		}
	}
}

// TestRankBatchDifferentialStar runs the Boolean star query twice plus
// a projection variant over the same relations.
func TestRankBatchDifferentialStar(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	edb, q := workload.Star(3, 1500, 200, 0.5, rng)
	db := fromEngineDB(t, edb)
	queries := []string{
		q.String(),
		"q(x1) :- R1('a', x1), R2(x2), R3(x3), R0(x1, x2, x3)",
		q.String(),
	}
	for _, w := range []int{1, 4} {
		bs := assertBatchMatchesRank(t, "star3", db, queries, w)
		if bs.SharedSubplanHits == 0 {
			t.Errorf("w=%d: no shared subplan hits on duplicated star query", w)
		}
	}
}

// TestRankBatchDifferentialTPCH runs two selection variants of the
// TPC-H supplier query plus a duplicate.
func TestRankBatchDifferentialTPCH(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	tp := workload.NewTPCH(0.02, 0.1, rng)
	db := fromEngineDB(t, tp.DB)
	queries := []string{
		tp.Query(tp.Suppliers, "%red%").String(),
		tp.Query(tp.Suppliers, "%green%").String(),
		tp.Query(tp.Suppliers, "%red%").String(),
	}
	for _, w := range []int{1, 4} {
		bs := assertBatchMatchesRank(t, "tpch", db, queries, w)
		if bs.SharedSubplanHits == 0 {
			t.Errorf("w=%d: no shared subplan hits on duplicated TPC-H query", w)
		}
	}
}

// TestRankBatchOracleDifferential cross-checks the executor the batch
// path rides on: for each batch workload shape, the columnar executor's
// plan evaluation is bit-identical to the retained row-at-a-time oracle
// at Workers 1 and 4, with the batch's optimization flags on.
func TestRankBatchOracleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	chainDB, chainQ := workload.Chain(3, 2000, 300, 0.5, rng)
	starDB, starQ := workload.Star(3, 1500, 200, 0.5, rng)
	tp := workload.NewTPCH(0.02, 0.1, rng)
	for _, tc := range []struct {
		label string
		db    *engine.DB
		q     string
	}{
		{"chain3", chainDB, chainQ.String()},
		{"star3", starDB, starQ.String()},
		{"tpch", tp.DB, tp.Query(tp.Suppliers, "%red%").String()},
	} {
		q := cq.MustParse(tc.q)
		plans := core.MinimalPlans(q, nil)
		for _, w := range []int{1, 4} {
			opts := engine.Options{Workers: w, ReuseSubplans: true, SemiJoin: true}
			got := engine.EvalPlans(tc.db, q, plans, opts)
			want := oracle.EvalPlans(tc.db, q, plans, opts)
			if got.Len() != want.Len() {
				t.Fatalf("%s/w=%d: %d rows vs oracle %d", tc.label, w, got.Len(), want.Len())
			}
			for i := 0; i < want.Len(); i++ {
				gr, wr := got.Row(i), want.Row(i)
				for j := range wr {
					if gr[j] != wr[j] {
						t.Fatalf("%s/w=%d: row %d differs: %v vs %v", tc.label, w, i, gr, wr)
					}
				}
				if math.Float64bits(got.Score(i)) != math.Float64bits(want.Score(i)) {
					t.Fatalf("%s/w=%d: row %d score bits %x != oracle %x",
						tc.label, w, i, math.Float64bits(got.Score(i)), math.Float64bits(want.Score(i)))
				}
			}
		}
	}
}

// TestRankBatchPrepared pins the server's path: prepared statements
// evaluated through a Batch share subplan results and stay
// bit-identical to standalone RankPrepared.
func TestRankBatchPrepared(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	edb, q := workload.Chain(3, 1500, 250, 0.5, rng)
	db := fromEngineDB(t, edb)
	p, err := db.Prepare(q.String(), nil)
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.RankPrepared(context.Background(), p, nil)
	if err != nil {
		t.Fatal(err)
	}
	b := db.NewBatch(nil)
	for round := 0; round < 2; round++ {
		got, err := b.RankPrepared(context.Background(), p)
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		if len(got) != len(want) {
			t.Fatalf("round %d: %d answers vs %d", round, len(got), len(want))
		}
		for i := range want {
			if math.Float64bits(got[i].Score) != math.Float64bits(want[i].Score) {
				t.Fatalf("round %d answer %d: score %v != %v", round, i, got[i].Score, want[i].Score)
			}
		}
	}
	if hits := b.Stats().SharedSubplanHits; hits == 0 {
		t.Fatal("repeated prepared statement produced no shared subplan hits")
	}
}

// TestRankBatchBudgetIsolation checks the failure contract: with a
// batch-wide row budget small enough to trip, the failing query reports
// ErrBudget in its own slot while earlier queries' results survive.
func TestRankBatchBudgetIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	edb, q := workload.Chain(3, 2000, 300, 0.5, rng)
	db := fromEngineDB(t, edb)
	results := db.RankBatch([]string{q.String(), q.String()}, &Options{MaxIntermediateRows: 1})
	for i, r := range results {
		if r.Err == nil {
			t.Fatalf("query %d: expected budget error, got %d answers", i, len(r.Answers))
		}
	}
	// A later batch with no budget is unaffected.
	results = db.RankBatch([]string{q.String()}, nil)
	if results[0].Err != nil {
		t.Fatalf("fresh batch: %v", results[0].Err)
	}
	if len(results[0].Answers) == 0 {
		t.Fatal("fresh batch: no answers")
	}
}
