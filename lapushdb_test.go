package lapushdb

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// movieDB builds a small uncertain movie-recommendation database used
// across the façade tests.
func movieDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	likes, err := db.CreateRelation("Likes", "user", "movie")
	if err != nil {
		t.Fatal(err)
	}
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	if err != nil {
		t.Fatal(err)
	}
	fan, err := db.CreateRelation("Fan", "actor")
	if err != nil {
		t.Fatal(err)
	}
	must := func(err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	must(likes.Insert(0.9, "ann", "heat"))
	must(likes.Insert(0.5, "bob", "heat"))
	must(likes.Insert(0.4, "bob", "ronin"))
	must(stars.Insert(0.8, "heat", "deniro"))
	must(stars.Insert(0.7, "ronin", "deniro"))
	must(stars.Insert(0.3, "heat", "pacino"))
	must(fan.Insert(0.6, "deniro"))
	must(fan.Insert(0.9, "pacino"))
	return db
}

func TestRankDissociationUpperBoundsExact(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	diss, err := db.Rank(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	ex, err := db.Rank(q, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	if len(diss) != 2 || len(ex) != 2 {
		t.Fatalf("answers: diss=%d exact=%d, want 2", len(diss), len(ex))
	}
	score := func(as []Answer, v string) float64 {
		for _, a := range as {
			if a.Values[0] == v {
				return a.Score
			}
		}
		t.Fatalf("answer %s missing", v)
		return 0
	}
	for _, u := range []string{"ann", "bob"} {
		if score(diss, u) < score(ex, u)-1e-12 {
			t.Errorf("%s: dissociation %v below exact %v", u, score(diss, u), score(ex, u))
		}
	}
	// Same ranking on this instance.
	if diss[0].Values[0] != ex[0].Values[0] {
		t.Errorf("rankings disagree: %v vs %v", diss[0], ex[0])
	}
}

func TestRankAllMethodsAgreeOnSupport(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	for _, m := range []Method{Dissociation, Exact, MonteCarlo, LineageSize, Deterministic} {
		as, err := db.Rank(q, &Options{Method: m, MCSamples: 200})
		if err != nil {
			t.Fatalf("method %d: %v", m, err)
		}
		if len(as) != 2 {
			t.Errorf("method %d: %d answers, want 2", m, len(as))
		}
	}
}

func TestOptimizationsGiveSameScores(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	base, err := db.Rank(q, &Options{DisableOpt1: true, DisableOpt2: true, DisableOpt3: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		{},
		{DisableOpt1: true},
		{DisableOpt2: true},
		{DisableOpt3: true},
		{DisableOpt1: true, DisableOpt3: true},
	} {
		got, err := db.Rank(q, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range base {
			if got[i].Values[0] != base[i].Values[0] || math.Abs(got[i].Score-base[i].Score) > 1e-12 {
				t.Errorf("opts %+v: answer %d = %+v, want %+v", opts, i, got[i], base[i])
			}
		}
	}
}

func TestExplainUnsafeQuery(t *testing.T) {
	db := movieDB(t)
	ex, err := db.Explain("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)")
	if err != nil {
		t.Fatal(err)
	}
	if ex.Safe {
		t.Error("3-chain-shaped query should be unsafe")
	}
	if len(ex.Plans) != 2 {
		t.Errorf("plans = %d, want 2", len(ex.Plans))
	}
	if len(ex.Dissociations) != len(ex.Plans) {
		t.Error("dissociations should parallel plans")
	}
	if !strings.Contains(ex.SinglePlan, "min[") {
		t.Errorf("single plan should contain min: %s", ex.SinglePlan)
	}
}

func TestExplainSafeQuery(t *testing.T) {
	db := movieDB(t)
	ex, err := db.Explain("q(movie) :- Stars(movie, actor), Fan(actor)")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Safe {
		t.Error("query should be safe")
	}
	if len(ex.Plans) != 1 {
		t.Errorf("plans = %d, want 1", len(ex.Plans))
	}
}

func TestSchemaKnowledgeChangesPlans(t *testing.T) {
	db := Open()
	r, _ := db.CreateRelation("R", "x")
	s, _ := db.CreateRelation("S", "x", "y")
	u, _ := db.CreateDeterministicRelation("T", "y")
	_ = r.Insert(0.5, 1)
	_ = s.Insert(0.5, 1, 2)
	_ = u.Insert(1, 2)
	ex, err := db.Explain("q() :- R(x), S(x, y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !ex.Safe || len(ex.Plans) != 1 {
		t.Errorf("with deterministic T the query should be safe with 1 plan; got safe=%v plans=%d", ex.Safe, len(ex.Plans))
	}
	// Keys widen safety too.
	db2 := Open()
	r2, _ := db2.CreateRelation("R", "x")
	s2, _ := db2.CreateRelation("S", "x", "y")
	t2, _ := db2.CreateRelation("T", "y")
	s2.SetKey("x")
	_ = r2.Insert(0.5, 1)
	_ = s2.Insert(0.5, 1, 2)
	_ = t2.Insert(0.5, 2)
	ex2, err := db2.Explain("q() :- R(x), S(x, y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if !ex2.Safe || len(ex2.Plans) != 1 {
		t.Errorf("with key S(x) the query should be safe; got safe=%v plans=%d", ex2.Safe, len(ex2.Plans))
	}
}

func TestErrors(t *testing.T) {
	db := movieDB(t)
	if _, err := db.Rank("not a query", nil); err == nil {
		t.Error("bad syntax should fail")
	}
	if _, err := db.Rank("q(x) :- Missing(x)", nil); err == nil {
		t.Error("unknown relation should fail")
	}
	if _, err := db.Rank("q(x) :- Likes(x)", nil); err == nil {
		t.Error("wrong arity should fail")
	}
	if _, err := db.CreateRelation("Likes", "a"); err == nil {
		t.Error("duplicate relation should fail")
	}
	likes := db.Relation("Likes")
	if err := likes.Insert(1.5, "a", "b"); err == nil {
		t.Error("probability out of range should fail")
	}
	if err := likes.Insert(0.5, "only-one"); err == nil {
		t.Error("wrong value count should fail")
	}
	if err := likes.Insert(0.5, 3.14, "b"); err == nil {
		t.Error("unsupported value type should fail")
	}
}

func TestPredicatesInQuery(t *testing.T) {
	db := Open()
	s, _ := db.CreateRelation("S", "id", "name")
	_ = s.Insert(0.5, 1, "red apple")
	_ = s.Insert(0.5, 2, "green pear")
	_ = s.Insert(0.5, 30, "red cherry")
	as, err := db.Rank("q(name) :- S(id, name), id <= 10, name like '%red%'", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 1 || as[0].Values[0] != "red apple" {
		t.Errorf("answers = %+v", as)
	}
}

func TestScaleProbsAndClone(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	before, _ := db.Rank(q, nil)
	c := db.Clone()
	c.ScaleProbs(0.5)
	afterClone, _ := c.Rank(q, nil)
	afterOrig, _ := db.Rank(q, nil)
	if afterClone[0].Score >= before[0].Score {
		t.Error("scaling down should lower scores")
	}
	if math.Abs(afterOrig[0].Score-before[0].Score) > 1e-12 {
		t.Error("scaling a clone mutated the original")
	}
}

func TestMonteCarloApproximatesExact(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	ex, _ := db.Rank(q, &Options{Method: Exact})
	mcAs, err := db.Rank(q, &Options{Method: MonteCarlo, MCSamples: 100000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex {
		var got float64
		for _, a := range mcAs {
			if a.Values[0] == ex[i].Values[0] {
				got = a.Score
			}
		}
		if math.Abs(got-ex[i].Score) > 0.01 {
			t.Errorf("%s: MC %v vs exact %v", ex[i].Values[0], got, ex[i].Score)
		}
	}
}

func TestSaveLoadFacade(t *testing.T) {
	db := movieDB(t)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	a, _ := db.Rank(q, nil)
	b, err := loaded.Rank(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("answers %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Values[0] != b[i].Values[0] || a[i].Score != b[i].Score {
			t.Errorf("answer %d differs after reload: %+v vs %+v", i, a[i], b[i])
		}
	}
	if _, err := Load(bytes.NewReader([]byte("junk"))); err == nil {
		t.Error("loading junk should fail")
	}
}

func TestLineageFacade(t *testing.T) {
	db := movieDB(t)
	infos, err := db.Lineage("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)")
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("answers = %d", len(infos))
	}
	for _, info := range infos {
		if info.Size < 1 {
			t.Errorf("%v: empty lineage", info.Values)
		}
		if !strings.Contains(info.Formula, "Likes(") {
			t.Errorf("%v: formula %q should name tuples", info.Values, info.Formula)
		}
	}
	// bob's lineage (two movies, shared actor fan-page tuple) is NOT
	// read-once: Fan(deniro) occurs in both clauses together with
	// different Likes/Stars tuples... it factors as Fan·(L1·S1 + L2·S2),
	// which IS read-once. Verify the library agrees with exactness:
	for _, info := range infos {
		if info.ReadOnce && info.Factorization == "" {
			t.Errorf("%v: read-once without factorization", info.Values)
		}
	}
	if _, err := db.Lineage("broken"); err == nil {
		t.Error("bad query should fail")
	}
}

func TestParallelAndCostBasedOptions(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	base, err := db.Rank(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, opts := range []*Options{
		{Parallel: true},
		{Parallel: true, Workers: 1},
		{CostBasedJoins: true},
		{Parallel: true, CostBasedJoins: true},
	} {
		got, err := db.Rank(q, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		if len(got) != len(base) {
			t.Fatalf("opts %+v: %d answers", opts, len(got))
		}
		for i := range base {
			if got[i].Values[0] != base[i].Values[0] || math.Abs(got[i].Score-base[i].Score) > 1e-12 {
				t.Errorf("opts %+v: answer %d = %+v, want %+v", opts, i, got[i], base[i])
			}
		}
	}
}

func TestKarpLubyMethod(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	ex, _ := db.Rank(q, &Options{Method: Exact})
	kl, err := db.Rank(q, &Options{Method: KarpLuby, MCSamples: 100000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ex {
		var got float64
		for _, a := range kl {
			if a.Values[0] == ex[i].Values[0] {
				got = a.Score
			}
		}
		if math.Abs(got-ex[i].Score) > 0.01 {
			t.Errorf("%s: KL %v vs exact %v", ex[i].Values[0], got, ex[i].Score)
		}
	}
}

func TestProfileFacade(t *testing.T) {
	db := movieDB(t)
	prof, err := db.Profile("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"min (2 alternatives)", "scan Likes(user, movie)", "rows="} {
		if !strings.Contains(prof, want) {
			t.Errorf("profile missing %q:\n%s", want, prof)
		}
	}
	if _, err := db.Profile("nope("); err == nil {
		t.Error("bad query should fail")
	}
	// PlanDOT facade.
	dot, err := db.PlanDOT("q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)", "plans")
	if err != nil || !strings.Contains(dot, "digraph plans") {
		t.Errorf("PlanDOT: %v\n%s", err, dot)
	}
	if _, err := db.PlanDOT("q(m) :- Stars(m, a)", "lattice"); err != nil {
		t.Errorf("lattice DOT: %v", err)
	}
	if _, err := db.PlanDOT("q(m) :- Stars(m, a)", "bogus"); err == nil {
		t.Error("bad DOT kind should fail")
	}
}

func TestFacadeIndexes(t *testing.T) {
	db := Open()
	s, _ := db.CreateRelation("S", "id", "name")
	for i := 0; i < 100; i++ {
		_ = s.Insert(0.5, i, "x")
	}
	if err := s.CreateRangeIndex("id"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("name"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateIndex("missing"); err == nil {
		t.Error("unknown column should fail")
	}
	as, err := db.Rank("q(id) :- S(id, name), id <= 10", nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(as) != 11 {
		t.Errorf("answers = %d, want 11", len(as))
	}
}

func TestExactOBDDMatchesExact(t *testing.T) {
	db := movieDB(t)
	q := "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"
	a, err := db.Rank(q, &Options{Method: Exact})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.Rank(q, &Options{Method: ExactOBDD})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Values[0] != b[i].Values[0] || math.Abs(a[i].Score-b[i].Score) > 1e-9 {
			t.Errorf("answer %d: DPLL %+v vs OBDD %+v", i, a[i], b[i])
		}
	}
}
