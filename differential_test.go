package lapushdb

// Differential tests of the morsel-parallel engine at the workload and
// public-API level: for TPC-H-style instances and the paper's chain and
// star micro-benchmarks, parallel evaluation must return the same
// columns, the same rows in the same order, and bit-identical scores as
// sequential evaluation, for every Workers setting. Run under -race
// these also exercise the worker pool for data races.

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/engine/oracle"
	"lapushdb/internal/workload"
)

// assertSameResult compares two engine results for exact equality of
// columns, row order, and scores.
func assertSameResult(t *testing.T, label string, seq, par *engine.Result) {
	t.Helper()
	if seq.Len() != par.Len() {
		t.Fatalf("%s: %d rows vs %d", label, seq.Len(), par.Len())
	}
	if len(seq.Cols) != len(par.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, seq.Cols, par.Cols)
	}
	for i := range seq.Cols {
		if seq.Cols[i] != par.Cols[i] {
			t.Fatalf("%s: cols %v vs %v", label, seq.Cols, par.Cols)
		}
	}
	for i := 0; i < seq.Len(); i++ {
		sr, pr := seq.Row(i), par.Row(i)
		for j := range sr {
			if sr[j] != pr[j] {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, sr, pr)
			}
		}
		if seq.Score(i) != par.Score(i) {
			t.Fatalf("%s: row %d score %v != %v", label, i, seq.Score(i), par.Score(i))
		}
	}
}

// diffWorkload evaluates q's minimal plans at Workers ∈ {1, 2, 8} and
// asserts the outputs are identical, and cross-checks the columnar
// executor against the retained row-at-a-time oracle at Workers 1 and 4.
func diffWorkload(t *testing.T, label string, db *engine.DB, q *cq.Query) {
	t.Helper()
	plans := core.MinimalPlans(q, nil)
	seq := engine.EvalPlans(db, q, plans, engine.Options{Workers: 1, ReuseSubplans: true, SemiJoin: true})
	for _, w := range []int{2, 8} {
		par := engine.EvalPlans(db, q, plans, engine.Options{Workers: w, ReuseSubplans: true, SemiJoin: true})
		assertSameResult(t, fmt.Sprintf("%s/w=%d", label, w), seq, par)
	}
	for _, w := range []int{1, 4} {
		orc := oracle.EvalPlans(db, q, plans, engine.Options{Workers: w, ReuseSubplans: true, SemiJoin: true})
		assertSameResult(t, fmt.Sprintf("%s/oracle/w=%d", label, w), seq, orc)
	}
}

// TestDifferentialWorkloads runs the sequential-vs-parallel differential
// on the paper's three workload generators.
func TestDifferentialWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	db, q := workload.Chain(3, 3000, 400, 0.5, rng)
	diffWorkload(t, "chain3", db, q)
	db, q = workload.Star(3, 2500, 300, 0.5, rng)
	diffWorkload(t, "star3", db, q)
	tp := workload.NewTPCH(0.02, 0.1, rng)
	diffWorkload(t, "tpch", tp.DB, tp.Query(tp.Suppliers, "%red%"))
}

// TestDifferentialPublicAPI checks the user-visible contract: Rank with
// Options.Workers set returns byte-identical answers (values, scores,
// order) to the sequential default, and reports the morsel partitions
// it processed via Options.Stats.
func TestDifferentialPublicAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	edb, q := workload.Chain(3, 3000, 400, 0.5, rng)
	db := fromEngineDB(t, edb)
	query := q.String()
	seq, err := db.Rank(query, &Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(seq) == 0 {
		t.Fatal("no answers")
	}
	for _, w := range []int{2, 4, 8} {
		stats := &RankStats{}
		par, err := db.RankContext(context.Background(), query, &Options{Workers: w, Stats: stats})
		if err != nil {
			t.Fatal(err)
		}
		if len(par) != len(seq) {
			t.Fatalf("w=%d: %d answers vs %d", w, len(par), len(seq))
		}
		for i := range seq {
			if par[i].Score != seq[i].Score {
				t.Fatalf("w=%d: answer %d score %v != %v", w, i, par[i].Score, seq[i].Score)
			}
			for j := range seq[i].Values {
				if par[i].Values[j] != seq[i].Values[j] {
					t.Fatalf("w=%d: answer %d values %v != %v", w, i, par[i].Values, seq[i].Values)
				}
			}
		}
		if stats.Partitions == 0 {
			t.Errorf("w=%d: expected partitioned operator phases on 3000-row relations", w)
		}
	}
}

// fromEngineDB round-trips a generated engine.DB into the public DB via
// the snapshot format (the only conversion path, and it exercises
// persistence of the interned value ids too).
func fromEngineDB(t testing.TB, edb *engine.DB) *DB {
	t.Helper()
	var buf bytes.Buffer
	if err := edb.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return db
}
