module lapushdb

go 1.22
