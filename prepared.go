package lapushdb

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"strconv"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Method string forms, as accepted by the lapush -method flag and the
// lapushd query API.
var methodNames = map[Method]string{
	Dissociation:  "diss",
	Exact:         "exact",
	MonteCarlo:    "mc",
	LineageSize:   "lineage",
	Deterministic: "sql",
	KarpLuby:      "kl",
	ExactOBDD:     "obdd",
}

// String returns the method's canonical short name ("diss", "exact",
// "obdd", "mc", "kl", "lineage", "sql").
func (m Method) String() string {
	if s, ok := methodNames[m]; ok {
		return s
	}
	return fmt.Sprintf("Method(%d)", int(m))
}

// MethodNames returns the canonical method names in a stable order.
func MethodNames() []string {
	out := make([]string, 0, len(methodNames))
	for _, s := range methodNames {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// MethodFromString parses a canonical method name. The error message
// lists the valid set.
func MethodFromString(s string) (Method, error) {
	for m, name := range methodNames {
		if s == name {
			return m, nil
		}
	}
	return 0, fmt.Errorf("lapushdb: unknown method %q (want one of: %v)", s, MethodNames())
}

// Prepared is a parsed query with its minimal plans and merged single
// plan already enumerated — the expensive lifted-inference step of
// answering a query. A Prepared is immutable and safe for concurrent
// use, which makes it the unit a plan cache stores; it remains valid as
// long as the database's schema (relations, keys, determinism flags)
// does not change.
type Prepared struct {
	q            *cq.Query
	normalized   string
	ignoreSchema bool
	sch          *core.Schema
	plans        []plan.Node
	single       plan.Node
	safe         bool
}

// Prepare parses and validates the query and enumerates its minimal
// plans and merged single plan under the database's schema knowledge
// (subject to opts.IgnoreSchema; evaluation-strategy fields are
// ignored).
func (d *DB) Prepare(query string, opts *Options) (*Prepared, error) {
	return d.PrepareContext(context.Background(), query, opts)
}

// PrepareContext is Prepare honoring ctx at stage boundaries.
func (d *DB) PrepareContext(ctx context.Context, query string, opts *Options) (*Prepared, error) {
	if opts == nil {
		opts = &Options{}
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := d.checkQuery(q); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	sch := d.schema(q, opts)
	return &Prepared{
		q:            q,
		normalized:   q.String(),
		ignoreSchema: opts.IgnoreSchema,
		sch:          sch,
		plans:        core.MinimalPlans(q, sch),
		single:       core.SinglePlan(q, sch),
		safe:         core.IsSafe(q, sch),
	}, nil
}

// Normalized returns the query's canonical rendering — constants,
// predicates and atom order normalized by the parser — suitable as a
// cache-key component.
func (p *Prepared) Normalized() string { return p.normalized }

// NormalizeQuery parses and validates the query and returns its
// canonical rendering, without enumerating plans. Syntactic variants of
// the same query (whitespace, atom order as far as the parser
// canonicalizes) normalize identically, which makes the result the
// right cache-key component for a plan cache.
func (d *DB) NormalizeQuery(query string) (string, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return "", err
	}
	if err := d.checkQuery(q); err != nil {
		return "", err
	}
	return q.String(), nil
}

// Safe reports whether the query is safe under the schema knowledge the
// statement was prepared with.
func (p *Prepared) Safe() bool { return p.safe }

// NumPlans returns the number of minimal plans.
func (p *Prepared) NumPlans() int { return len(p.plans) }

// Explanation renders the prepared statement's plans, dissociations,
// and safety — the same payload Explain computes from scratch.
func (p *Prepared) Explanation() *Explanation {
	ex := &Explanation{Safe: p.safe}
	for _, pl := range p.plans {
		ex.Plans = append(ex.Plans, plan.String(pl))
		ex.Dissociations = append(ex.Dissociations, plan.DeltaOf(p.q, pl).String())
	}
	ex.SinglePlan = plan.String(p.single)
	return ex
}

// RankPrepared evaluates a prepared statement, honoring ctx: evaluation
// loops poll the context and return its error (context.Canceled or
// context.DeadlineExceeded) promptly when it is done. Under the
// Dissociation method the pre-enumerated plans are reused, skipping the
// parse and plan-search cost of Rank. Evaluation-strategy options
// (Parallel, Workers, Stats, the optimization toggles) apply per call;
// only IgnoreSchema must match the preparation.
func (d *DB) RankPrepared(ctx context.Context, p *Prepared, opts *Options) ([]Answer, error) {
	if opts == nil {
		opts = &Options{}
	}
	if opts.IgnoreSchema != p.ignoreSchema {
		return nil, fmt.Errorf("lapushdb: statement prepared with IgnoreSchema=%v, ranked with %v", p.ignoreSchema, opts.IgnoreSchema)
	}
	return d.rank(ctx, p.q, p, opts)
}

// RelationInfo describes one relation of the database.
type RelationInfo struct {
	Name          string
	Cols          []string
	Deterministic bool
	Key           []string // key column names, nil when no key is declared
	Tuples        int
}

// RelationInfos lists every relation in creation order.
func (d *DB) RelationInfos() []RelationInfo {
	rels := d.db.Relations()
	out := make([]RelationInfo, len(rels))
	for i, r := range rels {
		info := RelationInfo{
			Name:          r.Name,
			Cols:          append([]string(nil), r.Cols...),
			Deterministic: r.Deterministic,
			Tuples:        r.Len(),
		}
		for _, k := range r.Key {
			info.Key = append(info.Key, r.Cols[k])
		}
		out[i] = info
	}
	return out
}

// SchemaFingerprint returns a hex digest of the database's schema and
// contents summary: relation names, columns, determinism flags, keys,
// and tuple counts. Two databases with the same fingerprint prepare
// queries to the same plans, so the fingerprint scopes plan-cache keys.
func (d *DB) SchemaFingerprint() string {
	h := sha256.New()
	for _, r := range d.RelationInfos() {
		h.Write([]byte(r.Name))
		h.Write([]byte{0})
		for _, c := range r.Cols {
			h.Write([]byte(c))
			h.Write([]byte{1})
		}
		if r.Deterministic {
			h.Write([]byte{2})
		}
		for _, k := range r.Key {
			h.Write([]byte(k))
			h.Write([]byte{3})
		}
		h.Write([]byte(strconv.Itoa(r.Tuples)))
		h.Write([]byte{4})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// ctxErr is a nil-tolerant ctx.Err.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
