package lapushdb

import (
	"fmt"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
)

// TupleInfluence is one input tuple's contribution to an answer:
// the Banzhaf-style criticality P(answer | tuple present) −
// P(answer | tuple absent). For monotone queries it is non-negative,
// and ∂P/∂p(tuple) equals exactly this difference.
type TupleInfluence struct {
	// Tuple renders the input tuple, e.g. "Likes(ann, heat)".
	Tuple string
	// Influence is P(q | t=1) − P(q | t=0) ∈ [0, 1].
	Influence float64
}

// AnswerInfluence explains one answer: its exact probability and the
// most influential input tuples.
type AnswerInfluence struct {
	Values      []string
	Probability float64
	Tuples      []TupleInfluence
}

// Influence computes, for every answer, the exact probability and the
// influence of each contributing input tuple, keeping the topPerAnswer
// most influential (0 keeps all). Each answer's lineage is compiled
// once into an arithmetic circuit; influences are two linear-time
// circuit evaluations per tuple. Exact compilation must be feasible
// (Options-style budget of 50M nodes applies).
//
// Influence is the sensitivity ∂P/∂p(t): it identifies the uncertain
// facts most worth verifying or cleaning to firm up an answer — the
// data-cleaning use the paper's knowledge-base motivation implies.
func (d *DB) Influence(query string, topPerAnswer int) ([]AnswerInfluence, error) {
	q, err := parseForDB(d, query)
	if err != nil {
		return nil, err
	}
	reduced := engine.SemiJoinReduce(d.db, q)
	lin := engine.EvalLineage(d.db, q, reduced)
	labels := d.db.VarLabels()
	probs := d.db.VarProbs()
	out := make([]AnswerInfluence, 0, lin.Len())
	scratch := append([]float64(nil), probs...)
	for i := 0; i < lin.Len(); i++ {
		clauses := lin.Clauses(i)
		circ, err := exact.Compile(clauses, 50_000_000)
		if err != nil {
			return nil, fmt.Errorf("lapushdb: influence compilation infeasible for answer %v: %w", d.decode(lin.Key(i)), err)
		}
		ai := AnswerInfluence{Values: d.decode(lin.Key(i)), Probability: circ.Eval(probs)}
		// Distinct variables of this answer's lineage.
		seen := map[int32]bool{}
		for _, c := range clauses {
			for _, v := range c {
				if seen[v] {
					continue
				}
				seen[v] = true
				old := scratch[v]
				scratch[v] = 1
				hi := circ.Eval(scratch)
				scratch[v] = 0
				lo := circ.Eval(scratch)
				scratch[v] = old
				label := labels[v]
				if label == "" {
					label = fmt.Sprintf("x%d", v)
				}
				ai.Tuples = append(ai.Tuples, TupleInfluence{Tuple: label, Influence: hi - lo})
			}
		}
		sort.Slice(ai.Tuples, func(a, b int) bool {
			if ai.Tuples[a].Influence != ai.Tuples[b].Influence {
				return ai.Tuples[a].Influence > ai.Tuples[b].Influence
			}
			return ai.Tuples[a].Tuple < ai.Tuples[b].Tuple
		})
		if topPerAnswer > 0 && len(ai.Tuples) > topPerAnswer {
			ai.Tuples = ai.Tuples[:topPerAnswer]
		}
		out = append(out, ai)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Probability > out[b].Probability })
	return out, nil
}

// parseForDB parses and arity-checks a query against the database.
func parseForDB(d *DB, query string) (*cq.Query, error) {
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := d.checkQuery(q); err != nil {
		return nil, err
	}
	return q, nil
}
