package lapushdb

// One benchmark per table/figure of the paper's evaluation. Each bench
// exercises the code path that regenerates the corresponding result; the
// experiment harness (cmd/experiments) prints the full tables. Sizes are
// kept small enough for `go test -bench=.` to finish in minutes — pass
// -scale flags to cmd/experiments for the full sweeps.

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"testing"
	"time"

	"lapushdb/internal/bench"
	"lapushdb/internal/core"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/exp"
	"lapushdb/internal/workload"
)

// BenchmarkFig2 measures plan enumeration: the #MP and #P columns of
// Figure 2 for the paper's largest query sizes (8-chain: 429 minimal
// plans of 4279 total; 7-star: 5040 of 47293).
func BenchmarkFig2(b *testing.B) {
	b.Run("MinimalPlans/chain8", func(b *testing.B) {
		q := workload.ChainQuery(8)
		for i := 0; i < b.N; i++ {
			if got := len(core.MinimalPlans(q, nil)); got != 429 {
				b.Fatalf("#MP = %d", got)
			}
		}
	})
	b.Run("MinimalPlans/star7", func(b *testing.B) {
		q := workload.StarQuery(7)
		for i := 0; i < b.N; i++ {
			if got := len(core.MinimalPlans(q, nil)); got != 5040 {
				b.Fatalf("#MP = %d", got)
			}
		}
	})
	b.Run("AllPlans/chain8", func(b *testing.B) {
		q := workload.ChainQuery(8)
		for i := 0; i < b.N; i++ {
			if got := len(core.AllPlans(q)); got != 4279 {
				b.Fatalf("#P = %d", got)
			}
		}
	})
	b.Run("AllPlans/star7", func(b *testing.B) {
		q := workload.StarQuery(7)
		for i := 0; i < b.N; i++ {
			if got := len(core.AllPlans(q)); got != 47293 {
				b.Fatalf("#P = %d", got)
			}
		}
	})
}

// benchModes runs the five evaluation strategies of Figures 5a–5c on one
// generated database.
func benchModes(b *testing.B, kind string, k, n int) {
	rng := rand.New(rand.NewSource(1))
	var db *engine.DB
	var q = workload.ChainQuery(2)
	if kind == "chain" {
		db, q = workload.Chain(k, n, exp.ChainDomain(k, n), 0.5, rng)
	} else {
		db, q = workload.Star(k, n, exp.StarDomain(k, n), 0.5, rng)
	}
	for _, mode := range exp.RunModes {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				exp.Evaluate(db, q, mode)
			}
		})
	}
}

// BenchmarkFig5a is the 4-chain run-time experiment (Figure 5a) at
// n = 1000 tuples per table.
func BenchmarkFig5a(b *testing.B) { benchModes(b, "chain", 4, 1000) }

// BenchmarkFig5b is the 7-chain run-time experiment (Figure 5b; 132
// minimal plans) at n = 300.
func BenchmarkFig5b(b *testing.B) { benchModes(b, "chain", 7, 300) }

// BenchmarkFig5c is the 2-star run-time experiment (Figure 5c) at
// n = 3000.
func BenchmarkFig5c(b *testing.B) { benchModes(b, "star", 2, 3000) }

// BenchmarkFig5d sweeps the chain length k (Figure 5d) with all
// optimizations on.
func BenchmarkFig5d(b *testing.B) {
	for k := 2; k <= 8; k++ {
		k := k
		b.Run(fmt.Sprintf("k=%d/Opt1-3", k), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			db, q := workload.Chain(k, 300, exp.ChainDomain(k, 300), 0.5, rng)
			for i := 0; i < b.N; i++ {
				exp.Evaluate(db, q, exp.ModeOpt123)
			}
		})
	}
}

// benchTPCHMethods measures the six series of Figures 5e–5g for one LIKE
// pattern.
func benchTPCHMethods(b *testing.B, pattern string) {
	rng := rand.New(rand.NewSource(1))
	tp := workload.NewTPCH(0.02, 0.5, rng)
	q := tp.Query(tp.Suppliers/2, pattern)
	db := tp.DB
	plans := core.MinimalPlans(q, nil)
	b.Run("Diss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true})
		}
	})
	b.Run("Diss+Opt3", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
		}
	})
	b.Run("Lineage", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
		}
	})
	b.Run("StandardSQL", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvalDeterministic(db, q)
		}
	})
}

// BenchmarkFig5e is the TPC-H timing experiment with $2 = '%red%green%'
// (Figure 5e).
func BenchmarkFig5e(b *testing.B) { benchTPCHMethods(b, "%red%green%") }

// BenchmarkFig5f is the TPC-H timing experiment with $2 = '%red%'
// (Figure 5f).
func BenchmarkFig5f(b *testing.B) { benchTPCHMethods(b, "%red%") }

// BenchmarkFig5g is the TPC-H timing experiment with $2 = '%'
// (Figure 5g; the largest lineages).
func BenchmarkFig5g(b *testing.B) { benchTPCHMethods(b, "%") }

// BenchmarkFig5h measures the full six-method point measurement that
// Figure 5h aggregates across patterns (the harness sorts the same
// points by max lineage size).
func BenchmarkFig5h(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tp := workload.NewTPCH(0.01, 0.5, rng)
	q := tp.Query(tp.Suppliers, "%red%")
	db := tp.DB
	b.Run("DissVsLineagePoint", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			plans := core.MinimalPlans(q, nil)
			engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
			engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
		}
	})
}

// BenchmarkFig5i measures one full ranking experiment of Figure 5i:
// ground truth, dissociation, lineage-size, and MC rankings plus their
// AP@10 scores.
func BenchmarkFig5i(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5i(cfg)
	}
}

// BenchmarkFig5j measures the avg[pa]-bucketed ranking comparison of
// Figure 5j.
func BenchmarkFig5j(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5j(cfg)
	}
}

// BenchmarkFig5k measures the lineage-size ranking study of Figure 5k.
func BenchmarkFig5k(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5k(cfg)
	}
}

// BenchmarkFig5l measures the avg[d] sensitivity study of Figure 5l.
func BenchmarkFig5l(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5l(cfg)
	}
}

// BenchmarkFig5m measures the MC-vs-dissociation regime map of
// Figure 5m.
func BenchmarkFig5m(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5m(cfg)
	}
}

// BenchmarkFig5n measures the probability-scaling study of Figure 5n.
func BenchmarkFig5n(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5n(cfg)
	}
}

// BenchmarkFig5o measures the ranking-quality decomposition of
// Figure 5o.
func BenchmarkFig5o(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5o(cfg)
	}
}

// BenchmarkFig5p measures the scaled-dissociation study of Figure 5p.
func BenchmarkFig5p(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cfg := exp.QuickConfig()
		cfg.Seed = int64(i + 1)
		exp.Fig5p(cfg)
	}
}

// BenchmarkAblationParallel compares sequential vs parallel evaluation
// of the 7-chain's 132 minimal plans — the "multi-core query
// processing" benefit of running inference inside a relational engine.
func BenchmarkAblationParallel(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := workload.Chain(7, 2000, exp.ChainDomain(7, 2000), 0.5, rng)
	plans := core.MinimalPlans(q, nil)
	opts := engine.Options{ReuseSubplans: true}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.EvalPlans(db, q, plans, opts)
		}
	})
	for _, w := range []int{2, 4, 8} {
		w := w
		b.Run(fmt.Sprintf("parallel-%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				engine.EvalPlansParallel(db, q, plans, opts, w)
			}
		})
	}
}

// BenchmarkAblationJoinOrder compares the greedy join-order heuristic
// against the Selinger-style dynamic program on star queries, whose
// k-ary joins give the optimizer real choices.
func BenchmarkAblationJoinOrder(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := workload.Star(4, 3000, exp.StarDomain(4, 3000), 0.5, rng)
	sp := core.SinglePlan(q, nil)
	b.Run("greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.NewEvaluator(db, q, engine.Options{ReuseSubplans: true}).Eval(sp)
		}
	})
	b.Run("cost-based", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			engine.NewEvaluator(db, q, engine.Options{ReuseSubplans: true, CostBasedJoins: true}).Eval(sp)
		}
	})
}

// BenchmarkTopK measures the threshold top-k operator against full
// exact ranking: early termination should examine only a few lineages.
func BenchmarkTopK(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	tp := workload.NewTPCH(0.02, 0.5, rng)
	q := tp.Query(tp.Suppliers, "%red%")
	db := tp.DB
	b.Run("rank-exact-all", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lin := engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
			for j := 0; j < lin.Len(); j++ {
				if _, err := exactProb(lin.Clauses(j), db.VarProbs()); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("topk-via-bounds", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			// Equivalent of RankTopK's pruning loop, at engine level.
			plans := core.MinimalPlans(q, nil)
			bounds := engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
			lin := engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
			_ = bounds
			_ = lin
		}
	})
}

func exactProb(clauses [][]int32, probs []float64) (float64, error) {
	return exact.ProbBudget(clauses, probs, 50_000_000)
}

// BenchmarkRank measures end-to-end ranking of the paper's unsafe
// 3-chain at different intra-query worker counts. The morsel
// determinism contract makes every variant produce byte-identical
// rankings, which the benchmark verifies against the Workers=1 output.
// With BENCH_JSON=<path> set, ns/op plus allocation metrics land in the
// shared trajectory schema — the before/after pair for the columnar
// executor refactor is recorded this way.
func BenchmarkRank(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	edb, q := workload.Chain(3, 30000, 2000, 0.5, rng)
	plans := core.MinimalPlans(q, nil)
	ref := engine.EvalPlans(edb, q, plans, engine.Options{Workers: 1, ReuseSubplans: true, SemiJoin: true})
	for _, w := range []int{1, 2, 4} {
		name := fmt.Sprintf("BenchmarkRank/workers=%d", w)
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			var res *engine.Result
			for i := 0; i < b.N; i++ {
				res = engine.EvalPlans(edb, q, plans, engine.Options{Workers: w, ReuseSubplans: true, SemiJoin: true})
			}
			b.StopTimer()
			runtime.ReadMemStats(&ms1)
			m := microResults[name]
			if m == nil {
				m = &bench.MicroResult{Name: name}
				microResults[name] = m
			}
			m.AddRun(b.Elapsed().Nanoseconds() / int64(b.N))
			m.Metrics = map[string]float64{
				"allocs_per_op": float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N),
				"bytes_per_op":  float64(ms1.TotalAlloc-ms0.TotalAlloc) / float64(b.N),
			}
			if res.Len() != ref.Len() {
				b.Fatalf("workers=%d: %d rows vs %d", w, res.Len(), ref.Len())
			}
			for i := 0; i < ref.Len(); i++ {
				if res.Score(i) != ref.Score(i) {
					b.Fatalf("workers=%d: row %d score %v != %v", w, i, res.Score(i), ref.Score(i))
				}
				rr, gr := ref.Row(i), res.Row(i)
				for j := range rr {
					if rr[j] != gr[j] {
						b.Fatalf("workers=%d: row %d differs", w, i)
					}
				}
			}
		})
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		writeMicroBenchJSON(b, path)
	}
}

// BenchmarkRankBatch compares a loop of standalone Rank calls against
// RankBatch on overlapping chain queries (the full 3-chain, its prefix
// and suffix, and a duplicate). The batch variant must report
// cross-query shared-subplan hits — the benchmark fails otherwise, so
// a regression that silently disables sharing cannot hide behind the
// timings.
func BenchmarkRankBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(10))
	edb, q := workload.Chain(3, 10000, 1500, 0.5, rng)
	var buf bytes.Buffer
	if err := edb.Save(&buf); err != nil {
		b.Fatal(err)
	}
	db, err := Load(&buf)
	if err != nil {
		b.Fatal(err)
	}
	queries := []string{
		q.String(),
		"q(x0, x2) :- R1(x0, x1), R2(x1, x2)",
		"q(x1, x3) :- R2(x1, x2), R3(x2, x3)",
		q.String(),
	}
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, query := range queries {
				if _, err := db.Rank(query, nil); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
	b.Run("batch", func(b *testing.B) {
		var shared int64
		for i := 0; i < b.N; i++ {
			stats := &RankStats{}
			results := db.RankBatch(queries, &Options{Stats: stats})
			for _, r := range results {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
			shared = stats.SharedSubplanHits
		}
		b.StopTimer()
		if shared == 0 {
			b.Fatal("no cross-query shared-subplan hits")
		}
		b.ReportMetric(float64(shared), "shared-hits")
	})
}

// microResults accumulates BenchmarkRank's and BenchmarkAnytime's
// measurements across sub-benchmark invocations (go test may call each
// closure several times while sizing b.N, and -count reruns them all);
// the final state is flushed to $BENCH_JSON in the shared
// internal/bench schema.
var microResults = map[string]*bench.MicroResult{}

// writeMicroBenchJSON merges the accumulated micro-benchmark results
// into the BENCH_<rev>.json named by $BENCH_JSON, sharing the
// trajectory schema (and file) with cmd/loadgen's workload results.
func writeMicroBenchJSON(b *testing.B, path string) {
	b.Helper()
	names := make([]string, 0, len(microResults))
	for name := range microResults {
		names = append(names, name)
	}
	sort.Strings(names)
	err := bench.UpdateFile(path, func(r *bench.Report) {
		if rev := os.Getenv("BENCH_REV"); rev != "" {
			r.Rev = rev
		} else if r.Rev == "" {
			r.Rev = "dev"
		}
		r.Date = time.Now().UTC().Format("2006-01-02")
		r.Go = runtime.Version()
		if cpu := bench.CPUModel(); cpu != "" {
			r.CPU = cpu
		}
		for _, name := range names {
			r.ReplaceBenchmark(*microResults[name])
		}
	})
	if err != nil {
		b.Fatalf("write %s: %v", path, err)
	}
	b.Logf("wrote %d benchmark entries to %s", len(names), path)
}

// BenchmarkAnytime measures time-to-epsilon of the anytime evaluator on
// the unsafe 3-chain: a loose target stops after the dissociation plan
// bounds, tighter ones pay for Monte Carlo rounds and, at the tight
// end, exact collapse of the residual answers. The reported extra
// metrics record how much refinement each target bought. With
// BENCH_JSON=<path> set (and optionally BENCH_REV), results are also
// written in the shared internal/bench schema so the perf trajectory
// accumulates next to the load-harness numbers.
func BenchmarkAnytime(b *testing.B) {
	rng := rand.New(rand.NewSource(17))
	edb, q := workload.Chain(3, 900, 120, 0.5, rng)
	db := fromEngineDB(b, edb)
	query := q.String()
	for _, eps := range []float64{0.2, 0.05, 0.01, 0.001} {
		name := fmt.Sprintf("BenchmarkAnytime/eps=%g", eps)
		b.Run(fmt.Sprintf("eps=%g", eps), func(b *testing.B) {
			var res *AnytimeResult
			for i := 0; i < b.N; i++ {
				var err error
				// The MC cap hands the tight targets over to exact collapse
				// instead of grinding sampling to the default per-answer cap.
				res, err = db.RankAnytime(query, &AnytimeOptions{Epsilon: eps, Seed: 7, MCMaxSamples: 8192})
				if err != nil {
					b.Fatal(err)
				}
				if !res.Converged {
					b.Fatalf("eps=%g did not converge: width %g", eps, res.Width)
				}
			}
			b.ReportMetric(float64(res.PlansEvaluated), "plans")
			b.ReportMetric(float64(res.MCSamples), "mc-samples")
			b.ReportMetric(res.Width, "width")
			m := microResults[name]
			if m == nil {
				m = &bench.MicroResult{Name: name}
				microResults[name] = m
			}
			m.AddRun(b.Elapsed().Nanoseconds() / int64(b.N))
			m.Metrics = map[string]float64{
				"mc_samples":      float64(res.MCSamples),
				"plans_evaluated": float64(res.PlansEvaluated),
				"achieved_width":  res.Width,
			}
		})
	}
	if path := os.Getenv("BENCH_JSON"); path != "" {
		writeMicroBenchJSON(b, path)
	}
}
