GO ?= go

.PHONY: build test race vet check bench bench-smoke microbench chaos replication failover cover oracle-diff

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and degraded-operation suite under the race detector:
# the errfs chaos sweeps, breaker/read-only lifecycle, torn-tail
# accounting, row budgets, load shedding, and the error-status table.
chaos:
	$(GO) test -race -run 'TestChaos|TestTornTail|TestNth|TestSticky|TestShort|TestSetFault' ./internal/store/...
	$(GO) test -race -run 'TestBudget' ./internal/engine
	$(GO) test -race -run 'TestErrorStatus|TestRelease|TestQueryBudget|TestLoadShedding|TestDegraded|TestRobustnessMetrics|TestAnytime' ./internal/server
	$(GO) test -race -run 'TestReplicaChaos' ./internal/replica

# Replication end-to-end suite under the race detector: the wire
# protocol, the tailer lifecycle (bootstrap/resume/diverge/reconnect),
# the store's log-shipping invariants, the /v1/wal and /v1/checkpoint
# endpoints, the replica role surface (read-only 503s, healthz,
# metrics), the primary-vs-replica differential, and cache invalidation
# off shipped fingerprints. All hermetic — httptest servers, no ports.
replication:
	$(GO) test -race ./internal/replica
	$(GO) test -race -run 'TestFingerprint|TestReadLog|TestReplay|TestApplyReplicated|TestInstallSnapshot|TestWaitForSeq' ./internal/store
	$(GO) test -race -run 'TestWALEndpoint|TestCheckpointEndpoint|TestReplica' ./internal/server
	$(MAKE) failover

# Failover chaos suite under the race detector: promotion-epoch
# durability and epoch-0 compat in the store, the full kill -9 →
# promote → fence → re-seed schedule with the fingerprint-collision
# audit, promotion idempotence and the min_seq guard, /v1/wal epoch
# fencing, and the tailer's reconnect-backoff cap. Hermetic — httptest
# pairs, no ports.
failover:
	$(GO) test -race -run 'TestPromote|TestApplyReplicatedAdopts|TestApplyReplicatedRefuses|TestEpoch|TestLogRecordEpoch|TestReadLogEpoch|TestFence' ./internal/store
	$(GO) test -race -run 'TestFailover|TestPromote|TestWALEpoch|TestWALRefuses|TestHealthzReportsEpoch' ./internal/server
	$(GO) test -race -run 'TestReconnectBackoffCapped|TestCloseInterruptsBackoff' ./internal/replica

vet:
	$(GO) vet ./...

# Statement-coverage gate. Coverage is measured across packages
# (-coverpkg=./...): several packages are exercised mostly or entirely
# by the top-level differential suites (internal/anytime, the
# internal/engine/oracle facade, chunks of the engine's parallel paths),
# which per-package profiling would not count. The total must stay at
# or above the recorded baseline (measured 84.7% when the gate moved to
# cross-package profiling, with a small buffer for timing-dependent
# paths).
COVER_BASELINE ?= 84.0

cover:
	$(GO) test -count=1 -coverpkg=./... -coverprofile=cover.out ./...
	@$(GO) tool cover -func=cover.out | awk -v base=$(COVER_BASELINE) ' \
		/^total:/ { total = $$3; gsub(/%/, "", total); print "total coverage: " $$3; \
			if (total + 0 < base + 0) { print "FAIL: coverage " total "% below baseline " base "%"; exit 1 } \
			else { print "ok: coverage " total "% >= baseline " base "%" } }'

# Executor-vs-oracle differential suite under the race detector: the
# columnar streaming executor must produce byte-identical results and
# identical typed errors to the retained row-at-a-time oracle
# (internal/engine/oracle.go) on random CQs and on the chain/star/TPC-H
# shapes at Workers 1 and 4, plus budget-accounting parity and the
# chain-join allocation gate (the gate itself skips under -race and
# runs in the plain test pass).
oracle-diff:
	$(GO) test -race -run 'OracleDifferential|TestPropExecutorOracle|TestBudgetBatchChargingParity|FuzzMorselDifferential' ./internal/engine
	$(GO) test -race -run 'TestDifferentialWorkloads|TestRankBatchOracleDifferential|TestAnytimeOracleBoundsDifferential' .
	$(GO) test -run 'TestChainJoinAllocGate' ./internal/engine

check: build vet test oracle-diff

# Standing load harness (cmd/loadgen): mixed workloads against an
# in-process lapushd, results merged into BENCH_<rev>.json. `bench` is
# the trajectory run (record before and after a perf-relevant change —
# see EXPERIMENTS.md); `bench-smoke` is the fast hermetic CI gate with
# loose thresholds that only fail on error-rate or gross latency
# blowups, not scheduler noise.
BENCH_REV ?= $(shell git rev-parse --short HEAD 2>/dev/null || echo dev)

bench:
	$(GO) run ./cmd/loadgen -hermetic -rev $(BENCH_REV) -duration 5s -warmup 1s

bench-smoke:
	$(GO) run ./cmd/loadgen -hermetic -rev smoke -out bench-smoke.json \
		-duration 1s -warmup 300ms -c 4 \
		-max-error-rate 0.05 -max-p99 5s -min-ops 10

# Microbenchmarks (testing.B). With BENCH_JSON set, BenchmarkAnytime
# merges its per-epsilon results into the same report schema loadgen
# writes (see bench_test.go).
microbench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

FUZZTIME ?= 10s

.PHONY: fuzz
fuzz:
	$(GO) test -run=^$$ -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzAnalyses$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzLikeMatch$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzMorselDifferential$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/store
	$(GO) test -run=^$$ -fuzz='^FuzzRankBatchRequest$$' -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run=^$$ -fuzz='^FuzzAnytimeRequest$$' -fuzztime=$(FUZZTIME) ./internal/server
	$(GO) test -run=^$$ -fuzz='^FuzzQuantile$$' -fuzztime=$(FUZZTIME) ./internal/bench
