GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

FUZZTIME ?= 10s

.PHONY: fuzz
fuzz:
	$(GO) test -run=^$$ -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzAnalyses$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzLikeMatch$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzMorselDifferential$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/store
