GO ?= go

.PHONY: build test race vet check bench chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and degraded-operation suite under the race detector:
# the errfs chaos sweeps, breaker/read-only lifecycle, torn-tail
# accounting, row budgets, load shedding, and the error-status table.
chaos:
	$(GO) test -race -run 'TestChaos|TestTornTail|TestNth|TestSticky|TestShort|TestSetFault' ./internal/store/...
	$(GO) test -race -run 'TestBudget' ./internal/engine
	$(GO) test -race -run 'TestErrorStatus|TestRelease|TestQueryBudget|TestLoadShedding|TestDegraded|TestRobustnessMetrics' ./internal/server

vet:
	$(GO) vet ./...

check: build vet test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .

FUZZTIME ?= 10s

.PHONY: fuzz
fuzz:
	$(GO) test -run=^$$ -fuzz='^FuzzParse$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzAnalyses$$' -fuzztime=$(FUZZTIME) ./internal/cq
	$(GO) test -run=^$$ -fuzz='^FuzzLikeMatch$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzMorselDifferential$$' -fuzztime=$(FUZZTIME) ./internal/engine
	$(GO) test -run=^$$ -fuzz='^FuzzWALReplay$$' -fuzztime=$(FUZZTIME) ./internal/store
