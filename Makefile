GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

check: build vet test

bench:
	$(GO) test -bench=. -benchtime=1x -run=^$$ .
