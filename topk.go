package lapushdb

import (
	"context"
	"fmt"
	"sort"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
)

// RankTopK returns the top-k answers by EXACT probability, using the
// dissociation upper bounds for early termination: answers are examined
// in descending propagation-score order, and since every score is a
// guaranteed upper bound (Corollary 19 of the paper), the search stops
// as soon as the next upper bound cannot beat the k-th best exact
// probability found — usually after exact inference on only a handful
// of lineages. This turns the paper's one-sided guarantee into a
// provably correct top-k operator.
//
// Exact inference on the examined answers must be feasible; the node
// budget of Options.ExactBudget applies per answer.
func (d *DB) RankTopK(query string, k int, opts *Options) ([]Answer, error) {
	if opts == nil {
		opts = &Options{}
	}
	if k <= 0 {
		return nil, fmt.Errorf("lapushdb: k must be positive")
	}
	q, err := cq.Parse(query)
	if err != nil {
		return nil, err
	}
	if err := d.checkQuery(q); err != nil {
		return nil, err
	}
	budget := opts.ExactBudget
	if budget <= 0 {
		budget = DefaultExactBudget
	}

	// Upper bounds from the merged dissociation plan.
	sch := d.schema(q, opts)
	eopts := engine.Options{ReuseSubplans: !opts.DisableOpt2, SemiJoin: !opts.DisableOpt3}
	sp := core.SinglePlan(q, sch)
	bounds := engine.NewEvaluator(d.db, q, eopts).Eval(sp)

	// Lineages, keyed like the bound rows.
	var reduced map[string][]int32
	if !opts.DisableOpt3 {
		reduced = engine.SemiJoinReduce(d.db, q)
	}
	lin := engine.EvalLineage(d.db, q, reduced)
	clausesByKey := make(map[string][][]int32, lin.Len())
	for i := 0; i < lin.Len(); i++ {
		clausesByKey[valueKey(lin.Key(i))] = lin.Clauses(i)
	}

	type cand struct {
		row   []engine.Value
		bound float64
	}
	cands := make([]cand, bounds.Len())
	for i := 0; i < bounds.Len(); i++ {
		row := append([]engine.Value(nil), bounds.Row(i)...)
		cands[i] = cand{row: row, bound: bounds.Score(i)}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].bound > cands[j].bound })

	var top []Answer
	kth := 0.0 // exact probability of the current k-th best
	examined := 0
	for _, c := range cands {
		if len(top) >= k && c.bound <= kth {
			break // no remaining answer can enter the top k
		}
		clauses := clausesByKey[valueKey(c.row)]
		p, err := exact.ProbBudget(clauses, d.db.VarProbs(), budget)
		if err != nil {
			return nil, fmt.Errorf("lapushdb: exact inference infeasible for answer %v: %w", d.decode(c.row), err)
		}
		examined++
		top = append(top, Answer{Values: d.decode(c.row), Score: p})
		sortAnswers(top)
		if len(top) > k {
			top = top[:k]
		}
		if len(top) == k {
			kth = top[k-1].Score
		}
	}
	return top, nil
}

// RankTopKAnytime is the anytime counterpart of RankTopK: the top-k
// answers as [lower, upper] intervals, refined until the requested
// epsilon, the deadline, or the budgets stop the search. Unlike
// RankTopK it never requires full exact inference: an answer whose
// upper bound falls below the running k-th largest lower bound is
// pruned from further refinement (and from the result), so the
// intervals that survive are exactly the candidates still able to be
// in the top k. At most k answers are returned when the result
// converged; a non-converged result may carry more — the remaining
// candidates whose intervals still overlap the k-th place.
func (d *DB) RankTopKAnytime(ctx context.Context, query string, k int, opts *AnytimeOptions) (*AnytimeResult, error) {
	if opts == nil {
		opts = &AnytimeOptions{}
	}
	if k <= 0 {
		return nil, fmt.Errorf("lapushdb: k must be positive")
	}
	ao := *opts
	ao.topK = k
	q, err := parseChecked(d, query)
	if err != nil {
		return nil, err
	}
	o := &Options{IgnoreSchema: ao.IgnoreSchema}
	sch := d.schema(q, o)
	res, err := d.rankAnytime(ctx, q, core.MinimalPlans(q, sch), core.IsSafe(q, sch), &ao)
	if err != nil {
		return nil, err
	}
	if res.Converged && len(res.Answers) > k {
		res.Answers = res.Answers[:k]
	}
	return res, nil
}

// RankUnion ranks the answers of a union of conjunctive queries (all
// with the same head arity). Under the Dissociation method the combined
// score is 1 − ∏(1 − ρi): by the FKG inequality the answers of
// monotone queries over independent tuples are positively correlated,
// so the independent-OR of per-query upper bounds is itself a valid
// upper bound on the union's probability. Exact and MonteCarlo operate
// on the union of the lineages, which is exact. Other methods are not
// supported.
func (d *DB) RankUnion(queries []string, opts *Options) ([]Answer, error) {
	if opts == nil {
		opts = &Options{}
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("lapushdb: empty union")
	}
	parsed := make([]*cq.Query, len(queries))
	arity := -1
	for i, qs := range queries {
		q, err := cq.Parse(qs)
		if err != nil {
			return nil, err
		}
		if err := d.checkQuery(q); err != nil {
			return nil, err
		}
		if arity < 0 {
			arity = len(q.Head)
		} else if len(q.Head) != arity {
			return nil, fmt.Errorf("lapushdb: union arms have different head arities (%d vs %d)", arity, len(q.Head))
		}
		parsed[i] = q
	}
	switch opts.Method {
	case Dissociation:
		combined := map[string]float64{} // key -> ∏(1 − ρi)
		vals := map[string][]string{}
		for i, q := range parsed {
			answers, err := d.rankDissociation(context.Background(), q, nil, opts)
			if err != nil {
				return nil, err
			}
			_ = i
			for _, a := range answers {
				key := stringsKey(a.Values)
				if _, ok := combined[key]; !ok {
					combined[key] = 1
					vals[key] = a.Values
				}
				combined[key] *= 1 - a.Score
			}
		}
		out := make([]Answer, 0, len(combined))
		for key, miss := range combined {
			out = append(out, Answer{Values: vals[key], Score: 1 - miss})
		}
		sortAnswers(out)
		return out, nil
	case Exact, MonteCarlo:
		// Union of lineages per answer, then exact/MC on the combined DNF.
		type acc struct {
			values  []string
			clauses [][]int32
		}
		union := map[string]*acc{}
		for _, q := range parsed {
			var reduced map[string][]int32
			if !opts.DisableOpt3 {
				reduced = engine.SemiJoinReduce(d.db, q)
			}
			lin := engine.EvalLineage(d.db, q, reduced)
			for i := 0; i < lin.Len(); i++ {
				key := valueKey(lin.Key(i))
				a, ok := union[key]
				if !ok {
					a = &acc{values: d.decode(lin.Key(i))}
					union[key] = a
				}
				a.clauses = append(a.clauses, lin.Clauses(i)...)
			}
		}
		budget := opts.ExactBudget
		if budget <= 0 {
			budget = DefaultExactBudget
		}
		out := make([]Answer, 0, len(union))
		rng := newSeededRand(opts.Seed)
		samples := opts.MCSamples
		if samples <= 0 {
			samples = DefaultMCSamples
		}
		for _, a := range union {
			var p float64
			var err error
			if opts.Method == Exact {
				p, err = exact.ProbBudget(a.clauses, d.db.VarProbs(), budget)
				if err != nil {
					return nil, fmt.Errorf("lapushdb: exact inference infeasible for answer %v: %w", a.values, err)
				}
			} else {
				p = mcEstimate(a.clauses, d.db.VarProbs(), samples, rng)
			}
			out = append(out, Answer{Values: a.values, Score: p})
		}
		sortAnswers(out)
		return out, nil
	default:
		return nil, fmt.Errorf("lapushdb: RankUnion supports Dissociation, Exact, and MonteCarlo")
	}
}

func valueKey(vals []engine.Value) string {
	b := make([]byte, 0, len(vals)*8)
	for _, v := range vals {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

func stringsKey(vals []string) string {
	b := make([]byte, 0, 32)
	for _, v := range vals {
		b = append(b, byte(len(v)), byte(len(v)>>8))
		b = append(b, v...)
	}
	return string(b)
}
