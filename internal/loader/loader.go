// Package loader builds LaPushDB databases from CSV files and binary
// snapshots. It is shared by cmd/lapush and cmd/lapushd so the two
// binaries agree on the CSV dialect, probability validation, and the
// snapshot format.
//
// CSV format: a header row names the columns; the LAST column of every
// row is the tuple probability (the probability column's header name is
// ignored). Probabilities must parse as floats in [0, 1]; rows of
// deterministic relations must carry probability 1.
package loader

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"lapushdb"
)

// LoadCSV reads one relation from r into db, streaming record by record
// so arbitrarily large files load in bounded memory. Errors are prefixed
// with the 1-based CSV line number (the header is line 1).
func LoadCSV(db *lapushdb.DB, name string, r io.Reader, det bool) error {
	rd := csv.NewReader(r)
	rd.TrimLeadingSpace = true
	rd.FieldsPerRecord = -1 // field counts are checked per record below
	rd.ReuseRecord = true   // record values are copied into owned slices before insert

	header, err := rd.Read()
	if err == io.EOF || (err == nil && len(header) < 2) {
		return fmt.Errorf("need a header row with at least one column plus probability")
	}
	if err != nil {
		return err
	}
	cols := append([]string(nil), header[:len(header)-1]...)
	var rel *lapushdb.Relation
	if det {
		rel, err = db.CreateDeterministicRelation(name, cols...)
	} else {
		rel, err = db.CreateRelation(name, cols...)
	}
	if err != nil {
		return err
	}
	for {
		rec, err := rd.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		ln, _ := rd.FieldPos(0)
		if len(rec) != len(cols)+1 {
			return fmt.Errorf("line %d: %d fields, want %d", ln, len(rec), len(cols)+1)
		}
		p, err := strconv.ParseFloat(rec[len(cols)], 64)
		if err != nil {
			return fmt.Errorf("line %d: bad probability %q", ln, rec[len(cols)])
		}
		if math.IsNaN(p) || p < 0 || p > 1 {
			return fmt.Errorf("line %d: probability %v out of [0, 1]", ln, p)
		}
		if det && p != 1 {
			return fmt.Errorf("line %d: deterministic relation %s requires probability 1, got %v", ln, name, p)
		}
		vals := make([]any, len(cols))
		for i, v := range rec[:len(cols)] {
			vals[i] = v
		}
		if err := rel.Insert(p, vals...); err != nil {
			return fmt.Errorf("line %d: %v", ln, err)
		}
	}
}

// LoadCSVFile is LoadCSV reading from a file path.
func LoadCSVFile(db *lapushdb.DB, name, file string, det bool) error {
	f, err := os.Open(file)
	if err != nil {
		return err
	}
	defer f.Close()
	return LoadCSV(db, name, f, det)
}

// LoadSnapshotFile restores a database snapshot written by
// SaveSnapshotFile (or lapushdb.DB.Save).
func LoadSnapshotFile(path string) (*lapushdb.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lapushdb.Load(f)
}

// SaveSnapshotFile writes a database snapshot to path.
func SaveSnapshotFile(db *lapushdb.DB, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := db.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ParseRelSpec splits a "Name=file.csv" flag value.
func ParseRelSpec(spec string) (name, file string, err error) {
	name, file, ok := strings.Cut(spec, "=")
	if !ok || name == "" || file == "" {
		return "", "", fmt.Errorf("bad relation spec %q, want Name=file.csv", spec)
	}
	return name, file, nil
}

// ApplyKeySpec declares a primary key from a "Rel=col1,col2" flag value.
func ApplyKeySpec(db *lapushdb.DB, spec string) error {
	name, cols, ok := strings.Cut(spec, "=")
	if !ok || name == "" || cols == "" {
		return fmt.Errorf("bad key spec %q, want Rel=col1,col2", spec)
	}
	r := db.Relation(name)
	if r == nil {
		return fmt.Errorf("unknown relation %s in key spec", name)
	}
	r.SetKey(strings.Split(cols, ",")...)
	return nil
}

// Build assembles a database from flag-style inputs: either a snapshot
// path, or a set of Name=file.csv specs with optional deterministic
// markers and key specs. Exactly the loading pipeline both binaries
// share.
func Build(snapshot string, relSpecs []string, detRels []string, keySpecs []string) (*lapushdb.DB, error) {
	var db *lapushdb.DB
	if snapshot != "" {
		var err error
		db, err = LoadSnapshotFile(snapshot)
		if err != nil {
			return nil, fmt.Errorf("load snapshot: %w", err)
		}
	} else {
		db = lapushdb.Open()
		det := map[string]bool{}
		for _, d := range detRels {
			det[d] = true
		}
		for _, spec := range relSpecs {
			name, file, err := ParseRelSpec(spec)
			if err != nil {
				return nil, err
			}
			if err := LoadCSVFile(db, name, file, det[name]); err != nil {
				return nil, fmt.Errorf("load %s: %w", name, err)
			}
		}
	}
	for _, spec := range keySpecs {
		if err := ApplyKeySpec(db, spec); err != nil {
			return nil, err
		}
	}
	return db, nil
}
