package loader

import (
	"fmt"
	"os"
	"strings"
	"testing"
	"testing/iotest"

	"lapushdb"
)

func TestLoadCSV(t *testing.T) {
	db := lapushdb.Open()
	csv := "user, movie, p\nann, heat, 0.8\nbob, heat, 0.5\n"
	if err := LoadCSV(db, "Likes", strings.NewReader(csv), false); err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	r := db.Relation("Likes")
	if r == nil || r.Len() != 2 {
		t.Fatalf("want 2 tuples, got %v", r)
	}
}

func TestLoadCSVRejectsProbabilityAboveOne(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, p\na, 0.5\nb, 1.7\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("want error for probability 1.7, got nil")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "out of [0, 1]") {
		t.Fatalf("want line-numbered out-of-range error, got: %v", err)
	}
}

func TestLoadCSVRejectsNegativeProbability(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, p\na, -0.2\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("want error for probability -0.2, got nil")
	}
	if !strings.Contains(err.Error(), "line 2") || !strings.Contains(err.Error(), "out of [0, 1]") {
		t.Fatalf("want line-numbered out-of-range error, got: %v", err)
	}
}

func TestLoadCSVRejectsNaNProbability(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, p\na, NaN\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("want error for probability NaN, got nil")
	}
	if !strings.Contains(err.Error(), "line 2") {
		t.Fatalf("want line-numbered error, got: %v", err)
	}
}

func TestLoadCSVDeterministicRequiresOne(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, p\na, 1\nb, 0.9\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), true)
	if err == nil {
		t.Fatal("want error for p != 1 in deterministic relation, got nil")
	}
	if !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("want line-numbered error, got: %v", err)
	}
}

func TestLoadCSVFieldCountMismatch(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, y, p\na, b, 0.5\nc, 0.5\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("want error for short row, got nil")
	}
	if !strings.Contains(err.Error(), "line 3") || !strings.Contains(err.Error(), "2 fields, want 3") {
		t.Fatalf("want line-numbered field-count error, got: %v", err)
	}
}

// TestLoadCSVStreamsLargeInput feeds the loader a reader that yields the
// file in tiny chunks, checking the streaming path converts records as
// they arrive rather than buffering the whole input.
func TestLoadCSVStreamsLargeInput(t *testing.T) {
	var b strings.Builder
	b.WriteString("x, p\n")
	const n = 5000
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "row%d, 0.5\n", i)
	}
	db := lapushdb.Open()
	if err := LoadCSV(db, "R", iotest.OneByteReader(strings.NewReader(b.String())), false); err != nil {
		t.Fatalf("LoadCSV: %v", err)
	}
	if r := db.Relation("R"); r == nil || r.Len() != n {
		t.Fatalf("want %d tuples, got %v", n, r)
	}
}

// TestLoadCSVQuotedNewlineLineNumbers checks error line numbers stay
// correct when quoted fields span lines (record index != line number).
func TestLoadCSVQuotedNewlineLineNumbers(t *testing.T) {
	db := lapushdb.Open()
	csv := "x, p\n\"multi\nline\", 0.5\nbad, 2.0\n"
	err := LoadCSV(db, "R", strings.NewReader(csv), false)
	if err == nil {
		t.Fatal("want error for probability 2.0, got nil")
	}
	if !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("want error at line 4 (after the multi-line field), got: %v", err)
	}
}

func TestBuildAndKeySpecs(t *testing.T) {
	dir := t.TempDir()
	file := dir + "/likes.csv"
	if err := writeFile(file, "user, movie, p\nann, heat, 0.8\n"); err != nil {
		t.Fatal(err)
	}
	db, err := Build("", []string{"Likes=" + file}, nil, []string{"Likes=user,movie"})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if db.Relation("Likes") == nil {
		t.Fatal("relation not loaded")
	}
	if _, err := Build("", []string{"bad-spec"}, nil, nil); err == nil {
		t.Fatal("want error for bad rel spec")
	}
	if _, err := Build("", nil, nil, []string{"Nope=user"}); err == nil {
		t.Fatal("want error for unknown relation in key spec")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := lapushdb.Open()
	if err := LoadCSV(db, "R", strings.NewReader("x, p\na, 0.5\n"), false); err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/db.lpd"
	if err := SaveSnapshotFile(db, path); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := LoadSnapshotFile(path)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if r := got.Relation("R"); r == nil || r.Len() != 1 {
		t.Fatalf("snapshot round trip lost data: %v", r)
	}
}

func writeFile(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
