// Package oracle exposes the engine's retained row-at-a-time reference
// evaluator for differential testing.
//
// The production executor (internal/engine eval.go, stream.go) is
// columnar and vectorized; the oracle preserves the original per-tuple
// operators (internal/engine oracle.go). Both must produce bit-identical
// Results and identical typed errors on every workload — the test suites
// under the repository root and internal/engine evaluate each workload
// through both and compare byte-for-byte.
//
// This package is test-only: nothing in the production server or public
// lapushdb API imports it.
package oracle

import (
	"context"

	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/plan"
)

// Options returns o with the oracle executor selected.
func Options(o engine.Options) engine.Options {
	o.Oracle = true
	return o
}

// EvalPlans evaluates plans through the row-at-a-time reference
// executor. Semantics otherwise match engine.EvalPlans.
func EvalPlans(db *engine.DB, q *cq.Query, plans []plan.Node, o engine.Options) *engine.Result {
	return engine.EvalPlans(db, q, plans, Options(o))
}

// EvalPlansCtx is EvalPlans bound to a context.
func EvalPlansCtx(ctx context.Context, db *engine.DB, q *cq.Query, plans []plan.Node, o engine.Options) *engine.Result {
	return engine.EvalPlansCtx(ctx, db, q, plans, Options(o))
}

// EvalPlansParallel evaluates plans in parallel through the reference
// executor.
func EvalPlansParallel(db *engine.DB, q *cq.Query, plans []plan.Node, o engine.Options, workers int) *engine.Result {
	return engine.EvalPlansParallel(db, q, plans, Options(o), workers)
}
