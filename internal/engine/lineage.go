package engine

import (
	"context"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Lineage holds, for every answer tuple of a query, its lineage DNF over
// the database's Boolean tuple variables: one clause (set of variable ids)
// per satisfying assignment of the existential variables. Tuples of
// deterministic relations contribute no variables; a clause that becomes
// empty is always true, making the answer certain.
type Lineage struct {
	Cols    []cq.Var
	keys    [][]Value
	clauses [][][]int32
}

// Len returns the number of answers.
func (l *Lineage) Len() int { return len(l.keys) }

// Key returns the i-th answer's head values.
func (l *Lineage) Key(i int) []Value { return l.keys[i] }

// Clauses returns the i-th answer's DNF as clauses of variable ids.
func (l *Lineage) Clauses(i int) [][]int32 { return l.clauses[i] }

// Size returns the number of clauses (lineage size, the paper's |lin|) of
// the i-th answer.
func (l *Lineage) Size(i int) int { return len(l.clauses[i]) }

// MaxSize returns the largest lineage size over all answers — the paper's
// max[lineage size] axis.
func (l *Lineage) MaxSize() int {
	m := 0
	for i := range l.clauses {
		if len(l.clauses[i]) > m {
			m = len(l.clauses[i])
		}
	}
	return m
}

// EvalLineage computes the lineage of every answer of q over db — the
// paper's "lineage query". Any probabilistic method that runs outside the
// database engine must at least do this work. Atoms are joined with the
// same semi-join-reduced scan sets as Optimization 3 when reduced is
// non-nil (pass SemiJoinReduce output) to keep intermediate results small.
func EvalLineage(db *DB, q *cq.Query, reduced map[string][]int32) *Lineage {
	return EvalLineageCtx(nil, db, q, reduced)
}

// EvalLineageCtx is EvalLineage bound to a context: the scan and join
// loops poll ctx and unwind with a cancellation panic when it is done.
// Callers passing a non-nil ctx must wrap the call in TrapCancel.
func EvalLineageCtx(ctx context.Context, db *DB, q *cq.Query, reduced map[string][]int32) *Lineage {
	cancel := &canceller{ctx: ctx}
	type lrel struct {
		cols []cq.Var
		rows [][]Value
		vars [][]int32
	}
	scanAtom := func(a cq.Atom) *lrel {
		rel := db.Relation(a.Rel)
		s := plan.NewScan(a, q.PredsOnAtom(a))
		filter := newRowFilter(db, rel, s)
		cols := s.Head()
		pos := make([]int, len(cols))
		for i, v := range cols {
			for j, t := range a.Args {
				if t.Var == v {
					pos[i] = j
					break
				}
			}
		}
		out := &lrel{cols: cols}
		emit := func(i int) {
			cancel.check()
			row := rel.Row(i)
			if !filter.ok(row) {
				return
			}
			vals := make([]Value, len(cols))
			for k, j := range pos {
				vals[k] = row[j]
			}
			out.rows = append(out.rows, vals)
			if id := rel.VarID(i); id >= 0 {
				out.vars = append(out.vars, []int32{id})
			} else {
				out.vars = append(out.vars, nil)
			}
		}
		if reduced != nil {
			if idxs, ok := reduced[rel.Name]; ok {
				for _, i := range idxs {
					emit(int(i))
				}
				return out
			}
		}
		for i := 0; i < rel.Len(); i++ {
			emit(i)
		}
		return out
	}
	joinL := func(l, r *lrel) *lrel {
		_, lPos, rPos := sharedCols(l.cols, r.cols)
		colSet := cq.NewVarSet(l.cols...)
		for _, c := range r.cols {
			colSet.Add(c)
		}
		outCols := colSet.Sorted()
		type src struct {
			left bool
			pos  int
		}
		srcs := make([]src, len(outCols))
		for i, c := range outCols {
			if j := colIndex(l.cols, c); j >= 0 {
				srcs[i] = src{true, j}
			} else {
				srcs[i] = src{false, colIndex(r.cols, c)}
			}
		}
		table := map[string][]int32{}
		key := make([]byte, 0, 16)
		for i := range r.rows {
			key = key[:0]
			for _, j := range rPos {
				key = appendValue(key, r.rows[i][j])
			}
			table[string(key)] = append(table[string(key)], int32(i))
		}
		out := &lrel{cols: outCols}
		for i := range l.rows {
			key = key[:0]
			for _, j := range lPos {
				key = appendValue(key, l.rows[i][j])
			}
			for _, ri := range table[string(key)] {
				cancel.check()
				vals := make([]Value, len(outCols))
				for k, s := range srcs {
					if s.left {
						vals[k] = l.rows[i][s.pos]
					} else {
						vals[k] = r.rows[ri][s.pos]
					}
				}
				vs := make([]int32, 0, len(l.vars[i])+len(r.vars[ri]))
				vs = append(vs, l.vars[i]...)
				vs = append(vs, r.vars[ri]...)
				out.rows = append(out.rows, vals)
				out.vars = append(out.vars, vs)
			}
		}
		return out
	}

	atoms := orderAtomsByConnectivity(q.Atoms)
	cur := scanAtom(atoms[0])
	for _, a := range atoms[1:] {
		cur = joinL(cur, scanAtom(a))
	}

	// Group by head values.
	head := append([]cq.Var(nil), q.Head...)
	sort.Slice(head, func(i, j int) bool { return head[i] < head[j] })
	keep := make([]int, len(head))
	for i, v := range head {
		keep[i] = colIndex(cur.cols, v)
	}
	out := &Lineage{Cols: head}
	groups := map[string]int{}
	key := make([]byte, 0, 16)
	for i := range cur.rows {
		cancel.check()
		key = key[:0]
		for _, j := range keep {
			key = appendValue(key, cur.rows[i][j])
		}
		g, ok := groups[string(key)]
		if !ok {
			g = out.Len()
			groups[string(key)] = g
			vals := make([]Value, len(head))
			for k, j := range keep {
				vals[k] = cur.rows[i][j]
			}
			out.keys = append(out.keys, vals)
			out.clauses = append(out.clauses, nil)
		}
		clause := append([]int32(nil), cur.vars[i]...)
		sort.Slice(clause, func(a, b int) bool { return clause[a] < clause[b] })
		out.clauses[g] = append(out.clauses[g], clause)
	}
	// Deduplicate identical clauses per answer (repeated variables inside
	// a clause are also collapsed by the sort + unique pass).
	for g := range out.clauses {
		out.clauses[g] = dedupeClauses(out.clauses[g])
	}
	return out
}

func dedupeClauses(cs [][]int32) [][]int32 {
	seen := map[string]bool{}
	var out [][]int32
	key := make([]byte, 0, 32)
	for _, c := range cs {
		// Collapse duplicate variables within the clause (sorted already).
		uniq := c[:0]
		for i, v := range c {
			if i == 0 || c[i-1] != v {
				uniq = append(uniq, v)
			}
		}
		key = key[:0]
		for _, v := range uniq {
			key = appendValue(key, Value(v))
		}
		if !seen[string(key)] {
			seen[string(key)] = true
			out = append(out, uniq)
		}
	}
	return out
}

// orderAtomsByConnectivity reorders atoms so that each one (after the
// first) shares a variable with an earlier atom whenever possible,
// avoiding needless cross products in left-deep folds.
func orderAtomsByConnectivity(atoms []cq.Atom) []cq.Atom {
	out := make([]cq.Atom, 0, len(atoms))
	used := make([]bool, len(atoms))
	out = append(out, atoms[0])
	used[0] = true
	have := cq.NewVarSet(atoms[0].Vars()...)
	for len(out) < len(atoms) {
		pick := -1
		for i, a := range atoms {
			if used[i] {
				continue
			}
			for _, v := range a.Vars() {
				if have.Has(v) {
					pick = i
					break
				}
			}
			if pick >= 0 {
				break
			}
		}
		if pick < 0 {
			for i := range atoms {
				if !used[i] {
					pick = i
					break
				}
			}
		}
		used[pick] = true
		out = append(out, atoms[pick])
		for _, v := range atoms[pick].Vars() {
			have.Add(v)
		}
	}
	return out
}

// EvalDeterministic evaluates q under set semantics — the paper's
// "standard SQL" baseline (select distinct, no probability arithmetic).
// Atoms are joined in connectivity order with early projection: after
// each join, columns no longer needed by the head or by later atoms are
// projected away with duplicate elimination. It returns the distinct
// head tuples.
func EvalDeterministic(db *DB, q *cq.Query) *Result {
	return EvalDeterministicCtx(nil, db, q)
}

// EvalDeterministicCtx is EvalDeterministic bound to a context (see
// EvalLineageCtx for the cancellation contract).
func EvalDeterministicCtx(ctx context.Context, db *DB, q *cq.Query) *Result {
	head := q.HeadSet()
	atoms := orderAtomsByConnectivity(q.Atoms)
	// needed[i]: variables required after joining atom i.
	needed := make([]cq.VarSet, len(atoms))
	later := head.Clone()
	for i := len(atoms) - 1; i >= 0; i-- {
		needed[i] = later.Clone()
		for _, v := range atoms[i].Vars() {
			later.Add(v)
		}
	}
	e := NewEvaluatorCtx(ctx, db, nil, Options{})
	var cur *Result
	for i, a := range atoms {
		s := e.scan(plan.NewScan(a, q.PredsOnAtom(a)))
		dedupeInPlace(s)
		if cur == nil {
			cur = s
		} else {
			cur = join(cur, s, e.ex())
		}
		keep := cq.NewVarSet(cur.Cols...).Intersect(needed[i].Union(head))
		cur = projectSet(cur, keep.Sorted())
	}
	cur = projectSet(cur, head.Clone().Sorted())
	return cur
}

// projectSet projects under set semantics: duplicates are eliminated and
// scores forced to 1.
func projectSet(in *Result, onto []cq.Var) *Result {
	out := project(in, onto, nil)
	for i := range out.scores {
		out.scores[i] = 1
	}
	return out
}

// dedupeInPlace removes duplicate rows, keeping score 1 (set semantics).
func dedupeInPlace(r *Result) {
	m := r.Len()
	seen := newGroupTable(len(r.Cols), m)
	n := 0
	key := make([]int32, 0, len(r.Cols))
	for i := 0; i < m; i++ {
		key = r.idRowInto(i, key)
		if _, fresh := seen.intern(key); !fresh {
			continue
		}
		for k := range r.ids {
			r.vals[k][n] = r.vals[k][i]
			r.ids[k][n] = r.ids[k][i]
		}
		r.scores[n] = 1
		n++
	}
	for k := range r.ids {
		r.vals[k] = r.vals[k][:n]
		r.ids[k] = r.ids[k][:n]
	}
	r.scores = r.scores[:n]
}
