package engine

import (
	"strings"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

func TestEvalProfiled(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateRelation("S", []string{"x", "y"})
	T := db.CreateRelation("T", []string{"y"})
	R.Insert([]Value{1}, 0.5)
	S.Insert([]Value{1, 2}, 0.5)
	T.Insert([]Value{2}, 0.5)
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sp := core.SinglePlan(q, nil)
	e := NewEvaluator(db, q, Options{ReuseSubplans: true})
	res, stats := e.EvalProfiled(sp)
	// Result identical to plain Eval.
	plain := NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp)
	if res.BooleanScore() != plain.BooleanScore() {
		t.Errorf("profiled %v vs plain %v", res.BooleanScore(), plain.BooleanScore())
	}
	if len(stats) == 0 {
		t.Fatal("no stats recorded")
	}
	// Root is last (post-order) and has depth 0.
	if stats[len(stats)-1].Depth != 0 {
		t.Errorf("root depth = %d", stats[len(stats)-1].Depth)
	}
	// With the cache on, shared scans appear as cache hits.
	hits := 0
	for _, s := range stats {
		if s.CacheHit {
			hits++
		}
	}
	if hits == 0 {
		t.Error("expected cache hits for shared subplans in the min plan")
	}
	out := FormatProfile(stats)
	for _, want := range []string{"min (", "join (", "scan R(x)", "rows=", "(cached)"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q:\n%s", want, out)
		}
	}
}
