package engine

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lapushdb/internal/plan"
)

// Cross-query subplan sharing. Optimization 2 (views for common
// subplans) memoizes canonicalized subplan results within one
// evaluation; a BatchMemo extends the same memo across every query of a
// batch evaluated against a single immutable database snapshot. Entries
// are keyed by the subplan's canonical plan key plus a fingerprint of
// the semi-join-reduced row sets the subplan's scans read, so two
// queries share an entry exactly when evaluating the subplan standalone
// would produce bit-identical results — reuse can therefore never
// change any output bit relative to one-at-a-time evaluation, and the
// bit-identical-across-Workers contract of morsel.go extends to shared
// entries (each entry is computed once, deterministically, regardless
// of which query's evaluator gets there first).
//
// The memo also carries the batch's shared intermediate-row budget:
// MaxIntermediateRows bounds the whole batch, with rows for a shared
// subplan charged once, when it is first computed.

// BatchMemo shares canonicalized subplan results and one row budget
// across the queries of a batch. All methods are safe for concurrent
// use; a nil BatchMemo disables sharing. The memo must only be used
// with evaluators over one immutable DB (one pinned store version) and
// one set of result-affecting options — the scope string is the
// caller's statement of that invariant (version fingerprint plus
// option flags) and prefixes every key.
type BatchMemo struct {
	scope  string
	share  bool
	budget *rowBudget

	mu      sync.Mutex
	entries map[string]*memoEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// memoEntry is one shared subplan result. done is closed when the
// computation finishes; ok distinguishes a committed result from a
// computation that unwound (cancellation, budget) before committing.
type memoEntry struct {
	done chan struct{}
	res  *Result
	ok   bool
}

// NewBatchMemo builds a memo scoped by the caller's version/options
// fingerprint, with a batch-wide intermediate-row budget of maxRows
// (<= 0 unlimited). share=false disables subplan reuse (Opt2 off)
// while keeping the shared budget.
func NewBatchMemo(scope string, maxRows int, share bool) *BatchMemo {
	return &BatchMemo{
		scope:   scope,
		share:   share,
		budget:  newRowBudget(maxRows),
		entries: map[string]*memoEntry{},
	}
}

// SharedHits returns how many subplan evaluations were served from the
// memo instead of being recomputed.
func (m *BatchMemo) SharedHits() int64 { return m.hits.Load() }

// SharedMisses returns how many subplan results were computed and
// inserted into the memo.
func (m *BatchMemo) SharedMisses() int64 { return m.misses.Load() }

// Entries returns the number of memoized subplan results.
func (m *BatchMemo) Entries() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// getOrCompute returns the memoized result for key, computing and
// inserting it when absent. Concurrent callers of the same key block
// until the first computation commits; a computation that unwinds
// (cancellation or budget panic) removes its entry so waiters retry —
// typically to fail fast on the same dead context.
func (m *BatchMemo) getOrCompute(key string, compute func() *Result) *Result {
	for {
		m.mu.Lock()
		en, ok := m.entries[key]
		if !ok {
			en = &memoEntry{done: make(chan struct{})}
			m.entries[key] = en
			m.mu.Unlock()
			m.misses.Add(1)
			return m.fill(key, en, compute)
		}
		m.mu.Unlock()
		<-en.done
		if en.ok {
			m.hits.Add(1)
			return en.res
		}
	}
}

// fill runs the computation for a fresh entry, committing on success
// and withdrawing the entry when the computation unwinds by panic (the
// engine's cancellation and budget channel).
func (m *BatchMemo) fill(key string, en *memoEntry, compute func() *Result) *Result {
	defer func() {
		if !en.ok {
			m.mu.Lock()
			delete(m.entries, key)
			m.mu.Unlock()
		}
		close(en.done)
	}()
	en.res = compute()
	en.ok = true
	return en.res
}

// memoKey builds the shared-memo key for subplan p: the memo scope, the
// canonical plan key, and — per relation the subplan scans — a
// fingerprint of that relation's semi-join-reduced live row set. Two
// evaluators producing the same key are guaranteed to compute
// bit-identical results for p: same snapshot (scope), same plan
// structure including constants and predicates (plan key), and same
// scan inputs (reduction fingerprints).
func (e *Evaluator) memoKey(p plan.Node) string {
	var names []string
	collectRels(p, &names)
	sort.Strings(names)
	var b strings.Builder
	b.WriteString(e.memo.scope)
	b.WriteByte(0)
	b.WriteString(p.Key())
	prev := ""
	for _, n := range names {
		if n == prev {
			continue
		}
		prev = n
		b.WriteByte(0)
		b.WriteString(n)
		b.WriteByte('=')
		b.WriteString(e.reducedFP(n))
	}
	return b.String()
}

// collectRels appends the relation names scanned under p.
func collectRels(p plan.Node, out *[]string) {
	if s, ok := p.(*plan.Scan); ok {
		*out = append(*out, s.Atom.Rel)
		return
	}
	for _, c := range p.Children() {
		collectRels(c, out)
	}
}

// reducedFP fingerprints one relation's semi-join-reduced live row set
// as seen by this evaluator: "*" when the relation is scanned in full,
// otherwise the live count plus an FNV-1a digest of the live indices in
// order. Computed once per relation per evaluator.
func (e *Evaluator) reducedFP(rel string) string {
	if e.reduced == nil {
		return "*"
	}
	live, ok := e.reduced[rel]
	if !ok {
		return "*"
	}
	if fp, ok := e.redFP[rel]; ok {
		return fp
	}
	h := fnv.New64a()
	var buf [4]byte
	for _, r := range live {
		buf[0], buf[1], buf[2], buf[3] = byte(r), byte(r>>8), byte(r>>16), byte(r>>24)
		h.Write(buf[:])
	}
	fp := strconv.Itoa(len(live)) + ":" + strconv.FormatUint(h.Sum64(), 16)
	if e.redFP == nil {
		e.redFP = map[string]string{}
	}
	e.redFP[rel] = fp
	return fp
}
