package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Result is a relation-shaped evaluation result: one row of values per
// output tuple over Cols, with a probability score each. Row order is
// unspecified; use Sorted or Score for stable access.
type Result struct {
	Cols   []cq.Var
	rows   []Value // flattened, len = len(Cols) * n
	ids    []int32 // dense value ids (DB.noteValue), parallel to rows
	scores []float64

	// Lazy ScoreOf index: hash of the row values -> first row with that
	// hash, with hash collisions chained through idxNext.
	idxOnce sync.Once
	idx     map[uint64]int32
	idxNext []int32
}

// Len returns the number of result tuples.
func (r *Result) Len() int { return len(r.scores) }

// Row returns the i-th tuple (a view; do not modify).
func (r *Result) Row(i int) []Value {
	a := len(r.Cols)
	if a == 0 {
		return nil
	}
	return r.rows[i*a : (i+1)*a]
}

// idRow returns the dense value ids of the i-th tuple (a view; do not
// modify).
func (r *Result) idRow(i int) []int32 {
	a := len(r.Cols)
	return r.ids[i*a : (i+1)*a]
}

// Score returns the probability score of the i-th tuple.
func (r *Result) Score(i int) float64 { return r.scores[i] }

// BooleanScore returns the score of a Boolean query's result: the single
// tuple's score, or 0 when the query has no satisfying assignment.
func (r *Result) BooleanScore() float64 {
	if r.Len() == 0 {
		return 0
	}
	return r.scores[0]
}

// ScoreOf returns the score of the tuple with the given values, and
// whether it exists. The first call builds a hash index over the rows,
// so a batch of lookups costs O(n + lookups) instead of O(n·lookups).
// Concurrent ScoreOf calls are safe; do not overlap them with mutation.
func (r *Result) ScoreOf(key []Value) (float64, bool) {
	if len(key) != len(r.Cols) {
		return 0, false
	}
	r.idxOnce.Do(r.buildScoreIndex)
	j, ok := r.idx[valueKeyHash(key)]
	for ok {
		row := r.Row(int(j))
		match := true
		for i := range key {
			if row[i] != key[i] {
				match = false
				break
			}
		}
		if match {
			return r.scores[j], true
		}
		j = r.idxNext[j]
		ok = j >= 0
	}
	return 0, false
}

// buildScoreIndex hashes every row once. Duplicate rows keep the first
// occurrence, matching the linear scan ScoreOf replaced.
func (r *Result) buildScoreIndex() {
	n := r.Len()
	r.idx = make(map[uint64]int32, n)
	r.idxNext = make([]int32, n)
	for i := 0; i < n; i++ {
		r.idxNext[i] = -1
		h := valueKeyHash(r.Row(i))
		first, ok := r.idx[h]
		if !ok {
			r.idx[h] = int32(i)
			continue
		}
		for j := first; ; j = r.idxNext[j] {
			if r.idxNext[j] < 0 {
				r.idxNext[j] = int32(i)
				break
			}
		}
	}
}

// Sorted returns the row indices ordered by descending score, breaking
// ties by row values ascending — the ranking order of the paper's
// experiments.
func (r *Result) Sorted() []int {
	idx := make([]int, r.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		sa, sb := r.scores[idx[a]], r.scores[idx[b]]
		if sa != sb {
			return sa > sb
		}
		ra, rb := r.Row(idx[a]), r.Row(idx[b])
		for j := range ra {
			if ra[j] != rb[j] {
				return ra[j] < rb[j]
			}
		}
		return false
	})
	return idx
}

// Options configures plan evaluation.
type Options struct {
	// ReuseSubplans memoizes subplan results by canonical key within one
	// evaluation — the run-time counterpart of Optimization 2 (views for
	// common subplans).
	ReuseSubplans bool
	// SemiJoin applies the full deterministic semi-join reduction of
	// Optimization 3 to the scanned relations before evaluation.
	SemiJoin bool
	// Reduced, when non-nil, supplies a precomputed semi-join reduction
	// (as produced by SemiJoinReduce) instead of recomputing it, letting
	// staged evaluations — the anytime refiner's plan rounds, MC
	// sampling, and exact expansion all read the same reduced lineage —
	// share one reduction. It takes precedence over SemiJoin.
	Reduced map[string][]int32
	// CostBasedJoins orders k-ary joins with a Selinger-style dynamic
	// program over System R cardinality estimates instead of the default
	// greedy smallest-connected-input heuristic.
	CostBasedJoins bool
	// Workers bounds intra-plan morsel parallelism: operators split row
	// ranges into fixed-size chunks evaluated on up to Workers
	// goroutines, the calling one included. Values <= 1 evaluate
	// sequentially. Chunk layout depends only on input sizes — never on
	// Workers — so output scores are bit-identical across all settings
	// (see morsel.go).
	Workers int
	// Stats, when non-nil, accumulates execution counters (morsel chunks
	// and join partitions processed) across the evaluation. Safe to share
	// between concurrent evaluators.
	Stats *EvalStats
	// MaxIntermediateRows caps the total number of intermediate result
	// rows one evaluation may materialize across all operators (scan
	// outputs, join outputs, projection groups). Exceeding it aborts the
	// evaluation with an error wrapping ErrBudget. <= 0 disables the cap.
	MaxIntermediateRows int
	// Memo, when non-nil, shares canonicalized subplan results across
	// the evaluators of one batch (see batch.go). When the memo carries
	// a row budget it replaces MaxIntermediateRows: the budget spans the
	// whole batch instead of one evaluation.
	Memo *BatchMemo
}

// Evaluator evaluates plans over a database under the extensional score
// semantics of Section 2: joins multiply scores, duplicate-eliminating
// projections combine scores as independent events, min nodes keep the
// per-tuple minimum.
type Evaluator struct {
	db      *DB
	opts    Options
	cache   map[string]*Result
	reduced map[string][]int32 // atom relation -> surviving row indices
	cancel  canceller
	pool    *pool      // helper goroutines for morsel parallelism; nil = sequential
	budget  *rowBudget // intermediate row budget; nil = unlimited
	memo    *BatchMemo // cross-query subplan memo; nil outside batches
	redFP   map[string]string
}

// ex returns the operator execution context for this evaluator.
func (e *Evaluator) ex() *exec {
	return &exec{c: &e.cancel, pool: e.pool, stats: e.opts.Stats, budget: e.budget}
}

// NewEvaluator prepares an evaluator for one query evaluation. If
// opts.SemiJoin is set, q is used to compute the semi-join reduction; q
// may be nil otherwise.
func NewEvaluator(db *DB, q *cq.Query, opts Options) *Evaluator {
	return NewEvaluatorCtx(nil, db, q, opts)
}

// NewEvaluatorCtx is NewEvaluator bound to a context: the semi-join
// reduction and all evaluation loops poll ctx and unwind with a
// cancellation panic when it is done. Callers passing a non-nil ctx must
// wrap evaluation in TrapCancel.
func NewEvaluatorCtx(ctx context.Context, db *DB, q *cq.Query, opts Options) *Evaluator {
	e := &Evaluator{db: db, opts: opts}
	e.cancel.ctx = ctx
	e.pool = newPool(ctx, opts.Workers)
	e.budget = newRowBudget(opts.MaxIntermediateRows)
	e.bindMemo()
	if opts.ReuseSubplans {
		e.cache = map[string]*Result{}
	}
	if opts.Reduced != nil {
		e.reduced = opts.Reduced
	} else if opts.SemiJoin && q != nil {
		e.reduced = semiJoinReduce(db, q, &e.cancel)
	}
	return e
}

// WithContext binds the evaluator to a context: evaluation loops poll it
// periodically and, when it is cancelled, unwind with a panic that
// TrapCancel converts back into the context's error. Callers that bind a
// context must wrap evaluation in TrapCancel.
func (e *Evaluator) WithContext(ctx context.Context) *Evaluator {
	e.cancel.ctx = ctx
	return e
}

// bindMemo attaches the batch memo from the evaluator's options, and —
// when the memo carries the batch-wide row budget — replaces the
// per-evaluation budget with it.
func (e *Evaluator) bindMemo() {
	m := e.opts.Memo
	if m == nil {
		return
	}
	e.memo = m
	if m.budget != nil {
		e.budget = m.budget
	}
}

// Eval evaluates a plan and returns its result. The result's columns are
// the plan's head variables in sorted order. With a batch memo attached
// the result is shared across the batch's evaluators (see batch.go).
func (e *Evaluator) Eval(p plan.Node) *Result {
	e.cancel.checkNow()
	if e.cache != nil {
		if r, ok := e.cache[p.Key()]; ok {
			return r
		}
	}
	var out *Result
	if e.memo != nil && e.memo.share {
		out = e.memo.getOrCompute(e.memoKey(p), func() *Result { return e.evalNode(p) })
	} else {
		out = e.evalNode(p)
	}
	if e.cache != nil {
		e.cache[p.Key()] = out
	}
	return out
}

// evalNode computes one plan node, recursing through Eval so children
// hit the caches.
func (e *Evaluator) evalNode(p plan.Node) *Result {
	var out *Result
	switch t := p.(type) {
	case *plan.Scan:
		out = e.scan(t)
	case *plan.Project:
		out = project(e.Eval(t.Child), t.OnTo, e.ex())
	case *plan.Join:
		results := make([]*Result, len(t.Subs))
		for i, c := range t.Subs {
			results[i] = e.Eval(c)
		}
		if e.opts.CostBasedJoins {
			out = foldJoinCostBased(results, e.ex())
		} else {
			out = foldJoin(results, e.ex())
		}
	case *plan.Min:
		out = e.Eval(t.Subs[0])
		for _, c := range t.Subs[1:] {
			out = combineMin(out, e.Eval(c), e.ex())
		}
	default:
		panic("engine: unknown plan node")
	}
	return out
}

// EvalPlans evaluates several plans independently (no sharing between
// them, mirroring separate SQL statements) and combines them with the
// per-answer minimum — the unoptimized "all minimal plans" strategy.
func EvalPlans(db *DB, q *cq.Query, plans []plan.Node, opts Options) *Result {
	return EvalPlansCtx(nil, db, q, plans, opts)
}

// EvalPlansCtx is EvalPlans bound to a context (see NewEvaluatorCtx).
func EvalPlansCtx(ctx context.Context, db *DB, q *cq.Query, plans []plan.Node, opts Options) *Result {
	var out *Result
	// One row budget spans every plan: MaxIntermediateRows bounds the
	// query, not each of its (possibly many) minimal plans. A batch
	// memo's budget wins — it spans the whole batch.
	budget := newRowBudget(opts.MaxIntermediateRows)
	if opts.Memo != nil && opts.Memo.budget != nil {
		budget = opts.Memo.budget
	}
	for _, p := range plans {
		e := NewEvaluatorCtx(ctx, db, q, opts)
		e.budget = budget
		r := e.Eval(p)
		if out == nil {
			out = r
		} else {
			out = combineMin(out, r, e.ex())
		}
	}
	return out
}

// scan reads an atom's relation, applying constant selections, repeated-
// variable equality, pushed-down predicates, and — when the evaluator has
// a semi-join reduction — the reduced row set.
func (e *Evaluator) scan(s *plan.Scan) *Result {
	rel := e.db.Relation(s.Atom.Rel)
	if rel == nil {
		panic(fmt.Sprintf("engine: unknown relation %s", s.Atom.Rel))
	}
	if len(s.Atom.Args) != rel.Arity() {
		panic(fmt.Sprintf("engine: atom %s has arity %d, relation has %d", s.Atom, len(s.Atom.Args), rel.Arity()))
	}
	// Column layout of the output: the atom's distinct variables, sorted.
	cols := append([]cq.Var(nil), s.Head()...)
	// For each output column, the first argument position holding it.
	pos := make([]int, len(cols))
	for i, v := range cols {
		for j, t := range s.Atom.Args {
			if t.Var == v {
				pos[i] = j
				break
			}
		}
	}
	filter := newRowFilter(e.db, rel, s)
	out := &Result{Cols: cols}
	emit := func(i int) {
		e.cancel.check()
		row := rel.Row(i)
		if !filter.ok(row) {
			return
		}
		e.budget.charge(1)
		vrow := rel.vidRow(i)
		for _, j := range pos {
			out.rows = append(out.rows, row[j])
			out.ids = append(out.ids, vrow[j])
		}
		out.scores = append(out.scores, rel.Prob(i))
	}
	if e.reduced != nil {
		if idxs, ok := e.reduced[rel.Name]; ok {
			for _, i := range idxs {
				emit(int(i))
			}
			return out
		}
	}
	if cand, ok := rel.indexCandidates(e.db, s); ok {
		for _, i := range cand {
			emit(int(i))
		}
		return out
	}
	for i := 0; i < rel.Len(); i++ {
		emit(i)
	}
	return out
}

// rowFilter checks constants, repeated variables, and predicates on one
// atom's tuples.
type rowFilter struct {
	consts []struct {
		pos int
		val Value
	}
	equals [][2]int
	preds  []compiledPred
}

func newRowFilter(db *DB, rel *Relation, s *plan.Scan) *rowFilter {
	f := &rowFilter{}
	seen := map[cq.Var]int{}
	for j, t := range s.Atom.Args {
		if !t.IsVar() {
			f.consts = append(f.consts, struct {
				pos int
				val Value
			}{j, db.lookupConst(t.Const)})
			continue
		}
		if prev, ok := seen[t.Var]; ok {
			f.equals = append(f.equals, [2]int{prev, j})
		} else {
			seen[t.Var] = j
		}
	}
	for _, p := range s.Preds {
		if j, ok := seen[p.Var]; ok {
			f.preds = append(f.preds, compilePred(db, p, j))
		}
	}
	return f
}

func (f *rowFilter) ok(row []Value) bool {
	for _, c := range f.consts {
		if row[c.pos] != c.val {
			return false
		}
	}
	for _, eq := range f.equals {
		if row[eq[0]] != row[eq[1]] {
			return false
		}
	}
	for _, p := range f.preds {
		if !p.ok(row) {
			return false
		}
	}
	return true
}

// compiledPred is one pushed-down comparison bound to an argument
// position.
type compiledPred struct {
	pos int
	op  cq.CompareOp
	num Value  // for numeric comparisons
	pat string // for LIKE
	db  *DB
}

func compilePred(db *DB, p cq.Predicate, pos int) compiledPred {
	c := compiledPred{pos: pos, op: p.Op, db: db}
	if p.Op == cq.OpLike {
		c.pat = p.Const
	} else {
		c.num = db.lookupConst(p.Const)
	}
	return c
}

func (c compiledPred) ok(row []Value) bool {
	v := row[c.pos]
	switch c.op {
	case cq.OpLE:
		return v >= 0 && c.num >= 0 && v <= c.num
	case cq.OpLT:
		return v >= 0 && c.num >= 0 && v < c.num
	case cq.OpGE:
		return v >= 0 && c.num >= 0 && v >= c.num
	case cq.OpGT:
		return v >= 0 && c.num >= 0 && v > c.num
	case cq.OpEQ:
		return v == c.num
	case cq.OpNE:
		return v != c.num
	case cq.OpLike:
		return LikeMatch(c.pat, c.db.Decode(v))
	default:
		panic("engine: unknown predicate op")
	}
}

// LikeMatch implements SQL LIKE with % (any run) and _ (any one
// character) wildcards.
func LikeMatch(pattern, s string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	pi, si := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// project groups the child's rows by the kept columns and combines the
// scores of each group as independent events: 1 − ∏(1 − s). This is the
// probabilistic duplicate-eliminating projection π^p.
//
// The grouping is morsel-parallel: each chunk builds its own group
// table with per-group complement partials ∏(1 − s) in row order, then
// one goroutine merges partials chunk-ascending. Group ids follow
// first-appearance order across chunks, which equals sequential row
// order, so output rows and scores are bit-identical to a sequential
// pass: within a chunk the factor order is the row order, and the
// single-chunk case multiplies the initial 1 by the partial — exact in
// IEEE arithmetic.
func project(in *Result, onto []cq.Var, ex *exec) *Result {
	keep := make([]int, len(onto))
	for i, v := range onto {
		keep[i] = colIndex(in.Cols, v)
	}
	ka := len(keep)
	n := in.Len()
	out := &Result{Cols: append([]cq.Var(nil), onto...)}
	if n == 0 {
		return out
	}
	type chunkGroups struct {
		firstRow []int32 // local group id -> first input row of the group
		partial  []float64
	}
	nChunks := numChunks(n)
	locals := make([]chunkGroups, nChunks)
	if nChunks > 1 {
		ex.addPartitions(nChunks)
	}
	ex.forChunks(nChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, n)
		g := newGroupTable(ka, hi-lo)
		lg := &locals[ci]
		key := make([]int32, ka)
		for i := lo; i < hi; i++ {
			c.check()
			ids := in.idRow(i)
			for k, j := range keep {
				key[k] = ids[j]
			}
			gid, fresh := g.intern(key)
			if fresh {
				ex.charge(1)
				lg.firstRow = append(lg.firstRow, int32(i))
				lg.partial = append(lg.partial, 1)
			}
			lg.partial[gid] *= 1 - in.scores[i]
		}
	})
	global := newGroupTable(ka, len(locals[0].firstRow))
	cc := ex.canc()
	key := make([]int32, ka)
	for ci := range locals {
		lg := &locals[ci]
		for li, ri := range lg.firstRow {
			cc.check()
			ids := in.idRow(int(ri))
			for k, j := range keep {
				key[k] = ids[j]
			}
			gid, fresh := global.intern(key)
			if fresh {
				row := in.Row(int(ri))
				for _, j := range keep {
					out.rows = append(out.rows, row[j])
					out.ids = append(out.ids, ids[j])
				}
				out.scores = append(out.scores, 1)
			}
			out.scores[gid] *= lg.partial[li]
		}
	}
	for i := range out.scores {
		out.scores[i] = 1 - out.scores[i]
	}
	return out
}

// foldJoin joins several results, ordering the folds to avoid cross
// products: it starts from the smallest input and greedily joins the
// smallest remaining input that shares a column with the accumulated
// result, falling back to a cross product only when no input connects.
func foldJoin(results []*Result, ex *exec) *Result {
	if len(results) == 1 {
		return results[0]
	}
	remaining := append([]*Result(nil), results...)
	// Start with the smallest input.
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].Len() < remaining[j].Len() })
	cur := remaining[0]
	remaining = remaining[1:]
	for len(remaining) > 0 {
		have := cq.NewVarSet(cur.Cols...)
		pick := -1
		for i, r := range remaining {
			connected := false
			for _, c := range r.Cols {
				if have.Has(c) {
					connected = true
					break
				}
			}
			if connected && (pick < 0 || r.Len() < remaining[pick].Len()) {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0 // genuine cross product (disconnected plan)
		}
		cur = join(cur, remaining[pick], ex)
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return cur
}

// join computes the natural join of two results on their shared columns,
// multiplying scores.
//
// The build side is hashed into a partitioned table (see buildJoinTable)
// and the probe side scans in parallel morsels into per-chunk buffers
// that are concatenated chunk-ascending — the emission order of a
// sequential probe, with build matches ascending within each probe row,
// so the output is bit-identical to the sequential join.
func join(l, r *Result, ex *exec) *Result {
	_, lPos, rPos := sharedCols(l.Cols, r.Cols)
	// Output columns: union, sorted.
	colSet := cq.NewVarSet(l.Cols...)
	for _, c := range r.Cols {
		colSet.Add(c)
	}
	outCols := colSet.Sorted()
	// For each output column, where to read it from (left first).
	type src struct {
		left bool
		pos  int
	}
	srcs := make([]src, len(outCols))
	for i, c := range outCols {
		if j := colIndex(l.Cols, c); j >= 0 {
			srcs[i] = src{true, j}
		} else {
			srcs[i] = src{false, colIndex(r.Cols, c)}
		}
	}
	out := &Result{Cols: outCols}
	// Build on the smaller input.
	build, probe := r, l
	buildPos, probePos := rPos, lPos
	buildLeft := false
	if l.Len() < r.Len() {
		build, probe = l, r
		buildPos, probePos = lPos, rPos
		buildLeft = true
	}
	jt := buildJoinTable(build, buildPos, ex)
	np := probe.Len()
	pChunks := numChunks(np)
	type chunkBuf struct {
		rows   []Value
		ids    []int32
		scores []float64
	}
	bufs := make([]chunkBuf, pChunks)
	if pChunks > 1 {
		ex.addPartitions(pChunks)
	}
	ex.forChunks(pChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, np)
		b := &bufs[ci]
		key := make([]int32, len(probePos))
		for i := lo; i < hi; i++ {
			c.check()
			prow := probe.Row(i)
			pids := probe.idRow(i)
			for k, j := range probePos {
				key[k] = pids[j]
			}
			for _, bi := range jt.lookup(keySig(key), key) {
				c.check()
				brow := build.Row(int(bi))
				bids := build.idRow(int(bi))
				var lrow, rrow []Value
				var lids, rids []int32
				var ls, rs float64
				if buildLeft {
					lrow, rrow = brow, prow
					lids, rids = bids, pids
					ls, rs = build.scores[bi], probe.scores[i]
				} else {
					lrow, rrow = prow, brow
					lids, rids = pids, bids
					ls, rs = probe.scores[i], build.scores[bi]
				}
				for _, s := range srcs {
					if s.left {
						b.rows = append(b.rows, lrow[s.pos])
						b.ids = append(b.ids, lids[s.pos])
					} else {
						b.rows = append(b.rows, rrow[s.pos])
						b.ids = append(b.ids, rids[s.pos])
					}
				}
				b.scores = append(b.scores, ls*rs)
				ex.charge(1)
			}
		}
	})
	if pChunks == 1 {
		out.rows, out.ids, out.scores = bufs[0].rows, bufs[0].ids, bufs[0].scores
		return out
	}
	total := 0
	for i := range bufs {
		total += len(bufs[i].scores)
	}
	width := len(outCols)
	out.rows = make([]Value, 0, total*width)
	out.ids = make([]int32, 0, total*width)
	out.scores = make([]float64, 0, total)
	for i := range bufs {
		out.rows = append(out.rows, bufs[i].rows...)
		out.ids = append(out.ids, bufs[i].ids...)
		out.scores = append(out.scores, bufs[i].scores...)
	}
	return out
}

// combineMin merges two results with identical columns, keeping the
// per-tuple minimum score. Plans of the same query always produce the
// same answer support, so every key is expected on both sides; a tuple
// seen on only one side keeps its score (defensive, and correct for the
// upper-bound semantics).
func combineMin(a, b *Result, ex *exec) *Result {
	if !varsSliceEqual(a.Cols, b.Cols) {
		panic(fmt.Sprintf("engine: min over different columns %v vs %v", a.Cols, b.Cols))
	}
	cc := ex.canc()
	g := newGroupTable(len(a.Cols), a.Len())
	rowOf := make([]int32, 0, a.Len())
	out := &Result{
		Cols:   a.Cols,
		rows:   append([]Value(nil), a.rows...),
		ids:    append([]int32(nil), a.ids...),
		scores: append([]float64(nil), a.scores...),
	}
	for i := 0; i < a.Len(); i++ {
		cc.check()
		gid, fresh := g.intern(a.idRow(i))
		if fresh {
			rowOf = append(rowOf, int32(i))
		} else {
			rowOf[gid] = int32(i) // duplicate key in a: last wins, as before
		}
	}
	for i := 0; i < b.Len(); i++ {
		cc.check()
		if gid, ok := g.lookup(b.idRow(i)); ok {
			j := rowOf[gid]
			out.scores[j] = math.Min(out.scores[j], b.scores[i])
		} else {
			ex.charge(1)
			out.rows = append(out.rows, b.Row(i)...)
			out.ids = append(out.ids, b.idRow(i)...)
			out.scores = append(out.scores, b.scores[i])
		}
	}
	return out
}

// SemiJoinReduce performs the full deterministic semi-join reduction of
// Optimization 3: every atom's relation is repeatedly reduced by
// semi-joins with the other atoms it shares variables with, until
// fixpoint. It returns the surviving row indices per relation (only
// entries for the query's atoms are present). Constant selections and
// predicates are applied first, so the reduction starts from the
// selected subsets.
func SemiJoinReduce(db *DB, q *cq.Query) map[string][]int32 {
	return semiJoinReduce(db, q, nil)
}

// SemiJoinReduceCtx is SemiJoinReduce bound to a context (see
// NewEvaluatorCtx for the cancellation contract).
func SemiJoinReduceCtx(ctx context.Context, db *DB, q *cq.Query) map[string][]int32 {
	return semiJoinReduce(db, q, &canceller{ctx: ctx})
}

func semiJoinReduce(db *DB, q *cq.Query, c *canceller) map[string][]int32 {
	type atomInfo struct {
		atom cq.Atom
		rel  *Relation
		live []int32
		// varPos maps each variable to one argument position.
		varPos map[cq.Var]int
	}
	head := q.HeadSet()
	infos := make([]*atomInfo, len(q.Atoms))
	for i, a := range q.Atoms {
		rel := db.Relation(a.Rel)
		if rel == nil {
			panic(fmt.Sprintf("engine: unknown relation %s", a.Rel))
		}
		info := &atomInfo{atom: a, rel: rel, varPos: map[cq.Var]int{}}
		for j, t := range a.Args {
			if t.IsVar() {
				if _, ok := info.varPos[t.Var]; !ok {
					info.varPos[t.Var] = j
				}
			}
		}
		filter := newRowFilter(db, rel, plan.NewScan(a, q.PredsOnAtom(a)))
		for r := 0; r < rel.Len(); r++ {
			if filter.ok(rel.Row(r)) {
				info.live = append(info.live, int32(r))
			}
		}
		infos[i] = info
	}
	// Shared existential variables between atom pairs drive the reduction.
	shared := func(a, b *atomInfo) []cq.Var {
		var out []cq.Var
		for v := range a.varPos {
			if head.Has(v) {
				continue
			}
			if _, ok := b.varPos[v]; ok {
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for changed := true; changed; {
		changed = false
		for i, a := range infos {
			for j, b := range infos {
				if i == j {
					continue
				}
				vars := shared(a, b)
				if len(vars) == 0 {
					continue
				}
				// Keys present in b on the shared vars.
				keys := newGroupTable(len(vars), len(b.live))
				key := make([]int32, len(vars))
				for _, r := range b.live {
					c.check()
					row := b.rel.vidRow(int(r))
					for x, v := range vars {
						key[x] = row[b.varPos[v]]
					}
					keys.intern(key)
				}
				// Keep only a's rows whose shared-key exists in b.
				kept := a.live[:0]
				for _, r := range a.live {
					c.check()
					row := a.rel.vidRow(int(r))
					for x, v := range vars {
						key[x] = row[a.varPos[v]]
					}
					if _, ok := keys.lookup(key); ok {
						kept = append(kept, r)
					}
				}
				if len(kept) != len(a.live) {
					a.live = kept
					changed = true
				}
			}
		}
	}
	out := map[string][]int32{}
	for _, info := range infos {
		out[info.atom.Rel] = info.live
	}
	return out
}

func colIndex(cols []cq.Var, v cq.Var) int {
	for i, c := range cols {
		if c == v {
			return i
		}
	}
	return -1
}

func sharedCols(l, r []cq.Var) (vars []cq.Var, lPos, rPos []int) {
	for i, c := range l {
		if j := colIndex(r, c); j >= 0 {
			vars = append(vars, c)
			lPos = append(lPos, i)
			rPos = append(rPos, j)
		}
	}
	return
}

func appendValue(b []byte, v Value) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func varsSliceEqual(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
