package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Result is a relation-shaped evaluation result: one tuple of values per
// output row over Cols, with a probability score each. Storage is
// columnar (struct-of-arrays): one contiguous []Value and []int32 per
// column plus one contiguous []float64 score column, so operators run as
// tight kernels over slices instead of per-tuple calls. Row order is
// unspecified; use Sorted or ScoreOf for stable access.
type Result struct {
	Cols   []cq.Var
	vals   [][]Value // vals[k][i]: value of column k in row i
	ids    [][]int32 // dense value ids (DB.noteValue), parallel to vals
	scores []float64

	// Lazy ScoreOf index: hash of the row values -> first row with that
	// hash, with hash collisions chained through idxNext.
	idxOnce sync.Once
	idx     map[uint64]int32
	idxNext []int32
}

// newResult returns an empty result with per-column slice headers
// allocated for the given layout.
func newResult(cols []cq.Var) *Result {
	return &Result{Cols: cols, vals: make([][]Value, len(cols)), ids: make([][]int32, len(cols))}
}

// Len returns the number of result tuples.
func (r *Result) Len() int { return len(r.scores) }

// Row gathers the i-th tuple from the column arrays into a fresh slice.
func (r *Result) Row(i int) []Value {
	if len(r.Cols) == 0 {
		return nil
	}
	out := make([]Value, len(r.Cols))
	for k, c := range r.vals {
		out[k] = c[i]
	}
	return out
}

// Score returns the probability score of the i-th tuple.
func (r *Result) Score(i int) float64 { return r.scores[i] }

// BooleanScore returns the score of a Boolean query's result: the single
// tuple's score, or 0 when the query has no satisfying assignment.
func (r *Result) BooleanScore() float64 {
	if r.Len() == 0 {
		return 0
	}
	return r.scores[0]
}

// rowHash hashes the i-th tuple's values, matching valueKeyHash over the
// gathered row.
func (r *Result) rowHash(i int) uint64 {
	h := uint64(len(r.Cols)) + 0x9e3779b97f4a7c15
	for _, c := range r.vals {
		h = mix64(h ^ uint64(c[i]))
	}
	return h
}

// ScoreOf returns the score of the tuple with the given values, and
// whether it exists. The first call builds a hash index over the rows,
// so a batch of lookups costs O(n + lookups) instead of O(n·lookups).
// Concurrent ScoreOf calls are safe; do not overlap them with mutation.
func (r *Result) ScoreOf(key []Value) (float64, bool) {
	if len(key) != len(r.Cols) {
		return 0, false
	}
	r.idxOnce.Do(r.buildScoreIndex)
	j, ok := r.idx[valueKeyHash(key)]
	for ok {
		match := true
		for k := range key {
			if r.vals[k][j] != key[k] {
				match = false
				break
			}
		}
		if match {
			return r.scores[j], true
		}
		j = r.idxNext[j]
		ok = j >= 0
	}
	return 0, false
}

// buildScoreIndex hashes every row once. Duplicate rows keep the first
// occurrence, matching the linear scan ScoreOf replaced.
func (r *Result) buildScoreIndex() {
	n := r.Len()
	r.idx = make(map[uint64]int32, n)
	r.idxNext = make([]int32, n)
	for i := 0; i < n; i++ {
		r.idxNext[i] = -1
		h := r.rowHash(i)
		first, ok := r.idx[h]
		if !ok {
			r.idx[h] = int32(i)
			continue
		}
		for j := first; ; j = r.idxNext[j] {
			if r.idxNext[j] < 0 {
				r.idxNext[j] = int32(i)
				break
			}
		}
	}
}

// Sorted returns the row indices ordered by descending score, breaking
// ties by row values ascending — the ranking order of the paper's
// experiments.
func (r *Result) Sorted() []int {
	idx := make([]int, r.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		sa, sb := r.scores[ia], r.scores[ib]
		if sa != sb {
			return sa > sb
		}
		for _, c := range r.vals {
			if c[ia] != c[ib] {
				return c[ia] < c[ib]
			}
		}
		return false
	})
	return idx
}

// Options configures plan evaluation.
type Options struct {
	// ReuseSubplans memoizes subplan results by canonical key within one
	// evaluation — the run-time counterpart of Optimization 2 (views for
	// common subplans).
	ReuseSubplans bool
	// SemiJoin applies the full deterministic semi-join reduction of
	// Optimization 3 to the scanned relations before evaluation.
	SemiJoin bool
	// Reduced, when non-nil, supplies a precomputed semi-join reduction
	// (as produced by SemiJoinReduce) instead of recomputing it, letting
	// staged evaluations — the anytime refiner's plan rounds, MC
	// sampling, and exact expansion all read the same reduced lineage —
	// share one reduction. It takes precedence over SemiJoin.
	Reduced map[string][]int32
	// CostBasedJoins orders k-ary joins with a Selinger-style dynamic
	// program over System R cardinality estimates instead of the default
	// greedy smallest-connected-input heuristic.
	CostBasedJoins bool
	// Workers bounds intra-plan morsel parallelism: operators split row
	// ranges into fixed-size chunks evaluated on up to Workers
	// goroutines, the calling one included. Values <= 1 evaluate
	// sequentially. Chunk layout depends only on input sizes — never on
	// Workers — so output scores are bit-identical across all settings
	// (see morsel.go).
	Workers int
	// Stats, when non-nil, accumulates execution counters (morsel chunks
	// and join partitions processed) across the evaluation. Safe to share
	// between concurrent evaluators.
	Stats *EvalStats
	// MaxIntermediateRows caps the total number of intermediate result
	// rows one evaluation may materialize across all operators (scan
	// outputs, join outputs, projection groups). Exceeding it aborts the
	// evaluation with an error wrapping ErrBudget. <= 0 disables the cap.
	MaxIntermediateRows int
	// Memo, when non-nil, shares canonicalized subplan results across
	// the evaluators of one batch (see batch.go). When the memo carries
	// a row budget it replaces MaxIntermediateRows: the budget spans the
	// whole batch instead of one evaluation.
	Memo *BatchMemo
	// Oracle routes evaluation through the retained row-at-a-time
	// reference operators (see oracle.go) instead of the streaming
	// columnar executor. Outputs are bit-identical by contract; the flag
	// exists so differential suites and fuzzers can cross-check the two
	// executors. Test-only: it is never set on production paths.
	Oracle bool
}

// Evaluator evaluates plans over a database under the extensional score
// semantics of Section 2: joins multiply scores, duplicate-eliminating
// projections combine scores as independent events, min nodes keep the
// per-tuple minimum.
type Evaluator struct {
	db      *DB
	opts    Options
	cache   map[string]*Result
	reduced map[string][]int32 // atom relation -> surviving row indices
	cancel  canceller
	pool    *pool      // helper goroutines for morsel parallelism; nil = sequential
	budget  *rowBudget // intermediate row budget; nil = unlimited
	memo    *BatchMemo // cross-query subplan memo; nil outside batches
	redFP   map[string]string
}

// ex returns the operator execution context for this evaluator.
func (e *Evaluator) ex() *exec {
	return &exec{c: &e.cancel, pool: e.pool, stats: e.opts.Stats, budget: e.budget}
}

// NewEvaluator prepares an evaluator for one query evaluation. If
// opts.SemiJoin is set, q is used to compute the semi-join reduction; q
// may be nil otherwise.
func NewEvaluator(db *DB, q *cq.Query, opts Options) *Evaluator {
	return NewEvaluatorCtx(nil, db, q, opts)
}

// NewEvaluatorCtx is NewEvaluator bound to a context: the semi-join
// reduction and all evaluation loops poll ctx and unwind with a
// cancellation panic when it is done. Callers passing a non-nil ctx must
// wrap evaluation in TrapCancel.
func NewEvaluatorCtx(ctx context.Context, db *DB, q *cq.Query, opts Options) *Evaluator {
	e := &Evaluator{db: db, opts: opts}
	e.cancel.ctx = ctx
	e.pool = newPool(ctx, opts.Workers)
	e.budget = newRowBudget(opts.MaxIntermediateRows)
	e.bindMemo()
	if opts.ReuseSubplans {
		e.cache = map[string]*Result{}
	}
	if opts.Reduced != nil {
		e.reduced = opts.Reduced
	} else if opts.SemiJoin && q != nil {
		e.reduced = semiJoinReduce(db, q, &e.cancel)
	}
	return e
}

// WithContext binds the evaluator to a context: evaluation loops poll it
// periodically and, when it is cancelled, unwind with a panic that
// TrapCancel converts back into the context's error. Callers that bind a
// context must wrap evaluation in TrapCancel.
func (e *Evaluator) WithContext(ctx context.Context) *Evaluator {
	e.cancel.ctx = ctx
	return e
}

// bindMemo attaches the batch memo from the evaluator's options, and —
// when the memo carries the batch-wide row budget — replaces the
// per-evaluation budget with it.
func (e *Evaluator) bindMemo() {
	m := e.opts.Memo
	if m == nil {
		return
	}
	e.memo = m
	if m.budget != nil {
		e.budget = m.budget
	}
}

// Eval evaluates a plan and returns its result. The result's columns are
// the plan's head variables in sorted order. With a batch memo attached
// the result is shared across the batch's evaluators (see batch.go).
func (e *Evaluator) Eval(p plan.Node) *Result {
	e.cancel.checkNow()
	if e.cache != nil {
		if r, ok := e.cache[p.Key()]; ok {
			return r
		}
	}
	var out *Result
	if e.memo != nil && e.memo.share {
		out = e.memo.getOrCompute(e.memoKey(p), func() *Result { return e.evalNode(p) })
	} else {
		out = e.evalNode(p)
	}
	if e.cache != nil {
		e.cache[p.Key()] = out
	}
	return out
}

// evalNode computes one plan node, recursing through Eval so children
// hit the caches.
func (e *Evaluator) evalNode(p plan.Node) *Result {
	if e.opts.Oracle {
		return e.oracleEvalNode(p)
	}
	var out *Result
	switch t := p.(type) {
	case *plan.Scan:
		out = e.scan(t)
	case *plan.Project:
		if jn, ok := t.Child.(*plan.Join); ok && e.canStream(jn) {
			out = e.streamProjectJoin(jn, t.OnTo)
			break
		}
		out = project(e.Eval(t.Child), t.OnTo, e.ex())
	case *plan.Join:
		results := make([]*Result, len(t.Subs))
		for i, c := range t.Subs {
			results[i] = e.Eval(c)
		}
		if e.opts.CostBasedJoins {
			out = foldJoinCostBased(results, e.ex())
		} else {
			out = foldJoin(results, e.ex())
		}
	case *plan.Min:
		out = e.Eval(t.Subs[0])
		if len(t.Subs) > 1 {
			fold := newMinFold(out, e.ex())
			for _, c := range t.Subs[1:] {
				fold.merge(e.Eval(c))
			}
			out = fold.out
		}
	default:
		panic("engine: unknown plan node")
	}
	return out
}

// EvalPlans evaluates several plans independently (no sharing between
// them, mirroring separate SQL statements) and combines them with the
// per-answer minimum — the unoptimized "all minimal plans" strategy.
func EvalPlans(db *DB, q *cq.Query, plans []plan.Node, opts Options) *Result {
	return EvalPlansCtx(nil, db, q, plans, opts)
}

// EvalPlansCtx is EvalPlans bound to a context (see NewEvaluatorCtx).
func EvalPlansCtx(ctx context.Context, db *DB, q *cq.Query, plans []plan.Node, opts Options) *Result {
	var out *Result
	var fold *minFold
	// One row budget spans every plan: MaxIntermediateRows bounds the
	// query, not each of its (possibly many) minimal plans. A batch
	// memo's budget wins — it spans the whole batch.
	budget := newRowBudget(opts.MaxIntermediateRows)
	if opts.Memo != nil && opts.Memo.budget != nil {
		budget = opts.Memo.budget
	}
	for _, p := range plans {
		e := NewEvaluatorCtx(ctx, db, q, opts)
		e.budget = budget
		r := e.Eval(p)
		switch {
		case out == nil:
			out = r
		case opts.Oracle:
			out = oracleCombineMin(out, r, e.ex())
		default:
			if fold == nil {
				fold = newMinFold(out, e.ex())
			}
			fold.merge(r)
			out = fold.out
		}
	}
	return out
}

// scan reads an atom's relation, applying constant selections, repeated-
// variable equality, pushed-down predicates, and — when the evaluator has
// a semi-join reduction — the reduced row set. The filter runs as
// component-at-a-time kernels producing a selection vector, then each
// output column is gathered in one pre-sized pass.
func (e *Evaluator) scan(s *plan.Scan) *Result {
	rel, cols, pos := scanLayout(e.db, s)
	filter := newRowFilter(e.db, rel, s)
	out := newResult(cols)
	// Candidate rows: the semi-join reduction wins, then any index.
	var cand []int32
	restricted := false
	if e.reduced != nil {
		if idxs, ok := e.reduced[rel.Name]; ok {
			cand, restricted = idxs, true
		}
	}
	if !restricted {
		if c2, ok := rel.indexCandidates(e.db, s); ok {
			cand, restricted = c2, true
		}
	}
	sel, all := filter.apply(rel, cand, restricted, &e.cancel)
	m := len(sel)
	if all {
		m = rel.Len()
	}
	e.budget.charge(m)
	out.scores = make([]float64, m)
	if all {
		copy(out.scores, rel.prob)
	} else {
		for x, ri := range sel {
			out.scores[x] = rel.prob[ri]
		}
	}
	a := rel.Arity()
	for k, j := range pos {
		vdst := make([]Value, m)
		idst := make([]int32, m)
		if all {
			for i := 0; i < m; i++ {
				vdst[i] = rel.rows[i*a+j]
				idst[i] = rel.vids[i*a+j]
			}
		} else {
			for x, ri := range sel {
				ii := int(ri)*a + j
				vdst[x] = rel.rows[ii]
				idst[x] = rel.vids[ii]
			}
		}
		out.vals[k], out.ids[k] = vdst, idst
	}
	return out
}

// scanLayout resolves a scan's relation and output column layout: the
// atom's distinct variables sorted, and for each output column the first
// argument position holding it.
func scanLayout(db *DB, s *plan.Scan) (*Relation, []cq.Var, []int) {
	rel := db.Relation(s.Atom.Rel)
	if rel == nil {
		panic(fmt.Sprintf("engine: unknown relation %s", s.Atom.Rel))
	}
	if len(s.Atom.Args) != rel.Arity() {
		panic(fmt.Sprintf("engine: atom %s has arity %d, relation has %d", s.Atom, len(s.Atom.Args), rel.Arity()))
	}
	cols := append([]cq.Var(nil), s.Head()...)
	pos := make([]int, len(cols))
	for i, v := range cols {
		for j, t := range s.Atom.Args {
			if t.Var == v {
				pos[i] = j
				break
			}
		}
	}
	return rel, cols, pos
}

// rowFilter checks constants, repeated variables, and predicates on one
// atom's tuples.
type rowFilter struct {
	consts []struct {
		pos int
		val Value
	}
	equals [][2]int
	preds  []compiledPred
}

func newRowFilter(db *DB, rel *Relation, s *plan.Scan) *rowFilter {
	f := &rowFilter{}
	seen := map[cq.Var]int{}
	for j, t := range s.Atom.Args {
		if !t.IsVar() {
			f.consts = append(f.consts, struct {
				pos int
				val Value
			}{j, db.lookupConst(t.Const)})
			continue
		}
		if prev, ok := seen[t.Var]; ok {
			f.equals = append(f.equals, [2]int{prev, j})
		} else {
			seen[t.Var] = j
		}
	}
	for _, p := range s.Preds {
		if j, ok := seen[p.Var]; ok {
			f.preds = append(f.preds, compilePred(db, p, j))
		}
	}
	return f
}

func (f *rowFilter) empty() bool {
	return len(f.consts) == 0 && len(f.equals) == 0 && len(f.preds) == 0
}

func (f *rowFilter) ok(row []Value) bool {
	for _, c := range f.consts {
		if row[c.pos] != c.val {
			return false
		}
	}
	for _, eq := range f.equals {
		if row[eq[0]] != row[eq[1]] {
			return false
		}
	}
	for _, p := range f.preds {
		if !p.okVal(row[p.pos]) {
			return false
		}
	}
	return true
}

// apply runs the filter as a sequence of selection-vector kernels: each
// component refines the vector in one tight pass over the relation's
// flattened storage. It returns (sel, all); all=true means every row of
// the relation qualifies and sel is nil (the caller copies the columns
// wholesale).
func (f *rowFilter) apply(rel *Relation, cand []int32, restricted bool, c *canceller) ([]int32, bool) {
	if f.empty() {
		if restricted {
			return cand, false
		}
		return nil, true
	}
	var sel []int32
	if restricted {
		// Never compact the caller's candidate slice in place: reductions
		// and indexes own it.
		sel = append(make([]int32, 0, len(cand)), cand...)
	} else {
		n := rel.Len()
		sel = make([]int32, n)
		for i := range sel {
			sel[i] = int32(i)
		}
	}
	a := rel.Arity()
	rows := rel.rows
	for _, cst := range f.consts {
		out := sel[:0]
		for _, ri := range sel {
			c.check()
			if rows[int(ri)*a+cst.pos] == cst.val {
				out = append(out, ri)
			}
		}
		sel = out
	}
	for _, eq := range f.equals {
		out := sel[:0]
		for _, ri := range sel {
			c.check()
			base := int(ri) * a
			if rows[base+eq[0]] == rows[base+eq[1]] {
				out = append(out, ri)
			}
		}
		sel = out
	}
	for _, p := range f.preds {
		out := sel[:0]
		for _, ri := range sel {
			c.check()
			if p.okVal(rows[int(ri)*a+p.pos]) {
				out = append(out, ri)
			}
		}
		sel = out
	}
	return sel, false
}

// compiledPred is one pushed-down comparison bound to an argument
// position.
type compiledPred struct {
	pos int
	op  cq.CompareOp
	num Value  // for numeric comparisons
	pat string // for LIKE
	db  *DB
}

func compilePred(db *DB, p cq.Predicate, pos int) compiledPred {
	c := compiledPred{pos: pos, op: p.Op, db: db}
	if p.Op == cq.OpLike {
		c.pat = p.Const
	} else {
		c.num = db.lookupConst(p.Const)
	}
	return c
}

func (c compiledPred) okVal(v Value) bool {
	switch c.op {
	case cq.OpLE:
		return v >= 0 && c.num >= 0 && v <= c.num
	case cq.OpLT:
		return v >= 0 && c.num >= 0 && v < c.num
	case cq.OpGE:
		return v >= 0 && c.num >= 0 && v >= c.num
	case cq.OpGT:
		return v >= 0 && c.num >= 0 && v > c.num
	case cq.OpEQ:
		return v == c.num
	case cq.OpNE:
		return v != c.num
	case cq.OpLike:
		return LikeMatch(c.pat, c.db.Decode(v))
	default:
		panic("engine: unknown predicate op")
	}
}

// LikeMatch implements SQL LIKE with % (any run) and _ (any one
// character) wildcards.
func LikeMatch(pattern, s string) bool {
	// Iterative two-pointer matcher with backtracking on the last %.
	pi, si := 0, 0
	star, match := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pattern) && pattern[pi] == '%':
			star = pi
			match = si
			pi++
		case pi < len(pattern) && (pattern[pi] == '_' || pattern[pi] == s[si]):
			pi++
			si++
		case star >= 0:
			pi = star + 1
			match++
			si = match
		default:
			return false
		}
	}
	for pi < len(pattern) && pattern[pi] == '%' {
		pi++
	}
	return pi == len(pattern)
}

// projChunk is one morsel's grouping partial: for each locally-fresh
// group, the key's ids and values (gathered at first appearance) and the
// chunk-local complement product ∏(1 − s) accumulated in row order.
type projChunk struct {
	keyIDs  [][]int32 // per key column, one entry per local group
	keyVals [][]Value
	partial []float64
}

// projectChunk groups rows [lo, hi) of the given key columns and folds
// the chunk-local complement products with a tight vectorized kernel:
// one interning pass assigns group ids, one multiply pass folds
// 1 − scores[i] into the group partials in row order. Fresh local groups
// are charged to the budget per chunk (batch granularity; totals match
// per-tuple charging exactly).
func projectChunk(keyIDs [][]int32, keyVals [][]Value, scores []float64, lo, hi int, c *canceller, ex *exec) projChunk {
	m := hi - lo
	ka := len(keyIDs)
	g := newGroupTable(ka, m)
	sg := newColSigner(keyIDs)
	wide := sg.wide()
	gids := make([]int32, m)
	var firstRow []int32
	if wide {
		for i := lo; i < hi; i++ {
			c.check()
			gid, fresh := g.internSig(sg.sig(i), sg.keyAt(i))
			gids[i-lo] = gid
			if fresh {
				firstRow = append(firstRow, int32(i))
			}
		}
	} else {
		for i := lo; i < hi; i++ {
			c.check()
			gid, fresh := g.internSig(sg.sig(i), nil)
			gids[i-lo] = gid
			if fresh {
				firstRow = append(firstRow, int32(i))
			}
		}
	}
	ex.charge(len(firstRow))
	pc := projChunk{
		keyIDs:  make([][]int32, ka),
		keyVals: make([][]Value, ka),
		partial: make([]float64, len(firstRow)),
	}
	for i := range pc.partial {
		pc.partial[i] = 1
	}
	s := scores[lo:hi]
	for i, gid := range gids {
		pc.partial[gid] *= 1 - s[i]
	}
	for k := 0; k < ka; k++ {
		idc := make([]int32, len(firstRow))
		vc := make([]Value, len(firstRow))
		for gi, ri := range firstRow {
			idc[gi] = keyIDs[k][ri]
			vc[gi] = keyVals[k][ri]
		}
		pc.keyIDs[k], pc.keyVals[k] = idc, vc
	}
	return pc
}

// projectMerge combines per-chunk grouping partials chunk-ascending on
// one goroutine: global group ids follow first-appearance order across
// chunks (equal to sequential row order), and each group's score starts
// at 1 and multiplies in its chunk partials in chunk order — the exact
// float-operation sequence of a sequential pass, so outputs are
// bit-identical for every chunking of the same input.
func projectMerge(onto []cq.Var, locals []projChunk, hint int, ex *exec) *Result {
	out := newResult(append([]cq.Var(nil), onto...))
	ka := len(onto)
	global := newGroupTable(ka, hint)
	cc := ex.canc()
	key := make([]int32, ka)
	for li := range locals {
		lg := &locals[li]
		for gi := range lg.partial {
			cc.check()
			for k := 0; k < ka; k++ {
				key[k] = lg.keyIDs[k][gi]
			}
			gid, fresh := global.intern(key)
			if fresh {
				for k := 0; k < ka; k++ {
					out.ids[k] = append(out.ids[k], lg.keyIDs[k][gi])
					out.vals[k] = append(out.vals[k], lg.keyVals[k][gi])
				}
				out.scores = append(out.scores, 1)
			}
			out.scores[gid] *= lg.partial[gi]
		}
	}
	for i := range out.scores {
		out.scores[i] = 1 - out.scores[i]
	}
	return out
}

// projAccum folds a streamed (or sequentially scanned) row sequence
// into the projection's grouping result in one pass: each row interns
// directly into the global group table, while chunk-local complement
// partials accumulate in sparse per-chunk scratch (lastChunk/localIdx)
// and fold into the global scores at every morselSize boundary. The
// float-operation sequence — per-chunk ∏(1 − s) in row order, partials
// folded chunk-ascending in first-touch order — is exactly the one
// projectChunk + projectMerge perform, so outputs are bit-identical to
// the morsel-parallel materialized path; the single pass just skips the
// per-chunk hash tables and the merge's re-interning, which profiling
// showed dominating sequential projection cost.
type projAccum struct {
	out     *Result
	g       *groupTable
	ka      int
	key     []int32   // scratch: the current row's key ids
	val     []Value   // scratch: the current row's key values
	touched []int32   // gids touched this chunk, in first-touch order
	partial []float64 // parallel to touched: chunk-local ∏(1 − s)
	fill    int       // rows accumulated in the current chunk
	fresh   int       // chunk-local first touches not yet charged
	ex      *exec
	chunks  int
}

// projAccumHint seeds the accumulator's group table: the output group
// count is unknown before the pass, so start at a couple of morsels and
// let the table double as needed (rehashing touches only groups, never
// rows).
const projAccumHint = 2 * morselSize

func newProjAccum(onto []cq.Var, sizeHint int, ex *exec) *projAccum {
	ka := len(onto)
	return &projAccum{
		out:     newResult(append([]cq.Var(nil), onto...)),
		g:       newGroupTable(ka, sizeHint),
		ka:      ka,
		key:     make([]int32, ka),
		val:     make([]Value, ka),
		touched: make([]int32, 0, morselSize),
		partial: make([]float64, 0, morselSize),
		ex:      ex,
	}
}

// add ingests one row whose key ids and values the caller has gathered
// into pa.key / pa.val. The chunk-local partial slot lives in the group
// slot's aux word — the cache line the intern probe already loaded — and
// is validated against the (small, L1-resident) touched list, so a row
// costs one random memory access, not three.
func (pa *projAccum) add(score float64) {
	s, fresh := pa.g.internSlot(keySig(pa.key), pa.key)
	if fresh {
		for k := 0; k < pa.ka; k++ {
			pa.out.ids[k] = append(pa.out.ids[k], pa.key[k])
			pa.out.vals[k] = append(pa.out.vals[k], pa.val[k])
		}
		pa.out.scores = append(pa.out.scores, 1)
	}
	gid := s.ref - 1
	aux := s.aux
	// aux identifies this group's slot in the current chunk's partials
	// iff that slot exists and names this gid back; anything else is a
	// stale value from an earlier chunk.
	if int(aux) >= len(pa.touched) || pa.touched[aux] != gid {
		aux = int32(len(pa.touched))
		s.aux = aux
		pa.touched = append(pa.touched, gid)
		pa.partial = append(pa.partial, 1)
		pa.fresh++
	}
	pa.partial[aux] *= 1 - score
	pa.fill++
	if pa.fill == morselSize {
		pa.flushChunk()
	}
}

// flushChunk folds the chunk's partials into the global scores (chunk
// order, first-touch order within the chunk — projectMerge's order) and
// charges the chunk's fresh groups to the budget in one batch, exactly
// the totals projectChunk charges.
func (pa *projAccum) flushChunk() {
	if pa.fill == 0 {
		return
	}
	pa.ex.charge(pa.fresh)
	for i, gid := range pa.touched {
		pa.out.scores[gid] *= pa.partial[i]
	}
	pa.touched = pa.touched[:0]
	pa.partial = pa.partial[:0]
	pa.fresh = 0
	pa.fill = 0
	pa.chunks++
}

func (pa *projAccum) finish() *Result {
	pa.flushChunk()
	if pa.chunks > 1 {
		pa.ex.addPartitions(pa.chunks)
	}
	for i := range pa.out.scores {
		pa.out.scores[i] = 1 - pa.out.scores[i]
	}
	return pa.out
}

// project groups the child's rows by the kept columns and combines the
// scores of each group as independent events: 1 − ∏(1 − s). This is the
// probabilistic duplicate-eliminating projection π^p.
//
// The grouping is morsel-parallel: each chunk builds its own group
// table with per-group complement partials in row order (projectChunk),
// then one goroutine merges partials chunk-ascending (projectMerge).
// Sequential execution takes the equivalent single-pass projAccum
// route instead.
func project(in *Result, onto []cq.Var, ex *exec) *Result {
	keep := make([]int, len(onto))
	for i, v := range onto {
		keep[i] = colIndex(in.Cols, v)
	}
	n := in.Len()
	if n == 0 {
		return newResult(append([]cq.Var(nil), onto...))
	}
	keyIDs := make([][]int32, len(keep))
	keyVals := make([][]Value, len(keep))
	for k, j := range keep {
		keyIDs[k] = in.ids[j]
		keyVals[k] = in.vals[j]
	}
	if ex == nil || ex.pool == nil {
		pa := newProjAccum(onto, projAccumHint, ex)
		c := ex.canc()
		ka := len(keep)
		for i := 0; i < n; i++ {
			c.check()
			for k := 0; k < ka; k++ {
				pa.key[k] = keyIDs[k][i]
				pa.val[k] = keyVals[k][i]
			}
			pa.add(in.scores[i])
		}
		return pa.finish()
	}
	nChunks := numChunks(n)
	locals := make([]projChunk, nChunks)
	if nChunks > 1 {
		ex.addPartitions(nChunks)
	}
	ex.forChunks(nChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, n)
		locals[ci] = projectChunk(keyIDs, keyVals, in.scores, lo, hi, c, ex)
	})
	groupsHint := 0
	for ci := range locals {
		groupsHint += len(locals[ci].partial)
	}
	return projectMerge(onto, locals, groupsHint, ex)
}

// joinFn is a binary join operator — the streaming columnar join or the
// retained row-at-a-time oracle join. Fold ordering is shared between
// them so both executors make identical fold decisions.
type joinFn func(l, r *Result, ex *exec) *Result

// greedyJoinOrder replicates the fold ordering of the original
// evaluator: inputs sorted by size ascending, then greedily the smallest
// remaining input sharing a column with the accumulated column set,
// falling back to a cross product only when no input connects. Returns
// indices into results.
func greedyJoinOrder(results []*Result) []int {
	type item struct {
		idx int
		r   *Result
	}
	remaining := make([]item, len(results))
	for i, r := range results {
		remaining[i] = item{i, r}
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].r.Len() < remaining[j].r.Len() })
	order := make([]int, 0, len(results))
	order = append(order, remaining[0].idx)
	have := cq.NewVarSet(remaining[0].r.Cols...)
	remaining = remaining[1:]
	for len(remaining) > 0 {
		pick := -1
		for i, it := range remaining {
			connected := false
			for _, c := range it.r.Cols {
				if have.Has(c) {
					connected = true
					break
				}
			}
			if connected && (pick < 0 || it.r.Len() < remaining[pick].r.Len()) {
				pick = i
			}
		}
		if pick < 0 {
			pick = 0 // genuine cross product (disconnected plan)
		}
		order = append(order, remaining[pick].idx)
		for _, c := range remaining[pick].r.Cols {
			have.Add(c)
		}
		remaining = append(remaining[:pick], remaining[pick+1:]...)
	}
	return order
}

// foldJoin joins several results in greedy smallest-connected order.
func foldJoin(results []*Result, ex *exec) *Result {
	return foldJoinWith(results, ex, join)
}

func foldJoinWith(results []*Result, ex *exec, jf joinFn) *Result {
	if len(results) == 1 {
		return results[0]
	}
	order := greedyJoinOrder(results)
	cur := results[order[0]]
	for _, i := range order[1:] {
		cur = jf(cur, results[i], ex)
	}
	return cur
}

// joinLayout fixes the column plumbing of one binary join: the output
// columns (union, sorted), each output column's source side and
// position, and the build/probe assignment (build = smaller input).
type joinLayout struct {
	outCols   []cq.Var
	fromBuild []bool
	pos       []int
	build     *Result
	probe     *Result
	buildPos  []int
	probePos  []int
}

func makeJoinLayout(l, r *Result) joinLayout {
	_, lPos, rPos := sharedCols(l.Cols, r.Cols)
	colSet := cq.NewVarSet(l.Cols...)
	for _, c := range r.Cols {
		colSet.Add(c)
	}
	jl := joinLayout{outCols: colSet.Sorted()}
	jl.build, jl.probe = r, l
	jl.buildPos, jl.probePos = rPos, lPos
	buildLeft := false
	if l.Len() < r.Len() {
		jl.build, jl.probe = l, r
		jl.buildPos, jl.probePos = lPos, rPos
		buildLeft = true
	}
	jl.fromBuild = make([]bool, len(jl.outCols))
	jl.pos = make([]int, len(jl.outCols))
	for i, c := range jl.outCols {
		if j := colIndex(l.Cols, c); j >= 0 {
			jl.fromBuild[i] = buildLeft
			jl.pos[i] = j
		} else {
			jl.fromBuild[i] = !buildLeft
			jl.pos[i] = colIndex(r.Cols, c)
		}
	}
	return jl
}

// join computes the natural join of two results on their shared columns,
// multiplying scores.
//
// The build side is hashed into a partitioned table pre-sized from its
// cardinality (see buildJoinTable). The probe runs in two vectorized
// passes over morsel chunks: pass one records each probe row's match
// span (start, count) in the table's row array and charges the budget
// per chunk; pass two writes every output column directly into its
// exactly-sized destination slice at the chunk's offset. Chunk offsets
// follow chunk order, build matches ascend within each probe row, so the
// output is bit-identical to a sequential row-at-a-time join.
func join(l, r *Result, ex *exec) *Result {
	jl := makeJoinLayout(l, r)
	jt := buildJoinTable(jl.build, jl.buildPos, ex)
	out := newResult(jl.outCols)
	np := jl.probe.Len()
	if np == 0 {
		return out
	}
	pChunks := numChunks(np)
	if pChunks > 1 {
		ex.addPartitions(pChunks)
	}
	probeKeys := make([][]int32, len(jl.probePos))
	for k, j := range jl.probePos {
		probeKeys[k] = jl.probe.ids[j]
	}
	starts := make([]int32, np)
	cnts := make([]int32, np)
	chunkTotal := make([]int, pChunks)
	ex.forChunks(pChunks, func(ci int, c *canceller) {
		sg := newColSigner(probeKeys)
		wide := sg.wide()
		lo, hi := chunkBounds(ci, np)
		t := 0
		for i := lo; i < hi; i++ {
			c.check()
			var key []int32
			if wide {
				key = sg.keyAt(i)
			}
			s, n := jt.lookupSpan(sg.sig(i), key)
			starts[i], cnts[i] = s, n
			t += int(n)
		}
		chunkTotal[ci] = t
		ex.charge(t)
	})
	total := 0
	offs := make([]int, pChunks)
	for ci, t := range chunkTotal {
		offs[ci] = total
		total += t
	}
	out.scores = make([]float64, total)
	for k := range out.Cols {
		out.vals[k] = make([]Value, total)
		out.ids[k] = make([]int32, total)
	}
	bscores, pscores := jl.build.scores, jl.probe.scores
	ex.forChunks(pChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, np)
		o := offs[ci]
		oo := o
		for i := lo; i < hi; i++ {
			c.check()
			st, n := int(starts[i]), int(cnts[i])
			s := pscores[i]
			for j := 0; j < n; j++ {
				out.scores[oo] = s * bscores[jt.rows[st+j]]
				oo++
			}
		}
		for k := range out.Cols {
			vdst, idst := out.vals[k], out.ids[k]
			oo = o
			if jl.fromBuild[k] {
				vsrc, isrc := jl.build.vals[jl.pos[k]], jl.build.ids[jl.pos[k]]
				for i := lo; i < hi; i++ {
					st, n := int(starts[i]), int(cnts[i])
					for j := 0; j < n; j++ {
						ri := jt.rows[st+j]
						vdst[oo], idst[oo] = vsrc[ri], isrc[ri]
						oo++
					}
				}
			} else {
				vsrc, isrc := jl.probe.vals[jl.pos[k]], jl.probe.ids[jl.pos[k]]
				for i := lo; i < hi; i++ {
					n := int(cnts[i])
					if n == 0 {
						continue
					}
					v, id := vsrc[i], isrc[i]
					for j := 0; j < n; j++ {
						vdst[oo], idst[oo] = v, id
						oo++
					}
				}
			}
		}
	})
	return out
}

// combineMin merges two results with identical columns, keeping the
// per-tuple minimum score. Plans of the same query always produce the
// same answer support, so every key is expected on both sides; a tuple
// seen on only one side keeps its score (defensive, and correct for the
// upper-bound semantics).
func combineMin(a, b *Result, ex *exec) *Result {
	f := newMinFold(a, ex)
	f.merge(b)
	return f.out
}

// minFold folds plan results under the per-answer minimum while
// retaining the accumulator's group table across folds: the first input
// is copied and interned once, and every later fold only probes with
// its own rows — O(total rows) interning over a whole fold chain
// instead of re-interning the growing accumulator per plan. Each step
// observably equals pairwise combineMin: rows appended during a merge
// join the table only after that merge's probe pass (so duplicate keys
// within one input append separately, exactly as a per-step rebuild
// would re-intern them last-wins), scores merge in the same order, and
// budget totals are unchanged.
type minFold struct {
	out   *Result
	g     *groupTable
	rowOf []int32 // per gid: the last row of out holding that key
	ex    *exec
}

func newMinFold(a *Result, ex *exec) *minFold {
	na := a.Len()
	m := &minFold{g: newGroupTable(len(a.Cols), na), ex: ex}
	m.out = newResult(a.Cols)
	for k := range a.vals {
		m.out.vals[k] = append([]Value(nil), a.vals[k]...)
		m.out.ids[k] = append([]int32(nil), a.ids[k]...)
	}
	m.out.scores = append([]float64(nil), a.scores...)
	m.addRows(0, na)
	return m
}

// addRows interns out's rows [lo, hi) into the table, last-wins on
// duplicate keys — the same mapping a fresh rebuild over all of out
// would produce.
func (m *minFold) addRows(lo, hi int) {
	cc := m.ex.canc()
	sg := newColSigner(m.out.ids)
	wide := sg.wide()
	for i := lo; i < hi; i++ {
		cc.check()
		var key []int32
		if wide {
			key = sg.keyAt(i)
		}
		gid, fresh := m.g.internSig(sg.sig(i), key)
		if fresh {
			m.rowOf = append(m.rowOf, int32(i))
		} else {
			m.rowOf[gid] = int32(i)
		}
	}
}

// merge folds one more plan result into the accumulator.
func (m *minFold) merge(b *Result) {
	if !varsSliceEqual(m.out.Cols, b.Cols) {
		panic(fmt.Sprintf("engine: min over different columns %v vs %v", m.out.Cols, b.Cols))
	}
	cc := m.ex.canc()
	base := m.out.Len()
	bsg := newColSigner(b.ids)
	wide := bsg.wide()
	nb := b.Len()
	appended := 0
	for i := 0; i < nb; i++ {
		cc.check()
		var key []int32
		if wide {
			key = bsg.keyAt(i)
		}
		if gid, ok := m.g.lookupSig(bsg.sig(i), key); ok {
			j := m.rowOf[gid]
			m.out.scores[j] = math.Min(m.out.scores[j], b.scores[i])
		} else {
			appended++
			for k := range m.out.vals {
				m.out.vals[k] = append(m.out.vals[k], b.vals[k][i])
				m.out.ids[k] = append(m.out.ids[k], b.ids[k][i])
			}
			m.out.scores = append(m.out.scores, b.scores[i])
		}
	}
	if appended > 0 {
		m.ex.charge(appended)
		m.addRows(base, base+appended)
	}
}

// SemiJoinReduce performs the full deterministic semi-join reduction of
// Optimization 3: every atom's relation is repeatedly reduced by
// semi-joins with the other atoms it shares variables with, until
// fixpoint. It returns the surviving row indices per relation (only
// entries for the query's atoms are present). Constant selections and
// predicates are applied first, so the reduction starts from the
// selected subsets.
func SemiJoinReduce(db *DB, q *cq.Query) map[string][]int32 {
	return semiJoinReduce(db, q, nil)
}

// SemiJoinReduceCtx is SemiJoinReduce bound to a context (see
// NewEvaluatorCtx for the cancellation contract).
func SemiJoinReduceCtx(ctx context.Context, db *DB, q *cq.Query) map[string][]int32 {
	return semiJoinReduce(db, q, &canceller{ctx: ctx})
}

func semiJoinReduce(db *DB, q *cq.Query, c *canceller) map[string][]int32 {
	type atomInfo struct {
		atom cq.Atom
		rel  *Relation
		live []int32
		// varPos maps each variable to one argument position.
		varPos map[cq.Var]int
	}
	head := q.HeadSet()
	infos := make([]*atomInfo, len(q.Atoms))
	for i, a := range q.Atoms {
		rel := db.Relation(a.Rel)
		if rel == nil {
			panic(fmt.Sprintf("engine: unknown relation %s", a.Rel))
		}
		info := &atomInfo{atom: a, rel: rel, varPos: map[cq.Var]int{}}
		for j, t := range a.Args {
			if t.IsVar() {
				if _, ok := info.varPos[t.Var]; !ok {
					info.varPos[t.Var] = j
				}
			}
		}
		filter := newRowFilter(db, rel, plan.NewScan(a, q.PredsOnAtom(a)))
		sel, all := filter.apply(rel, nil, false, c)
		if all {
			info.live = make([]int32, rel.Len())
			for r := range info.live {
				info.live[r] = int32(r)
			}
		} else {
			info.live = sel
		}
		infos[i] = info
	}
	// Shared existential variables between atom pairs drive the reduction.
	shared := func(a, b *atomInfo) []cq.Var {
		var out []cq.Var
		for v := range a.varPos {
			if head.Has(v) {
				continue
			}
			if _, ok := b.varPos[v]; ok {
				out = append(out, v)
			}
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	for changed := true; changed; {
		changed = false
		for i, a := range infos {
			for j, b := range infos {
				if i == j {
					continue
				}
				vars := shared(a, b)
				if len(vars) == 0 {
					continue
				}
				// Hoist the variable positions out of the row loops: the
				// semi-join filter kernels below then run over the flattened
				// id storage without per-row map lookups.
				apos := make([]int, len(vars))
				bpos := make([]int, len(vars))
				for x, v := range vars {
					apos[x] = a.varPos[v]
					bpos[x] = b.varPos[v]
				}
				// Keys present in b on the shared vars.
				keys := newGroupTable(len(vars), len(b.live))
				key := make([]int32, len(vars))
				for _, r := range b.live {
					c.check()
					row := b.rel.vidRow(int(r))
					for x, p := range bpos {
						key[x] = row[p]
					}
					keys.intern(key)
				}
				// Keep only a's rows whose shared-key exists in b.
				kept := a.live[:0]
				for _, r := range a.live {
					c.check()
					row := a.rel.vidRow(int(r))
					for x, p := range apos {
						key[x] = row[p]
					}
					if _, ok := keys.lookup(key); ok {
						kept = append(kept, r)
					}
				}
				if len(kept) != len(a.live) {
					a.live = kept
					changed = true
				}
			}
		}
	}
	out := map[string][]int32{}
	for _, info := range infos {
		out[info.atom.Rel] = info.live
	}
	return out
}

func colIndex(cols []cq.Var, v cq.Var) int {
	for i, c := range cols {
		if c == v {
			return i
		}
	}
	return -1
}

func sharedCols(l, r []cq.Var) (vars []cq.Var, lPos, rPos []int) {
	for i, c := range l {
		if j := colIndex(r, c); j >= 0 {
			vars = append(vars, c)
			lPos = append(lPos, i)
			rPos = append(rPos, j)
		}
	}
	return
}

func appendValue(b []byte, v Value) []byte {
	u := uint64(v)
	return append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
}

func varsSliceEqual(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
