// Package engine is the in-memory relational substrate: tuple-independent
// probabilistic relations, the operators of probabilistic query plans
// (selection scan, k-ary hash join, probabilistic projection, per-tuple
// min), plan evaluation under the extensional score semantics of Section 2
// of the paper, lineage extraction, deterministic evaluation, and the
// deterministic semi-join reduction of Optimization 3.
//
// The paper runs its plans on PostgreSQL / SQL Server; this package plays
// that role so the whole system is self-contained. Values are interned
// int64s: non-negative values are integers, negative values index a
// per-database string dictionary, so joins and group-bys hash machine
// words.
package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Value is an interned attribute value. Non-negative values represent the
// integer itself; negative values are indices into the database's string
// dictionary.
type Value int64

// noValue is the resolution of a query constant that appears nowhere in
// the database: it compares unequal to every stored Value and fails every
// numeric comparison, so scans filter correctly without mutating the
// string dictionary at query time (which would race under parallel
// evaluation).
const noValue Value = -1 << 62

// DB is a tuple-independent probabilistic database: a set of relations
// plus a probability per tuple. Every tuple is also a Boolean lineage
// variable, identified by a dense global id.
type DB struct {
	rels    map[string]*Relation
	order   []string
	strs    []string
	strIDs  map[string]Value
	varProb []float64 // probability per lineage variable id

	// valIDs assigns a dense int32 id to every distinct Value stored in
	// any relation, in first-insertion order. Join and group-by keys are
	// built from these ids ([]int32) instead of per-row byte encodings:
	// keys of arity <= 2 pack exactly into one uint64 map key.
	valIDs map[Value]int32

	// Copy-on-write state (see cow.go). cowDicts marks strIDs/valIDs as
	// shared with the parent of a CloneCOW copy; cowVarProb marks
	// varProb as shared for in-place writes (appends are safe: shared
	// slices are capacity-clamped).
	cowDicts   bool
	cowVarProb bool
}

// NewDB returns an empty database.
func NewDB() *DB {
	return &DB{rels: map[string]*Relation{}, strIDs: map[string]Value{}, valIDs: map[Value]int32{}}
}

// Relation is one probabilistic relation. All tuples of a deterministic
// relation have probability 1 and are not assigned lineage variables.
type Relation struct {
	Name string
	Cols []string
	// Deterministic marks relations whose tuples are all certain.
	Deterministic bool
	// Key lists the positions of the primary key, or nil. Keys contribute
	// functional dependencies to plan enumeration.
	Key []int

	db   *DB
	rows []Value   // flattened: len = arity * count
	vids []int32   // dense value ids, parallel to rows
	prob []float64 // per tuple; nil for deterministic relations
	vars []int32   // lineage variable ids; nil for deterministic relations

	// Secondary indexes, built lazily (see index.go). Not persisted, and
	// only their declarations survive cloning: they rebuild on first
	// use. idxMu serializes the lazy builds: scans may run concurrently
	// under parallel evaluation.
	idxMu    sync.Mutex
	hashIdx  map[int]*hashIndex
	rangeIdx map[int]*rangeIndex

	// cowProb marks prob as shared with a CloneCOW parent for in-place
	// writes (see cow.go).
	cowProb bool
}

// CreateRelation adds a probabilistic relation with the given attribute
// names. It panics if the name is taken — schema setup errors are
// programming errors.
func (db *DB) CreateRelation(name string, cols []string) *Relation {
	if _, ok := db.rels[name]; ok {
		panic(fmt.Sprintf("engine: relation %s already exists", name))
	}
	r := &Relation{Name: name, Cols: append([]string(nil), cols...), db: db}
	db.rels[name] = r
	db.order = append(db.order, name)
	return r
}

// CreateDeterministicRelation adds a relation whose tuples are all
// certain (probability 1).
func (db *DB) CreateDeterministicRelation(name string, cols []string) *Relation {
	r := db.CreateRelation(name, cols)
	r.Deterministic = true
	return r
}

// Relation returns the named relation, or nil.
func (db *DB) Relation(name string) *Relation { return db.rels[name] }

// Relations returns all relations in creation order.
func (db *DB) Relations() []*Relation {
	out := make([]*Relation, len(db.order))
	for i, n := range db.order {
		out[i] = db.rels[n]
	}
	return out
}

// NumVars returns the number of lineage variables (probabilistic tuples)
// in the database.
func (db *DB) NumVars() int { return len(db.varProb) }

// ProbOf returns the probability of the lineage variable id.
func (db *DB) ProbOf(id int32) float64 { return db.varProb[id] }

// VarProbs returns the probability table indexed by lineage variable id.
// The returned slice is shared; callers must not modify it.
func (db *DB) VarProbs() []float64 { return db.varProb }

// ScaleProbs multiplies every tuple probability in the database by f
// (Proposition 21 / the scaling experiments). f must be in (0, 1].
func (db *DB) ScaleProbs(f float64) {
	if f <= 0 || f > 1 {
		panic(fmt.Sprintf("engine: scale factor %v out of (0, 1]", f))
	}
	db.ensureOwnedVarProb()
	for _, r := range db.rels {
		r.ensureOwnedProb()
	}
	for i := range db.varProb {
		db.varProb[i] *= f
	}
	for _, r := range db.rels {
		for i := range r.prob {
			r.prob[i] *= f
		}
	}
}

// Clone returns a deep copy of the database (used by experiments that
// scale probabilities without disturbing the original).
func (db *DB) Clone() *DB {
	c := &DB{
		rels:    map[string]*Relation{},
		order:   append([]string(nil), db.order...),
		strs:    append([]string(nil), db.strs...),
		strIDs:  make(map[string]Value, len(db.strIDs)),
		varProb: append([]float64(nil), db.varProb...),
		valIDs:  make(map[Value]int32, len(db.valIDs)),
	}
	for s, id := range db.strIDs {
		c.strIDs[s] = id
	}
	for v, id := range db.valIDs {
		c.valIDs[v] = id
	}
	for name, r := range db.rels {
		c.rels[name] = &Relation{
			Name:          r.Name,
			Cols:          append([]string(nil), r.Cols...),
			Deterministic: r.Deterministic,
			Key:           append([]int(nil), r.Key...),
			db:            c,
			rows:          append([]Value(nil), r.rows...),
			vids:          append([]int32(nil), r.vids...),
			prob:          append([]float64(nil), r.prob...),
			vars:          append([]int32(nil), r.vars...),
		}
	}
	return c
}

// noteValue returns the dense id of v, assigning the next one on first
// sight. Called at insert/load time only; evaluation reads valIDs
// read-only.
func (db *DB) noteValue(v Value) int32 {
	if id, ok := db.valIDs[v]; ok {
		return id
	}
	db.ensureOwnedDicts()
	id := int32(len(db.valIDs))
	db.valIDs[v] = id
	return id
}

// NumValues returns the number of distinct values stored across all
// relations (the size of the dense value-id space).
func (db *DB) NumValues() int { return len(db.valIDs) }

// Intern returns the Value for a string, adding it to the dictionary if
// needed.
func (db *DB) Intern(s string) Value {
	if id, ok := db.strIDs[s]; ok {
		return id
	}
	db.ensureOwnedDicts()
	id := Value(-int64(len(db.strs)) - 1)
	db.strs = append(db.strs, s)
	db.strIDs[s] = id
	return id
}

// Int returns the Value for an integer. Negative integers are interned
// via their decimal representation to keep the id space unambiguous.
func (db *DB) Int(i int64) Value {
	if i >= 0 {
		return Value(i)
	}
	return db.Intern(strconv.FormatInt(i, 10))
}

// Decode renders a Value back to its external string form.
func (db *DB) Decode(v Value) string {
	if v >= 0 {
		return strconv.FormatInt(int64(v), 10)
	}
	return db.strs[-int64(v)-1]
}

// EncodeConst interns a query constant: numeric literals become integer
// values, everything else dictionary ids. Insert-time only — query
// evaluation resolves constants with lookupConst, which never writes.
func (db *DB) EncodeConst(lit string) Value {
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil && i >= 0 {
		return Value(i)
	}
	return db.Intern(lit)
}

// lookupConst resolves a query constant read-only: numeric literals
// encode themselves, known strings resolve to their dictionary id, and
// unknown strings resolve to noValue (they can match no stored tuple).
// Scans and predicates use this so concurrent evaluations never mutate
// the dictionary.
func (db *DB) lookupConst(lit string) Value {
	if i, err := strconv.ParseInt(lit, 10, 64); err == nil && i >= 0 {
		return Value(i)
	}
	if id, ok := db.strIDs[lit]; ok {
		return id
	}
	return noValue
}

// VarLabels returns a human-readable label for every lineage variable,
// of the form "Rel(v1, v2)". Used to render lineage formulas.
func (db *DB) VarLabels() map[int32]string {
	out := make(map[int32]string, len(db.varProb))
	for _, name := range db.order {
		r := db.rels[name]
		if r.Deterministic {
			continue
		}
		for i := 0; i < r.Len(); i++ {
			row := r.Row(i)
			parts := make([]string, len(row))
			for j, v := range row {
				parts[j] = db.Decode(v)
			}
			out[r.vars[i]] = r.Name + "(" + strings.Join(parts, ", ") + ")"
		}
	}
	return out
}

// Arity returns the number of attributes.
func (r *Relation) Arity() int { return len(r.Cols) }

// Len returns the number of tuples.
func (r *Relation) Len() int {
	if len(r.Cols) == 0 {
		return len(r.prob)
	}
	return len(r.rows) / len(r.Cols)
}

// Insert adds one tuple with the given probability. Deterministic
// relations require p == 1. Values must already be encoded via the
// owning database (Intern/Int/EncodeConst).
func (r *Relation) Insert(tuple []Value, p float64) {
	if len(tuple) != len(r.Cols) {
		panic(fmt.Sprintf("engine: %s arity %d, got %d values", r.Name, len(r.Cols), len(tuple)))
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("engine: probability %v out of [0, 1]", p))
	}
	r.rows = append(r.rows, tuple...)
	for _, v := range tuple {
		r.vids = append(r.vids, r.db.noteValue(v))
	}
	if r.Deterministic {
		if p != 1 {
			panic(fmt.Sprintf("engine: deterministic relation %s requires p = 1", r.Name))
		}
		r.prob = append(r.prob, 1)
		return
	}
	r.prob = append(r.prob, p)
	id := int32(len(r.db.varProb))
	r.db.varProb = append(r.db.varProb, p)
	r.vars = append(r.vars, id)
}

// InsertStrings encodes the string forms of a tuple and inserts it.
func (r *Relation) InsertStrings(tuple []string, p float64) {
	vals := make([]Value, len(tuple))
	for i, s := range tuple {
		vals[i] = r.db.EncodeConst(s)
	}
	r.Insert(vals, p)
}

// Row returns the i-th tuple (a view into internal storage; do not
// modify).
func (r *Relation) Row(i int) []Value {
	a := len(r.Cols)
	return r.rows[i*a : (i+1)*a]
}

// vidRow returns the dense value ids of the i-th tuple (a view; do not
// modify).
func (r *Relation) vidRow(i int) []int32 {
	a := len(r.Cols)
	return r.vids[i*a : (i+1)*a]
}

// Prob returns the probability of the i-th tuple.
func (r *Relation) Prob(i int) float64 { return r.prob[i] }

// VarID returns the lineage variable id of the i-th tuple, or -1 for
// tuples of deterministic relations.
func (r *Relation) VarID(i int) int32 {
	if r.Deterministic {
		return -1
	}
	return r.vars[i]
}

// SetProb updates the probability of the i-th tuple (and its lineage
// variable).
func (r *Relation) SetProb(i int, p float64) {
	if r.Deterministic {
		panic("engine: cannot set probability on a deterministic relation")
	}
	if p < 0 || p > 1 {
		panic(fmt.Sprintf("engine: probability %v out of [0, 1]", p))
	}
	r.ensureOwnedProb()
	r.db.ensureOwnedVarProb()
	r.prob[i] = p
	r.db.varProb[r.vars[i]] = p
}

// colIndex returns the position of a column by name, or -1.
func (r *Relation) colIndex(name string) int {
	for i, c := range r.Cols {
		if c == name {
			return i
		}
	}
	return -1
}

// SetKey declares the primary key by column names. The key contributes
// functional dependencies to plan enumeration (Section 3.3.2).
func (r *Relation) SetKey(cols ...string) {
	// Fresh allocation: Key may share backing storage with a CloneCOW
	// parent, so never truncate-and-append in place.
	r.Key = make([]int, 0, len(cols))
	for _, c := range cols {
		i := r.colIndex(c)
		if i < 0 {
			panic(fmt.Sprintf("engine: relation %s has no column %s", r.Name, c))
		}
		r.Key = append(r.Key, i)
	}
	sort.Ints(r.Key)
}
