package engine

import (
	"fmt"
	"strings"
	"time"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// NodeStat is one profiled plan-node execution: the operator, its output
// cardinality, and its inclusive wall-clock time. CacheHit marks subplan
// results served from the Opt2 cache.
type NodeStat struct {
	Node      plan.Node
	Rows      int
	Inclusive time.Duration
	CacheHit  bool
	Depth     int
}

// EvalProfiled evaluates a plan like Eval while recording one NodeStat
// per plan node, in execution (post-order) order — the engine's EXPLAIN
// ANALYZE.
func (e *Evaluator) EvalProfiled(p plan.Node) (*Result, []NodeStat) {
	var stats []NodeStat
	var eval func(n plan.Node, depth int) *Result
	eval = func(n plan.Node, depth int) *Result {
		if e.cache != nil {
			if r, ok := e.cache[n.Key()]; ok {
				stats = append(stats, NodeStat{Node: n, Rows: r.Len(), CacheHit: true, Depth: depth})
				return r
			}
		}
		start := time.Now()
		var out *Result
		switch t := n.(type) {
		case *plan.Scan:
			out = e.scan(t)
		case *plan.Project:
			out = project(eval(t.Child, depth+1), t.OnTo, e.ex())
		case *plan.Join:
			results := make([]*Result, len(t.Subs))
			for i, c := range t.Subs {
				results[i] = eval(c, depth+1)
			}
			if e.opts.CostBasedJoins {
				out = foldJoinCostBased(results, e.ex())
			} else {
				out = foldJoin(results, e.ex())
			}
		case *plan.Min:
			out = eval(t.Subs[0], depth+1)
			for _, c := range t.Subs[1:] {
				out = combineMin(out, eval(c, depth+1), e.ex())
			}
		default:
			panic("engine: unknown plan node")
		}
		if e.cache != nil {
			e.cache[n.Key()] = out
		}
		stats = append(stats, NodeStat{Node: n, Rows: out.Len(), Inclusive: time.Since(start), Depth: depth})
		return out
	}
	res := eval(p, 0)
	return res, stats
}

// FormatProfile renders the stats as an indented operator tree, root
// first, with output cardinalities and inclusive times.
func FormatProfile(stats []NodeStat) string {
	var b strings.Builder
	// Stats are post-order; print in reverse for a root-first tree.
	for i := len(stats) - 1; i >= 0; i-- {
		s := stats[i]
		indent := strings.Repeat("  ", s.Depth)
		var op string
		switch t := s.Node.(type) {
		case *plan.Scan:
			op = "scan " + t.Atom.String()
		case *plan.Project:
			op = "project π-" + varList(t.Away())
		case *plan.Join:
			op = fmt.Sprintf("join (%d-way)", len(t.Subs))
		case *plan.Min:
			op = fmt.Sprintf("min (%d alternatives)", len(t.Subs))
		}
		if s.CacheHit {
			fmt.Fprintf(&b, "%s%-40s rows=%-8d (cached)\n", indent, op, s.Rows)
		} else {
			fmt.Fprintf(&b, "%s%-40s rows=%-8d %.3fms\n", indent, op, s.Rows,
				float64(s.Inclusive.Microseconds())/1000)
		}
	}
	return b.String()
}

func varList(vs []cq.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",")
}
