package engine

// End-to-end property tests of the paper's theorems: random small
// databases, real plan evaluation, exact inference as the oracle.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/exact"
	"lapushdb/internal/plan"
)

// propQueries is a pool of queries covering safe, unsafe, Boolean,
// non-Boolean, and multi-component shapes.
var propQueries = []string{
	"q() :- R(x), S(x, y), T(y)",
	"q() :- R(x), S(x), T(x, y), U(y)",
	"q(z) :- R(z, x), S(x, y), T(y)",
	"q() :- R(x), S(x, y)",
	"q() :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
	"q() :- R(x), S(y), T(x, y)",
	"q() :- A(x), B(y), M(x, y)",
	"q(w) :- R(w, x), S(x), T(x, y), U(y)",
}

// randomDB fills every relation of q with random tuples over a small
// domain, with probabilities in (0, pimax].
func randomDB(q *cq.Query, domain, maxRows int, pimax float64, rng *rand.Rand) *DB {
	db := NewDB()
	for _, a := range q.Atoms {
		cols := make([]string, len(a.Args))
		for i := range cols {
			cols[i] = string(rune('c' + i))
		}
		r := db.CreateRelation(a.Rel, cols)
		n := 1 + rng.Intn(maxRows)
		seen := map[string]bool{}
		tuple := make([]Value, len(cols))
		key := make([]byte, 0, 8*len(cols))
		for t := 0; t < n; t++ {
			key = key[:0]
			for j := range tuple {
				tuple[j] = Value(rng.Intn(domain))
				key = appendValue(key, tuple[j])
			}
			if seen[string(key)] {
				continue
			}
			seen[string(key)] = true
			r.Insert(tuple, math.Nextafter(0, 1)+rng.Float64()*pimax)
		}
	}
	return db
}

// exactProbs computes the exact probability of every answer via lineage +
// WMC, keyed by the answer tuple.
func exactProbs(db *DB, q *cq.Query) map[string]float64 {
	lin := EvalLineage(db, q, nil)
	out := map[string]float64{}
	key := make([]byte, 0, 16)
	for i := 0; i < lin.Len(); i++ {
		key = key[:0]
		for _, v := range lin.Key(i) {
			key = appendValue(key, v)
		}
		out[string(key)] = exact.Prob(lin.Clauses(i), db.VarProbs())
	}
	return out
}

func resultKey(r *Result, i int) string {
	key := make([]byte, 0, 16)
	for _, v := range r.Row(i) {
		key = appendValue(key, v)
	}
	return string(key)
}

// TestPropUpperBounds is Corollary 19: every plan's score is an upper
// bound on the exact probability, for every answer.
func TestPropUpperBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 40; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 8, 1.0, rng)
		truth := exactProbs(db, q)
		for _, p := range core.SafeDissociationPlans(q) {
			res := NewEvaluator(db, q, Options{}).Eval(p)
			for i := 0; i < res.Len(); i++ {
				want, ok := truth[resultKey(res, i)]
				if !ok {
					t.Fatalf("%s: plan answer missing from lineage", qs)
				}
				if res.Score(i) < want-1e-9 {
					t.Errorf("%s: plan %s scores %v < exact %v", qs, plan.String(p), res.Score(i), want)
				}
			}
		}
	}
}

// TestPropSafeExact is Proposition 6 via conservativity: for safe queries
// the single minimal plan computes the exact probability.
func TestPropSafeExact(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	safeQs := []string{
		"q() :- R(x), S(x, y)",
		"q() :- R(x), S(y), T(x, y)", // unsafe actually? at(x)={R,T}, at(y)={S,T}: overlap at T
		"q(z) :- R(z, x), S(x, y), K(x, y)",
		"q() :- A(x), B(x)",
	}
	for _, qs := range safeQs {
		q := cq.MustParse(qs)
		plans := core.MinimalPlans(q, nil)
		if len(plans) != 1 {
			continue // not safe; skip (one entry above is deliberately unsafe)
		}
		for iter := 0; iter < 10; iter++ {
			db := randomDB(q, 4, 8, 1.0, rng)
			truth := exactProbs(db, q)
			res := NewEvaluator(db, q, Options{}).Eval(plans[0])
			for i := 0; i < res.Len(); i++ {
				want := truth[resultKey(res, i)]
				if math.Abs(res.Score(i)-want) > 1e-9 {
					t.Errorf("%s: safe plan score %v != exact %v", qs, res.Score(i), want)
				}
			}
		}
	}
}

// TestPropLatticeMonotonicity is Corollary 16: along the dissociation
// lattice, ∆ ⪯ ∆′ implies score(P∆) ≤ score(P∆′) for every answer,
// whenever both dissociations are safe.
func TestPropLatticeMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, qs := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
	} {
		q := cq.MustParse(qs)
		var safe []plan.Dissociation
		for _, d := range core.Dissociations(q) {
			if d.IsSafeFor(q) {
				safe = append(safe, d)
			}
		}
		for iter := 0; iter < 10; iter++ {
			db := randomDB(q, 3, 6, 1.0, rng)
			scores := make([]float64, len(safe))
			for i, d := range safe {
				p, err := plan.PlanOf(q, d)
				if err != nil {
					t.Fatal(err)
				}
				scores[i] = NewEvaluator(db, q, Options{}).Eval(p).BooleanScore()
			}
			for i := range safe {
				for j := range safe {
					if i != j && safe[i].LE(safe[j]) && scores[i] > scores[j]+1e-9 {
						t.Errorf("%s: %s ⪯ %s but %v > %v", qs, safe[i], safe[j], scores[i], scores[j])
					}
				}
			}
		}
	}
}

// TestPropMinimalPlansSuffice is Theorem 20: the minimum score over the
// minimal plans equals the minimum over the whole plan space.
func TestPropMinimalPlansSuffice(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, qs := range []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
		"q(z) :- R(z, x), S(x, y), T(y)",
	} {
		q := cq.MustParse(qs)
		minimal := core.MinimalPlans(q, nil)
		all := core.SafeDissociationPlans(q)
		for iter := 0; iter < 10; iter++ {
			db := randomDB(q, 3, 6, 1.0, rng)
			rhoMin := EvalPlans(db, q, minimal, Options{})
			rhoAll := EvalPlans(db, q, all, Options{})
			if rhoMin.Len() != rhoAll.Len() {
				t.Fatalf("%s: answer sets differ", qs)
			}
			for i := 0; i < rhoMin.Len(); i++ {
				want, _ := rhoAll.ScoreOf(rhoMin.Row(i))
				if math.Abs(rhoMin.Score(i)-want) > 1e-9 {
					t.Errorf("%s: min over minimal plans %v != min over all plans %v",
						qs, rhoMin.Score(i), want)
				}
			}
		}
	}
}

// TestPropDRInvariance is Lemma 22: with deterministic relations, the
// DR-aware single plan computes the exact probability even though the
// query is structurally unsafe.
func TestPropDRInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	for iter := 0; iter < 20; iter++ {
		db := NewDB()
		R := db.CreateRelation("R", []string{"x"})
		S := db.CreateRelation("S", []string{"x", "y"})
		T := db.CreateDeterministicRelation("T", []string{"y"})
		for v := 0; v < 3; v++ {
			if rng.Float64() < 0.8 {
				R.Insert([]Value{Value(v)}, rng.Float64())
			}
			if rng.Float64() < 0.8 {
				T.Insert([]Value{Value(v)}, 1)
			}
			for w := 0; w < 3; w++ {
				if rng.Float64() < 0.6 {
					S.Insert([]Value{Value(v), Value(w)}, rng.Float64())
				}
			}
		}
		sch := SchemaFor(db, q)
		plans := core.MinimalPlans(q, sch)
		if len(plans) != 1 {
			t.Fatalf("DR-aware plans = %d, want 1", len(plans))
		}
		truth := exactProbs(db, q)
		res := NewEvaluator(db, q, Options{}).Eval(plans[0])
		for i := 0; i < res.Len(); i++ {
			want := truth[resultKey(res, i)]
			if math.Abs(res.Score(i)-want) > 1e-9 {
				t.Errorf("iter %d: DR plan score %v != exact %v", iter, res.Score(i), want)
			}
		}
	}
}

// TestPropFDInvariance is Lemma 25: when the data satisfies the FD x→y on
// S, the FD-aware single plan computes the exact probability.
func TestPropFDInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	for iter := 0; iter < 20; iter++ {
		db := NewDB()
		R := db.CreateRelation("R", []string{"x"})
		S := db.CreateRelation("S", []string{"x", "y"})
		S.SetKey("x") // enforces FD x → y
		T := db.CreateRelation("T", []string{"y"})
		for v := 0; v < 4; v++ {
			if rng.Float64() < 0.8 {
				R.Insert([]Value{Value(v)}, rng.Float64())
			}
			if rng.Float64() < 0.8 {
				T.Insert([]Value{Value(v)}, rng.Float64())
			}
			// One y per x: the FD holds in the data.
			if rng.Float64() < 0.8 {
				S.Insert([]Value{Value(v), Value(rng.Intn(4))}, rng.Float64())
			}
		}
		sch := SchemaFor(db, q)
		plans := core.MinimalPlans(q, sch)
		if len(plans) != 1 {
			t.Fatalf("FD-aware plans = %d, want 1", len(plans))
		}
		truth := exactProbs(db, q)
		res := NewEvaluator(db, q, Options{}).Eval(plans[0])
		for i := 0; i < res.Len(); i++ {
			want := truth[resultKey(res, i)]
			if math.Abs(res.Score(i)-want) > 1e-9 {
				t.Errorf("iter %d: FD plan score %v != exact %v", iter, res.Score(i), want)
			}
		}
	}
}

// TestPropScaling is Proposition 21: the relative error of ρ(q) vs P(q)
// shrinks as all probabilities are scaled down.
func TestPropScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	plans := core.MinimalPlans(q, nil)
	for iter := 0; iter < 10; iter++ {
		db := randomDB(q, 3, 8, 1.0, rng)
		relErr := func(f float64) float64 {
			d := db.Clone()
			d.ScaleProbs(f)
			rho := EvalPlans(d, q, plans, Options{}).BooleanScore()
			p := exactProbs(d, q)[""]
			if p == 0 {
				return 0
			}
			return (rho - p) / p
		}
		e1 := relErr(1.0)
		e01 := relErr(0.1)
		e001 := relErr(0.01)
		// Below ~1e-8 the "error" is floating-point noise (e.g. when the
		// instance happens to be safe); only meaningful errors must shrink.
		const floor = 1e-8
		if (e01 > floor && e01 > e1+floor) || (e001 > floor && e001 > e01+floor) {
			t.Errorf("iter %d: relative error not decreasing: %v, %v, %v", iter, e1, e01, e001)
		}
		if e001 > 0.05 {
			t.Errorf("iter %d: relative error at f=0.01 still large: %v", iter, e001)
		}
	}
}

// TestPropOptimizationsPreserveScores: Opt1, Opt2, Opt3 and their
// combinations never change any answer's score, only the evaluation
// strategy.
func TestPropOptimizationsPreserveScores(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	for iter := 0; iter < 20; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 10, 1.0, rng)
		plans := core.MinimalPlans(q, nil)
		base := EvalPlans(db, q, plans, Options{})
		sp := core.SinglePlan(q, nil)
		variants := map[string]*Result{
			"opt1":   NewEvaluator(db, q, Options{}).Eval(sp),
			"opt12":  NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp),
			"opt123": NewEvaluator(db, q, Options{ReuseSubplans: true, SemiJoin: true}).Eval(sp),
			"plans3": EvalPlans(db, q, plans, Options{SemiJoin: true}),
		}
		for name, res := range variants {
			if res.Len() != base.Len() {
				t.Fatalf("%s/%s: answers %d vs %d", qs, name, res.Len(), base.Len())
			}
			for i := 0; i < base.Len(); i++ {
				got, ok := res.ScoreOf(base.Row(i))
				if !ok || math.Abs(got-base.Score(i)) > 1e-9 {
					t.Errorf("%s/%s: score mismatch %v vs %v", qs, name, got, base.Score(i))
				}
			}
		}
	}
}

// assertIdenticalResults asserts two results have the same Cols and, in
// the same order, the same rows with exactly equal (bit-identical)
// scores — the morsel determinism contract.
func assertIdenticalResults(t *testing.T, label string, seq, par *Result) {
	t.Helper()
	if !varsSliceEqual(seq.Cols, par.Cols) {
		t.Fatalf("%s: cols %v vs %v", label, seq.Cols, par.Cols)
	}
	if seq.Len() != par.Len() {
		t.Fatalf("%s: %d rows vs %d", label, seq.Len(), par.Len())
	}
	for i := 0; i < seq.Len(); i++ {
		sr, pr := seq.Row(i), par.Row(i)
		for j := range sr {
			if sr[j] != pr[j] {
				t.Fatalf("%s: row %d differs: %v vs %v", label, i, sr, pr)
			}
		}
		if seq.Score(i) != par.Score(i) {
			t.Fatalf("%s: row %d score %v != %v (diff %g)",
				label, i, seq.Score(i), par.Score(i), seq.Score(i)-par.Score(i))
		}
	}
}

// TestPropMorselDifferential: evaluation with Workers ∈ {2, 8} returns
// identical columns, rows, and bit-identical scores to Workers = 1, on
// random instances across the query pool and optimization variants.
func TestPropMorselDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 24; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 12, 1.0, rng)
		plans := core.MinimalPlans(q, nil)
		for name, base := range map[string]Options{
			"plain":  {},
			"opt23":  {ReuseSubplans: true, SemiJoin: true},
			"costdp": {CostBasedJoins: true},
		} {
			seqOpts := base
			seqOpts.Workers = 1
			seq := EvalPlans(db, q, plans, seqOpts)
			for _, w := range []int{2, 8} {
				parOpts := base
				parOpts.Workers = w
				par := EvalPlans(db, q, plans, parOpts)
				assertIdenticalResults(t, fmt.Sprintf("%s/%s/w=%d", qs, name, w), seq, par)
				pp := EvalPlansParallel(db, q, plans, parOpts, w)
				assertIdenticalResults(t, fmt.Sprintf("%s/%s/w=%d/planpar", qs, name, w), seq, pp)
			}
		}
	}
}

// TestMorselDifferentialLarge runs the differential on a 3-chain whose
// relations exceed morselSize, so the chunked project, the partitioned
// join build, and the parallel probe all take their multi-chunk paths.
func TestMorselDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential skipped in -short")
	}
	rng := rand.New(rand.NewSource(20))
	q := cq.MustParse("q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)")
	db := NewDB()
	n := 3*morselSize + 17 // > 1 chunk, non-aligned tail
	domain := 300
	for ri := 1; ri <= 3; ri++ {
		r := db.CreateRelation(fmt.Sprintf("R%d", ri), []string{"a", "b"})
		for i := 0; i < n; i++ {
			r.Insert([]Value{Value(rng.Intn(domain)), Value(rng.Intn(domain))}, rng.Float64())
		}
	}
	plans := core.MinimalPlans(q, nil)
	stats := &EvalStats{}
	seq := EvalPlans(db, q, plans, Options{Workers: 1, Stats: stats})
	if stats.Partitions() == 0 {
		t.Fatalf("expected partitioned operator phases on %d-row inputs", n)
	}
	for _, w := range []int{2, 8} {
		par := EvalPlans(db, q, plans, Options{Workers: w})
		assertIdenticalResults(t, fmt.Sprintf("chain3-large/w=%d", w), seq, par)
	}
	// The semi-join-reduced and subplan-reusing variant too.
	seqOpt := EvalPlans(db, q, plans, Options{Workers: 1, ReuseSubplans: true, SemiJoin: true})
	parOpt := EvalPlans(db, q, plans, Options{Workers: 8, ReuseSubplans: true, SemiJoin: true})
	assertIdenticalResults(t, "chain3-large/opt23/w=8", seqOpt, parOpt)
}

// TestPropOracleBothPaths is the oracle cross-check for both execution
// paths: dissociation scores upper-bound the exact probability on every
// answer, safe queries match the oracle exactly, and the parallel path
// agrees bit-for-bit with the sequential one.
func TestPropOracleBothPaths(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	safeSet := map[string]bool{
		"q() :- R(x), S(x, y)": true,
		"q() :- A(x), B(x)":    true,
	}
	queries := append(append([]string(nil), propQueries...), "q() :- A(x), B(x)")
	for iter := 0; iter < 24; iter++ {
		qs := queries[iter%len(queries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 8, 1.0, rng)
		truth := exactProbs(db, q)
		plans := core.MinimalPlans(q, nil)
		for _, w := range []int{1, 8} {
			res := EvalPlans(db, q, plans, Options{Workers: w})
			for i := 0; i < res.Len(); i++ {
				want, ok := truth[resultKey(res, i)]
				if !ok {
					t.Fatalf("%s w=%d: answer missing from lineage", qs, w)
				}
				if res.Score(i) < want-1e-9 {
					t.Errorf("%s w=%d: dissociation %v below exact %v", qs, w, res.Score(i), want)
				}
				if safeSet[qs] && math.Abs(res.Score(i)-want) > 1e-9 {
					t.Errorf("%s w=%d: safe query score %v != exact %v", qs, w, res.Score(i), want)
				}
			}
		}
	}
}

// TestPropExecutorOracleDifferential: the columnar executor (streaming
// fused projection at Workers=1, morsel-parallel materialized operators
// otherwise) returns byte-identical results to the retained
// row-at-a-time oracle on random instances, across the optimization
// variants and Workers 1/4.
func TestPropExecutorOracleDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 24; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 12, 1.0, rng)
		plans := core.MinimalPlans(q, nil)
		for name, base := range map[string]Options{
			"plain":  {},
			"opt23":  {ReuseSubplans: true, SemiJoin: true},
			"costdp": {CostBasedJoins: true},
		} {
			for _, w := range []int{1, 4} {
				opts := base
				opts.Workers = w
				got := EvalPlans(db, q, plans, opts)
				opts.Oracle = true
				want := EvalPlans(db, q, plans, opts)
				assertIdenticalResults(t, fmt.Sprintf("%s/%s/w=%d", qs, name, w), want, got)
			}
		}
	}
}

// TestExecutorOracleDifferentialLarge runs the executor-vs-oracle
// differential on chain and star instances larger than a morsel, where
// the streaming fused Project(Join), the partitioned join build, and
// the chunked projection all take their multi-chunk paths.
func TestExecutorOracleDifferentialLarge(t *testing.T) {
	if testing.Short() {
		t.Skip("large differential skipped in -short")
	}
	rng := rand.New(rand.NewSource(24))
	n := 2*morselSize + 31
	shapes := []struct {
		label string
		query string
		rels  map[string]int // relation name -> arity
	}{
		{"chain3", "q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
			map[string]int{"R1": 2, "R2": 2, "R3": 2}},
		{"star3", "q(x1) :- R0(x1, x2, x3), R1(x1), R2(x2), R3(x3)",
			map[string]int{"R0": 3, "R1": 1, "R2": 1, "R3": 1}},
	}
	for _, sh := range shapes {
		q := cq.MustParse(sh.query)
		db := NewDB()
		domain := 250
		for name, ar := range sh.rels {
			cols := make([]string, ar)
			for i := range cols {
				cols[i] = string(rune('a' + i))
			}
			r := db.CreateRelation(name, cols)
			rows := n
			if ar == 1 {
				rows = domain // unary sides stay dense but small
			}
			tuple := make([]Value, ar)
			for i := 0; i < rows; i++ {
				for j := range tuple {
					tuple[j] = Value(rng.Intn(domain))
				}
				r.Insert(tuple, rng.Float64())
			}
		}
		plans := core.MinimalPlans(q, nil)
		for _, w := range []int{1, 4} {
			opts := Options{Workers: w, ReuseSubplans: true, SemiJoin: true}
			got := EvalPlans(db, q, plans, opts)
			opts.Oracle = true
			want := EvalPlans(db, q, plans, opts)
			assertIdenticalResults(t, fmt.Sprintf("%s/w=%d", sh.label, w), want, got)
		}
	}
}

// TestScoreOfIndexed is the regression test for the indexed ScoreOf: on
// a 10k-row result every present key resolves to its own score, absent
// keys miss, and duplicate rows keep first-occurrence semantics.
func TestScoreOfIndexed(t *testing.T) {
	const n = 10_000
	r := newResult([]cq.Var{"x", "y"})
	for i := 0; i < n; i++ {
		r.vals[0] = append(r.vals[0], Value(i))
		r.vals[1] = append(r.vals[1], Value(i%7))
		r.scores = append(r.scores, float64(i+1)/float64(n+1))
	}
	// A duplicate of row 42 with a different score: lookups must keep
	// returning the first occurrence, as the linear scan did.
	r.vals[0] = append(r.vals[0], Value(42))
	r.vals[1] = append(r.vals[1], Value(42%7))
	r.scores = append(r.scores, 0.123456)
	for i := 0; i < n; i++ {
		got, ok := r.ScoreOf([]Value{Value(i), Value(i % 7)})
		if !ok {
			t.Fatalf("key %d missing", i)
		}
		if want := float64(i+1) / float64(n+1); got != want {
			t.Fatalf("key %d: score %v, want %v", i, got, want)
		}
	}
	if _, ok := r.ScoreOf([]Value{Value(5), Value(6)}); ok {
		t.Error("absent key found")
	}
	if _, ok := r.ScoreOf([]Value{Value(1)}); ok {
		t.Error("wrong-arity key found")
	}
	// Empty-column (Boolean) results still work.
	b := &Result{scores: []float64{0.5}}
	if got, ok := b.ScoreOf(nil); !ok || got != 0.5 {
		t.Errorf("boolean ScoreOf = %v, %v", got, ok)
	}
}

// TestPropSinglePlanWithSchema: the merged plan under schema knowledge
// (DRs + FDs) computes the same score as the min over the schema-aware
// minimal plans, and both are exact when the schema makes the query
// safe.
func TestPropSinglePlanWithSchema(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	for iter := 0; iter < 15; iter++ {
		db := NewDB()
		R := db.CreateRelation("R", []string{"x"})
		S := db.CreateRelation("S", []string{"x", "y"})
		var T *Relation
		detT := iter%2 == 0
		if detT {
			T = db.CreateDeterministicRelation("T", []string{"y"})
		} else {
			T = db.CreateRelation("T", []string{"y"})
		}
		keyed := iter%3 == 0
		if keyed {
			S.SetKey("x")
		}
		for v := 0; v < 4; v++ {
			if rng.Float64() < 0.8 {
				R.Insert([]Value{Value(v)}, rng.Float64())
			}
			p := rng.Float64()
			if detT {
				p = 1
			}
			if rng.Float64() < 0.8 {
				T.Insert([]Value{Value(v)}, p)
			}
			if keyed {
				if rng.Float64() < 0.8 {
					S.Insert([]Value{Value(v), Value(rng.Intn(4))}, rng.Float64())
				}
			} else {
				for w := 0; w < 3; w++ {
					if rng.Float64() < 0.5 {
						S.Insert([]Value{Value(v), Value(w)}, rng.Float64())
					}
				}
			}
		}
		sch := SchemaFor(db, q)
		plans := core.MinimalPlans(q, sch)
		all := EvalPlans(db, q, plans, Options{}).BooleanScore()
		sp := core.SinglePlan(q, sch)
		merged := NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp).BooleanScore()
		if math.Abs(all-merged) > 1e-9 {
			t.Errorf("iter %d: min-over-plans %v != merged %v", iter, all, merged)
		}
		if detT || keyed {
			truth := exactProbs(db, q)[""]
			if math.Abs(merged-truth) > 1e-9 {
				t.Errorf("iter %d (det=%v key=%v): schema-safe score %v != exact %v", iter, detT, keyed, merged, truth)
			}
		}
	}
}
