package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// TestChainJoinAllocGate is the allocation-regression gate for the
// columnar executor on the join-heavy chain shape: evaluating the
// 3-chain's minimal plans sequentially must stay under a pinned
// allocation ceiling. The ceiling is set from a post-refactor
// measurement (see the constant below) with ~30% headroom. The retained
// row-at-a-time oracle measures ~33k allocs/op on the same instance, so
// any slide back toward per-row appends or map-backed group tables
// trips the gate long before it shows up in benchmarks.
func TestChainJoinAllocGate(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation skews allocation counts")
	}
	if testing.Short() {
		t.Skip("alloc gate skipped in -short")
	}
	// chainAllocCeiling: measured 1286 allocs/op after the columnar
	// refactor (exact pre-sizing of join output, open-addressing group
	// tables, single-pass streamed projection), rounded up with headroom.
	const chainAllocCeiling = 1700
	rng := rand.New(rand.NewSource(71))
	q := cq.MustParse("q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)")
	db := NewDB()
	n := 2*morselSize + 100
	domain := 400
	for ri := 1; ri <= 3; ri++ {
		r := db.CreateRelation(fmt.Sprintf("R%d", ri), []string{"a", "b"})
		for i := 0; i < n; i++ {
			r.Insert([]Value{Value(rng.Intn(domain)), Value(rng.Intn(domain))}, rng.Float64())
		}
	}
	plans := core.MinimalPlans(q, nil)
	var out *Result
	allocs := testing.AllocsPerRun(3, func() {
		out = EvalPlans(db, q, plans, Options{Workers: 1})
	})
	if out.Len() == 0 {
		t.Fatal("chain evaluation returned no rows")
	}
	t.Logf("chain3 eval: %.0f allocs/op (%d answers)", allocs, out.Len())
	if allocs > chainAllocCeiling {
		t.Errorf("chain join allocations %.0f exceed pinned ceiling %d", allocs, chainAllocCeiling)
	}
}
