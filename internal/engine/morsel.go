package engine

import (
	"context"
	"sync"
	"sync/atomic"
)

// Morsel-driven intra-plan parallelism. Operators split their input row
// ranges into fixed-size chunks ("morsels") and evaluate chunks on a
// bounded pool of helper goroutines, the calling goroutine included.
//
// The determinism contract: chunk boundaries depend only on the input
// size (morselSize is a constant), every chunk's partial result is
// computed in row order, and partials are merged on one goroutine in
// chunk order. Which goroutine computes a chunk therefore never affects
// any output bit — scores are bit-identical across every Workers
// setting, including fully sequential execution (one worker runs the
// same chunks in the same order).

// morselSize is the number of rows per chunk. It trades scheduling
// overhead against load balance; it must stay constant within one
// process for the determinism contract to hold across worker counts.
const morselSize = 2048

// joinPartitions is the partition-count of the partitioned hash-join
// build for builds of at least one morsel. Partitioning assigns every
// key to exactly one partition, so the count never affects results.
const joinPartitions = 16

// EvalStats accumulates execution counters across one evaluation (or a
// group of parallel plan evaluations sharing it). All methods are safe
// for concurrent use.
type EvalStats struct {
	partitions  atomic.Int64
	parallelOps atomic.Int64
}

// Partitions returns the total number of morsel chunks and hash-join
// partitions processed by partitioned operators.
func (s *EvalStats) Partitions() int64 { return s.partitions.Load() }

// ParallelOps returns the number of operator phases that ran
// partitioned (more than one chunk or partition).
func (s *EvalStats) ParallelOps() int64 { return s.parallelOps.Load() }

// pool bounds the helper goroutines available for intra-plan
// parallelism. Capacity is workers-1: the calling goroutine always
// participates, so Workers=1 spawns no goroutines at all. A single pool
// may be shared by several evaluators (EvalPlansParallelCtx), keeping
// the total goroutine budget bounded across plan- and morsel-level
// parallelism.
type pool struct {
	ctx context.Context
	sem chan struct{}
}

// newPool returns a pool admitting workers-1 helpers, or nil when
// workers <= 1 (sequential execution).
func newPool(ctx context.Context, workers int) *pool {
	if workers <= 1 {
		return nil
	}
	return &pool{ctx: ctx, sem: make(chan struct{}, workers-1)}
}

// exec carries the per-operator execution context: the calling
// goroutine's canceller, the (possibly nil) helper pool, the (possibly
// nil) stats sink, and the (possibly nil) intermediate row budget. A
// nil exec runs sequentially, uncancellably, and unbudgeted.
type exec struct {
	c      *canceller
	pool   *pool
	stats  *EvalStats
	budget *rowBudget
}

func (ex *exec) canc() *canceller {
	if ex == nil {
		return nil
	}
	return ex.c
}

// charge accounts n materialized intermediate rows against the
// evaluation's budget (see budget.go). Safe from morsel helpers.
func (ex *exec) charge(n int) {
	if ex == nil {
		return
	}
	ex.budget.charge(n)
}

// addPartitions records n partitioned work units in the stats sink.
func (ex *exec) addPartitions(n int) {
	if ex == nil || ex.stats == nil {
		return
	}
	ex.stats.partitions.Add(int64(n))
	ex.stats.parallelOps.Add(1)
}

// chunkBounds returns the row range [lo, hi) of chunk ci over n rows.
func chunkBounds(ci, n int) (int, int) {
	lo := ci * morselSize
	hi := lo + morselSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

func numChunks(n int) int { return (n + morselSize - 1) / morselSize }

// forChunks runs fn(chunk, canceller) for every chunk in [0, n). The
// calling goroutine always works; helper goroutines join only while
// pool slots are free (acquired without blocking, so nested parallel
// operators degrade to inline execution instead of deadlocking). Each
// helper polls the context through its own canceller; the first
// cancellation observed is re-raised on the calling goroutine after all
// helpers have drained, preserving the TrapCancel contract.
func (ex *exec) forChunks(n int, fn func(chunk int, c *canceller)) {
	var p *pool
	var parent *canceller
	if ex != nil {
		p, parent = ex.pool, ex.c
	}
	if p == nil || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i, parent)
		}
		return
	}
	var next atomic.Int64
	work := func(c *canceller) {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i, c)
		}
	}
	var wg sync.WaitGroup
	var mu sync.Mutex
	var helperErr error
	for spawned := 0; spawned < n-1; spawned++ {
		select {
		case p.sem <- struct{}{}:
		default:
			spawned = n // no free slot: stop trying
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-p.sem }()
			if err := TrapCancel(func() { work(&canceller{ctx: p.ctx}) }); err != nil {
				mu.Lock()
				if helperErr == nil {
					helperErr = err
				}
				mu.Unlock()
			}
		}()
	}
	// The caller's cancellation must also wait for helpers to drain
	// (they write into shared per-chunk slots) before unwinding.
	callerErr := TrapCancel(func() { work(parent) })
	wg.Wait()
	if callerErr != nil {
		panic(evalCancelled{callerErr})
	}
	if helperErr != nil {
		panic(evalCancelled{helperErr})
	}
}

// joinTable is the partitioned hash table over the build side of a
// join: keys (as dense value ids) are interned per partition, with each
// key's build row ids stored contiguously in ascending order in one
// global row array — the same order the sequential bucket lists had, so
// probes emit identical output. Probes address matches as (start, count)
// spans into rows, letting the join's second pass gather output columns
// without re-probing.
type joinTable struct {
	mask  uint64
	rows  []int32 // build row ids grouped by partition then key, ascending within key
	parts []joinPartition
}

type joinPartition struct {
	g     *groupTable
	base  int32   // offset of this partition's segment in joinTable.rows
	start []int32 // gid -> offset into the segment, len = groups+1
}

// buildJoinTable hashes the build side's key columns in parallel
// morsels, scatters rows to partitions (a stable counting sort, so row
// ids stay ascending), and builds the per-partition tables in parallel.
// Every array is pre-sized exactly from the build cardinality: the
// signature array, the partition segments, and each partition's group
// table (sized to its row count, an upper bound on its key count).
func buildJoinTable(build *Result, pos []int, ex *exec) *joinTable {
	n := build.Len()
	ka := len(pos)
	keyCols := make([][]int32, ka)
	for k, j := range pos {
		keyCols[k] = build.ids[j]
	}
	sigs := make([]uint64, n)
	nChunks := numChunks(n)
	if nChunks > 1 {
		ex.addPartitions(nChunks)
	}
	ex.forChunks(nChunks, func(ci int, c *canceller) {
		sg := newColSigner(keyCols)
		lo, hi := chunkBounds(ci, n)
		for i := lo; i < hi; i++ {
			c.check()
			sigs[i] = sg.sig(i)
		}
	})
	p := 1
	if n >= morselSize {
		p = joinPartitions
	}
	jt := &joinTable{mask: uint64(p - 1), rows: make([]int32, n), parts: make([]joinPartition, p)}
	offs := make([]int32, p+1)
	prows := make([]int32, n)
	if p == 1 {
		offs[1] = int32(n)
		for i := range prows {
			prows[i] = int32(i)
		}
	} else {
		counts := make([]int32, p)
		for i := 0; i < n; i++ {
			counts[mix64(sigs[i])&jt.mask]++
		}
		for i := 0; i < p; i++ {
			offs[i+1] = offs[i] + counts[i]
		}
		cursor := append([]int32(nil), offs[:p]...)
		for i := 0; i < n; i++ {
			pi := mix64(sigs[i]) & jt.mask
			prows[cursor[pi]] = int32(i)
			cursor[pi]++
		}
		ex.addPartitions(p)
	}
	ex.forChunks(p, func(pi int, c *canceller) {
		rows := prows[offs[pi]:offs[pi+1]]
		seg := jt.rows[offs[pi]:offs[pi+1]]
		part := &jt.parts[pi]
		part.base = offs[pi]
		part.g = newGroupTable(ka, len(rows))
		sg := newColSigner(keyCols)
		wide := sg.wide()
		gids := make([]int32, len(rows))
		for k, ri := range rows {
			c.check()
			var key []int32
			if wide {
				key = sg.keyAt(int(ri))
			}
			gid, _ := part.g.internSig(sigs[ri], key)
			gids[k] = gid
		}
		ng := part.g.size()
		cnt := make([]int32, ng)
		for _, gid := range gids {
			cnt[gid]++
		}
		part.start = make([]int32, ng+1)
		for i := 0; i < ng; i++ {
			part.start[i+1] = part.start[i] + cnt[i]
		}
		cur := append([]int32(nil), part.start[:ng]...)
		for k, ri := range rows {
			seg[cur[gids[k]]] = ri
			cur[gids[k]]++
		}
	})
	return jt
}

// lookupSpan returns the span (start, count) of build row ids matching
// the key in jt.rows, ascending; count 0 on miss. key may be nil for
// arity <= 2 signatures.
func (jt *joinTable) lookupSpan(sig uint64, key []int32) (int32, int32) {
	part := &jt.parts[mix64(sig)&jt.mask]
	gid, ok := part.g.lookupSig(sig, key)
	if !ok {
		return 0, 0
	}
	s := part.start[gid]
	return part.base + s, part.start[gid+1] - s
}
