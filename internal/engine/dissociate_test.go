package engine

import (
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/exact"
	"lapushdb/internal/plan"
)

// TestMaterializedDissociationExample11 reproduces Example 11: for
// q :- R(x), S(x, y) and ∆ = ({y}, ∅), R^y contains each R tuple copied
// once per y in the active domain.
func TestMaterializedDissociationExample11(t *testing.T) {
	db := example7DB(0.5, 0.4, 0.7)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	d := plan.NewDissociation()
	d.Add("R", "y")
	ddb, dq := MaterializeDissociation(db, q, d)
	// ADom(y) = {4, 5}: R^y = {(1,4), (1,5), (2,4), (2,5)}.
	ry := ddb.Relation("R")
	if ry.Len() != 4 {
		t.Fatalf("R^y has %d tuples, want 4", ry.Len())
	}
	if ry.Arity() != 2 {
		t.Errorf("R^y arity = %d, want 2", ry.Arity())
	}
	// Copies keep the original probability but are independent events.
	if ry.Prob(0) != 0.5 || ry.Prob(1) != 0.5 {
		t.Errorf("copy probabilities = %v, %v", ry.Prob(0), ry.Prob(1))
	}
	if ry.VarID(0) == ry.VarID(1) {
		t.Error("copies must be independent lineage variables")
	}
	// The dissociated query is hierarchical and its exact probability on
	// D∆ equals Example 9's dissociated value pq + pr − p²qr.
	if !dq.IsHierarchical() {
		t.Error("q∆ should be hierarchical")
	}
	lin := EvalLineage(ddb, dq, nil)
	got := exact.Prob(lin.Clauses(0), ddb.VarProbs())
	want := 0.5*0.4 + 0.5*0.7 - 0.25*0.4*0.7
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("P(q∆) on D∆ = %v, want %v", got, want)
	}
}

// TestTheorem18ScoreEqualsMaterialized is Theorem 18(2) end to end: for
// every safe dissociation ∆ of a query, score(P∆) computed on the
// ORIGINAL database equals the exact probability of q∆ on the
// MATERIALIZED dissociated database.
func TestTheorem18ScoreEqualsMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"q() :- R(x), S(x, y), T(y)",
		"q() :- R(x), S(x), T(x, y), U(y)",
	}
	for _, qs := range queries {
		q := cq.MustParse(qs)
		var safe []plan.Dissociation
		for _, d := range core.Dissociations(q) {
			if d.IsSafeFor(q) {
				safe = append(safe, d)
			}
		}
		for iter := 0; iter < 5; iter++ {
			db := randomDB(q, 3, 5, 1.0, rng)
			for _, d := range safe {
				p, err := plan.PlanOf(q, d)
				if err != nil {
					t.Fatal(err)
				}
				score := NewEvaluator(db, q, Options{}).Eval(p).BooleanScore()
				ddb, dq := MaterializeDissociation(db, q, d)
				lin := EvalLineage(ddb, dq, nil)
				var exactP float64
				if lin.Len() > 0 {
					exactP = exact.Prob(lin.Clauses(0), ddb.VarProbs())
				}
				if math.Abs(score-exactP) > 1e-9 {
					t.Errorf("%s ∆=%s: score(P∆)=%v on D, P(q∆)=%v on D∆", qs, d, score, exactP)
				}
			}
		}
	}
}

// TestTheorem12UpperBoundMaterialized is Theorem 12 on the materialized
// side: P(q∆) on D∆ upper-bounds P(q) on D for every dissociation
// (safe or not — here checked on safe ones where exactness is cheap).
func TestTheorem12UpperBoundMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	for iter := 0; iter < 5; iter++ {
		db := randomDB(q, 3, 5, 1.0, rng)
		truth := exactProbs(db, q)[""]
		for _, d := range core.Dissociations(q) {
			ddb, dq := MaterializeDissociation(db, q, d)
			lin := EvalLineage(ddb, dq, nil)
			var p float64
			if lin.Len() > 0 {
				p = exact.Prob(lin.Clauses(0), ddb.VarProbs())
			}
			if p < truth-1e-9 {
				t.Errorf("∆=%s: P(q∆)=%v < P(q)=%v", d, p, truth)
			}
		}
	}
}

// TestMaterializeDeterministicPreserved: dissociating a deterministic
// relation produces a deterministic relation, and the probability stays
// exactly P(q) (Lemma 22).
func TestMaterializeDeterministicPreserved(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateDeterministicRelation("S", []string{"x", "y"})
	T := db.CreateDeterministicRelation("T", []string{"y"})
	R.Insert([]Value{1}, 0.4)
	S.Insert([]Value{1, 1}, 1)
	S.Insert([]Value{1, 2}, 1)
	T.Insert([]Value{1}, 1)
	T.Insert([]Value{2}, 1)
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	d := plan.NewDissociation()
	d.Add("T", "x")
	ddb, dq := MaterializeDissociation(db, q, d)
	if !ddb.Relation("T").Deterministic {
		t.Error("dissociated deterministic relation lost its flag")
	}
	lin := EvalLineage(ddb, dq, nil)
	got := exact.Prob(lin.Clauses(0), ddb.VarProbs())
	if math.Abs(got-0.4) > 1e-12 {
		t.Errorf("P(q∆) = %v, want 0.4 (Lemma 22)", got)
	}
}
