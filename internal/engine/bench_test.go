package engine

import (
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// benchDB builds a 3-chain database with n tuples per relation.
func benchDB(n int, rng *rand.Rand) (*DB, *cq.Query) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x", "y"})
	S := db.CreateRelation("S", []string{"y", "z"})
	T := db.CreateRelation("T", []string{"z", "w"})
	N := n / 2
	for i := 0; i < n; i++ {
		R.Insert([]Value{Value(rng.Intn(N)), Value(rng.Intn(N))}, rng.Float64())
		S.Insert([]Value{Value(rng.Intn(N)), Value(rng.Intn(N))}, rng.Float64())
		T.Insert([]Value{Value(rng.Intn(N)), Value(rng.Intn(N))}, rng.Float64())
	}
	return db, cq.MustParse("q(x, w) :- R(x, y), S(y, z), T(z, w)")
}

func BenchmarkEvalMinimalPlan(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := benchDB(10000, rng)
	p := core.MinimalPlans(q, nil)[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewEvaluator(db, q, Options{}).Eval(p)
	}
}

func BenchmarkHashJoin(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := benchDB(10000, rng)
	sp := core.SinglePlan(q, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp)
	}
}

func BenchmarkSemiJoinReduce(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := benchDB(10000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SemiJoinReduce(db, q)
	}
}

func BenchmarkLineage(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := benchDB(3000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalLineage(db, q, nil)
	}
}

func BenchmarkDeterministic(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	db, q := benchDB(10000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		EvalDeterministic(db, q)
	}
}
