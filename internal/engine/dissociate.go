package engine

import (
	"fmt"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// MaterializeDissociation builds the dissociated database D∆ of
// Definition 10: every relation Ri dissociated on variables yi is
// replaced by Ri^yi, holding one copy of each tuple per combination of
// values in the active domains of yi; each copy keeps the original
// tuple's probability but becomes an independent event (a fresh lineage
// variable).
//
// The paper's algorithms never materialize D∆ — Theorem 18 lets plans
// run on the original database — so this function exists to validate
// that shortcut: the exact probability of q∆ on the materialized D∆
// must equal score(P∆) on D. It returns the new database and the
// dissociated query q∆ (same relation symbols, extended atoms).
func MaterializeDissociation(db *DB, q *cq.Query, d plan.Dissociation) (*DB, *cq.Query) {
	dq := d.Apply(q)
	// Active domain per variable: union over atoms containing it.
	adom := map[cq.Var][]Value{}
	varDomain := func(v cq.Var) []Value {
		if vals, ok := adom[v]; ok {
			return vals
		}
		set := map[Value]bool{}
		for _, a := range q.Atoms {
			rel := db.Relation(a.Rel)
			if rel == nil {
				panic(fmt.Sprintf("engine: unknown relation %s", a.Rel))
			}
			for j, t := range a.Args {
				if t.Var != v {
					continue
				}
				for i := 0; i < rel.Len(); i++ {
					set[rel.Row(i)[j]] = true
				}
			}
		}
		vals := make([]Value, 0, len(set))
		for val := range set {
			vals = append(vals, val)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		adom[v] = vals
		return vals
	}

	out := NewDB()
	out.strs = append([]string(nil), db.strs...)
	for s, id := range db.strIDs {
		out.strIDs[s] = id
	}
	for _, a := range q.Atoms {
		rel := db.Relation(a.Rel)
		extra := d.ExtraOf(a.Rel).Sorted()
		cols := append([]string(nil), rel.Cols...)
		for _, v := range extra {
			cols = append(cols, "y_"+string(v))
		}
		var nr *Relation
		if rel.Deterministic {
			nr = out.CreateDeterministicRelation(rel.Name, cols)
		} else {
			nr = out.CreateRelation(rel.Name, cols)
		}
		// Cartesian product of the extra variables' active domains.
		domains := make([][]Value, len(extra))
		for i, v := range extra {
			domains[i] = varDomain(v)
		}
		tuple := make([]Value, len(cols))
		var emit func(i int, base []Value, p float64)
		emit = func(i int, base []Value, p float64) {
			if i == len(domains) {
				copy(tuple, base)
				nr.Insert(tuple, p)
				return
			}
			for _, val := range domains[i] {
				base[len(rel.Cols)+i] = val
				emit(i+1, base, p)
			}
		}
		base := make([]Value, len(cols))
		for r := 0; r < rel.Len(); r++ {
			copy(base, rel.Row(r))
			emit(0, base, rel.Prob(r))
		}
	}
	return out, dq
}
