package engine

// Copy-on-write cloning. CloneCOW backs the versioned store: a single
// serialized applier builds the next database version as a cheap copy
// that shares storage with the published one, while any number of
// queries keep reading the published version lock-free.
//
// Sharing discipline:
//
//   - Slices are shared with their capacity clamped to their length, so
//     every append on the clone reallocates instead of writing into the
//     shared backing array. Appends on the (frozen) parent beyond the
//     clone's length would not be visible to the clone either, but the
//     contract is stronger: once cloned, the parent must not be mutated
//     at all (the store only mutates the newest, still-private clone).
//   - The string dictionary and value-id maps are shared until the
//     clone's first write (a new string or value), at which point they
//     are copied in full — probability-only batches never pay for them.
//   - In-place writes (SetProb, ScaleProbs) copy the touched probability
//     arrays first, tracked by per-slice copy-on-write flags.
//   - Deletions rebuild the relation's storage into fresh arrays.
//
// Lazy secondary indexes are declared on the clone (same columns) but
// never share built state: they rebuild on first use per version.

// clampCap returns s with its capacity clamped to its length, so that
// appending to the result always reallocates. nil stays nil.
func clampCap[T any](s []T) []T {
	if s == nil {
		return nil
	}
	return s[:len(s):len(s)]
}

// CloneCOW returns a copy of the database that shares storage with the
// receiver as described above. The receiver must be treated as frozen
// for mutation afterwards; both copies remain safe to read (and the
// clone safe to mutate) concurrently.
func (db *DB) CloneCOW() *DB {
	c := &DB{
		rels:       make(map[string]*Relation, len(db.rels)),
		order:      clampCap(db.order),
		strs:       clampCap(db.strs),
		strIDs:     db.strIDs,
		varProb:    clampCap(db.varProb),
		valIDs:     db.valIDs,
		cowDicts:   true,
		cowVarProb: true,
	}
	for name, r := range db.rels {
		nr := &Relation{
			Name:          r.Name,
			Cols:          clampCap(r.Cols),
			Deterministic: r.Deterministic,
			Key:           clampCap(r.Key),
			db:            c,
			rows:          clampCap(r.rows),
			vids:          clampCap(r.vids),
			prob:          clampCap(r.prob),
			vars:          clampCap(r.vars),
			cowProb:       true,
		}
		// Carry index declarations (not built state): each version
		// rebuilds lazily on first use, under its own idxMu.
		if r.hashIdx != nil {
			nr.hashIdx = make(map[int]*hashIndex, len(r.hashIdx))
			for col := range r.hashIdx {
				nr.hashIdx[col] = &hashIndex{builtAt: -1}
			}
		}
		if r.rangeIdx != nil {
			nr.rangeIdx = make(map[int]*rangeIndex, len(r.rangeIdx))
			for col := range r.rangeIdx {
				nr.rangeIdx[col] = &rangeIndex{builtAt: -1}
			}
		}
		c.rels[name] = nr
	}
	return c
}

// ensureOwnedDicts copies the shared string and value dictionaries
// before the first write on a copy-on-write clone.
func (db *DB) ensureOwnedDicts() {
	if !db.cowDicts {
		return
	}
	strIDs := make(map[string]Value, len(db.strIDs)+1)
	for s, id := range db.strIDs {
		strIDs[s] = id
	}
	valIDs := make(map[Value]int32, len(db.valIDs)+1)
	for v, id := range db.valIDs {
		valIDs[v] = id
	}
	db.strIDs, db.valIDs = strIDs, valIDs
	db.cowDicts = false
}

// ensureOwnedVarProb copies the shared lineage-probability table before
// an in-place write.
func (db *DB) ensureOwnedVarProb() {
	if !db.cowVarProb {
		return
	}
	db.varProb = append(make([]float64, 0, len(db.varProb)), db.varProb...)
	db.cowVarProb = false
}

// ensureOwnedProb copies the relation's shared probability column
// before an in-place write.
func (r *Relation) ensureOwnedProb() {
	if !r.cowProb {
		return
	}
	r.prob = append(make([]float64, 0, len(r.prob)), r.prob...)
	r.cowProb = false
}

// LookupConst resolves an external value to its interned form without
// mutating the dictionary. ok is false when the value is a string that
// occurs nowhere in the database (it can match no stored tuple).
func (db *DB) LookupConst(lit string) (Value, bool) {
	v := db.lookupConst(lit)
	return v, v != noValue
}

// FindRow returns the index of the first tuple equal to the given
// values, or -1. Duplicate tuples (same values, distinct lineage
// variables) resolve to the first occurrence.
func (r *Relation) FindRow(tuple []Value) int {
	a := len(r.Cols)
	if len(tuple) != a {
		return -1
	}
	n := r.Len()
outer:
	for i := 0; i < n; i++ {
		row := r.rows[i*a : (i+1)*a]
		for j := range row {
			if row[j] != tuple[j] {
				continue outer
			}
		}
		return i
	}
	return -1
}

// DeleteRow removes the i-th tuple, rebuilding the relation's storage
// into fresh arrays (copy-on-write safe). The tuple's lineage variable
// id stays allocated but unreferenced, so variable-id assignment — and
// with it WAL replay — remains deterministic.
func (r *Relation) DeleteRow(i int) {
	a := len(r.Cols)
	n := r.Len()
	if i < 0 || i >= n {
		panic("engine: DeleteRow index out of range")
	}
	rows := make([]Value, 0, (n-1)*a)
	rows = append(rows, r.rows[:i*a]...)
	rows = append(rows, r.rows[(i+1)*a:]...)
	vids := make([]int32, 0, (n-1)*a)
	vids = append(vids, r.vids[:i*a]...)
	vids = append(vids, r.vids[(i+1)*a:]...)
	prob := make([]float64, 0, n-1)
	prob = append(prob, r.prob[:i]...)
	prob = append(prob, r.prob[i+1:]...)
	r.rows, r.vids, r.prob = rows, vids, prob
	r.cowProb = false
	if !r.Deterministic {
		vars := make([]int32, 0, n-1)
		vars = append(vars, r.vars[:i]...)
		vars = append(vars, r.vars[i+1:]...)
		r.vars = vars
	}
}
