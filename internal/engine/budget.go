package engine

import (
	"errors"
	"fmt"
	"sync/atomic"
)

// Resource-governed evaluation. A query's plans can materialize
// intermediate results far larger than either the input or the answer
// (a mis-ordered join, a cross product from a disconnected plan), and
// one such query can take down a shared server by exhausting memory.
// Options.MaxIntermediateRows caps the total number of intermediate
// rows one evaluation may materialize; the cap is checked cooperatively
// in the same hot loops that poll for cancellation, and unwinds through
// the existing panic channel so operator code stays free of error
// plumbing. TrapCancel hands the typed ErrBudget back to the caller.

// ErrBudget is returned (wrapped) when an evaluation exceeds its
// intermediate row budget. Callers classify it with errors.Is.
var ErrBudget = errors.New("engine: intermediate row budget exceeded")

// rowBudget tracks intermediate rows materialized by one evaluation.
// The counter is shared by the calling goroutine and all morsel helpers,
// so it is atomic; a nil budget is unlimited and costs one nil check per
// charge site.
type rowBudget struct {
	limit int64
	used  atomic.Int64
}

// newRowBudget returns a budget of limit rows, or nil (unlimited) when
// limit <= 0.
func newRowBudget(limit int) *rowBudget {
	if limit <= 0 {
		return nil
	}
	return &rowBudget{limit: int64(limit)}
}

// charge accounts n freshly materialized rows, unwinding with a typed
// budget error once the total exceeds the limit. The check is
// cooperative: concurrent morsel helpers may overshoot by at most one
// in-flight row each before the first panic propagates.
func (b *rowBudget) charge(n int) {
	if b == nil || n == 0 {
		return
	}
	if b.used.Add(int64(n)) > b.limit {
		panic(evalCancelled{fmt.Errorf("%w: limit %d rows", ErrBudget, b.limit)})
	}
}
