package engine

import (
	"context"
	"math"
	"sync"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// EvalPlansParallel is EvalPlans with one goroutine per plan — the
// "multi-core query processing" benefit the paper names for running
// probabilistic inference inside a relational engine. The semi-join
// reduction (when enabled) is computed once and shared read-only; each
// plan gets its own evaluator and subplan cache. Results are combined
// with the per-answer minimum, exactly as in the sequential path.
func EvalPlansParallel(db *DB, q *cq.Query, plans []plan.Node, opts Options, workers int) *Result {
	return EvalPlansParallelCtx(nil, db, q, plans, opts, workers)
}

// EvalPlansParallelCtx is EvalPlansParallel bound to a context. Each
// worker goroutine traps its own cancellation; the first cancellation
// observed is re-raised on the calling goroutine after all workers
// finish, so callers handle it uniformly via TrapCancel.
func EvalPlansParallelCtx(ctx context.Context, db *DB, q *cq.Query, plans []plan.Node, opts Options, workers int) *Result {
	if len(plans) == 0 {
		return &Result{}
	}
	if workers <= 0 {
		workers = 4
	}
	root := &canceller{ctx: ctx}
	var reduced map[string][]int32
	if opts.Reduced != nil {
		reduced = opts.Reduced
	} else if opts.SemiJoin && q != nil {
		reduced = semiJoinReduce(db, q, root)
	}
	// One morsel pool shared across plan workers keeps the total
	// goroutine budget bounded by Workers regardless of plan count.
	morselPool := newPool(ctx, opts.Workers)
	// One row budget spans every plan worker (see EvalPlansCtx).
	budget := newRowBudget(opts.MaxIntermediateRows)
	results := make([]*Result, len(plans))
	var wg sync.WaitGroup
	var mu sync.Mutex
	var cancelErr error
	sem := make(chan struct{}, workers)
	for i, p := range plans {
		wg.Add(1)
		go func(i int, p plan.Node) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			err := TrapCancel(func() {
				e := &Evaluator{db: db, opts: opts, reduced: reduced, pool: morselPool, budget: budget}
				e.cancel.ctx = ctx
				e.bindMemo()
				if opts.ReuseSubplans {
					e.cache = map[string]*Result{}
				}
				results[i] = e.Eval(p)
			})
			if err != nil {
				mu.Lock()
				if cancelErr == nil {
					cancelErr = err
				}
				mu.Unlock()
			}
		}(i, p)
	}
	wg.Wait()
	if cancelErr != nil {
		panic(evalCancelled{cancelErr})
	}
	out := results[0]
	rootEx := &exec{c: root, pool: morselPool, stats: opts.Stats}
	if opts.Oracle {
		for _, r := range results[1:] {
			out = oracleCombineMin(out, r, rootEx)
		}
		return out
	}
	if len(results) > 1 {
		fold := newMinFold(out, rootEx)
		for _, r := range results[1:] {
			fold.merge(r)
		}
		out = fold.out
	}
	return out
}

// columnStats summarizes one join input for cardinality estimation.
type columnStats struct {
	rows     int
	distinct map[cq.Var]int
}

func statsOf(r *Result) columnStats {
	s := columnStats{rows: r.Len(), distinct: map[cq.Var]int{}}
	for ci, col := range r.Cols {
		vals := r.vals[ci]
		seen := make(map[Value]bool, len(vals))
		for _, v := range vals {
			seen[v] = true
		}
		s.distinct[col] = len(seen)
	}
	return s
}

// estimateJoin is the classic System R estimate: |A ⋈ B| =
// |A|·|B| / ∏ over shared columns of max(V(A,c), V(B,c)).
func estimateJoin(a, b columnStats, aCols, bCols []cq.Var) (float64, columnStats) {
	est := float64(a.rows) * float64(b.rows)
	shared := map[cq.Var]bool{}
	for _, c := range aCols {
		if colIndex(bCols, c) >= 0 {
			shared[c] = true
		}
	}
	for c := range shared {
		va, vb := a.distinct[c], b.distinct[c]
		if va < 1 {
			va = 1
		}
		if vb < 1 {
			vb = 1
		}
		est /= math.Max(float64(va), float64(vb))
	}
	// Output stats: distinct counts capped by the estimated row count.
	out := columnStats{rows: int(est) + 1, distinct: map[cq.Var]int{}}
	for c, v := range a.distinct {
		out.distinct[c] = min(v, out.rows)
	}
	for c, v := range b.distinct {
		if prev, ok := out.distinct[c]; !ok || v < prev {
			out.distinct[c] = min(v, out.rows)
		}
	}
	return est, out
}

// foldJoinCostBased orders a k-ary join with a Selinger-style dynamic
// program over input subsets (the paper cites System R's access-path
// selection as the model for its plan enumeration): dp[mask] holds the
// cheapest left-deep order of the inputs in mask, with cost = sum of
// estimated intermediate sizes (see costBasedJoinOrder in stream.go,
// which the streaming path shares). Falls back to the greedy fold
// beyond 12 inputs (the DP is 2^k).
func foldJoinCostBased(results []*Result, ex *exec) *Result {
	return foldJoinCostBasedWith(results, ex, join)
}

func foldJoinCostBasedWith(results []*Result, ex *exec, jf joinFn) *Result {
	order := costBasedJoinOrder(results)
	if order == nil {
		return foldJoinWith(results, ex, jf)
	}
	cur := results[order[0]]
	for _, i := range order[1:] {
		cur = jf(cur, results[i], ex)
	}
	return cur
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
