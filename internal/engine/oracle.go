package engine

// The retained row-at-a-time reference evaluator ("the oracle").
//
// This file preserves the pre-columnar operator implementations —
// per-tuple scan emission, map-backed group tables, bucket-list join
// tables, append-per-row output construction — verbatim except for the
// mechanical adaptation to the columnar Result storage. The streaming
// columnar executor in eval.go/stream.go must produce bit-identical
// outputs and identical typed errors (ErrBudget, cancellation); the
// differential suites and FuzzMorselDifferential enforce that by
// evaluating every workload through both executors.
//
// Selected via Options.Oracle (test-only; see the facade package
// internal/engine/oracle). Fold ordering (greedyJoinOrder,
// costBasedJoinOrder) is deliberately shared with the production
// executor: it is plan-level decision logic whose inputs — materialized
// child sizes — are identical in both executors, and sharing it
// guarantees both fold in the same order, which the bit-identity
// contract requires.

import (
	"math"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// oracleTable is the original map-backed group table: composite keys to
// dense group ids 0..n-1 in first-appearance order, with signature
// collision chains for wide keys.
type oracleTable struct {
	arity int
	exact bool             // arity <= 2: sig is the packed key, no compare needed
	table map[uint64]int32 // sig -> first group id with that sig
	next  []int32          // group id -> next group with equal sig, -1 ends
	keys  []int32          // flattened interned keys, arity per group
}

func newOracleTable(arity, sizeHint int) *oracleTable {
	return &oracleTable{
		arity: arity,
		exact: arity <= 2,
		table: make(map[uint64]int32, sizeHint),
	}
}

func (g *oracleTable) size() int { return len(g.next) }

func (g *oracleTable) intern(key []int32) (gid int32, fresh bool) {
	return g.internSig(keySig(key), key)
}

func (g *oracleTable) internSig(sig uint64, key []int32) (gid int32, fresh bool) {
	if first, ok := g.table[sig]; ok {
		if g.exact {
			return first, false
		}
		for id := first; ; id = g.next[id] {
			if g.keyEqual(id, key) {
				return id, false
			}
			if g.next[id] < 0 {
				gid = g.add(key)
				g.next[id] = gid
				return gid, true
			}
		}
	}
	gid = g.add(key)
	g.table[sig] = gid
	return gid, true
}

func (g *oracleTable) lookup(key []int32) (int32, bool) {
	sig := keySig(key)
	first, ok := g.table[sig]
	if !ok {
		return 0, false
	}
	if g.exact {
		return first, true
	}
	for id := first; ; id = g.next[id] {
		if g.keyEqual(id, key) {
			return id, true
		}
		if g.next[id] < 0 {
			return 0, false
		}
	}
}

func (g *oracleTable) add(key []int32) int32 {
	id := int32(len(g.next))
	g.next = append(g.next, -1)
	if !g.exact {
		g.keys = append(g.keys, key...)
	}
	return id
}

func (g *oracleTable) keyEqual(id int32, key []int32) bool {
	base := int(id) * g.arity
	for i, v := range key {
		if g.keys[base+i] != v {
			return false
		}
	}
	return true
}

// idRowInto gathers row i's dense value ids into dst — the oracle's
// replacement for the row-major idRow view.
func (r *Result) idRowInto(i int, dst []int32) []int32 {
	dst = dst[:0]
	for _, c := range r.ids {
		dst = append(dst, c[i])
	}
	return dst
}

// oracleEvalNode is the old evalNode: one plan node through the
// row-at-a-time operators, recursing through Eval so children hit the
// caches.
func (e *Evaluator) oracleEvalNode(p plan.Node) *Result {
	var out *Result
	switch t := p.(type) {
	case *plan.Scan:
		out = e.oracleScan(t)
	case *plan.Project:
		out = oracleProject(e.Eval(t.Child), t.OnTo, e.ex())
	case *plan.Join:
		results := make([]*Result, len(t.Subs))
		for i, c := range t.Subs {
			results[i] = e.Eval(c)
		}
		if e.opts.CostBasedJoins {
			out = foldJoinCostBasedWith(results, e.ex(), oracleJoin)
		} else {
			out = foldJoinWith(results, e.ex(), oracleJoin)
		}
	case *plan.Min:
		out = e.Eval(t.Subs[0])
		for _, c := range t.Subs[1:] {
			out = oracleCombineMin(out, e.Eval(c), e.ex())
		}
	default:
		panic("engine: unknown plan node")
	}
	return out
}

// oracleScan is the old scan: per-row filter check and append-per-column
// emission, charging the budget one row at a time.
func (e *Evaluator) oracleScan(s *plan.Scan) *Result {
	rel, cols, pos := scanLayout(e.db, s)
	filter := newRowFilter(e.db, rel, s)
	out := newResult(cols)
	emit := func(i int) {
		e.cancel.check()
		row := rel.Row(i)
		if !filter.ok(row) {
			return
		}
		e.budget.charge(1)
		vrow := rel.vidRow(i)
		for k, j := range pos {
			out.vals[k] = append(out.vals[k], row[j])
			out.ids[k] = append(out.ids[k], vrow[j])
		}
		out.scores = append(out.scores, rel.Prob(i))
	}
	if e.reduced != nil {
		if idxs, ok := e.reduced[rel.Name]; ok {
			for _, i := range idxs {
				emit(int(i))
			}
			return out
		}
	}
	if cand, ok := rel.indexCandidates(e.db, s); ok {
		for _, i := range cand {
			emit(int(i))
		}
		return out
	}
	for i := 0; i < rel.Len(); i++ {
		emit(i)
	}
	return out
}

// oracleProject is the old morsel-chunked projection: per-chunk
// map-backed group tables with complement partials in row order, merged
// chunk-ascending, rows appended one at a time.
func oracleProject(in *Result, onto []cq.Var, ex *exec) *Result {
	keep := make([]int, len(onto))
	for i, v := range onto {
		keep[i] = colIndex(in.Cols, v)
	}
	ka := len(keep)
	n := in.Len()
	out := newResult(append([]cq.Var(nil), onto...))
	if n == 0 {
		return out
	}
	type chunkGroups struct {
		firstRow []int32 // local group id -> first input row of the group
		partial  []float64
	}
	nChunks := numChunks(n)
	locals := make([]chunkGroups, nChunks)
	if nChunks > 1 {
		ex.addPartitions(nChunks)
	}
	ex.forChunks(nChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, n)
		g := newOracleTable(ka, hi-lo)
		lg := &locals[ci]
		key := make([]int32, ka)
		for i := lo; i < hi; i++ {
			c.check()
			for k, j := range keep {
				key[k] = in.ids[j][i]
			}
			gid, fresh := g.intern(key)
			if fresh {
				ex.charge(1)
				lg.firstRow = append(lg.firstRow, int32(i))
				lg.partial = append(lg.partial, 1)
			}
			lg.partial[gid] *= 1 - in.scores[i]
		}
	})
	global := newOracleTable(ka, len(locals[0].firstRow))
	cc := ex.canc()
	key := make([]int32, ka)
	for ci := range locals {
		lg := &locals[ci]
		for li, ri := range lg.firstRow {
			cc.check()
			for k, j := range keep {
				key[k] = in.ids[j][ri]
			}
			gid, fresh := global.intern(key)
			if fresh {
				for k, j := range keep {
					out.vals[k] = append(out.vals[k], in.vals[j][ri])
					out.ids[k] = append(out.ids[k], in.ids[j][ri])
				}
				out.scores = append(out.scores, 1)
			}
			out.scores[gid] *= lg.partial[li]
		}
	}
	for i := range out.scores {
		out.scores[i] = 1 - out.scores[i]
	}
	return out
}

// oracleJoinTable is the old partitioned bucket-list join table: keys
// interned per partition via oracleTable, each key's build rows stored
// contiguously ascending.
type oracleJoinTable struct {
	mask  uint64
	parts []oracleJoinPartition
}

type oracleJoinPartition struct {
	g     *oracleTable
	start []int32 // gid -> offset into rows, len = groups+1
	rows  []int32 // build row ids grouped by key, ascending within key
}

func buildOracleJoinTable(build *Result, pos []int, ex *exec) *oracleJoinTable {
	n := build.Len()
	ka := len(pos)
	sigs := make([]uint64, n)
	nChunks := numChunks(n)
	if nChunks > 1 {
		ex.addPartitions(nChunks)
	}
	ex.forChunks(nChunks, func(ci int, c *canceller) {
		key := make([]int32, ka)
		lo, hi := chunkBounds(ci, n)
		for i := lo; i < hi; i++ {
			c.check()
			for k, j := range pos {
				key[k] = build.ids[j][i]
			}
			sigs[i] = keySig(key)
		}
	})
	p := 1
	if n >= morselSize {
		p = joinPartitions
	}
	jt := &oracleJoinTable{mask: uint64(p - 1), parts: make([]oracleJoinPartition, p)}
	offs := make([]int32, p+1)
	prows := make([]int32, n)
	if p == 1 {
		offs[1] = int32(n)
		for i := range prows {
			prows[i] = int32(i)
		}
	} else {
		counts := make([]int32, p)
		for i := 0; i < n; i++ {
			counts[mix64(sigs[i])&jt.mask]++
		}
		for i := 0; i < p; i++ {
			offs[i+1] = offs[i] + counts[i]
		}
		cursor := append([]int32(nil), offs[:p]...)
		for i := 0; i < n; i++ {
			pi := mix64(sigs[i]) & jt.mask
			prows[cursor[pi]] = int32(i)
			cursor[pi]++
		}
		ex.addPartitions(p)
	}
	ex.forChunks(p, func(pi int, c *canceller) {
		rows := prows[offs[pi]:offs[pi+1]]
		part := &jt.parts[pi]
		part.g = newOracleTable(ka, len(rows))
		gids := make([]int32, len(rows))
		key := make([]int32, ka)
		for k, ri := range rows {
			c.check()
			for x, j := range pos {
				key[x] = build.ids[j][ri]
			}
			gid, _ := part.g.internSig(sigs[ri], key)
			gids[k] = gid
		}
		ng := part.g.size()
		cnt := make([]int32, ng)
		for _, gid := range gids {
			cnt[gid]++
		}
		part.start = make([]int32, ng+1)
		for i := 0; i < ng; i++ {
			part.start[i+1] = part.start[i] + cnt[i]
		}
		cur := append([]int32(nil), part.start[:ng]...)
		part.rows = make([]int32, len(rows))
		for k, ri := range rows {
			part.rows[cur[gids[k]]] = ri
			cur[gids[k]]++
		}
	})
	return jt
}

func (jt *oracleJoinTable) lookup(sig uint64, key []int32) []int32 {
	part := &jt.parts[mix64(sig)&jt.mask]
	gid, ok := part.g.lookupSig(sig, key)
	if !ok {
		return nil
	}
	return part.rows[part.start[gid]:part.start[gid+1]]
}

func (g *oracleTable) lookupSig(sig uint64, key []int32) (int32, bool) {
	first, ok := g.table[sig]
	if !ok {
		return 0, false
	}
	if g.exact {
		return first, true
	}
	for id := first; ; id = g.next[id] {
		if g.keyEqual(id, key) {
			return id, true
		}
		if g.next[id] < 0 {
			return 0, false
		}
	}
}

// oracleJoin is the old natural join: per-chunk probe with one output
// value appended at a time, chunks concatenated ascending.
func oracleJoin(l, r *Result, ex *exec) *Result {
	_, lPos, rPos := sharedCols(l.Cols, r.Cols)
	colSet := cq.NewVarSet(l.Cols...)
	for _, c := range r.Cols {
		colSet.Add(c)
	}
	outCols := colSet.Sorted()
	type src struct {
		left bool
		pos  int
	}
	srcs := make([]src, len(outCols))
	for i, c := range outCols {
		if j := colIndex(l.Cols, c); j >= 0 {
			srcs[i] = src{true, j}
		} else {
			srcs[i] = src{false, colIndex(r.Cols, c)}
		}
	}
	out := newResult(outCols)
	build, probe := r, l
	buildPos, probePos := rPos, lPos
	buildLeft := false
	if l.Len() < r.Len() {
		build, probe = l, r
		buildPos, probePos = lPos, rPos
		buildLeft = true
	}
	jt := buildOracleJoinTable(build, buildPos, ex)
	np := probe.Len()
	pChunks := numChunks(np)
	type chunkBuf struct {
		vals   [][]Value
		ids    [][]int32
		scores []float64
	}
	bufs := make([]chunkBuf, pChunks)
	if pChunks > 1 {
		ex.addPartitions(pChunks)
	}
	ex.forChunks(pChunks, func(ci int, c *canceller) {
		lo, hi := chunkBounds(ci, np)
		b := &bufs[ci]
		b.vals = make([][]Value, len(outCols))
		b.ids = make([][]int32, len(outCols))
		key := make([]int32, len(probePos))
		for i := lo; i < hi; i++ {
			c.check()
			for k, j := range probePos {
				key[k] = probe.ids[j][i]
			}
			for _, bi := range jt.lookup(keySig(key), key) {
				c.check()
				var lres, rres *Result
				var li, ri int
				var ls, rs float64
				if buildLeft {
					lres, li = build, int(bi)
					rres, ri = probe, i
					ls, rs = build.scores[bi], probe.scores[i]
				} else {
					lres, li = probe, i
					rres, ri = build, int(bi)
					ls, rs = probe.scores[i], build.scores[bi]
				}
				for k, s := range srcs {
					if s.left {
						b.vals[k] = append(b.vals[k], lres.vals[s.pos][li])
						b.ids[k] = append(b.ids[k], lres.ids[s.pos][li])
					} else {
						b.vals[k] = append(b.vals[k], rres.vals[s.pos][ri])
						b.ids[k] = append(b.ids[k], rres.ids[s.pos][ri])
					}
				}
				b.scores = append(b.scores, ls*rs)
				ex.charge(1)
			}
		}
	})
	if pChunks == 1 {
		out.vals, out.ids, out.scores = bufs[0].vals, bufs[0].ids, bufs[0].scores
		if out.vals == nil {
			out.vals = make([][]Value, len(outCols))
			out.ids = make([][]int32, len(outCols))
		}
		return out
	}
	total := 0
	for i := range bufs {
		total += len(bufs[i].scores)
	}
	out.scores = make([]float64, 0, total)
	for k := range outCols {
		out.vals[k] = make([]Value, 0, total)
		out.ids[k] = make([]int32, 0, total)
	}
	for i := range bufs {
		for k := range outCols {
			out.vals[k] = append(out.vals[k], bufs[i].vals[k]...)
			out.ids[k] = append(out.ids[k], bufs[i].ids[k]...)
		}
		out.scores = append(out.scores, bufs[i].scores...)
	}
	return out
}

// oracleCombineMin is the old per-tuple minimum merge.
func oracleCombineMin(a, b *Result, ex *exec) *Result {
	if !varsSliceEqual(a.Cols, b.Cols) {
		panic("engine: min over different columns")
	}
	cc := ex.canc()
	g := newOracleTable(len(a.Cols), a.Len())
	rowOf := make([]int32, 0, a.Len())
	out := newResult(a.Cols)
	for k := range a.vals {
		out.vals[k] = append([]Value(nil), a.vals[k]...)
		out.ids[k] = append([]int32(nil), a.ids[k]...)
	}
	out.scores = append([]float64(nil), a.scores...)
	key := make([]int32, 0, len(a.Cols))
	for i := 0; i < a.Len(); i++ {
		cc.check()
		key = a.idRowInto(i, key)
		gid, fresh := g.intern(key)
		if fresh {
			rowOf = append(rowOf, int32(i))
		} else {
			rowOf[gid] = int32(i) // duplicate key in a: last wins, as before
		}
	}
	for i := 0; i < b.Len(); i++ {
		cc.check()
		key = b.idRowInto(i, key)
		if gid, ok := g.lookup(key); ok {
			j := rowOf[gid]
			out.scores[j] = math.Min(out.scores[j], b.scores[i])
		} else {
			ex.charge(1)
			for k := range out.vals {
				out.vals[k] = append(out.vals[k], b.vals[k][i])
				out.ids[k] = append(out.ids[k], b.ids[k][i])
			}
			out.scores = append(out.scores, b.scores[i])
		}
	}
	return out
}
