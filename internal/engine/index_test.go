package engine

import (
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// indexedDB builds a relation with both index kinds declared.
func indexedDB(t *testing.T, n int) *DB {
	t.Helper()
	db := NewDB()
	s := db.CreateRelation("S", []string{"id", "tag"})
	rng := rand.New(rand.NewSource(71))
	for i := 0; i < n; i++ {
		s.Insert([]Value{Value(i), Value(rng.Intn(10))}, rng.Float64())
	}
	if err := s.CreateIndex("tag"); err != nil {
		t.Fatal(err)
	}
	if err := s.CreateRangeIndex("id"); err != nil {
		t.Fatal(err)
	}
	return db
}

func evalQuery(db *DB, qs string) *Result {
	q := cq.MustParse(qs)
	return EvalPlans(db, q, core.MinimalPlans(q, nil), Options{})
}

func TestIndexedScansMatchFullScans(t *testing.T) {
	db := indexedDB(t, 500)
	plain := NewDB()
	p := plain.CreateRelation("S", []string{"id", "tag"})
	src := db.Relation("S")
	for i := 0; i < src.Len(); i++ {
		p.Insert(append([]Value(nil), src.Row(i)...), src.Prob(i))
	}
	queries := []string{
		"q(id) :- S(id, tag), tag = 3",
		"q(id) :- S(id, tag), id <= 100",
		"q(id) :- S(id, tag), id < 100",
		"q(id) :- S(id, tag), id >= 450",
		"q(id) :- S(id, tag), id > 450",
		"q(id) :- S(id, tag), id <= 100, tag = 3",
		"q(tag) :- S(id, tag), id <= 0",
	}
	for _, qs := range queries {
		a := evalQuery(db, qs)
		b := evalQuery(plain, qs)
		if a.Len() != b.Len() {
			t.Fatalf("%s: %d vs %d rows", qs, a.Len(), b.Len())
		}
		for i := 0; i < a.Len(); i++ {
			got, ok := b.ScoreOf(a.Row(i))
			if !ok || math.Abs(got-a.Score(i)) > 1e-12 {
				t.Errorf("%s: row %d mismatch", qs, i)
			}
		}
	}
}

func TestIndexConstantsInAtoms(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("R", []string{"k", "v"})
	a := db.Intern("a")
	b := db.Intern("b")
	r.Insert([]Value{a, 1}, 0.5)
	r.Insert([]Value{b, 2}, 0.5)
	r.Insert([]Value{a, 3}, 0.5)
	if err := r.CreateIndex("k"); err != nil {
		t.Fatal(err)
	}
	res := evalQuery(db, "q(v) :- R('a', v)")
	if res.Len() != 2 {
		t.Errorf("rows = %d, want 2", res.Len())
	}
}

func TestIndexInvalidatedByInsert(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("R", []string{"x"})
	r.CreateIndex("x")
	r.Insert([]Value{1}, 0.5)
	if res := evalQuery(db, "q() :- R(x), x = 1"); res.BooleanScore() != 0.5 {
		t.Fatalf("before insert: %v", res.BooleanScore())
	}
	// Insert after the index was built: the lazy rebuild must pick it up.
	r.Insert([]Value{1}, 0.4)
	res := evalQuery(db, "q() :- R(x), x = 1")
	want := 1 - 0.5*0.6
	if math.Abs(res.BooleanScore()-want) > 1e-12 {
		t.Errorf("after insert: %v, want %v", res.BooleanScore(), want)
	}
}

func TestIndexErrors(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("R", []string{"x"})
	if err := r.CreateIndex("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	if err := r.CreateRangeIndex("nope"); err == nil {
		t.Error("unknown column should fail")
	}
	// Idempotent declarations.
	if err := r.CreateIndex("x"); err != nil {
		t.Fatal(err)
	}
	if err := r.CreateIndex("x"); err != nil {
		t.Fatal(err)
	}
}

func TestRangeIndexSkipsStrings(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("R", []string{"x"})
	r.CreateRangeIndex("x")
	r.Insert([]Value{db.Intern("str")}, 0.5)
	r.Insert([]Value{5}, 0.5)
	r.Insert([]Value{15}, 0.5)
	// Range predicates only match numeric values; the string tuple never
	// qualifies, with or without the index.
	res := evalQuery(db, "q(x) :- R(x), x <= 10")
	if res.Len() != 1 {
		t.Errorf("rows = %d, want 1 (only the numeric 5)", res.Len())
	}
}

func BenchmarkIndexedThresholdScan(b *testing.B) {
	db := NewDB()
	s := db.CreateRelation("S", []string{"id", "tag"})
	rng := rand.New(rand.NewSource(72))
	for i := 0; i < 200000; i++ {
		s.Insert([]Value{Value(i), Value(rng.Intn(100))}, rng.Float64())
	}
	q := cq.MustParse("q(tag) :- S(id, tag), id <= 100")
	plans := core.MinimalPlans(q, nil)
	b.Run("full-scan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvalPlans(db, q, plans, Options{})
		}
	})
	s.CreateRangeIndex("id")
	b.Run("range-index", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EvalPlans(db, q, plans, Options{})
		}
	})
}
