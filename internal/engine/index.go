package engine

import (
	"fmt"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Secondary indexes. A hash index accelerates scans with equality
// selections (constants in atoms, = predicates); a range index — a
// permutation of row ids sorted by the column — accelerates the
// paper's TPC-H-style threshold predicates (s <= $1). Indexes are
// declared per column, built lazily on first use, and invalidated by
// inserts.

type hashIndex struct {
	builtAt int // relation Len() when built
	rows    map[Value][]int32
}

type rangeIndex struct {
	builtAt int
	perm    []int32 // row ids sorted by ascending column value
}

// CreateIndex declares a hash index on the named column. The index is
// built lazily at scan time.
func (r *Relation) CreateIndex(col string) error {
	i := r.colIndex(col)
	if i < 0 {
		return fmt.Errorf("engine: relation %s has no column %s", r.Name, col)
	}
	if r.hashIdx == nil {
		r.hashIdx = map[int]*hashIndex{}
	}
	if _, ok := r.hashIdx[i]; !ok {
		r.hashIdx[i] = &hashIndex{builtAt: -1}
	}
	return nil
}

// CreateRangeIndex declares a range (sorted) index on the named column,
// used by <, <=, >, >= predicates over numeric values.
func (r *Relation) CreateRangeIndex(col string) error {
	i := r.colIndex(col)
	if i < 0 {
		return fmt.Errorf("engine: relation %s has no column %s", r.Name, col)
	}
	if r.rangeIdx == nil {
		r.rangeIdx = map[int]*rangeIndex{}
	}
	if _, ok := r.rangeIdx[i]; !ok {
		r.rangeIdx[i] = &rangeIndex{builtAt: -1}
	}
	return nil
}

func (r *Relation) hashLookup(col int, v Value) ([]int32, bool) {
	idx, ok := r.hashIdx[col]
	if !ok {
		return nil, false
	}
	// Parallel evaluation may scan the same relation from several
	// goroutines; serialize the lazy build (and the builtAt check).
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if idx.builtAt != r.Len() {
		idx.rows = make(map[Value][]int32, r.Len())
		for i := 0; i < r.Len(); i++ {
			val := r.Row(i)[col]
			idx.rows[val] = append(idx.rows[val], int32(i))
		}
		idx.builtAt = r.Len()
	}
	return idx.rows[v], true
}

// rangeLookup returns the row ids whose column value satisfies op
// against bound, using the sorted permutation. Only numeric (>= 0)
// values participate in range comparisons, matching compiledPred.
func (r *Relation) rangeLookup(col int, op cq.CompareOp, bound Value) ([]int32, bool) {
	idx, ok := r.rangeIdx[col]
	if !ok {
		return nil, false
	}
	if bound < 0 {
		return nil, false // non-numeric bound: fall back to full scan
	}
	r.idxMu.Lock()
	defer r.idxMu.Unlock()
	if idx.builtAt != r.Len() {
		idx.perm = make([]int32, r.Len())
		for i := range idx.perm {
			idx.perm[i] = int32(i)
		}
		sort.Slice(idx.perm, func(a, b int) bool {
			return r.Row(int(idx.perm[a]))[col] < r.Row(int(idx.perm[b]))[col]
		})
		idx.builtAt = r.Len()
	}
	perm := idx.perm
	val := func(k int) Value { return r.Row(int(perm[k]))[col] }
	// Negative (interned string) values sort first; numeric comparisons
	// only apply to values >= 0, so locate the first non-negative entry.
	lo := sort.Search(len(perm), func(k int) bool { return val(k) >= 0 })
	switch op {
	case cq.OpLE:
		hi := sort.Search(len(perm), func(k int) bool { return val(k) > bound })
		return perm[lo:hi], true
	case cq.OpLT:
		hi := sort.Search(len(perm), func(k int) bool { return val(k) >= bound })
		return perm[lo:hi], true
	case cq.OpGE:
		start := sort.Search(len(perm), func(k int) bool { return val(k) >= bound })
		if start < lo {
			start = lo
		}
		return perm[start:], true
	case cq.OpGT:
		start := sort.Search(len(perm), func(k int) bool { return val(k) > bound })
		if start < lo {
			start = lo
		}
		return perm[start:], true
	default:
		return nil, false
	}
}

// indexCandidates inspects a scan's filters and returns the smallest
// index-provided candidate row set, or (nil, false) when no declared
// index applies.
func (r *Relation) indexCandidates(db *DB, s *plan.Scan) ([]int32, bool) {
	if r.hashIdx == nil && r.rangeIdx == nil {
		return nil, false
	}
	var best []int32
	found := false
	consider := func(rows []int32, ok bool) {
		if ok && (!found || len(rows) < len(best)) {
			best = rows
			found = true
		}
	}
	// Constants in atom argument positions.
	for j, t := range s.Atom.Args {
		if !t.IsVar() {
			consider(r.hashLookup(j, db.lookupConst(t.Const)))
		}
	}
	// Predicates bound to argument positions.
	varPos := map[cq.Var]int{}
	for j, t := range s.Atom.Args {
		if t.IsVar() {
			if _, ok := varPos[t.Var]; !ok {
				varPos[t.Var] = j
			}
		}
	}
	for _, p := range s.Preds {
		j, ok := varPos[p.Var]
		if !ok {
			continue
		}
		switch p.Op {
		case cq.OpEQ:
			consider(r.hashLookup(j, db.lookupConst(p.Const)))
		case cq.OpLE, cq.OpLT, cq.OpGE, cq.OpGT:
			consider(r.rangeLookup(j, p.Op, db.lookupConst(p.Const)))
		}
	}
	return best, found
}
