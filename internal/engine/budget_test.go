package engine

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// budgetDB builds a database whose join q :- R(x), S(x, y) materializes
// n·m intermediate rows from n + m inputs.
func budgetDB(n, m int) *DB {
	db := NewDB()
	R := db.CreateRelation("R", []string{"a"})
	S := db.CreateRelation("S", []string{"a", "b"})
	for i := 0; i < n; i++ {
		R.Insert([]Value{1}, 0.5)
	}
	for j := 0; j < m; j++ {
		S.Insert([]Value{1, Value(j + 2)}, 0.5)
	}
	return db
}

func evalWithBudget(db *DB, maxRows, workers int) error {
	q := cq.MustParse("q() :- R(x), S(x, y)")
	plans := core.MinimalPlans(q, nil)
	return TrapCancel(func() {
		EvalPlansCtx(nil, db, q, plans, Options{
			MaxIntermediateRows: maxRows,
			Workers:             workers,
		})
	})
}

func TestBudgetExceededIsTyped(t *testing.T) {
	// The safe plan π{}(R ⋈ π{x}S) materializes ~302 rows here (two
	// 100-row scans plus the join); a 150-row cap must abort it.
	db := budgetDB(100, 100)
	err := evalWithBudget(db, 150, 1)
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

func TestBudgetExceededParallel(t *testing.T) {
	// The budget counter is shared across morsel helpers; the typed
	// error must surface through forChunks' helper drain. Drive project
	// directly with a pooled exec so the input spans several morsels and
	// every fresh group charges from a helper goroutine.
	n := 3 * morselSize
	in := newResult([]cq.Var{"x"})
	for i := 0; i < n; i++ {
		in.vals[0] = append(in.vals[0], Value(i))
		in.ids[0] = append(in.ids[0], int32(i))
		in.scores = append(in.scores, 0.5)
	}
	ex := &exec{
		c:      &canceller{},
		pool:   newPool(context.Background(), 4),
		budget: newRowBudget(n / 2),
	}
	err := TrapCancel(func() { project(in, []cq.Var{"x"}, ex) })
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
}

// TestBudgetBatchChargingParity is the accounting property behind the
// 422 contract: the columnar executor charges MaxIntermediateRows in
// per-batch increments (one charge per scan selection, probe chunk, or
// projection chunk), but its charge totals equal the oracle's per-tuple
// totals exactly — so for every workload the minimal budget that
// evaluates without ErrBudget is identical in both executors (stronger
// than the ±1-morsel tolerance the batching would naively allow,
// because tripping depends only on the shared running total).
func TestBudgetBatchChargingParity(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	minBudget := func(db *DB, q *cq.Query, plans []plan.Node, oracle bool) int {
		eval := func(limit int) bool {
			err := TrapCancel(func() {
				EvalPlansCtx(nil, db, q, plans, Options{
					MaxIntermediateRows: limit,
					Workers:             1,
					Oracle:              oracle,
				})
			})
			if err != nil && !errors.Is(err, ErrBudget) {
				t.Fatalf("unexpected error at limit %d: %v", limit, err)
			}
			return err == nil
		}
		lo, hi := 0, 1<<22 // lo always trips (limit>0 semantics aside), hi always passes
		if !eval(hi) {
			t.Fatalf("budget %d still trips", hi)
		}
		for lo+1 < hi {
			mid := lo + (hi-lo)/2
			if mid == 0 {
				lo = 0
				continue
			}
			if eval(mid) {
				hi = mid
			} else {
				lo = mid
			}
		}
		return hi
	}
	for iter := 0; iter < 10; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 200, 1.0, rng)
		plans := core.MinimalPlans(q, nil)
		got := minBudget(db, q, plans, false)
		want := minBudget(db, q, plans, true)
		if got != want {
			t.Errorf("%s: minimal passing budget %d (batched) != %d (per-tuple)", qs, got, want)
		}
	}
}

func TestBudgetDisabledByDefault(t *testing.T) {
	db := budgetDB(50, 50)
	if err := evalWithBudget(db, 0, 1); err != nil {
		t.Fatalf("unbudgeted evaluation failed: %v", err)
	}
}

func TestBudgetUnderLimitSucceedsAndMatches(t *testing.T) {
	db := budgetDB(10, 10)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	plans := core.MinimalPlans(q, nil)
	free := EvalPlans(db, q, plans, Options{})
	var capped *Result
	err := TrapCancel(func() {
		capped = EvalPlansCtx(nil, db, q, plans, Options{MaxIntermediateRows: 1 << 20})
	})
	if err != nil {
		t.Fatalf("budgeted evaluation failed: %v", err)
	}
	if free.BooleanScore() != capped.BooleanScore() {
		t.Fatalf("budget changed the score: %v vs %v", capped.BooleanScore(), free.BooleanScore())
	}
}

func TestBudgetSpansAllPlans(t *testing.T) {
	// One evaluation of the plan materializes ~302 rows — under a
	// 450-row cap. Evaluating the same plan twice through EvalPlansCtx
	// must fail: the budget bounds the query, not each plan.
	db := budgetDB(100, 100)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 1 {
		t.Fatalf("plans = %d, want 1", len(plans))
	}
	double := []plan.Node{plans[0], plans[0]}
	err := TrapCancel(func() {
		EvalPlansCtx(nil, db, q, double, Options{MaxIntermediateRows: 450})
	})
	if !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget across plans, got %v", err)
	}
	// Sanity: one plan alone fits the same cap.
	err = TrapCancel(func() {
		EvalPlansCtx(nil, db, q, plans, Options{MaxIntermediateRows: 450})
	})
	if err != nil {
		t.Fatalf("single plan under the same cap failed: %v", err)
	}
}

func TestBudgetErrorMentionsLimit(t *testing.T) {
	db := budgetDB(100, 100)
	err := evalWithBudget(db, 42, 1)
	if err == nil || !errors.Is(err, ErrBudget) {
		t.Fatalf("want ErrBudget, got %v", err)
	}
	if want := fmt.Sprintf("limit %d", 42); !containsStr(err.Error(), want) {
		t.Fatalf("error %q does not mention %q", err, want)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
