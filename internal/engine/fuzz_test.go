package engine

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// encodeResult serializes a Result — columns, rows in order, and the
// raw float64 bits of every score — so two results are byte-identical
// iff they satisfy the executor bit-identity contract.
func encodeResult(r *Result) []byte {
	buf := make([]byte, 0, 64+r.Len()*16)
	for _, c := range r.Cols {
		buf = append(buf, c...)
		buf = append(buf, 0)
	}
	for i := 0; i < r.Len(); i++ {
		for _, v := range r.Row(i) {
			buf = appendValue(buf, v)
		}
		bits := math.Float64bits(r.Score(i))
		for s := 0; s < 64; s += 8 {
			buf = append(buf, byte(bits>>s))
		}
	}
	return buf
}

// likeOracle is a naive byte-wise recursive LIKE matcher — exponential
// but obviously correct, the reference implementation for the fuzzer.
func likeOracle(pattern, s string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		return likeOracle(pattern[1:], s) || (s != "" && likeOracle(pattern, s[1:]))
	case '_':
		return s != "" && likeOracle(pattern[1:], s[1:])
	default:
		return s != "" && s[0] == pattern[0] && likeOracle(pattern[1:], s[1:])
	}
}

// FuzzLikeMatch compares the hand-rolled matcher against the regexp
// oracle on arbitrary pattern/string pairs.
func FuzzLikeMatch(f *testing.F) {
	seeds := [][2]string{
		{"%red%", "dark red metallic"},
		{"%red%green%", "red green"},
		{"a_c", "abc"},
		{"%", ""},
		{"", ""},
		{"%%a%%", "bab"},
		{"_%_", "xy"},
		{"%aa%", "aXa"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			return // keep the backtracking oracle cheap
		}
		got := LikeMatch(pattern, s)
		want := likeOracle(pattern, s)
		if got != want {
			t.Fatalf("LikeMatch(%q, %q) = %v, oracle = %v", pattern, s, got, want)
		}
	})
}

// FuzzMorselDifferential fuzzes the executors against each other: for
// any parseable query and any random instance, every Workers setting
// must produce the same rows in the same order with bit-identical
// scores, the columnar streaming executor must byte-identically match
// the retained row-at-a-time oracle, and both executors must fail with
// the same typed error (ErrBudget, context cancellation) on the same
// inputs.
func FuzzMorselDifferential(f *testing.F) {
	type seed struct {
		query   string
		seed    int64
		rows    uint16
		workers uint8
	}
	seeds := []seed{
		{"q() :- R1(x0, x1), R2(x1, x2), R3(x2, x3)", 1, 200, 4}, // unsafe 3-chain (paper Fig. 2)
		{"q(z) :- R(z, x), S(x, y), T(y)", 2, 150, 2},
		{"q() :- R(x), S(y), T(x, y)", 3, 100, 8}, // unsafe 2-star
		{"q(w) :- R(w, x), S(x), T(x, y), U(y)", 4, 120, 3},
		{"q() :- R(x), S(x, y)", 5, 80, 2},        // safe: exact either way
		{"q() :- R(x), S(x), T(x, y), U(y)", 6, 300, 4},
		{"q(x1) :- R0(x1, x2, x3), R1(x1), R2(x2), R3(x3)", 7, 250, 5}, // 3-star with head var
		{"q() :- A(x), B(y), M(x, y)", 8, 400, 2},
	}
	for _, s := range seeds {
		f.Add(s.query, s.seed, s.rows, s.workers)
	}
	f.Fuzz(func(t *testing.T, query string, seed int64, rows uint16, workers uint8) {
		q, err := cq.Parse(query)
		if err != nil {
			return
		}
		if len(q.Atoms) > 4 || len(q.EVars()) > 6 {
			return // keep plan enumeration bounded
		}
		names := map[string]bool{}
		for _, a := range q.Atoms {
			if len(a.Args) > 3 || names[a.Rel] {
				return // randomDB cannot build self-joins or wide relations
			}
			names[a.Rel] = true
		}
		plans := core.MinimalPlans(q, nil)
		if len(plans) == 0 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(q, 16, int(rows%512)+1, 0.9, rng)
		for _, opts := range []Options{{}, {ReuseSubplans: true, SemiJoin: true}} {
			opts.Workers = 1
			ref := EvalPlans(db, q, plans, opts)
			refEnc := encodeResult(ref)
			// Parallel vs sequential, same executor.
			opts.Workers = int(workers%8) + 2
			got := EvalPlans(db, q, plans, opts)
			if string(encodeResult(got)) != string(refEnc) {
				t.Fatalf("workers=%d: parallel encoding differs from sequential", opts.Workers)
			}
			// Columnar executor vs the row-at-a-time oracle, both Workers
			// settings: byte-identical encodings.
			for _, w := range []int{1, opts.Workers} {
				orcOpts := opts
				orcOpts.Workers = w
				orcOpts.Oracle = true
				orc := EvalPlans(db, q, plans, orcOpts)
				if string(encodeResult(orc)) != string(refEnc) {
					t.Fatalf("oracle workers=%d: encoding differs from executor", w)
				}
			}
			// Typed-error parity under a row budget: both executors charge
			// identical totals, so they must trip (or not) together, with
			// the same typed error.
			budget := int(rows%64) + 1
			bOpts := opts
			bOpts.Workers = 1
			bOpts.MaxIntermediateRows = budget
			errNew := TrapCancel(func() { EvalPlansCtx(nil, db, q, plans, bOpts) })
			bOpts.Oracle = true
			errOrc := TrapCancel(func() { EvalPlansCtx(nil, db, q, plans, bOpts) })
			if errors.Is(errNew, ErrBudget) != errors.Is(errOrc, ErrBudget) || (errNew == nil) != (errOrc == nil) {
				t.Fatalf("budget=%d: executor err %v, oracle err %v", budget, errNew, errOrc)
			}
			// Typed-error parity under cancellation: a pre-cancelled context
			// fails both executors with context.Canceled.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			cOpts := opts
			cOpts.Workers = 1
			errNew = TrapCancel(func() { EvalPlansCtx(ctx, db, q, plans, cOpts) })
			cOpts.Oracle = true
			errOrc = TrapCancel(func() { EvalPlansCtx(ctx, db, q, plans, cOpts) })
			if !errors.Is(errNew, context.Canceled) || !errors.Is(errOrc, context.Canceled) {
				t.Fatalf("cancelled ctx: executor err %v, oracle err %v", errNew, errOrc)
			}
		}
	})
}
