package engine

import (
	"testing"
)

// likeOracle is a naive byte-wise recursive LIKE matcher — exponential
// but obviously correct, the reference implementation for the fuzzer.
func likeOracle(pattern, s string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		return likeOracle(pattern[1:], s) || (s != "" && likeOracle(pattern, s[1:]))
	case '_':
		return s != "" && likeOracle(pattern[1:], s[1:])
	default:
		return s != "" && s[0] == pattern[0] && likeOracle(pattern[1:], s[1:])
	}
}

// FuzzLikeMatch compares the hand-rolled matcher against the regexp
// oracle on arbitrary pattern/string pairs.
func FuzzLikeMatch(f *testing.F) {
	seeds := [][2]string{
		{"%red%", "dark red metallic"},
		{"%red%green%", "red green"},
		{"a_c", "abc"},
		{"%", ""},
		{"", ""},
		{"%%a%%", "bab"},
		{"_%_", "xy"},
		{"%aa%", "aXa"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			return // keep the backtracking oracle cheap
		}
		got := LikeMatch(pattern, s)
		want := likeOracle(pattern, s)
		if got != want {
			t.Fatalf("LikeMatch(%q, %q) = %v, oracle = %v", pattern, s, got, want)
		}
	})
}
