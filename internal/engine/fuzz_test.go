package engine

import (
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// likeOracle is a naive byte-wise recursive LIKE matcher — exponential
// but obviously correct, the reference implementation for the fuzzer.
func likeOracle(pattern, s string) bool {
	if pattern == "" {
		return s == ""
	}
	switch pattern[0] {
	case '%':
		return likeOracle(pattern[1:], s) || (s != "" && likeOracle(pattern, s[1:]))
	case '_':
		return s != "" && likeOracle(pattern[1:], s[1:])
	default:
		return s != "" && s[0] == pattern[0] && likeOracle(pattern[1:], s[1:])
	}
}

// FuzzLikeMatch compares the hand-rolled matcher against the regexp
// oracle on arbitrary pattern/string pairs.
func FuzzLikeMatch(f *testing.F) {
	seeds := [][2]string{
		{"%red%", "dark red metallic"},
		{"%red%green%", "red green"},
		{"a_c", "abc"},
		{"%", ""},
		{"", ""},
		{"%%a%%", "bab"},
		{"_%_", "xy"},
		{"%aa%", "aXa"},
	}
	for _, s := range seeds {
		f.Add(s[0], s[1])
	}
	f.Fuzz(func(t *testing.T, pattern, s string) {
		if len(pattern) > 64 || len(s) > 256 {
			return // keep the backtracking oracle cheap
		}
		got := LikeMatch(pattern, s)
		want := likeOracle(pattern, s)
		if got != want {
			t.Fatalf("LikeMatch(%q, %q) = %v, oracle = %v", pattern, s, got, want)
		}
	})
}

// FuzzMorselDifferential fuzzes the morsel-parallel evaluator against
// the sequential one: for any parseable query and any random instance,
// every Workers setting must produce the same rows in the same order
// with bit-identical scores.
func FuzzMorselDifferential(f *testing.F) {
	type seed struct {
		query   string
		seed    int64
		rows    uint16
		workers uint8
	}
	seeds := []seed{
		{"q() :- R1(x0, x1), R2(x1, x2), R3(x2, x3)", 1, 200, 4}, // unsafe 3-chain (paper Fig. 2)
		{"q(z) :- R(z, x), S(x, y), T(y)", 2, 150, 2},
		{"q() :- R(x), S(y), T(x, y)", 3, 100, 8}, // unsafe 2-star
		{"q(w) :- R(w, x), S(x), T(x, y), U(y)", 4, 120, 3},
		{"q() :- R(x), S(x, y)", 5, 80, 2}, // safe: exact either way
	}
	for _, s := range seeds {
		f.Add(s.query, s.seed, s.rows, s.workers)
	}
	f.Fuzz(func(t *testing.T, query string, seed int64, rows uint16, workers uint8) {
		q, err := cq.Parse(query)
		if err != nil {
			return
		}
		if len(q.Atoms) > 4 || len(q.EVars()) > 6 {
			return // keep plan enumeration bounded
		}
		names := map[string]bool{}
		for _, a := range q.Atoms {
			if len(a.Args) > 3 || names[a.Rel] {
				return // randomDB cannot build self-joins or wide relations
			}
			names[a.Rel] = true
		}
		plans := core.MinimalPlans(q, nil)
		if len(plans) == 0 {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		db := randomDB(q, 16, int(rows%512)+1, 0.9, rng)
		for _, opts := range []Options{{}, {ReuseSubplans: true, SemiJoin: true}} {
			opts.Workers = 1
			ref := EvalPlans(db, q, plans, opts)
			opts.Workers = int(workers%8) + 2
			got := EvalPlans(db, q, plans, opts)
			if ref.Len() != got.Len() {
				t.Fatalf("workers=%d: %d rows vs %d", opts.Workers, got.Len(), ref.Len())
			}
			for i := 0; i < ref.Len(); i++ {
				rr, gr := ref.Row(i), got.Row(i)
				for j := range rr {
					if rr[j] != gr[j] {
						t.Fatalf("workers=%d: row %d differs: %v vs %v", opts.Workers, i, gr, rr)
					}
				}
				if ref.Score(i) != got.Score(i) {
					t.Fatalf("workers=%d: row %d score %v != %v", opts.Workers, i, got.Score(i), ref.Score(i))
				}
			}
		}
	})
}
