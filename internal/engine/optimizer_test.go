package engine

import (
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 10; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 12, 1.0, rng)
		plans := core.MinimalPlans(q, nil)
		opts := Options{ReuseSubplans: true, SemiJoin: iter%2 == 0}
		seq := EvalPlans(db, q, plans, opts)
		par := EvalPlansParallel(db, q, plans, opts, 4)
		if seq.Len() != par.Len() {
			t.Fatalf("%s: answers %d vs %d", qs, seq.Len(), par.Len())
		}
		for i := 0; i < seq.Len(); i++ {
			got, ok := par.ScoreOf(seq.Row(i))
			if !ok || math.Abs(got-seq.Score(i)) > 1e-12 {
				t.Errorf("%s: answer %d: %v vs %v", qs, i, seq.Score(i), got)
			}
		}
	}
}

func TestParallelEdgeCases(t *testing.T) {
	q := cq.MustParse("q() :- R(x)")
	db := NewDB()
	db.CreateRelation("R", []string{"x"}).Insert([]Value{1}, 0.5)
	if got := EvalPlansParallel(db, q, nil, Options{}, 2).Len(); got != 0 {
		t.Errorf("empty plan list gave %d rows", got)
	}
	plans := core.MinimalPlans(q, nil)
	res := EvalPlansParallel(db, q, plans, Options{}, 0) // workers default
	if res.BooleanScore() != 0.5 {
		t.Errorf("score = %v", res.BooleanScore())
	}
}

func TestCostBasedJoinsMatchGreedy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 10; iter++ {
		qs := propQueries[iter%len(propQueries)]
		q := cq.MustParse(qs)
		db := randomDB(q, 4, 12, 1.0, rng)
		sp := core.SinglePlan(q, nil)
		greedy := NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp)
		costed := NewEvaluator(db, q, Options{ReuseSubplans: true, CostBasedJoins: true}).Eval(sp)
		if greedy.Len() != costed.Len() {
			t.Fatalf("%s: answers %d vs %d", qs, greedy.Len(), costed.Len())
		}
		for i := 0; i < greedy.Len(); i++ {
			got, ok := costed.ScoreOf(greedy.Row(i))
			if !ok || math.Abs(got-greedy.Score(i)) > 1e-12 {
				t.Errorf("%s: answer %d: %v vs %v", qs, i, greedy.Score(i), got)
			}
		}
	}
}

func TestEstimateJoin(t *testing.T) {
	a := columnStats{rows: 100, distinct: map[cq.Var]int{"x": 50}}
	b := columnStats{rows: 200, distinct: map[cq.Var]int{"x": 100, "y": 20}}
	est, out := estimateJoin(a, b, []cq.Var{"x"}, []cq.Var{"x", "y"})
	// |A|*|B| / max(V) = 100*200/100 = 200.
	if math.Abs(est-200) > 1e-9 {
		t.Errorf("estimate = %v, want 200", est)
	}
	if out.distinct["y"] != 20 {
		t.Errorf("output distinct y = %d", out.distinct["y"])
	}
	// No shared columns: cross product estimate.
	est, _ = estimateJoin(a, b, []cq.Var{"x"}, []cq.Var{"z"})
	if math.Abs(est-20000) > 1e-9 {
		t.Errorf("cross estimate = %v, want 20000", est)
	}
}

func TestCostBasedAvoidsCrossProduct(t *testing.T) {
	// Three inputs where the greedy smallest-first choice would be fine,
	// but verify the DP picks a connected order too: A(x) small, B(y)
	// small, C(x, y) big. Joining A with B first is a cross product; both
	// strategies must avoid materializing |A|*|B|*|C| intermediates. We
	// just verify correctness of the final scores here; the bench
	// measures the cost difference.
	db := NewDB()
	A := db.CreateRelation("A", []string{"x"})
	B := db.CreateRelation("B", []string{"y"})
	C := db.CreateRelation("C", []string{"x", "y"})
	for i := 0; i < 50; i++ {
		A.Insert([]Value{Value(i)}, 0.5)
		B.Insert([]Value{Value(i)}, 0.5)
	}
	for i := 0; i < 500; i++ {
		C.Insert([]Value{Value(i % 50), Value((i / 7) % 50)}, 0.5)
	}
	q := cq.MustParse("q() :- A(x), B(y), C(x, y)")
	sp := core.SinglePlan(q, nil)
	g := NewEvaluator(db, q, Options{}).Eval(sp).BooleanScore()
	c := NewEvaluator(db, q, Options{CostBasedJoins: true}).Eval(sp).BooleanScore()
	if math.Abs(g-c) > 1e-12 {
		t.Errorf("scores differ: %v vs %v", g, c)
	}
}
