package engine

import (
	"math"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// PlanCost returns a cheap static cost estimate for evaluating p over
// db, in estimated intermediate-row units — the same currency as the
// System R join estimate in optimizer.go, but computed without touching
// any tuples so it can rank a query's minimal plans before evaluating
// any of them. The anytime evaluator uses it to order plans cheapest
// first: every minimal plan's score is a valid upper bound, so starting
// with the cheapest one yields a usable interval as early as possible.
//
// The estimate recurses over the plan: scans cost the relation size
// discounted per constant binding and pushed-down predicate; joins take
// the System R form, dividing the size product by the largest input
// size once per shared variable; projections keep their input size
// (duplicate elimination only shrinks it); min nodes cost the sum of
// their branches. Only relative order matters — the absolute numbers
// are not row counts.
func PlanCost(db *DB, p plan.Node) float64 {
	cost, _, _ := planCost(db, p)
	return cost
}

// planCost returns (total cost, estimated output rows, output vars).
func planCost(db *DB, p plan.Node) (cost, rows float64, vars []cq.Var) {
	switch t := p.(type) {
	case *plan.Scan:
		n := 1.0
		if rel := db.Relation(t.Atom.Rel); rel != nil {
			n = float64(rel.Len())
		}
		seen := cq.VarSet{}
		for _, a := range t.Atom.Args {
			if !a.IsVar() {
				n *= 0.1 // constant binding
			} else if seen.Has(a.Var) {
				n *= 0.1 // repeated variable
			} else {
				seen.Add(a.Var)
			}
		}
		n *= math.Pow(0.5, float64(len(t.Preds)))
		if n < 1 {
			n = 1
		}
		return n, n, t.Head()
	case *plan.Project:
		c, r, _ := planCost(db, t.Child)
		if _, ok := t.Child.(*plan.Join); ok {
			// The fused streaming Project(Join) path (stream.go) never
			// materializes the join output: probe matches stream through
			// morsel-sized grouping windows. Charge the grouping pass but
			// not a second full materialization of the join output.
			return c + 0.25*r, r, t.OnTo
		}
		return c + r, r, t.OnTo
	case *plan.Join:
		c := 0.0
		r := 1.0
		have := cq.VarSet{}
		maxIn := 1.0
		for _, s := range t.Subs {
			sc, sr, sv := planCost(db, s)
			c += sc
			if sr > maxIn {
				maxIn = sr
			}
			r *= sr
			for _, v := range sv {
				if have.Has(v) {
					r /= maxIn // one System R division per shared variable
					if r < 1 {
						r = 1
					}
				} else {
					have.Add(v)
					vars = append(vars, v)
				}
			}
		}
		return c + r, r, vars
	case *plan.Min:
		c := 0.0
		r := 0.0
		for _, s := range t.Subs {
			sc, sr, sv := planCost(db, s)
			c += sc
			if sr > r {
				r = sr
			}
			vars = sv
		}
		return c, r, vars
	default:
		panic("engine: unknown plan node")
	}
}
