package engine

import (
	"bytes"
	"testing"
)

// saveBytes serializes the database; byte equality of two snapshots is
// the strongest available state-equality check (gob of the snapshot
// struct is deterministic: slices only, no maps).
func saveBytes(t *testing.T, db *DB) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := db.Save(&b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return b.Bytes()
}

func cowSeedDB() *DB {
	db := NewDB()
	r := db.CreateRelation("R", []string{"x", "y"})
	r.Insert([]Value{db.Intern("a"), db.Int(1)}, 0.5)
	r.Insert([]Value{db.Intern("b"), db.Int(2)}, 0.25)
	s := db.CreateDeterministicRelation("S", []string{"y"})
	s.Insert([]Value{db.Int(1)}, 1)
	return db
}

func TestCloneCOWEqualsParent(t *testing.T) {
	db := cowSeedDB()
	c := db.CloneCOW()
	if !bytes.Equal(saveBytes(t, db), saveBytes(t, c)) {
		t.Fatal("CloneCOW snapshot differs from parent")
	}
}

func TestCloneCOWMutationsDoNotLeakToParent(t *testing.T) {
	db := cowSeedDB()
	before := saveBytes(t, db)

	c := db.CloneCOW()
	r := c.Relation("R")
	// Every mutation class: in-place probability write, append with a
	// brand-new string (dictionary copy path), append with existing
	// values, delete, new relation, key change, scaling.
	r.SetProb(0, 0.9)
	r.Insert([]Value{c.Intern("fresh-string"), c.Int(7)}, 0.1)
	r.Insert([]Value{c.Intern("a"), c.Int(1)}, 0.2)
	r.DeleteRow(1)
	c.CreateRelation("T", []string{"z"}).Insert([]Value{c.Int(3)}, 0.3)
	r.SetKey("x")
	c.ScaleProbs(0.5)

	if got := saveBytes(t, db); !bytes.Equal(before, got) {
		t.Fatal("mutating a CloneCOW copy changed the parent snapshot")
	}
	if db.Relation("T") != nil {
		t.Fatal("relation created on clone visible in parent")
	}
	if db.Relation("R").Prob(0) != 0.5 {
		t.Fatalf("parent probability changed: %v", db.Relation("R").Prob(0))
	}
	if len(db.Relation("R").Key) != 0 {
		t.Fatal("SetKey on clone changed parent key")
	}
	if _, ok := db.strIDs["fresh-string"]; ok {
		t.Fatal("clone intern leaked into parent dictionary")
	}
}

func TestCloneCOWChain(t *testing.T) {
	// A chain of versions, each mutating its predecessor: every earlier
	// version must stay byte-stable.
	v0 := cowSeedDB()
	snaps := [][]byte{saveBytes(t, v0)}
	cur := v0
	versions := []*DB{v0}
	for i := 0; i < 5; i++ {
		next := cur.CloneCOW()
		r := next.Relation("R")
		r.SetProb(0, float64(i+1)/10)
		r.Insert([]Value{next.Intern("v"), next.Int(int64(100 + i))}, 0.5)
		if i%2 == 1 {
			r.DeleteRow(r.Len() - 1)
		}
		snaps = append(snaps, saveBytes(t, next))
		versions = append(versions, next)
		cur = next
	}
	for i, v := range versions {
		if !bytes.Equal(snaps[i], saveBytes(t, v)) {
			t.Fatalf("version %d snapshot changed after later mutations", i)
		}
	}
}

func TestCloneCOWCarriesIndexDeclarations(t *testing.T) {
	db := cowSeedDB()
	if err := db.Relation("R").CreateIndex("x"); err != nil {
		t.Fatal(err)
	}
	if err := db.Relation("R").CreateRangeIndex("y"); err != nil {
		t.Fatal(err)
	}
	c := db.CloneCOW()
	cr := c.Relation("R")
	if rows, ok := cr.hashLookup(0, c.lookupConst("a")); !ok || len(rows) != 1 {
		t.Fatalf("clone hash index lookup = %v, %v", rows, ok)
	}
	// Built state must not be shared: the parent builds independently.
	if rows, ok := db.Relation("R").hashLookup(0, db.lookupConst("b")); !ok || len(rows) != 1 {
		t.Fatalf("parent hash index lookup = %v, %v", rows, ok)
	}
}

func TestFindRowAndDeleteRow(t *testing.T) {
	db := cowSeedDB()
	r := db.Relation("R")
	if i := r.FindRow([]Value{db.Intern("b"), db.Int(2)}); i != 1 {
		t.Fatalf("FindRow(b,2) = %d, want 1", i)
	}
	if i := r.FindRow([]Value{db.Intern("b"), db.Int(9)}); i != -1 {
		t.Fatalf("FindRow(missing) = %d, want -1", i)
	}
	if i := r.FindRow([]Value{db.Intern("b")}); i != -1 {
		t.Fatalf("FindRow(wrong arity) = %d, want -1", i)
	}
	r.DeleteRow(0)
	if r.Len() != 1 {
		t.Fatalf("Len after delete = %d, want 1", r.Len())
	}
	if i := r.FindRow([]Value{db.Intern("b"), db.Int(2)}); i != 0 {
		t.Fatalf("FindRow after delete = %d, want 0", i)
	}
	// Variable ids keep allocating densely after a delete: the deleted
	// tuple's id stays orphaned in varProb, the next insert takes id 2.
	r.Insert([]Value{db.Intern("c"), db.Int(3)}, 0.1)
	if got := r.VarID(1); got != 2 {
		t.Fatalf("VarID after delete+insert = %d, want 2", got)
	}
}

func TestLookupConstReadOnly(t *testing.T) {
	db := cowSeedDB()
	nStrs := len(db.strs)
	if _, ok := db.LookupConst("no-such-string"); ok {
		t.Fatal("LookupConst found a string that was never interned")
	}
	if len(db.strs) != nStrs {
		t.Fatal("LookupConst mutated the dictionary")
	}
	if v, ok := db.LookupConst("a"); !ok || v != db.strIDs["a"] {
		t.Fatalf("LookupConst(a) = %v, %v", v, ok)
	}
	if v, ok := db.LookupConst("42"); !ok || v != Value(42) {
		t.Fatalf("LookupConst(42) = %v, %v", v, ok)
	}
}
