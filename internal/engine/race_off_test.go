//go:build !race

package engine

// raceEnabled reports whether the race detector instruments this build.
// Allocation-count gates are skipped under -race: instrumentation adds
// its own allocations.
const raceEnabled = false
