package engine

import (
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Fused streaming Project(Join): the most allocation-heavy shape in the
// paper's dissociation plans is a duplicate-eliminating projection
// directly over a (possibly k-ary) join, whose output is often orders of
// magnitude larger than both its inputs and the projected result. This
// file evaluates that shape without ever materializing the final join:
// the last binary join's probe streams its matches, in probe order,
// through a re-chunking assembler that runs the projection's grouping
// kernel every morselSize rows.
//
// Bit-identity argument: the materialized path would chunk the join's
// output array at absolute boundaries 0, morselSize, 2·morselSize, …;
// the assembler flushes at exactly those same row counts, and rows
// arrive in the same order a sequential probe would emit them. Each
// flushed chunk therefore holds exactly the rows of the corresponding
// materialized chunk, the chunk-local complement products multiply
// 1 − s in the same row order, and projectMerge folds partials in the
// same chunk order — so every output bit matches the materialized
// (and morsel-parallel) evaluation. Only the kept columns are ever
// gathered; columns the projection drops never exist.
//
// The path engages only for sequential evaluation (pool == nil): with
// helpers, the morsel-parallel materialized operators already overlap
// work, and the assembler is inherently single-stream.

// canStream reports whether the fused streaming Project(Join) path
// applies to the given join subtree: sequential execution, a real
// (k >= 2) join, and no already-cached result for the subtree (reuse
// must win over recomputation).
func (e *Evaluator) canStream(jn *plan.Join) bool {
	if e.pool != nil || len(jn.Subs) < 2 {
		return false
	}
	if e.cache != nil {
		if _, ok := e.cache[jn.Key()]; ok {
			return false
		}
	}
	return true
}

// costBasedJoinOrder returns the Selinger DP fold order over the inputs,
// or nil when the DP does not apply (single input, or more than 12
// inputs where the 2^k DP is too wide — callers fall back to the greedy
// order).
func costBasedJoinOrder(results []*Result) []int {
	k := len(results)
	if k <= 1 || k > 12 {
		return nil
	}
	stats := make([]columnStats, k)
	cols := make([][]cq.Var, k)
	for i, r := range results {
		stats[i] = statsOf(r)
		cols[i] = r.Cols
	}
	type entry struct {
		cost  float64
		stats columnStats
		cols  []cq.Var
		order []int
	}
	dp := make(map[uint32]*entry, 1<<uint(k))
	for i := 0; i < k; i++ {
		dp[1<<uint(i)] = &entry{cost: 0, stats: stats[i], cols: cols[i], order: []int{i}}
	}
	for mask := uint32(1); mask < 1<<uint(k); mask++ {
		if dp[mask] != nil {
			continue // singleton already seeded
		}
		var best *entry
		for i := 0; i < k; i++ {
			bit := uint32(1) << uint(i)
			if mask&bit == 0 {
				continue
			}
			rest := mask &^ bit
			sub := dp[rest]
			if sub == nil {
				continue
			}
			est, outStats := estimateJoin(sub.stats, stats[i], sub.cols, cols[i])
			cost := sub.cost + est
			if best == nil || cost < best.cost {
				outCols := cq.NewVarSet(sub.cols...)
				for _, c := range cols[i] {
					outCols.Add(c)
				}
				order := make([]int, len(sub.order)+1)
				copy(order, sub.order)
				order[len(sub.order)] = i
				best = &entry{cost: cost, stats: outStats, cols: outCols.Sorted(), order: order}
			}
		}
		dp[mask] = best
	}
	return dp[(1<<uint(k))-1].order
}

// joinOrderOf picks the fold order the executor would use for these
// inputs — cost-based when enabled and applicable, greedy otherwise.
// Shared by the materialized folds and the streaming path so fold
// decisions (and therefore outputs) are identical.
func joinOrderOf(results []*Result, costBased bool) []int {
	if costBased {
		if o := costBasedJoinOrder(results); o != nil {
			return o
		}
	}
	return greedyJoinOrder(results)
}

// streamProjectJoin evaluates Project(Join) with the final binary join
// streamed into the projection. All join inputs and every fold except
// the last are materialized as usual (fold ordering inspects
// materialized sizes); only the last join's output — the largest
// intermediate — streams.
func (e *Evaluator) streamProjectJoin(jn *plan.Join, onto []cq.Var) *Result {
	subs := make([]*Result, len(jn.Subs))
	for i, c := range jn.Subs {
		subs[i] = e.Eval(c)
	}
	ex := e.ex()
	order := joinOrderOf(subs, e.opts.CostBasedJoins)
	cur := subs[order[0]]
	for _, i := range order[1 : len(order)-1] {
		cur = join(cur, subs[i], ex)
	}
	return streamJoinProject(cur, subs[order[len(order)-1]], onto, ex)
}

// streamJoinProject computes project(join(l, r), onto) with the join
// output streamed: probe matches feed the projection accumulator
// (projAccum) in the exact order a materialized join would store them,
// and the accumulator folds grouping chunks at the exact morsel
// boundaries the materialized projection would use.
func streamJoinProject(l, r *Result, onto []cq.Var, ex *exec) *Result {
	jl := makeJoinLayout(l, r)
	ka := len(onto)
	// Source column of each kept projection column within the join.
	srcBuild := make([]bool, ka)
	srcVals := make([][]Value, ka)
	srcIDs := make([][]int32, ka)
	for k, v := range onto {
		oi := colIndex(jl.outCols, v)
		side := jl.probe
		if jl.fromBuild[oi] {
			side = jl.build
		}
		srcBuild[k] = jl.fromBuild[oi]
		srcVals[k] = side.vals[jl.pos[oi]]
		srcIDs[k] = side.ids[jl.pos[oi]]
	}
	jt := buildJoinTable(jl.build, jl.buildPos, ex)
	np := jl.probe.Len()
	pChunks := numChunks(np)
	if pChunks > 1 {
		ex.addPartitions(pChunks)
	}
	probeKeys := make([][]int32, len(jl.probePos))
	for k, j := range jl.probePos {
		probeKeys[k] = jl.probe.ids[j]
	}
	sg := newColSigner(probeKeys)
	wide := sg.wide()
	c := ex.canc()
	pa := newProjAccum(onto, projAccumHint, ex)
	bscores, pscores := jl.build.scores, jl.probe.scores
	pending := 0 // join rows found since the last budget charge
	for i := 0; i < np; i++ {
		c.check()
		var key []int32
		if wide {
			key = sg.keyAt(i)
		}
		st, n := jt.lookupSpan(sg.sig(i), key)
		pending += int(n)
		if (i+1)%morselSize == 0 || i == np-1 {
			// Charge at probe-chunk boundaries — the same batch granularity
			// (and identical totals) as the materialized join's first pass.
			ex.charge(pending)
			pending = 0
		}
		if n == 0 {
			continue
		}
		s := pscores[i]
		for k := 0; k < ka; k++ {
			if !srcBuild[k] {
				pa.key[k] = srcIDs[k][i]
				pa.val[k] = srcVals[k][i]
			}
		}
		for j := int32(0); j < n; j++ {
			ri := jt.rows[st+j]
			for k := 0; k < ka; k++ {
				if srcBuild[k] {
					pa.key[k] = srcIDs[k][ri]
					pa.val[k] = srcVals[k][ri]
				}
			}
			pa.add(s * bscores[ri])
		}
	}
	return pa.finish()
}
