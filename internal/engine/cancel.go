package engine

import "context"

// Cancellation support. The evaluator's hot loops poll a context every
// cancelCheckInterval iterations; on cancellation they unwind the
// recursive evaluation with a typed panic that TrapCancel converts back
// into the context's error at the call boundary. This keeps the operator
// code free of error plumbing while giving requests a bounded
// cancellation latency (one poll interval of row-level work).

// cancelCheckInterval is how many row-level operations may pass between
// two context polls. Polling is a single atomic load inside ctx.Err, so
// the interval trades cancellation latency against per-row overhead.
const cancelCheckInterval = 4096

// evalCancelled carries a context error out of the evaluation stack.
type evalCancelled struct{ err error }

// canceller polls a context cheaply inside hot loops. The zero value
// (nil context) never cancels, so uncancellable callers pay one nil
// check per poll site.
type canceller struct {
	ctx context.Context
	n   int
}

// check panics with evalCancelled when the context is done. Call it
// once per row-level unit of work.
func (c *canceller) check() {
	if c == nil || c.ctx == nil {
		return
	}
	c.n++
	if c.n%cancelCheckInterval != 0 {
		return
	}
	if err := c.ctx.Err(); err != nil {
		panic(evalCancelled{err})
	}
}

// checkNow polls the context unconditionally (for loop entry points and
// per-answer boundaries where work between polls can be large).
func (c *canceller) checkNow() {
	if c == nil || c.ctx == nil {
		return
	}
	if err := c.ctx.Err(); err != nil {
		panic(evalCancelled{err})
	}
}

// TrapCancel runs f and converts a cancellation panic raised by a
// context-bound evaluator back into that context's error. All other
// panics propagate unchanged.
func TrapCancel(f func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			if c, ok := r.(evalCancelled); ok {
				err = c.err
				return
			}
			panic(r)
		}
	}()
	f()
	return nil
}

// CheckContext returns the context's error, if any. Boundary check for
// callers outside the engine's panic-based unwinding.
func CheckContext(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}
