package engine

import (
	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

// SchemaFor derives the plan-enumeration schema knowledge for a query
// from the database's relation declarations: deterministic relations map
// directly, and every relation key is instantiated over the query's atom
// arguments as functional dependencies (Section 3.3).
func SchemaFor(db *DB, q *cq.Query) *core.Schema {
	sch := &core.Schema{Det: map[string]bool{}}
	for _, a := range q.Atoms {
		rel := db.Relation(a.Rel)
		if rel == nil {
			continue
		}
		if rel.Deterministic {
			sch.Det[a.Rel] = true
		}
		if len(rel.Key) > 0 {
			sch.FDs = append(sch.FDs, cq.KeyFDs(a, rel.Key)...)
		}
	}
	return sch
}
