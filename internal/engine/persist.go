package engine

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
)

// snapshot is the serialized form of a database. All fields are exported
// for encoding/gob; the format is versioned so later releases can evolve
// it.
type snapshot struct {
	Version   int
	Strings   []string
	VarProb   []float64
	Order     []string
	Relations []relationSnapshot
}

type relationSnapshot struct {
	Name          string
	Cols          []string
	Deterministic bool
	Key           []int
	Rows          []Value
	Prob          []float64
	Vars          []int32
}

const snapshotVersion = 1

// Save writes the database to w in a binary snapshot format readable by
// Load.
func (db *DB) Save(w io.Writer) error {
	s := snapshot{
		Version: snapshotVersion,
		Strings: db.strs,
		VarProb: db.varProb,
		Order:   db.order,
	}
	for _, name := range db.order {
		r := db.rels[name]
		s.Relations = append(s.Relations, relationSnapshot{
			Name:          r.Name,
			Cols:          r.Cols,
			Deterministic: r.Deterministic,
			Key:           r.Key,
			Rows:          r.rows,
			Prob:          r.prob,
			Vars:          r.vars,
		})
	}
	return gob.NewEncoder(w).Encode(s)
}

// Load reads a database snapshot written by Save.
func Load(r io.Reader) (*DB, error) {
	var s snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("engine: load snapshot: %w", err)
	}
	if s.Version != snapshotVersion {
		return nil, fmt.Errorf("engine: unsupported snapshot version %d (this build reads version %d)", s.Version, snapshotVersion)
	}
	for _, p := range s.VarProb {
		if math.IsNaN(p) || p < 0 || p > 1 {
			return nil, fmt.Errorf("engine: lineage variable probability %v out of [0, 1]", p)
		}
	}
	db := NewDB()
	db.strs = s.Strings
	db.varProb = s.VarProb
	db.order = s.Order
	for i, str := range s.Strings {
		db.strIDs[str] = Value(-int64(i) - 1)
	}
	for _, rs := range s.Relations {
		if _, ok := db.rels[rs.Name]; ok {
			return nil, fmt.Errorf("engine: duplicate relation %s in snapshot", rs.Name)
		}
		arity := len(rs.Cols)
		if arity > 0 && len(rs.Rows)%arity != 0 {
			return nil, fmt.Errorf("engine: relation %s has %d values for arity %d", rs.Name, len(rs.Rows), arity)
		}
		n := len(rs.Prob)
		if arity > 0 && len(rs.Rows)/arity != n {
			return nil, fmt.Errorf("engine: relation %s has %d rows but %d probabilities", rs.Name, len(rs.Rows)/arity, n)
		}
		if !rs.Deterministic && len(rs.Vars) != n {
			return nil, fmt.Errorf("engine: relation %s has %d tuples but %d lineage variables", rs.Name, n, len(rs.Vars))
		}
		for _, id := range rs.Vars {
			if int(id) >= len(s.VarProb) || id < 0 {
				return nil, fmt.Errorf("engine: relation %s references unknown lineage variable %d", rs.Name, id)
			}
		}
		for _, v := range rs.Rows {
			if v < 0 && int(-v-1) >= len(s.Strings) {
				return nil, fmt.Errorf("engine: relation %s references string %d beyond dictionary size %d", rs.Name, -v-1, len(s.Strings))
			}
		}
		for _, p := range rs.Prob {
			if math.IsNaN(p) || p < 0 || p > 1 {
				return nil, fmt.Errorf("engine: relation %s has probability %v out of [0, 1]", rs.Name, p)
			}
		}
		vids := make([]int32, len(rs.Rows))
		for i, v := range rs.Rows {
			vids[i] = db.noteValue(v)
		}
		db.rels[rs.Name] = &Relation{
			Name:          rs.Name,
			Cols:          rs.Cols,
			Deterministic: rs.Deterministic,
			Key:           rs.Key,
			db:            db,
			rows:          rs.Rows,
			vids:          vids,
			prob:          rs.Prob,
			vars:          rs.Vars,
		}
	}
	for _, name := range s.Order {
		if _, ok := db.rels[name]; !ok {
			return nil, fmt.Errorf("engine: snapshot order references missing relation %s", name)
		}
	}
	return db, nil
}
