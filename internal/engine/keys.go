package engine

// Interned join/project keys. A composite key is the tuple of dense
// value ids ([]int32, see DB.noteValue) at the key columns. Keys of
// arity <= 2 pack exactly into one uint64 — a collision-free map key —
// and wider keys fall back to a 64-bit hash with full-key comparison on
// collision chains. Both replace the per-row []byte encodings
// (appendValue) the operators used before: no per-row allocation, no
// byte-string hashing.

// packKey packs an arity <= 2 key of dense ids into a collision-free
// uint64.
func packKey(key []int32) uint64 {
	switch len(key) {
	case 0:
		return 0
	case 1:
		return uint64(uint32(key[0]))
	default:
		return uint64(uint32(key[0]))<<32 | uint64(uint32(key[1]))
	}
}

// mix64 is the murmur3 finalizer: a cheap bijective scrambler used both
// to hash wide keys and to spread packed keys across join partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashKey32 hashes a wide ([]int32, arity >= 3) key.
func hashKey32(key []int32) uint64 {
	h := uint64(len(key)) + 0x9e3779b97f4a7c15
	for _, v := range key {
		h = mix64(h ^ uint64(uint32(v)))
	}
	return h
}

// keySig returns the packed key (arity <= 2, exact) or the hash (wider,
// needs comparison) — the signature joins partition and look up by.
func keySig(key []int32) uint64 {
	if len(key) <= 2 {
		return packKey(key)
	}
	return hashKey32(key)
}

// groupTable maps composite keys to dense group ids 0..n-1 assigned in
// first-appearance order — the deterministic property every operator's
// output ordering rests on.
type groupTable struct {
	arity int
	exact bool             // arity <= 2: sig is the packed key, no compare needed
	table map[uint64]int32 // sig -> first group id with that sig
	next  []int32          // group id -> next group with equal sig, -1 ends
	keys  []int32          // flattened interned keys, arity per group
}

func newGroupTable(arity, sizeHint int) *groupTable {
	return &groupTable{
		arity: arity,
		exact: arity <= 2,
		table: make(map[uint64]int32, sizeHint),
	}
}

func (g *groupTable) size() int { return len(g.next) }

// intern returns the group id of key, adding it when unseen.
func (g *groupTable) intern(key []int32) (gid int32, fresh bool) {
	return g.internSig(keySig(key), key)
}

// internSig is intern with the signature precomputed by the caller (the
// morsel operators compute signatures once per row in parallel).
func (g *groupTable) internSig(sig uint64, key []int32) (gid int32, fresh bool) {
	if first, ok := g.table[sig]; ok {
		if g.exact {
			return first, false
		}
		for id := first; ; id = g.next[id] {
			if g.keyEqual(id, key) {
				return id, false
			}
			if g.next[id] < 0 {
				gid = g.add(key)
				g.next[id] = gid
				return gid, true
			}
		}
	}
	gid = g.add(key)
	g.table[sig] = gid
	return gid, true
}

// lookup returns the group id of key without adding it.
func (g *groupTable) lookup(key []int32) (int32, bool) {
	return g.lookupSig(keySig(key), key)
}

func (g *groupTable) lookupSig(sig uint64, key []int32) (int32, bool) {
	first, ok := g.table[sig]
	if !ok {
		return 0, false
	}
	if g.exact {
		return first, true
	}
	for id := first; ; id = g.next[id] {
		if g.keyEqual(id, key) {
			return id, true
		}
		if g.next[id] < 0 {
			return 0, false
		}
	}
}

func (g *groupTable) add(key []int32) int32 {
	id := int32(len(g.next))
	g.next = append(g.next, -1)
	if !g.exact {
		g.keys = append(g.keys, key...)
	}
	return id
}

func (g *groupTable) keyEqual(id int32, key []int32) bool {
	base := int(id) * g.arity
	for i, v := range key {
		if g.keys[base+i] != v {
			return false
		}
	}
	return true
}

// valueKeyHash hashes a raw-Value composite key (used where dense ids
// are unavailable, e.g. Result.ScoreOf lookups keyed by caller-supplied
// values).
func valueKeyHash(key []Value) uint64 {
	h := uint64(len(key)) + 0x9e3779b97f4a7c15
	for _, v := range key {
		h = mix64(h ^ uint64(v))
	}
	return h
}
