package engine

// Interned join/project keys. A composite key is the tuple of dense
// value ids ([]int32, see DB.noteValue) at the key columns. Keys of
// arity <= 2 pack exactly into one uint64 — a collision-free signature —
// and wider keys fall back to a 64-bit hash with full-key comparison on
// signature collisions.
//
// groupTable is an open-addressing (linear probing) table rather than a
// Go map: the columnar operators intern one key per input row, which
// made map access the dominant cost of project/join under profiling.
// Open addressing with power-of-two sizing keeps the probe sequence in
// one cache line for most lookups and pre-sizes exactly from the
// operator's cardinality hints.

// packKey packs an arity <= 2 key of dense ids into a collision-free
// uint64.
func packKey(key []int32) uint64 {
	switch len(key) {
	case 0:
		return 0
	case 1:
		return uint64(uint32(key[0]))
	default:
		return uint64(uint32(key[0]))<<32 | uint64(uint32(key[1]))
	}
}

// mix64 is the murmur3 finalizer: a cheap bijective scrambler used both
// to hash wide keys and to spread packed keys across table slots and
// join partitions.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// hashKey32 hashes a wide ([]int32, arity >= 3) key.
func hashKey32(key []int32) uint64 {
	h := uint64(len(key)) + 0x9e3779b97f4a7c15
	for _, v := range key {
		h = mix64(h ^ uint64(uint32(v)))
	}
	return h
}

// keySig returns the packed key (arity <= 2, exact) or the hash (wider,
// needs comparison) — the signature joins partition and look up by.
func keySig(key []int32) uint64 {
	if len(key) <= 2 {
		return packKey(key)
	}
	return hashKey32(key)
}

// colSigner computes row signatures directly from parallel id columns —
// the columnar counterpart of keySig(gather(row)), producing identical
// signatures without materializing the key tuple.
type colSigner struct {
	cols [][]int32
	key  []int32 // scratch for wide keys
}

func newColSigner(cols [][]int32) *colSigner {
	return &colSigner{cols: cols, key: make([]int32, len(cols))}
}

func (s *colSigner) sig(i int) uint64 {
	switch len(s.cols) {
	case 0:
		return 0
	case 1:
		return uint64(uint32(s.cols[0][i]))
	case 2:
		return uint64(uint32(s.cols[0][i]))<<32 | uint64(uint32(s.cols[1][i]))
	default:
		h := uint64(len(s.cols)) + 0x9e3779b97f4a7c15
		for _, c := range s.cols {
			h = mix64(h ^ uint64(uint32(c[i])))
		}
		return h
	}
}

// keyAt gathers row i's key into the signer's scratch buffer. Only
// needed for wide (arity >= 3) keys, where tables compare full keys.
func (s *colSigner) keyAt(i int) []int32 {
	for k, c := range s.cols {
		s.key[k] = c[i]
	}
	return s.key
}

// wide reports whether intern/lookup calls need the full key (arity >=
// 3); exact tables never dereference it.
func (s *colSigner) wide() bool { return len(s.cols) > 2 }

// groupSlot is one open-addressing slot: the key signature and the
// group id + 1 (0 = empty), interleaved so a probe touches exactly one
// cache location instead of chasing slot -> gid -> signature through
// two arrays. The aux field rides in the struct's alignment padding
// (12 bytes round up to 16 either way) and gives operators a free
// per-group scratch word in the cache line the probe already loaded;
// grow copies slots wholesale, so aux survives rehashing.
type groupSlot struct {
	sig uint64
	ref int32 // gid + 1, 0 = empty
	aux int32 // operator scratch (e.g. projAccum's chunk-local slot)
}

// groupTable maps composite keys to dense group ids 0..n-1 assigned in
// first-appearance order — the deterministic property every operator's
// output ordering rests on. Open addressing, linear probing, grown at
// ~80% load.
type groupTable struct {
	arity int
	exact bool // arity <= 2: sig is the packed key, no compare needed
	slots []groupSlot
	mask  uint64
	n     int     // groups interned
	keys  []int32 // flattened interned keys, arity per group (wide only)
}

func newGroupTable(arity, sizeHint int) *groupTable {
	cap := 8
	for cap*4 < sizeHint*5 { // hold sizeHint groups below 80% load
		cap *= 2
	}
	return &groupTable{
		arity: arity,
		exact: arity <= 2,
		slots: make([]groupSlot, cap),
		mask:  uint64(cap - 1),
	}
}

func (g *groupTable) size() int { return g.n }

// intern returns the group id of key, adding it when unseen.
func (g *groupTable) intern(key []int32) (gid int32, fresh bool) {
	return g.internSig(keySig(key), key)
}

// internSig is intern with the signature precomputed by the caller (the
// columnar operators compute signatures straight from id columns). For
// exact tables key may be nil.
func (g *groupTable) internSig(sig uint64, key []int32) (gid int32, fresh bool) {
	for i := mix64(sig) & g.mask; ; i = (i + 1) & g.mask {
		s := &g.slots[i]
		if s.ref == 0 {
			gid = int32(g.n)
			g.n++
			if !g.exact {
				g.keys = append(g.keys, key...)
			}
			s.sig, s.ref = sig, gid+1
			if g.n*5 >= len(g.slots)*4 {
				g.grow()
			}
			return gid, true
		}
		if s.sig == sig && (g.exact || g.keyEqual(s.ref-1, key)) {
			return s.ref - 1, false
		}
	}
}

// internSlot is internSig returning the slot itself, so callers can use
// the slot-resident aux scratch without a second gid-indexed lookup.
// Growth happens before insertion (the returned pointer must stay
// valid), so the load factor bound matches internSig's.
func (g *groupTable) internSlot(sig uint64, key []int32) (*groupSlot, bool) {
	if (g.n+1)*5 >= len(g.slots)*4 {
		g.grow()
	}
	for i := mix64(sig) & g.mask; ; i = (i + 1) & g.mask {
		s := &g.slots[i]
		if s.ref == 0 {
			gid := int32(g.n)
			g.n++
			if !g.exact {
				g.keys = append(g.keys, key...)
			}
			s.sig, s.ref, s.aux = sig, gid+1, 0
			return s, true
		}
		if s.sig == sig && (g.exact || g.keyEqual(s.ref-1, key)) {
			return s, false
		}
	}
}

// lookup returns the group id of key without adding it.
func (g *groupTable) lookup(key []int32) (int32, bool) {
	return g.lookupSig(keySig(key), key)
}

func (g *groupTable) lookupSig(sig uint64, key []int32) (int32, bool) {
	for i := mix64(sig) & g.mask; ; i = (i + 1) & g.mask {
		s := &g.slots[i]
		if s.ref == 0 {
			return 0, false
		}
		if s.sig == sig && (g.exact || g.keyEqual(s.ref-1, key)) {
			return s.ref - 1, true
		}
	}
}

func (g *groupTable) grow() {
	slots := make([]groupSlot, len(g.slots)*2)
	mask := uint64(len(slots) - 1)
	for _, s := range g.slots {
		if s.ref == 0 {
			continue
		}
		i := mix64(s.sig) & mask
		for slots[i].ref != 0 {
			i = (i + 1) & mask
		}
		slots[i] = s
	}
	g.slots, g.mask = slots, mask
}

func (g *groupTable) keyEqual(id int32, key []int32) bool {
	base := int(id) * g.arity
	for i, v := range key {
		if g.keys[base+i] != v {
			return false
		}
	}
	return true
}

// valueKeyHash hashes a raw-Value composite key (used where dense ids
// are unavailable, e.g. Result.ScoreOf lookups keyed by caller-supplied
// values).
func valueKeyHash(key []Value) uint64 {
	h := uint64(len(key)) + 0x9e3779b97f4a7c15
	for _, v := range key {
		h = mix64(h ^ uint64(v))
	}
	return h
}
