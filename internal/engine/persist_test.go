package engine

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	db := randomDB(q, 4, 10, 1.0, rng)
	db.Relation("S").SetKey("c", "d") // column names are c, d in randomDB
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same relations, sizes, keys, determinism.
	for _, r := range db.Relations() {
		lr := loaded.Relation(r.Name)
		if lr == nil {
			t.Fatalf("relation %s missing after load", r.Name)
		}
		if lr.Len() != r.Len() || lr.Deterministic != r.Deterministic || len(lr.Key) != len(r.Key) {
			t.Errorf("relation %s metadata mismatch", r.Name)
		}
	}
	// Same query results, bit for bit.
	plans := core.MinimalPlans(q, nil)
	a := EvalPlans(db, q, plans, Options{})
	b := EvalPlans(loaded, q, plans, Options{})
	if a.Len() != b.Len() {
		t.Fatalf("answers %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		got, ok := b.ScoreOf(a.Row(i))
		if !ok || math.Abs(got-a.Score(i)) != 0 {
			t.Errorf("answer %d: %v vs %v", i, a.Score(i), got)
		}
	}
}

func TestSaveLoadStringDictionary(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("Names", []string{"id", "name"})
	r.Insert([]Value{1, db.Intern("alice")}, 0.5)
	r.Insert([]Value{2, db.Intern("bob")}, 0.7)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lr := loaded.Relation("Names")
	if got := loaded.Decode(lr.Row(0)[1]); got != "alice" {
		t.Errorf("decoded %q, want alice", got)
	}
	// Interning the same string must return the same id.
	if loaded.Intern("bob") != db.Intern("bob") {
		t.Error("dictionary ids diverged after load")
	}
	// New strings get fresh ids past the loaded ones.
	if loaded.Intern("carol") == loaded.Intern("alice") {
		t.Error("fresh intern collided")
	}
}

func TestSaveLoadDeterministicRelations(t *testing.T) {
	db := NewDB()
	d := db.CreateDeterministicRelation("D", []string{"x"})
	p := db.CreateRelation("P", []string{"x"})
	d.Insert([]Value{1}, 1)
	p.Insert([]Value{1}, 0.5)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Relation("D").Deterministic {
		t.Error("determinism lost")
	}
	if loaded.NumVars() != 1 {
		t.Errorf("lineage vars = %d, want 1", loaded.NumVars())
	}
	if loaded.Relation("P").VarID(0) != 0 || loaded.Relation("D").VarID(0) != -1 {
		t.Error("lineage variable ids wrong after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}
