package engine

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	db := randomDB(q, 4, 10, 1.0, rng)
	db.Relation("S").SetKey("c", "d") // column names are c, d in randomDB
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Same relations, sizes, keys, determinism.
	for _, r := range db.Relations() {
		lr := loaded.Relation(r.Name)
		if lr == nil {
			t.Fatalf("relation %s missing after load", r.Name)
		}
		if lr.Len() != r.Len() || lr.Deterministic != r.Deterministic || len(lr.Key) != len(r.Key) {
			t.Errorf("relation %s metadata mismatch", r.Name)
		}
	}
	// Same query results, bit for bit.
	plans := core.MinimalPlans(q, nil)
	a := EvalPlans(db, q, plans, Options{})
	b := EvalPlans(loaded, q, plans, Options{})
	if a.Len() != b.Len() {
		t.Fatalf("answers %d vs %d", a.Len(), b.Len())
	}
	for i := 0; i < a.Len(); i++ {
		got, ok := b.ScoreOf(a.Row(i))
		if !ok || math.Abs(got-a.Score(i)) != 0 {
			t.Errorf("answer %d: %v vs %v", i, a.Score(i), got)
		}
	}
}

func TestSaveLoadStringDictionary(t *testing.T) {
	db := NewDB()
	r := db.CreateRelation("Names", []string{"id", "name"})
	r.Insert([]Value{1, db.Intern("alice")}, 0.5)
	r.Insert([]Value{2, db.Intern("bob")}, 0.7)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lr := loaded.Relation("Names")
	if got := loaded.Decode(lr.Row(0)[1]); got != "alice" {
		t.Errorf("decoded %q, want alice", got)
	}
	// Interning the same string must return the same id.
	if loaded.Intern("bob") != db.Intern("bob") {
		t.Error("dictionary ids diverged after load")
	}
	// New strings get fresh ids past the loaded ones.
	if loaded.Intern("carol") == loaded.Intern("alice") {
		t.Error("fresh intern collided")
	}
}

func TestSaveLoadDeterministicRelations(t *testing.T) {
	db := NewDB()
	d := db.CreateDeterministicRelation("D", []string{"x"})
	p := db.CreateRelation("P", []string{"x"})
	d.Insert([]Value{1}, 1)
	p.Insert([]Value{1}, 0.5)
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Relation("D").Deterministic {
		t.Error("determinism lost")
	}
	if loaded.NumVars() != 1 {
		t.Errorf("lineage vars = %d, want 1", loaded.NumVars())
	}
	if loaded.Relation("P").VarID(0) != 0 || loaded.Relation("D").VarID(0) != -1 {
		t.Error("lineage variable ids wrong after load")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a snapshot"))); err == nil {
		t.Error("garbage input should fail")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input should fail")
	}
}

// persistTestBytes saves a small two-relation database (probabilistic +
// deterministic, interned strings, a key) for the corruption tests.
func persistTestBytes(t *testing.T) []byte {
	t.Helper()
	db := NewDB()
	r := db.CreateRelation("Likes", []string{"user", "movie"})
	r.Insert([]Value{db.Intern("ann"), db.Intern("heat")}, 0.9)
	r.Insert([]Value{db.Intern("bob"), db.Intern("heat")}, 0.5)
	d := db.CreateDeterministicRelation("Fan", []string{"actor"})
	d.Insert([]Value{db.Intern("deniro")}, 1)
	r.SetKey("user", "movie")
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestLoadRejectsFutureVersion(t *testing.T) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(snapshot{Version: snapshotVersion + 1}); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil {
		t.Fatal("snapshot from a future version must be rejected")
	}
	want := fmt.Sprintf("unsupported snapshot version %d", snapshotVersion+1)
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("error %q does not name the version: want %q", err, want)
	}
}

// TestLoadRejectsTruncatedSnapshot cuts a valid snapshot at every byte
// boundary: every proper prefix must fail with an error, never a panic
// or a silently partial database.
func TestLoadRejectsTruncatedSnapshot(t *testing.T) {
	data := persistTestBytes(t)
	for n := 0; n < len(data); n++ {
		if _, err := Load(bytes.NewReader(data[:n])); err == nil {
			t.Fatalf("prefix of %d/%d bytes loaded without error", n, len(data))
		}
	}
}

// TestLoadCorruptedByteNoPanic flips each byte of a valid snapshot in
// turn. Load may reject or (for benign flips, e.g. inside string
// content) accept the result, but it must never panic.
func TestLoadCorruptedByteNoPanic(t *testing.T) {
	data := persistTestBytes(t)
	for i := range data {
		c := append([]byte(nil), data...)
		c[i] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Load panicked with byte %d flipped: %v", i, r)
				}
			}()
			Load(bytes.NewReader(c)) //nolint:errcheck // only the no-panic property matters
		}()
	}
}

func TestLoadRejectsDanglingStringReference(t *testing.T) {
	s := snapshot{
		Version: snapshotVersion,
		Strings: []string{"a"},
		VarProb: []float64{0.5},
		Order:   []string{"R"},
		Relations: []relationSnapshot{{
			Name: "R", Cols: []string{"x"},
			Rows: []Value{-5}, // string index 4, dictionary has 1 entry
			Prob: []float64{0.5}, Vars: []int32{0},
		}},
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(s); err != nil {
		t.Fatal(err)
	}
	_, err := Load(&buf)
	if err == nil || !strings.Contains(err.Error(), "string") {
		t.Fatalf("want dangling-string error, got: %v", err)
	}
}

func TestLoadRejectsBadProbabilities(t *testing.T) {
	base := func() snapshot {
		return snapshot{
			Version: snapshotVersion,
			VarProb: []float64{0.5},
			Order:   []string{"R"},
			Relations: []relationSnapshot{{
				Name: "R", Cols: []string{"x"},
				Rows: []Value{1}, Prob: []float64{0.5}, Vars: []int32{0},
			}},
		}
	}
	tampered := map[string]snapshot{}
	s := base()
	s.Relations[0].Prob[0] = 1.5
	tampered["tuple probability above 1"] = s
	s = base()
	s.Relations[0].Prob[0] = math.NaN()
	tampered["NaN tuple probability"] = s
	s = base()
	s.VarProb[0] = -0.25
	tampered["negative lineage probability"] = s
	for name, snap := range tampered {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(snap); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(&buf); err == nil || !strings.Contains(err.Error(), "[0, 1]") {
			t.Errorf("%s: want out-of-range error, got: %v", name, err)
		}
	}
}
