package engine

import (
	"math"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/exact"
	"lapushdb/internal/plan"
)

const eps = 1e-12

// example7DB builds the database of Example 7:
// R = {1, 2}, S = {(1,4), (1,5)} with P(R(1)) = p, P(S(1,4)) = q,
// P(S(1,5)) = r.
func example7DB(p, q, r float64) *DB {
	db := NewDB()
	R := db.CreateRelation("R", []string{"a"})
	S := db.CreateRelation("S", []string{"a", "b"})
	R.Insert([]Value{1}, p)
	R.Insert([]Value{2}, 0.3)
	S.Insert([]Value{1, 4}, q)
	S.Insert([]Value{1, 5}, r)
	return db
}

func TestSafePlanMatchesExample7(t *testing.T) {
	// q :- R(x), S(x, y) is safe; P(q) = p(1 − (1−q)(1−r)).
	p, qq, r := 0.5, 0.4, 0.7
	db := example7DB(p, qq, r)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1", len(plans))
	}
	res := NewEvaluator(db, q, Options{}).Eval(plans[0])
	if res.Len() != 1 {
		t.Fatalf("Boolean query returned %d rows", res.Len())
	}
	want := p * (1 - (1-qq)*(1-r))
	if got := res.Score(0); math.Abs(got-want) > eps {
		t.Errorf("score = %v, want %v", got, want)
	}
}

func TestDissociationScoreMatchesExample9(t *testing.T) {
	// The dissociated plan ⋈[R(x), ...] evaluated directly: Example 9
	// computes P(F') = 1 − (1−pq)(1−pr) = pq + pr − p²qr for the full
	// dissociation of q :- R(x), S(x, y) on R^y.
	p, qq, r := 0.5, 0.4, 0.7
	db := example7DB(p, qq, r)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	d := plan.NewDissociation()
	d.Add("R", "y")
	pl, err := plan.PlanOf(q, d)
	if err != nil {
		t.Fatal(err)
	}
	res := NewEvaluator(db, q, Options{}).Eval(pl)
	want := qq*p + r*p - p*p*qq*r
	if got := res.Score(0); math.Abs(got-want) > eps {
		t.Errorf("score = %v, want %v", got, want)
	}
}

// TestExample17Numbers reproduces the probabilities of Example 17:
// P(q) = 83/2^9, P(q∆3) = 169/2^10, P(q∆4) = 353/2^11.
func TestExample17Numbers(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateRelation("S", []string{"x"})
	T := db.CreateRelation("T", []string{"x", "y"})
	U := db.CreateRelation("U", []string{"y"})
	for _, v := range []Value{1, 2} {
		R.Insert([]Value{v}, 0.5)
		S.Insert([]Value{v}, 0.5)
		U.Insert([]Value{v}, 0.5)
	}
	for _, row := range [][]Value{{1, 1}, {1, 2}, {2, 2}} {
		T.Insert(row, 0.5)
	}
	q := cq.MustParse("q() :- R(x), S(x), T(x, y), U(y)")

	// Exact probability via lineage + exact WMC.
	lin := EvalLineage(db, q, nil)
	if lin.Len() != 1 {
		t.Fatalf("lineage answers = %d, want 1", lin.Len())
	}
	exactP := exact.Prob(lin.Clauses(0), db.VarProbs())
	if want := 83.0 / 512.0; math.Abs(exactP-want) > eps {
		t.Errorf("P(q) = %v, want %v", exactP, want)
	}

	// The two minimal plans give 169/1024 and 353/2048.
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 2 {
		t.Fatalf("#plans = %d, want 2", len(plans))
	}
	var scores []float64
	for _, p := range plans {
		res := NewEvaluator(db, q, Options{}).Eval(p)
		scores = append(scores, res.Score(0))
	}
	want3, want4 := 169.0/1024.0, 353.0/2048.0
	if !(approx(scores[0], want3) && approx(scores[1], want4)) &&
		!(approx(scores[0], want4) && approx(scores[1], want3)) {
		t.Errorf("plan scores = %v, want {%v, %v}", scores, want3, want4)
	}

	// The propagation score is the minimum: 169/1024.
	res := EvalPlans(db, q, plans, Options{})
	if got := res.Score(0); math.Abs(got-want3) > eps {
		t.Errorf("ρ(q) = %v, want %v", got, want3)
	}

	// Both are upper bounds on the exact probability (Theorem 12).
	for _, s := range scores {
		if s < exactP-eps {
			t.Errorf("plan score %v below exact %v", s, exactP)
		}
	}

	// Opt1 single plan computes the same propagation score.
	sp := core.SinglePlan(q, nil)
	spRes := NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp)
	if got := spRes.Score(0); math.Abs(got-want3) > eps {
		t.Errorf("single-plan ρ(q) = %v, want %v", got, want3)
	}
}

func approx(a, b float64) bool { return math.Abs(a-b) < eps }

func TestNonBooleanRanking(t *testing.T) {
	// q(z) :- R(z, x), S(x, y), T(y): two answers with different scores.
	db := NewDB()
	R := db.CreateRelation("R", []string{"z", "x"})
	S := db.CreateRelation("S", []string{"x", "y"})
	T := db.CreateRelation("T", []string{"y"})
	R.Insert([]Value{10, 1}, 0.9)
	R.Insert([]Value{20, 2}, 0.2)
	S.Insert([]Value{1, 5}, 0.8)
	S.Insert([]Value{2, 5}, 0.5)
	S.Insert([]Value{2, 6}, 0.4)
	T.Insert([]Value{5}, 0.7)
	T.Insert([]Value{6}, 0.6)
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 2 {
		t.Fatalf("#plans = %d", len(plans))
	}
	res := EvalPlans(db, q, plans, Options{})
	if res.Len() != 2 {
		t.Fatalf("answers = %d, want 2", res.Len())
	}
	// Cross-check each answer against the exact probability: scores are
	// upper bounds and, for this small instance, the ranking must agree.
	lin := EvalLineage(db, q, nil)
	for i := 0; i < lin.Len(); i++ {
		exactP := exact.Prob(lin.Clauses(i), db.VarProbs())
		score, ok := res.ScoreOf(lin.Key(i))
		if !ok {
			t.Fatalf("answer %v missing from plan result", lin.Key(i))
		}
		if score < exactP-eps {
			t.Errorf("answer %v: score %v < exact %v", lin.Key(i), score, exactP)
		}
	}
	order := res.Sorted()
	if res.Row(order[0])[0] != 10 {
		t.Errorf("expected answer 10 ranked first")
	}
}

func TestSemiJoinReduction(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateRelation("S", []string{"x", "y"})
	T := db.CreateRelation("T", []string{"y"})
	// R(3) joins nothing; S(2, 9) has no T(9); T(8) has no S.
	R.Insert([]Value{1}, 0.5)
	R.Insert([]Value{2}, 0.5)
	R.Insert([]Value{3}, 0.5)
	S.Insert([]Value{1, 7}, 0.5)
	S.Insert([]Value{2, 9}, 0.5)
	T.Insert([]Value{7}, 0.5)
	T.Insert([]Value{8}, 0.5)
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	reduced := SemiJoinReduce(db, q)
	if got := len(reduced["R"]); got != 1 {
		t.Errorf("R reduced to %d rows, want 1", got)
	}
	if got := len(reduced["S"]); got != 1 {
		t.Errorf("S reduced to %d rows, want 1", got)
	}
	if got := len(reduced["T"]); got != 1 {
		t.Errorf("T reduced to %d rows, want 1", got)
	}
	// Scores are identical with and without the reduction.
	plans := core.MinimalPlans(q, nil)
	plain := EvalPlans(db, q, plans, Options{})
	red := EvalPlans(db, q, plans, Options{SemiJoin: true})
	if plain.Len() != red.Len() || math.Abs(plain.Score(0)-red.Score(0)) > eps {
		t.Errorf("semi-join changed the result: %v vs %v", plain.Score(0), red.Score(0))
	}
}

func TestReuseSubplansSameScores(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x", "z"})
	S := db.CreateRelation("S", []string{"y", "u"})
	T := db.CreateRelation("T", []string{"z"})
	U := db.CreateRelation("U", []string{"u"})
	M := db.CreateRelation("M", []string{"x", "y", "z", "u"})
	vals := []Value{1, 2}
	p := 0.3
	for _, a := range vals {
		for _, b := range vals {
			R.Insert([]Value{a, b}, p)
			S.Insert([]Value{a, b}, p)
			for _, c := range vals {
				for _, d := range vals {
					M.Insert([]Value{a, b, c, d}, p)
				}
			}
		}
		T.Insert([]Value{a}, p)
		U.Insert([]Value{a}, p)
	}
	q := cq.MustParse("q() :- R(x, z), S(y, u), T(z), U(u), M(x, y, z, u)")
	sp := core.SinglePlan(q, nil)
	noReuse := NewEvaluator(db, q, Options{}).Eval(sp)
	reuse := NewEvaluator(db, q, Options{ReuseSubplans: true}).Eval(sp)
	if math.Abs(noReuse.Score(0)-reuse.Score(0)) > eps {
		t.Errorf("reuse changed score: %v vs %v", noReuse.Score(0), reuse.Score(0))
	}
	// And equals the min over all six minimal plans evaluated separately.
	all := EvalPlans(db, q, core.MinimalPlans(q, nil), Options{})
	if math.Abs(all.Score(0)-reuse.Score(0)) > eps {
		t.Errorf("single plan %v != min over plans %v", reuse.Score(0), all.Score(0))
	}
}

func TestConstantsInAtoms(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"a", "x"})
	S := db.CreateRelation("S", []string{"x"})
	av := db.Intern("a")
	R.Insert([]Value{av, 1}, 0.5)
	R.Insert([]Value{db.Intern("b"), 2}, 0.5)
	S.Insert([]Value{1}, 0.5)
	S.Insert([]Value{2}, 0.5)
	q := cq.MustParse("q() :- R('a', x), S(x)")
	plans := core.MinimalPlans(q, nil)
	res := EvalPlans(db, q, plans, Options{})
	// Only R('a', 1) ⋈ S(1) matches: P = 0.25.
	if got := res.Score(0); math.Abs(got-0.25) > eps {
		t.Errorf("score = %v, want 0.25", got)
	}
}

func TestRepeatedVariableInAtom(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x", "y"})
	R.Insert([]Value{1, 1}, 0.5)
	R.Insert([]Value{1, 2}, 0.9)
	q := cq.MustParse("q() :- R(x, x)")
	res := EvalPlans(db, q, core.MinimalPlans(q, nil), Options{})
	if got := res.Score(0); math.Abs(got-0.5) > eps {
		t.Errorf("score = %v, want 0.5 (only R(1,1) matches)", got)
	}
}

func TestPredicatePushdown(t *testing.T) {
	db := NewDB()
	S := db.CreateRelation("S", []string{"s", "a"})
	S.Insert([]Value{5, 100}, 0.5)
	S.Insert([]Value{15, 100}, 0.5)
	q := cq.MustParse("q(a) :- S(s, a), s <= 10")
	res := EvalPlans(db, q, core.MinimalPlans(q, nil), Options{})
	if res.Len() != 1 {
		t.Fatalf("answers = %d, want 1", res.Len())
	}
	if got := res.Score(0); math.Abs(got-0.5) > eps {
		t.Errorf("score = %v, want 0.5", got)
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		pat, s string
		want   bool
	}{
		{"%red%", "dark red metallic", true},
		{"%red%", "blue", false},
		{"%red%green%", "red green", true},
		{"%red%green%", "green red", false},
		{"%red%green%", "xredxygreenz", true},
		{"%", "", true},
		{"%", "anything", true},
		{"", "", true},
		{"", "x", false},
		{"a_c", "abc", true},
		{"a_c", "ac", false},
		{"abc", "abc", true},
		{"%a%b%a%", "xaxbxax", true},
		{"%aa%", "aXa", false},
	}
	for _, c := range cases {
		if got := LikeMatch(c.pat, c.s); got != c.want {
			t.Errorf("LikeMatch(%q, %q) = %v, want %v", c.pat, c.s, got, c.want)
		}
	}
}

func TestEvalDeterministic(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"z", "x"})
	S := db.CreateRelation("S", []string{"x", "y"})
	T := db.CreateRelation("T", []string{"y"})
	R.Insert([]Value{10, 1}, 0.9)
	R.Insert([]Value{20, 2}, 0.2)
	R.Insert([]Value{20, 3}, 0.2) // x=3 joins nothing
	S.Insert([]Value{1, 5}, 0.8)
	S.Insert([]Value{2, 6}, 0.4)
	T.Insert([]Value{5}, 0.7)
	T.Insert([]Value{6}, 0.6)
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	res := EvalDeterministic(db, q)
	if res.Len() != 2 {
		t.Fatalf("distinct answers = %d, want 2", res.Len())
	}
	for i := 0; i < res.Len(); i++ {
		if res.Score(i) != 1 {
			t.Errorf("deterministic score = %v, want 1", res.Score(i))
		}
	}
}

func TestLineageMatchesExample7(t *testing.T) {
	db := example7DB(0.5, 0.4, 0.7)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	lin := EvalLineage(db, q, nil)
	if lin.Len() != 1 {
		t.Fatalf("answers = %d", lin.Len())
	}
	// F = R(1)S(1,4) ∨ R(1)S(1,5): two clauses of two variables.
	if lin.Size(0) != 2 {
		t.Errorf("lineage size = %d, want 2", lin.Size(0))
	}
	for _, c := range lin.Clauses(0) {
		if len(c) != 2 {
			t.Errorf("clause %v has %d vars, want 2", c, len(c))
		}
	}
	if lin.MaxSize() != 2 {
		t.Errorf("max size = %d", lin.MaxSize())
	}
}

func TestLineageDeterministicRelationsExcluded(t *testing.T) {
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateDeterministicRelation("S", []string{"x", "y"})
	R.Insert([]Value{1}, 0.5)
	S.Insert([]Value{1, 2}, 1)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	lin := EvalLineage(db, q, nil)
	if lin.Len() != 1 || lin.Size(0) != 1 {
		t.Fatalf("lineage = %v", lin)
	}
	if len(lin.Clauses(0)[0]) != 1 {
		t.Errorf("clause should only hold R's variable: %v", lin.Clauses(0))
	}
	p := exact.Prob(lin.Clauses(0), db.VarProbs())
	if math.Abs(p-0.5) > eps {
		t.Errorf("P = %v, want 0.5", p)
	}
}

func TestDeterministicRelationScores(t *testing.T) {
	// q :- R(x), S^d(x, y), T^d(y) with R probabilistic: the single plan
	// from the DR-aware algorithm computes the exact probability even
	// though R(1) joins two S rows.
	db := NewDB()
	R := db.CreateRelation("R", []string{"x"})
	S := db.CreateDeterministicRelation("S", []string{"x", "y"})
	T := db.CreateDeterministicRelation("T", []string{"y"})
	R.Insert([]Value{1}, 0.4)
	S.Insert([]Value{1, 1}, 1)
	S.Insert([]Value{1, 2}, 1)
	T.Insert([]Value{1}, 1)
	T.Insert([]Value{2}, 1)
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sch := SchemaFor(db, q)
	plans := core.MinimalPlans(q, sch)
	if len(plans) != 1 {
		t.Fatalf("#plans = %d, want 1", len(plans))
	}
	res := NewEvaluator(db, q, Options{}).Eval(plans[0])
	if got := res.Score(0); math.Abs(got-0.4) > eps {
		t.Errorf("score = %v, want exactly 0.4", got)
	}
}

func TestScaleProbs(t *testing.T) {
	db := example7DB(0.5, 0.4, 0.7)
	db2 := db.Clone()
	db2.ScaleProbs(0.1)
	q := cq.MustParse("q() :- R(x), S(x, y)")
	p1 := EvalPlans(db, q, core.MinimalPlans(q, nil), Options{}).Score(0)
	p2 := EvalPlans(db2, q, core.MinimalPlans(q, nil), Options{}).Score(0)
	if p2 >= p1 {
		t.Errorf("scaling down should lower the probability: %v vs %v", p1, p2)
	}
	// Original database unchanged.
	p3 := EvalPlans(db, q, core.MinimalPlans(q, nil), Options{}).Score(0)
	if math.Abs(p1-p3) > eps {
		t.Errorf("clone+scale mutated the original")
	}
}

func TestInternRoundTrip(t *testing.T) {
	db := NewDB()
	a := db.Intern("hello")
	b := db.Intern("hello")
	if a != b {
		t.Error("interning not idempotent")
	}
	if db.Decode(a) != "hello" {
		t.Errorf("decode = %q", db.Decode(a))
	}
	if db.Decode(Value(42)) != "42" {
		t.Errorf("int decode = %q", db.Decode(42))
	}
	if db.Int(-5) == Value(-5) {
		t.Error("negative ints must be interned, not used raw")
	}
	if db.Decode(db.Int(-5)) != "-5" {
		t.Errorf("negative int decode = %q", db.Decode(db.Int(-5)))
	}
}
