package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

const eps = 1e-12

func TestInclusionWeightsNoTies(t *testing.T) {
	scores := []float64{0.9, 0.5, 0.7, 0.1}
	w := InclusionWeights(scores, 2)
	want := []float64{1, 0, 1, 0}
	for i := range w {
		if math.Abs(w[i]-want[i]) > eps {
			t.Errorf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestInclusionWeightsTies(t *testing.T) {
	// Three answers tied at 0.5 competing for one remaining slot.
	scores := []float64{0.9, 0.5, 0.5, 0.5}
	w := InclusionWeights(scores, 2)
	if w[0] != 1 {
		t.Errorf("w[0] = %v", w[0])
	}
	for i := 1; i < 4; i++ {
		if math.Abs(w[i]-1.0/3.0) > eps {
			t.Errorf("w[%d] = %v, want 1/3", i, w[i])
		}
	}
}

func TestInclusionWeightsSumToK(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		scores := make([]float64, n)
		for i := range scores {
			// Few distinct values force ties.
			scores[i] = float64(rng.Intn(4))
		}
		k := 1 + rng.Intn(n)
		w := InclusionWeights(scores, k)
		sum := 0.0
		for _, x := range w {
			sum += x
		}
		return math.Abs(sum-float64(min(k, n))) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPerfectRankingAP(t *testing.T) {
	gt := []float64{0.9, 0.8, 0.7, 0.6, 0.5}
	if got := AveragePrecision(gt, gt, 3); math.Abs(got-1) > eps {
		t.Errorf("AP of identical ranking = %v, want 1", got)
	}
	// Any strictly monotone transform of the scores keeps AP = 1.
	ret := []float64{90, 80, 70, 60, 50}
	if got := AveragePrecision(gt, ret, 3); math.Abs(got-1) > eps {
		t.Errorf("AP of order-equal ranking = %v, want 1", got)
	}
}

func TestReversedRankingLow(t *testing.T) {
	n := 20
	gt := make([]float64, n)
	ret := make([]float64, n)
	for i := range gt {
		gt[i] = float64(n - i)
		ret[i] = float64(i)
	}
	ap := AveragePrecision(gt, ret, 10)
	if ap > 0.5 {
		t.Errorf("AP of reversed ranking = %v, want low", ap)
	}
}

func TestRandomAPBaseline(t *testing.T) {
	// The paper: random average precision for 25 answers ≈ 0.220.
	got := RandomAP(25, 10)
	if math.Abs(got-0.22) > 1e-9 {
		t.Errorf("RandomAP(25, 10) = %v, want 0.22", got)
	}
}

func TestAPBetweenRandomAndPerfect(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 11 + rng.Intn(20)
		gt := make([]float64, n)
		ret := make([]float64, n)
		for i := range gt {
			gt[i] = rng.Float64()
			ret[i] = rng.Float64()
		}
		ap := AveragePrecision(gt, ret, 10)
		return ap >= 0 && ap <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestMAPAndStddev(t *testing.T) {
	if got := MAP([]float64{0.2, 0.4, 0.6}); math.Abs(got-0.4) > eps {
		t.Errorf("MAP = %v", got)
	}
	if got := MAP(nil); got != 0 {
		t.Errorf("MAP(nil) = %v", got)
	}
	if got := Stddev([]float64{1, 1, 1}); got != 0 {
		t.Errorf("Stddev const = %v", got)
	}
	if got := Stddev([]float64{0, 2}); math.Abs(got-math.Sqrt(2)) > eps {
		t.Errorf("Stddev = %v", got)
	}
}

func TestPrecisionEdgeCases(t *testing.T) {
	if got := PrecisionAtK(nil, nil, 3); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := PrecisionAtK([]float64{1}, []float64{1}, 0); got != 0 {
		t.Errorf("k=0 = %v", got)
	}
	// k larger than n: everything is in both top-k sets.
	gt := []float64{0.5, 0.2}
	if got := PrecisionAtK(gt, gt, 5); math.Abs(got-2.0/5.0) > eps {
		t.Errorf("k>n = %v, want 0.4", got)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
