package rank

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKendallTauBasics(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	if got := KendallTau(a, a); math.Abs(got-1) > eps {
		t.Errorf("identical = %v, want 1", got)
	}
	rev := []float64{1, 2, 3, 4}
	if got := KendallTau(a, rev); math.Abs(got+1) > eps {
		t.Errorf("reversed = %v, want -1", got)
	}
	if got := KendallTau(a, []float64{5, 5, 5, 5}); got != 0 {
		t.Errorf("constant = %v, want 0", got)
	}
	if got := KendallTau(nil, nil); got != 0 {
		t.Errorf("empty = %v", got)
	}
	if got := KendallTau(a, a[:2]); got != 0 {
		t.Errorf("mismatched lengths = %v", got)
	}
}

func TestKendallTauKnownValue(t *testing.T) {
	// One discordant pair among 6: τ = (5 − 1)/6 = 2/3.
	a := []float64{4, 3, 2, 1}
	b := []float64{4, 3, 1, 2}
	if got := KendallTau(a, b); math.Abs(got-2.0/3.0) > eps {
		t.Errorf("τ = %v, want 2/3", got)
	}
}

func TestSpearmanBasics(t *testing.T) {
	a := []float64{4, 3, 2, 1}
	if got := SpearmanRho(a, a); math.Abs(got-1) > eps {
		t.Errorf("identical = %v", got)
	}
	rev := []float64{1, 2, 3, 4}
	if got := SpearmanRho(a, rev); math.Abs(got+1) > eps {
		t.Errorf("reversed = %v", got)
	}
	if got := SpearmanRho(a, []float64{7, 7, 7, 7}); got != 0 {
		t.Errorf("constant = %v", got)
	}
}

func TestAverageRanksTies(t *testing.T) {
	r := averageRanks([]float64{0.9, 0.5, 0.5, 0.1})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if math.Abs(r[i]-want[i]) > eps {
			t.Errorf("rank[%d] = %v, want %v", i, r[i], want[i])
		}
	}
}

// TestCorrelationBounds: both coefficients live in [-1, 1] and are
// invariant under strictly monotone transforms of either ranking.
func TestCorrelationBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = float64(rng.Intn(5))
			b[i] = rng.Float64()
		}
		tau := KendallTau(a, b)
		rho := SpearmanRho(a, b)
		if tau < -1-eps || tau > 1+eps || rho < -1-eps || rho > 1+eps {
			return false
		}
		// Monotone transform of a: same coefficients.
		a2 := make([]float64, n)
		for i := range a {
			a2[i] = a[i]*3 + 7
		}
		return math.Abs(KendallTau(a2, b)-tau) < 1e-9 && math.Abs(SpearmanRho(a2, b)-rho) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
