package rank

import (
	"math"
	"sort"
)

// KendallTau returns Kendall's τ-b rank correlation between two score
// vectors over the same answers (aligned by index), with the standard
// tie correction: τ-b = (C − D) / sqrt((n0 − n1)(n0 − n2)) where C/D
// count concordant/discordant pairs, n0 = n(n−1)/2, and n1, n2 the tie
// corrections of each ranking. Returns 0 when either ranking is
// constant. Complements MAP@10: MAP looks at the top of the ranking,
// τ-b at the whole permutation.
func KendallTau(a, b []float64) float64 {
	n := len(a)
	if n != len(b) || n < 2 {
		return 0
	}
	var concordant, discordant, tiesA, tiesB float64
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			da := a[i] - a[j]
			db := b[i] - b[j]
			switch {
			case da == 0 && db == 0:
				// Tied in both: contributes to neither.
			case da == 0:
				tiesA++
			case db == 0:
				tiesB++
			case (da > 0) == (db > 0):
				concordant++
			default:
				discordant++
			}
		}
	}
	n0 := float64(n*(n-1)) / 2
	denom := math.Sqrt((n0 - tiesA) * (n0 - tiesB))
	if denom == 0 {
		return 0
	}
	return (concordant - discordant) / denom
}

// SpearmanRho returns Spearman's rank correlation between two score
// vectors, using average ranks for ties (the Pearson correlation of the
// rank vectors). Returns 0 when either ranking is constant.
func SpearmanRho(a, b []float64) float64 {
	if len(a) != len(b) || len(a) < 2 {
		return 0
	}
	ra := averageRanks(a)
	rb := averageRanks(b)
	return pearson(ra, rb)
}

// averageRanks assigns ranks 1..n by descending score, giving tied
// scores the mean of their positions.
func averageRanks(scores []float64) []float64 {
	n := len(scores)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool { return scores[idx[i]] > scores[idx[j]] })
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j < n && scores[idx[j]] == scores[idx[i]] {
			j++
		}
		avg := float64(i+j+1) / 2 // mean of positions i+1..j
		for k := i; k < j; k++ {
			ranks[idx[k]] = avg
		}
		i = j
	}
	return ranks
}

func pearson(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}
