// Package rank implements the ranking-quality metrics of the paper's
// experiments (Section 5): average precision at 10 with analytic handling
// of tied scores (the method of McSherry & Najork), MAP over repeated
// experiments, and the random-ranking baseline.
//
// AP@10 is defined as (Σ_{k=1..10} P@k) / 10 where P@k is the fraction of
// the top-k answers according to the ground truth that also appear in the
// top k of the evaluated ranking. Ties — in either ranking — are treated
// as randomly ordered, and the metric computed in expectation: each
// answer receives an inclusion probability for the top k, and the
// expected overlap is the sum of products of inclusion probabilities.
package rank

import "math"

// InclusionWeights returns, for every answer, the probability that it
// lands in the top k when answers are ordered by descending score and
// ties are broken uniformly at random. Answers in tie groups entirely
// above the cut get weight 1, the group straddling the cut shares the
// remaining slots uniformly, everything below gets 0.
func InclusionWeights(scores []float64, k int) []float64 {
	n := len(scores)
	w := make([]float64, n)
	if k <= 0 {
		return w
	}
	if k >= n {
		for i := range w {
			w[i] = 1
		}
		return w
	}
	// Group by score value.
	type group struct {
		score float64
		idx   []int
	}
	byScore := map[float64][]int{}
	for i, s := range scores {
		byScore[s] = append(byScore[s], i)
	}
	groups := make([]group, 0, len(byScore))
	for s, idx := range byScore {
		groups = append(groups, group{s, idx})
	}
	// Sort groups by descending score.
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j].score > groups[j-1].score; j-- {
			groups[j], groups[j-1] = groups[j-1], groups[j]
		}
	}
	remaining := k
	for _, g := range groups {
		if remaining <= 0 {
			break
		}
		if len(g.idx) <= remaining {
			for _, i := range g.idx {
				w[i] = 1
			}
			remaining -= len(g.idx)
			continue
		}
		share := float64(remaining) / float64(len(g.idx))
		for _, i := range g.idx {
			w[i] = share
		}
		remaining = 0
	}
	return w
}

// PrecisionAtK returns the expected P@k of the ranking `ret` against the
// ground truth `gt` (two score slices over the same answers, aligned by
// index), with ties in both rankings randomized independently.
func PrecisionAtK(gt, ret []float64, k int) float64 {
	if k <= 0 || len(gt) == 0 {
		return 0
	}
	wg := InclusionWeights(gt, k)
	wr := InclusionWeights(ret, k)
	overlap := 0.0
	for i := range wg {
		overlap += wg[i] * wr[i]
	}
	return overlap / float64(k)
}

// AveragePrecision returns AP@K = (Σ_{k=1..K} P@k) / K.
func AveragePrecision(gt, ret []float64, K int) float64 {
	if K <= 0 {
		return 0
	}
	sum := 0.0
	for k := 1; k <= K; k++ {
		sum += PrecisionAtK(gt, ret, k)
	}
	return sum / float64(K)
}

// RandomAP returns the expected AP@K of a ranking in which all n answers
// are tied — the paper's "random average precision" baseline (≈ 0.220
// for n = 25, K = 10).
func RandomAP(n, K int) float64 {
	if n == 0 || K <= 0 {
		return 0
	}
	ret := make([]float64, n)
	gt := make([]float64, n)
	for i := range gt {
		gt[i] = float64(n - i)
	}
	return AveragePrecision(gt, ret, K)
}

// MAP returns the mean of the given AP values.
func MAP(aps []float64) float64 {
	if len(aps) == 0 {
		return 0
	}
	sum := 0.0
	for _, a := range aps {
		sum += a
	}
	return sum / float64(len(aps))
}

// Stddev returns the sample standard deviation of the values (0 for
// fewer than two values).
func Stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := MAP(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}
