package bench

import (
	"os"
	"strings"
)

// CPUModel best-effort reads the host CPU model string for the report
// header ("" when unavailable). Trajectory diffs across different
// hardware are noise; recording the CPU makes that visible.
func CPUModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), ":"))
		}
	}
	return ""
}
