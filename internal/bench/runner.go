package bench

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// RunConfig tunes one workload run.
type RunConfig struct {
	// BaseURL is the target server ("http://127.0.0.1:8080").
	BaseURL string
	// ReplicaURL, when set, receives requests tagged TargetReplica
	// (setup always goes to BaseURL — replicas refuse ingest). Empty
	// means no replica: tagged requests fall back to BaseURL.
	ReplicaURL string
	// Concurrency is the number of workers pulling from the request
	// stream (default 8).
	Concurrency int
	// Warmup runs the stream without recording (default 1s); Duration
	// is the timed window (default 5s).
	Warmup   time.Duration
	Duration time.Duration
	// Client overrides the HTTP client (tests inject httptest clients).
	Client *http.Client
	// Logf, when non-nil, receives progress lines (setup warnings,
	// per-phase notes).
	Logf func(format string, args ...any)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Concurrency <= 0 {
		c.Concurrency = 8
	}
	if c.Warmup <= 0 {
		c.Warmup = time.Second
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	return c
}

func (c RunConfig) logf(format string, args ...any) {
	if c.Logf != nil {
		c.Logf(format, args...)
	}
}

// statusError reports a non-2xx setup response.
type statusError struct {
	code int
	body string
}

func (e *statusError) Error() string {
	return fmt.Sprintf("status %d: %s", e.code, e.body)
}

// target picks the base URL a request routes to.
func (c RunConfig) target(r Request) string {
	if r.Target == TargetReplica && c.ReplicaURL != "" {
		return c.ReplicaURL
	}
	return c.BaseURL
}

// do issues one request, returning the HTTP status (0 on transport
// failure). The response body is drained so connections are reused.
func do(ctx context.Context, client *http.Client, base string, r Request) (int, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, base+r.Path, bytes.NewReader(r.Body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode, nil
}

// Setup issues the seed-data requests sequentially, failing fast on
// any error except a tolerated conflict (re-running against a store
// that already holds the bench relations).
func Setup(ctx context.Context, cfg RunConfig, reqs []Request) error {
	cfg = cfg.withDefaults()
	for i, r := range reqs {
		code, err := doSetup(ctx, cfg.Client, cfg.BaseURL, r)
		if err != nil {
			return fmt.Errorf("bench: setup request %d/%d: %w", i+1, len(reqs), err)
		}
		if code >= 300 {
			if r.TolerateConflict && code == http.StatusBadRequest {
				cfg.logf("setup request %d/%d returned %d (bench relations already exist; reusing them — durable re-runs accumulate no extra data, but numbers are only comparable against the same store state)", i+1, len(reqs), code)
				continue
			}
			return fmt.Errorf("bench: setup request %d/%d to %s failed with status %d", i+1, len(reqs), r.Path, code)
		}
	}
	return nil
}

// doSetup is do, but keeps a snippet of the error body for diagnosis.
func doSetup(ctx context.Context, client *http.Client, base string, r Request) (int, error) {
	req, err := http.NewRequestWithContext(ctx, r.Method, base+r.Path, bytes.NewReader(r.Body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 && resp.StatusCode != http.StatusBadRequest {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return resp.StatusCode, &statusError{code: resp.StatusCode, body: string(body)}
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// WaitConverged polls the primary's and the replica's /healthz until
// the replica reports the same (version, fingerprint) — the pinned
// snapshot the primary served when polling began, not a moving target,
// so a concurrent writer cannot starve the wait. Called between Setup
// and the timed window of a replica workload: the first replica reads
// must not race the seed-data shipping (an unknown BenchR1 would be a
// query error, not staleness).
func WaitConverged(ctx context.Context, cfg RunConfig) error {
	cfg = cfg.withDefaults()
	if cfg.ReplicaURL == "" {
		return nil
	}
	type health struct {
		Version     uint64 `json:"version"`
		Fingerprint string `json:"fingerprint"`
	}
	get := func(base string) (health, error) {
		var h health
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
		if err != nil {
			return h, err
		}
		resp, err := cfg.Client.Do(req)
		if err != nil {
			return h, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return h, fmt.Errorf("healthz status %d", resp.StatusCode)
		}
		return h, json.NewDecoder(resp.Body).Decode(&h)
	}
	want, err := get(cfg.BaseURL)
	if err != nil {
		return fmt.Errorf("bench: primary healthz: %w", err)
	}
	// An unreachable replica fails fast instead of burning the whole
	// wait budget: if it never answers a single healthz within the
	// grace window, the address is wrong or the process is down, and no
	// amount of waiting converges it.
	const unreachableGrace = 3 * time.Second
	begin := time.Now()
	everAnswered := false
	for {
		got, err := get(cfg.ReplicaURL)
		if err == nil {
			everAnswered = true
			if got.Version >= want.Version && (got.Version > want.Version || got.Fingerprint == want.Fingerprint) {
				return nil
			}
		} else if !everAnswered && time.Since(begin) > unreachableGrace {
			return fmt.Errorf("bench: replica at %s is unreachable (no /healthz answer in %s): %w", cfg.ReplicaURL, unreachableGrace, err)
		}
		select {
		case <-ctx.Done():
			if err == nil {
				err = fmt.Errorf("replica at (%d, %s), want (%d, %s)", got.Version, got.Fingerprint, want.Version, want.Fingerprint)
			}
			return fmt.Errorf("bench: replica never converged: %w (last: %v)", ctx.Err(), err)
		case <-time.After(25 * time.Millisecond):
		}
	}
}

// workerStats is one worker's private tally, merged after the run so
// the hot loop takes no locks.
type workerStats struct {
	hist   Histogram
	status map[string]int64
	ops    int64
	errors int64
}

// Run drives one workload: warmup (unrecorded) then a timed window at
// cfg.Concurrency, all workers pulling indices from one atomic counter
// so the request stream stays deterministic regardless of scheduling.
// Context cancellation stops the run early; whatever was recorded so
// far is returned.
func Run(ctx context.Context, cfg RunConfig, wl Workload) (WorkloadResult, error) {
	cfg = cfg.withDefaults()
	var next atomic.Int64

	phase := func(d time.Duration, record bool) ([]*workerStats, time.Duration, error) {
		phaseCtx, cancel := context.WithTimeout(ctx, d)
		defer cancel()
		stats := make([]*workerStats, cfg.Concurrency)
		var wg sync.WaitGroup
		begin := time.Now()
		for w := 0; w < cfg.Concurrency; w++ {
			ws := &workerStats{status: make(map[string]int64)}
			stats[w] = ws
			wg.Add(1)
			go func() {
				defer wg.Done()
				for phaseCtx.Err() == nil {
					i := next.Add(1) - 1
					req := wl.Next(i)
					t0 := time.Now()
					code, err := do(phaseCtx, cfg.Client, cfg.target(req), req)
					elapsed := time.Since(t0)
					if phaseCtx.Err() != nil && code == 0 {
						// The phase deadline cut this request off
						// mid-flight; it belongs to no window.
						return
					}
					if !record {
						continue
					}
					ws.ops++
					ws.hist.Add(elapsed)
					if err != nil || code == 0 {
						ws.errors++
						ws.status["error"]++
						continue
					}
					ws.status[strconv.Itoa(code)]++
					if code < 200 || code >= 300 {
						ws.errors++
					}
				}
			}()
		}
		wg.Wait()
		return stats, time.Since(begin), nil
	}

	cfg.logf("workload %s: warmup %s at concurrency %d", wl.Name, cfg.Warmup, cfg.Concurrency)
	if _, _, err := phase(cfg.Warmup, false); err != nil {
		return WorkloadResult{}, err
	}
	if err := ctx.Err(); err != nil {
		return WorkloadResult{}, err
	}
	cfg.logf("workload %s: timed run %s", wl.Name, cfg.Duration)
	stats, elapsed, err := phase(cfg.Duration, true)
	if err != nil {
		return WorkloadResult{}, err
	}

	res := WorkloadResult{
		Name:        wl.Name,
		Concurrency: cfg.Concurrency,
		DurationMS:  float64(elapsed.Microseconds()) / 1000,
		Status:      make(map[string]int64),
	}
	var hist Histogram
	for _, ws := range stats {
		res.Ops += ws.ops
		res.Errors += ws.errors
		hist.Merge(&ws.hist)
		for k, v := range ws.status {
			res.Status[k] += v
		}
	}
	if elapsed > 0 {
		res.OpsPerSec = float64(res.Ops) / elapsed.Seconds()
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	res.P50MS = ms(hist.Quantile(0.50))
	res.P95MS = ms(hist.Quantile(0.95))
	res.P99MS = ms(hist.Quantile(0.99))
	res.MaxMS = ms(hist.Max())
	return res, nil
}

// Thresholds are the loose gates a smoke run enforces: high enough
// that scheduler noise cannot trip them, low enough that an
// error-rate or gross latency blowup fails CI.
type Thresholds struct {
	// MaxErrorRate fails the run when Errors/Ops exceeds it (0 disables).
	MaxErrorRate float64
	// MaxP99 fails the run when the p99 latency exceeds it (0 disables).
	MaxP99 time.Duration
	// MinOps fails the run when fewer requests completed (0 disables) —
	// a server that hangs would otherwise pass with zero traffic.
	MinOps int64
}

// Check validates one workload result against the thresholds.
func (t Thresholds) Check(w WorkloadResult) error {
	if t.MinOps > 0 && w.Ops < t.MinOps {
		return fmt.Errorf("bench: workload %s completed %d ops, below the %d minimum", w.Name, w.Ops, t.MinOps)
	}
	if t.MaxErrorRate > 0 && w.ErrorRate() > t.MaxErrorRate {
		return fmt.Errorf("bench: workload %s error rate %.4f (%d/%d) exceeds %.4f (status: %v)",
			w.Name, w.ErrorRate(), w.Errors, w.Ops, t.MaxErrorRate, w.Status)
	}
	if t.MaxP99 > 0 && w.P99MS > float64(t.MaxP99.Microseconds())/1000 {
		return fmt.Errorf("bench: workload %s p99 %.1fms exceeds %s", w.Name, w.P99MS, t.MaxP99)
	}
	return nil
}
