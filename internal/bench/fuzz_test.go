package bench

import (
	"math"
	"testing"
	"time"
)

// FuzzQuantile drives the quantile math with arbitrary sample sets and
// probabilities, checking the invariants every BENCH comparison leans
// on: results lie within [min, max], are monotone in q, and an
// all-equal histogram answers that value for every q.
func FuzzQuantile(f *testing.F) {
	f.Add(int64(1), uint8(3), float64(0.5), float64(0.99))
	f.Add(int64(7), uint8(0), float64(0), float64(1))
	f.Add(int64(9), uint8(200), float64(0.95), float64(0.5))
	f.Add(int64(-3), uint8(1), float64(-1), float64(2))
	f.Fuzz(func(t *testing.T, seed int64, n uint8, q1, q2 float64) {
		if math.IsNaN(q1) || math.IsNaN(q2) {
			t.Skip()
		}
		var h Histogram
		// Deterministic pseudo-random samples from the fuzzed seed; the
		// splitmix-style mixer is the same one the workload streams use.
		var min, max time.Duration
		for i := 0; i < int(n); i++ {
			d := time.Duration(uint64(mix(seed, int64(i))) % uint64(10*time.Second))
			if i == 0 || d < min {
				min = d
			}
			if i == 0 || d > max {
				max = d
			}
			h.Add(d)
		}
		v1, v2 := h.Quantile(q1), h.Quantile(q2)
		if n == 0 {
			if v1 != 0 || v2 != 0 {
				t.Fatalf("empty histogram returned %v, %v", v1, v2)
			}
			return
		}
		for _, v := range []time.Duration{v1, v2} {
			if v < min || v > max {
				t.Fatalf("quantile %v outside sample range [%v, %v]", v, min, max)
			}
		}
		// Monotonicity in q (after clamping).
		lo, hi := q1, q2
		if lo > hi {
			lo, hi = hi, lo
		}
		if h.Quantile(lo) > h.Quantile(hi) {
			t.Fatalf("quantile not monotone: Q(%g)=%v > Q(%g)=%v", lo, h.Quantile(lo), hi, h.Quantile(hi))
		}
		if h.Quantile(0) != min || h.Quantile(1) != max {
			t.Fatalf("Q(0)=%v Q(1)=%v, want min %v max %v", h.Quantile(0), h.Quantile(1), min, max)
		}
	})
}
