// Package bench is the standing load harness: deterministic seeded
// workload generators over the paper's chain/star/TPC-H shapes, a
// warmup→timed concurrent runner that drives a live lapushd over HTTP,
// latency histograms with exact quantile semantics, and the versioned
// BENCH_<rev>.json schema in which the repository's perf trajectory
// accumulates across PRs.
//
// The same Report schema carries both kinds of measurements:
//
//   - "benchmarks": testing.B micro-benchmarks (BenchmarkAnytime writes
//     its entries here when BENCH_JSON is set), one MicroResult per
//     sub-benchmark with per-invocation ns/op runs and free-form
//     metrics; and
//   - "workloads": cmd/loadgen load runs, one WorkloadResult per
//     workload mix with ops, per-HTTP-status error counts, and
//     p50/p95/p99 latencies.
//
// Keeping both in one machine-diffable file per revision lets any PR
// prove a speedup (or catch a regression) by comparing two BENCH files.
package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// SchemaVersion identifies the BENCH_<rev>.json layout. Bump it on any
// incompatible change so trajectory tooling can refuse mixed diffs.
// Version 1 was the bespoke hand-written BenchmarkAnytime format;
// version 2 is the shared schema of this package.
const SchemaVersion = 2

// Report is the top-level BENCH_<rev>.json document.
type Report struct {
	SchemaVersion int    `json:"schema_version"`
	Rev           string `json:"rev"`
	Date          string `json:"date"`
	Go            string `json:"go"`
	CPU           string `json:"cpu,omitempty"`
	// Notes describes the generating configuration (workload seeds,
	// scales, flags) in prose, for humans reading the trajectory.
	Notes string `json:"notes,omitempty"`
	// Benchmarks holds testing.B results; Workloads holds load-harness
	// results. Either may be empty; merging keeps the other section.
	Benchmarks []MicroResult    `json:"benchmarks,omitempty"`
	Workloads  []WorkloadResult `json:"workloads,omitempty"`
}

// MicroResult is one testing.B (sub-)benchmark's measurement.
type MicroResult struct {
	// Name is the full benchmark path, e.g. "BenchmarkAnytime/eps=0.05".
	Name string `json:"name"`
	// NsPerOpMin is the minimum ns/op across runs — the value to diff
	// between revisions (minimum, not mean, to shed scheduler noise).
	NsPerOpMin int64 `json:"ns_per_op_min"`
	// NsPerOpRuns records every invocation's ns/op, so a future reader
	// can judge the spread behind the minimum.
	NsPerOpRuns []int64 `json:"ns_per_op_runs,omitempty"`
	// Metrics carries the benchmark's extra ReportMetric-style values
	// (mc_samples, plans_evaluated, achieved_width, ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// AddRun records one invocation's ns/op, maintaining the minimum.
func (m *MicroResult) AddRun(nsPerOp int64) {
	m.NsPerOpRuns = append(m.NsPerOpRuns, nsPerOp)
	if m.NsPerOpMin == 0 || nsPerOp < m.NsPerOpMin {
		m.NsPerOpMin = nsPerOp
	}
}

// WorkloadResult is one load-harness workload mix's measurement.
type WorkloadResult struct {
	Name        string `json:"name"`
	Concurrency int    `json:"concurrency"`
	// DurationMS is the timed window's wall-clock length (warmup
	// excluded).
	DurationMS float64 `json:"duration_ms"`
	// Ops counts requests completed inside the timed window; Errors is
	// the subset that returned a non-2xx status or failed at the
	// transport layer.
	Ops    int64 `json:"ops"`
	Errors int64 `json:"errors"`
	// Status counts completed requests by HTTP status code ("200",
	// "422", "429", "503", ...). Transport-layer failures count under
	// "error".
	Status    map[string]int64 `json:"status"`
	OpsPerSec float64          `json:"ops_per_sec"`
	// Latency quantiles over the timed window, in milliseconds.
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
	MaxMS float64 `json:"max_ms"`
	// Metrics carries workload-specific extra measurements (the failover
	// workload's write_gap_ms / read_gap_ms availability gaps, for
	// example), mirroring MicroResult.Metrics.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// ErrorRate is Errors/Ops (0 for an empty run).
func (w WorkloadResult) ErrorRate() float64 {
	if w.Ops == 0 {
		return 0
	}
	return float64(w.Errors) / float64(w.Ops)
}

// ReadFile loads a Report, rejecting unknown schema versions: diffing
// measurements across incompatible layouts would silently lie.
func ReadFile(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	if r.SchemaVersion != SchemaVersion {
		return nil, fmt.Errorf("bench: %s has schema_version %d, this build reads %d", path, r.SchemaVersion, SchemaVersion)
	}
	return &r, nil
}

// WriteFile writes the report as indented JSON via a same-directory
// temp file and rename, so a crash mid-write never corrupts an
// existing trajectory entry.
func (r *Report) WriteFile(path string) error {
	r.SchemaVersion = SchemaVersion
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".bench-*.json")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, path)
}

// UpdateFile reads path if it exists (creating a fresh Report
// otherwise), applies fn, and writes the result back. It lets the
// micro-benchmarks and the load harness accumulate into one
// BENCH_<rev>.json without clobbering each other's section.
func UpdateFile(path string, fn func(*Report)) error {
	r, err := ReadFile(path)
	if os.IsNotExist(err) {
		r = &Report{SchemaVersion: SchemaVersion}
	} else if err != nil {
		return err
	}
	fn(r)
	return r.WriteFile(path)
}

// ReplaceWorkload inserts w, replacing any existing entry of the same
// name (re-runs of one mix update in place; other mixes survive).
func (r *Report) ReplaceWorkload(w WorkloadResult) {
	for i := range r.Workloads {
		if r.Workloads[i].Name == w.Name {
			r.Workloads[i] = w
			return
		}
	}
	r.Workloads = append(r.Workloads, w)
}

// ReplaceBenchmark inserts m, replacing any same-named entry.
func (r *Report) ReplaceBenchmark(m MicroResult) {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == m.Name {
			r.Benchmarks[i] = m
			return
		}
	}
	r.Benchmarks = append(r.Benchmarks, m)
}
