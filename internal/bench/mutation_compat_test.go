package bench

import (
	"encoding/json"
	"testing"

	"lapushdb/internal/store"
)

// The local mutation type mirrors store.Mutation's wire shape instead
// of importing it (internal/store imports lapushdb, and this package
// must stay importable from lapushdb's in-package benchmarks). The
// test binary is outside that cycle, so it pins the two declarations
// to the same JSON — if store.Mutation's wire contract drifts, this
// fails instead of the harness silently sending rejected requests.
func TestMutationWireCompat(t *testing.T) {
	if opCreateRelation != store.OpCreateRelation ||
		opInsert != store.OpInsert ||
		opSetProb != store.OpSetProb ||
		opDelete != store.OpDelete {
		t.Fatalf("op name constants drifted from internal/store: %q %q %q %q vs %q %q %q %q",
			opCreateRelation, opInsert, opSetProb, opDelete,
			store.OpCreateRelation, store.OpInsert, store.OpSetProb, store.OpDelete)
	}

	p := 0.25
	cases := []struct {
		name  string
		local mutation
	}{
		{"create_relation", mutation{Op: opCreateRelation, Rel: "R", Cols: []string{"a", "b"}}},
		{"insert", mutation{Op: opInsert, Rel: "R", Tuple: []string{"1", "x"}, P: &p}},
		{"set_prob", mutation{Op: opSetProb, Rel: "R", Tuple: []string{"1", "x"}, P: &p}},
		{"delete", mutation{Op: opDelete, Rel: "R", Tuple: []string{"1", "x"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := json.Marshal(tc.local)
			if err != nil {
				t.Fatal(err)
			}
			var m store.Mutation
			if err := json.Unmarshal(got, &m); err != nil {
				t.Fatalf("store.Mutation rejects local mutation JSON %s: %v", got, err)
			}
			want, err := json.Marshal(m)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Fatalf("wire drift for %s:\nlocal: %s\nstore: %s", tc.name, got, want)
			}
		})
	}
}
