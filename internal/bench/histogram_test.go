package bench

import (
	"math/rand"
	"testing"
	"time"
)

// TestQuantileGolden pins the quantile definition with hand-computed
// values: rank interpolation at q·(n−1). Future before/after
// comparisons of BENCH files are only trustworthy if this math never
// silently changes.
func TestQuantileGolden(t *testing.T) {
	ms := func(f float64) time.Duration { return time.Duration(f * float64(time.Millisecond)) }
	cases := []struct {
		name    string
		samples []time.Duration
		q       float64
		want    time.Duration
	}{
		{"empty/p50", nil, 0.50, 0},
		{"empty/p99", nil, 0.99, 0},
		{"single/p0", []time.Duration{ms(10)}, 0, ms(10)},
		{"single/p50", []time.Duration{ms(10)}, 0.50, ms(10)},
		{"single/p99", []time.Duration{ms(10)}, 0.99, ms(10)},
		{"single/p100", []time.Duration{ms(10)}, 1, ms(10)},
		{"pair/p50", []time.Duration{ms(1), ms(2)}, 0.50, ms(1.5)},
		{"pair/p0", []time.Duration{ms(2), ms(1)}, 0, ms(1)},
		{"pair/p100", []time.Duration{ms(2), ms(1)}, 1, ms(2)},
		// 1..5ms: p50 at rank 0.5*4=2 → exactly 3ms; p75 at rank 3 → 4ms;
		// p90 at rank 3.6 → 4ms + 0.6·1ms.
		{"five/p50", []time.Duration{ms(5), ms(3), ms(1), ms(4), ms(2)}, 0.50, ms(3)},
		{"five/p75", []time.Duration{ms(5), ms(3), ms(1), ms(4), ms(2)}, 0.75, ms(4)},
		{"five/p90", []time.Duration{ms(5), ms(3), ms(1), ms(4), ms(2)}, 0.90, ms(4.6)},
		// Tie-heavy: [1, 1, 1, 1, 9]. p50 rank 2 → 1ms; p75 rank 3 → 1ms;
		// p90 rank 3.6 → 1ms + 0.6·8ms = 5.8ms.
		{"ties/p50", []time.Duration{ms(1), ms(1), ms(1), ms(1), ms(9)}, 0.50, ms(1)},
		{"ties/p75", []time.Duration{ms(9), ms(1), ms(1), ms(1), ms(1)}, 0.75, ms(1)},
		{"ties/p90", []time.Duration{ms(1), ms(9), ms(1), ms(1), ms(1)}, 0.90, ms(5.8)},
		// All identical: every quantile is the sample.
		{"const/p01", []time.Duration{ms(7), ms(7), ms(7)}, 0.01, ms(7)},
		{"const/p99", []time.Duration{ms(7), ms(7), ms(7)}, 0.99, ms(7)},
		// Clamping.
		{"clamp/neg", []time.Duration{ms(1), ms(2)}, -0.5, ms(1)},
		{"clamp/above", []time.Duration{ms(1), ms(2)}, 1.5, ms(2)},
		// 1..100ms: p50 at rank 49.5 → 50.5ms; p95 at 94.05 → 95.05ms;
		// p99 at 98.01 → 99.01ms.
		{"hundred/p50", nil, 0.50, ms(50.5)},
		{"hundred/p95", nil, 0.95, ms(95.05)},
		{"hundred/p99", nil, 0.99, ms(99.01)},
	}
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = ms(float64(i + 1))
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var h Histogram
			samples := tc.samples
			if len(samples) == 0 && tc.name[:7] == "hundred" {
				samples = hundred
			}
			for _, s := range samples {
				h.Add(s)
			}
			if got := h.Quantile(tc.q); got != tc.want {
				t.Fatalf("Quantile(%g) over %v = %v, want %v", tc.q, samples, got, tc.want)
			}
		})
	}
}

// TestHistogramMerge checks that merging per-worker histograms yields
// the same quantiles as one histogram fed everything, and that Add
// after Quantile (resorting) stays correct.
func TestHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var all, a, b Histogram
	for i := 0; i < 1000; i++ {
		d := time.Duration(rng.Intn(1_000_000))
		all.Add(d)
		if i%2 == 0 {
			a.Add(d)
		} else {
			b.Add(d)
		}
	}
	// Interleave a Quantile call to exercise re-sorting on later Adds.
	_ = a.Quantile(0.5)
	a.Merge(&b)
	if a.Len() != all.Len() {
		t.Fatalf("merged %d samples, want %d", a.Len(), all.Len())
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
		if got, want := a.Quantile(q), all.Quantile(q); got != want {
			t.Fatalf("Quantile(%g): merged %v vs direct %v", q, got, want)
		}
	}
	if a.Max() != all.Max() {
		t.Fatalf("Max: merged %v vs direct %v", a.Max(), all.Max())
	}
}

// TestHistogramAddAfterQuantile guards the sorted-flag bookkeeping: a
// sample added after a quantile query must still be seen.
func TestHistogramAddAfterQuantile(t *testing.T) {
	var h Histogram
	h.Add(5 * time.Millisecond)
	if got := h.Quantile(1); got != 5*time.Millisecond {
		t.Fatalf("max %v", got)
	}
	h.Add(9 * time.Millisecond)
	if got := h.Quantile(1); got != 9*time.Millisecond {
		t.Fatalf("max after late add %v, want 9ms", got)
	}
	if got := h.Quantile(0); got != 5*time.Millisecond {
		t.Fatalf("min after late add %v, want 5ms", got)
	}
}
