package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strconv"
	"strings"

	"lapushdb/internal/workload"
)

// Request is one HTTP request of a workload stream: everything the
// runner needs to issue it, and nothing runtime-dependent, so a stream
// is a pure function of (config, index) and two generations with the
// same seed are byte-identical.
type Request struct {
	Method string
	Path   string
	Body   []byte
	// TolerateConflict marks setup requests that may fail with 400
	// against a server that already holds the bench relations (re-runs
	// against the same durable store). The runner downgrades such
	// failures to a warning instead of aborting.
	TolerateConflict bool
	// Target selects which server of a primary+replica deployment the
	// request goes to: "" means the primary (RunConfig.BaseURL),
	// TargetReplica means RunConfig.ReplicaURL. A runner with no
	// replica configured sends everything to the primary, so replica
	// mixes still run (as a pure primary workload) in single-node
	// setups.
	Target string
}

// TargetReplica routes a Request to RunConfig.ReplicaURL.
const TargetReplica = "replica"

// Workload is one named request mix. Setup is issued sequentially
// before the timed run (shared across mixes — see SetupRequests);
// Next(i) is the i-th request of the infinite workload stream,
// deterministic in i alone so concurrent workers can pull indices from
// an atomic counter without losing reproducibility.
type Workload struct {
	Name string
	Next func(i int64) Request
}

// Config sizes the generated dataset and seeds every stream. The zero
// value selects smoke-test-sized defaults: large enough that chain
// dissociation, TPC-H LIKE scans, and the Boolean star lineage all do
// real work, small enough that `make bench-smoke` finishes in seconds.
type Config struct {
	Seed int64
	// ChainN tuples per chain relation, values drawn from [0, ChainDomain).
	ChainN, ChainDomain int
	// StarN tuples per star relation, values drawn from [0, StarDomain).
	StarN, StarDomain int
	// Suppliers and Parts size the TPC-H shape (Partsupp gets 2 tuples
	// per part).
	Suppliers, Parts int
	// PiMax bounds tuple probabilities (uniform in [0, PiMax]).
	PiMax float64
	// IngestBatch is the number of mutations per setup ingest request.
	IngestBatch int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.ChainN <= 0 {
		c.ChainN = 300
	}
	if c.ChainDomain <= 0 {
		c.ChainDomain = 80
	}
	if c.StarN <= 0 {
		c.StarN = 150
	}
	if c.StarDomain <= 0 {
		c.StarDomain = 40
	}
	if c.Suppliers <= 0 {
		c.Suppliers = 100
	}
	if c.Parts <= 0 {
		c.Parts = 300
	}
	if c.PiMax <= 0 {
		c.PiMax = 0.5
	}
	if c.IngestBatch <= 0 {
		c.IngestBatch = 256
	}
	return c
}

// The bench relations are namespaced so a loadgen run against a live
// server can never collide with application relations.
const (
	chainFullQuery   = "q(x0, x3) :- BenchR1(x0, x1), BenchR2(x1, x2), BenchR3(x2, x3)"
	chainPrefixQuery = "q(x0, x2) :- BenchR1(x0, x1), BenchR2(x1, x2)"
	chainSuffixQuery = "q(x1, x3) :- BenchR2(x1, x2), BenchR3(x2, x3)"
	starQuery        = "q() :- BenchS1('hub', x1), BenchS2(x2), BenchS0(x1, x2)"
)

func (c Config) tpchQuery(pattern string) string {
	return fmt.Sprintf("q(a) :- BenchSupplier(s, a), BenchPartsupp(s, u), BenchPart(u, n), s <= %d, n like '%s'",
		c.Suppliers/2, pattern)
}

// mix derives a per-index RNG seed from the config seed, splitmix64
// style, so streams are deterministic in (seed, i) and adjacent
// indices decorrelate.
func mix(seed, i int64) int64 {
	z := uint64(seed) ^ 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4b38b
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

func rng(seed, i int64) *rand.Rand { return rand.New(rand.NewSource(mix(seed, i))) }

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("bench: marshal request: %v", err))
	}
	return b
}

// Request-body shapes mirroring the server's JSON API. Kept local so
// the harness measures the wire contract, not shared Go structs.
type queryBody struct {
	Query       string   `json:"query"`
	Method      string   `json:"method,omitempty"`
	Top         int      `json:"top,omitempty"`
	Parallelism int      `json:"parallelism,omitempty"`
	Samples     int      `json:"samples,omitempty"`
	Seed        int64    `json:"seed,omitempty"`
	Epsilon     *float64 `json:"epsilon,omitempty"`
}

type batchQueryBody struct {
	Query string `json:"query"`
	Top   int    `json:"top,omitempty"`
}

type batchBody struct {
	Queries []batchQueryBody `json:"queries"`
	Method  string           `json:"method,omitempty"`
}

// mutation mirrors store.Mutation's wire shape. It is redeclared here
// rather than imported because this package must stay importable from
// lapushdb's own in-package benchmarks (internal/store imports
// lapushdb, so importing it here would close a cycle); a test pins the
// JSON compatibility of the two declarations.
type mutation struct {
	Op    string   `json:"op"`
	Rel   string   `json:"rel,omitempty"`
	Cols  []string `json:"cols,omitempty"`
	Tuple []string `json:"tuple,omitempty"`
	P     *float64 `json:"p,omitempty"`
}

// Mutation op names, as internal/store defines them.
const (
	opCreateRelation = "create_relation"
	opInsert         = "insert"
	opSetProb        = "set_prob"
	opDelete         = "delete"
)

type ingestBody struct {
	Mutations []mutation `json:"mutations"`
}

func queryReq(body queryBody) Request {
	return Request{Method: "POST", Path: "/v1/query", Body: mustJSON(body)}
}

func ingestReq(muts []mutation, tolerate bool) Request {
	return Request{Method: "POST", Path: "/v1/ingest", Body: mustJSON(ingestBody{Mutations: muts}), TolerateConflict: tolerate}
}

func fprob(r *rand.Rand, piMax float64) *float64 {
	p := r.Float64() * piMax
	return &p
}

// SetupRequests is the deterministic seed-data stream: create the
// bench relations, then bulk-insert the chain, star, and TPC-H shapes
// in IngestBatch-sized ingest batches. Issued once per server, before
// any workload; every workload mix queries this one dataset.
func SetupRequests(c Config) []Request {
	c = c.WithDefaults()
	r := rng(c.Seed, -1)

	creates := []mutation{
		{Op: opCreateRelation, Rel: "BenchR1", Cols: []string{"x0", "x1"}},
		{Op: opCreateRelation, Rel: "BenchR2", Cols: []string{"x1", "x2"}},
		{Op: opCreateRelation, Rel: "BenchR3", Cols: []string{"x2", "x3"}},
		{Op: opCreateRelation, Rel: "BenchS1", Cols: []string{"c", "x1"}},
		{Op: opCreateRelation, Rel: "BenchS2", Cols: []string{"x2"}},
		{Op: opCreateRelation, Rel: "BenchS0", Cols: []string{"x1", "x2"}},
		{Op: opCreateRelation, Rel: "BenchSupplier", Cols: []string{"s", "a"}},
		{Op: opCreateRelation, Rel: "BenchPartsupp", Cols: []string{"s", "u"}},
		{Op: opCreateRelation, Rel: "BenchPart", Cols: []string{"u", "n"}},
	}
	reqs := []Request{ingestReq(creates, true)}

	var muts []mutation
	add := func(rel string, tuple []string, p float64) {
		muts = append(muts, mutation{Op: opInsert, Rel: rel, Tuple: tuple, P: &p})
	}
	// Chain: R1(x0, x1), R2(x1, x2), R3(x2, x3).
	for i := 1; i <= 3; i++ {
		rel := fmt.Sprintf("BenchR%d", i)
		for t := 0; t < c.ChainN; t++ {
			add(rel, []string{strconv.Itoa(r.Intn(c.ChainDomain)), strconv.Itoa(r.Intn(c.ChainDomain))}, r.Float64()*c.PiMax)
		}
	}
	// Star: S1('hub', x1), S2(x2), hub S0(x1, x2).
	for t := 0; t < c.StarN; t++ {
		add("BenchS1", []string{"hub", strconv.Itoa(r.Intn(c.StarDomain))}, r.Float64()*c.PiMax)
		add("BenchS2", []string{strconv.Itoa(r.Intn(c.StarDomain))}, r.Float64()*c.PiMax)
		add("BenchS0", []string{strconv.Itoa(r.Intn(c.StarDomain)), strconv.Itoa(r.Intn(c.StarDomain))}, r.Float64()*c.PiMax)
	}
	// TPC-H shape: Supplier(s, a), Partsupp(s, u), Part(u, n) with
	// color-word part names so the LIKE patterns hit with realistic
	// selectivities.
	for s := 1; s <= c.Suppliers; s++ {
		add("BenchSupplier", []string{strconv.Itoa(s), "a" + strconv.Itoa(r.Intn(workload.Nations))}, r.Float64()*c.PiMax)
	}
	for u := 1; u <= c.Parts; u++ {
		words := make([]string, 3)
		for i := range words {
			words[i] = workload.Colors[r.Intn(len(workload.Colors))]
		}
		add("BenchPart", []string{strconv.Itoa(u), strings.Join(words, " ")}, r.Float64()*c.PiMax)
		for i := 0; i < 2; i++ {
			s := 1 + (u+i*(c.Suppliers/2+1))%c.Suppliers
			add("BenchPartsupp", []string{strconv.Itoa(s), strconv.Itoa(u)}, r.Float64()*c.PiMax)
		}
	}
	for start := 0; start < len(muts); start += c.IngestBatch {
		end := start + c.IngestBatch
		if end > len(muts) {
			end = len(muts)
		}
		reqs = append(reqs, ingestReq(muts[start:end], false))
	}
	return reqs
}

// WorkloadNames lists the available mixes in canonical order.
func WorkloadNames() []string {
	return []string{"point", "anytime", "batch", "ingest", "replica_read"}
}

// ByName builds the named workload mix over the dataset of
// SetupRequests(c).
func ByName(c Config, name string) (Workload, error) {
	c = c.WithDefaults()
	switch name {
	case "point":
		return pointWorkload(c), nil
	case "anytime":
		return anytimeWorkload(c), nil
	case "batch":
		return batchWorkload(c), nil
	case "ingest":
		return ingestWorkload(c), nil
	case "replica_read":
		return replicaReadWorkload(c), nil
	default:
		return Workload{}, fmt.Errorf("bench: unknown workload %q (have %s)", name, strings.Join(WorkloadNames(), ", "))
	}
}

// pointWorkload issues single /v1/query ranks over all three dataset
// shapes: unsafe chain dissociations, the Boolean star query, and the
// TPC-H LIKE scans, with a scatter of top-k cutoffs and per-request
// parallelism overrides.
func pointWorkload(c Config) Workload {
	pool := []string{
		chainFullQuery,
		chainPrefixQuery,
		chainSuffixQuery,
		starQuery,
		c.tpchQuery("%red%"),
		c.tpchQuery("%red%green%"),
	}
	tops := []int{0, 0, 10, 5}
	return Workload{
		Name: "point",
		Next: func(i int64) Request {
			r := rng(c.Seed, i)
			body := queryBody{
				Query:  pool[r.Intn(len(pool))],
				Method: "diss",
				Top:    tops[r.Intn(len(tops))],
			}
			if r.Intn(4) == 0 {
				body.Parallelism = 2
			}
			return queryReq(body)
		},
	}
}

// anytimeWorkload issues epsilon-bounded /v1/query requests: the
// answers come back as [lower, upper] intervals refined to the target
// width. Seeds cycle through a small pool so the width-tagged result
// cache sees both hits and misses; the samples cap keeps the Monte
// Carlo stage's tail bounded.
func anytimeWorkload(c Config) Workload {
	epsilons := []float64{0.2, 0.1, 0.05}
	pool := []string{chainFullQuery, chainPrefixQuery, chainSuffixQuery}
	return Workload{
		Name: "anytime",
		Next: func(i int64) Request {
			r := rng(c.Seed, i)
			eps := epsilons[r.Intn(len(epsilons))]
			return queryReq(queryBody{
				Query:   pool[r.Intn(len(pool))],
				Method:  "diss",
				Epsilon: &eps,
				Seed:    int64(1 + r.Intn(8)),
				Samples: 4096,
			})
		},
	}
}

// batchWorkload issues /v1/rank_batch requests of overlapping chain
// queries plus a TPC-H member, so cross-query subplan sharing (Opt2
// across the batch) has real overlap to exploit.
func batchWorkload(c Config) Workload {
	pool := []string{chainFullQuery, chainPrefixQuery, chainSuffixQuery, c.tpchQuery("%red%")}
	return Workload{
		Name: "batch",
		Next: func(i int64) Request {
			r := rng(c.Seed, i)
			n := 3 + r.Intn(3)
			queries := make([]batchQueryBody, n)
			for j := range queries {
				queries[j] = batchQueryBody{Query: pool[r.Intn(len(pool))]}
				if r.Intn(3) == 0 {
					queries[j].Top = 10
				}
			}
			return Request{Method: "POST", Path: "/v1/rank_batch",
				Body: mustJSON(batchBody{Queries: queries, Method: "diss"})}
		},
	}
}

// ingestWorkload interleaves mutation batches with point reads
// (roughly 1:3): each ingest request atomically inserts a fresh tuple
// joining the chain's middle relation, retunes its probability, and
// deletes it again — net-zero data drift, but every batch publishes a
// new COW version, rotates the store fingerprint, and invalidates the
// result cache the reads would otherwise hit.
func ingestWorkload(c Config) Workload {
	reads := []string{chainPrefixQuery, chainFullQuery, c.tpchQuery("%red%")}
	return Workload{
		Name: "ingest",
		Next: func(i int64) Request {
			r := rng(c.Seed, i)
			if i%4 == 0 {
				tuple := []string{strconv.Itoa(r.Intn(c.ChainDomain)), "ing" + strconv.FormatInt(i, 10)}
				return ingestReq([]mutation{
					{Op: opInsert, Rel: "BenchR2", Tuple: tuple, P: fprob(r, c.PiMax)},
					{Op: opSetProb, Rel: "BenchR2", Tuple: tuple, P: fprob(r, c.PiMax)},
					{Op: opDelete, Rel: "BenchR2", Tuple: tuple},
				}, false)
			}
			return queryReq(queryBody{Query: reads[r.Intn(len(reads))], Method: "diss"})
		},
	}
}

// replicaReadWorkload is the ingest mix split across a replicated
// pair: the mutation batches (same net-zero churn as ingestWorkload)
// go to the primary while the point ranks are tagged TargetReplica, so
// a primary+replica run measures replica read latency under live WAL
// shipping — each shipped batch rotates the replica's fingerprint and
// invalidates its caches mid-run. Replica reads may observe a slightly
// stale version (see DESIGN.md's staleness contract); they must still
// answer without errors.
func replicaReadWorkload(c Config) Workload {
	reads := []string{chainPrefixQuery, chainFullQuery, starQuery, c.tpchQuery("%red%")}
	tops := []int{0, 0, 10, 5}
	return Workload{
		Name: "replica_read",
		Next: func(i int64) Request {
			r := rng(c.Seed, i)
			if i%4 == 0 {
				tuple := []string{strconv.Itoa(r.Intn(c.ChainDomain)), "rep" + strconv.FormatInt(i, 10)}
				return ingestReq([]mutation{
					{Op: opInsert, Rel: "BenchR2", Tuple: tuple, P: fprob(r, c.PiMax)},
					{Op: opSetProb, Rel: "BenchR2", Tuple: tuple, P: fprob(r, c.PiMax)},
					{Op: opDelete, Rel: "BenchR2", Tuple: tuple},
				}, false)
			}
			req := queryReq(queryBody{
				Query:  reads[r.Intn(len(reads))],
				Method: "diss",
				Top:    tops[r.Intn(len(tops))],
			})
			req.Target = TargetReplica
			return req
		},
	}
}
