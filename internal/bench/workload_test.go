package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"testing"
)

// streamBytes flattens the first n requests of a workload (and the
// shared setup stream) into one byte blob for identity comparison.
func streamBytes(t *testing.T, cfg Config, name string, n int64) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, r := range SetupRequests(cfg) {
		fmt.Fprintf(&buf, "%s %s %v\n", r.Method, r.Path, r.TolerateConflict)
		buf.Write(r.Body)
		buf.WriteByte('\n')
	}
	wl, err := ByName(cfg, name)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < n; i++ {
		r := wl.Next(i)
		fmt.Fprintf(&buf, "%s %s\n", r.Method, r.Path)
		buf.Write(r.Body)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// TestWorkloadDeterminism pins the reproducibility contract: two
// generations of each workload with the same seed are byte-identical
// (setup stream included), and a different seed actually changes the
// stream. Before/after BENCH comparisons assume both runs issued the
// same requests; this is that assumption.
func TestWorkloadDeterminism(t *testing.T) {
	for _, name := range WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			cfg := Config{Seed: 42}
			a := streamBytes(t, cfg, name, 500)
			b := streamBytes(t, cfg, name, 500)
			if !bytes.Equal(a, b) {
				t.Fatalf("two generations with seed 42 differ")
			}
			c := streamBytes(t, Config{Seed: 43}, name, 500)
			if bytes.Equal(a, c) {
				t.Fatalf("seed 42 and 43 produced identical streams")
			}
		})
	}
}

// TestWorkloadStreamIndexIndependence checks Next(i) is a pure
// function of i: evaluating out of order or repeatedly yields the same
// request, which is what lets concurrent workers share one atomic
// index counter without coordination.
func TestWorkloadStreamIndexIndependence(t *testing.T) {
	cfg := Config{Seed: 7}
	for _, name := range WorkloadNames() {
		wl, err := ByName(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		forward := make([][]byte, 50)
		for i := range forward {
			forward[i] = wl.Next(int64(i)).Body
		}
		for i := len(forward) - 1; i >= 0; i-- {
			if got := wl.Next(int64(i)).Body; !bytes.Equal(got, forward[i]) {
				t.Fatalf("%s: Next(%d) out of order differs from in-order generation", name, i)
			}
		}
	}
}

// TestWorkloadRequestsWellFormed checks every generated request is
// valid JSON aimed at a known endpoint with the right top-level shape,
// so a generator bug fails here rather than as mysterious 400s in a
// load run.
func TestWorkloadRequestsWellFormed(t *testing.T) {
	cfg := Config{Seed: 11}
	endpoints := map[string]bool{"/v1/query": true, "/v1/rank_batch": true, "/v1/ingest": true}
	check := func(t *testing.T, r Request) {
		t.Helper()
		if r.Method != "POST" || !endpoints[r.Path] {
			t.Fatalf("unexpected request %s %s", r.Method, r.Path)
		}
		var body map[string]json.RawMessage
		if err := json.Unmarshal(r.Body, &body); err != nil {
			t.Fatalf("body not JSON: %v\n%s", err, r.Body)
		}
		switch r.Path {
		case "/v1/query":
			if _, ok := body["query"]; !ok {
				t.Fatalf("query request without query field: %s", r.Body)
			}
		case "/v1/rank_batch":
			if _, ok := body["queries"]; !ok {
				t.Fatalf("batch request without queries field: %s", r.Body)
			}
		case "/v1/ingest":
			if _, ok := body["mutations"]; !ok {
				t.Fatalf("ingest request without mutations field: %s", r.Body)
			}
		}
	}
	for _, r := range SetupRequests(cfg) {
		check(t, r)
	}
	for _, name := range WorkloadNames() {
		wl, err := ByName(cfg, name)
		if err != nil {
			t.Fatal(err)
		}
		for i := int64(0); i < 200; i++ {
			check(t, wl.Next(i))
		}
	}
	if _, err := ByName(cfg, "nope"); err == nil {
		t.Fatal("unknown workload name should fail")
	}
}

// TestIngestWorkloadNetZero checks the ingest mix's mutation batches
// are self-contained: every batch that inserts a tuple also deletes
// it, so long runs don't drift the dataset the other workloads query.
func TestIngestWorkloadNetZero(t *testing.T) {
	wl, err := ByName(Config{Seed: 3}, "ingest")
	if err != nil {
		t.Fatal(err)
	}
	sawIngest := 0
	for i := int64(0); i < 400; i++ {
		r := wl.Next(i)
		if r.Path != "/v1/ingest" {
			continue
		}
		sawIngest++
		var body struct {
			Mutations []struct {
				Op    string   `json:"op"`
				Tuple []string `json:"tuple"`
			} `json:"mutations"`
		}
		if err := json.Unmarshal(r.Body, &body); err != nil {
			t.Fatal(err)
		}
		inserted := map[string]int{}
		for _, m := range body.Mutations {
			key := fmt.Sprint(m.Tuple)
			switch m.Op {
			case "insert":
				inserted[key]++
			case "delete":
				inserted[key]--
			}
		}
		for key, n := range inserted {
			if n != 0 {
				t.Fatalf("request %d: tuple %s net count %d, want 0\n%s", i, key, n, r.Body)
			}
		}
	}
	if sawIngest == 0 {
		t.Fatal("ingest mix produced no ingest requests in 400 ops")
	}
}
