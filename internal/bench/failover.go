package bench

// The failover workload: a scripted crash-failover over a live
// primary+replica pair, measuring availability rather than throughput.
// Read workers rank on the replica and write workers ingest on the
// primary; mid-run the harness kills the primary abruptly, promotes the
// replica through POST /v1/promote (with the min_seq guard at the
// highest acknowledged write), re-points the writers at the promoted
// node, and keeps going. The headline numbers land in the result's
// Metrics map:
//
//	write_gap_ms  longest wall-clock gap between consecutive
//	              successful writes (the write-unavailability window
//	              spanning kill -> promote -> first accepted write)
//	read_gap_ms   the same gap for replica reads, which should stay
//	              near the inter-request idle time — reads ride
//	              through the failover
//	promote_ms    kill-to-promotion latency, including min_seq retries
//	stranded_acked_writes  acked writes the dead primary never shipped
//	              (recoverable only by the runbook's restart path; the
//	              harness then promotes without them and reports it)
//
// The pair itself is injected through FailoverHooks so this package
// needs no dependency on internal/server: cmd/loadgen passes the
// hermetic pair's URLs and its KillPrimary hook.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// FailoverHooks is what RunFailover needs from the deployment under
// test beyond RunConfig's URLs.
type FailoverHooks struct {
	// Kill abruptly terminates the primary (connections cut, listener
	// closed) — the hermetic pair's KillPrimary.
	Kill func()
	// KillAfter is how far into the timed window the kill fires
	// (default: a third of RunConfig.Duration).
	KillAfter time.Duration
}

// failoverSample is one request's outcome on the availability timeline.
type failoverSample struct {
	at time.Time
	ok bool
}

// maxGap returns the longest gap between consecutive successes, in
// milliseconds, over [begin, end].
func maxGap(samples []failoverSample, begin, end time.Time) float64 {
	last := begin
	var widest time.Duration
	for _, s := range samples {
		if !s.ok {
			continue
		}
		if d := s.at.Sub(last); d > widest {
			widest = d
		}
		last = s.at
	}
	if d := end.Sub(last); d > widest {
		widest = d
	}
	return float64(widest.Microseconds()) / 1000
}

// RunFailover drives the failover workload over an already-seeded pair
// (the caller runs Setup and WaitConverged first, as for any replica
// workload). It returns a WorkloadResult named "failover" whose
// Metrics carry the availability gaps.
func RunFailover(ctx context.Context, cfg RunConfig, hooks FailoverHooks) (WorkloadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.ReplicaURL == "" {
		return WorkloadResult{}, fmt.Errorf("bench: the failover workload needs a replica (RunConfig.ReplicaURL)")
	}
	if hooks.Kill == nil {
		return WorkloadResult{}, fmt.Errorf("bench: the failover workload needs a Kill hook")
	}
	if hooks.KillAfter <= 0 {
		hooks.KillAfter = cfg.Duration / 3
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	var (
		mu        sync.Mutex
		writes    []failoverSample
		reads     []failoverSample
		hist      Histogram
		status    = make(map[string]int64)
		ops, errs int64
	)
	record := func(kind *[]failoverSample, t0 time.Time, code int, err error) {
		elapsed := time.Since(t0)
		mu.Lock()
		defer mu.Unlock()
		ok := err == nil && code >= 200 && code < 300
		*kind = append(*kind, failoverSample{at: time.Now(), ok: ok})
		ops++
		hist.Add(elapsed)
		if err != nil || code == 0 {
			errs++
			status["error"]++
			return
		}
		status[strconv.Itoa(code)]++
		if !ok {
			errs++
		}
	}

	// writeTarget swings from the primary to the promoted replica.
	var writeTarget atomic.Value
	writeTarget.Store(cfg.BaseURL)
	// maxAcked is the highest version any writer saw acknowledged — the
	// min_seq the promotion must preserve.
	var maxAcked atomic.Uint64

	begin := time.Now()
	var wg sync.WaitGroup

	// Write workers: net-zero ingest churn (as the ingest workload),
	// each acked response advancing maxAcked.
	writeWorkers := cfg.Concurrency / 2
	if writeWorkers < 1 {
		writeWorkers = 1
	}
	for w := 0; w < writeWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := int64(0); runCtx.Err() == nil; i++ {
				p := 0.4
				tuple := []string{"f", fmt.Sprintf("fo-%d-%d", w, i)}
				body := mustJSON(ingestBody{Mutations: []mutation{
					{Op: opInsert, Rel: "BenchR2", Tuple: tuple, P: &p},
					{Op: opDelete, Rel: "BenchR2", Tuple: tuple},
				}})
				t0 := time.Now()
				code, ver, err := doIngest(runCtx, cfg.Client, writeTarget.Load().(string), body)
				if runCtx.Err() != nil && code == 0 {
					return
				}
				record(&writes, t0, code, err)
				if err == nil && code == http.StatusOK {
					for {
						cur := maxAcked.Load()
						if ver <= cur || maxAcked.CompareAndSwap(cur, ver) {
							break
						}
					}
				}
			}
		}(w)
	}

	// Read workers: point ranks on the replica throughout — the node
	// being promoted keeps serving reads.
	readWorkers := cfg.Concurrency - writeWorkers
	if readWorkers < 1 {
		readWorkers = 1
	}
	readBody := mustJSON(queryBody{Query: chainPrefixQuery, Method: "diss"})
	for w := 0; w < readWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for runCtx.Err() == nil {
				t0 := time.Now()
				code, err := do(runCtx, cfg.Client, cfg.ReplicaURL, Request{Method: "POST", Path: "/v1/query", Body: readBody})
				if runCtx.Err() != nil && code == 0 {
					return
				}
				record(&reads, t0, code, err)
			}
		}()
	}

	// The failover script: kill, then promote with the min_seq guard,
	// retrying while the replica drains what it already received. If the
	// dead primary stranded acked-but-unshipped writes, report them and
	// promote without them — they live on in its WAL for the runbook's
	// restart path; silently blocking the bench forever helps no one.
	var promoteMS, strandedWrites float64
	wg.Add(1)
	go func() {
		defer wg.Done()
		select {
		case <-runCtx.Done():
			return
		case <-time.After(hooks.KillAfter):
		}
		cfg.logf("failover: killing the primary")
		hooks.Kill()
		killedAt := time.Now()
		minSeq := maxAcked.Load()
		guard := minSeq
		for attempt := 0; runCtx.Err() == nil; attempt++ {
			code, epoch, err := doPromote(runCtx, cfg.Client, cfg.ReplicaURL, guard)
			if err == nil && code == http.StatusOK {
				promoteMS = float64(time.Since(killedAt).Microseconds()) / 1000
				writeTarget.Store(cfg.ReplicaURL)
				cfg.logf("failover: promoted the replica to epoch %d after %.1fms (min_seq %d)", epoch, promoteMS, guard)
				return
			}
			if code == http.StatusConflict && attempt >= 20 && guard != 0 {
				// Persistently behind: the dead primary never shipped some
				// acked writes. Record the shortfall and promote anyway.
				if seq, err := fetchAppliedSeq(runCtx, cfg.Client, cfg.ReplicaURL); err == nil && minSeq > seq {
					strandedWrites = float64(minSeq - seq)
				}
				cfg.logf("failover: %.0f acked writes stranded on the dead primary; promoting without them", strandedWrites)
				guard = 0
				continue
			}
			if err != nil && runCtx.Err() != nil {
				return
			}
			select {
			case <-runCtx.Done():
				return
			case <-time.After(25 * time.Millisecond):
			}
		}
	}()

	wg.Wait()
	end := time.Now()

	res := WorkloadResult{
		Name:        "failover",
		Concurrency: cfg.Concurrency,
		DurationMS:  float64(end.Sub(begin).Microseconds()) / 1000,
		Ops:         ops,
		Errors:      errs,
		Status:      status,
		Metrics: map[string]float64{
			"write_gap_ms":          maxGap(writes, begin, end),
			"read_gap_ms":           maxGap(reads, begin, end),
			"promote_ms":            promoteMS,
			"stranded_acked_writes": strandedWrites,
		},
	}
	if sec := end.Sub(begin).Seconds(); sec > 0 {
		res.OpsPerSec = float64(ops) / sec
	}
	ms := func(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
	res.P50MS = ms(hist.Quantile(0.50))
	res.P95MS = ms(hist.Quantile(0.95))
	res.P99MS = ms(hist.Quantile(0.99))
	res.MaxMS = ms(hist.Max())
	return res, nil
}

// doIngest posts one ingest batch and parses the acked version.
func doIngest(ctx context.Context, client *http.Client, base string, body []byte) (int, uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest", bytes.NewReader(body))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var ir struct {
		Version uint64 `json:"version"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ir); err != nil {
			return resp.StatusCode, 0, err
		}
	}
	return resp.StatusCode, ir.Version, nil
}

// doPromote posts /v1/promote with the min_seq guard.
func doPromote(ctx context.Context, client *http.Client, base string, minSeq uint64) (int, uint64, error) {
	body := fmt.Sprintf(`{"min_seq":%d}`, minSeq)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/promote", bytes.NewReader([]byte(body)))
	if err != nil {
		return 0, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return 0, 0, err
	}
	defer resp.Body.Close()
	var pr struct {
		Epoch uint64 `json:"epoch"`
	}
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			return resp.StatusCode, 0, err
		}
	}
	return resp.StatusCode, pr.Epoch, nil
}

// fetchAppliedSeq reads a replica's applied sequence from /healthz.
func fetchAppliedSeq(ctx context.Context, client *http.Client, base string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var h struct {
		Version uint64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return 0, err
	}
	return h.Version, nil
}
