package bench

import (
	"sort"
	"time"
)

// Histogram collects latency samples for quantile reporting. It stores
// raw samples (a load run's request counts are small enough that exact
// quantiles beat bucketing error), is not goroutine-safe — the runner
// keeps one per worker and merges — and defines its quantiles
// precisely so golden tests can pin the math:
//
// Quantile(q) sorts the samples and linearly interpolates at rank
// q·(n−1): the 0-quantile is the minimum, the 1-quantile the maximum,
// and e.g. p50 of [1ms, 2ms] is 1.5ms. An empty histogram reports 0
// for every quantile.
type Histogram struct {
	samples []time.Duration
	sorted  bool
}

// Add records one sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Merge appends all of other's samples into h.
func (h *Histogram) Merge(other *Histogram) {
	h.samples = append(h.samples, other.samples...)
	h.sorted = false
}

// Len is the number of recorded samples.
func (h *Histogram) Len() int { return len(h.samples) }

func (h *Histogram) sort() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Quantile returns the q-quantile (q in [0, 1]) under the
// rank-interpolation definition above. q outside [0, 1] is clamped.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := len(h.samples)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		h.sort()
		return h.samples[0]
	}
	if q >= 1 {
		h.sort()
		return h.samples[n-1]
	}
	h.sort()
	rank := q * float64(n-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= n || frac == 0 {
		return h.samples[lo]
	}
	a, b := float64(h.samples[lo]), float64(h.samples[lo+1])
	return time.Duration(a + frac*(b-a))
}

// Max returns the largest sample (0 when empty).
func (h *Histogram) Max() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	h.sort()
	return h.samples[len(h.samples)-1]
}
