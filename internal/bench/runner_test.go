package bench

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/server"
)

// hermeticRunConfig points the runner at an in-process lapushd with
// test-sized phases.
func hermeticRunConfig(t *testing.T) (RunConfig, Config) {
	t.Helper()
	ts := httptest.NewServer(server.New(lapushdb.Open(), server.Config{}))
	t.Cleanup(ts.Close)
	rc := RunConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Warmup:      50 * time.Millisecond,
		Duration:    300 * time.Millisecond,
		Client:      ts.Client(),
		Logf:        t.Logf,
	}
	// Small dataset: the point of the test is the harness plumbing, not
	// the server's throughput.
	cfg := Config{Seed: 9, ChainN: 60, ChainDomain: 25, StarN: 30, StarDomain: 12, Suppliers: 20, Parts: 40}
	return rc, cfg
}

// TestRunnerHermetic is the harness's own end-to-end test: seed the
// dataset through /v1/ingest, run every workload mix briefly, and
// check the results carry ops, status counts, and ordered quantiles.
// This is the same path `make bench-smoke` takes in CI.
func TestRunnerHermetic(t *testing.T) {
	rc, cfg := hermeticRunConfig(t)
	ctx := context.Background()
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			wl, err := ByName(cfg, name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(ctx, rc, wl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Errors != 0 {
				t.Fatalf("errors %d of %d ops, status %v", res.Errors, res.Ops, res.Status)
			}
			if res.Status["200"] != res.Ops {
				t.Fatalf("status map %v does not account for %d ops", res.Status, res.Ops)
			}
			if res.P50MS <= 0 || res.P50MS > res.P95MS || res.P95MS > res.P99MS || res.P99MS > res.MaxMS {
				t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g max=%g", res.P50MS, res.P95MS, res.P99MS, res.MaxMS)
			}
			if res.OpsPerSec <= 0 || res.DurationMS <= 0 {
				t.Fatalf("missing rate/duration: %+v", res)
			}
			if err := (Thresholds{MaxErrorRate: 0.01, MinOps: 1}).Check(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSetupTolerantRerun re-seeds the same server twice: the second
// pass must survive the create_relation conflicts (tolerated 400s) so
// loadgen can rerun against a durable store.
func TestSetupTolerantRerun(t *testing.T) {
	rc, cfg := hermeticRunConfig(t)
	ctx := context.Background()
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatalf("rerun against seeded store: %v", err)
	}
}

// TestRunnerCountsErrors drives the runner against a stub that fails
// every third request with 429 and checks the per-status accounting
// and threshold evaluation.
func TestRunnerCountsErrors(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"answers":[]}`))
	}))
	defer ts.Close()
	wl := Workload{Name: "stub", Next: func(i int64) Request {
		return Request{Method: "POST", Path: "/v1/query", Body: []byte(`{"query":"q"}`)}
	}}
	res, err := Run(context.Background(), RunConfig{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Warmup:      20 * time.Millisecond,
		Duration:    200 * time.Millisecond,
		Client:      ts.Client(),
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors == 0 {
		t.Fatalf("expected traffic with errors, got %+v", res)
	}
	if res.Status["429"] != res.Errors {
		t.Fatalf("429 count %d != errors %d (status %v)", res.Status["429"], res.Errors, res.Status)
	}
	if res.Status["200"]+res.Status["429"] != res.Ops {
		t.Fatalf("status map %v does not sum to ops %d", res.Status, res.Ops)
	}
	// Roughly a third of requests fail; a loose gate must catch it and
	// a looser one must not.
	if err := (Thresholds{MaxErrorRate: 0.05}).Check(res); err == nil {
		t.Fatal("error rate ~0.33 passed a 0.05 gate")
	}
	if err := (Thresholds{MaxErrorRate: 0.9}).Check(res); err != nil {
		t.Fatalf("error rate gate 0.9 tripped: %v", err)
	}
	if err := (Thresholds{MaxP99: time.Nanosecond}).Check(res); err == nil {
		t.Fatal("1ns p99 gate passed")
	}
	if err := (Thresholds{MinOps: res.Ops + 1}).Check(res); err == nil {
		t.Fatal("min-ops gate passed with fewer ops")
	}
}

// TestSetupFailsFast: a non-tolerated failure must abort setup with a
// diagnostic, not limp into a meaningless load run.
func TestSetupFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"durability_failure","message":"disk on fire"}}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	err := Setup(context.Background(), RunConfig{BaseURL: ts.URL, Client: ts.Client()},
		[]Request{{Method: "POST", Path: "/v1/ingest", Body: []byte(`{}`)}})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("want status-500 setup error, got %v", err)
	}
}

// TestReportRoundTrip checks WriteFile/ReadFile/UpdateFile preserve
// the schema and that merging replaces same-named sections without
// touching the other kind.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := &Report{
		Rev: "abc1234", Date: "2026-08-08", Go: "go1.24.0",
		Benchmarks: []MicroResult{{Name: "BenchmarkAnytime/eps=0.05", NsPerOpMin: 100, NsPerOpRuns: []int64{120, 100}, Metrics: map[string]float64{"mc_samples": 64}}},
		Workloads:  []WorkloadResult{{Name: "point", Ops: 10, Status: map[string]int64{"200": 10}}},
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Rev != "abc1234" || len(got.Benchmarks) != 1 || len(got.Workloads) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Update replaces the point workload and keeps the benchmark.
	err = UpdateFile(path, func(r *Report) {
		r.ReplaceWorkload(WorkloadResult{Name: "point", Ops: 99})
		r.ReplaceWorkload(WorkloadResult{Name: "batch", Ops: 5})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Workloads) != 2 || got.Workloads[0].Ops != 99 || len(got.Benchmarks) != 1 {
		t.Fatalf("merge broke sections: %+v", got)
	}
	// Unknown schema versions are refused.
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema_version 99 accepted")
	}
	// UpdateFile on a missing path starts fresh.
	fresh := filepath.Join(dir, "BENCH_fresh.json")
	if err := UpdateFile(fresh, func(r *Report) { r.Rev = "fresh" }); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(fresh); err != nil || got.Rev != "fresh" {
		t.Fatalf("fresh update: %v %+v", err, got)
	}
}
