package bench

import (
	"context"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/server"
)

// hermeticRunConfig points the runner at an in-process lapushd with
// test-sized phases.
func hermeticRunConfig(t *testing.T) (RunConfig, Config) {
	t.Helper()
	ts := httptest.NewServer(server.New(lapushdb.Open(), server.Config{}))
	t.Cleanup(ts.Close)
	rc := RunConfig{
		BaseURL:     ts.URL,
		Concurrency: 4,
		Warmup:      50 * time.Millisecond,
		Duration:    300 * time.Millisecond,
		Client:      ts.Client(),
		Logf:        t.Logf,
	}
	// Small dataset: the point of the test is the harness plumbing, not
	// the server's throughput.
	cfg := Config{Seed: 9, ChainN: 60, ChainDomain: 25, StarN: 30, StarDomain: 12, Suppliers: 20, Parts: 40}
	return rc, cfg
}

// TestRunnerHermetic is the harness's own end-to-end test: seed the
// dataset through /v1/ingest, run every workload mix briefly, and
// check the results carry ops, status counts, and ordered quantiles.
// This is the same path `make bench-smoke` takes in CI.
func TestRunnerHermetic(t *testing.T) {
	rc, cfg := hermeticRunConfig(t)
	ctx := context.Background()
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatal(err)
	}
	for _, name := range WorkloadNames() {
		t.Run(name, func(t *testing.T) {
			wl, err := ByName(cfg, name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(ctx, rc, wl)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if res.Errors != 0 {
				t.Fatalf("errors %d of %d ops, status %v", res.Errors, res.Ops, res.Status)
			}
			if res.Status["200"] != res.Ops {
				t.Fatalf("status map %v does not account for %d ops", res.Status, res.Ops)
			}
			if res.P50MS <= 0 || res.P50MS > res.P95MS || res.P95MS > res.P99MS || res.P99MS > res.MaxMS {
				t.Fatalf("quantiles out of order: p50=%g p95=%g p99=%g max=%g", res.P50MS, res.P95MS, res.P99MS, res.MaxMS)
			}
			if res.OpsPerSec <= 0 || res.DurationMS <= 0 {
				t.Fatalf("missing rate/duration: %+v", res)
			}
			if err := (Thresholds{MaxErrorRate: 0.01, MinOps: 1}).Check(res); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestRunnerReplicaRouting pins the request routing of a replicated
// run: TargetReplica requests hit ReplicaURL, everything else —
// including all of setup — hits BaseURL, and with no ReplicaURL the
// tagged requests fall back to the primary.
func TestRunnerReplicaRouting(t *testing.T) {
	count := func(m map[string]*atomic.Int64) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			m[r.URL.Path].Add(1)
			w.Write([]byte(`{}`))
		})
	}
	pHits := map[string]*atomic.Int64{"/v1/ingest": {}, "/v1/query": {}}
	rHits := map[string]*atomic.Int64{"/v1/ingest": {}, "/v1/query": {}}
	primary := httptest.NewServer(count(pHits))
	defer primary.Close()
	replica := httptest.NewServer(count(rHits))
	defer replica.Close()

	wl := Workload{Name: "split", Next: func(i int64) Request {
		if i%2 == 0 {
			return Request{Method: "POST", Path: "/v1/ingest", Body: []byte(`{}`)}
		}
		return Request{Method: "POST", Path: "/v1/query", Body: []byte(`{}`), Target: TargetReplica}
	}}
	rc := RunConfig{
		BaseURL:     primary.URL,
		ReplicaURL:  replica.URL,
		Concurrency: 2,
		Warmup:      10 * time.Millisecond,
		Duration:    150 * time.Millisecond,
		Client:      primary.Client(),
	}
	if err := Setup(context.Background(), rc, []Request{{Method: "POST", Path: "/v1/ingest", Target: TargetReplica}}); err != nil {
		t.Fatal(err)
	}
	if got := rHits["/v1/ingest"].Load(); got != 0 {
		t.Fatalf("setup leaked %d requests to the replica", got)
	}
	res, err := Run(context.Background(), rc, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors != 0 || res.Ops == 0 {
		t.Fatalf("stub run failed: %+v", res)
	}
	if rHits["/v1/query"].Load() == 0 || rHits["/v1/ingest"].Load() != 0 {
		t.Fatalf("replica saw query=%d ingest=%d, want queries only",
			rHits["/v1/query"].Load(), rHits["/v1/ingest"].Load())
	}
	if pHits["/v1/ingest"].Load() == 0 || pHits["/v1/query"].Load() != 0 {
		t.Fatalf("primary saw query=%d ingest=%d, want ingest only",
			pHits["/v1/query"].Load(), pHits["/v1/ingest"].Load())
	}

	// No replica configured: the tagged requests run against the primary
	// instead of erroring out.
	before := pHits["/v1/query"].Load()
	rc.ReplicaURL = ""
	if _, err := Run(context.Background(), rc, wl); err != nil {
		t.Fatal(err)
	}
	if pHits["/v1/query"].Load() == before {
		t.Fatal("fallback run sent no tagged requests to the primary")
	}
}

// TestWaitConvergedErrors pins WaitConverged's refusal paths: no-op
// without a replica, fail fast on an unreachable primary, and report
// the replica's stuck position when the deadline expires.
func TestWaitConvergedErrors(t *testing.T) {
	if err := WaitConverged(context.Background(), RunConfig{BaseURL: "http://127.0.0.1:0"}); err != nil {
		t.Fatalf("no replica configured must be a no-op, got %v", err)
	}

	stuck := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"version":1,"fingerprint":"a@1"}`))
	}))
	defer stuck.Close()
	ahead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"version":5,"fingerprint":"b@5"}`))
	}))
	defer ahead.Close()

	dead := stuck.URL[:strings.LastIndex(stuck.URL, ":")] + ":1"
	if err := WaitConverged(context.Background(), RunConfig{BaseURL: dead, ReplicaURL: stuck.URL}); err == nil {
		t.Fatal("unreachable primary did not fail")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	err := WaitConverged(ctx, RunConfig{BaseURL: ahead.URL, ReplicaURL: stuck.URL})
	if err == nil || !strings.Contains(err.Error(), "never converged") {
		t.Fatalf("lagging replica: %v, want a never-converged deadline error", err)
	}

	// A replica that moved past the pinned primary snapshot (writes
	// landed between the two polls) counts as converged.
	if err := WaitConverged(context.Background(), RunConfig{BaseURL: stuck.URL, ReplicaURL: ahead.URL}); err != nil {
		t.Fatalf("replica ahead of the pinned snapshot: %v", err)
	}
}

// TestReplicaReadWorkloadPair runs the replica_read mix against a real
// hermetic primary+replica pair: seed the primary, wait for the
// replica to converge, then rank on the replica while the ingest churn
// rotates the primary's versions. Every request must succeed — replica
// reads may be stale, never failing.
func TestReplicaReadWorkloadPair(t *testing.T) {
	pair, err := server.NewHermeticPair(server.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	rc := RunConfig{
		BaseURL:     pair.Primary.URL,
		ReplicaURL:  pair.Replica.URL,
		Concurrency: 4,
		Warmup:      50 * time.Millisecond,
		Duration:    300 * time.Millisecond,
		Logf:        t.Logf,
	}
	cfg := Config{Seed: 9, ChainN: 60, ChainDomain: 25, StarN: 30, StarDomain: 12, Suppliers: 20, Parts: 40}
	ctx := context.Background()
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatal(err)
	}
	wctx, cancel := context.WithTimeout(ctx, 30*time.Second)
	defer cancel()
	if err := WaitConverged(wctx, rc); err != nil {
		t.Fatal(err)
	}
	wl, err := ByName(cfg, "replica_read")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(ctx, rc, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.Errors != 0 {
		t.Fatalf("errors %d of %d ops, status %v", res.Errors, res.Ops, res.Status)
	}
}

// TestSetupTolerantRerun re-seeds the same server twice: the second
// pass must survive the create_relation conflicts (tolerated 400s) so
// loadgen can rerun against a durable store.
func TestSetupTolerantRerun(t *testing.T) {
	rc, cfg := hermeticRunConfig(t)
	ctx := context.Background()
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatal(err)
	}
	if err := Setup(ctx, rc, SetupRequests(cfg)); err != nil {
		t.Fatalf("rerun against seeded store: %v", err)
	}
}

// TestRunnerCountsErrors drives the runner against a stub that fails
// every third request with 429 and checks the per-status accounting
// and threshold evaluation.
func TestRunnerCountsErrors(t *testing.T) {
	var n atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if n.Add(1)%3 == 0 {
			http.Error(w, `{"error":{"code":"overloaded"}}`, http.StatusTooManyRequests)
			return
		}
		w.Write([]byte(`{"answers":[]}`))
	}))
	defer ts.Close()
	wl := Workload{Name: "stub", Next: func(i int64) Request {
		return Request{Method: "POST", Path: "/v1/query", Body: []byte(`{"query":"q"}`)}
	}}
	res, err := Run(context.Background(), RunConfig{
		BaseURL:     ts.URL,
		Concurrency: 2,
		Warmup:      20 * time.Millisecond,
		Duration:    200 * time.Millisecond,
		Client:      ts.Client(),
	}, wl)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 || res.Errors == 0 {
		t.Fatalf("expected traffic with errors, got %+v", res)
	}
	if res.Status["429"] != res.Errors {
		t.Fatalf("429 count %d != errors %d (status %v)", res.Status["429"], res.Errors, res.Status)
	}
	if res.Status["200"]+res.Status["429"] != res.Ops {
		t.Fatalf("status map %v does not sum to ops %d", res.Status, res.Ops)
	}
	// Roughly a third of requests fail; a loose gate must catch it and
	// a looser one must not.
	if err := (Thresholds{MaxErrorRate: 0.05}).Check(res); err == nil {
		t.Fatal("error rate ~0.33 passed a 0.05 gate")
	}
	if err := (Thresholds{MaxErrorRate: 0.9}).Check(res); err != nil {
		t.Fatalf("error rate gate 0.9 tripped: %v", err)
	}
	if err := (Thresholds{MaxP99: time.Nanosecond}).Check(res); err == nil {
		t.Fatal("1ns p99 gate passed")
	}
	if err := (Thresholds{MinOps: res.Ops + 1}).Check(res); err == nil {
		t.Fatal("min-ops gate passed with fewer ops")
	}
}

// TestSetupFailsFast: a non-tolerated failure must abort setup with a
// diagnostic, not limp into a meaningless load run.
func TestSetupFailsFast(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":{"code":"durability_failure","message":"disk on fire"}}`, http.StatusInternalServerError)
	}))
	defer ts.Close()
	err := Setup(context.Background(), RunConfig{BaseURL: ts.URL, Client: ts.Client()},
		[]Request{{Method: "POST", Path: "/v1/ingest", Body: []byte(`{}`)}})
	if err == nil || !strings.Contains(err.Error(), "500") {
		t.Fatalf("want status-500 setup error, got %v", err)
	}
}

// TestReportRoundTrip checks WriteFile/ReadFile/UpdateFile preserve
// the schema and that merging replaces same-named sections without
// touching the other kind.
func TestReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	r := &Report{
		Rev: "abc1234", Date: "2026-08-08", Go: "go1.24.0",
		Benchmarks: []MicroResult{{Name: "BenchmarkAnytime/eps=0.05", NsPerOpMin: 100, NsPerOpRuns: []int64{120, 100}, Metrics: map[string]float64{"mc_samples": 64}}},
		Workloads:  []WorkloadResult{{Name: "point", Ops: 10, Status: map[string]int64{"200": 10}}},
	}
	if err := r.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != SchemaVersion || got.Rev != "abc1234" || len(got.Benchmarks) != 1 || len(got.Workloads) != 1 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	// Update replaces the point workload and keeps the benchmark.
	err = UpdateFile(path, func(r *Report) {
		r.ReplaceWorkload(WorkloadResult{Name: "point", Ops: 99})
		r.ReplaceWorkload(WorkloadResult{Name: "batch", Ops: 5})
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Workloads) != 2 || got.Workloads[0].Ops != 99 || len(got.Benchmarks) != 1 {
		t.Fatalf("merge broke sections: %+v", got)
	}
	// Unknown schema versions are refused.
	if err := os.WriteFile(path, []byte(`{"schema_version": 99}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatal("schema_version 99 accepted")
	}
	// UpdateFile on a missing path starts fresh.
	fresh := filepath.Join(dir, "BENCH_fresh.json")
	if err := UpdateFile(fresh, func(r *Report) { r.Rev = "fresh" }); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadFile(fresh); err != nil || got.Rev != "fresh" {
		t.Fatalf("fresh update: %v %+v", err, got)
	}
}
