package server

// Failover chaos suite: the fenced-promotion acceptance tests. The full
// schedule — kill -9 the primary mid-lineage, promote the replica,
// restart the old primary, fence it, re-seed it — must end with every
// acknowledged write present on the new lineage, every unacknowledged
// write cleanly absent, and the fingerprints of the survivors never
// diverging. Run under -race (the CI failover job does).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// quietf discards log lines from servers and tailers under test.
func quietf(string, ...any) {}

// startDirReplica opens a dir-backed store tailing primaryURL and
// serves it with the full replica handler stack (tailer status and
// StopTailer wired, as cmd/lapushd wires them).
func startDirReplica(t *testing.T, dir, primaryURL string) (*store.Store, *replica.Replica, *httptest.Server) {
	t.Helper()
	st, err := store.Open(lapushdb.Open(), store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	tailer, err := replica.Start(replica.Options{
		Primary:          primaryURL,
		Store:            st,
		ReconnectBackoff: 20 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		StreamWindow:     time.Second,
		Logf:             quietf,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewWithStore(st, Config{
		ReplicaOf:     primaryURL,
		ReplicaStatus: tailer.Status,
		StopTailer:    tailer.Close,
		Logf:          quietf,
	}))
	return st, tailer, ts
}

// saveBytes snapshots db for bit-identity comparisons.
func saveBytes(t *testing.T, db *lapushdb.DB) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// countTuples asks url's /v1/query how many Likes tuples mention user.
func countTuples(t *testing.T, url, user string) int {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/query", map[string]any{
		"query": fmt.Sprintf("q(movie) :- Likes('%s', movie)", user),
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query on %s: %d (%s)", url, resp.StatusCode, body)
	}
	var out struct {
		Count int `json:"count"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	return out.Count
}

// TestFailoverCrashPromoteFence is the full failover schedule.
func TestFailoverCrashPromoteFence(t *testing.T) {
	pdir := t.TempDir()
	pst, err := store.Open(movieDB(t), store.Options{Dir: pdir})
	if err != nil {
		t.Fatal(err)
	}
	pts := httptest.NewServer(NewWithStore(pst, Config{WALStreamWindow: time.Second, Logf: quietf}))

	rdir := t.TempDir()
	rst, _, rts := startDirReplica(t, rdir, pts.URL)
	defer rts.Close()
	defer rst.Close()

	// Phase 1: concurrent ingest workers. Every 200 is an acknowledged,
	// WAL-durable write; the workers record exactly which tuples were
	// acked so the post-failover audit can demand each one back.
	var mu sync.Mutex
	var ackedSeq uint64
	var ackedTuples []string
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for j := 0; j < 5; j++ {
				movie := fmt.Sprintf("m-%d-%d", w, j)
				resp, body := postJSON(t, pts.URL+"/v1/ingest", map[string]any{
					"mutations": []map[string]any{
						{"op": "insert", "rel": "Likes", "tuple": []string{"acked", movie}, "p": 0.5},
					},
				})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("ingest %s: %d (%s)", movie, resp.StatusCode, body)
					return
				}
				var ir struct {
					Version uint64 `json:"version"`
				}
				if err := json.Unmarshal(body, &ir); err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				ackedTuples = append(ackedTuples, movie)
				if ir.Version > ackedSeq {
					ackedSeq = ir.Version
				}
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Let the WAL shipping drain to the max acked seq, then crash the
	// primary abruptly: connections cut, listener closed, no drain.
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := rst.WaitForSeq(ctx, ackedSeq); err != nil {
		t.Fatalf("replica never reached acked seq %d: %v", ackedSeq, err)
	}
	pts.CloseClientConnections()
	pts.Close()

	// One write lands in the dead primary's WAL without ever being
	// acknowledged over HTTP — the in-flight casualty of the crash. It
	// must not survive failover.
	if _, err := pst.Apply([]store.Mutation{
		{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"ghost", "never-acked"}, P: pFloat(0.5)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := pst.Close(); err != nil {
		t.Fatal(err)
	}

	// Phase 2: promote the replica with the min_seq guard at the highest
	// acked seq — the promotion that proves zero acked-write loss.
	resp, body := postJSON(t, rts.URL+"/v1/promote", map[string]any{"min_seq": ackedSeq})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote: %d (%s)", resp.StatusCode, body)
	}
	var pr promoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Promoted || pr.Epoch != 1 || pr.Role != "primary" {
		t.Fatalf("promote response = %+v, want promoted on epoch 1", pr)
	}
	// The new lineage accepts writes immediately.
	if resp, body := postJSON(t, rts.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "insert", "rel": "Likes", "tuple": []string{"post", "failover"}, "p": 0.5},
		},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest on promoted primary: %d (%s)", resp.StatusCode, body)
	}

	// Phase 3: the old primary restarts from its directory. Recovery
	// replays its WAL — including the unacknowledged write — onto the
	// stale epoch-0 lineage.
	pst2, err := store.Open(nil, store.Options{Dir: pdir})
	if err != nil {
		t.Fatal(err)
	}
	if v := pst2.Current(); v.Epoch != 0 || v.Seq != ackedSeq+1 {
		t.Fatalf("old primary recovered (%d, epoch %d), want (%d, epoch 0)", v.Seq, v.Epoch, ackedSeq+1)
	}

	// Its startup handshake reaches the promoted node, observes epoch 1,
	// and self-fences before serving a single write.
	osrv := NewWithStore(pst2, Config{
		Peers:             []string{rts.URL},
		FencePollInterval: 25 * time.Millisecond,
		Logf:              quietf,
	})
	defer osrv.Close()
	hctx, hcancel := context.WithTimeout(context.Background(), 5*time.Second)
	fenced := osrv.CheckPeers(hctx)
	hcancel()
	if !fenced {
		t.Fatal("restarted old primary did not fence on the startup handshake")
	}
	ots := httptest.NewServer(osrv)
	defer ots.Close()

	resp, body = getBody(t, ots.URL+"/healthz")
	var h map[string]any
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h["role"] != "fenced" || h["status"] != "degraded" || h["primary"] != rts.URL {
		t.Fatalf("fenced healthz = %v", h)
	}
	resp, body = postJSON(t, ots.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "insert", "rel": "Likes", "tuple": []string{"split", "brain"}, "p": 0.5},
		},
	})
	if resp.StatusCode != http.StatusServiceUnavailable || decodeErr(t, body).Code != "fenced" {
		t.Fatalf("fenced ingest: %d %s (%s)", resp.StatusCode, resp.Header.Get("X-Lapushd-Primary"), body)
	}
	if got := resp.Header.Get("X-Lapushd-Primary"); got != rts.URL {
		t.Fatalf("X-Lapushd-Primary = %q, want %q", got, rts.URL)
	}
	// Promoting a fenced node is refused — it would resurrect the stale
	// lineage.
	if resp, body := postJSON(t, ots.URL+"/v1/promote", map[string]any{}); resp.StatusCode != http.StatusConflict || decodeErr(t, body).Code != "fenced" {
		t.Fatalf("promote on fenced node: %d (%s)", resp.StatusCode, body)
	}

	// Phase 4: re-seed the fenced node as a replica of the promoted
	// primary. Its diverged tail (the unacknowledged write) forces a 409,
	// a snapshot bootstrap onto epoch 1, and full convergence.
	tailer2, err := replica.Start(replica.Options{
		Primary:          rts.URL,
		Store:            pst2,
		ReconnectBackoff: 20 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		StreamWindow:     time.Second,
		Logf:             quietf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tailer2.Close()
	// Convergence here means more than reaching the sequence number: the
	// old primary's stale tail collides with the new lineage on both seq
	// and fingerprint (same schema, same tuple counts), so the tailer
	// must detect the epoch boundary and re-anchor by snapshot.
	want := rst.Current()
	deadline := time.Now().Add(15 * time.Second)
	for pst2.Current().Epoch != want.Epoch || pst2.Current().Seq < want.Seq {
		if time.Now().After(deadline) {
			t.Fatalf("re-seeded old primary stuck at %+v, want (%d, epoch %d)", pst2.Current(), want.Seq, want.Epoch)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The audit: fingerprint parity, bit-identity, every acked write
	// present, the unacked write gone, the post-failover write present.
	got := pst2.Current()
	if got.Seq != want.Seq || got.Fingerprint != want.Fingerprint || got.Epoch != 1 {
		t.Fatalf("re-seeded head (%d, %s, epoch %d), want (%d, %s, epoch 1)",
			got.Seq, got.Fingerprint, got.Epoch, want.Seq, want.Fingerprint)
	}
	if !bytes.Equal(saveBytes(t, want.DB), saveBytes(t, got.DB)) {
		t.Fatal("re-seeded old primary is not bit-identical to the promoted primary")
	}
	if n := countTuples(t, rts.URL, "acked"); n != len(ackedTuples) {
		t.Fatalf("new lineage has %d acked tuples, want %d", n, len(ackedTuples))
	}
	if n := countTuples(t, rts.URL, "ghost"); n != 0 {
		t.Fatalf("unacknowledged write survived failover (%d tuples)", n)
	}
	if n := countTuples(t, rts.URL, "post"); n != 1 {
		t.Fatalf("post-failover write missing (%d tuples)", n)
	}
	if err := pst2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestPromoteIdempotent pins the handler's state machine: promoting a
// node that already is the primary is a 200 no-op, and a replica
// promotion repeated lands on the same epoch.
func TestPromoteIdempotent(t *testing.T) {
	// On a standalone primary, promote reports the current state without
	// bumping anything.
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/promote", map[string]any{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote on primary: %d (%s)", resp.StatusCode, body)
	}
	var pr promoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Promoted || pr.Epoch != 0 || pr.Role != "primary" {
		t.Fatalf("promote on primary = %+v, want a promoted=false no-op at epoch 0", pr)
	}

	// On a replica: first promote bumps to epoch 1, the retry is a no-op
	// at the same epoch.
	pair, err := NewHermeticPair(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	for i, wantPromoted := range []bool{true, false} {
		resp, body := postJSON(t, pair.Replica.URL+"/v1/promote", map[string]any{})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("promote %d: %d (%s)", i, resp.StatusCode, body)
		}
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		if pr.Promoted != wantPromoted || pr.Epoch != 1 || pr.Role != "primary" {
			t.Fatalf("promote %d = %+v, want promoted=%v at epoch 1", i, pr, wantPromoted)
		}
	}
}

// TestPromoteRefusesWhenBehind pins the zero-acked-write-loss guard: a
// replica that provably has not applied min_seq refuses with 409 and
// keeps its role, so it keeps converging and a later retry can succeed.
func TestPromoteRefusesWhenBehind(t *testing.T) {
	st, err := store.Open(movieDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// A replica-role server with its (empty-history) store at seq 0; no
	// tailer, so it can never reach min_seq during the test.
	ts := httptest.NewServer(NewWithStore(st, Config{ReplicaOf: "http://dead-primary.example", Logf: quietf}))
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/promote", map[string]any{"min_seq": 42})
	if resp.StatusCode != http.StatusConflict || decodeErr(t, body).Code != "behind" {
		t.Fatalf("promote behind min_seq: %d (%s)", resp.StatusCode, body)
	}
	// Still a replica, still refusing writes, still at epoch 0.
	if resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{{"op": "set_prob", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.1}},
	}); resp.StatusCode != http.StatusServiceUnavailable || decodeErr(t, body).Code != "read_only_replica" {
		t.Fatalf("refused promotion changed the role: %d (%s)", resp.StatusCode, body)
	}
	if got := st.Epoch(); got != 0 {
		t.Fatalf("refused promotion bumped the epoch to %d", got)
	}
}

// TestWALEpochFencing pins the tailing-attempt fence channel: a /v1/wal
// request presenting a higher epoch is refused with 409 stale_primary
// (reporting the local epoch), and the node self-fences on the spot.
func TestWALEpochFencing(t *testing.T) {
	s, ts := newTestServer(t, Config{Logf: quietf})

	// An epoch-0 follower streams fine.
	resp, _ := getBody(t, ts.URL+"/v1/wal?from=0&wait_ms=0&epoch=0")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-0 wal read: %d", resp.StatusCode)
	}

	// A follower on epoch 2 means this primary was failed over: refuse
	// and fence.
	resp, body := getBody(t, ts.URL+"/v1/wal?from=0&wait_ms=0&epoch=2")
	if resp.StatusCode != http.StatusConflict || decodeErr(t, body).Code != "stale_primary" {
		t.Fatalf("higher-epoch wal read: %d (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Lapushd-Epoch"); got != "0" {
		t.Fatalf("X-Lapushd-Epoch = %q, want 0", got)
	}
	if s.currentRole() != roleFenced {
		t.Fatalf("role after higher-epoch wal read = %v, want fenced", s.currentRole())
	}
	resp, body = postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{{"op": "set_prob", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.1}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable || decodeErr(t, body).Code != "fenced" {
		t.Fatalf("ingest after self-fence: %d (%s)", resp.StatusCode, body)
	}
	// Reads keep serving from the last published version.
	if resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("fenced node refused a read: %d", resp.StatusCode)
	}
	// And the metrics expose the transition.
	_, mb := getBody(t, ts.URL+"/metrics")
	for _, metric := range []string{`lapushd_role{role="fenced"} 1`, "lapushd_fenced_total 1", "lapushd_store_epoch 0"} {
		if !bytes.Contains(mb, []byte(metric)) {
			t.Fatalf("/metrics is missing %q", metric)
		}
	}
}

// TestWALRefusesForkedEpochClaim pins the position check's lineage
// half end to end: a follower whose (seq, fingerprint) matches the log
// — count-based fingerprints collide across forks at equal seq for an
// insert-only/fixed-shape workload — but whose epoch predates the
// record at that position is answered 409 diverged instead of being
// served the new lineage's records.
func TestWALRefusesForkedEpochClaim(t *testing.T) {
	s, ts := newTestServer(t, Config{Logf: quietf})
	for i := 0; i < 3; i++ {
		if _, err := s.store.Apply([]store.Mutation{
			{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pFloat(0.1 + float64(i)/10)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	fork := s.store.Current()
	if _, err := s.store.Promote(0); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	for i := 0; i < 2; i++ {
		if _, err := s.store.Apply([]store.Mutation{
			{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pFloat(0.5 + float64(i)/10)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := s.store.ReadLog(fork.Seq, "", 0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("ReadLog = %v, %v", recs, err)
	}
	rec4 := recs[0]

	// The forked replica presents the colliding fingerprint on epoch 0.
	resp, body := getBody(t, ts.URL+fmt.Sprintf("/v1/wal?from=%d&fp=%s&epoch=0&wait_ms=0", rec4.Seq, rec4.Fingerprint))
	if resp.StatusCode != http.StatusConflict || decodeErr(t, body).Code != "diverged" {
		t.Fatalf("forked epoch-0 claim: %d (%s), want 409 diverged", resp.StatusCode, body)
	}
	// The genuine epoch-1 follower at the same position streams fine.
	resp, _ = getBody(t, ts.URL+fmt.Sprintf("/v1/wal?from=%d&fp=%s&epoch=1&wait_ms=0", rec4.Seq, rec4.Fingerprint))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch-1 claim: %d, want 200", resp.StatusCode)
	}
	// As does a fork-point follower still carrying the old epoch.
	resp, _ = getBody(t, ts.URL+fmt.Sprintf("/v1/wal?from=%d&fp=%s&epoch=0&wait_ms=0", fork.Seq, fork.Fingerprint))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fork-point epoch-0 claim: %d, want 200", resp.StatusCode)
	}
}

// TestHealthzReportsEpochAndContact pins satellite 2: every role's
// /healthz carries the epoch, and a replica's reports the primary's
// epoch plus seconds since it last heard from it.
func TestHealthzReportsEpochAndContact(t *testing.T) {
	pair, err := NewHermeticPair(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	if resp, _ := postJSON(t, pair.Primary.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "create_relation", "rel": "Likes", "cols": []string{"user", "movie"}},
			{"op": "insert", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.9},
		},
	}); resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	waitPairConverged(t, pair)

	_, pb := getBody(t, pair.Primary.URL+"/healthz")
	var ph map[string]any
	if err := json.Unmarshal(pb, &ph); err != nil {
		t.Fatal(err)
	}
	if _, ok := ph["epoch"]; !ok {
		t.Fatalf("primary healthz has no epoch: %v", ph)
	}
	_, rb := getBody(t, pair.Replica.URL+"/healthz")
	var rh map[string]any
	if err := json.Unmarshal(rb, &rh); err != nil {
		t.Fatal(err)
	}
	lc, ok := rh["last_contact_seconds"].(float64)
	if !ok || lc < 0 || lc > 60 {
		t.Fatalf("replica healthz last_contact_seconds = %v", rh["last_contact_seconds"])
	}
	if rh["primary_epoch"] != float64(0) {
		t.Fatalf("replica healthz primary_epoch = %v, want 0", rh["primary_epoch"])
	}
	_, mb := getBody(t, pair.Replica.URL+"/metrics")
	if !bytes.Contains(mb, []byte("lapushd_replica_last_contact_seconds")) {
		t.Fatal("replica /metrics is missing lapushd_replica_last_contact_seconds")
	}
}
