package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lapushdb"
)

// movieDB builds the small uncertain movie-recommendation database used
// across the repo's tests.
func movieDB(t *testing.T) *lapushdb.DB {
	t.Helper()
	db := lapushdb.Open()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	likes, err := db.CreateRelation("Likes", "user", "movie")
	must(err)
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	must(err)
	fan, err := db.CreateRelation("Fan", "actor")
	must(err)
	must(likes.Insert(0.9, "ann", "heat"))
	must(likes.Insert(0.5, "bob", "heat"))
	must(likes.Insert(0.4, "bob", "ronin"))
	must(stars.Insert(0.8, "heat", "deniro"))
	must(stars.Insert(0.7, "ronin", "deniro"))
	must(stars.Insert(0.3, "heat", "pacino"))
	must(fan.Insert(0.6, "deniro"))
	must(fan.Insert(0.9, "pacino"))
	return db
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(movieDB(t), cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

const testQuery = "q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)"

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func decodeErr(t *testing.T, body []byte) apiError {
	t.Helper()
	var er errorResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("error body is not the JSON envelope: %v\n%s", err, body)
	}
	return er.Error
}

func TestQueryHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.Count != 2 || len(qr.Answers) != 2 {
		t.Fatalf("want 2 answers, got %+v", qr)
	}
	if qr.Answers[0].Score < qr.Answers[1].Score {
		t.Fatalf("answers not ranked: %+v", qr.Answers)
	}
	if qr.Method != "diss" || qr.Cache != "miss" {
		t.Fatalf("want method=diss cache=miss, got %+v", qr)
	}
	for _, a := range qr.Answers {
		if a.Score < 0 || a.Score > 1 {
			t.Fatalf("score out of range: %+v", a)
		}
	}
}

func TestQueryTopKAndMethods(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, method := range []string{"diss", "exact", "mc", "kl", "lineage", "sql"} {
		req := queryRequest{Query: testQuery, Method: method, Top: 1, Samples: 2000, Seed: 7}
		resp, body := postJSON(t, ts.URL+"/v1/query", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("method %s: status %d: %s", method, resp.StatusCode, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		if len(qr.Answers) != 1 {
			t.Fatalf("method %s: want top-1, got %d answers", method, len(qr.Answers))
		}
	}
}

func TestExplainHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/explain", explainRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er explainResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatal(err)
	}
	if er.Safe {
		t.Fatal("3-chain query should be unsafe")
	}
	if len(er.Plans) == 0 || er.SinglePlan == "" {
		t.Fatalf("want plans and a single plan, got %+v", er)
	}
	if len(er.Dissociations) != len(er.Plans) {
		t.Fatalf("want one dissociation per plan, got %+v", er)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var h struct {
		Status      string `json:"status"`
		Relations   int    `json:"relations"`
		Tuples      int    `json:"tuples"`
		Fingerprint string `json:"fingerprint"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Relations != 3 || h.Tuples != 8 || h.Fingerprint == "" {
		t.Fatalf("unexpected health payload: %+v", h)
	}
}

func TestRelations(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/relations")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var rr struct {
		Relations []relationJSON `json:"relations"`
	}
	if err := json.Unmarshal(body, &rr); err != nil {
		t.Fatal(err)
	}
	if len(rr.Relations) != 3 {
		t.Fatalf("want 3 relations, got %+v", rr)
	}
	byName := map[string]relationJSON{}
	for _, r := range rr.Relations {
		byName[r.Name] = r
	}
	if l := byName["Likes"]; l.Tuples != 3 || len(l.Cols) != 2 {
		t.Fatalf("unexpected Likes info: %+v", l)
	}
}

func TestMalformedJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, out.Bytes())
	}
	if e := decodeErr(t, out.Bytes()); e.Code != "bad_json" {
		t.Fatalf("want code bad_json, got %+v", e)
	}
}

func TestUnknownRelation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: "q(x) :- Nope(x)"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "bad_query" || !strings.Contains(e.Message, "Nope") {
		t.Fatalf("want bad_query naming the relation, got %+v", e)
	}
}

func TestValidationErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		req  queryRequest
		code string
	}{
		{queryRequest{Query: "   "}, "missing_query"},
		{queryRequest{Query: testQuery, Method: "bogus"}, "bad_method"},
		{queryRequest{Query: testQuery, Top: -1}, "bad_top"},
		{queryRequest{Query: testQuery, Samples: -5}, "bad_samples"},
		{queryRequest{Query: testQuery, TimeoutMS: -1}, "bad_timeout"},
	}
	for _, c := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/query", c.req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%+v: status %d, want 400: %s", c.req, resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Code != c.code {
			t.Fatalf("%+v: want code %s, got %+v", c.req, c.code, e)
		}
	}
	// Unknown fields are rejected too.
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(`{"query": "q(x) :- Fan(x)", "bogus_field": 1}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d, want 400", resp.StatusCode)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/query")
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("status %d, want 405: %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Allow") != http.MethodPost {
		t.Fatalf("want Allow: POST, got %q", resp.Header.Get("Allow"))
	}
}

func TestBodyTooLarge(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	big := fmt.Sprintf(`{"query": %q}`, strings.Repeat("x", 200))
	resp, err := http.Post(ts.URL+"/v1/query", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	_, _ = out.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413: %s", resp.StatusCode, out.Bytes())
	}
	if e := decodeErr(t, out.Bytes()); e.Code != "body_too_large" {
		t.Fatalf("want code body_too_large, got %+v", e)
	}
}

// metricValue extracts a single sample value from the Prometheus text
// output.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in:\n%s", name, text)
	return 0
}

func TestPlanCacheHitVsMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	scrape := func() string {
		_, body := getBody(t, ts.URL+"/metrics")
		return string(body)
	}

	m0 := scrape()
	hits0 := metricValue(t, m0, "lapushd_plan_cache_hits_total")
	misses0 := metricValue(t, m0, "lapushd_plan_cache_misses_total")

	// First query: miss.
	resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var qr queryResponse
	_ = json.Unmarshal(body, &qr)
	if qr.Cache != "miss" {
		t.Fatalf("first query: want cache miss, got %q", qr.Cache)
	}
	m1 := scrape()
	if got := metricValue(t, m1, "lapushd_plan_cache_misses_total"); got != misses0+1 {
		t.Fatalf("want misses %v, got %v", misses0+1, got)
	}

	// Same query again (whitespace variant normalizes identically): hit.
	variant := strings.ReplaceAll(testQuery, ", ", ",   ")
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: variant})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_ = json.Unmarshal(body, &qr)
	if qr.Cache != "hit" {
		t.Fatalf("repeated query: want cache hit, got %q", qr.Cache)
	}
	m2 := scrape()
	if got := metricValue(t, m2, "lapushd_plan_cache_hits_total"); got != hits0+1 {
		t.Fatalf("want hits %v, got %v", hits0+1, got)
	}
	if got := metricValue(t, m2, "lapushd_plan_cache_entries"); got < 1 {
		t.Fatalf("want at least 1 cache entry, got %v", got)
	}

	// A different method misses (its own key) without touching the first.
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery, Method: "exact"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_ = json.Unmarshal(body, &qr)
	if qr.Cache != "miss" {
		t.Fatalf("new method: want cache miss, got %q", qr.Cache)
	}
}

func TestPlanCacheEviction(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheSize: 1})
	post := func(method string) {
		resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery, Method: method, Samples: 100})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
	}
	post("diss")
	post("exact") // evicts the diss entry
	_, body := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(body), "lapushd_plan_cache_evictions_total"); got != 1 {
		t.Fatalf("want 1 eviction, got %v", got)
	}
	if got := metricValue(t, string(body), "lapushd_plan_cache_entries"); got != 1 {
		t.Fatalf("want 1 entry, got %v", got)
	}
}

func TestDeadlineExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	// Monte Carlo with a huge sample budget polls the context every 1024
	// samples, so a 1ms deadline cancels it long before completion.
	req := queryRequest{Query: testQuery, Method: "mc", Samples: 10_000_000, TimeoutMS: 1}
	resp, body := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "deadline_exceeded" {
		t.Fatalf("want code deadline_exceeded, got %+v", e)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(mbody), "lapushd_queries_cancelled_total"); got < 1 {
		t.Fatalf("want cancellation counted, got %v", got)
	}
}

func TestConcurrentQueries(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	queries := []queryRequest{
		{Query: testQuery},
		{Query: testQuery, Method: "exact"},
		{Query: testQuery, Method: "mc", Samples: 1000, Seed: 1},
		{Query: testQuery, Method: "kl", Samples: 1000, Seed: 2},
		{Query: "q(movie) :- Likes(user, movie), Stars(movie, actor)"},
		{Query: "q(actor) :- Stars(movie, actor), Fan(actor)", Method: "lineage"},
		{Query: testQuery, Method: "sql"},
		{Query: testQuery, Top: 1},
	}
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(queries)*rounds)
	for r := 0; r < rounds; r++ {
		for _, q := range queries {
			wg.Add(1)
			go func(q queryRequest) {
				defer wg.Done()
				buf, _ := json.Marshal(q)
				resp, err := http.Post(ts.URL+"/v1/query", "application/json", bytes.NewReader(buf))
				if err != nil {
					errs <- err
					return
				}
				defer resp.Body.Close()
				var out bytes.Buffer
				_, _ = out.ReadFrom(resp.Body)
				if resp.StatusCode != http.StatusOK {
					errs <- fmt.Errorf("query %q: status %d: %s", q.Query, resp.StatusCode, out.Bytes())
					return
				}
				var qr queryResponse
				if err := json.Unmarshal(out.Bytes(), &qr); err != nil {
					errs <- err
					return
				}
				if qr.Count == 0 {
					errs <- fmt.Errorf("query %q: no answers", q.Query)
				}
			}(q)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// All in-flight gauges drained back to zero.
	_, mbody := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(mbody), `lapushd_in_flight_requests{endpoint="query"}`); got != 0 {
		t.Fatalf("want 0 in-flight after drain, got %v", got)
	}
}

func TestPanicRecovery(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.mux.HandleFunc("/boom", s.instrument("query", http.MethodGet, func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))
	resp, body := getBody(t, ts.URL+"/boom")
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "internal" {
		t.Fatalf("want code internal, got %+v", e)
	}
	_, mbody := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(mbody), "lapushd_panics_recovered_total"); got != 1 {
		t.Fatalf("want 1 recovered panic, got %v", got)
	}
}

func TestExplainUsesCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/explain", explainRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var er explainResponse
	_ = json.Unmarshal(body, &er)
	if er.Cache != "miss" {
		t.Fatalf("first explain: want miss, got %q", er.Cache)
	}
	resp, body = postJSON(t, ts.URL+"/v1/explain", explainRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	_ = json.Unmarshal(body, &er)
	if er.Cache != "hit" {
		t.Fatalf("repeated explain: want hit, got %q", er.Cache)
	}
}
