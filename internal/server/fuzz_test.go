package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"lapushdb"
)

// fuzzDB is movieDB without the *testing.T plumbing, so the fuzz
// harness can build one database in setup.
func fuzzDB() *lapushdb.DB {
	db := lapushdb.Open()
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}
	likes, err := db.CreateRelation("Likes", "user", "movie")
	must(err)
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	must(err)
	fan, err := db.CreateRelation("Fan", "actor")
	must(err)
	must(likes.Insert(0.9, "ann", "heat"))
	must(likes.Insert(0.5, "bob", "heat"))
	must(stars.Insert(0.8, "heat", "deniro"))
	must(stars.Insert(0.3, "heat", "pacino"))
	must(fan.Insert(0.6, "deniro"))
	return db
}

// FuzzRankBatchRequest fuzzes the /v1/rank_batch request path end to
// end — JSON decoding, validation, evaluation, the result cache — and
// the result-cache key derivation. Two invariants:
//
//  1. no input makes the handler panic (instrument recovers panics and
//     counts them, so the recovered counter must not move); and
//  2. the cache key is injective over its inputs: deriving it for the
//     same request twice matches, and perturbing any single
//     result-affecting field (method, schema flag, samples, seed,
//     query, version fingerprint) changes the key — collisions happen
//     only for semantically equal requests.
func FuzzRankBatchRequest(f *testing.F) {
	f.Add(`{"queries":[{"query":"q(user) :- Likes(user, movie)"}]}`)
	f.Add(`{"queries":[{"query":"q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)","top":1},{"query":"q(a) :- Fan(a)"}],"method":"mc","samples":50,"seed":7}`)
	f.Add(`{"queries":[{"query":"q(a) :- Fan(a)"},{"query":"q(a) :- Fan(a)"}],"ignore_schema":true}`)
	f.Add(`{"queries":[]}`)
	f.Add(`{"queries":[{"query":""},{"query":"   "},{"query":"q(x :- broken("}]}`)
	f.Add(`{"queries":[{"query":"q(a) :- Fan(a)","top":-1}],"samples":-1,"timeout_ms":-1}`)
	f.Add(`[{"query":"not an object"}]`)
	f.Add(`{"queries":[{"query":"q() :- Likes(u, m)"}],"method":"exact","parallelism":4,"max_rows":10}`)
	f.Add("{\"queries\":[{\"query\":\"q(a) :- Fan(a)\\u0000\"}],\"method\":\"diss\\u0000x\"}")

	db := fuzzDB()
	// Small limits bound the work one fuzz input can demand: few
	// queries, small bodies, and a tight deadline ceiling.
	s := New(db, Config{
		MaxBatchQueries: 4,
		MaxBodyBytes:    4096,
		DefaultTimeout:  200 * time.Millisecond,
		MaxTimeout:      200 * time.Millisecond,
	})

	f.Fuzz(func(t *testing.T, body string) {
		before := s.metrics.panicsRecovered.Load()
		r := httptest.NewRequest(http.MethodPost, "/v1/rank_batch", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if got := s.metrics.panicsRecovered.Load(); got != before {
			t.Fatalf("handler panicked on body %q", body)
		}
		if w.Code == 0 {
			t.Fatalf("no status written for body %q", body)
		}

		// Key derivation invariants, on whatever decodes as a request.
		var req batchRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			return
		}
		for _, bq := range req.Queries {
			normalized, err := db.NormalizeQuery(bq.Query)
			if err != nil {
				continue
			}
			key := resultCacheKey("fp1", req.Method, normalized, req.IgnoreSchema, req.Samples, req.Seed)
			if again := resultCacheKey("fp1", req.Method, normalized, req.IgnoreSchema, req.Samples, req.Seed); again != key {
				t.Fatalf("key derivation not deterministic: %q vs %q", key, again)
			}
			perturbed := []string{
				resultCacheKey("fp2", req.Method, normalized, req.IgnoreSchema, req.Samples, req.Seed),
				resultCacheKey("fp1", req.Method+"x", normalized, req.IgnoreSchema, req.Samples, req.Seed),
				resultCacheKey("fp1", req.Method, normalized+", Fan(zz)", req.IgnoreSchema, req.Samples, req.Seed),
				resultCacheKey("fp1", req.Method, normalized, !req.IgnoreSchema, req.Samples, req.Seed),
				resultCacheKey("fp1", req.Method, normalized, req.IgnoreSchema, req.Samples+1, req.Seed),
				resultCacheKey("fp1", req.Method, normalized, req.IgnoreSchema, req.Samples, req.Seed+1),
			}
			for i, p := range perturbed {
				if p == key {
					t.Fatalf("perturbation %d collided with original key %q (body %q)", i, key, body)
				}
			}
		}
	})
}

// FuzzAnytimeRequest fuzzes the /v1/query anytime path: arbitrary
// bodies — epsilon variants included — must never panic the handler,
// and every 200 response that carries intervals must carry well-formed
// ones: 0 <= lower <= upper <= 1, score echoing the upper bound, and a
// non-negative width no wider than 1.
func FuzzAnytimeRequest(f *testing.F) {
	f.Add(`{"query":"q(user) :- Likes(user, movie), Stars(movie, actor), Fan(actor)","epsilon":0.1}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":0}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":0.5,"samples":10,"seed":3,"top":1}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":1}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":-1}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":null}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":"0.1"}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":1e308}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":0.2,"method":"mc"}`)
	f.Add(`{"query":"q(a) :- Fan(a)","epsilon":0.2,"max_rows":1,"timeout_ms":1}`)
	f.Add(`{"query":"q(x :- broken(","epsilon":0.3}`)

	db := fuzzDB()
	s := New(db, Config{
		MaxBodyBytes:   4096,
		DefaultTimeout: 200 * time.Millisecond,
		MaxTimeout:     200 * time.Millisecond,
	})

	f.Fuzz(func(t *testing.T, body string) {
		before := s.metrics.panicsRecovered.Load()
		r := httptest.NewRequest(http.MethodPost, "/v1/query", strings.NewReader(body))
		w := httptest.NewRecorder()
		s.ServeHTTP(w, r)
		if got := s.metrics.panicsRecovered.Load(); got != before {
			t.Fatalf("handler panicked on body %q", body)
		}
		if w.Code != http.StatusOK {
			return
		}
		var qr queryResponse
		if err := json.Unmarshal(w.Body.Bytes(), &qr); err != nil {
			t.Fatalf("200 response is not valid JSON for body %q: %v", body, err)
		}
		for i, a := range qr.Answers {
			if a.Interval == nil {
				continue
			}
			iv := a.Interval
			if iv.Lower < 0 || iv.Upper > 1 || iv.Lower > iv.Upper {
				t.Fatalf("malformed interval [%g, %g] at answer %d (body %q)", iv.Lower, iv.Upper, i, body)
			}
			if a.Score != iv.Upper {
				t.Fatalf("score %g != upper %g at answer %d (body %q)", a.Score, iv.Upper, i, body)
			}
		}
		if qr.Width != nil && (*qr.Width < 0 || *qr.Width > 1) {
			t.Fatalf("width %g out of range (body %q)", *qr.Width, body)
		}
	})
}
