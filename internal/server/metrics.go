package server

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// metrics is a hand-rolled, dependency-free registry rendering in the
// Prometheus text exposition format: per-endpoint request counts by
// status code, per-endpoint latency histograms, in-flight gauges, and
// the plan cache's hit/miss/eviction counters.
type metrics struct {
	endpoints map[string]*endpointMetrics

	cacheHits      atomic.Int64
	cacheMisses    atomic.Int64
	cacheEvictions atomic.Int64
	cacheEntries   func() int // reads the cache size at render time

	resultCacheHits      atomic.Int64
	resultCacheMisses    atomic.Int64
	resultCacheEvictions atomic.Int64
	resultCacheEntries   func() int // reads the result cache size at render time

	batchQueriesTotal atomic.Int64 // queries received via /v1/rank_batch
	sharedSubplanHits atomic.Int64 // cross-query subplan reuses within batches

	anytimeConverged atomic.Int64   // anytime responses whose every interval met epsilon
	anytimeDegraded  atomic.Int64   // anytime responses served best-so-far after deadline/budget/shed
	anytimeWidth     widthHistogram // interval width of every served anytime response

	queriesCancelled atomic.Int64
	panicsRecovered  atomic.Int64
	requestsRejected atomic.Int64 // worker-pool admission failures
	partitionsTotal  atomic.Int64 // morsel chunks + join partitions processed
	shedTotal        atomic.Int64 // requests shed at admission (deadline < queue wait)
	budgetExceeded   atomic.Int64 // queries aborted by their row budget

	fencedTotal atomic.Int64 // primary→fenced transitions (0 or 1 per process)

	storeStats func() store.Stats // reads the store's counters at render time

	// replicaStatus, when non-nil, reads the replica tailer's state at
	// render time; the lapushd_replica_* family is emitted only then.
	replicaStatus func() replica.Status

	// serverRole, when non-nil, reads the failover role ("primary",
	// "replica", "fenced") at render time.
	serverRole func() string
}

// latencyBuckets are the histogram upper bounds in seconds.
var latencyBuckets = []float64{0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}

// widthBuckets are the interval-width histogram upper bounds. A width
// is a probability difference, so 1 is the natural +Inf-adjacent bound.
var widthBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1}

// widthHistogram records the achieved interval width of every served
// anytime response: the operational view of how tight the bounds the
// server is actually handing out are.
type widthHistogram struct {
	mu      sync.Mutex
	buckets [10]int64 // one per widthBuckets entry
	sum     float64
	count   int64
}

func (h *widthHistogram) observe(w float64) {
	h.mu.Lock()
	for i, ub := range widthBuckets {
		if w <= ub {
			h.buckets[i]++
			break
		}
	}
	h.sum += w
	h.count++
	h.mu.Unlock()
}

type endpointMetrics struct {
	inFlight atomic.Int64

	mu      sync.Mutex
	byCode  map[int]int64
	buckets []int64 // one per latencyBuckets entry, cumulative at render
	sum     float64
	count   int64
}

func newMetrics(endpoints []string, cacheEntries func() int) *metrics {
	m := &metrics{endpoints: make(map[string]*endpointMetrics, len(endpoints)), cacheEntries: cacheEntries}
	for _, e := range endpoints {
		m.endpoints[e] = &endpointMetrics{
			byCode:  map[int]int64{},
			buckets: make([]int64, len(latencyBuckets)),
		}
	}
	return m
}

// observe records one finished request.
func (m *metrics) observe(endpoint string, code int, seconds float64) {
	e := m.endpoints[endpoint]
	if e == nil {
		return
	}
	e.mu.Lock()
	e.byCode[code]++
	for i, ub := range latencyBuckets {
		if seconds <= ub {
			e.buckets[i]++
			break
		}
	}
	e.sum += seconds
	e.count++
	e.mu.Unlock()
}

func (m *metrics) enter(endpoint string) {
	if e := m.endpoints[endpoint]; e != nil {
		e.inFlight.Add(1)
	}
}

func (m *metrics) exit(endpoint string) {
	if e := m.endpoints[endpoint]; e != nil {
		e.inFlight.Add(-1)
	}
}

// render writes the whole registry in Prometheus text format with
// stable ordering.
func (m *metrics) render(b *strings.Builder) {
	names := make([]string, 0, len(m.endpoints))
	for n := range m.endpoints {
		names = append(names, n)
	}
	sort.Strings(names)

	b.WriteString("# TYPE lapushd_requests_total counter\n")
	for _, n := range names {
		e := m.endpoints[n]
		e.mu.Lock()
		codes := make([]int, 0, len(e.byCode))
		for c := range e.byCode {
			codes = append(codes, c)
		}
		sort.Ints(codes)
		for _, c := range codes {
			fmt.Fprintf(b, "lapushd_requests_total{endpoint=%q,code=%q} %d\n", n, strconv.Itoa(c), e.byCode[c])
		}
		e.mu.Unlock()
	}

	b.WriteString("# TYPE lapushd_request_duration_seconds histogram\n")
	for _, n := range names {
		e := m.endpoints[n]
		e.mu.Lock()
		cum := int64(0)
		for i, ub := range latencyBuckets {
			cum += e.buckets[i]
			fmt.Fprintf(b, "lapushd_request_duration_seconds_bucket{endpoint=%q,le=%q} %d\n", n, formatFloat(ub), cum)
		}
		fmt.Fprintf(b, "lapushd_request_duration_seconds_bucket{endpoint=%q,le=\"+Inf\"} %d\n", n, e.count)
		fmt.Fprintf(b, "lapushd_request_duration_seconds_sum{endpoint=%q} %s\n", n, formatFloat(e.sum))
		fmt.Fprintf(b, "lapushd_request_duration_seconds_count{endpoint=%q} %d\n", n, e.count)
		e.mu.Unlock()
	}

	b.WriteString("# TYPE lapushd_in_flight_requests gauge\n")
	for _, n := range names {
		fmt.Fprintf(b, "lapushd_in_flight_requests{endpoint=%q} %d\n", n, m.endpoints[n].inFlight.Load())
	}

	b.WriteString("# TYPE lapushd_plan_cache_hits_total counter\n")
	fmt.Fprintf(b, "lapushd_plan_cache_hits_total %d\n", m.cacheHits.Load())
	b.WriteString("# TYPE lapushd_plan_cache_misses_total counter\n")
	fmt.Fprintf(b, "lapushd_plan_cache_misses_total %d\n", m.cacheMisses.Load())
	b.WriteString("# TYPE lapushd_plan_cache_evictions_total counter\n")
	fmt.Fprintf(b, "lapushd_plan_cache_evictions_total %d\n", m.cacheEvictions.Load())
	b.WriteString("# TYPE lapushd_plan_cache_entries gauge\n")
	fmt.Fprintf(b, "lapushd_plan_cache_entries %d\n", m.cacheEntries())

	b.WriteString("# TYPE lapushd_result_cache_hits_total counter\n")
	fmt.Fprintf(b, "lapushd_result_cache_hits_total %d\n", m.resultCacheHits.Load())
	b.WriteString("# TYPE lapushd_result_cache_misses_total counter\n")
	fmt.Fprintf(b, "lapushd_result_cache_misses_total %d\n", m.resultCacheMisses.Load())
	b.WriteString("# TYPE lapushd_result_cache_evictions_total counter\n")
	fmt.Fprintf(b, "lapushd_result_cache_evictions_total %d\n", m.resultCacheEvictions.Load())
	if m.resultCacheEntries != nil {
		b.WriteString("# TYPE lapushd_result_cache_entries gauge\n")
		fmt.Fprintf(b, "lapushd_result_cache_entries %d\n", m.resultCacheEntries())
	}

	b.WriteString("# TYPE lapushd_batch_queries_total counter\n")
	fmt.Fprintf(b, "lapushd_batch_queries_total %d\n", m.batchQueriesTotal.Load())
	b.WriteString("# TYPE lapushd_shared_subplan_hits_total counter\n")
	fmt.Fprintf(b, "lapushd_shared_subplan_hits_total %d\n", m.sharedSubplanHits.Load())

	b.WriteString("# TYPE lapushd_queries_cancelled_total counter\n")
	fmt.Fprintf(b, "lapushd_queries_cancelled_total %d\n", m.queriesCancelled.Load())
	b.WriteString("# TYPE lapushd_panics_recovered_total counter\n")
	fmt.Fprintf(b, "lapushd_panics_recovered_total %d\n", m.panicsRecovered.Load())
	b.WriteString("# TYPE lapushd_requests_rejected_total counter\n")
	fmt.Fprintf(b, "lapushd_requests_rejected_total %d\n", m.requestsRejected.Load())
	b.WriteString("# TYPE lapushd_partitions_total counter\n")
	fmt.Fprintf(b, "lapushd_partitions_total %d\n", m.partitionsTotal.Load())
	b.WriteString("# TYPE lapushd_shed_total counter\n")
	fmt.Fprintf(b, "lapushd_shed_total %d\n", m.shedTotal.Load())
	b.WriteString("# TYPE lapushd_budget_exceeded_total counter\n")
	fmt.Fprintf(b, "lapushd_budget_exceeded_total %d\n", m.budgetExceeded.Load())

	b.WriteString("# TYPE lapushd_anytime_converged_total counter\n")
	fmt.Fprintf(b, "lapushd_anytime_converged_total %d\n", m.anytimeConverged.Load())
	b.WriteString("# TYPE lapushd_anytime_degraded_total counter\n")
	fmt.Fprintf(b, "lapushd_anytime_degraded_total %d\n", m.anytimeDegraded.Load())
	b.WriteString("# TYPE lapushd_anytime_interval_width histogram\n")
	m.anytimeWidth.mu.Lock()
	cumW := int64(0)
	for i, ub := range widthBuckets {
		cumW += m.anytimeWidth.buckets[i]
		fmt.Fprintf(b, "lapushd_anytime_interval_width_bucket{le=%q} %d\n", formatFloat(ub), cumW)
	}
	fmt.Fprintf(b, "lapushd_anytime_interval_width_bucket{le=\"+Inf\"} %d\n", m.anytimeWidth.count)
	fmt.Fprintf(b, "lapushd_anytime_interval_width_sum %s\n", formatFloat(m.anytimeWidth.sum))
	fmt.Fprintf(b, "lapushd_anytime_interval_width_count %d\n", m.anytimeWidth.count)
	m.anytimeWidth.mu.Unlock()

	if m.storeStats != nil {
		st := m.storeStats()
		b.WriteString("# TYPE lapushd_store_version gauge\n")
		fmt.Fprintf(b, "lapushd_store_version %d\n", st.Seq)
		b.WriteString("# TYPE lapushd_store_mutations_total counter\n")
		fmt.Fprintf(b, "lapushd_store_mutations_total %d\n", st.MutationsTotal)
		b.WriteString("# TYPE lapushd_store_wal_bytes gauge\n")
		fmt.Fprintf(b, "lapushd_store_wal_bytes %d\n", st.WALBytes)
		b.WriteString("# TYPE lapushd_store_checkpoints_total counter\n")
		fmt.Fprintf(b, "lapushd_store_checkpoints_total %d\n", st.Checkpoints)
		b.WriteString("# TYPE lapushd_store_wal_truncations_total counter\n")
		fmt.Fprintf(b, "lapushd_store_wal_truncations_total %d\n", st.WALTruncations)
		b.WriteString("# TYPE lapushd_store_readonly gauge\n")
		fmt.Fprintf(b, "lapushd_store_readonly %d\n", boolGauge(st.ReadOnly))
		b.WriteString("# TYPE lapushd_store_epoch gauge\n")
		fmt.Fprintf(b, "lapushd_store_epoch %d\n", st.Epoch)
	}

	if m.serverRole != nil {
		role := m.serverRole()
		b.WriteString("# TYPE lapushd_role gauge\n")
		for _, r := range []string{"primary", "replica", "fenced"} {
			fmt.Fprintf(b, "lapushd_role{role=%q} %d\n", r, boolGauge(r == role))
		}
		b.WriteString("# TYPE lapushd_fenced_total counter\n")
		fmt.Fprintf(b, "lapushd_fenced_total %d\n", m.fencedTotal.Load())
	}

	if m.replicaStatus != nil {
		rs := m.replicaStatus()
		b.WriteString("# TYPE lapushd_replica_lag_seconds gauge\n")
		fmt.Fprintf(b, "lapushd_replica_lag_seconds %s\n", formatFloat(rs.LagSeconds))
		b.WriteString("# TYPE lapushd_replica_applied_seq gauge\n")
		fmt.Fprintf(b, "lapushd_replica_applied_seq %d\n", rs.AppliedSeq)
		b.WriteString("# TYPE lapushd_replica_head_seq gauge\n")
		fmt.Fprintf(b, "lapushd_replica_head_seq %d\n", rs.HeadSeq)
		b.WriteString("# TYPE lapushd_replica_connected gauge\n")
		fmt.Fprintf(b, "lapushd_replica_connected %d\n", boolGauge(rs.Connected))
		b.WriteString("# TYPE lapushd_replica_reconnects_total counter\n")
		fmt.Fprintf(b, "lapushd_replica_reconnects_total %d\n", rs.Reconnects)
		b.WriteString("# TYPE lapushd_replica_bootstraps_total counter\n")
		fmt.Fprintf(b, "lapushd_replica_bootstraps_total %d\n", rs.Bootstraps)
		b.WriteString("# TYPE lapushd_replica_last_contact_seconds gauge\n")
		fmt.Fprintf(b, "lapushd_replica_last_contact_seconds %s\n", formatFloat(rs.LastContactSeconds))
		b.WriteString("# TYPE lapushd_replica_primary_epoch gauge\n")
		fmt.Fprintf(b, "lapushd_replica_primary_epoch %d\n", rs.PrimaryEpoch)
	}
}

func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}
