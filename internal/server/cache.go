package server

import (
	"container/list"
	"sync"

	"lapushdb"
)

// planCache is a bounded LRU cache of prepared statements. The cached
// value is a *lapushdb.Prepared — the parsed query with its minimal
// plans and merged single plan already enumerated — because plan search
// is the expensive lifted-inference step; answer probabilities are
// always computed fresh against the data. Keys combine the normalized
// query, the method, and the database's schema fingerprint (see
// Server.cacheKey), so a schema change or reload naturally invalidates
// every entry.
//
// Prepared values are immutable, so a single entry may be handed to any
// number of concurrent requests.
type planCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	onEvict func() // metrics hook, called with mu held
}

type cacheEntry struct {
	key string
	p   *lapushdb.Prepared
}

func newPlanCache(capacity int) *planCache {
	if capacity <= 0 {
		capacity = 1
	}
	return &planCache{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached statement and promotes it to most recent.
func (c *planCache) get(key string) (*lapushdb.Prepared, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).p, true
}

// put inserts a statement, evicting the least recently used entry when
// the cache is full. Re-inserting an existing key refreshes its value
// and recency.
func (c *planCache) put(key string, p *lapushdb.Prepared) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*cacheEntry).p = p
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, p: p})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// len returns the number of cached statements.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
