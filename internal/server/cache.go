package server

import (
	"container/list"
	"sync"

	"lapushdb"
)

// Bounded LRU caches. The server runs two of them over the same
// implementation:
//
//   - the plan cache, holding *lapushdb.Prepared values — the parsed
//     query with its minimal plans and merged single plan already
//     enumerated, because plan search is the expensive lifted-inference
//     step; and
//   - the result cache, holding *cachedResult values — fully evaluated
//     answer lists, so a repeated identical request skips evaluation
//     entirely.
//
// Keys for both are scoped by the pinned store version's fingerprint
// (see cacheKey and resultCacheKey), so every ingested mutation batch
// invalidates stale entries naturally. Cached values are immutable and
// may be handed to any number of concurrent requests.
type lruCache[V any] struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element

	onEvict func() // metrics hook, called with mu held
}

type lruEntry[V any] struct {
	key string
	val V
}

func newLRU[V any](capacity int) *lruCache[V] {
	if capacity <= 0 {
		capacity = 1
	}
	return &lruCache[V]{cap: capacity, ll: list.New(), items: map[string]*list.Element{}}
}

// get returns the cached value and promotes it to most recent.
func (c *lruCache[V]) get(key string) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry[V]).val, true
}

// put inserts a value, evicting the least recently used entry when the
// cache is full. Re-inserting an existing key refreshes its value and
// recency.
func (c *lruCache[V]) put(key string, v V) { c.putIf(key, v, nil) }

// putIf is put with a compare-and-swap guard: when the key is already
// present and keep(old) reports true, the existing value is retained
// (its recency still refreshes). The check and the write happen under
// one lock acquisition, so two concurrent inserts can never interleave
// a get-then-put and let the value keep() meant to protect be
// overwritten. A nil keep always replaces.
func (c *lruCache[V]) putIf(key string, v V, keep func(old V) bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*lruEntry[V])
		if keep == nil || !keep(ent.val) {
			ent.val = v
		}
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry[V]{key: key, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry[V]).key)
		if c.onEvict != nil {
			c.onEvict()
		}
	}
}

// len returns the number of cached entries.
func (c *lruCache[V]) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// planCache is the prepared-statement LRU (see the package comment
// above for what it stores and why).
type planCache = lruCache[*lapushdb.Prepared]

func newPlanCache(capacity int) *planCache { return newLRU[*lapushdb.Prepared](capacity) }
