package server

// Primary-side replication serving: /v1/wal streams the store's
// retained log to tailing replicas in the frame encoding of
// internal/replica, and /v1/checkpoint ships a full fingerprinted
// snapshot for bootstrap. Both endpoints read the same published
// versions every query pins, so they never block the applier; both are
// served by every lapushd, which is what lets replicas chain (a replica
// retains its own log tail as it applies, so a second tier can tail the
// first).

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// walChunk is how many retained records one ReadLog call fetches while
// streaming; a bound keeps the log lock's hold times short.
const walChunk = 256

// parseUintParam parses an optional unsigned query parameter.
func parseUintParam(r *http.Request, name string, def uint64) (uint64, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return def, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("parameter %q must be an unsigned integer", name)
	}
	return v, nil
}

// handleWAL streams retained log records after ?from=<seq> as
// length-prefixed CRC-checked frames. ?fp=<fingerprint>, when present,
// is the caller's fingerprint at that position and is verified before
// anything streams: a position older than the retained tail answers 410
// (bootstrap from /v1/checkpoint), a fingerprint mismatch or a position
// past the head answers 409. The stream long-polls at the head for up
// to ?wait_ms (capped by WALStreamWindow), re-sending a head frame each
// time it drains, and ends with an "end" frame so the client can tell a
// clean window close from a cut.
func (s *Server) handleWAL(w http.ResponseWriter, r *http.Request) {
	from, err := parseUintParam(r, "from", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	waitMS, err := parseUintParam(r, "wait_ms", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	reqEpoch, err := parseUintParam(r, "epoch", 0)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_param", err.Error())
		return
	}
	// A tailer presenting a higher epoch than ours is following a newer
	// lineage: this node was failed over while it wasn't looking. Fence
	// (a no-op unless we're a primary) and refuse, reporting our epoch so
	// the caller can tell a stale primary from genuine divergence.
	if localEpoch := s.store.Epoch(); reqEpoch > localEpoch {
		s.fence("", reqEpoch)
		w.Header().Set("X-Lapushd-Epoch", strconv.FormatUint(localEpoch, 10))
		writeError(w, http.StatusConflict, "stale_primary",
			fmt.Sprintf("caller is on promotion epoch %d but this node is on %d; it must not serve a newer lineage's follower", reqEpoch, localEpoch))
		return
	}
	window := time.Duration(waitMS) * time.Millisecond
	if window > s.cfg.WALStreamWindow {
		window = s.cfg.WALStreamWindow
	}
	fp := r.URL.Query().Get("fp")

	// Validate the position — fingerprint parity AND epoch lineage —
	// before committing to a 200: refusals must arrive as statuses, not
	// mid-stream cuts. The epoch check is what catches a replica that
	// forked past the promotion point: count-based fingerprints can
	// collide across lineages at equal seq, but the epoch stamped on the
	// record at the claimed position cannot.
	recs, err := s.store.ReadLog(from, fp, reqEpoch, walChunk)
	switch {
	case errors.Is(err, store.ErrLogTruncated):
		writeError(w, http.StatusGone, "log_truncated", err.Error())
		return
	case errors.Is(err, store.ErrDiverged):
		writeError(w, http.StatusConflict, "diverged", err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}

	w.Header().Set("Content-Type", "application/octet-stream")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	flush := func() {
		if fl != nil {
			fl.Flush()
		}
	}
	deadline := time.Now().Add(window)
	pos := from
	for {
		if len(recs) > 0 {
			for _, rec := range recs {
				if err := replica.WriteFrame(w, replica.RecordFrame(rec)); err != nil {
					return // client gone; the cut is the signal
				}
				pos = rec.Seq
			}
			flush()
			// The position is our own now; no fingerprint re-check.
			if recs, err = s.store.ReadLog(pos, "", 0, walChunk); err != nil {
				// A concurrent trim overtook the stream position; close
				// so the client re-requests and gets the 410 properly.
				return
			}
			continue
		}
		// Drained to the head: report it, then long-poll for more.
		head := s.store.Current()
		if err := replica.WriteFrame(w, replica.HeadFrame(head.Seq, head.Fingerprint, head.Epoch)); err != nil {
			return
		}
		flush()
		if time.Until(deadline) <= 0 {
			break
		}
		wctx, cancel := context.WithDeadline(r.Context(), deadline)
		err := s.store.WaitForSeq(wctx, pos+1)
		cancel()
		if err != nil {
			break // window elapsed or client gone; end cleanly either way
		}
		if recs, err = s.store.ReadLog(pos, "", 0, walChunk); err != nil {
			return
		}
	}
	_ = replica.WriteFrame(w, replica.Frame{Type: replica.FrameEnd})
	flush()
}

// handleCheckpoint ships the current published version as a snapshot in
// the .lpd format, with its position in the X-Lapushd-Seq and
// X-Lapushd-Fingerprint headers. The version is pinned up front
// (snapshot isolation), so concurrent ingestion never tears the export;
// replicas verify the fingerprint after loading and then tail /v1/wal
// from the shipped seq.
func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	v := s.store.Current()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Lapushd-Seq", strconv.FormatUint(v.Seq, 10))
	w.Header().Set("X-Lapushd-Fingerprint", v.Fingerprint)
	w.Header().Set("X-Lapushd-Epoch", strconv.FormatUint(v.Epoch, 10))
	w.WriteHeader(http.StatusOK)
	// Mid-write failures surface to the client as a short body; the
	// loader's format checks catch it there.
	_ = v.DB.Save(w)
}
