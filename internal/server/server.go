// Package server is lapushd's HTTP/JSON query service: a concurrent
// front end over a versioned store.Store with a bounded LRU plan cache,
// a worker-pool executor with per-request deadlines, hand-rolled
// Prometheus-format metrics, and defensive middleware (request size
// limits, structured JSON errors, panic recovery).
//
// Endpoints:
//
//	POST /v1/query      {"query", "method", "top", "samples", "seed", "timeout_ms", "ignore_schema"}
//	POST /v1/rank_batch {"queries": [{"query", "top"}, ...], "method", "samples", "seed", "timeout_ms", ...}
//	POST /v1/explain    {"query", "ignore_schema", "timeout_ms"}
//	POST /v1/ingest     {"mutations": [{"op", "rel", ...}, ...]}
//	GET  /v1/relations
//	GET  /v1/store
//	GET  /healthz
//	GET  /metrics
//
// Every read request pins the store version that is current when it
// starts and uses it throughout (snapshot isolation): concurrent
// ingestion never changes a query's result mid-flight, and results are
// bit-identical to evaluating the pinned version standalone. Plan-cache
// keys are scoped by the pinned version's fingerprint, so mutations
// invalidate stale plans naturally.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lapushdb"
	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds the number of queries evaluating concurrently
	// (default 8). Requests beyond the bound wait in line, still subject
	// to their deadline.
	Workers int
	// CacheSize bounds the plan cache's entry count (default 256).
	CacheSize int
	// ResultCacheSize bounds the result cache's entry count (default
	// 512). The result cache serves repeated identical requests against
	// an unchanged store version without re-evaluation; ingestion
	// invalidates it naturally because keys embed the version
	// fingerprint.
	ResultCacheSize int
	// MaxBatchQueries caps the number of queries one /v1/rank_batch
	// request may carry (default 64).
	MaxBatchQueries int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes limits request body size (default 1 MiB).
	MaxBodyBytes int64
	// MaxSamples caps Monte Carlo sample counts (default 10,000,000).
	MaxSamples int
	// Parallelism is the default intra-query worker count: each query's
	// operators split row ranges into morsels evaluated on up to this
	// many goroutines (default 1, sequential). Requests may override it
	// with the "parallelism" field, capped at MaxParallelism. Results are
	// bit-identical across all settings.
	Parallelism int
	// MaxParallelism caps per-request parallelism (default 32).
	MaxParallelism int
	// MaxRows bounds the intermediate rows one query may materialize
	// (and is the ceiling for the per-request "max_rows" field). A query
	// exceeding its budget fails with 422. 0 disables the server-wide
	// bound; requests may still opt into one with "max_rows".
	MaxRows int
	// QueueWait is the estimated time a request spends waiting for a
	// worker slot when the pool is saturated. Requests whose remaining
	// deadline is below the estimate are shed immediately with 429
	// instead of queueing toward a certain timeout. 0 disables shedding.
	QueueWait time.Duration
	// ReplicaOf, when non-empty, runs the server as a read replica of
	// the primary at that base URL: /v1/ingest is refused with 503
	// (code "read_only_replica", the primary's address in the message
	// and the X-Lapushd-Primary header), and /healthz reports the
	// replica role. The tailer itself lives in internal/replica; the
	// server only serves the role.
	ReplicaOf string
	// ReplicaStatus supplies the tailer's status for /healthz and the
	// lapushd_replica_* metrics. Required when ReplicaOf is set.
	ReplicaStatus func() replica.Status
	// StopTailer, on a replica, stops the WAL tailer; POST /v1/promote
	// invokes it before bumping the store's epoch so the new primary
	// never races its own old primary's log.
	StopTailer func() error
	// Peers are base URLs of other lapushd nodes in the same cluster
	// (typically the replicas, from the primary's point of view). The
	// fence watcher polls their /healthz for promotion epochs: a peer on
	// a higher epoch means this node was failed over while it was down
	// or partitioned, and it fences itself instead of accepting writes
	// on the stale lineage.
	Peers []string
	// FencePollInterval is the fence watcher's polling period (default
	// 2s; only used when Peers is non-empty).
	FencePollInterval time.Duration
	// WALStreamWindow caps one /v1/wal long-poll window: a tail stream
	// is cleanly ended (frame "end") at most this long after it opened,
	// whatever wait_ms the client asked for (default 20s).
	WALStreamWindow time.Duration
	// Logf receives operational log lines (role transitions, fencing).
	// Nil selects the standard logger.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.ResultCacheSize <= 0 {
		c.ResultCacheSize = 512
	}
	if c.MaxBatchQueries <= 0 {
		c.MaxBatchQueries = 64
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 10_000_000
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 32
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Parallelism > c.MaxParallelism {
		c.Parallelism = c.MaxParallelism
	}
	if c.WALStreamWindow <= 0 {
		c.WALStreamWindow = 20 * time.Second
	}
	if c.FencePollInterval <= 0 {
		c.FencePollInterval = 2 * time.Second
	}
	return c
}

// Server serves queries over the versions a store publishes.
type Server struct {
	store   *store.Store
	cfg     Config
	cache   *planCache
	results *lruCache[*cachedResult]
	sem     chan struct{} // worker-pool slots
	metrics *metrics
	mux     *http.ServeMux
	start   time.Time

	// Failover role state (see promote.go). role holds a role value;
	// promoteMu serializes transitions; fencedBy holds the base URL of
	// the higher-epoch node a fenced server observed ("" when unknown).
	role       atomic.Int32
	promoteMu  sync.Mutex
	fencedBy   atomic.Value
	peerClient *http.Client
	fenceStop  chan struct{}
	fenceDone  chan struct{}
	closeOnce  sync.Once

	// testHookAfterAcquire, when non-nil, runs while a worker slot is
	// held, between acquire and evaluation. Tests use it to inject a
	// panic and assert the slot is still released.
	testHookAfterAcquire func()
}

// New builds a server over a fixed database: db is wrapped in an
// ephemeral store, so ingestion works (versioned, snapshot-isolated)
// but nothing is persisted. The caller must not mutate db directly
// after handing it over; all mutation goes through /v1/ingest.
func New(db *lapushdb.DB, cfg Config) *Server {
	st, err := store.Open(db, store.Options{})
	if err != nil {
		// Ephemeral Open only fails on invalid options; zero options are
		// valid by construction.
		panic(fmt.Sprintf("server: open ephemeral store: %v", err))
	}
	return NewWithStore(st, cfg)
}

// NewWithStore builds a server over an already-open store (typically a
// durable one with a WAL). The server owns the request path only; the
// caller keeps ownership of the store and closes it after shutdown.
func NewWithStore(st *store.Store, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		store:   st,
		cfg:     cfg,
		cache:   newPlanCache(cfg.CacheSize),
		results: newLRU[*cachedResult](cfg.ResultCacheSize),
		sem:     make(chan struct{}, cfg.Workers),
		start:   time.Now(),
	}
	if cfg.ReplicaOf != "" {
		s.role.Store(int32(roleReplica))
	}
	s.peerClient = &http.Client{Timeout: cfg.FencePollInterval}
	s.metrics = newMetrics([]string{"query", "rank_batch", "explain", "ingest", "relations", "store", "healthz", "metrics", "wal", "checkpoint", "promote"}, s.cache.len)
	s.metrics.storeStats = st.Stats
	s.metrics.replicaStatus = cfg.ReplicaStatus
	s.metrics.serverRole = func() string { return s.currentRole().String() }
	s.metrics.resultCacheEntries = s.results.len
	s.cache.onEvict = func() { s.metrics.cacheEvictions.Add(1) }
	s.results.onEvict = func() { s.metrics.resultCacheEvictions.Add(1) }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.instrument("query", http.MethodPost, s.handleQuery))
	s.mux.HandleFunc("/v1/rank_batch", s.instrument("rank_batch", http.MethodPost, s.handleRankBatch))
	s.mux.HandleFunc("/v1/explain", s.instrument("explain", http.MethodPost, s.handleExplain))
	s.mux.HandleFunc("/v1/ingest", s.instrument("ingest", http.MethodPost, s.handleIngest))
	s.mux.HandleFunc("/v1/relations", s.instrument("relations", http.MethodGet, s.handleRelations))
	s.mux.HandleFunc("/v1/store", s.instrument("store", http.MethodGet, s.handleStore))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", http.MethodGet, s.handleMetrics))
	s.mux.HandleFunc("/v1/wal", s.instrument("wal", http.MethodGet, s.handleWAL))
	s.mux.HandleFunc("/v1/checkpoint", s.instrument("checkpoint", http.MethodGet, s.handleCheckpoint))
	s.mux.HandleFunc("/v1/promote", s.instrument("promote", http.MethodPost, s.handlePromote))
	if len(cfg.Peers) > 0 {
		s.fenceStop = make(chan struct{})
		s.fenceDone = make(chan struct{})
		go s.fenceWatcher()
	}
	return s
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the JSON error envelope: {"error": {"code", "message"}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// statusRecorder captures the status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streaming handlers
// (/v1/wal) can push frames through the instrument wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps a handler with method filtering, body size limits,
// panic recovery, and request metrics.
func (s *Server) instrument(endpoint, method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.metrics.enter(endpoint)
		begin := time.Now()
		defer func() {
			s.metrics.exit(endpoint)
			if p := recover(); p != nil {
				s.metrics.panicsRecovered.Add(1)
				// The handler may have written nothing yet; best effort.
				writeError(rec, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p))
				debug.PrintStack()
			}
			s.metrics.observe(endpoint, rec.code, time.Since(begin).Seconds())
		}()
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeError(rec, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Sprintf("%s requires %s", r.URL.Path, method))
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		}
		h(rec, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg}})
}

// decodeBody parses a JSON request body strictly (unknown fields are
// rejected) and reports oversized bodies distinctly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// requestContext applies the request's timeout (or the default, capped
// at MaxTimeout) on top of the connection context.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// errOverloaded marks a request shed at admission: the worker pool was
// saturated and the remaining deadline could not cover the estimated
// queue wait, so queueing would only burn a slot's time on a request
// already doomed to 504.
var errOverloaded = errors.New("server: worker pool saturated and remaining deadline below the queue-wait estimate")

// errBadEpsilon marks an invalid anytime epsilon field.
var errBadEpsilon = errors.New(`server: field "epsilon" must be a number in [0, 1)`)

// validateEpsilon resolves the optional epsilon field: absent means a
// plain (non-anytime) request; present, it must be a number in [0, 1).
// (NaN cannot arrive through JSON but is rejected for direct callers.)
func validateEpsilon(eps *float64) (float64, bool, error) {
	if eps == nil {
		return 0, false, nil
	}
	if math.IsNaN(*eps) || *eps < 0 || *eps >= 1 {
		return 0, false, fmt.Errorf("%w, got %v", errBadEpsilon, *eps)
	}
	return *eps, true, nil
}

// acquire takes a worker-pool slot, giving up when ctx expires first.
// With QueueWait configured, a request that finds the pool saturated
// and cannot possibly get a slot in time is shed immediately.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	default:
	}
	if s.cfg.QueueWait > 0 {
		if dl, ok := ctx.Deadline(); ok && time.Until(dl) < s.cfg.QueueWait {
			s.metrics.shedTotal.Add(1)
			s.metrics.requestsRejected.Add(1)
			return errOverloaded
		}
	}
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.metrics.requestsRejected.Add(1)
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// rankWithSlot evaluates the prepared query while holding a worker
// slot, releasing it by defer: a panic during evaluation is recovered
// by instrument, and without the defer the slot would leak, silently
// shrinking the pool for the life of the process.
func (s *Server) rankWithSlot(ctx context.Context, v *store.Version, p *lapushdb.Prepared, opts *lapushdb.Options) ([]lapushdb.Answer, error) {
	defer s.release()
	if s.testHookAfterAcquire != nil {
		s.testHookAfterAcquire()
	}
	return v.DB.RankPrepared(ctx, p, opts)
}

// cacheKey scopes a normalized query by method, schema-use flag, and
// the pinned version's fingerprint. The fingerprint combines the schema
// fingerprint with the version sequence number, so every mutation batch
// invalidates stale plans naturally; keying by method keeps one
// method's traffic from evicting another's entries even though Prepared
// values are method-independent.
func (s *Server) cacheKey(v *store.Version, method, normalized string, ignoreSchema bool) string {
	flag := "s"
	if ignoreSchema {
		flag = "n"
	}
	return method + "\x00" + flag + "\x00" + v.Fingerprint + "\x00" + normalized
}

// prepared resolves a query through the plan cache against the pinned
// version, preparing and inserting on miss. Returns the statement and
// whether it was a hit.
func (s *Server) prepared(ctx context.Context, v *store.Version, methodLabel, query string, opts *lapushdb.Options) (*lapushdb.Prepared, bool, error) {
	normalized, err := v.DB.NormalizeQuery(query)
	if err != nil {
		return nil, false, err
	}
	return s.preparedNorm(ctx, v, methodLabel, query, normalized, opts)
}

// preparedNorm is prepared for callers that already normalized the
// query (the batch path normalizes once for the result-cache key and
// reuses it here).
func (s *Server) preparedNorm(ctx context.Context, v *store.Version, methodLabel, query, normalized string, opts *lapushdb.Options) (*lapushdb.Prepared, bool, error) {
	key := s.cacheKey(v, methodLabel, normalized, opts.IgnoreSchema)
	if p, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		return p, true, nil
	}
	s.metrics.cacheMisses.Add(1)
	p, err := v.DB.PrepareContext(ctx, query, opts)
	if err != nil {
		return nil, false, err
	}
	s.cache.put(key, p)
	return p, false, nil
}

type queryRequest struct {
	Query        string `json:"query"`
	Method       string `json:"method"`
	Top          int    `json:"top"`
	Samples      int    `json:"samples"`
	Seed         int64  `json:"seed"`
	TimeoutMS    int64  `json:"timeout_ms"`
	IgnoreSchema bool   `json:"ignore_schema"`
	// Parallelism overrides the server's default intra-query worker
	// count for this request (0 = server default), capped at the
	// configured maximum. Scores are bit-identical across settings.
	Parallelism int `json:"parallelism"`
	// MaxRows caps the intermediate rows this query may materialize
	// (0 = the server's -max-rows setting), capped at that setting when
	// it is configured. Exceeding the budget fails the query with 422.
	MaxRows int `json:"max_rows"`
	// Epsilon, when present, switches the request to anytime evaluation
	// (method "diss" only): the answer is a [lower, upper] interval per
	// tuple, refined until upper − lower <= epsilon or the deadline
	// fires. Must be in [0, 1). With epsilon set, deadline/budget/shed
	// failures degrade to a 200 carrying the best-so-far intervals
	// whenever any bounds were computed, and "samples" caps the Monte
	// Carlo refinement samples per answer instead of being a direct
	// sample count.
	Epsilon *float64 `json:"epsilon"`
}

// intervalJSON is an anytime answer's probability interval.
type intervalJSON struct {
	Lower     float64 `json:"lower"`
	Upper     float64 `json:"upper"`
	Converged bool    `json:"converged"`
}

type answerJSON struct {
	Values []string `json:"values"`
	Score  float64  `json:"score"`
	// Interval is present on anytime responses; Score echoes the upper
	// bound. Upper is a guaranteed bound from the deterministic
	// dissociation stages. Lower is guaranteed when the exact stage
	// produced it; once Monte Carlo refinement takes over, it is a
	// one-sided normal-tail confidence bound (z = 6, see
	// internal/anytime.DefaultMCZ) — the true probability lies above it
	// with overwhelming statistical confidence, not with certainty.
	Interval *intervalJSON `json:"interval,omitempty"`
}

type queryResponse struct {
	Answers []answerJSON `json:"answers"`
	Count   int          `json:"count"`
	Method  string       `json:"method"`
	Safe    bool         `json:"safe"`
	Cache   string       `json:"cache"` // plan cache: "hit" or "miss"
	// ResultCache reports whether the fully evaluated answer list was
	// served from the result cache ("hit") or computed ("miss").
	ResultCache string  `json:"result_cache"`
	ElapsedMS   float64 `json:"elapsed_ms"`
	// Partitions is the number of morsel chunks and join partitions the
	// query's operators processed (dissociation method only; 0 when
	// every operator input fit in one chunk).
	Partitions int64 `json:"partitions"`

	// Anytime fields, present only when the request carried an epsilon.
	// Converged reports whether every answer's interval reached the
	// requested width; Degraded is "" normally and "deadline",
	// "budget", or "shed" when refinement was cut short but best-so-far
	// bounds were still served; Width is the widest answer interval;
	// Epsilon echoes the request.
	Converged *bool    `json:"converged,omitempty"`
	Degraded  string   `json:"degraded,omitempty"`
	Width     *float64 `json:"width,omitempty"`
	Epsilon   *float64 `json:"epsilon,omitempty"`
}

// evalParams are the evaluation knobs shared by /v1/query and
// /v1/rank_batch, validated and resolved against the server's limits.
type evalParams struct {
	method      lapushdb.Method
	samples     int
	parallelism int // resolved: request override capped at MaxParallelism
	maxRows     int // resolved: request bound may only tighten -max-rows
}

// evalParams validates a request's shared evaluation fields, writing
// the 400 response and returning ok=false on the first invalid one.
// The error codes match /v1/query's historical responses.
func (s *Server) evalParams(w http.ResponseWriter, methodLabel string, samples int, timeoutMS int64, parallelism, maxRows int) (evalParams, bool) {
	var ep evalParams
	method, err := lapushdb.MethodFromString(methodLabel)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_method", err.Error())
		return ep, false
	}
	if samples < 0 || samples > s.cfg.MaxSamples {
		writeError(w, http.StatusBadRequest, "bad_samples",
			fmt.Sprintf("field \"samples\" must be in [0, %d]", s.cfg.MaxSamples))
		return ep, false
	}
	if timeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "bad_timeout", "field \"timeout_ms\" must be >= 0")
		return ep, false
	}
	if parallelism < 0 {
		writeError(w, http.StatusBadRequest, "bad_parallelism", "field \"parallelism\" must be >= 0")
		return ep, false
	}
	if maxRows < 0 {
		writeError(w, http.StatusBadRequest, "bad_max_rows", "field \"max_rows\" must be >= 0")
		return ep, false
	}
	ep.method = method
	// Resolve the sample-count default here, before the value reaches
	// both evaluation and the result-cache key: an explicit
	// samples=DefaultMCSamples and an omitted samples field are the same
	// request and must share a cache entry.
	ep.samples = samples
	if ep.samples == 0 {
		ep.samples = lapushdb.DefaultMCSamples
	}
	ep.parallelism = s.cfg.Parallelism
	if parallelism > 0 {
		ep.parallelism = parallelism
	}
	if ep.parallelism > s.cfg.MaxParallelism {
		ep.parallelism = s.cfg.MaxParallelism
	}
	ep.maxRows = s.cfg.MaxRows
	if maxRows > 0 && (s.cfg.MaxRows <= 0 || maxRows < s.cfg.MaxRows) {
		ep.maxRows = maxRows
	}
	return ep, true
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing_query", "field \"query\" is required")
		return
	}
	if req.Method == "" {
		req.Method = "diss"
	}
	if req.Top < 0 {
		writeError(w, http.StatusBadRequest, "bad_top", "field \"top\" must be >= 0")
		return
	}
	ep, ok := s.evalParams(w, req.Method, req.Samples, req.TimeoutMS, req.Parallelism, req.MaxRows)
	if !ok {
		return
	}
	eps, isAnytime, err := validateEpsilon(req.Epsilon)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	if isAnytime {
		if req.Method != "diss" {
			writeError(w, http.StatusBadRequest, "bad_method",
				`field "epsilon" requires method "diss" (anytime refinement of the dissociation bounds)`)
			return
		}
		s.handleAnytimeQuery(w, r, &req, eps, ep)
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Pin the current version for the whole request: the query sees one
	// consistent snapshot no matter how many batches land meanwhile.
	v := s.store.Current()
	stats := &lapushdb.RankStats{}
	opts := &lapushdb.Options{
		Method:              ep.method,
		MCSamples:           ep.samples,
		Seed:                req.Seed,
		IgnoreSchema:        req.IgnoreSchema,
		Workers:             ep.parallelism,
		Stats:               stats,
		MaxIntermediateRows: ep.maxRows,
	}
	begin := time.Now()
	normalized, err := v.DB.NormalizeQuery(req.Query)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	p, hit, err := s.preparedNorm(ctx, v, req.Method, req.Query, normalized, opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	// Result cache: a repeat of this exact request against an unchanged
	// version is served without a worker slot or re-evaluation. Checked
	// after the plan cache so the plan-cache metrics keep their meaning
	// (a normalized query's plans were or weren't cached), and reported
	// in its own response field for the same reason.
	rkey := resultCacheKey(v.Fingerprint, req.Method, normalized, req.IgnoreSchema, ep.samples, req.Seed)
	if c, ok := s.results.get(rkey); ok {
		s.metrics.resultCacheHits.Add(1)
		answers := c.top(req.Top)
		writeJSON(w, http.StatusOK, queryResponse{
			Answers:     answers,
			Count:       len(answers),
			Method:      req.Method,
			Safe:        c.safe,
			Cache:       cacheLabel(hit),
			ResultCache: "hit",
			ElapsedMS:   float64(time.Since(begin).Microseconds()) / 1000,
		})
		return
	}
	s.metrics.resultCacheMisses.Add(1)
	if err := s.acquire(ctx); err != nil {
		s.writeQueryError(w, err)
		return
	}
	answers, err := s.rankWithSlot(ctx, v, p, opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	s.metrics.partitionsTotal.Add(stats.Partitions)
	entry := &cachedResult{answers: toAnswerJSON(answers), safe: p.Safe()}
	s.results.put(rkey, entry)
	top := entry.top(req.Top)
	writeJSON(w, http.StatusOK, queryResponse{
		Answers:     top,
		Count:       len(top),
		Method:      req.Method,
		Safe:        p.Safe(),
		Cache:       cacheLabel(hit),
		ResultCache: "miss",
		ElapsedMS:   float64(time.Since(begin).Microseconds()) / 1000,
		Partitions:  stats.Partitions,
	})
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// retryAfterSeconds is the Retry-After hint attached to responses that
// reject work the client should simply resubmit: shed requests (the
// pool may drain within a second) and degraded-mode ingestion (the
// store probes its directory about once a second).
const retryAfterSeconds = "1"

// errorStatus classifies a query-path error into its HTTP status,
// machine-readable code, and message. Pure so the mapping is testable
// without a server.
func errorStatus(err error) (status int, code, msg string) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, "deadline_exceeded", "query deadline exceeded"
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable, "cancelled", "query cancelled"
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, "overloaded", err.Error()
	case errors.Is(err, errEmptyBatch):
		return http.StatusBadRequest, "empty_batch", err.Error()
	case errors.Is(err, errBatchTooLarge):
		return http.StatusBadRequest, "batch_too_large", err.Error()
	case errors.Is(err, errBadEpsilon):
		return http.StatusBadRequest, "bad_epsilon", err.Error()
	case errors.Is(err, lapushdb.ErrBudget):
		return http.StatusUnprocessableEntity, "budget_exceeded", err.Error()
	case errors.Is(err, store.ErrReadOnly):
		return http.StatusServiceUnavailable, "read_only", err.Error()
	case errors.Is(err, store.ErrDurability):
		return http.StatusInternalServerError, "durability_failure", err.Error()
	default:
		return http.StatusBadRequest, "bad_query", err.Error()
	}
}

// noteQueryError maintains the per-class failure metrics for one
// query's error code, whether it surfaces as an HTTP status or as an
// in-envelope error object in a batch response.
func (s *Server) noteQueryError(code string) {
	switch code {
	case "deadline_exceeded", "cancelled":
		s.metrics.queriesCancelled.Add(1)
	case "budget_exceeded":
		s.metrics.budgetExceeded.Add(1)
	}
}

// writeQueryError maps an evaluation error through errorStatus,
// maintaining the per-class metrics and retry hints.
func (s *Server) writeQueryError(w http.ResponseWriter, err error) {
	status, code, msg := errorStatus(err)
	s.noteQueryError(code)
	if code == "overloaded" {
		w.Header().Set("Retry-After", retryAfterSeconds)
	}
	writeError(w, status, code, msg)
}

type explainRequest struct {
	Query        string `json:"query"`
	IgnoreSchema bool   `json:"ignore_schema"`
	TimeoutMS    int64  `json:"timeout_ms"`
}

type explainResponse struct {
	Safe          bool     `json:"safe"`
	Plans         []string `json:"plans"`
	Dissociations []string `json:"dissociations"`
	SinglePlan    string   `json:"single_plan"`
	Cache         string   `json:"cache"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing_query", "field \"query\" is required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	v := s.store.Current()
	opts := &lapushdb.Options{IgnoreSchema: req.IgnoreSchema}
	p, hit, err := s.prepared(ctx, v, "explain", req.Query, opts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	ex := p.Explanation()
	writeJSON(w, http.StatusOK, explainResponse{
		Safe:          ex.Safe,
		Plans:         ex.Plans,
		Dissociations: ex.Dissociations,
		SinglePlan:    ex.SinglePlan,
		Cache:         cacheLabel(hit),
	})
}

type relationJSON struct {
	Name          string   `json:"name"`
	Cols          []string `json:"cols"`
	Deterministic bool     `json:"deterministic"`
	Key           []string `json:"key,omitempty"`
	Tuples        int      `json:"tuples"`
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	v := s.store.Current()
	infos := v.DB.RelationInfos()
	rels := make([]relationJSON, len(infos))
	for i, ri := range infos {
		rels[i] = relationJSON{
			Name:          ri.Name,
			Cols:          ri.Cols,
			Deterministic: ri.Deterministic,
			Key:           ri.Key,
			Tuples:        ri.Tuples,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"relations":   rels,
		"version":     v.Seq,
		"fingerprint": v.Fingerprint,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	v := s.store.Current()
	tuples := 0
	infos := v.DB.RelationInfos()
	for _, ri := range infos {
		tuples += ri.Tuples
	}
	// A read-only store is degraded, not down: queries keep serving the
	// last published version, so the endpoint stays 200 (a probe that
	// evicted the instance would lose the surviving read capacity) and
	// reports the state in the body instead. The same goes for a fenced
	// ex-primary: its reads are still good, only writes are refused.
	ro := s.currentRole()
	status := "ok"
	readOnly := s.store.ReadOnly()
	if readOnly || ro == roleFenced {
		status = "degraded"
	}
	body := map[string]any{
		"status":      status,
		"role":        ro.String(),
		"read_only":   readOnly,
		"uptime_s":    time.Since(s.start).Seconds(),
		"relations":   len(infos),
		"tuples":      tuples,
		"version":     v.Seq,
		"fingerprint": v.Fingerprint,
		"epoch":       v.Epoch,
	}
	if ro == roleFenced {
		if p := s.fencedPrimary(); p != "" {
			body["primary"] = p
		}
	}
	if ro == roleReplica {
		body["primary"] = s.cfg.ReplicaOf
		if s.cfg.ReplicaStatus != nil {
			rs := s.cfg.ReplicaStatus()
			body["replica"] = rs
			body["applied_seq"] = rs.AppliedSeq
			body["lag_seconds"] = rs.LagSeconds
			body["last_contact_seconds"] = rs.LastContactSeconds
			body["primary_epoch"] = rs.PrimaryEpoch
		}
	}
	writeJSON(w, http.StatusOK, body)
}

type ingestRequest struct {
	Mutations []store.Mutation `json:"mutations"`
}

type ingestResponse struct {
	Version     uint64  `json:"version"`
	Fingerprint string  `json:"fingerprint"`
	Mutations   int     `json:"mutations"`
	ElapsedMS   float64 `json:"elapsed_ms"`
}

// handleIngest applies one mutation batch atomically. On success the
// response carries the new version's sequence number and fingerprint;
// under the store's FsyncAlways policy a 200 means the batch is
// durable. Validation failures leave the store untouched and return
// 400; durability failures (the WAL itself failing) return 500; a store
// that has tripped into read-only mode returns 503 with a Retry-After
// hint while its probe works on re-arming the breaker.
func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	switch s.currentRole() {
	case roleReplica:
		// Replicas are read-only until promoted: a write accepted here
		// would fork the replica's history away from the log it tails.
		w.Header().Set("X-Lapushd-Primary", s.cfg.ReplicaOf)
		writeError(w, http.StatusServiceUnavailable, "read_only_replica",
			fmt.Sprintf("this lapushd is a read replica; send writes to the primary at %s", s.cfg.ReplicaOf))
		return
	case roleFenced:
		// A fenced ex-primary observed a newer promotion epoch: a write
		// here would land on a lineage the cluster has moved past.
		msg := "this lapushd is fenced (a newer promotion epoch exists); send writes to the promoted primary"
		if p := s.fencedPrimary(); p != "" {
			w.Header().Set("X-Lapushd-Primary", p)
			msg = fmt.Sprintf("this lapushd is fenced (a newer promotion epoch exists); send writes to the promoted primary at %s", p)
		}
		writeError(w, http.StatusServiceUnavailable, "fenced", msg)
		return
	}
	var req ingestRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Mutations) == 0 {
		writeError(w, http.StatusBadRequest, "empty_batch", "field \"mutations\" must hold at least one mutation")
		return
	}
	begin := time.Now()
	v, err := s.store.Apply(req.Mutations)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrFenced):
			// The store observed a newer epoch between the role check above
			// and the commit; same contract as the fenced role path.
			if p := s.fencedPrimary(); p != "" {
				w.Header().Set("X-Lapushd-Primary", p)
			}
			writeError(w, http.StatusServiceUnavailable, "fenced", err.Error())
		case errors.Is(err, store.ErrReadOnly):
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusServiceUnavailable, "read_only", err.Error())
		case errors.Is(err, store.ErrDurability):
			writeError(w, http.StatusInternalServerError, "durability_failure", err.Error())
		default:
			writeError(w, http.StatusBadRequest, "bad_mutation", err.Error())
		}
		return
	}
	writeJSON(w, http.StatusOK, ingestResponse{
		Version:     v.Seq,
		Fingerprint: v.Fingerprint,
		Mutations:   len(req.Mutations),
		ElapsedMS:   float64(time.Since(begin).Microseconds()) / 1000,
	})
}

// handleStore reports the store's durability state: version, WAL size,
// checkpoint progress, fsync policy.
func (s *Server) handleStore(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.Stats())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
