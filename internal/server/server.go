// Package server is lapushd's HTTP/JSON query service: a concurrent
// front end over a lapushdb.DB with a bounded LRU plan cache, a
// worker-pool executor with per-request deadlines, hand-rolled
// Prometheus-format metrics, and defensive middleware (request size
// limits, structured JSON errors, panic recovery).
//
// Endpoints:
//
//	POST /v1/query     {"query", "method", "top", "samples", "seed", "timeout_ms", "ignore_schema"}
//	POST /v1/explain   {"query", "ignore_schema", "timeout_ms"}
//	GET  /v1/relations
//	GET  /healthz
//	GET  /metrics
//
// The database is loaded once at startup and treated as immutable while
// serving, so prepared plans are shared freely across requests and the
// schema fingerprint that scopes cache keys is computed once.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime/debug"
	"strings"
	"time"

	"lapushdb"
)

// Config tunes the server. Zero values select the documented defaults.
type Config struct {
	// Workers bounds the number of queries evaluating concurrently
	// (default 8). Requests beyond the bound wait in line, still subject
	// to their deadline.
	Workers int
	// CacheSize bounds the plan cache's entry count (default 256).
	CacheSize int
	// DefaultTimeout applies when a request carries no timeout_ms
	// (default 30s).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (default 5m).
	MaxTimeout time.Duration
	// MaxBodyBytes limits request body size (default 1 MiB).
	MaxBodyBytes int64
	// MaxSamples caps Monte Carlo sample counts (default 10,000,000).
	MaxSamples int
	// Parallelism is the default intra-query worker count: each query's
	// operators split row ranges into morsels evaluated on up to this
	// many goroutines (default 1, sequential). Requests may override it
	// with the "parallelism" field, capped at MaxParallelism. Results are
	// bit-identical across all settings.
	Parallelism int
	// MaxParallelism caps per-request parallelism (default 32).
	MaxParallelism int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.CacheSize <= 0 {
		c.CacheSize = 256
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 5 * time.Minute
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.MaxSamples <= 0 {
		c.MaxSamples = 10_000_000
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = 32
	}
	if c.Parallelism <= 0 {
		c.Parallelism = 1
	}
	if c.Parallelism > c.MaxParallelism {
		c.Parallelism = c.MaxParallelism
	}
	return c
}

// Server serves queries over one immutable database.
type Server struct {
	db          *lapushdb.DB
	fingerprint string
	cfg         Config
	cache       *planCache
	sem         chan struct{} // worker-pool slots
	metrics     *metrics
	mux         *http.ServeMux
	start       time.Time
}

// New builds a server over db. The db must not be mutated while the
// server is in use: prepared plans and the schema fingerprint assume a
// fixed schema and contents.
func New(db *lapushdb.DB, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		db:          db,
		fingerprint: db.SchemaFingerprint(),
		cfg:         cfg,
		cache:       newPlanCache(cfg.CacheSize),
		sem:         make(chan struct{}, cfg.Workers),
		start:       time.Now(),
	}
	s.metrics = newMetrics([]string{"query", "explain", "relations", "healthz", "metrics"}, s.cache.len)
	s.cache.onEvict = func() { s.metrics.cacheEvictions.Add(1) }
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/query", s.instrument("query", http.MethodPost, s.handleQuery))
	s.mux.HandleFunc("/v1/explain", s.instrument("explain", http.MethodPost, s.handleExplain))
	s.mux.HandleFunc("/v1/relations", s.instrument("relations", http.MethodGet, s.handleRelations))
	s.mux.HandleFunc("/healthz", s.instrument("healthz", http.MethodGet, s.handleHealthz))
	s.mux.HandleFunc("/metrics", s.instrument("metrics", http.MethodGet, s.handleMetrics))
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the JSON error envelope: {"error": {"code", "message"}}.
type apiError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	Error apiError `json:"error"`
}

// statusRecorder captures the status code for metrics.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps a handler with method filtering, body size limits,
// panic recovery, and request metrics.
func (s *Server) instrument(endpoint, method string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.metrics.enter(endpoint)
		begin := time.Now()
		defer func() {
			s.metrics.exit(endpoint)
			if p := recover(); p != nil {
				s.metrics.panicsRecovered.Add(1)
				// The handler may have written nothing yet; best effort.
				writeError(rec, http.StatusInternalServerError, "internal", fmt.Sprintf("internal error: %v", p))
				debug.PrintStack()
			}
			s.metrics.observe(endpoint, rec.code, time.Since(begin).Seconds())
		}()
		if r.Method != method {
			rec.Header().Set("Allow", method)
			writeError(rec, http.StatusMethodNotAllowed, "method_not_allowed", fmt.Sprintf("%s requires %s", r.URL.Path, method))
			return
		}
		if r.Body != nil {
			r.Body = http.MaxBytesReader(rec, r.Body, s.cfg.MaxBodyBytes)
		}
		h(rec, r)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorResponse{Error: apiError{Code: code, Message: msg}})
}

// decodeBody parses a JSON request body strictly (unknown fields are
// rejected) and reports oversized bodies distinctly.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return false
		}
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("malformed request body: %v", err))
		return false
	}
	return true
}

// requestContext applies the request's timeout (or the default, capped
// at MaxTimeout) on top of the connection context.
func (s *Server) requestContext(r *http.Request, timeoutMS int64) (context.Context, context.CancelFunc) {
	d := s.cfg.DefaultTimeout
	if timeoutMS > 0 {
		d = time.Duration(timeoutMS) * time.Millisecond
	}
	if d > s.cfg.MaxTimeout {
		d = s.cfg.MaxTimeout
	}
	return context.WithTimeout(r.Context(), d)
}

// acquire takes a worker-pool slot, giving up when ctx expires first.
func (s *Server) acquire(ctx context.Context) error {
	select {
	case s.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		s.metrics.requestsRejected.Add(1)
		return ctx.Err()
	}
}

func (s *Server) release() { <-s.sem }

// cacheKey scopes a normalized query by method, schema-use flag, and
// the database's schema fingerprint. The fingerprint covers schema and
// tuple counts, so serving a different snapshot never reuses stale
// plans; keying by method keeps one method's traffic from evicting
// another's entries even though Prepared values are method-independent.
func (s *Server) cacheKey(method, normalized string, ignoreSchema bool) string {
	flag := "s"
	if ignoreSchema {
		flag = "n"
	}
	return method + "\x00" + flag + "\x00" + s.fingerprint + "\x00" + normalized
}

// prepared resolves a query through the plan cache, preparing and
// inserting on miss. Returns the statement and whether it was a hit.
func (s *Server) prepared(ctx context.Context, methodLabel, query string, opts *lapushdb.Options) (*lapushdb.Prepared, bool, error) {
	normalized, err := s.db.NormalizeQuery(query)
	if err != nil {
		return nil, false, err
	}
	key := s.cacheKey(methodLabel, normalized, opts.IgnoreSchema)
	if p, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		return p, true, nil
	}
	s.metrics.cacheMisses.Add(1)
	p, err := s.db.PrepareContext(ctx, query, opts)
	if err != nil {
		return nil, false, err
	}
	s.cache.put(key, p)
	return p, false, nil
}

type queryRequest struct {
	Query        string `json:"query"`
	Method       string `json:"method"`
	Top          int    `json:"top"`
	Samples      int    `json:"samples"`
	Seed         int64  `json:"seed"`
	TimeoutMS    int64  `json:"timeout_ms"`
	IgnoreSchema bool   `json:"ignore_schema"`
	// Parallelism overrides the server's default intra-query worker
	// count for this request (0 = server default), capped at the
	// configured maximum. Scores are bit-identical across settings.
	Parallelism int `json:"parallelism"`
}

type answerJSON struct {
	Values []string `json:"values"`
	Score  float64  `json:"score"`
}

type queryResponse struct {
	Answers   []answerJSON `json:"answers"`
	Count     int          `json:"count"`
	Method    string       `json:"method"`
	Safe      bool         `json:"safe"`
	Cache     string       `json:"cache"` // "hit" or "miss"
	ElapsedMS float64      `json:"elapsed_ms"`
	// Partitions is the number of morsel chunks and join partitions the
	// query's operators processed (dissociation method only; 0 when
	// every operator input fit in one chunk).
	Partitions int64 `json:"partitions"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing_query", "field \"query\" is required")
		return
	}
	if req.Method == "" {
		req.Method = "diss"
	}
	method, err := lapushdb.MethodFromString(req.Method)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_method", err.Error())
		return
	}
	if req.Top < 0 {
		writeError(w, http.StatusBadRequest, "bad_top", "field \"top\" must be >= 0")
		return
	}
	if req.Samples < 0 || req.Samples > s.cfg.MaxSamples {
		writeError(w, http.StatusBadRequest, "bad_samples",
			fmt.Sprintf("field \"samples\" must be in [0, %d]", s.cfg.MaxSamples))
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest, "bad_timeout", "field \"timeout_ms\" must be >= 0")
		return
	}
	if req.Parallelism < 0 {
		writeError(w, http.StatusBadRequest, "bad_parallelism", "field \"parallelism\" must be >= 0")
		return
	}
	parallelism := s.cfg.Parallelism
	if req.Parallelism > 0 {
		parallelism = req.Parallelism
	}
	if parallelism > s.cfg.MaxParallelism {
		parallelism = s.cfg.MaxParallelism
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	stats := &lapushdb.RankStats{}
	opts := &lapushdb.Options{
		Method:       method,
		MCSamples:    req.Samples,
		Seed:         req.Seed,
		IgnoreSchema: req.IgnoreSchema,
		Workers:      parallelism,
		Stats:        stats,
	}
	begin := time.Now()
	p, hit, err := s.prepared(ctx, req.Method, req.Query, opts)
	if err != nil {
		s.writeQueryError(w, ctx, err)
		return
	}
	if err := s.acquire(ctx); err != nil {
		s.writeQueryError(w, ctx, err)
		return
	}
	answers, err := s.db.RankPrepared(ctx, p, opts)
	s.release()
	if err != nil {
		s.writeQueryError(w, ctx, err)
		return
	}
	if req.Top > 0 && req.Top < len(answers) {
		answers = answers[:req.Top]
	}
	s.metrics.partitionsTotal.Add(stats.Partitions)
	resp := queryResponse{
		Answers:    make([]answerJSON, len(answers)),
		Count:      len(answers),
		Method:     req.Method,
		Safe:       p.Safe(),
		Cache:      cacheLabel(hit),
		ElapsedMS:  float64(time.Since(begin).Microseconds()) / 1000,
		Partitions: stats.Partitions,
	}
	for i, a := range answers {
		resp.Answers[i] = answerJSON{Values: a.Values, Score: a.Score}
	}
	writeJSON(w, http.StatusOK, resp)
}

func cacheLabel(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

// writeQueryError maps evaluation errors to structured responses:
// cancellation and deadline errors become 503/504 (and count in the
// cancellation metric), everything else is a client-side query problem.
func (s *Server) writeQueryError(w http.ResponseWriter, ctx context.Context, err error) {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		s.metrics.queriesCancelled.Add(1)
		writeError(w, http.StatusGatewayTimeout, "deadline_exceeded", "query deadline exceeded")
	case errors.Is(err, context.Canceled):
		s.metrics.queriesCancelled.Add(1)
		writeError(w, http.StatusServiceUnavailable, "cancelled", "query cancelled")
	default:
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
	}
	_ = ctx
}

type explainRequest struct {
	Query        string `json:"query"`
	IgnoreSchema bool   `json:"ignore_schema"`
	TimeoutMS    int64  `json:"timeout_ms"`
}

type explainResponse struct {
	Safe          bool     `json:"safe"`
	Plans         []string `json:"plans"`
	Dissociations []string `json:"dissociations"`
	SinglePlan    string   `json:"single_plan"`
	Cache         string   `json:"cache"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	var req explainRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if strings.TrimSpace(req.Query) == "" {
		writeError(w, http.StatusBadRequest, "missing_query", "field \"query\" is required")
		return
	}
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	opts := &lapushdb.Options{IgnoreSchema: req.IgnoreSchema}
	p, hit, err := s.prepared(ctx, "explain", req.Query, opts)
	if err != nil {
		s.writeQueryError(w, ctx, err)
		return
	}
	ex := p.Explanation()
	writeJSON(w, http.StatusOK, explainResponse{
		Safe:          ex.Safe,
		Plans:         ex.Plans,
		Dissociations: ex.Dissociations,
		SinglePlan:    ex.SinglePlan,
		Cache:         cacheLabel(hit),
	})
}

type relationJSON struct {
	Name          string   `json:"name"`
	Cols          []string `json:"cols"`
	Deterministic bool     `json:"deterministic"`
	Key           []string `json:"key,omitempty"`
	Tuples        int      `json:"tuples"`
}

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	infos := s.db.RelationInfos()
	rels := make([]relationJSON, len(infos))
	for i, ri := range infos {
		rels[i] = relationJSON{
			Name:          ri.Name,
			Cols:          ri.Cols,
			Deterministic: ri.Deterministic,
			Key:           ri.Key,
			Tuples:        ri.Tuples,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"relations": rels, "fingerprint": s.fingerprint})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	tuples := 0
	infos := s.db.RelationInfos()
	for _, ri := range infos {
		tuples += ri.Tuples
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":      "ok",
		"uptime_s":    time.Since(s.start).Seconds(),
		"relations":   len(infos),
		"tuples":      tuples,
		"fingerprint": s.fingerprint,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	var b strings.Builder
	s.metrics.render(&b)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}
