package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
	"lapushdb/internal/store/errfs"
)

// TestErrorStatusMapping pins the query-path error classification:
// every failure class a handler can see maps to a stable HTTP status
// and machine-readable code, including wrapped errors.
func TestErrorStatusMapping(t *testing.T) {
	cases := []struct {
		name   string
		err    error
		status int
		code   string
	}{
		{"deadline", context.DeadlineExceeded, http.StatusGatewayTimeout, "deadline_exceeded"},
		{"deadline_wrapped", fmt.Errorf("rank: %w", context.DeadlineExceeded), http.StatusGatewayTimeout, "deadline_exceeded"},
		{"cancelled", context.Canceled, http.StatusServiceUnavailable, "cancelled"},
		{"cancelled_wrapped", fmt.Errorf("rank: %w", context.Canceled), http.StatusServiceUnavailable, "cancelled"},
		{"overloaded", errOverloaded, http.StatusTooManyRequests, "overloaded"},
		{"budget", lapushdb.ErrBudget, http.StatusUnprocessableEntity, "budget_exceeded"},
		{"budget_wrapped", fmt.Errorf("%w: limit 10 rows", lapushdb.ErrBudget), http.StatusUnprocessableEntity, "budget_exceeded"},
		{"read_only", store.ErrReadOnly, http.StatusServiceUnavailable, "read_only"},
		{"durability", store.ErrDurability, http.StatusInternalServerError, "durability_failure"},
		{"durability_wrapped", fmt.Errorf("apply: %w", store.ErrDurability), http.StatusInternalServerError, "durability_failure"},
		{"parse", errors.New("parse error at token 3"), http.StatusBadRequest, "bad_query"},
		{"bad_epsilon", fmt.Errorf("%w, got 1.5", errBadEpsilon), http.StatusBadRequest, "bad_epsilon"},
		{"empty_batch", errEmptyBatch, http.StatusBadRequest, "empty_batch"},
		{"batch_too_large", fmt.Errorf("%w: 1000 queries, limit 64", errBatchTooLarge), http.StatusBadRequest, "batch_too_large"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, code, msg := errorStatus(tc.err)
			if status != tc.status || code != tc.code {
				t.Fatalf("errorStatus(%v) = (%d, %q), want (%d, %q)", tc.err, status, code, tc.status, tc.code)
			}
			if msg == "" {
				t.Fatal("empty message")
			}
		})
	}
}

// TestReleaseSurvivesEvaluationPanic is the regression test for the
// worker-pool leak: a panic between acquire and release used to skip
// the release, permanently shrinking the pool. With Workers=1 a single
// leaked slot deadlocks every later query.
func TestReleaseSurvivesEvaluationPanic(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	var fired atomic.Bool
	s.testHookAfterAcquire = func() {
		if fired.CompareAndSwap(false, true) {
			panic("injected evaluation panic")
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking query: status %d, want 500", resp.StatusCode)
	}
	// The slot must have been released: the next query gets it without
	// waiting for the 30s default deadline.
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "timeout_ms": 2000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after panic: status %d (worker slot leaked?): %s", resp.StatusCode, body)
	}
}

// TestQueryBudgetExceeded drives the per-request row budget end to end:
// an impossible cap fails with 422/budget_exceeded and bumps the
// budget metric; the same query unbudgeted succeeds.
func TestQueryBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "max_rows": 1})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "budget_exceeded" {
		t.Fatalf("code %q, want budget_exceeded", e.Code)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unbudgeted query: status %d", resp.StatusCode)
	}
	_, m := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(m), "lapushd_budget_exceeded_total"); got != 1 {
		t.Fatalf("lapushd_budget_exceeded_total = %v, want 1", got)
	}
}

// TestQueryBudgetServerCeiling checks the server-wide -max-rows bound:
// it applies when the request asks for nothing, and a request cannot
// raise its budget above it.
func TestQueryBudgetServerCeiling(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRows: 1})
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("default budget: status %d, want 422: %s", resp.StatusCode, body)
	}
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "max_rows": 1 << 30})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("raised budget must be clamped to the ceiling: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "budget_exceeded" {
		t.Fatalf("code %q, want budget_exceeded", e.Code)
	}
}

func TestQueryBudgetValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "max_rows": -1})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "bad_max_rows" {
		t.Fatalf("code %q, want bad_max_rows", e.Code)
	}
}

// TestLoadShedding saturates a one-worker pool and checks that a
// request whose deadline cannot cover the queue-wait estimate is shed
// with 429 + Retry-After instead of queueing into a certain timeout.
func TestLoadShedding(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueWait: time.Hour})
	gate := make(chan struct{})
	occupying := make(chan struct{})
	var first atomic.Bool
	s.testHookAfterAcquire = func() {
		if first.CompareAndSwap(false, true) {
			close(occupying)
			<-gate
		}
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupying query: status %d", resp.StatusCode)
		}
	}()
	<-occupying
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "overloaded" {
		t.Fatalf("code %q, want overloaded", e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response is missing Retry-After")
	}
	close(gate)
	<-done
	_, m := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(m), "lapushd_shed_total"); got != 1 {
		t.Fatalf("lapushd_shed_total = %v, want 1", got)
	}
}

// TestDegradedModeEndToEnd trips the store's breaker through HTTP
// ingestion against a disk whose fsyncs fail, then checks the whole
// degraded-mode surface: 503 + Retry-After on ingest, "degraded" on
// /healthz, the read-only gauge on /metrics, queries still serving the
// pinned version — and recovery once the disk heals.
func TestDegradedModeEndToEnd(t *testing.T) {
	fs := errfs.New(store.OSFS, errfs.Fault{})
	st, err := store.Open(movieDB(t), store.Options{
		Dir:              t.TempDir(),
		FS:               fs,
		Fsync:            store.FsyncAlways,
		BreakerThreshold: 2,
		RetryAttempts:    -1,
		ProbeInterval:    2 * time.Millisecond,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	ts := newHTTPServer(t, NewWithStore(st, Config{}))

	batch := map[string]any{"mutations": []store.Mutation{
		{Op: store.OpInsert, Rel: "Fan", Tuple: []string{"stone"}, P: pf(0.5)},
	}}
	fs.SetFault(errfs.Fault{Op: errfs.OpSync, Nth: 1, Err: syscall.ENOSPC, Sticky: true})
	for i := 0; i < 2; i++ {
		resp, body := postJSON(t, ts.URL+"/v1/ingest", batch)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("ingest %d under ENOSPC: status %d, want 500: %s", i, resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Code != "durability_failure" {
			t.Fatalf("ingest %d: code %q, want durability_failure", i, e.Code)
		}
	}

	// Breaker tripped: ingest now fails fast with 503 + Retry-After.
	resp, body := postJSON(t, ts.URL+"/v1/ingest", batch)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded ingest: status %d, want 503: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "read_only" {
		t.Fatalf("degraded ingest: code %q, want read_only", e.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded ingest response is missing Retry-After")
	}

	// Health reports degraded (still 200: reads keep working).
	resp, body = getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: status %d, want 200", resp.StatusCode)
	}
	if !containsField(body, `"status":"degraded"`) || !containsField(body, `"read_only":true`) {
		t.Fatalf("healthz body does not report degraded read-only state: %s", body)
	}
	_, m := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(m), "lapushd_store_readonly"); got != 1 {
		t.Fatalf("lapushd_store_readonly = %v, want 1", got)
	}

	// Queries still serve the pinned version.
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query in degraded mode: status %d: %s", resp.StatusCode, body)
	}

	// The disk heals; the probe re-arms the breaker and writes flow.
	fs.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ = postJSON(t, ts.URL+"/v1/ingest", batch)
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("ingest still failing %d after the disk healed", resp.StatusCode)
		}
		time.Sleep(5 * time.Millisecond)
	}
	resp, body = getBody(t, ts.URL+"/healthz")
	if !containsField(body, `"status":"ok"`) {
		t.Fatalf("healthz after recovery: %s", body)
	}
	_ = resp
}

// TestRobustnessMetricsExposed pins the names of the new metrics on a
// fresh server so dashboards can rely on them existing from boot.
func TestRobustnessMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, m := getBody(t, ts.URL+"/metrics")
	for _, name := range []string{
		"lapushd_shed_total",
		"lapushd_budget_exceeded_total",
		"lapushd_store_readonly",
		"lapushd_store_wal_truncations_total",
	} {
		if got := metricValue(t, string(m), name); got != 0 {
			t.Fatalf("%s = %v on a fresh server, want 0", name, got)
		}
	}
}

func containsField(body []byte, sub string) bool {
	s := string(body)
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
