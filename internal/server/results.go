package server

import (
	"strconv"
	"strings"

	"lapushdb"
)

// Result cache. A cachedResult is one query's fully evaluated, ranked
// answer list against one store version. Entries are immutable: the
// answers slice is never mutated after insertion, and per-request "top"
// truncation slices a view instead of copying. Because the cache key
// starts with the pinned version's fingerprint — which changes on every
// ingested mutation batch — ingestion invalidates the whole cache
// naturally, with stale entries aging out of the LRU.
type cachedResult struct {
	answers []answerJSON
	safe    bool
}

// top returns the first n answers (all of them when n <= 0). The
// returned slice aliases the cached one; callers must not modify it.
func (c *cachedResult) top(n int) []answerJSON {
	if n > 0 && n < len(c.answers) {
		return c.answers[:n]
	}
	return c.answers
}

// resultCacheKey derives the result-cache key for one query: the pinned
// version's fingerprint, the method, every request knob that can change
// the answer bytes (schema use, sample count, sampler seed), and the
// normalized query. Fields are joined with NUL — which cannot appear in
// a method name, a formatted integer, or a normalized query — so two
// requests collide exactly when they are semantically equal: same
// version, same method and options, same query up to the parser's
// canonicalization. Workers/parallelism is deliberately absent (scores
// are bit-identical across worker counts), as is "top" (the cache holds
// the full answer list; truncation happens per request).
func resultCacheKey(fingerprint, method, normalized string, ignoreSchema bool, samples int, seed int64) string {
	flag := "s"
	if ignoreSchema {
		flag = "n"
	}
	var b strings.Builder
	b.Grow(len(fingerprint) + len(method) + len(normalized) + 32)
	b.WriteString(fingerprint)
	b.WriteByte(0)
	b.WriteString(method)
	b.WriteByte(0)
	b.WriteString(flag)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(samples))
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(seed, 10))
	b.WriteByte(0)
	b.WriteString(normalized)
	return b.String()
}

// toAnswerJSON converts ranked answers to their JSON form once, for
// both the response and the cache entry.
func toAnswerJSON(answers []lapushdb.Answer) []answerJSON {
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{Values: a.Values, Score: a.Score}
	}
	return out
}
