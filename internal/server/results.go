package server

import (
	"strconv"
	"strings"

	"lapushdb"
)

// Result cache. A cachedResult is one query's fully evaluated, ranked
// answer list against one store version. Entries are immutable: the
// answers slice is never mutated after insertion, and per-request "top"
// truncation slices a view instead of copying. Because the cache key
// starts with the pinned version's fingerprint — which changes on every
// ingested mutation batch — ingestion invalidates the whole cache
// naturally, with stale entries aging out of the LRU.
type cachedResult struct {
	answers []answerJSON
	safe    bool

	// Anytime entries are tagged with the width they achieved: a
	// request with epsilon >= width is a hit (its target is already
	// met), a tighter request re-refines instead of being served a
	// stale loose interval, and shed/deadline fallbacks may serve any
	// width as a degraded 200.
	anytime bool
	width   float64
}

// top returns the first n answers (all of them when n <= 0). The
// returned slice aliases the cached one; callers must not modify it.
func (c *cachedResult) top(n int) []answerJSON {
	if n > 0 && n < len(c.answers) {
		return c.answers[:n]
	}
	return c.answers
}

// anytimeTop renders the first n interval answers with per-answer
// convergence recomputed against the requesting epsilon (the cached
// flags reflect the epsilon the entry was refined for, which may
// differ). Returns the answers and whether all of them converged.
func (c *cachedResult) anytimeTop(n int, eps float64) ([]answerJSON, bool) {
	all := true
	src := c.answers
	out := make([]answerJSON, len(src))
	for i, a := range src {
		out[i] = a
		if a.Interval != nil {
			iv := *a.Interval
			iv.Converged = iv.Upper-iv.Lower <= eps
			if !iv.Converged {
				all = false
			}
			out[i].Interval = &iv
		}
	}
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out, all
}

// resultCacheKey derives the result-cache key for one query: the pinned
// version's fingerprint, the method, every request knob that can change
// the answer bytes (schema use, sample count, sampler seed), and the
// normalized query. Fields are joined with NUL — which cannot appear in
// a method name, a formatted integer, or a normalized query — so two
// requests collide exactly when they are semantically equal: same
// version, same method and options, same query up to the parser's
// canonicalization. Workers/parallelism is deliberately absent (scores
// are bit-identical across worker counts), as is "top" (the cache holds
// the full answer list; truncation happens per request).
func resultCacheKey(fingerprint, method, normalized string, ignoreSchema bool, samples int, seed int64) string {
	flag := "s"
	if ignoreSchema {
		flag = "n"
	}
	var b strings.Builder
	b.Grow(len(fingerprint) + len(method) + len(normalized) + 32)
	b.WriteString(fingerprint)
	b.WriteByte(0)
	b.WriteString(method)
	b.WriteByte(0)
	b.WriteString(flag)
	b.WriteByte(0)
	b.WriteString(strconv.Itoa(samples))
	b.WriteByte(0)
	b.WriteString(strconv.FormatInt(seed, 10))
	b.WriteByte(0)
	b.WriteString(normalized)
	return b.String()
}

// toAnswerJSON converts ranked answers to their JSON form once, for
// both the response and the cache entry.
func toAnswerJSON(answers []lapushdb.Answer) []answerJSON {
	out := make([]answerJSON, len(answers))
	for i, a := range answers {
		out[i] = answerJSON{Values: a.Values, Score: a.Score}
	}
	return out
}

// anytimeEntry builds the width-tagged cache entry for one anytime
// result. The score slot carries the upper bound — the same guaranteed
// bound the dissociation method ranks by.
func anytimeEntry(res *lapushdb.AnytimeResult) *cachedResult {
	answers := make([]answerJSON, len(res.Answers))
	for i, a := range res.Answers {
		answers[i] = answerJSON{
			Values:   a.Values,
			Score:    a.Upper,
			Interval: &intervalJSON{Lower: a.Lower, Upper: a.Upper, Converged: a.Converged},
		}
	}
	return &cachedResult{answers: answers, anytime: true, width: res.Width}
}

// putTighter inserts an anytime entry unless the cache already holds a
// tighter one for the key: a degraded wide interval must not overwrite
// the converged narrow interval another request just paid for. The
// width comparison and the insert run atomically inside the cache lock
// (putIf), so two concurrent evaluations of the same key cannot
// interleave and lose the tighter result.
func (s *Server) putTighter(key string, entry *cachedResult) {
	s.results.putIf(key, entry, func(old *cachedResult) bool {
		return old.anytime && old.width <= entry.width
	})
}
