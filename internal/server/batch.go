package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
)

// POST /v1/rank_batch: evaluate several queries against one pinned
// store version. The batch shares three things a loop of /v1/query
// calls cannot:
//
//   - one snapshot — every query sees the same version, so the answers
//     are mutually consistent even under concurrent ingestion;
//   - one evaluation memo — canonicalized subplan results are reused
//     across the batch's queries (the cross-query extension of the
//     paper's Opt2), with one deadline and one intermediate-row budget
//     spanning the whole batch; and
//   - the result cache — queries already answered at this version are
//     served without taking a worker slot at all.
//
// Queries fail independently: a parse error, budget exhaustion, or
// deadline in one query yields an error object in that slot of the 200
// envelope, never a batch-wide 5xx. Only batch-level problems (empty
// or oversized batch, invalid shared options, admission failure before
// any evaluation) fail the whole request.

// errEmptyBatch and errBatchTooLarge are batch admission failures,
// mapped by errorStatus like every other request-level error.
var (
	errEmptyBatch    = errors.New(`server: field "queries" must hold at least one query`)
	errBatchTooLarge = errors.New("server: batch exceeds the configured query limit")
)

// batchQueryJSON is one query of a batch. Everything but the query
// text and its top-k cutoff is shared batch-wide: per-query methods or
// seeds would defeat subplan sharing and are deliberately absent.
type batchQueryJSON struct {
	Query string `json:"query"`
	Top   int    `json:"top"`
}

type batchRequest struct {
	Queries      []batchQueryJSON `json:"queries"`
	Method       string           `json:"method"`
	Samples      int              `json:"samples"`
	Seed         int64            `json:"seed"`
	TimeoutMS    int64            `json:"timeout_ms"`
	IgnoreSchema bool             `json:"ignore_schema"`
	Parallelism  int              `json:"parallelism"`
	// MaxRows bounds the intermediate rows the whole batch may
	// materialize — one budget across all queries, not one per query.
	MaxRows int `json:"max_rows"`
	// Epsilon switches the whole batch to anytime evaluation (method
	// "diss" only), exactly as on /v1/query: per-tuple [lower, upper]
	// intervals refined to the target width, sharing the batch memo and
	// row budget across queries and refinement stages alike.
	Epsilon *float64 `json:"epsilon"`
}

// batchResultJSON is one query's slot in the response: answers on
// success (with "cache" reporting whether the result cache served
// them), or an error object with the same codes /v1/query would map to
// an HTTP status.
type batchResultJSON struct {
	Answers []answerJSON `json:"answers,omitempty"`
	Count   int          `json:"count"`
	Safe    bool         `json:"safe"`
	Cache   string       `json:"cache,omitempty"` // result cache: "hit" or "miss"
	Error   *apiError    `json:"error,omitempty"`
	// Anytime fields, present only when the batch carried an epsilon;
	// per-query, since refinement may converge for one query and be cut
	// short for its neighbor. See queryResponse for the semantics.
	Converged *bool    `json:"converged,omitempty"`
	Degraded  string   `json:"degraded,omitempty"`
	Width     *float64 `json:"width,omitempty"`
}

type batchResponse struct {
	Results     []batchResultJSON `json:"results"`
	Count       int               `json:"count"`
	Version     uint64            `json:"version"`
	Fingerprint string            `json:"fingerprint"`
	// SharedSubplanHits counts subplan evaluations served from another
	// query's memoized work within this batch.
	SharedSubplanHits int64   `json:"shared_subplan_hits"`
	ElapsedMS         float64 `json:"elapsed_ms"`
}

func (s *Server) handleRankBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		s.writeQueryError(w, errEmptyBatch)
		return
	}
	if len(req.Queries) > s.cfg.MaxBatchQueries {
		s.writeQueryError(w, fmt.Errorf("%w: %d queries, limit %d",
			errBatchTooLarge, len(req.Queries), s.cfg.MaxBatchQueries))
		return
	}
	if req.Method == "" {
		req.Method = "diss"
	}
	ep, ok := s.evalParams(w, req.Method, req.Samples, req.TimeoutMS, req.Parallelism, req.MaxRows)
	if !ok {
		return
	}
	eps, isAnytime, err := validateEpsilon(req.Epsilon)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	if isAnytime && req.Method != "diss" {
		writeError(w, http.StatusBadRequest, "bad_method",
			`field "epsilon" requires method "diss" (anytime refinement of the dissociation bounds)`)
		return
	}
	s.metrics.batchQueriesTotal.Add(int64(len(req.Queries)))
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()

	// Pin one version for the whole batch; its fingerprint scopes both
	// cache lookups, so every answer — cached or evaluated — reflects
	// exactly this snapshot.
	v := s.store.Current()
	begin := time.Now()

	results := make([]batchResultJSON, len(req.Queries))
	// Pass 1, before taking a worker slot: validate each query, then try
	// the result cache. A batch whose queries were all answered at this
	// version responds without ever entering the admission queue.
	var todo []pendingBatchQuery
	for i, bq := range req.Queries {
		if strings.TrimSpace(bq.Query) == "" {
			results[i] = batchResultJSON{Error: &apiError{Code: "missing_query", Message: `field "query" is required`}}
			continue
		}
		if bq.Top < 0 {
			results[i] = batchResultJSON{Error: &apiError{Code: "bad_top", Message: `field "top" must be >= 0`}}
			continue
		}
		normalized, err := v.DB.NormalizeQuery(bq.Query)
		if err != nil {
			results[i] = s.batchErrResult(err)
			continue
		}
		key := resultCacheKey(v.Fingerprint, req.Method, normalized, req.IgnoreSchema, ep.samples, req.Seed)
		if isAnytime {
			key = resultCacheKey(v.Fingerprint, "anytime", normalized, req.IgnoreSchema, anytimeMCMax(req.Samples), req.Seed)
		}
		if c, ok := s.results.get(key); ok && (!isAnytime || (c.anytime && c.width <= eps)) {
			s.metrics.resultCacheHits.Add(1)
			if isAnytime {
				results[i] = s.anytimeBatchResult(c, bq.Top, eps, "hit", "")
			} else {
				results[i] = cachedBatchResult(c, bq.Top, "hit")
			}
			continue
		}
		todo = append(todo, pendingBatchQuery{i: i, normalized: normalized, key: key})
	}

	var sharedHits int64
	if len(todo) > 0 {
		if err := s.acquire(ctx); err != nil {
			// Nothing was evaluated; fail the whole request the same way
			// /v1/query would (429/504), rather than faking per-query
			// results that are really one admission failure.
			s.writeQueryError(w, err)
			return
		}
		sharedHits = s.runBatch(ctx, v, &req, ep, eps, isAnytime, todo, results)
	}

	done := 0
	for _, res := range results {
		if res.Error == nil {
			done++
		}
	}
	writeJSON(w, http.StatusOK, batchResponse{
		Results:           results,
		Count:             done,
		Version:           v.Seq,
		Fingerprint:       v.Fingerprint,
		SharedSubplanHits: sharedHits,
		ElapsedMS:         float64(time.Since(begin).Microseconds()) / 1000,
	})
}

// pendingBatchQuery is one query that missed the result cache in pass
// 1 and still needs evaluation.
type pendingBatchQuery struct {
	i          int    // index into the request's queries / results
	normalized string // canonical query text
	key        string // result-cache key
}

// runBatch evaluates the batch's result-cache misses while holding a
// worker slot (released by defer — see rankWithSlot for why). One
// lapushdb.Batch spans all of them, so subplan results flow across
// queries and one row budget covers the batch.
func (s *Server) runBatch(ctx context.Context, v *store.Version, req *batchRequest, ep evalParams, eps float64, isAnytime bool, todo []pendingBatchQuery, results []batchResultJSON) int64 {
	defer s.release()
	if s.testHookAfterAcquire != nil {
		s.testHookAfterAcquire()
	}
	stats := &lapushdb.RankStats{}
	opts := &lapushdb.Options{
		Method:              ep.method,
		MCSamples:           ep.samples,
		Seed:                req.Seed,
		IgnoreSchema:        req.IgnoreSchema,
		Workers:             ep.parallelism,
		Stats:               stats,
		MaxIntermediateRows: ep.maxRows,
	}
	batch := v.DB.NewBatch(opts)
	for _, pq := range todo {
		bq := req.Queries[pq.i]
		if isAnytime {
			results[pq.i] = s.runBatchAnytime(ctx, v, batch, req, ep, eps, pq, bq)
			continue
		}
		// A duplicate earlier in the batch (or a concurrent request) may
		// have filled the entry since pass 1.
		if c, ok := s.results.get(pq.key); ok {
			s.metrics.resultCacheHits.Add(1)
			results[pq.i] = cachedBatchResult(c, bq.Top, "hit")
			continue
		}
		s.metrics.resultCacheMisses.Add(1)
		p, _, err := s.preparedNorm(ctx, v, req.Method, bq.Query, pq.normalized, opts)
		if err != nil {
			results[pq.i] = s.batchErrResult(err)
			continue
		}
		answers, err := batch.RankPrepared(ctx, p)
		if err != nil {
			results[pq.i] = s.batchErrResult(err)
			continue
		}
		s.metrics.partitionsTotal.Add(stats.Partitions)
		entry := &cachedResult{answers: toAnswerJSON(answers), safe: p.Safe()}
		s.results.put(pq.key, entry)
		results[pq.i] = cachedBatchResult(entry, bq.Top, "miss")
	}
	bs := batch.Stats()
	s.metrics.sharedSubplanHits.Add(bs.SharedSubplanHits)
	return bs.SharedSubplanHits
}

// runBatchAnytime fills one anytime slot of a running batch. Queries
// degrade independently: a deadline or budget exhaustion mid-refinement
// yields a non-converged interval in this slot (Degraded set) rather
// than an error, and the remaining slots still run — they may be served
// from already-memoized subplans even with the budget gone.
func (s *Server) runBatchAnytime(ctx context.Context, v *store.Version, batch *lapushdb.Batch, req *batchRequest, ep evalParams, eps float64, pq pendingBatchQuery, bq batchQueryJSON) batchResultJSON {
	if c, ok := s.results.get(pq.key); ok && c.anytime && c.width <= eps {
		s.metrics.resultCacheHits.Add(1)
		return s.anytimeBatchResult(c, bq.Top, eps, "hit", "")
	}
	s.metrics.resultCacheMisses.Add(1)
	popts := &lapushdb.Options{IgnoreSchema: req.IgnoreSchema}
	p, _, err := s.preparedNorm(ctx, v, req.Method, bq.Query, pq.normalized, popts)
	if err != nil {
		return s.batchErrResult(err)
	}
	res, err := batch.RankAnytimePrepared(ctx, p, &lapushdb.AnytimeOptions{
		Epsilon:             eps,
		IgnoreSchema:        req.IgnoreSchema,
		Workers:             ep.parallelism,
		MaxIntermediateRows: ep.maxRows,
		MCMaxSamples:        anytimeMCMax(req.Samples),
		Seed:                req.Seed,
	})
	if err != nil {
		return s.batchErrResult(err)
	}
	entry := anytimeEntry(res)
	entry.safe = p.Safe()
	s.putTighter(pq.key, entry)
	return s.anytimeBatchResult(entry, bq.Top, eps, "miss", res.Degraded)
}

// anytimeBatchResult renders one anytime slot from a cache entry,
// recomputing per-answer convergence against the requested epsilon.
func (s *Server) anytimeBatchResult(c *cachedResult, top int, eps float64, label, degraded string) batchResultJSON {
	answers, all := c.anytimeTop(top, eps)
	converged := all && degraded == ""
	width := c.width
	s.noteAnytime(converged, degraded, width)
	return batchResultJSON{
		Answers:   answers,
		Count:     len(answers),
		Safe:      c.safe,
		Cache:     label,
		Converged: &converged,
		Degraded:  degraded,
		Width:     &width,
	}
}

// cachedBatchResult renders one cached (or just-cached) result into
// its response slot, applying the query's top-k cutoff.
func cachedBatchResult(c *cachedResult, top int, label string) batchResultJSON {
	answers := c.top(top)
	return batchResultJSON{Answers: answers, Count: len(answers), Safe: c.safe, Cache: label}
}

// batchErrResult maps one query's failure into its in-envelope error
// object. The batch responds 200 with partial results, so the
// per-query code carries what a standalone request would put in the
// HTTP status; the per-class metrics are maintained identically.
func (s *Server) batchErrResult(err error) batchResultJSON {
	_, code, msg := errorStatus(err)
	s.noteQueryError(code)
	return batchResultJSON{Error: &apiError{Code: code, Message: msg}}
}
