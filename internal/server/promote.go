package server

// Fenced failover: the server-side role state machine over the store's
// promotion epochs.
//
// Every lapushd is in exactly one of three roles. A *primary* accepts
// writes and serves /v1/wal + /v1/checkpoint to tailing replicas. A
// *replica* refuses writes and follows a primary (the tailer lives in
// internal/replica; the server only serves the role). A *fenced* node
// is an ex-primary that has observed a higher promotion epoch somewhere
// in the cluster: it keeps serving reads from its last published
// version but refuses writes with 503 and points clients at the node it
// observed the newer lineage on, because accepting a write would fork
// the WAL into a lineage no replica will ever follow.
//
// POST /v1/promote turns a caught-up replica into a primary: stop the
// tailer, durably bump the store's epoch (checkpoint protocol), start
// answering writes. The optional min_seq guard makes "zero acked-write
// loss" enforceable rather than aspirational: operators pass the
// highest sequence number a client saw acknowledged, and promotion is
// refused (409 "behind") if this replica never applied it.
//
// An old primary learns it was fenced through either of two channels:
// a peer handshake (Config.Peers; polled by the fence watcher and once
// synchronously at startup via CheckPeers) or a tailing attempt — every
// /v1/wal request carries the caller's epoch, so a node serving its log
// to a higher-epoch caller fences itself on the spot.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"lapushdb/internal/store"
)

// role is the server's position in the failover state machine.
type role int32

const (
	rolePrimary role = iota
	roleReplica
	roleFenced
)

func (ro role) String() string {
	switch ro {
	case roleReplica:
		return "replica"
	case roleFenced:
		return "fenced"
	default:
		return "primary"
	}
}

func (s *Server) currentRole() role { return role(s.role.Load()) }

// fencedPrimary returns the base URL of the node the server observed a
// newer epoch on, or "" when unknown (fenced via an anonymous tailing
// attempt).
func (s *Server) fencedPrimary() string {
	if v, ok := s.fencedBy.Load().(string); ok {
		return v
	}
	return ""
}

// fence moves a primary into the fenced role after observing peerEpoch
// (> the local epoch) at peer. Replicas are never fenced — they already
// refuse writes and follow whatever lineage their primary serves — and
// fencing is sticky: only a process restart (re-seeded as a replica of
// the new primary) leaves the role.
func (s *Server) fence(peer string, peerEpoch uint64) {
	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	// Record the observation at the store level first: Store.Apply
	// rechecks it under the applier's lock, so an ingest that passed the
	// role check before this transition still cannot commit on the stale
	// lineage afterwards.
	s.store.Fence(peerEpoch)
	if s.currentRole() != rolePrimary || peerEpoch <= s.store.Epoch() {
		return
	}
	if peer != "" {
		s.fencedBy.Store(peer)
	}
	s.role.Store(int32(roleFenced))
	s.metrics.fencedTotal.Add(1)
	at := peer
	if at == "" {
		at = "a tailing peer"
	}
	s.logf("lapushd: fenced: observed promotion epoch %d at %s (local epoch %d); refusing writes to avoid forking the WAL", peerEpoch, at, s.store.Epoch())
}

type promoteRequest struct {
	// MinSeq refuses the promotion unless this replica has applied at
	// least this sequence number. Pass the highest seq any client saw
	// acknowledged; zero skips the guard.
	MinSeq uint64 `json:"min_seq"`
}

type promoteResponse struct {
	// Promoted is false when the node already was the primary (the call
	// is idempotent).
	Promoted    bool   `json:"promoted"`
	Role        string `json:"role"`
	Epoch       uint64 `json:"epoch"`
	Version     uint64 `json:"version"`
	Fingerprint string `json:"fingerprint"`
}

// handlePromote is POST /v1/promote: promote this replica to primary on
// a new, durably recorded epoch. Idempotent on a node that already is
// the primary; refused on a fenced node (promoting it would resurrect
// the stale lineage) and on a replica that has not reached min_seq.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	var req promoteRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			writeError(w, http.StatusRequestEntityTooLarge, "body_too_large",
				fmt.Sprintf("request body exceeds %d bytes", maxErr.Limit))
			return
		}
		writeError(w, http.StatusBadRequest, "bad_json", fmt.Sprintf("malformed request body: %v", err))
		return
	}

	s.promoteMu.Lock()
	defer s.promoteMu.Unlock()
	switch s.currentRole() {
	case roleFenced:
		if p := s.fencedPrimary(); p != "" {
			w.Header().Set("X-Lapushd-Primary", p)
		}
		writeError(w, http.StatusConflict, "fenced",
			"this lapushd observed a newer promotion epoch and is fenced; re-seed it as a replica of the new primary instead of promoting it")
		return
	case rolePrimary:
		v := s.store.Current()
		if v.Seq < req.MinSeq {
			writeError(w, http.StatusConflict, "behind",
				fmt.Sprintf("primary head %d has not reached required min_seq %d", v.Seq, req.MinSeq))
			return
		}
		writeJSON(w, http.StatusOK, promoteResponse{
			Promoted: false, Role: rolePrimary.String(),
			Epoch: v.Epoch, Version: v.Seq, Fingerprint: v.Fingerprint,
		})
		return
	}

	// Replica path. Refuse a provably lossy promotion before touching the
	// tailer, so a refused node keeps converging and a retry can succeed.
	if v := s.store.Current(); v.Seq < req.MinSeq {
		writeError(w, http.StatusConflict, "behind",
			fmt.Sprintf("replica applied through seq %d, short of required min_seq %d; writes acknowledged past its head would be lost", v.Seq, req.MinSeq))
		return
	}
	if s.cfg.StopTailer != nil {
		if err := s.cfg.StopTailer(); err != nil {
			writeError(w, http.StatusInternalServerError, "internal", fmt.Sprintf("stop tailer: %v", err))
			return
		}
	}
	v, err := s.store.Promote(req.MinSeq)
	if err != nil {
		switch {
		case errors.Is(err, store.ErrBehind):
			writeError(w, http.StatusConflict, "behind", err.Error())
		case errors.Is(err, store.ErrReadOnly):
			w.Header().Set("Retry-After", retryAfterSeconds)
			writeError(w, http.StatusServiceUnavailable, "read_only", err.Error())
		default:
			writeError(w, http.StatusInternalServerError, "durability_failure", err.Error())
		}
		return
	}
	s.role.Store(int32(rolePrimary))
	s.logf("lapushd: promoted to primary at version %d on epoch %d", v.Seq, v.Epoch)
	writeJSON(w, http.StatusOK, promoteResponse{
		Promoted: true, Role: rolePrimary.String(),
		Epoch: v.Epoch, Version: v.Seq, Fingerprint: v.Fingerprint,
	})
}

// peerHealth is the slice of a peer's /healthz body the handshake needs.
type peerHealth struct {
	Epoch uint64 `json:"epoch"`
}

// fetchPeerEpoch asks one peer for its current promotion epoch.
func fetchPeerEpoch(ctx context.Context, client *http.Client, peer string) (uint64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/healthz", nil)
	if err != nil {
		return 0, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("peer %s answered %d", peer, resp.StatusCode)
	}
	var ph peerHealth
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&ph); err != nil {
		return 0, fmt.Errorf("peer %s: parse healthz: %w", peer, err)
	}
	return ph.Epoch, nil
}

// CheckPeers runs one synchronous handshake round against Config.Peers,
// fencing this node if any reachable peer reports a higher epoch, and
// reports whether the node is fenced afterwards. cmd/lapushd calls it
// once before serving, so a restarted old primary that can reach the
// promoted replica never answers a single write on the stale lineage;
// unreachable peers are skipped (a dead peer must not block startup).
func (s *Server) CheckPeers(ctx context.Context) bool {
	for _, peer := range s.cfg.Peers {
		if s.currentRole() != rolePrimary {
			break
		}
		ep, err := fetchPeerEpoch(ctx, s.peerClient, peer)
		if err != nil {
			continue
		}
		if ep > s.store.Epoch() {
			s.fence(peer, ep)
		}
	}
	return s.currentRole() == roleFenced
}

// fenceWatcher polls the peers for higher epochs until Close. It keeps
// running after the node fences (the role transition is sticky, so the
// extra polls are cheap no-ops) to keep the code path single-shaped.
func (s *Server) fenceWatcher() {
	defer close(s.fenceDone)
	t := time.NewTicker(s.cfg.FencePollInterval)
	defer t.Stop()
	for {
		select {
		case <-s.fenceStop:
			return
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.FencePollInterval)
			s.CheckPeers(ctx)
			cancel()
		}
	}
}

// Close stops the fence watcher, if one was started. The HTTP handlers
// stay usable; Close only releases the server's background goroutine.
func (s *Server) Close() {
	s.closeOnce.Do(func() {
		if s.fenceDone != nil {
			close(s.fenceStop)
			<-s.fenceDone
		}
	})
}
