package server

import (
	"encoding/json"
	"net/http"
	"testing"
)

// End-to-end tests for /v1/rank_batch and the versioned result cache:
// the batch envelope (partial results, per-query error objects), cache
// hit/miss reporting with its metrics, and invalidation by ingestion
// (a new version fingerprint makes every old entry unreachable).

const testQuery2 = "q(movie) :- Stars(movie, actor), Fan(actor)"

func postBatch(t *testing.T, url string, req batchRequest) (*http.Response, batchResponse, []byte) {
	t.Helper()
	resp, body := postJSON(t, url+"/v1/rank_batch", req)
	var br batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &br); err != nil {
			t.Fatalf("batch response: %v\n%s", err, body)
		}
	}
	return resp, br, body
}

func TestRankBatchHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := batchRequest{Queries: []batchQueryJSON{
		{Query: testQuery},
		{Query: testQuery2},
		{Query: testQuery}, // duplicate: shares the first query's subplans
	}}
	resp, br, body := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if len(br.Results) != 3 || br.Count != 3 {
		t.Fatalf("want 3 results, got %+v", br)
	}
	for i, res := range br.Results {
		if res.Error != nil {
			t.Fatalf("query %d: %+v", i, res.Error)
		}
		if res.Count == 0 || len(res.Answers) != res.Count {
			t.Fatalf("query %d: no answers: %+v", i, res)
		}
	}
	if br.Fingerprint == "" {
		t.Fatal("missing fingerprint")
	}
	// The duplicate was served by the result cache within the batch (it
	// was filled by the first query's evaluation), so its slot reports a
	// hit while the two distinct queries report misses.
	if br.Results[0].Cache != "miss" || br.Results[1].Cache != "miss" {
		t.Fatalf("distinct queries should miss the result cache: %+v", br.Results)
	}
	if br.Results[2].Cache != "hit" {
		t.Fatalf("duplicate query should hit the result cache: %+v", br.Results[2])
	}
	// Batch answers match a standalone /v1/query bit-for-bit.
	qresp, qbody := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", qresp.StatusCode, qbody)
	}
	var qr queryResponse
	if err := json.Unmarshal(qbody, &qr); err != nil {
		t.Fatal(err)
	}
	if len(qr.Answers) != len(br.Results[0].Answers) {
		t.Fatalf("batch %d answers vs standalone %d", len(br.Results[0].Answers), len(qr.Answers))
	}
	for i := range qr.Answers {
		if qr.Answers[i].Score != br.Results[0].Answers[i].Score {
			t.Fatalf("answer %d: batch score %v != standalone %v", i, br.Results[0].Answers[i].Score, qr.Answers[i].Score)
		}
	}
}

func TestRankBatchValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatchQueries: 2})

	resp, _, body := postBatch(t, ts.URL, batchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "empty_batch" {
		t.Fatalf("want empty_batch, got %+v", e)
	}

	over := batchRequest{Queries: []batchQueryJSON{{Query: testQuery}, {Query: testQuery}, {Query: testQuery}}}
	resp, _, body = postBatch(t, ts.URL, over)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "batch_too_large" {
		t.Fatalf("want batch_too_large, got %+v", e)
	}

	resp, _, body = postBatch(t, ts.URL, batchRequest{Method: "bogus", Queries: []batchQueryJSON{{Query: testQuery}}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad method: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "bad_method" {
		t.Fatalf("want bad_method, got %+v", e)
	}
}

// TestRankBatchPartialFailure pins the envelope contract: per-query
// failures (parse errors, the shared row budget) land as error objects
// in their own slots of a 200 response, with the other queries'
// answers intact.
func TestRankBatchPartialFailure(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := batchRequest{Queries: []batchQueryJSON{
		{Query: testQuery},
		{Query: "q(x :- broken("},
		{Query: ""},
		{Query: testQuery2},
	}}
	resp, br, body := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if br.Count != 2 {
		t.Fatalf("want 2 successful queries, got %d: %+v", br.Count, br.Results)
	}
	if br.Results[0].Error != nil || br.Results[3].Error != nil {
		t.Fatalf("valid queries failed: %+v", br.Results)
	}
	if br.Results[1].Error == nil || br.Results[1].Error.Code != "bad_query" {
		t.Fatalf("want bad_query in slot 1, got %+v", br.Results[1])
	}
	if br.Results[2].Error == nil || br.Results[2].Error.Code != "missing_query" {
		t.Fatalf("want missing_query in slot 2, got %+v", br.Results[2])
	}
}

// TestRankBatchBudgetExceeded drives the shared batch budget into the
// ground and checks the failing queries report budget_exceeded inside
// the 200 envelope (satellite case for the errorStatus mapping).
func TestRankBatchBudgetExceeded(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := batchRequest{
		Queries: []batchQueryJSON{{Query: testQuery}},
		MaxRows: 1,
	}
	resp, br, body := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if br.Results[0].Error == nil || br.Results[0].Error.Code != "budget_exceeded" {
		t.Fatalf("want budget_exceeded, got %+v", br.Results[0])
	}
	if br.Count != 0 {
		t.Fatalf("want 0 successful queries, got %d", br.Count)
	}
}

// TestResultCacheInvalidation is the satellite e2e: rank → ingest →
// rank sees the new version (the fingerprint-scoped key misses), and a
// second identical request at the new version reports a hit and bumps
// the hit counter.
func TestResultCacheInvalidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	scrape := func() string {
		_, body := getBody(t, ts.URL+"/metrics")
		return string(body)
	}
	batchOne := batchRequest{Queries: []batchQueryJSON{{Query: testQuery}}}

	resp, br, body := postBatch(t, ts.URL, batchOne)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if br.Results[0].Cache != "miss" {
		t.Fatalf("first request: want miss, got %+v", br.Results[0])
	}
	fp1 := br.Fingerprint
	baseline := br.Results[0].Answers

	hits0 := metricValue(t, scrape(), "lapushd_result_cache_hits_total")
	resp, br, body = postBatch(t, ts.URL, batchOne)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if br.Results[0].Cache != "hit" {
		t.Fatalf("repeat request: want hit, got %+v", br.Results[0])
	}
	if got := metricValue(t, scrape(), "lapushd_result_cache_hits_total"); got != hits0+1 {
		t.Fatalf("want hits %v, got %v", hits0+1, got)
	}

	// Ingest a mutation that changes the answer set: the new version's
	// fingerprint makes the cached entry unreachable.
	ingest := map[string]any{"mutations": []map[string]any{
		{"op": "insert", "rel": "Likes", "p": 0.95, "tuple": []string{"carol", "ronin"}},
	}}
	resp, body = postJSON(t, ts.URL+"/v1/ingest", ingest)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest status %d: %s", resp.StatusCode, body)
	}

	misses0 := metricValue(t, scrape(), "lapushd_result_cache_misses_total")
	resp, br, body = postBatch(t, ts.URL, batchOne)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if br.Results[0].Cache != "miss" {
		t.Fatalf("post-ingest request: want miss (new fingerprint), got %+v", br.Results[0])
	}
	if br.Fingerprint == fp1 {
		t.Fatal("fingerprint did not change across ingest")
	}
	if got := metricValue(t, scrape(), "lapushd_result_cache_misses_total"); got != misses0+1 {
		t.Fatalf("want misses %v, got %v", misses0+1, got)
	}
	if len(br.Results[0].Answers) != len(baseline)+1 {
		t.Fatalf("post-ingest: want %d answers, got %d", len(baseline)+1, len(br.Results[0].Answers))
	}

	// And /v1/query shares the same cache: the batch's post-ingest
	// evaluation already cached this query at the new version.
	qresp, qbody := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
	if qresp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", qresp.StatusCode, qbody)
	}
	var qr queryResponse
	if err := json.Unmarshal(qbody, &qr); err != nil {
		t.Fatal(err)
	}
	if qr.ResultCache != "hit" {
		t.Fatalf("query after batch: want result_cache hit, got %+v", qr)
	}
}

// TestRankBatchMetrics checks the batch-specific counters.
func TestRankBatchMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := batchRequest{Queries: []batchQueryJSON{
		{Query: testQuery}, {Query: testQuery}, {Query: testQuery2},
	}}
	resp, br, body := postBatch(t, ts.URL, req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	m := func(name string) float64 {
		_, b := getBody(t, ts.URL+"/metrics")
		return metricValue(t, string(b), name)
	}
	if got := m("lapushd_batch_queries_total"); got != 3 {
		t.Fatalf("batch_queries_total = %v, want 3", got)
	}
	if got := m("lapushd_result_cache_entries"); got < 2 {
		t.Fatalf("result_cache_entries = %v, want >= 2", got)
	}
	if br.SharedSubplanHits == 0 {
		// The duplicate is served by the result cache before evaluation,
		// so subplan sharing shows up only across the distinct queries;
		// both rank over Stars⋈Fan, and the shared metric counts it.
		if got := m("lapushd_shared_subplan_hits_total"); got == 0 {
			t.Logf("no cross-query subplan hits on this workload (disjoint reduced scans); metric present at %v", got)
		}
	}
}
