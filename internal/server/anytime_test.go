package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// decodeQuery decodes a /v1/query response body.
func decodeQuery(t *testing.T, body []byte) queryResponse {
	t.Helper()
	var qr queryResponse
	if err := json.Unmarshal(body, &qr); err != nil {
		t.Fatalf("bad query response: %v\n%s", err, body)
	}
	return qr
}

// checkIntervals asserts the anytime answer invariants: every answer
// carries a well-formed interval, Score echoes the upper bound, and
// answers are ranked by it.
func checkIntervals(t *testing.T, answers []answerJSON) {
	t.Helper()
	if len(answers) == 0 {
		t.Fatal("no answers")
	}
	for i, a := range answers {
		if a.Interval == nil {
			t.Fatalf("answer %d has no interval: %+v", i, a)
		}
		iv := a.Interval
		if iv.Lower < 0 || iv.Upper > 1 || iv.Lower > iv.Upper {
			t.Fatalf("answer %d: malformed interval [%g, %g]", i, iv.Lower, iv.Upper)
		}
		if a.Score != iv.Upper {
			t.Fatalf("answer %d: score %g != upper %g", i, a.Score, iv.Upper)
		}
		if i > 0 && answers[i-1].Interval.Upper < iv.Upper {
			t.Fatalf("answers not ranked by upper bound at %d", i)
		}
	}
}

func TestAnytimeQueryHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{"query": testQuery, "epsilon": 0.05}
	resp, body := postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Converged == nil || !*qr.Converged || qr.Degraded != "" {
		t.Fatalf("want converged, got %+v", qr)
	}
	if qr.Width == nil || *qr.Width > 0.05 || qr.Epsilon == nil || *qr.Epsilon != 0.05 {
		t.Fatalf("width/epsilon fields wrong: %+v", qr)
	}
	if qr.ResultCache != "miss" || qr.Count != 2 {
		t.Fatalf("want fresh 2-answer response, got %+v", qr)
	}
	checkIntervals(t, qr.Answers)

	// The identical request is a width-tagged cache hit.
	resp, body = postJSON(t, ts.URL+"/v1/query", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.ResultCache != "hit" || qr.Converged == nil || !*qr.Converged {
		t.Fatalf("repeat should hit the result cache converged: %+v", qr)
	}

	_, m := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(m), "lapushd_anytime_converged_total"); got < 2 {
		t.Fatalf("lapushd_anytime_converged_total = %v, want >= 2", got)
	}
	if got := metricValue(t, string(m), "lapushd_anytime_interval_width_count"); got < 2 {
		t.Fatalf("lapushd_anytime_interval_width_count = %v, want >= 2", got)
	}
}

func TestAnytimeEpsilonValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, eps := range []float64{-0.1, 1, 1.5} {
		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": eps})
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("epsilon %v: status %d, want 400: %s", eps, resp.StatusCode, body)
		}
		if e := decodeErr(t, body); e.Code != "bad_epsilon" {
			t.Fatalf("epsilon %v: code %q, want bad_epsilon", eps, e.Code)
		}
	}
	// Epsilon demands the dissociation method: its plans are what anytime
	// refines.
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": 0.1, "method": "mc"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mc+epsilon: status %d, want 400: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "bad_method" {
		t.Fatalf("mc+epsilon: code %q, want bad_method", e.Code)
	}
	// Same contract on the batch endpoint.
	resp, body = postJSON(t, ts.URL+"/v1/rank_batch", map[string]any{
		"queries": []map[string]any{{"query": testQuery}}, "epsilon": 2.0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch epsilon 2: status %d: %s", resp.StatusCode, body)
	}
	if e := decodeErr(t, body); e.Code != "bad_epsilon" {
		t.Fatalf("batch epsilon 2: code %q, want bad_epsilon", e.Code)
	}
}

// TestAnytimeBudgetDegradesE2E is the acceptance path: bisect the row
// budget to the smallest value at which the first refinement stage
// completes, and assert the response there is HTTP 200 carrying valid
// non-converged intervals with degraded="budget" — not the 422 the
// plain query path returns. Each probe uses a distinct seed so the
// width-tagged result cache never serves an earlier probe's answer.
func TestAnytimeBudgetDegradesE2E(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	seed := int64(0)
	probe := func(budget int) (int, queryResponse, apiError) {
		seed++
		resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{
			"query": testQuery, "epsilon": 0.001, "max_rows": budget, "seed": seed})
		if resp.StatusCode == http.StatusOK {
			return resp.StatusCode, decodeQuery(t, body), apiError{}
		}
		return resp.StatusCode, queryResponse{}, decodeErr(t, body)
	}
	if code, _, e := probe(1); code != http.StatusUnprocessableEntity || e.Code != "budget_exceeded" {
		t.Fatalf("budget 1: status %d code %q, want 422 budget_exceeded", code, e.Code)
	}
	lo, hi := 1, 4096
	if code, qr, _ := probe(hi); code != http.StatusOK || qr.Degraded != "" {
		t.Fatalf("budget %d: status %d degraded %q, want clean 200", hi, code, qr.Degraded)
	}
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		if code, _, _ := probe(mid); code != http.StatusOK {
			lo = mid
		} else {
			hi = mid
		}
	}
	code, qr, _ := probe(hi)
	if code != http.StatusOK {
		t.Fatalf("minimal viable budget %d: status %d", hi, code)
	}
	if qr.Degraded != "budget" || qr.Converged == nil || *qr.Converged {
		t.Fatalf("minimal viable budget %d: want degraded budget non-converged, got %+v", hi, qr)
	}
	checkIntervals(t, qr.Answers)
	_, m := getBody(t, ts.URL+"/metrics")
	if got := metricValue(t, string(m), "lapushd_anytime_degraded_total"); got < 1 {
		t.Fatalf("lapushd_anytime_degraded_total = %v, want >= 1", got)
	}
}

// TestAnytimeTighterEpsilonRefines pins the width-tagged cache
// contract: a cached interval serves only requests whose epsilon it
// already meets; a tighter request re-refines, and the refined entry
// then serves the original loose epsilon too.
func TestAnytimeTighterEpsilonRefines(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": 0.4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, body)
	}
	warm := decodeQuery(t, body)
	if warm.Width == nil || *warm.Width <= 0 {
		t.Fatalf("warm run should leave a non-degenerate width: %+v", warm)
	}
	w1 := *warm.Width

	// Tighter than the cached width: must re-refine, not serve stale.
	tighter := w1 / 2
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": tighter})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tighter: status %d: %s", resp.StatusCode, body)
	}
	refined := decodeQuery(t, body)
	if refined.ResultCache != "miss" {
		t.Fatalf("tighter epsilon must re-refine, got result_cache %q", refined.ResultCache)
	}
	if refined.Converged == nil || !*refined.Converged || *refined.Width > tighter {
		t.Fatalf("tighter run did not converge: %+v", refined)
	}

	// The loose epsilon is now served by the tighter entry.
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": 0.4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("loose repeat: status %d: %s", resp.StatusCode, body)
	}
	if qr := decodeQuery(t, body); qr.ResultCache != "hit" || *qr.Width > tighter {
		t.Fatalf("loose repeat should hit the refined entry: %+v", qr)
	}
}

// TestPutTighter pins the cache replacement rule directly: a wider
// recomputation never overwrites a tighter cached interval.
func TestPutTighter(t *testing.T) {
	s := New(movieDB(t), Config{})
	key := "k"
	s.putTighter(key, &cachedResult{anytime: true, width: 0.5})
	s.putTighter(key, &cachedResult{anytime: true, width: 0.2})
	if c, _ := s.results.get(key); c.width != 0.2 {
		t.Fatalf("tighter entry should replace: width %g", c.width)
	}
	s.putTighter(key, &cachedResult{anytime: true, width: 0.4})
	if c, _ := s.results.get(key); c.width != 0.2 {
		t.Fatalf("wider entry must not overwrite: width %g", c.width)
	}

	// The width comparison and the insert are one atomic step (putIf):
	// however two concurrent evaluations of the same key interleave, a
	// wide degraded interval can never overwrite a tight one — once the
	// tight entry lands, it must still be there after both writers stop.
	key2 := "k2"
	var wg sync.WaitGroup
	for _, w := range []float64{0.05, 0.9} {
		wg.Add(1)
		go func(w float64) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.putTighter(key2, &cachedResult{anytime: true, width: w})
			}
		}(w)
	}
	wg.Wait()
	if c, _ := s.results.get(key2); c.width != 0.05 {
		t.Fatalf("concurrent wider writer overwrote the tighter entry: width %g", c.width)
	}
}

// TestAnytimeShedServesStale exercises the degraded-200 shed path: with
// the worker pool saturated and the deadline below the queue-wait
// estimate, an anytime request that cannot be admitted is served the
// cached interval — any width — as a degraded response instead of 429.
func TestAnytimeShedServesStale(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueWait: 10 * time.Second})

	// Warm the cache with a loose interval.
	resp, body := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery, "epsilon": 0.4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: status %d: %s", resp.StatusCode, body)
	}
	w1 := *decodeQuery(t, body).Width
	if w1 <= 0 {
		t.Fatal("warm width is degenerate; cannot force a cache miss")
	}

	// Saturate the single worker slot with a request parked in the hook.
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookAfterAcquire = func() {
		once.Do(func() { close(entered) })
		<-release
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// A distinct query misses the result cache and takes the slot.
		// Plain http.Post: t.Fatal is not goroutine-safe.
		body := strings.NewReader(`{"query": "q(a) :- Fan(a)", "method": "exact"}`)
		r, err := http.Post(ts.URL+"/v1/query", "application/json", body)
		if err == nil {
			r.Body.Close()
		}
	}()
	t.Cleanup(func() { close(release); wg.Wait() })
	<-entered

	// Tighter epsilon misses the cache; the short deadline sheds it at
	// admission; the stale loose interval comes back as a degraded 200.
	resp, body = postJSON(t, ts.URL+"/v1/query", map[string]any{
		"query": testQuery, "epsilon": w1 / 2, "timeout_ms": 500})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("shed request: status %d, want degraded 200: %s", resp.StatusCode, body)
	}
	qr := decodeQuery(t, body)
	if qr.Degraded != "shed" || qr.Converged == nil || *qr.Converged {
		t.Fatalf("want degraded=shed non-converged, got %+v", qr)
	}
	if qr.ResultCache != "stale" || *qr.Width != w1 {
		t.Fatalf("want the stale cached width %g, got %+v", w1, qr)
	}
	checkIntervals(t, qr.Answers)
}

// TestAnytimeBatch drives epsilon through /v1/rank_batch: per-slot
// intervals and convergence, and width-tagged cache hits on repeat.
func TestAnytimeBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	req := map[string]any{
		"queries": []map[string]any{
			{"query": testQuery},
			{"query": "q(a) :- Fan(a)", "top": 1},
		},
		"epsilon": 0.05,
	}
	resp, body := postJSON(t, ts.URL+"/v1/rank_batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var br batchResponse
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	if br.Count != 2 || len(br.Results) != 2 {
		t.Fatalf("want 2 results, got %+v", br)
	}
	for i, res := range br.Results {
		if res.Error != nil {
			t.Fatalf("slot %d errored: %+v", i, res.Error)
		}
		if res.Converged == nil || !*res.Converged || res.Degraded != "" {
			t.Fatalf("slot %d not converged: %+v", i, res)
		}
		if res.Cache != "miss" {
			t.Fatalf("slot %d: want cache miss, got %q", i, res.Cache)
		}
		checkIntervals(t, res.Answers)
	}
	if len(br.Results[1].Answers) != 1 {
		t.Fatalf("top=1 not applied: %+v", br.Results[1])
	}

	// Repeat: both slots served from the width-tagged cache.
	resp, body = postJSON(t, ts.URL+"/v1/rank_batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &br); err != nil {
		t.Fatal(err)
	}
	for i, res := range br.Results {
		if res.Cache != "hit" || res.Converged == nil || !*res.Converged {
			t.Fatalf("repeat slot %d: want converged hit, got %+v", i, res)
		}
	}
}
