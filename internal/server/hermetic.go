package server

import (
	"net/http/httptest"

	"lapushdb"
)

// NewHermetic is the load-harness/test hook: a fully in-process
// lapushd over an empty ephemeral store, served by net/http/httptest.
// cmd/loadgen uses it to run the standing load harness hermetically in
// CI — same handler stack, worker pool, caches, and store versioning
// as a live deployment, no sockets fighting the sandbox and no
// external process to babysit. The caller owns the returned server and
// must Close it; the bench dataset arrives through /v1/ingest exactly
// as it would over the wire.
func NewHermetic(cfg Config) *httptest.Server {
	return httptest.NewServer(New(lapushdb.Open(), cfg))
}
