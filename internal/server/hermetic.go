package server

import (
	"net/http/httptest"
	"time"

	"lapushdb"
	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// NewHermetic is the load-harness/test hook: a fully in-process
// lapushd over an empty ephemeral store, served by net/http/httptest.
// cmd/loadgen uses it to run the standing load harness hermetically in
// CI — same handler stack, worker pool, caches, and store versioning
// as a live deployment, no sockets fighting the sandbox and no
// external process to babysit. The caller owns the returned server and
// must Close it; the bench dataset arrives through /v1/ingest exactly
// as it would over the wire.
func NewHermetic(cfg Config) *httptest.Server {
	return httptest.NewServer(New(lapushdb.Open(), cfg))
}

// HermeticPair is an in-process primary + read replica for tests and
// the load harness: two full handler stacks over ephemeral stores, the
// replica tailing the primary's /v1/wal exactly as a live deployment
// would. Close tears down replica-first so the tailer never spams
// reconnect errors against a dead primary.
type HermeticPair struct {
	Primary *httptest.Server
	Replica *httptest.Server
	Tailer  *replica.Replica

	rstore *store.Store
}

// Close shuts the pair down (replica tailer, then both servers). Safe
// after KillPrimary and after a promotion already stopped the tailer.
func (p *HermeticPair) Close() {
	_ = p.Tailer.Close()
	p.Replica.Close()
	p.Primary.Close()
	_ = p.rstore.Close()
}

// KillPrimary terminates the primary abruptly — in-flight connections
// cut, listener closed — simulating a primary crash for failover
// drills. In-flight ingests die unacknowledged, exactly like kill -9.
func (p *HermeticPair) KillPrimary() {
	p.Primary.CloseClientConnections()
	p.Primary.Close()
}

// NewHermeticPair boots a hermetic primary and one replica tailing it.
// Both serve the full API; the replica refuses ingestion with 503 and
// reports its lag on /healthz. The short stream window and reconnect
// backoff keep test cycles fast.
func NewHermeticPair(cfg Config) (*HermeticPair, error) {
	primary := NewHermetic(cfg)
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		primary.Close()
		return nil, err
	}
	tailer, err := replica.Start(replica.Options{
		Primary:          primary.URL,
		Store:            rst,
		ReconnectBackoff: 50 * time.Millisecond,
		StreamWindow:     2 * time.Second,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		rst.Close()
		primary.Close()
		return nil, err
	}
	rcfg := cfg
	rcfg.ReplicaOf = primary.URL
	rcfg.ReplicaStatus = tailer.Status
	rcfg.StopTailer = tailer.Close
	rcfg.Logf = func(string, ...any) {}
	rep := httptest.NewServer(NewWithStore(rst, rcfg))
	return &HermeticPair{Primary: primary, Replica: rep, Tailer: tailer, rstore: rst}, nil
}
