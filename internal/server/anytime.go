package server

import (
	"context"
	"errors"
	"net/http"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
)

// Anytime request path. A /v1/query (or /v1/rank_batch) request that
// carries an epsilon is answered with [lower, upper] probability
// intervals, refined until every answer's width reaches epsilon or the
// deadline fires — and, the robustness payoff, the failure paths
// degrade instead of discarding work:
//
//   - deadline (would be 504) and row budget (would be 422) during
//     refinement return 200 with the best-so-far, non-converged
//     intervals, as long as at least one refinement stage completed;
//   - shed at admission (would be 429) and deadline at admission serve
//     a stale cached interval of any width as a degraded 200 when one
//     exists for the query.
//
// Result-cache entries are tagged with the width they achieved: a
// request with a looser epsilon is a hit, a tighter one re-refines, and
// a wider re-computation never overwrites a tighter cached interval.

// anytimeMCMax resolves the per-answer Monte Carlo sample cap from the
// request's samples field (0 = the anytime default). The resolved value
// is part of the result-cache key, so an explicit default and an
// omitted field share an entry.
func anytimeMCMax(samples int) int {
	if samples <= 0 {
		return lapushdb.DefaultAnytimeMCMaxSamples
	}
	return samples
}

// handleAnytimeQuery is /v1/query's anytime branch; req.Epsilon is
// validated and req.Method is "diss".
func (s *Server) handleAnytimeQuery(w http.ResponseWriter, r *http.Request, req *queryRequest, eps float64, ep evalParams) {
	ctx, cancel := s.requestContext(r, req.TimeoutMS)
	defer cancel()
	v := s.store.Current()
	begin := time.Now()
	normalized, err := v.DB.NormalizeQuery(req.Query)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	// The plan cache keys by "diss": a Prepared is method-independent
	// and anytime refines the same minimal plans.
	popts := &lapushdb.Options{IgnoreSchema: req.IgnoreSchema}
	p, hit, err := s.preparedNorm(ctx, v, "diss", req.Query, normalized, popts)
	if err != nil {
		s.writeQueryError(w, err)
		return
	}
	mcMax := anytimeMCMax(req.Samples)
	// The key deliberately omits epsilon: one entry per query serves
	// every epsilon at or above its achieved width.
	rkey := resultCacheKey(v.Fingerprint, "anytime", normalized, req.IgnoreSchema, mcMax, req.Seed)
	if c, ok := s.results.get(rkey); ok && c.anytime && c.width <= eps {
		s.metrics.resultCacheHits.Add(1)
		s.writeAnytimeCached(w, req, p.Safe(), hit, "hit", c, eps, "", begin)
		return
	}
	s.metrics.resultCacheMisses.Add(1)
	if err := s.acquire(ctx); err != nil {
		// Shed or out of deadline before any work: a stale loose
		// interval beats discarding the request — the bounds are valid
		// for this store version, just wider than asked.
		if c, ok := s.results.get(rkey); ok && c.anytime {
			label := "deadline"
			if errors.Is(err, errOverloaded) {
				label = "shed"
			}
			s.metrics.anytimeDegraded.Add(1)
			s.writeAnytimeCached(w, req, p.Safe(), hit, "stale", c, eps, label, begin)
			return
		}
		s.writeQueryError(w, err)
		return
	}
	res, err := s.anytimeWithSlot(ctx, v, p, req, eps, ep, mcMax)
	if err != nil {
		// Refinement died before its first stage completed. A cached
		// interval (any width) still serves deadline/budget failures.
		if status, _, _ := errorStatus(err); status == http.StatusGatewayTimeout || status == http.StatusUnprocessableEntity {
			if c, ok := s.results.get(rkey); ok && c.anytime {
				label := "deadline"
				if status == http.StatusUnprocessableEntity {
					label = "budget"
				}
				s.metrics.anytimeDegraded.Add(1)
				s.writeAnytimeCached(w, req, p.Safe(), hit, "stale", c, eps, label, begin)
				return
			}
		}
		s.writeQueryError(w, err)
		return
	}
	entry := anytimeEntry(res)
	entry.safe = p.Safe()
	s.putTighter(rkey, entry)
	s.noteAnytime(res.Converged, res.Degraded, res.Width)
	answers, _ := entry.anytimeTop(req.Top, eps)
	converged := res.Converged && res.Degraded == ""
	width := res.Width
	writeJSON(w, http.StatusOK, queryResponse{
		Answers:     answers,
		Count:       len(answers),
		Method:      req.Method,
		Safe:        p.Safe(),
		Cache:       cacheLabel(hit),
		ResultCache: "miss",
		ElapsedMS:   float64(time.Since(begin).Microseconds()) / 1000,
		Converged:   &converged,
		Degraded:    res.Degraded,
		Width:       &width,
		Epsilon:     &eps,
	})
}

// anytimeWithSlot runs the anytime evaluation while holding a worker
// slot (released by defer — see rankWithSlot).
func (s *Server) anytimeWithSlot(ctx context.Context, v *store.Version, p *lapushdb.Prepared, req *queryRequest, eps float64, ep evalParams, mcMax int) (*lapushdb.AnytimeResult, error) {
	defer s.release()
	if s.testHookAfterAcquire != nil {
		s.testHookAfterAcquire()
	}
	return v.DB.RankAnytimePrepared(ctx, p, &lapushdb.AnytimeOptions{
		Epsilon:             eps,
		IgnoreSchema:        req.IgnoreSchema,
		Workers:             ep.parallelism,
		MaxIntermediateRows: ep.maxRows,
		MCMaxSamples:        mcMax,
		Seed:                req.Seed,
	})
}

// writeAnytimeCached serves an anytime response from a cache entry —
// a genuine hit (entry width within epsilon) or a stale degraded
// fallback — recomputing per-answer convergence against the requested
// epsilon.
func (s *Server) writeAnytimeCached(w http.ResponseWriter, req *queryRequest, safe, planHit bool, cacheLabelStr string, c *cachedResult, eps float64, degraded string, begin time.Time) {
	answers, all := c.anytimeTop(req.Top, eps)
	converged := all && degraded == ""
	width := c.width
	s.noteAnytime(converged, degraded, width)
	writeJSON(w, http.StatusOK, queryResponse{
		Answers:     answers,
		Count:       len(answers),
		Method:      req.Method,
		Safe:        safe,
		Cache:       cacheLabel(planHit),
		ResultCache: cacheLabelStr,
		ElapsedMS:   float64(time.Since(begin).Microseconds()) / 1000,
		Converged:   &converged,
		Degraded:    degraded,
		Width:       &width,
		Epsilon:     &eps,
	})
}

// noteAnytime maintains the anytime metrics for one served response.
func (s *Server) noteAnytime(converged bool, degraded string, width float64) {
	if converged {
		s.metrics.anytimeConverged.Add(1)
	}
	if degraded != "" {
		s.metrics.anytimeDegraded.Add(1)
	}
	s.metrics.anytimeWidth.observe(width)
}
