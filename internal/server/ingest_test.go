package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"lapushdb/internal/store"
)

func pf(p float64) *float64 { return &p }

func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts
}

// liveState reads the version, fingerprint, and tuple count an endpoint
// reports.
func liveState(t *testing.T, url string) (version uint64, fingerprint string, tuples int) {
	t.Helper()
	resp, body := getBody(t, url)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	var out struct {
		Version     uint64          `json:"version"`
		Fingerprint string          `json:"fingerprint"`
		Tuples      int             `json:"tuples"`
		Relations   json.RawMessage `json:"relations"` // count on /healthz, list on /v1/relations
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("GET %s: %v\n%s", url, err, body)
	}
	tuples = out.Tuples
	var rels []struct {
		Tuples int `json:"tuples"`
	}
	if json.Unmarshal(out.Relations, &rels) == nil {
		for _, r := range rels {
			tuples += r.Tuples
		}
	}
	return out.Version, out.Fingerprint, tuples
}

// TestIngestUpdatesLiveEndpoints is the regression test that /healthz
// and /v1/relations report the live store version, not the boot-time
// one: ingest, then re-read both endpoints.
func TestIngestUpdatesLiveEndpoints(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	bootV, bootFP, bootTuples := liveState(t, ts.URL+"/healthz")
	if bootV != 0 || bootTuples != 8 {
		t.Fatalf("boot healthz: version %d tuples %d, want 0 and 8", bootV, bootTuples)
	}
	_, relFP, relTuples := liveState(t, ts.URL+"/v1/relations")
	if relFP != bootFP || relTuples != bootTuples {
		t.Fatalf("relations and healthz disagree at boot: %q/%d vs %q/%d", relFP, relTuples, bootFP, bootTuples)
	}

	resp, body := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
		{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"carol", "heat"}, P: pf(0.7)},
		{Op: store.OpSetProb, Rel: "Fan", Tuple: []string{"deniro"}, P: pf(0.9)},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	var ir ingestResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatal(err)
	}
	if ir.Version != 1 || ir.Mutations != 2 || ir.Fingerprint == bootFP {
		t.Fatalf("ingest response %+v, want version 1 and a fresh fingerprint", ir)
	}

	gotV, gotFP, gotTuples := liveState(t, ts.URL+"/healthz")
	if gotV != 1 || gotFP != ir.Fingerprint || gotTuples != bootTuples+1 {
		t.Fatalf("healthz after ingest: version %d fp %q tuples %d, want 1 %q %d",
			gotV, gotFP, gotTuples, ir.Fingerprint, bootTuples+1)
	}
	gotV, gotFP, gotTuples = liveState(t, ts.URL+"/v1/relations")
	if gotV != 1 || gotFP != ir.Fingerprint || gotTuples != bootTuples+1 {
		t.Fatalf("relations after ingest: version %d fp %q tuples %d, want 1 %q %d",
			gotV, gotFP, gotTuples, ir.Fingerprint, bootTuples+1)
	}

	// The new tuple is queryable: carol now likes a movie starring a
	// fan-favorite actor.
	resp, body = postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after ingest: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "carol") {
		t.Fatalf("query after ingest does not see the new tuple: %s", body)
	}
}

func TestIngestInvalidatesPlanCache(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cacheOf := func() string {
		resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query: status %d: %s", resp.StatusCode, body)
		}
		var qr queryResponse
		if err := json.Unmarshal(body, &qr); err != nil {
			t.Fatal(err)
		}
		return qr.Cache
	}
	if got := cacheOf(); got != "miss" {
		t.Fatalf("first query cache = %q, want miss", got)
	}
	if got := cacheOf(); got != "hit" {
		t.Fatalf("second query cache = %q, want hit", got)
	}
	resp, body := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
		{Op: store.OpScaleProbs, Factor: 0.5},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	// The mutation bumped the version fingerprint, so the cached plan's
	// key no longer matches: the next query must re-prepare.
	if got := cacheOf(); got != "miss" {
		t.Fatalf("post-ingest query cache = %q, want miss", got)
	}
}

func TestIngestValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name string
		body any
		code string
	}{
		{"empty batch", ingestRequest{}, "empty_batch"},
		{"unknown op", ingestRequest{Mutations: []store.Mutation{{Op: "zap"}}}, "bad_mutation"},
		{"unknown relation", ingestRequest{Mutations: []store.Mutation{
			{Op: store.OpInsert, Rel: "Nope", Tuple: []string{"x"}, P: pf(0.5)}}}, "bad_mutation"},
		{"missing tuple", ingestRequest{Mutations: []store.Mutation{
			{Op: store.OpDelete, Rel: "Likes", Tuple: []string{"zz", "zz"}}}}, "bad_mutation"},
		{"unknown field", map[string]any{"mutationz": []any{}}, "bad_json"},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, ts.URL+"/v1/ingest", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400: %s", tc.name, resp.StatusCode, body)
			continue
		}
		if er := decodeErr(t, body); er.Code != tc.code {
			t.Errorf("%s: code %q, want %q", tc.name, er.Code, tc.code)
		}
	}
	// Nothing moved: an invalid batch never publishes a version.
	if v, _, _ := liveState(t, ts.URL+"/healthz"); v != 0 {
		t.Fatalf("version advanced to %d on invalid batches", v)
	}
}

func TestStoreEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := getBody(t, ts.URL+"/v1/store")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var st store.Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if st.Durable || st.Seq != 0 || st.WALBytes != 0 {
		t.Fatalf("ephemeral store stats = %+v", st)
	}
	postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
		{Op: store.OpScaleProbs, Factor: 0.9},
	}})
	resp, body = getBody(t, ts.URL+"/v1/store")
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || st.Seq != 1 || st.MutationsTotal != 1 {
		t.Fatalf("store stats after ingest = %+v", st)
	}
}

func TestStoreMetricsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
		{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"dave", "ronin"}, P: pf(0.2)},
		{Op: store.OpScaleProbs, Factor: 0.9},
	}})
	_, body := getBody(t, ts.URL+"/metrics")
	for _, want := range []string{
		"lapushd_store_version 1",
		"lapushd_store_mutations_total 2",
		"lapushd_store_wal_bytes 0",
		"lapushd_store_checkpoints_total 0",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestDurableServerRecovers boots a server over a durable store,
// ingests, restarts the store from disk, and checks the new server
// serves the ingested state.
func TestDurableServerRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(movieDB(t), store.Options{Dir: dir, Fsync: store.FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ts := newHTTPServer(t, NewWithStore(st, Config{}))
	resp, body := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
		{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"carol", "heat"}, P: pf(0.7)},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: status %d: %s", resp.StatusCode, body)
	}
	_, fp, tuples := liveState(t, ts.URL+"/healthz")
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(nil, store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	ts2 := newHTTPServer(t, NewWithStore(st2, Config{}))
	v2, fp2, tuples2 := liveState(t, ts2.URL+"/healthz")
	if v2 != 1 || fp2 != fp || tuples2 != tuples {
		t.Fatalf("recovered server: version %d fp %q tuples %d, want 1 %q %d", v2, fp2, tuples2, fp, tuples)
	}
	resp, body = postJSON(t, ts2.URL+"/v1/query", queryRequest{Query: testQuery})
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "carol") {
		t.Fatalf("recovered server query: status %d: %s", resp.StatusCode, body)
	}
}

// TestConcurrentIngestAndQuery hammers /v1/ingest and /v1/query
// concurrently; run under -race it checks the copy-on-write sharing
// discipline end to end through the HTTP stack.
func TestConcurrentIngestAndQuery(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	const writers, readers, rounds = 2, 4, 15

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/ingest", ingestRequest{Mutations: []store.Mutation{
					{Op: store.OpInsert, Rel: "Likes", Tuple: []string{fmt.Sprintf("w%d-%d", w, i), "heat"}, P: pf(0.5)},
					{Op: store.OpSetProb, Rel: "Stars", Tuple: []string{"heat", "deniro"}, P: pf(float64(i+1) / (rounds + 1))},
				}})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("writer %d: status %d: %s", w, resp.StatusCode, body)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				resp, body := postJSON(t, ts.URL+"/v1/query", queryRequest{Query: testQuery})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d: %s", r, resp.StatusCode, body)
					return
				}
			}
		}(r)
	}
	wg.Wait()

	v, _, _ := liveState(t, ts.URL+"/healthz")
	if v != writers*rounds {
		t.Fatalf("final version %d, want %d", v, writers*rounds)
	}
}
