package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/bench"
	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// readAllFrames drains one /v1/wal response body.
func readAllFrames(t *testing.T, r io.Reader) []replica.Frame {
	t.Helper()
	var frames []replica.Frame
	for {
		f, err := replica.ReadFrame(r)
		if err == io.EOF {
			return frames
		}
		if err != nil {
			t.Fatalf("ReadFrame: %v", err)
		}
		frames = append(frames, f)
	}
}

func TestWALEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	for i := 0; i < 3; i++ {
		if _, err := s.store.Apply([]store.Mutation{
			{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pFloat(0.1 + float64(i)/10)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	head := s.store.Current()

	// Happy path, no long poll: three records, the head, a clean end.
	resp, err := http.Get(ts.URL + "/v1/wal?from=0&wait_ms=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	frames := readAllFrames(t, bytes.NewReader(body))
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 3 records + head + end: %+v", len(frames), frames)
	}
	for i := 0; i < 3; i++ {
		if frames[i].Type != replica.FrameRecord || frames[i].Seq != uint64(i+1) {
			t.Fatalf("frame %d = %+v", i, frames[i])
		}
	}
	if frames[3].Type != replica.FrameHead || frames[3].Seq != head.Seq || frames[3].Fingerprint != head.Fingerprint {
		t.Fatalf("head frame = %+v, head = (%d, %s)", frames[3], head.Seq, head.Fingerprint)
	}
	if frames[4].Type != replica.FrameEnd {
		t.Fatalf("last frame = %+v, want end", frames[4])
	}

	// Long poll: a record published during the window is streamed
	// before the end frame.
	errCh := make(chan error, 1)
	framesCh := make(chan []replica.Frame, 1)
	go func() {
		resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/wal?from=%d&fp=%s&wait_ms=3000", head.Seq, head.Fingerprint))
		if err != nil {
			errCh <- err
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		framesCh <- readAllFrames(t, bytes.NewReader(b))
		errCh <- nil
	}()
	time.Sleep(100 * time.Millisecond)
	if _, err := s.store.Apply([]store.Mutation{
		{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"bob", "heat"}, P: pFloat(0.6)},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-errCh; err != nil {
		t.Fatal(err)
	}
	got := <-framesCh
	var sawRecord bool
	for _, f := range got {
		if f.Type == replica.FrameRecord && f.Seq == head.Seq+1 {
			sawRecord = true
		}
	}
	if !sawRecord {
		t.Fatalf("long poll never shipped the new record: %+v", got)
	}

	// Refusals arrive as statuses before any frame.
	for _, tc := range []struct {
		query string
		code  int
		api   string
	}{
		{fmt.Sprintf("from=%d", head.Seq+10), http.StatusConflict, "diverged"},
		{"from=2&fp=bogus@2", http.StatusConflict, "diverged"},
		{"from=abc", http.StatusBadRequest, "bad_param"},
		{"from=0&wait_ms=-1", http.StatusBadRequest, "bad_param"},
	} {
		resp, body := getBody(t, ts.URL+"/v1/wal?"+tc.query)
		if resp.StatusCode != tc.code {
			t.Fatalf("%s: status %d, want %d (%s)", tc.query, resp.StatusCode, tc.code, body)
		}
		if er := decodeErr(t, body); er.Code != tc.api {
			t.Fatalf("%s: code %q, want %q", tc.query, er.Code, tc.api)
		}
	}
}

func TestWALEndpointTruncated(t *testing.T) {
	st, err := store.Open(movieDB(t), store.Options{LogRetention: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(NewWithStore(st, Config{}))
	defer ts.Close()
	for i := 0; i < 5; i++ {
		if _, err := st.Apply([]store.Mutation{
			{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pFloat(0.2 + float64(i)/10)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	resp, body := getBody(t, ts.URL+"/v1/wal?from=0")
	if resp.StatusCode != http.StatusGone {
		t.Fatalf("status %d, want 410 (%s)", resp.StatusCode, body)
	}
	if er := decodeErr(t, body); er.Code != "log_truncated" {
		t.Fatalf("code %q, want log_truncated", er.Code)
	}
}

func TestCheckpointEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if _, err := s.store.Apply([]store.Mutation{
		{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pFloat(0.42)},
	}); err != nil {
		t.Fatal(err)
	}
	want := s.store.Current()

	resp, err := http.Get(ts.URL + "/v1/checkpoint")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Lapushd-Seq"), 10, 64)
	if err != nil || seq != want.Seq {
		t.Fatalf("X-Lapushd-Seq = %q (%v), want %d", resp.Header.Get("X-Lapushd-Seq"), err, want.Seq)
	}
	if fp := resp.Header.Get("X-Lapushd-Fingerprint"); fp != want.Fingerprint {
		t.Fatalf("X-Lapushd-Fingerprint = %q, want %q", fp, want.Fingerprint)
	}
	db, err := lapushdb.Load(resp.Body)
	if err != nil {
		t.Fatalf("Load shipped snapshot: %v", err)
	}
	if got := store.Fingerprint(db, seq); got != want.Fingerprint {
		t.Fatalf("shipped snapshot loads as %q, want %q", got, want.Fingerprint)
	}
}

func TestReplicaRefusesIngest(t *testing.T) {
	st, err := store.Open(movieDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	ts := httptest.NewServer(NewWithStore(st, Config{ReplicaOf: "http://primary.example:8080"}))
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{{"op": "set_prob", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.5}},
	})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 (%s)", resp.StatusCode, body)
	}
	er := decodeErr(t, body)
	if er.Code != "read_only_replica" {
		t.Fatalf("code %q, want read_only_replica", er.Code)
	}
	if !bytes.Contains([]byte(er.Message), []byte("http://primary.example:8080")) {
		t.Fatalf("message %q does not name the primary", er.Message)
	}
	if got := resp.Header.Get("X-Lapushd-Primary"); got != "http://primary.example:8080" {
		t.Fatalf("X-Lapushd-Primary = %q", got)
	}
	// Reads still serve.
	if resp, _ := postJSON(t, ts.URL+"/v1/query", map[string]any{"query": testQuery}); resp.StatusCode != http.StatusOK {
		t.Fatalf("replica refused a read: %d", resp.StatusCode)
	}
}

// waitPairConverged polls both /healthz endpoints until the replica
// publishes the primary's exact (version, fingerprint).
func waitPairConverged(t *testing.T, pair *HermeticPair) {
	t.Helper()
	type health struct {
		Version     uint64 `json:"version"`
		Fingerprint string `json:"fingerprint"`
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		var ph, rh health
		_, pb := getBody(t, pair.Primary.URL+"/healthz")
		if err := json.Unmarshal(pb, &ph); err != nil {
			t.Fatal(err)
		}
		_, rb := getBody(t, pair.Replica.URL+"/healthz")
		if err := json.Unmarshal(rb, &rh); err != nil {
			t.Fatal(err)
		}
		if ph.Version == rh.Version && ph.Fingerprint == rh.Fingerprint {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica stuck at (%d, %s), primary at (%d, %s)", rh.Version, rh.Fingerprint, ph.Version, ph.Fingerprint)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestReplicaHealthzAndMetrics(t *testing.T) {
	pair, err := NewHermeticPair(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	resp, _ := postJSON(t, pair.Primary.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "create_relation", "rel": "Likes", "cols": []string{"user", "movie"}},
			{"op": "insert", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.9},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary ingest: %d", resp.StatusCode)
	}
	waitPairConverged(t, pair)

	_, pb := getBody(t, pair.Primary.URL+"/healthz")
	var ph map[string]any
	if err := json.Unmarshal(pb, &ph); err != nil {
		t.Fatal(err)
	}
	if ph["role"] != "primary" {
		t.Fatalf("primary healthz role = %v", ph["role"])
	}
	_, rb := getBody(t, pair.Replica.URL+"/healthz")
	var rh map[string]any
	if err := json.Unmarshal(rb, &rh); err != nil {
		t.Fatal(err)
	}
	if rh["role"] != "replica" || rh["primary"] != pair.Primary.URL {
		t.Fatalf("replica healthz = %v", rh)
	}
	if rh["applied_seq"] != float64(1) {
		t.Fatalf("replica healthz applied_seq = %v, want 1", rh["applied_seq"])
	}
	if _, ok := rh["lag_seconds"]; !ok {
		t.Fatalf("replica healthz has no lag_seconds: %v", rh)
	}

	_, mb := getBody(t, pair.Replica.URL+"/metrics")
	for _, metric := range []string{
		"lapushd_replica_lag_seconds",
		"lapushd_replica_applied_seq 1",
		"lapushd_replica_reconnects_total",
		"lapushd_replica_connected 1",
	} {
		if !bytes.Contains(mb, []byte(metric)) {
			t.Fatalf("replica /metrics is missing %q", metric)
		}
	}
	if _, pm := getBody(t, pair.Primary.URL+"/metrics"); bytes.Contains(pm, []byte("lapushd_replica_")) {
		t.Fatal("primary /metrics exposes replica gauges")
	}
}

// benchSetup seeds the bench dataset (chain, star, TPC-H shapes)
// through the primary's HTTP ingest, as the bench harness would.
func benchSetup(t *testing.T, baseURL string) bench.Config {
	t.Helper()
	c := bench.Config{Seed: 7}.WithDefaults()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := bench.Setup(ctx, bench.RunConfig{BaseURL: baseURL}, bench.SetupRequests(c)); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestReplicaDifferential is the parity acceptance test: after an
// ingest burst and lag 0, the replica's /v1/query responses must be
// byte-identical to the primary's — same answers, same scores, same
// order — for the chain, star, and TPC-H shapes at Workers 1 and 4.
func TestReplicaDifferential(t *testing.T) {
	pair, err := NewHermeticPair(Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	benchSetup(t, pair.Primary.URL)
	waitPairConverged(t, pair)

	queries := []string{
		"q(x0, x3) :- BenchR1(x0, x1), BenchR2(x1, x2), BenchR3(x2, x3)",
		"q(x0, x2) :- BenchR1(x0, x1), BenchR2(x1, x2)",
		"q() :- BenchS1('hub', x1), BenchS2(x2), BenchS0(x1, x2)",
		"q(a) :- BenchSupplier(s, a), BenchPartsupp(s, u), BenchPart(u, n), s <= 50, n like '%red%'",
	}
	for _, workers := range []int{1, 4} {
		for _, q := range queries {
			req := map[string]any{"query": q, "method": "diss", "parallelism": workers}
			presp, pbody := postJSON(t, pair.Primary.URL+"/v1/query", req)
			rresp, rbody := postJSON(t, pair.Replica.URL+"/v1/query", req)
			if presp.StatusCode != http.StatusOK || rresp.StatusCode != http.StatusOK {
				t.Fatalf("workers=%d %q: primary %d, replica %d\n%s\n%s", workers, q, presp.StatusCode, rresp.StatusCode, pbody, rbody)
			}
			var pr, rr map[string]json.RawMessage
			if err := json.Unmarshal(pbody, &pr); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rbody, &rr); err != nil {
				t.Fatal(err)
			}
			// Everything but the runtime-dependent fields must match
			// byte for byte; answers carry the scores, so this pins
			// bit-identical evaluation.
			for _, field := range []string{"answers", "count", "method", "safe"} {
				if !bytes.Equal(pr[field], rr[field]) {
					t.Fatalf("workers=%d %q: field %s differs\nprimary: %s\nreplica: %s", workers, q, field, pr[field], rr[field])
				}
			}
		}
	}
}

// TestReplicaCacheInvalidation is the regression test for satellite 6:
// a replica must never serve a result-cache hit from a pre-ingest
// version after catching up — its caches key off the applied
// fingerprint exactly as the primary's key off the published one.
func TestReplicaCacheInvalidation(t *testing.T) {
	pair, err := NewHermeticPair(Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer pair.Close()
	resp, _ := postJSON(t, pair.Primary.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "create_relation", "rel": "Likes", "cols": []string{"user", "movie"}},
			{"op": "insert", "rel": "Likes", "tuple": []string{"ann", "heat"}, "p": 0.5},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ingest: %d", resp.StatusCode)
	}
	waitPairConverged(t, pair)

	query := map[string]any{"query": "q(user) :- Likes(user, movie)", "method": "diss"}
	type qresp struct {
		Answers     json.RawMessage `json:"answers"`
		Count       int             `json:"count"`
		Cache       string          `json:"cache"`
		ResultCache string          `json:"result_cache"`
	}
	ask := func() qresp {
		t.Helper()
		resp, body := postJSON(t, pair.Replica.URL+"/v1/query", query)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("replica query: %d (%s)", resp.StatusCode, body)
		}
		var out qresp
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}

	first := ask()
	if first.ResultCache != "miss" || first.Count != 1 {
		t.Fatalf("first read = %+v", first)
	}
	if again := ask(); again.ResultCache != "hit" || again.Cache != "hit" {
		t.Fatalf("repeat read at an unchanged version should hit both caches: %+v", again)
	}

	// The primary moves: a new answer lands. After the replica catches
	// up, the old cache entries are unreachable (stale fingerprint).
	resp, _ = postJSON(t, pair.Primary.URL+"/v1/ingest", map[string]any{
		"mutations": []map[string]any{
			{"op": "insert", "rel": "Likes", "tuple": []string{"bob", "ronin"}, "p": 0.7},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("second ingest: %d", resp.StatusCode)
	}
	waitPairConverged(t, pair)

	after := ask()
	if after.ResultCache != "miss" {
		t.Fatalf("replica served a stale cache hit after catching up: %+v", after)
	}
	if after.Count != 2 {
		t.Fatalf("replica answers do not reflect the ingest: %+v", after)
	}
	if bytes.Equal(first.Answers, after.Answers) {
		t.Fatal("post-ingest answers are byte-identical to pre-ingest answers")
	}
}

func pFloat(p float64) *float64 { return &p }
