package replica_test

// End-to-end tailer tests: real HTTP primaries (the full internal/server
// handler stack over httptest), real replica stores, no mocks. These
// live in an external test package because internal/server imports
// internal/replica for the role plumbing.

import (
	"bytes"
	"context"
	"net"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/replica"
	"lapushdb/internal/server"
	"lapushdb/internal/store"
)

func pf(p float64) *float64 { return &p }

func seedDB(t testing.TB) *lapushdb.DB {
	t.Helper()
	db := lapushdb.Open()
	likes, err := db.CreateRelation("Likes", "user", "movie")
	if err != nil {
		t.Fatal(err)
	}
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range []struct {
		rel  *lapushdb.Relation
		p    float64
		a, b string
	}{
		{likes, 0.9, "ann", "heat"},
		{likes, 0.5, "bob", "heat"},
		{stars, 0.8, "heat", "deniro"},
		{stars, 0.3, "heat", "pacino"},
	} {
		if err := ins.rel.Insert(ins.p, ins.a, ins.b); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func dbBytes(t testing.TB, db *lapushdb.DB) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// mutateN applies n single-mutation batches, alternating inserts and
// deletes so the data actually changes shape.
func mutateN(t testing.TB, st *store.Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		user := "u" + string(rune('a'+i%26))
		var muts []store.Mutation
		if i%3 == 2 {
			muts = []store.Mutation{{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.2 + float64(i%7)/10)}}
		} else {
			muts = []store.Mutation{{Op: store.OpInsert, Rel: "Likes", Tuple: []string{user, "ronin" + string(rune('0'+i%10))}, P: pf(0.4)}}
		}
		if _, err := st.Apply(muts); err != nil {
			t.Fatalf("mutate %d: %v", i, err)
		}
	}
}

// newPrimary serves st over the full lapushd handler stack.
func newPrimary(t testing.TB, st *store.Store) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(server.NewWithStore(st, server.Config{WALStreamWindow: 2 * time.Second}))
	t.Cleanup(ts.Close)
	return ts
}

// startTailer starts a fast-cycling, quiet tailer for tests.
func startTailer(t testing.TB, primary string, st *store.Store) *replica.Replica {
	t.Helper()
	rep, err := replica.Start(replica.Options{
		Primary:          primary,
		Store:            st,
		ReconnectBackoff: 20 * time.Millisecond,
		MaxBackoff:       200 * time.Millisecond,
		StreamWindow:     time.Second,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	return rep
}

// waitConverged blocks until rst reaches pst's current head and
// verifies fingerprint parity plus bit-identity of the Save bytes.
func waitConverged(t testing.TB, pst, rst *store.Store) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	pv := pst.Current()
	if err := rst.WaitForSeq(ctx, pv.Seq); err != nil {
		rv := rst.Current()
		t.Fatalf("replica stuck at (%d, %s) waiting for seq %d: %v", rv.Seq, rv.Fingerprint, pv.Seq, err)
	}
	rv := rst.Current()
	if rv.Seq != pv.Seq || rv.Fingerprint != pv.Fingerprint {
		t.Fatalf("replica at (%d, %s), primary at (%d, %s)", rv.Seq, rv.Fingerprint, pv.Seq, pv.Fingerprint)
	}
	if !bytes.Equal(dbBytes(t, pv.DB), dbBytes(t, rv.DB)) {
		t.Fatal("replica state is not bit-identical to the primary's")
	}
}

func TestStartValidation(t *testing.T) {
	st, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := replica.Start(replica.Options{Store: st}); err == nil {
		t.Fatal("Start without a primary address succeeded")
	}
	if _, err := replica.Start(replica.Options{Primary: "http://x"}); err == nil {
		t.Fatal("Start without a store succeeded")
	}
	if _, err := replica.Start(replica.Options{Primary: "http://bad\x7f", Store: st}); err == nil {
		t.Fatal("Start with an unparseable primary URL succeeded")
	}
}

// TestDefaultOptionsConverge runs the tailer with every tunable left
// zero: production defaults must bootstrap and converge unaided.
func TestDefaultOptionsConverge(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	mutateN(t, pst, 2)
	primary := newPrimary(t, pst)
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep, err := replica.Start(replica.Options{Primary: primary.URL, Store: rst})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rep.Close() })
	waitConverged(t, pst, rst)
}

func TestBootstrapThenTail(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	mutateN(t, pst, 3)
	primary := newPrimary(t, pst)

	// A fresh empty replica cannot share the seeded primary's history:
	// it must bootstrap from the checkpoint, then tail.
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep := startTailer(t, primary.URL, rst)
	waitConverged(t, pst, rst)
	st := rep.Status()
	if st.Bootstraps < 1 {
		t.Fatalf("expected a snapshot bootstrap, status %+v", st)
	}

	// Later batches arrive by streaming, not re-bootstrapping.
	mutateN(t, pst, 4)
	waitConverged(t, pst, rst)
	if got := rep.Status(); got.Bootstraps != st.Bootstraps {
		t.Fatalf("streaming phase bootstrapped again: %+v", got)
	}
}

func TestEmptyPrimaryNeedsNoBootstrap(t *testing.T) {
	pst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	primary := newPrimary(t, pst)
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep := startTailer(t, primary.URL, rst)

	// Both sides start at (0, empty): the stream opens clean, and the
	// whole seeded history replays through ApplyReplicated.
	if _, err := pst.Apply([]store.Mutation{
		{Op: store.OpCreateRelation, Rel: "Likes", Cols: []string{"user", "movie"}},
		{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.9)},
	}); err != nil {
		t.Fatal(err)
	}
	mutateN(t, pst, 3)
	waitConverged(t, pst, rst)
	if st := rep.Status(); st.Bootstraps != 0 {
		t.Fatalf("matching-history replica bootstrapped: %+v", st)
	}
}

func TestRestartResumesFromLocalState(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	mutateN(t, pst, 3)
	primary := newPrimary(t, pst)

	dir := t.TempDir()
	rst, err := store.Open(lapushdb.Open(), store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rep := startTailer(t, primary.URL, rst)
	waitConverged(t, pst, rst)
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if err := rst.Close(); err != nil {
		t.Fatal(err)
	}

	// The primary moves on while the replica is down (still within the
	// retained log tail).
	mutateN(t, pst, 5)

	// Restart: the replica recovers its position from its own
	// checkpoint + WAL and resumes by streaming — no snapshot transfer.
	rst2, err := store.Open(nil, store.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer rst2.Close()
	if rst2.Current().Seq == 0 {
		t.Fatal("restarted replica lost its local state")
	}
	rep2 := startTailer(t, primary.URL, rst2)
	waitConverged(t, pst, rst2)
	if st := rep2.Status(); st.Bootstraps != 0 {
		t.Fatalf("restart re-bootstrapped instead of resuming from local state: %+v", st)
	}
}

func TestDivergedReplicaRebootstraps(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	mutateN(t, pst, 2)
	primary := newPrimary(t, pst)

	// A replica that wrote its own history (same seq, different data)
	// is refused by the fingerprint check and must re-bootstrap.
	rst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	if _, err := rst.Apply([]store.Mutation{
		{Op: store.OpInsert, Rel: "Stars", Tuple: []string{"ronin", "deniro"}, P: pf(0.6)},
	}); err != nil {
		t.Fatal(err)
	}
	rep := startTailer(t, primary.URL, rst)
	waitConverged(t, pst, rst)
	if st := rep.Status(); st.Bootstraps < 1 {
		t.Fatalf("diverged replica converged without a bootstrap: %+v", st)
	}
}

func TestReconnectsWhilePrimaryDown(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	mutateN(t, pst, 2)

	// Reserve an address, then start the tailer against it while
	// nothing listens: every attempt is a refused connection.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep := startTailer(t, "http://"+addr, rst)

	deadline := time.Now().Add(10 * time.Second)
	for rep.Status().Reconnects < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("no reconnect attempts recorded: %+v", rep.Status())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if st := rep.Status(); st.Connected || st.LastError == "" {
		t.Fatalf("down primary reported as healthy: %+v", st)
	}

	// Bring the primary up on the reserved address; the tailer's next
	// backoff cycle finds it and converges.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Skipf("reserved address %s was taken: %v", addr, err)
	}
	hs := &http.Server{Handler: server.NewWithStore(pst, server.Config{WALStreamWindow: 2 * time.Second})}
	go hs.Serve(ln2)
	defer hs.Close()
	waitConverged(t, pst, rst)
}

func TestLagAndCaughtUpReporting(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	primary := newPrimary(t, pst)
	rst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep := startTailer(t, primary.URL, rst)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := rep.WaitCaughtUp(ctx); err != nil {
		t.Fatalf("WaitCaughtUp: %v", err)
	}
	st := rep.Status()
	if !st.Connected || !st.CaughtUp || st.LagSeconds != 0 {
		t.Fatalf("caught-up status = %+v", st)
	}
	mutateN(t, pst, 1)
	waitConverged(t, pst, rst)
	if st := rep.Status(); st.AppliedSeq != 1 || st.HeadSeq != 1 {
		t.Fatalf("post-ingest status = %+v", st)
	}
}
