// Package replica implements WAL-shipped read replication for lapushd.
//
// A replica is a read-only lapushd that follows a primary's mutation
// log over HTTP: it bootstraps from a fingerprinted snapshot
// (GET /v1/checkpoint), then tails the primary's retained log
// (GET /v1/wal?from=<seq>&fp=<fingerprint>) and applies each shipped
// record through its local store's single serialized applier — the
// exact code path a direct ingest takes — republishing the primary's
// versions under the primary's sequence numbers and fingerprints.
// Because mutation application is deterministic (the WAL-replay
// contract pinned since the store landed), a replica that reaches
// (seq, fingerprint) holds a bit-identical database and therefore
// computes bit-identical query answers.
//
// Parity is verified, not assumed, at every step: the snapshot's
// fingerprint is checked after loading it, every shipped record carries
// the fingerprint of the version it must produce and the local apply
// refuses to publish on mismatch, and the tail request itself presents
// the replica's current fingerprint so the primary can refuse a
// diverged follower. Any divergence collapses to the same recovery:
// re-bootstrap from a fresh snapshot.
//
// This file is the wire protocol shared by the primary-side endpoint
// (internal/server) and the replica-side tailer (replica.go): a stream
// of length-prefixed, CRC-checked frames reusing the WAL's record
// encoding — uint32 LE payload length, uint32 LE CRC32C(payload), JSON
// payload.
package replica

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"

	"lapushdb/internal/store"
)

// Frame types.
const (
	// FrameHead reports the primary's published head (Seq, Fingerprint).
	// Sent once at stream start and again every time the stream drains
	// to the head, so the replica always knows its lag.
	FrameHead = "head"
	// FrameRecord ships one log record (Seq, Fingerprint, Muts).
	FrameRecord = "record"
	// FrameEnd closes a stream cleanly after the long-poll window; the
	// replica reconnects immediately without backoff. A stream that ends
	// without it was cut mid-flight.
	FrameEnd = "end"
)

// Frame is one protocol message of a /v1/wal stream. Epoch is the
// promotion epoch: on a head frame the primary's current epoch, on a
// record frame the epoch the record was committed under. It is omitted
// when zero, keeping epoch-0 streams byte-identical to the pre-epoch
// wire format (and pre-epoch primaries readable as epoch 0).
type Frame struct {
	Type        string           `json:"type"`
	Seq         uint64           `json:"seq,omitempty"`
	Epoch       uint64           `json:"epoch,omitempty"`
	Fingerprint string           `json:"fingerprint,omitempty"`
	Muts        []store.Mutation `json:"muts,omitempty"`
}

// maxFrameBytes bounds one frame's payload, mirroring the WAL record
// bound: a corrupted length prefix must never drive a huge allocation.
const maxFrameBytes = 64 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameCorrupt reports a frame that failed its CRC or size check —
// the stream is unusable from that point and must be re-established.
var ErrFrameCorrupt = errors.New("replica: corrupt frame")

// WriteFrame writes one frame in the wire encoding.
func WriteFrame(w io.Writer, f Frame) error {
	payload, err := json.Marshal(f)
	if err != nil {
		return fmt.Errorf("replica: encode frame: %w", err)
	}
	if len(payload) > maxFrameBytes {
		return fmt.Errorf("replica: frame of %d bytes exceeds the %d byte limit", len(payload), maxFrameBytes)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads one frame, verifying its length bound and CRC. io.EOF
// is returned verbatim on a clean end-of-stream boundary; a partial
// header or payload reports io.ErrUnexpectedEOF; a CRC or decode
// failure wraps ErrFrameCorrupt.
func ReadFrame(r io.Reader) (Frame, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, io.ErrUnexpectedEOF
	}
	length := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxFrameBytes {
		return Frame{}, fmt.Errorf("%w: implausible payload length %d", ErrFrameCorrupt, length)
	}
	payload := make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return Frame{}, io.ErrUnexpectedEOF
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return Frame{}, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	var f Frame
	if err := json.Unmarshal(payload, &f); err != nil {
		return Frame{}, fmt.Errorf("%w: %v", ErrFrameCorrupt, err)
	}
	return f, nil
}

// HeadFrame builds a head frame.
func HeadFrame(seq uint64, fingerprint string, epoch uint64) Frame {
	return Frame{Type: FrameHead, Seq: seq, Epoch: epoch, Fingerprint: fingerprint}
}

// RecordFrame wraps one log record.
func RecordFrame(rec store.LogRecord) Frame {
	return Frame{Type: FrameRecord, Seq: rec.Seq, Epoch: rec.Epoch, Fingerprint: rec.Fingerprint, Muts: rec.Muts}
}
