package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
)

// errNeedSnapshot classifies stream outcomes that cannot be fixed by
// reconnecting at the same position: the primary truncated the log past
// our position (410), refused our fingerprint (409), or a shipped
// record failed local parity. The run loop answers every one of them
// the same way — bootstrap from a fresh snapshot.
var errNeedSnapshot = errors.New("replica: snapshot bootstrap required")

// Options configures a replica tailer.
type Options struct {
	// Primary is the primary's base URL, e.g. "http://127.0.0.1:8080".
	Primary string
	// Store is the replica's local store. The tailer applies shipped
	// records and snapshots into it; the caller retains ownership and
	// closes it after Close returns.
	Store *store.Store
	// Client is the HTTP client for tailing (default: a dedicated
	// client with no global timeout — streams are bounded per request).
	Client *http.Client
	// ReconnectBackoff is the delay before the first reconnect after a
	// stream error, doubling per consecutive failure (default 200ms).
	ReconnectBackoff time.Duration
	// MaxBackoff caps the reconnect delay (default 15s).
	MaxBackoff time.Duration
	// StreamWindow is the long-poll window requested from the primary:
	// an idle stream is cleanly ended (and immediately re-established)
	// after this long (default 20s).
	StreamWindow time.Duration
	// SnapshotTimeout bounds one checkpoint bootstrap (default 5m).
	SnapshotTimeout time.Duration
	// Logf receives operational log lines (default: standard logger).
	Logf func(format string, args ...any)
}

// Status is a point-in-time snapshot of the tailer's state, the source
// for /healthz fields and the lapushd_replica_* metrics.
type Status struct {
	// Primary is the primary's base URL.
	Primary string `json:"primary"`
	// Connected reports a currently established tail stream.
	Connected bool `json:"connected"`
	// AppliedSeq and Fingerprint identify the locally published head.
	AppliedSeq  uint64 `json:"applied_seq"`
	Fingerprint string `json:"fingerprint"`
	// HeadSeq is the highest primary head observed on the stream; zero
	// until the first head frame arrives.
	HeadSeq uint64 `json:"head_seq"`
	// PrimaryEpoch is the promotion epoch the primary last reported
	// (head frames, shipped records, or a checkpoint bootstrap); zero
	// until first contact or when the primary predates epochs.
	PrimaryEpoch uint64 `json:"primary_epoch"`
	// Epoch is the promotion epoch of the locally published head.
	Epoch uint64 `json:"epoch"`
	// CaughtUp reports a live stream drained to the primary's head.
	CaughtUp bool `json:"caught_up"`
	// LastContactSeconds is how long ago the tailer last completed a
	// successful exchange with the primary (a frame received or a
	// snapshot installed), measured on the replica's clock; it grows
	// from tailer start until first contact. A caught-up-looking replica
	// whose last contact keeps growing is a silently stalled tailer.
	LastContactSeconds float64 `json:"last_contact_seconds"`
	// LagSeconds is 0 while caught up, otherwise seconds since the
	// replica last was (measured on the replica's clock; during a
	// disconnect it keeps growing even if the primary is idle).
	LagSeconds float64 `json:"lag_seconds"`
	// Reconnects counts streams that ended uncleanly (error, cut, or
	// refusal), i.e. reconnects that paid a backoff.
	Reconnects int64 `json:"reconnects_total"`
	// Bootstraps counts full snapshot installs, including the initial
	// one when the local state was behind the primary's retained log.
	Bootstraps int64 `json:"bootstraps_total"`
	// LastError is the most recent stream or bootstrap error, cleared
	// on the next clean cycle.
	LastError string `json:"last_error,omitempty"`
}

// Replica tails a primary, keeping Options.Store converged to the
// primary's published (seq, fingerprint) head.
type Replica struct {
	opts   Options
	client *http.Client
	cancel context.CancelFunc
	done   chan struct{}

	reconnects atomic.Int64
	bootstraps atomic.Int64

	mu           sync.Mutex
	connected    bool
	caughtUp     bool
	headSeq      uint64
	primaryEpoch uint64
	caughtUpAt   time.Time // last instant caughtUp held; start time before that
	lastContact  time.Time // last successful exchange; start time before that
	lastErr      string
}

// Start validates opts, spawns the tail loop, and returns immediately;
// convergence is observable via Status or the store's WaitForSeq.
func Start(opts Options) (*Replica, error) {
	if opts.Primary == "" {
		return nil, errors.New("replica: primary address required")
	}
	if opts.Store == nil {
		return nil, errors.New("replica: store required")
	}
	if _, err := url.Parse(opts.Primary); err != nil {
		return nil, fmt.Errorf("replica: bad primary address %q: %w", opts.Primary, err)
	}
	if opts.ReconnectBackoff <= 0 {
		opts.ReconnectBackoff = 200 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 15 * time.Second
	}
	if opts.StreamWindow <= 0 {
		opts.StreamWindow = 20 * time.Second
	}
	if opts.SnapshotTimeout <= 0 {
		opts.SnapshotTimeout = 5 * time.Minute
	}
	if opts.Logf == nil {
		opts.Logf = log.Printf
	}
	client := opts.Client
	if client == nil {
		client = &http.Client{}
	}
	ctx, cancel := context.WithCancel(context.Background())
	now := time.Now()
	r := &Replica{
		opts:        opts,
		client:      client,
		cancel:      cancel,
		done:        make(chan struct{}),
		caughtUpAt:  now,
		lastContact: now,
	}
	go r.run(ctx)
	return r, nil
}

// Close stops the tail loop and waits for it to exit. It does not
// close the store.
func (r *Replica) Close() error {
	r.cancel()
	<-r.done
	return nil
}

// Status reports the tailer's current state.
func (r *Replica) Status() Status {
	v := r.opts.Store.Current()
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Status{
		Primary:            r.opts.Primary,
		Connected:          r.connected,
		AppliedSeq:         v.Seq,
		Fingerprint:        v.Fingerprint,
		Epoch:              v.Epoch,
		HeadSeq:            r.headSeq,
		PrimaryEpoch:       r.primaryEpoch,
		CaughtUp:           r.caughtUp,
		Reconnects:         r.reconnects.Load(),
		Bootstraps:         r.bootstraps.Load(),
		LastContactSeconds: time.Since(r.lastContact).Seconds(),
		LastError:          r.lastErr,
	}
	if !r.caughtUp {
		st.LagSeconds = time.Since(r.caughtUpAt).Seconds()
	}
	return st
}

// WaitCaughtUp blocks until a live stream has drained to the primary's
// head (lag 0) or ctx is done.
func (r *Replica) WaitCaughtUp(ctx context.Context) error {
	tick := time.NewTicker(5 * time.Millisecond)
	defer tick.Stop()
	for {
		st := r.Status()
		if st.Connected && st.CaughtUp {
			return nil
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-tick.C:
		}
	}
}

// run is the tail loop: stream until the window ends (clean — loop
// immediately), bootstrap on divergence/truncation, back off
// exponentially on everything else.
func (r *Replica) run(ctx context.Context) {
	defer close(r.done)
	defer r.setConnected(false)
	backoff := r.opts.ReconnectBackoff
	for ctx.Err() == nil {
		err := r.streamOnce(ctx)
		r.setConnected(false)
		if ctx.Err() != nil {
			return
		}
		if err == nil {
			backoff = r.opts.ReconnectBackoff
			r.setError(nil)
			continue
		}
		if errors.Is(err, errNeedSnapshot) {
			r.opts.Logf("replica: cannot tail from local position: %v; bootstrapping from snapshot", err)
			if berr := r.bootstrap(ctx); berr == nil {
				backoff = r.opts.ReconnectBackoff
				r.setError(nil)
				continue
			} else {
				err = fmt.Errorf("snapshot bootstrap: %w", berr)
			}
		}
		r.setError(err)
		r.reconnects.Add(1)
		r.opts.Logf("replica: stream to %s failed: %v (reconnect in %v)", r.opts.Primary, err, backoff)
		select {
		case <-ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > r.opts.MaxBackoff {
			backoff = r.opts.MaxBackoff
		}
	}
}

// streamOnce establishes one tail stream at the local head and applies
// frames until the primary ends the window (nil), the stream errors, or
// a refusal/parity failure demands a snapshot (errNeedSnapshot).
func (r *Replica) streamOnce(ctx context.Context) error {
	cur := r.opts.Store.Current()
	q := url.Values{}
	q.Set("from", strconv.FormatUint(cur.Seq, 10))
	q.Set("fp", cur.Fingerprint)
	q.Set("wait_ms", strconv.FormatInt(r.opts.StreamWindow.Milliseconds(), 10))
	// Present our epoch so a stale primary (lower epoch than ours) can
	// observe the newer lineage and self-fence instead of serving us.
	q.Set("epoch", strconv.FormatUint(cur.Epoch, 10))
	// The deadline covers the long-poll window plus transfer slack. A
	// catch-up larger than the slack allows is cut and resumed at the
	// new position on reconnect — progress is never lost, only paced.
	sctx, cancel := context.WithTimeout(ctx, 2*r.opts.StreamWindow+30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, r.opts.Primary+"/v1/wal?"+q.Encode(), nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		return fmt.Errorf("%w: primary's log no longer reaches back to seq %d", errNeedSnapshot, cur.Seq)
	case http.StatusConflict:
		// A primary whose epoch is behind ours refuses with its epoch in
		// the X-Lapushd-Epoch header: that is a stale primary, not a
		// diverged replica, and bootstrapping from it would erase our
		// newer lineage. Back off and wait for it to be re-seeded (or for
		// a re-point to the real primary).
		if pe, err := strconv.ParseUint(resp.Header.Get("X-Lapushd-Epoch"), 10, 64); err == nil && pe < cur.Epoch {
			return fmt.Errorf("replica: primary %s is on stale epoch %d (local %d); refusing to follow it", r.opts.Primary, pe, cur.Epoch)
		}
		return fmt.Errorf("%w: primary refuses position (%d, %s) as diverged", errNeedSnapshot, cur.Seq, cur.Fingerprint)
	default:
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("replica: primary answered %d: %s", resp.StatusCode, body)
	}
	r.setConnected(true)
	for {
		f, err := ReadFrame(resp.Body)
		if err != nil {
			if err == io.EOF {
				// EOF without an end frame: the stream was cut mid-flight.
				return errors.New("replica: stream cut before the end frame")
			}
			return err
		}
		switch f.Type {
		case FrameHead:
			if err := r.noteHead(f.Seq, f.Fingerprint, f.Epoch); err != nil {
				return err
			}
		case FrameRecord:
			r.noteContact(f.Epoch)
			applied := r.opts.Store.Current().Seq
			if f.Seq <= applied {
				continue // duplicate delivery after a resume; already applied
			}
			if f.Seq != applied+1 {
				return fmt.Errorf("replica: stream gap: local head %d, next record %d", applied, f.Seq)
			}
			v, err := r.opts.Store.ApplyReplicated(store.LogRecord{Seq: f.Seq, Epoch: f.Epoch, Fingerprint: f.Fingerprint, Muts: f.Muts})
			if err != nil {
				if errors.Is(err, store.ErrFenced) {
					// The shipped record belongs to an older lineage than
					// ours; bootstrapping from its source would be worse.
					return fmt.Errorf("replica: primary %s ships stale-epoch records: %v", r.opts.Primary, err)
				}
				if errors.Is(err, store.ErrDiverged) {
					return fmt.Errorf("%w: %v", errNeedSnapshot, err)
				}
				// Local durability trouble (ErrReadOnly, ErrDurability):
				// transient — back off and retry from the same position.
				return err
			}
			r.noteApplied(v.Seq)
		case FrameEnd:
			return nil
		default:
			return fmt.Errorf("%w: unknown frame type %q", ErrFrameCorrupt, f.Type)
		}
	}
}

// bootstrap fetches the primary's current checkpoint, verifies its
// fingerprint against the loaded database, and installs it.
func (r *Replica) bootstrap(ctx context.Context) error {
	r.bootstraps.Add(1)
	sctx, cancel := context.WithTimeout(ctx, r.opts.SnapshotTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, r.opts.Primary+"/v1/checkpoint", nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
		return fmt.Errorf("primary answered %d: %s", resp.StatusCode, body)
	}
	seq, err := strconv.ParseUint(resp.Header.Get("X-Lapushd-Seq"), 10, 64)
	if err != nil {
		return fmt.Errorf("bad X-Lapushd-Seq header: %w", err)
	}
	// Absent header means a pre-epoch primary: epoch 0.
	epoch, _ := strconv.ParseUint(resp.Header.Get("X-Lapushd-Epoch"), 10, 64)
	if local := r.opts.Store.Epoch(); epoch < local {
		// Installing this snapshot would move us backwards onto a stale
		// lineage, silently erasing state from the lineage that fenced it.
		return fmt.Errorf("refusing snapshot from %s: its epoch %d predates local epoch %d (stale primary)", r.opts.Primary, epoch, local)
	}
	wantFP := resp.Header.Get("X-Lapushd-Fingerprint")
	db, err := lapushdb.Load(resp.Body)
	if err != nil {
		return fmt.Errorf("load snapshot: %w", err)
	}
	if got := store.Fingerprint(db, seq); wantFP != "" && got != wantFP {
		return fmt.Errorf("%w: snapshot at seq %d loads as %s, primary claims %s", store.ErrDiverged, seq, got, wantFP)
	}
	if _, err := r.opts.Store.InstallSnapshot(db, seq, epoch); err != nil {
		return err
	}
	r.opts.Logf("replica: installed snapshot at seq %d (epoch %d) from %s", seq, epoch, r.opts.Primary)
	r.noteContact(epoch)
	r.noteApplied(seq)
	return nil
}

// noteHead records a head frame: the primary's published position. A
// head on a stale epoch means the primary belongs to a lineage we have
// moved past — refuse to follow it (and never bootstrap from it). A
// head at our own seq with a different fingerprint is divergence the
// record-level checks can never catch (no record will arrive to fail).
func (r *Replica) noteHead(seq uint64, fp string, epoch uint64) error {
	r.noteContact(epoch)
	cur := r.opts.Store.Current()
	if epoch < cur.Epoch {
		return fmt.Errorf("replica: primary %s is on stale epoch %d (local %d); refusing to follow it", r.opts.Primary, epoch, cur.Epoch)
	}
	if epoch > cur.Epoch && seq == cur.Seq {
		// The primary's head crossed a promotion while we sit at its exact
		// sequence number. The fingerprint covers schema shape and tuple
		// counts, not contents, so two forked lineages can collide at the
		// same seq (an old primary's unacked tail vs the promoted lineage's
		// new writes) — parity cannot be proven across an epoch boundary
		// without either applying an epoch-stamped record or re-anchoring.
		// With no records left to stream, re-anchor.
		return fmt.Errorf("%w: primary head (%d, epoch %d) vs local state applied on epoch %d; fingerprints cannot prove parity across a promotion", errNeedSnapshot, seq, epoch, cur.Epoch)
	}
	if seq == cur.Seq && fp != "" && fp != cur.Fingerprint {
		return fmt.Errorf("%w: primary head (%d, %s) vs local (%d, %s)", errNeedSnapshot, seq, fp, cur.Seq, cur.Fingerprint)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.headSeq {
		r.headSeq = seq
	}
	r.updateCaughtUpLocked(cur.Seq)
	return nil
}

// noteContact stamps a successful exchange with the primary and the
// epoch it reported.
func (r *Replica) noteContact(epoch uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.lastContact = time.Now()
	if epoch > r.primaryEpoch {
		r.primaryEpoch = epoch
	}
}

// noteApplied records local progress after an apply or install.
func (r *Replica) noteApplied(seq uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if seq > r.headSeq {
		r.headSeq = seq
	}
	r.updateCaughtUpLocked(seq)
}

// updateCaughtUpLocked derives caughtUp from the applied position and
// stamps the lag clock. Caller holds r.mu.
func (r *Replica) updateCaughtUpLocked(applied uint64) {
	was := r.caughtUp
	r.caughtUp = r.connected && applied >= r.headSeq
	if r.caughtUp || was {
		// Entering, holding, or just leaving the caught-up state all
		// pin "last caught up" to now; lag accrues from here.
		r.caughtUpAt = time.Now()
	}
}

func (r *Replica) setConnected(c bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.connected && !c && r.caughtUp {
		r.caughtUpAt = time.Now()
	}
	r.connected = c
	if !c {
		r.caughtUp = false
	}
}

func (r *Replica) setError(err error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err == nil {
		r.lastErr = ""
	} else {
		r.lastErr = err.Error()
	}
}
