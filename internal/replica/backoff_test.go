package replica_test

// Reconnect-backoff behavior under a dead primary: the delay grows
// exponentially only up to MaxBackoff (so a long outage settles into a
// steady polling cadence instead of backing off forever), and Close
// interrupts a tailer parked mid-backoff promptly instead of letting it
// sleep out the full delay — which is what lets /v1/promote stop the
// tailer of a replica whose primary just crashed without stalling.

import (
	"net"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/replica"
	"lapushdb/internal/store"
)

// deadAddr reserves an address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return "http://" + addr
}

func TestReconnectBackoffCapped(t *testing.T) {
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep, err := replica.Start(replica.Options{
		Primary:          deadAddr(t),
		Store:            rst,
		ReconnectBackoff: time.Millisecond,
		MaxBackoff:       8 * time.Millisecond,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()

	// 25 reconnects under a capped schedule cost ~190ms of backoff
	// (1+2+4+8+8+...); an uncapped doubling schedule would need 2^25 ms
	// (hours) to record that many. Reaching the count inside the
	// deadline therefore proves the cap holds.
	deadline := time.Now().Add(10 * time.Second)
	for rep.Status().Reconnects < 25 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d reconnects inside the deadline; backoff is growing past MaxBackoff", rep.Status().Reconnects)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestCloseInterruptsBackoff(t *testing.T) {
	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep, err := replica.Start(replica.Options{
		Primary:          deadAddr(t),
		Store:            rst,
		ReconnectBackoff: time.Hour,
		MaxBackoff:       time.Hour,
		Logf:             func(string, ...any) {},
	})
	if err != nil {
		t.Fatal(err)
	}

	// Wait until the first failure has been recorded, after which the
	// run loop is parked in its hour-long backoff sleep.
	deadline := time.Now().Add(10 * time.Second)
	for rep.Status().Reconnects < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("tailer never attempted the dead primary: %+v", rep.Status())
		}
		time.Sleep(2 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond)

	begin := time.Now()
	if err := rep.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(begin); elapsed > 2*time.Second {
		t.Fatalf("Close took %v against a tailer mid-backoff; it must interrupt the sleep", elapsed)
	}
}
