package replica

import (
	"bytes"
	"errors"
	"hash/crc32"
	"io"
	"testing"

	"lapushdb/internal/store"
)

func TestFrameRoundTrip(t *testing.T) {
	p := 0.4
	frames := []Frame{
		HeadFrame(7, "abc@7", 2),
		RecordFrame(store.LogRecord{Seq: 8, Epoch: 2, Fingerprint: "def@8", Muts: []store.Mutation{
			{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"x", "y"}, P: &p},
		}}),
		{Type: FrameEnd},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatalf("WriteFrame(%+v): %v", f, err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if got.Type != want.Type || got.Seq != want.Seq || got.Epoch != want.Epoch || got.Fingerprint != want.Fingerprint || len(got.Muts) != len(want.Muts) {
			t.Fatalf("frame %d round-tripped to %+v, want %+v", i, got, want)
		}
	}
	// Clean boundary after the last frame.
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("read past the end: %v, want io.EOF", err)
	}
}

func TestFrameCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, HeadFrame(3, "x@3", 0)); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()

	// A flipped payload byte fails the CRC.
	flipped := append([]byte(nil), full...)
	flipped[len(flipped)-1] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(flipped)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("flipped payload: %v, want ErrFrameCorrupt", err)
	}

	// A truncated header or payload is an unexpected EOF, not a clean
	// boundary.
	for _, cut := range []int{3, 8, len(full) - 2} {
		if _, err := ReadFrame(bytes.NewReader(full[:cut])); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}

	// An implausible length prefix is refused before allocating.
	huge := append([]byte(nil), full...)
	huge[0], huge[1], huge[2], huge[3] = 0xff, 0xff, 0xff, 0xff
	if _, err := ReadFrame(bytes.NewReader(huge)); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("huge length: %v, want ErrFrameCorrupt", err)
	}

	// Garbage JSON under a valid CRC is still corrupt.
	var g bytes.Buffer
	payload := []byte("not json")
	hdr := make([]byte, 8)
	hdr[0] = byte(len(payload))
	copy(hdr[4:8], crcBytes(payload))
	g.Write(hdr)
	g.Write(payload)
	if _, err := ReadFrame(&g); !errors.Is(err, ErrFrameCorrupt) {
		t.Fatalf("garbage payload: %v, want ErrFrameCorrupt", err)
	}
}

// crcBytes renders the little-endian CRC32C of payload, test-side.
func crcBytes(payload []byte) []byte {
	sum := crc32.Checksum(payload, crcTable)
	return []byte{byte(sum), byte(sum >> 8), byte(sum >> 16), byte(sum >> 24)}
}
