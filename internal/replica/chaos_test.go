package replica_test

// Chaos tests for the replication pipeline, same acceptance shape as
// the store's WAL/checkpoint sweep: for every injected fault the
// replica either refuses cleanly (keeps serving its last good version,
// reports the error, retries) or recovers to a published version
// bit-identical to the primary's — never a torn or diverged state.
//
// Two fault families: errfs faults on the replica's own durability
// path (its WAL appends and checkpoint writes while applying shipped
// records), and mid-stream disconnects injected by a byte-cutting TCP
// proxy between the tailer and the primary (cutting snapshots and
// record frames at arbitrary byte positions, including mid-frame).

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
	"lapushdb/internal/store/errfs"
)

func TestReplicaChaosWALFaults(t *testing.T) {
	faults := []errfs.Fault{
		{Op: errfs.OpWrite, Nth: 1},
		{Op: errfs.OpWrite, Nth: 2, Short: true},
		{Op: errfs.OpWrite, Nth: 4},
		{Op: errfs.OpSync, Nth: 1},
		{Op: errfs.OpSync, Nth: 3},
		{Op: errfs.OpWrite, Nth: 1, Sticky: true},
		{Op: errfs.OpSync, Nth: 2, Sticky: true},
		{Op: errfs.OpRename, Nth: 1},
	}
	for _, fault := range faults {
		fault := fault
		name := fmt.Sprintf("%s-nth%d", fault.Op, fault.Nth)
		if fault.Short {
			name += "-short"
		}
		if fault.Sticky {
			name += "-sticky"
		}
		t.Run(name, func(t *testing.T) {
			pst, err := store.Open(seedDB(t), store.Options{})
			if err != nil {
				t.Fatal(err)
			}
			defer pst.Close()
			mutateN(t, pst, 3)
			primary := newPrimary(t, pst)

			dir := t.TempDir()
			fs := errfs.New(store.OSFS, errfs.Fault{})
			rst, err := store.Open(lapushdb.Open(), store.Options{
				Dir:              dir,
				FS:               fs,
				BreakerThreshold: 2,
				RetryAttempts:    1,
				RetryBackoff:     time.Millisecond,
				ProbeInterval:    5 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			defer rst.Close()

			// Arm the fault, then let the tailer bootstrap and stream
			// into the faulty store while the primary keeps moving.
			fs.SetFault(fault)
			rep := startTailer(t, primary.URL, rst)
			mutateN(t, pst, 4)

			// The injected failure window: the tailer may refuse
			// batches, trip the breaker, or error a bootstrap — all it
			// must never do is publish a wrong version. Give it a
			// moment to run into the fault.
			deadline := time.Now().Add(2 * time.Second)
			for fs.Fired() == 0 && time.Now().Before(deadline) {
				time.Sleep(5 * time.Millisecond)
			}
			if fs.Fired() == 0 {
				t.Logf("fault %+v never fired (path not exercised this run)", fault)
			}

			// Clear the injection: recovery must now converge to the
			// primary bit-for-bit (the probe re-arms a tripped breaker).
			fs.Disarm()
			mutateN(t, pst, 2)
			waitConverged(t, pst, rst)
			if st := rep.Status(); st.LastError != "" && rst.Current().Seq != pst.Current().Seq {
				t.Fatalf("converged but still failing: %+v", st)
			}

			// And the durable state must survive a restart: reopening
			// the replica's directory (clean FS) recovers exactly the
			// version it was serving.
			want := rst.Current()
			wantBytes := dbBytes(t, want.DB)
			if err := rep.Close(); err != nil {
				t.Fatal(err)
			}
			if err := rst.Close(); err != nil {
				t.Fatal(err)
			}
			re, err := store.Open(nil, store.Options{Dir: dir})
			if err != nil {
				t.Fatalf("recovery open: %v", err)
			}
			defer re.Close()
			rv := re.Current()
			if rv.Seq != want.Seq || rv.Fingerprint != want.Fingerprint {
				t.Fatalf("recovered (%d, %s), want (%d, %s)", rv.Seq, rv.Fingerprint, want.Seq, want.Fingerprint)
			}
			if !bytes.Equal(wantBytes, dbBytes(t, rv.DB)) {
				t.Fatal("recovered replica state is not bit-identical")
			}
		})
	}
}

// cutProxy forwards TCP to target, cutting the server-to-client copy
// of connection n after limit(n) bytes — so early streams die mid-
// snapshot or mid-frame and later ones live progressively longer.
func startCutProxy(t testing.TB, target string, limit func(conn int64) int64) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var conns atomic.Int64
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			n := conns.Add(1)
			go func(c net.Conn, budget int64) {
				defer c.Close()
				up, err := net.Dial("tcp", target)
				if err != nil {
					return
				}
				defer up.Close()
				go func() {
					_, _ = io.Copy(up, c)
				}()
				_, _ = io.CopyN(c, up, budget)
				// Budget spent (or upstream closed): both sides drop,
				// tearing whatever frame was in flight.
			}(c, limit(n))
		}
	}()
	return ln.Addr().String()
}

func TestReplicaChaosMidStreamDisconnects(t *testing.T) {
	pst, err := store.Open(seedDB(t), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	// Enough history that the snapshot and the record stream both span
	// many kilobytes: the early byte budgets cut them mid-flight.
	mutateN(t, pst, 60)
	primary := newPrimary(t, pst)
	target := strings.TrimPrefix(primary.URL, "http://")

	proxyAddr := startCutProxy(t, target, func(conn int64) int64 {
		if conn > 20 {
			return 1 << 30
		}
		return 200 << conn
	})

	rst, err := store.Open(lapushdb.Open(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()
	rep := startTailer(t, "http://"+proxyAddr, rst)
	mutateN(t, pst, 10)
	waitConverged(t, pst, rst)
	st := rep.Status()
	if st.Reconnects < 1 {
		t.Fatalf("the proxy cut nothing: %+v", st)
	}
	t.Logf("converged through %d reconnects, %d bootstraps", st.Reconnects, st.Bootstraps)

	// Steady state through the now-permissive proxy still works.
	mutateN(t, pst, 3)
	waitConverged(t, pst, rst)
}
