package workload

import (
	"math/rand"
	"strings"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/engine"
)

func TestChainShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	db, q := Chain(4, 100, 50, 0.5, rng)
	if len(q.Atoms) != 4 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	for i := 1; i <= 4; i++ {
		r := db.Relation(q.Atoms[i-1].Rel)
		if r == nil || r.Len() != 100 {
			t.Errorf("R%d missing or wrong size", i)
		}
		for j := 0; j < r.Len(); j++ {
			if p := r.Prob(j); p < 0 || p > 0.5 {
				t.Fatalf("probability %v out of [0, 0.5]", p)
			}
		}
	}
	if got := len(core.MinimalPlans(q, nil)); got != 5 {
		t.Errorf("4-chain minimal plans = %d, want 5", got)
	}
	// The query must evaluate without error end to end.
	res := engine.EvalPlans(db, q, core.MinimalPlans(q, nil), engine.Options{ReuseSubplans: true})
	for i := 0; i < res.Len(); i++ {
		if s := res.Score(i); s <= 0 || s > 1 {
			t.Errorf("answer score %v out of (0, 1]", s)
		}
	}
}

func TestStarShape(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	db, q := Star(3, 200, 40, 0.5, rng)
	if len(q.Atoms) != 4 {
		t.Fatalf("atoms = %d", len(q.Atoms))
	}
	if db.Relation("R0").Len() != 200 {
		t.Errorf("hub size = %d", db.Relation("R0").Len())
	}
	if got := len(core.MinimalPlans(q, nil)); got != 6 {
		t.Errorf("3-star minimal plans = %d, want 6", got)
	}
	res := engine.EvalPlans(db, q, core.MinimalPlans(q, nil), engine.Options{ReuseSubplans: true})
	if res.Len() > 1 {
		t.Errorf("Boolean query returned %d answers", res.Len())
	}
}

func TestTPCHShape(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tp := NewTPCH(0.01, 0.5, rng)
	sup := tp.DB.Relation("Supplier")
	part := tp.DB.Relation("Part")
	ps := tp.DB.Relation("Partsupp")
	if sup.Len() != 100 || part.Len() != 2000 || ps.Len() != 8000 {
		t.Errorf("sizes = %d/%d/%d, want 100/2000/8000", sup.Len(), part.Len(), ps.Len())
	}
	// Nation keys span 0..24.
	nations := map[engine.Value]bool{}
	for i := 0; i < sup.Len(); i++ {
		nations[sup.Row(i)[1]] = true
	}
	if len(nations) != Nations {
		t.Errorf("nations = %d, want %d", len(nations), Nations)
	}
	// Part names are five distinct colors.
	name := tp.DB.Decode(part.Row(0)[1])
	words := strings.Fields(name)
	if len(words) != 5 {
		t.Errorf("part name %q should have 5 words", name)
	}
	// The query has the paper's two minimal plans and runs end to end.
	q := tp.Query(50, "%red%")
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 2 {
		t.Fatalf("minimal plans = %d, want 2", len(plans))
	}
	res := engine.EvalPlans(tp.DB, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
	if res.Len() == 0 || res.Len() > Nations {
		t.Errorf("answers = %d", res.Len())
	}
}

func TestTPCHSelectivityOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tp := NewTPCH(0.01, 0.5, rng)
	count := func(pat string) int {
		q := tp.Query(tp.Suppliers, pat)
		lin := engine.EvalLineage(tp.DB, q, engine.SemiJoinReduce(tp.DB, q))
		total := 0
		for i := 0; i < lin.Len(); i++ {
			total += lin.Size(i)
		}
		return total
	}
	all := count("%")
	red := count("%red%")
	redGreen := count("%red%green%")
	if !(redGreen < red && red < all) {
		t.Errorf("selectivities not ordered: %%red%%green%%=%d %%red%%=%d %%=%d", redGreen, red, all)
	}
	if red == 0 {
		t.Error("no part names contain 'red'")
	}
}

func TestAssignProbs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	db, _ := Chain(2, 50, 20, 1.0, rng)
	AssignProbs(db, "const", 0.3, rng)
	r := db.Relation("R1")
	for i := 0; i < r.Len(); i++ {
		if r.Prob(i) != 0.3 {
			t.Fatalf("const mode: prob = %v", r.Prob(i))
		}
	}
	AssignProbs(db, "uniform", 0.2, rng)
	hi := 0.0
	for i := 0; i < r.Len(); i++ {
		if p := r.Prob(i); p > hi {
			hi = p
		}
	}
	if hi > 0.2 {
		t.Errorf("uniform mode exceeded pimax: %v", hi)
	}
	// Lineage variable table must track the new probabilities.
	if db.ProbOf(r.VarID(0)) != r.Prob(0) {
		t.Error("var prob table out of sync after AssignProbs")
	}
}

func TestColorsNonTrivial(t *testing.T) {
	if len(Colors) < 80 {
		t.Errorf("color list has %d entries, expected the TPC-H-sized list", len(Colors))
	}
	seen := map[string]bool{}
	for _, c := range Colors {
		if seen[c] {
			t.Errorf("duplicate color %q", c)
		}
		seen[c] = true
	}
}
