// Package workload generates the databases and queries of the paper's
// experimental setups: the k-chain and k-star micro-benchmarks of Setup 2
// and the TPC-H-shaped database of Setup 1.
//
// The paper uses the TPC-H DBGEN generator at scale 1 (Supplier 10k,
// Partsupp 800k, Part 200k tuples) with an added probability column drawn
// uniformly from [0, pimax]. We reproduce that shape synthetically at a
// configurable scale factor, including part names assembled from the
// TPC-H color word list so that the paper's LIKE patterns ('%red%green%',
// '%red%', '%') hit with comparable selectivities.
package workload

import (
	"fmt"
	"math/rand"
	"strings"

	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
)

// Chain generates the k-chain setup: relations R1(x0, x1), ...,
// Rk(xk-1, xk), each with n tuples drawn uniformly from a domain of size
// N, probabilities uniform in [0, pimax], and the query
// q(x0, xk) :- R1(x0, x1), ..., Rk(xk-1, xk).
func Chain(k, n, N int, pimax float64, rng *rand.Rand) (*engine.DB, *cq.Query) {
	if k < 2 {
		panic("workload: chain needs k >= 2")
	}
	db := engine.NewDB()
	for i := 1; i <= k; i++ {
		r := db.CreateRelation(fmt.Sprintf("R%d", i), []string{fmt.Sprintf("x%d", i-1), fmt.Sprintf("x%d", i)})
		seen := map[[2]engine.Value]bool{}
		for len(seen) < n {
			t := [2]engine.Value{engine.Value(rng.Intn(N)), engine.Value(rng.Intn(N))}
			if seen[t] {
				continue
			}
			seen[t] = true
			r.Insert([]engine.Value{t[0], t[1]}, rng.Float64()*pimax)
		}
	}
	return db, ChainQuery(k)
}

// ChainQuery returns the k-chain query q(x0, xk) :- R1(x0, x1), ...,
// Rk(xk-1, xk).
func ChainQuery(k int) *cq.Query {
	var b strings.Builder
	fmt.Fprintf(&b, "q(x0, x%d) :- ", k)
	for i := 1; i <= k; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "R%d(x%d, x%d)", i, i-1, i)
	}
	return cq.MustParse(b.String())
}

// Star generates the k-star setup: R1('a', x1) with n tuples, unary
// R2(x2), ..., Rk(xk) with n tuples each, the hub R0(x1, ..., xk) with n
// tuples, all values uniform in a domain of size N, and the Boolean query
// q() :- R1('a', x1), R2(x2), ..., Rk(xk), R0(x1, ..., xk).
func Star(k, n, N int, pimax float64, rng *rand.Rand) (*engine.DB, *cq.Query) {
	if k < 1 {
		panic("workload: star needs k >= 1")
	}
	db := engine.NewDB()
	aVal := db.Intern("a")
	r1 := db.CreateRelation("R1", []string{"c", "x1"})
	seen1 := map[engine.Value]bool{}
	for len(seen1) < min(n, N) {
		v := engine.Value(rng.Intn(N))
		if seen1[v] {
			continue
		}
		seen1[v] = true
		r1.Insert([]engine.Value{aVal, v}, rng.Float64()*pimax)
	}
	for i := 2; i <= k; i++ {
		r := db.CreateRelation(fmt.Sprintf("R%d", i), []string{fmt.Sprintf("x%d", i)})
		seen := map[engine.Value]bool{}
		for len(seen) < min(n, N) {
			v := engine.Value(rng.Intn(N))
			if seen[v] {
				continue
			}
			seen[v] = true
			r.Insert([]engine.Value{v}, rng.Float64()*pimax)
		}
	}
	cols := make([]string, k)
	for i := range cols {
		cols[i] = fmt.Sprintf("x%d", i+1)
	}
	r0 := db.CreateRelation("R0", cols)
	seen := map[string]bool{}
	tuple := make([]engine.Value, k)
	key := make([]byte, 0, 8*k)
	for len(seen) < n {
		key = key[:0]
		for j := range tuple {
			tuple[j] = engine.Value(rng.Intn(N))
			key = append(key, byte(tuple[j]), byte(tuple[j]>>8), byte(tuple[j]>>16), byte(tuple[j]>>24))
		}
		if seen[string(key)] {
			continue
		}
		seen[string(key)] = true
		r0.Insert(tuple, rng.Float64()*pimax)
	}
	return db, StarQuery(k)
}

// StarQuery returns the Boolean k-star query.
func StarQuery(k int) *cq.Query {
	var b strings.Builder
	b.WriteString("q() :- R1('a', x1)")
	for i := 2; i <= k; i++ {
		fmt.Fprintf(&b, ", R%d(x%d)", i, i)
	}
	b.WriteString(", R0(")
	for i := 1; i <= k; i++ {
		if i > 1 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "x%d", i)
	}
	b.WriteString(")")
	return cq.MustParse(b.String())
}

// Colors is the TPC-H color word list used to assemble part names
// (P_NAME is the concatenation of five distinct colors).
var Colors = []string{
	"almond", "antique", "aquamarine", "azure", "beige", "bisque", "black",
	"blanched", "blue", "blush", "brown", "burlywood", "burnished",
	"chartreuse", "chiffon", "chocolate", "coral", "cornflower", "cornsilk",
	"cream", "cyan", "dark", "deep", "dim", "dodger", "drab", "firebrick",
	"floral", "forest", "frosted", "gainsboro", "ghost", "goldenrod",
	"green", "grey", "honeydew", "hot", "indian", "ivory", "khaki", "lace",
	"lavender", "lawn", "lemon", "light", "lime", "linen", "magenta",
	"maroon", "medium", "metallic", "midnight", "mint", "misty", "moccasin",
	"navajo", "navy", "olive", "orange", "orchid", "pale", "papaya",
	"peach", "peru", "pink", "plum", "powder", "puff", "purple", "red",
	"rose", "rosy", "royal", "saddle", "salmon", "sandy", "seashell",
	"sienna", "sky", "slate", "smoke", "snow", "spring", "steel", "tan",
	"thistle", "tomato", "turquoise", "violet", "wheat", "white", "yellow",
}

// TPCH is the Setup 1 database: Supplier(s, a), Partsupp(s, u),
// Part(u, n) with TPC-H cardinality ratios and random probabilities.
type TPCH struct {
	DB *engine.DB
	// Suppliers, Parts, PartsuppPerPart record the generated sizes.
	Suppliers, Parts int
}

// Nations is the number of distinct nation keys (the 25 answers the
// paper ranks).
const Nations = 25

// NewTPCH generates the TPC-H-shaped database at the given scale factor
// (scale 1 ≈ the paper's 1 GB instance: 10k suppliers, 200k parts, 800k
// partsupp tuples; scale 0.01 is handy for tests). Probabilities are
// uniform in [0, pimax].
func NewTPCH(scale float64, pimax float64, rng *rand.Rand) *TPCH {
	nSupp := max(int(10000*scale), Nations)
	nPart := max(int(200000*scale), 8)
	db := engine.NewDB()
	sup := db.CreateRelation("Supplier", []string{"s", "a"})
	ps := db.CreateRelation("Partsupp", []string{"s", "u"})
	part := db.CreateRelation("Part", []string{"u", "n"})
	for s := 1; s <= nSupp; s++ {
		sup.Insert([]engine.Value{engine.Value(s), engine.Value(rng.Intn(Nations))}, rng.Float64()*pimax)
	}
	var words [5]string
	for u := 1; u <= nPart; u++ {
		// Five distinct colors, TPC-H style.
		seen := map[int]bool{}
		for i := 0; i < 5; {
			c := rng.Intn(len(Colors))
			if seen[c] {
				continue
			}
			seen[c] = true
			words[i] = Colors[c]
			i++
		}
		name := db.Intern(strings.Join(words[:], " "))
		part.Insert([]engine.Value{engine.Value(u), name}, rng.Float64()*pimax)
		// Four suppliers per part, as in TPC-H.
		for i := 0; i < 4; i++ {
			s := 1 + (u+i*(nSupp/4+1))%nSupp
			ps.Insert([]engine.Value{engine.Value(s), engine.Value(u)}, rng.Float64()*pimax)
		}
	}
	return &TPCH{DB: db, Suppliers: nSupp, Parts: nPart}
}

// Query builds the paper's parameterized query
//
//	Q(a) :- Supplier(s, a), Partsupp(s, u), Part(u, n), s <= $1, n like $2
//
// which ranks the 25 nations.
func (t *TPCH) Query(dollar1 int, dollar2 string) *cq.Query {
	return cq.MustParse(fmt.Sprintf(
		"Q(a) :- Supplier(s, a), Partsupp(s, u), Part(u, n), s <= %d, n like '%s'", dollar1, dollar2))
}

// AssignProbs redraws every tuple probability. mode "uniform" draws from
// [0, pimax] (avg pimax/2); mode "const" sets every probability to
// pimax — the pi = const condition of Result 5.
func AssignProbs(db *engine.DB, mode string, pimax float64, rng *rand.Rand) {
	for _, r := range db.Relations() {
		if r.Deterministic {
			continue
		}
		for i := 0; i < r.Len(); i++ {
			switch mode {
			case "uniform":
				r.SetProb(i, rng.Float64()*pimax)
			case "const":
				r.SetProb(i, pimax)
			default:
				panic("workload: unknown probability mode " + mode)
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
