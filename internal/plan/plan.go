// Package plan defines probabilistic query plans (Definition 4 of the
// paper) and their connection to query dissociations (Section 3.2).
//
// A plan is a tree of scans, duplicate-eliminating projections, natural
// joins, and — for the Opt1 merged plan — per-tuple min nodes. Plans carry
// a canonical string key: join and min children are kept sorted by key, so
// two plans that differ only in join order compare equal, mirroring the
// paper's convention that ⋈[P1, P2] = ⋈[P2, P1].
//
// Under the extensional score semantics (implemented by internal/engine)
// every plan for a query q computes an upper bound of P(q); the plan is
// exact iff it is safe (every join's children share the same head
// variables).
package plan

import (
	"fmt"
	"sort"
	"strings"

	"lapushdb/internal/cq"
)

// Node is a query plan node.
type Node interface {
	// Head returns the node's head variables in sorted order.
	Head() []cq.Var
	// HeadSet returns the node's head variables as a set.
	HeadSet() cq.VarSet
	// Key returns the canonical string form of the subplan. Two subplans
	// are structurally identical (up to join order) iff their keys match.
	Key() string
	// Children returns the direct subplans.
	Children() []Node
}

// Scan reads one relational atom, applying any pushed-down predicates and
// constant selections. Its head variables are the variables of the atom.
type Scan struct {
	Atom  cq.Atom
	Preds []cq.Predicate
	head  []cq.Var
	key   string
}

// NewScan builds a scan of the given atom with pushed-down predicates.
func NewScan(atom cq.Atom, preds []cq.Predicate) *Scan {
	s := &Scan{Atom: atom, Preds: preds}
	s.head = append([]cq.Var(nil), atom.Vars()...)
	sortVars(s.head)
	var b strings.Builder
	b.WriteString(atom.String())
	if len(preds) > 0 {
		ps := make([]string, len(preds))
		for i, p := range preds {
			ps[i] = p.String()
		}
		sort.Strings(ps)
		b.WriteString("[" + strings.Join(ps, " and ") + "]")
	}
	s.key = b.String()
	return s
}

// Head implements Node.
func (s *Scan) Head() []cq.Var { return s.head }

// HeadSet implements Node.
func (s *Scan) HeadSet() cq.VarSet { return cq.NewVarSet(s.head...) }

// Key implements Node.
func (s *Scan) Key() string { return s.key }

// Children implements Node.
func (s *Scan) Children() []Node { return nil }

// Project is the probabilistic duplicate-eliminating projection π^p onto
// the variables OnTo. Duplicates are combined as independent events:
// score(t) = 1 − ∏(1 − score(ti)).
type Project struct {
	OnTo  []cq.Var
	Child Node
	key   string
}

// NewProject builds a projection of child onto the variables onto. If the
// projection is trivial (onto equals the child's head) the child itself is
// returned, which keeps plans in the alternating join/projection normal
// form of Definition 4.
func NewProject(onto []cq.Var, child Node) Node {
	hs := append([]cq.Var(nil), onto...)
	sortVars(hs)
	hs = dedupVars(hs)
	if varsEqual(hs, child.Head()) {
		return child
	}
	p := &Project{OnTo: hs, Child: child}
	p.key = "π{" + joinVars(hs) + "}(" + child.Key() + ")"
	return p
}

// Head implements Node.
func (p *Project) Head() []cq.Var { return p.OnTo }

// HeadSet implements Node.
func (p *Project) HeadSet() cq.VarSet { return cq.NewVarSet(p.OnTo...) }

// Key implements Node.
func (p *Project) Key() string { return p.key }

// Children implements Node.
func (p *Project) Children() []Node { return []Node{p.Child} }

// Away returns the variables the projection removes, i.e. the child's head
// variables that are not kept. Used for the paper's project-away notation.
func (p *Project) Away() []cq.Var {
	keep := p.HeadSet()
	var out []cq.Var
	for _, v := range p.Child.Head() {
		if !keep.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// Join is the k-ary natural join ⋈^p[P1, ..., Pk]; the score of a joined
// tuple is the product of the children's scores. Children are stored
// sorted by canonical key.
type Join struct {
	Subs []Node
	head []cq.Var
	key  string
}

// NewJoin builds a join. Nested joins are flattened and children sorted by
// key, producing the canonical form. A single-child join collapses to the
// child.
func NewJoin(children ...Node) Node {
	var flat []Node
	for _, c := range children {
		if j, ok := c.(*Join); ok {
			flat = append(flat, j.Subs...)
		} else {
			flat = append(flat, c)
		}
	}
	if len(flat) == 1 {
		return flat[0]
	}
	sort.Slice(flat, func(i, j int) bool { return flat[i].Key() < flat[j].Key() })
	j := &Join{Subs: flat}
	hs := cq.VarSet{}
	for _, c := range flat {
		for _, v := range c.Head() {
			hs.Add(v)
		}
	}
	j.head = hs.Sorted()
	keys := make([]string, len(flat))
	for i, c := range flat {
		keys[i] = c.Key()
	}
	j.key = "⋈[" + strings.Join(keys, ", ") + "]"
	return j
}

// Head implements Node.
func (j *Join) Head() []cq.Var { return j.head }

// HeadSet implements Node.
func (j *Join) HeadSet() cq.VarSet { return cq.NewVarSet(j.head...) }

// Key implements Node.
func (j *Join) Key() string { return j.key }

// Children implements Node.
func (j *Join) Children() []Node { return j.Subs }

// Min combines alternative subplans with identical heads by keeping, for
// every output tuple, the minimum score over the alternatives. It is the
// operator Opt1 (Algorithm 2) pushes into the plan to merge all minimal
// plans into a single one.
type Min struct {
	Subs []Node
	key  string
}

// NewMin builds a min node over alternatives that must all have the same
// head variables. Duplicate alternatives (same canonical key) are removed;
// a single remaining alternative collapses to itself.
func NewMin(children ...Node) Node {
	seen := map[string]bool{}
	var uniq []Node
	for _, c := range children {
		if m, ok := c.(*Min); ok {
			for _, cc := range m.Subs {
				if !seen[cc.Key()] {
					seen[cc.Key()] = true
					uniq = append(uniq, cc)
				}
			}
			continue
		}
		if !seen[c.Key()] {
			seen[c.Key()] = true
			uniq = append(uniq, c)
		}
	}
	if len(uniq) == 1 {
		return uniq[0]
	}
	for _, c := range uniq[1:] {
		if !varsEqual(c.Head(), uniq[0].Head()) {
			panic(fmt.Sprintf("plan: min over different heads %v vs %v", uniq[0].Head(), c.Head()))
		}
	}
	sort.Slice(uniq, func(i, j int) bool { return uniq[i].Key() < uniq[j].Key() })
	m := &Min{Subs: uniq}
	keys := make([]string, len(uniq))
	for i, c := range uniq {
		keys[i] = c.Key()
	}
	m.key = "min[" + strings.Join(keys, ", ") + "]"
	return m
}

// Head implements Node.
func (m *Min) Head() []cq.Var { return m.Subs[0].Head() }

// HeadSet implements Node.
func (m *Min) HeadSet() cq.VarSet { return m.Subs[0].HeadSet() }

// Key implements Node.
func (m *Min) Key() string { return m.key }

// Children implements Node.
func (m *Min) Children() []Node { return m.Subs }

// IsSafe reports whether the plan is safe (Definition 5): every join's
// children have pairwise equal head variables. Safe plans compute the
// exact query probability (Proposition 6). The query's head variables act
// as per-answer constants, so children may differ on them; pass the
// query's head set (or nil for a Boolean query's plan).
func IsSafe(n Node, head cq.VarSet) bool {
	switch t := n.(type) {
	case *Scan:
		return true
	case *Project:
		return IsSafe(t.Child, head)
	case *Join:
		first := t.Subs[0].HeadSet().Minus(head)
		for _, c := range t.Subs[1:] {
			if !c.HeadSet().Minus(head).Equal(first) {
				return false
			}
		}
		for _, c := range t.Subs {
			if !IsSafe(c, head) {
				return false
			}
		}
		return true
	case *Min:
		for _, c := range t.Subs {
			if !IsSafe(c, head) {
				return false
			}
		}
		return true
	default:
		panic("plan: unknown node type")
	}
}

// Relations returns the relation symbols of all atoms beneath the node, in
// sorted order.
func Relations(n Node) []string {
	set := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			set[s.Atom.Rel] = true
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	out := make([]string, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// Atoms returns the scan atoms beneath the node.
func Atoms(n Node) []cq.Atom {
	var out []cq.Atom
	var walk func(Node)
	walk = func(n Node) {
		if s, ok := n.(*Scan); ok {
			out = append(out, s.Atom)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Size returns the number of nodes in the plan.
func Size(n Node) int {
	total := 1
	for _, c := range n.Children() {
		total += Size(c)
	}
	return total
}

// String renders the plan in the paper's project-away notation, e.g.
// "π-x ⋈[R(x), S(x), π-y ⋈[T(x, y), U(y)]]".
func String(n Node) string {
	switch t := n.(type) {
	case *Scan:
		return t.key
	case *Project:
		return "π-" + joinVars(t.Away()) + " " + String(t.Child)
	case *Join:
		parts := make([]string, len(t.Subs))
		for i, c := range t.Subs {
			parts[i] = String(c)
		}
		return "⋈[" + strings.Join(parts, ", ") + "]"
	case *Min:
		parts := make([]string, len(t.Subs))
		for i, c := range t.Subs {
			parts[i] = String(c)
		}
		return "min[" + strings.Join(parts, ", ") + "]"
	default:
		panic("plan: unknown node type")
	}
}

// CommonSubplans returns, for every subplan key that occurs more than once
// in the plan, the number of occurrences and one representative node. This
// is the paper's Opt2 view detection (Algorithm 3): each such subplan is
// worth materializing once and reusing.
func CommonSubplans(n Node) map[string]Node {
	count := map[string]int{}
	repr := map[string]Node{}
	var walk func(Node)
	walk = func(n Node) {
		if _, ok := n.(*Scan); ok {
			return // scans are base tables, not views
		}
		count[n.Key()]++
		repr[n.Key()] = n
		if count[n.Key()] > 1 {
			return // children already counted on first visit
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	out := map[string]Node{}
	for k, c := range count {
		if c > 1 {
			out[k] = repr[k]
		}
	}
	return out
}

func sortVars(vs []cq.Var) {
	sort.Slice(vs, func(i, j int) bool { return vs[i] < vs[j] })
}

func dedupVars(vs []cq.Var) []cq.Var {
	out := vs[:0]
	for i, v := range vs {
		if i == 0 || vs[i-1] != v {
			out = append(out, v)
		}
	}
	return out
}

func varsEqual(a, b []cq.Var) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func joinVars(vs []cq.Var) string {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return strings.Join(parts, ",")
}
