package plan

import (
	"fmt"
	"sort"
	"strings"

	"lapushdb/internal/cq"
)

// Dissociation is a query dissociation ∆ = (y1, ..., ym) (Definition 10):
// for every relation symbol of the query, the set of extra variables the
// relation is dissociated on. Relations absent from the map have yi = ∅.
type Dissociation struct {
	Extra map[string]cq.VarSet
}

// NewDissociation returns the empty dissociation ∆⊥.
func NewDissociation() Dissociation {
	return Dissociation{Extra: map[string]cq.VarSet{}}
}

// ExtraOf returns yi for the given relation (possibly empty, never nil).
func (d Dissociation) ExtraOf(rel string) cq.VarSet {
	if s, ok := d.Extra[rel]; ok {
		return s
	}
	return cq.VarSet{}
}

// Add dissociates relation rel on variable v.
func (d Dissociation) Add(rel string, v cq.Var) {
	s, ok := d.Extra[rel]
	if !ok {
		s = cq.VarSet{}
		d.Extra[rel] = s
	}
	s.Add(v)
}

// IsEmpty reports whether this is the empty dissociation ∆⊥ (no relation
// dissociated on any variable).
func (d Dissociation) IsEmpty() bool {
	for _, s := range d.Extra {
		if s.Len() > 0 {
			return false
		}
	}
	return true
}

// LE reports ∆ ⪯ ∆′ in the partial dissociation order (Definition 15):
// yi ⊆ y′i for every relation.
func (d Dissociation) LE(o Dissociation) bool {
	for rel, s := range d.Extra {
		if !s.SubsetOf(o.ExtraOf(rel)) {
			return false
		}
	}
	return true
}

// LEProb reports ∆ ⪯p ∆′ in the probabilistic dissociation preorder of
// Section 3.3.1: yi ⊆ y′i is required only for probabilistic relations.
// isProb reports whether a relation is probabilistic.
func (d Dissociation) LEProb(o Dissociation, isProb func(rel string) bool) bool {
	for rel, s := range d.Extra {
		if isProb(rel) && !s.SubsetOf(o.ExtraOf(rel)) {
			return false
		}
	}
	return true
}

// LEProbFD reports ∆ ⪯p′ ∆′, the preorder refined by functional
// dependencies (Section 3.3.2): extra variables inside the FD closure of a
// relation's own variables are ignored, because dissociating on them does
// not change the probability (Lemma 25). closure(rel) must return the
// closure x⁺ of the atom's variables under the schema FDs.
func (d Dissociation) LEProbFD(o Dissociation, isProb func(rel string) bool, closure func(rel string) cq.VarSet) bool {
	for rel, s := range d.Extra {
		if !isProb(rel) {
			continue
		}
		cl := closure(rel)
		if !s.Minus(cl).SubsetOf(o.ExtraOf(rel).Minus(cl)) {
			return false
		}
	}
	return true
}

// Equal reports whether the two dissociations have exactly the same extra
// variables.
func (d Dissociation) Equal(o Dissociation) bool { return d.LE(o) && o.LE(d) }

// Key returns a canonical string form, usable as a map key.
func (d Dissociation) Key() string {
	rels := make([]string, 0, len(d.Extra))
	for rel, s := range d.Extra {
		if s.Len() > 0 {
			rels = append(rels, rel)
		}
	}
	sort.Strings(rels)
	parts := make([]string, len(rels))
	for i, rel := range rels {
		parts[i] = rel + "^" + d.Extra[rel].String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// String renders the dissociation like "{R^{y}, T^{x}}".
func (d Dissociation) String() string { return d.Key() }

// Apply returns the dissociated query q∆: every atom Ri(xi) becomes
// Ri(xi, yi) with the extra variables appended in sorted order. The
// relation symbols are kept, so analyses (hierarchy, components, cuts)
// work on the result directly.
func (d Dissociation) Apply(q *cq.Query) *cq.Query {
	out := q.Clone()
	for i := range out.Atoms {
		a := &out.Atoms[i]
		have := cq.NewVarSet(a.Vars()...)
		for _, v := range d.ExtraOf(a.Rel).Sorted() {
			if !have.Has(v) {
				a.Args = append(a.Args, cq.V(string(v)))
			}
		}
	}
	return out
}

// IsSafeFor reports whether ∆ is a safe dissociation of q, i.e. whether
// the dissociated query q∆ is hierarchical (Definition 13, Theorem 2).
func (d Dissociation) IsSafeFor(q *cq.Query) bool {
	return d.Apply(q).IsHierarchical()
}

// DeltaOf computes the dissociation ∆P corresponding to a plan P of query
// q (Section 3.2): at every join ⋈[P1, ..., Pk] with join variables
// JVar = ∪j HVar(Pj), every relation under Pj is dissociated on
// JVar − HVar(Pj). Head variables of q act as per-answer constants and
// contribute nothing.
func DeltaOf(q *cq.Query, p Node) Dissociation {
	d := NewDissociation()
	evars := cq.NewVarSet(q.EVars()...)
	var walk func(Node)
	walk = func(n Node) {
		if j, ok := n.(*Join); ok {
			jvar := j.HeadSet()
			for _, c := range j.Subs {
				miss := jvar.Minus(c.HeadSet()).Intersect(evars)
				if miss.Len() > 0 {
					for _, rel := range Relations(c) {
						for v := range miss {
							d.Add(rel, v)
						}
					}
				}
			}
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(p)
	return d
}

// PlanOf computes the plan P∆ corresponding to a safe dissociation ∆ of q:
// the unique safe plan of the (hierarchical) dissociated query q∆, with
// the dissociated variables stripped back out so that the result is a
// regular plan over q's original atoms (Section 3.2). It returns an error
// if ∆ is not safe for q.
func PlanOf(q *cq.Query, d Dissociation) (Node, error) {
	dq := d.Apply(q)
	if !dq.IsHierarchical() {
		return nil, fmt.Errorf("plan: dissociation %s is not safe for %s", d, q)
	}
	safe := safePlan(dq)
	return Strip(q, safe), nil
}

// safePlan builds the unique safe plan of a hierarchical query following
// the recursion of Lemma 3: single atoms become scans; disconnected
// queries become joins of their components' plans; otherwise the separator
// variables are projected away on top.
func safePlan(q *cq.Query) Node {
	if len(q.Atoms) == 1 {
		a := q.Atoms[0]
		return NewProject(q.Head, NewScan(a, q.PredsOnAtom(a)))
	}
	comps := q.Components()
	if len(comps) > 1 {
		subs := make([]Node, len(comps))
		for i, c := range comps {
			subs[i] = safePlan(c)
		}
		return NewProject(q.Head, NewJoin(subs...))
	}
	sep := q.SeparatorVars()
	if sep.Len() == 0 {
		panic(fmt.Sprintf("plan: query %s is connected, multi-atom, and has no separator — not hierarchical", q))
	}
	inner := q.WithHead(append(append([]cq.Var(nil), q.Head...), sep.Sorted()...))
	return NewProject(q.Head, safePlan(inner))
}

// Strip rewrites a plan over dissociated atoms of q back into a plan over
// q's original atoms: every scan's atom is replaced by the original atom
// with the same relation symbol, and every projection keeps only the
// variables still available below it. Trivial projections collapse away.
func Strip(q *cq.Query, n Node) Node {
	switch t := n.(type) {
	case *Scan:
		orig := q.Atom(t.Atom.Rel)
		if orig == nil {
			panic(fmt.Sprintf("plan: stripped plan mentions unknown relation %s", t.Atom.Rel))
		}
		return NewScan(*orig, q.PredsOnAtom(*orig))
	case *Project:
		child := Strip(q, t.Child)
		below := child.HeadSet()
		var onto []cq.Var
		for _, v := range t.OnTo {
			if below.Has(v) {
				onto = append(onto, v)
			}
		}
		return NewProject(onto, child)
	case *Join:
		subs := make([]Node, len(t.Subs))
		for i, c := range t.Subs {
			subs[i] = Strip(q, c)
		}
		return NewJoin(subs...)
	case *Min:
		subs := make([]Node, len(t.Subs))
		for i, c := range t.Subs {
			subs[i] = Strip(q, c)
		}
		return NewMin(subs...)
	default:
		panic("plan: unknown node type")
	}
}
