package plan

import (
	"strings"
	"testing"

	"lapushdb/internal/cq"
)

func scanOf(q *cq.Query, rel string) *Scan {
	a := q.Atom(rel)
	return NewScan(*a, q.PredsOnAtom(*a))
}

func TestJoinCanonicalOrder(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x)")
	r, s := scanOf(q, "R"), scanOf(q, "S")
	j1 := NewJoin(r, s)
	j2 := NewJoin(s, r)
	if j1.Key() != j2.Key() {
		t.Errorf("join order changed key: %q vs %q", j1.Key(), j2.Key())
	}
}

func TestJoinFlattens(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x), T(x)")
	j := NewJoin(NewJoin(scanOf(q, "R"), scanOf(q, "S")), scanOf(q, "T"))
	if jj, ok := j.(*Join); !ok || len(jj.Subs) != 3 {
		t.Errorf("nested join did not flatten: %v", String(j))
	}
}

func TestProjectTrivialCollapses(t *testing.T) {
	q := cq.MustParse("q() :- R(x, y)")
	s := scanOf(q, "R")
	p := NewProject([]cq.Var{"x", "y"}, s)
	if p != Node(s) {
		t.Error("trivial projection should collapse to the child")
	}
	p = NewProject([]cq.Var{"x"}, s)
	if _, ok := p.(*Project); !ok {
		t.Error("nontrivial projection should stay")
	}
	if got := p.(*Project).Away(); len(got) != 1 || got[0] != "y" {
		t.Errorf("away = %v, want [y]", got)
	}
}

func TestMinDedup(t *testing.T) {
	q := cq.MustParse("q() :- R(x, y)")
	a := NewProject([]cq.Var{"x"}, scanOf(q, "R"))
	b := NewProject([]cq.Var{"x"}, scanOf(q, "R"))
	m := NewMin(a, b)
	if m.Key() != a.Key() {
		t.Errorf("min of identical plans should collapse, got %q", m.Key())
	}
}

func TestMinRequiresEqualHeads(t *testing.T) {
	q := cq.MustParse("q() :- R(x, y)")
	a := NewProject([]cq.Var{"x"}, scanOf(q, "R"))
	b := NewProject([]cq.Var{"y"}, scanOf(q, "R"))
	defer func() {
		if recover() == nil {
			t.Error("min over different heads should panic")
		}
	}()
	NewMin(a, b)
}

func TestIsSafe(t *testing.T) {
	// Safe plan for q1(z) :- R(z, x), S(x, y), K(x, y) from the intro:
	// P1 = πz(R ⋈x (πx(S ⋈xy K))).
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), K(x, y)")
	inner := NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "K")))
	p := NewProject([]cq.Var{"z"}, NewJoin(scanOf(q, "R"), inner))
	// R has head {x, z}, inner has head {x}: the heads differ only on the
	// query's head variable z, which acts as a per-answer constant, so the
	// plan is safe for head {z}...
	if !IsSafe(p, cq.NewVarSet("z")) {
		t.Error("safe plan of q1 not recognized as safe modulo head vars")
	}
	// ...but read as a Boolean plan (no head variables) the same tree has
	// genuinely unequal join heads and is unsafe.
	if IsSafe(p, nil) {
		t.Error("plan should be unsafe without head-variable knowledge")
	}
	// The Boolean version with z dropped is the safe plan shape.
	qb := cq.MustParse("q() :- R(x), S(x, y), K(x, y)")
	innerB := NewProject([]cq.Var{"x"}, NewJoin(scanOf(qb, "S"), scanOf(qb, "K")))
	pb := NewProject([]cq.Var{}, NewJoin(scanOf(qb, "R"), innerB))
	if !IsSafe(pb, nil) {
		t.Errorf("plan %s should be safe", String(pb))
	}
}

func TestRelationsAndAtoms(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	p := NewProject(nil, NewJoin(scanOf(q, "R"), NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "T")))))
	rels := Relations(p)
	if len(rels) != 3 || rels[0] != "R" || rels[1] != "S" || rels[2] != "T" {
		t.Errorf("relations = %v", rels)
	}
	if got := len(Atoms(p)); got != 3 {
		t.Errorf("atoms = %d, want 3", got)
	}
	if Size(p) < 5 {
		t.Errorf("size = %d, want >= 5", Size(p))
	}
}

func TestDissociationOrder(t *testing.T) {
	d1 := NewDissociation()
	d1.Add("R", "y")
	d2 := NewDissociation()
	d2.Add("R", "y")
	d2.Add("T", "x")
	if !d1.LE(d2) || d2.LE(d1) {
		t.Error("partial order wrong")
	}
	if !d1.LE(d1) || !d1.Equal(d1) {
		t.Error("reflexivity failed")
	}
	if d1.Equal(d2) {
		t.Error("distinct dissociations equal")
	}
	if d1.IsEmpty() || !NewDissociation().IsEmpty() {
		t.Error("IsEmpty wrong")
	}
}

func TestDissociationPreorderDRs(t *testing.T) {
	// Example 23: with T deterministic, ∆2 = {T^x} is ≡p to ∆0 = ∅.
	isProb := func(rel string) bool { return rel != "T" }
	d0 := NewDissociation()
	d2 := NewDissociation()
	d2.Add("T", "x")
	if !d0.LEProb(d2, isProb) || !d2.LEProb(d0, isProb) {
		t.Error("∆0 and ∆2 should be ≡p when T is deterministic")
	}
	d1 := NewDissociation()
	d1.Add("R", "y")
	if d1.LEProb(d0, isProb) {
		t.Error("∆1 dissociates probabilistic R, not ⪯p ∆0")
	}
}

func TestDissociationPreorderFDs(t *testing.T) {
	// With FD x→y, dissociating R(x) on y does not change the probability.
	closure := func(rel string) cq.VarSet {
		if rel == "R" {
			return cq.NewVarSet("x", "y")
		}
		return cq.NewVarSet()
	}
	isProb := func(string) bool { return true }
	d0 := NewDissociation()
	d1 := NewDissociation()
	d1.Add("R", "y")
	if !d1.LEProbFD(d0, isProb, closure) {
		t.Error("R^y should be ≡p' ∅ under FD x→y")
	}
}

func TestApplyDissociation(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y)")
	d := NewDissociation()
	d.Add("R", "y")
	dq := d.Apply(q)
	if len(dq.Atoms[0].Args) != 2 {
		t.Errorf("dissociated R should have 2 args, got %v", dq.Atoms[0])
	}
	if !dq.IsHierarchical() {
		t.Error("R^y(x,y), S(x,y) should be hierarchical")
	}
	if !d.IsSafeFor(q) {
		t.Error("dissociation should be safe")
	}
}

func TestDeltaOfPaperExample(t *testing.T) {
	// Section 3.2: P''2 = πz((πzy(R ⋈x S)) ⋈y T) for
	// q2(z) :- R(z,x), S(x,y), T(y) corresponds to ∆ = {R^{y}}
	// (the contribution JVar−HVar = {z} to T is a head variable and is
	// dropped).
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	inner := NewProject([]cq.Var{"y", "z"}, NewJoin(scanOf(q, "R"), scanOf(q, "S")))
	p := NewProject([]cq.Var{"z"}, NewJoin(inner, scanOf(q, "T")))
	d := DeltaOf(q, p)
	want := NewDissociation()
	want.Add("R", "y")
	if !d.Equal(want) {
		t.Errorf("∆P = %s, want %s", d, want)
	}

	// P'2 = πz(R ⋈x (πx(S ⋈xy T))) corresponds to ∆ = {T^{x}}.
	inner2 := NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "T")))
	p2 := NewProject([]cq.Var{"z"}, NewJoin(scanOf(q, "R"), inner2))
	d2 := DeltaOf(q, p2)
	want2 := NewDissociation()
	want2.Add("T", "x")
	if !d2.Equal(want2) {
		t.Errorf("∆P' = %s, want %s", d2, want2)
	}
}

func TestPlanOfInvertsDeltaOf(t *testing.T) {
	// Theorem 18(1): ∆ -> P∆ and P -> ∆P are inverses.
	q := cq.MustParse("q(z) :- R(z, x), S(x, y), T(y)")
	for _, mk := range []func() Dissociation{
		func() Dissociation { d := NewDissociation(); d.Add("R", "y"); return d },
		func() Dissociation { d := NewDissociation(); d.Add("T", "x"); return d },
	} {
		d := mk()
		p, err := PlanOf(q, d)
		if err != nil {
			t.Fatalf("PlanOf(%s): %v", d, err)
		}
		back := DeltaOf(q, p)
		if !back.Equal(d) {
			t.Errorf("DeltaOf(PlanOf(%s)) = %s", d, back)
		}
	}
}

func TestPlanOfUnsafeFails(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	if _, err := PlanOf(q, NewDissociation()); err == nil {
		t.Error("empty dissociation of an unsafe query should fail")
	}
}

func TestStringNotation(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	inner := NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "T")))
	p := NewProject([]cq.Var{}, NewJoin(scanOf(q, "R"), inner))
	s := String(p)
	if !strings.Contains(s, "π-x") || !strings.Contains(s, "⋈[") {
		t.Errorf("rendering = %q", s)
	}
}

func TestCommonSubplans(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	shared := NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "T")))
	p := NewMin(
		NewProject([]cq.Var{}, NewJoin(scanOf(q, "R"), shared)),
		NewProject([]cq.Var{}, NewJoin(scanOf(q, "R"), NewProject(nil, shared))),
	)
	common := CommonSubplans(p)
	if _, ok := common[shared.Key()]; !ok {
		t.Errorf("shared subplan not detected; common = %v", keysOf(common))
	}
}

func keysOf(m map[string]Node) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestMinNodeAccessors(t *testing.T) {
	q := cq.MustParse("q() :- R(x, y), S(x, y)")
	a := NewProject([]cq.Var{"x"}, scanOf(q, "R"))
	b := NewProject([]cq.Var{"x"}, scanOf(q, "S"))
	m := NewMin(a, b)
	mm, ok := m.(*Min)
	if !ok {
		t.Fatalf("expected *Min, got %T", m)
	}
	if got := mm.Head(); len(got) != 1 || got[0] != "x" {
		t.Errorf("min head = %v", got)
	}
	if !mm.HeadSet().Equal(cq.NewVarSet("x")) {
		t.Errorf("min head set = %v", mm.HeadSet())
	}
	if len(mm.Children()) != 2 {
		t.Errorf("children = %d", len(mm.Children()))
	}
	// String and IsSafe walk min nodes.
	if s := String(m); !strings.Contains(s, "min[") {
		t.Errorf("string = %q", s)
	}
	if !IsSafe(m, nil) {
		t.Error("min of safe subplans is safe")
	}
}

func TestScanWithPredicatesKey(t *testing.T) {
	q := cq.MustParse("q(a) :- S(s, a), s <= 10, a like '%x%'")
	s1 := scanOf(q, "S")
	s2 := scanOf(q, "S")
	if s1.Key() != s2.Key() {
		t.Error("identical scans must share a key")
	}
	if !strings.Contains(s1.Key(), "s <= 10") {
		t.Errorf("predicates missing from key: %q", s1.Key())
	}
	// Scans with different predicates differ.
	q2 := cq.MustParse("q(a) :- S(s, a), s <= 11")
	if scanOf(q2, "S").Key() == s1.Key() {
		t.Error("different predicates must change the key")
	}
}

func TestDissociationKeyOrdering(t *testing.T) {
	d := NewDissociation()
	d.Add("B", "y")
	d.Add("A", "x")
	d.Add("A", "z")
	if got := d.Key(); got != "{A^{x, z}, B^{y}}" {
		t.Errorf("key = %q", got)
	}
}

func TestLEProbFDBothDirections(t *testing.T) {
	closure := func(rel string) cq.VarSet {
		if rel == "R" {
			return cq.NewVarSet("x", "y")
		}
		return cq.NewVarSet()
	}
	isProb := func(string) bool { return true }
	// R^z is NOT in R's closure: order must be strict.
	dz := NewDissociation()
	dz.Add("R", "z")
	d0 := NewDissociation()
	if dz.LEProbFD(d0, isProb, closure) {
		t.Error("R^z should not be ⪯p' the empty dissociation")
	}
	if !d0.LEProbFD(dz, isProb, closure) {
		t.Error("∅ should be ⪯p' every dissociation")
	}
	// Deterministic relation extras are ignored entirely.
	det := NewDissociation()
	det.Add("D", "w")
	if !det.LEProbFD(d0, func(rel string) bool { return rel != "D" }, closure) {
		t.Error("deterministic extras should not affect ⪯p'")
	}
}

func TestStripMinNode(t *testing.T) {
	// Strip over a Min plan of a chased query: heads stay aligned.
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	a := NewProject(nil, NewJoin(scanOf(q, "R"), NewProject([]cq.Var{"x"}, NewJoin(scanOf(q, "S"), scanOf(q, "T")))))
	b := NewProject(nil, NewJoin(scanOf(q, "T"), NewProject([]cq.Var{"y"}, NewJoin(scanOf(q, "S"), scanOf(q, "R")))))
	m := NewMin(a, b)
	stripped := Strip(q, m)
	if stripped.Key() != m.Key() {
		t.Errorf("strip of an unchased plan should be identity:\n%s\n%s", m.Key(), stripped.Key())
	}
}
