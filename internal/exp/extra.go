package exp

import (
	"fmt"
	"math/rand"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/obdd"
	"lapushdb/internal/rank"
	"lapushdb/internal/workload"
)

// ExtraAblation is a supplementary experiment (not in the paper): the
// full optimization matrix across the benchmark workloads, including
// the two engine-level extensions — Selinger-style cost-based join
// ordering and parallel plan evaluation.
func ExtraAblation(cfg Config) *Table {
	t := &Table{ID: "Extra A",
		Title:  "optimization ablation: seconds per evaluation strategy",
		Header: []string{"workload", "All plans", "Opt1", "Opt1-2", "Opt1-3", "Opt1-3+CB", "Parallel(4)", "Standard SQL"}}
	n := cfg.MaxN / 10
	if n < 100 {
		n = 100
	}
	type wl struct {
		name string
		db   *engine.DB
		q    *cq.Query
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var wls []wl
	{
		db, q := workload.Chain(4, n, ChainDomain(4, n), 0.5, rng)
		wls = append(wls, wl{fmt.Sprintf("4-chain n=%d", n), db, q})
	}
	{
		db, q := workload.Chain(7, n, ChainDomain(7, n), 0.5, rng)
		wls = append(wls, wl{fmt.Sprintf("7-chain n=%d", n), db, q})
	}
	{
		db, q := workload.Star(3, n, StarDomain(3, n), 0.5, rng)
		wls = append(wls, wl{fmt.Sprintf("3-star n=%d", n), db, q})
	}
	{
		tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
		wls = append(wls, wl{fmt.Sprintf("TPC-H sf=%.2f", cfg.Scale), tp.DB, tp.Query(tp.Suppliers, "%red%")})
	}
	for _, w := range wls {
		plans := core.MinimalPlans(w.q, nil)
		sp := core.SinglePlan(w.q, nil)
		row := []any{w.name}
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.EvalPlans(w.db, w.q, plans, engine.Options{})
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.NewEvaluator(w.db, w.q, engine.Options{}).Eval(sp)
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.NewEvaluator(w.db, w.q, engine.Options{ReuseSubplans: true}).Eval(sp)
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.NewEvaluator(w.db, w.q, engine.Options{ReuseSubplans: true, SemiJoin: true}).Eval(sp)
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.NewEvaluator(w.db, w.q, engine.Options{ReuseSubplans: true, SemiJoin: true, CostBasedJoins: true}).Eval(sp)
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.EvalPlansParallel(w.db, w.q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true}, 4)
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			engine.EvalDeterministic(w.db, w.q)
		})))
		t.Add(row...)
	}
	return t
}

// ExtraCorrelation is a supplementary experiment: beyond MAP@10, how do
// the rankings correlate with the ground truth over the whole
// permutation? Kendall's τ-b and Spearman's ρ for dissociation, MC, and
// lineage size on the TPC-H ranking instances.
func ExtraCorrelation(cfg Config) *Table {
	t := &Table{ID: "Extra B",
		Title:  "whole-ranking correlation with ground truth (TPC-H, $2 = '%red%')",
		Header: []string{"method", "MAP@10", "Kendall τ-b", "Spearman ρ", "#runs"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	type acc struct{ ap, tau, rho []float64 }
	series := map[string]*acc{"Dissociation": {}, "MC(1k)": {}, "Lineage size": {}}
	for rep := 0; rep < cfg.Reps; rep++ {
		pimax := 0.2 + 0.8*float64(rep%5)/4
		workload.AssignProbs(tp.DB, "uniform", pimax, rng)
		q := tp.Query(tp.Suppliers, "%red%")
		run := newRankingRun(tp.DB, q, 5_000_000)
		if run == nil || run.maxPa > 0.999999 {
			continue
		}
		record := func(name string, scores []float64) {
			a := series[name]
			a.ap = append(a.ap, run.apOf(scores))
			a.tau = append(a.tau, rank.KendallTau(run.gt, scores))
			a.rho = append(a.rho, rank.SpearmanRho(run.gt, scores))
		}
		record("Dissociation", run.diss)
		record("MC(1k)", run.mcScores(1000, rng))
		record("Lineage size", run.linSize)
	}
	for _, name := range []string{"Dissociation", "MC(1k)", "Lineage size"} {
		a := series[name]
		t.Add(name, rank.MAP(a.ap), rank.MAP(a.tau), rank.MAP(a.rho), len(a.ap))
	}
	return t
}

// ExtraExactMethods is a supplementary experiment: the cost of the
// exact-inference alternatives on growing TPC-H lineages — the DPLL
// solver (the repository's SampleSearch stand-in), OBDD compilation
// (Olteanu–Huang / SPROUT), one-off circuit compilation, and circuit
// re-evaluation (the marginal cost once compiled).
func ExtraExactMethods(cfg Config) *Table {
	t := &Table{ID: "Extra C",
		Title:  "exact-inference alternatives: seconds for all answers, by max lineage size",
		Header: []string{"$2", "max[lin]", "DPLL", "OBDD", "Circuit compile", "Circuit re-eval"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	for _, pattern := range []string{"%red%green%", "%red%", "%"} {
		q := tp.Query(tp.Suppliers, pattern)
		lin := engine.EvalLineage(tp.DB, q, engine.SemiJoinReduce(tp.DB, q))
		probs := tp.DB.VarProbs()
		row := []any{pattern, lin.MaxSize()}
		budget := 20_000_000
		// OBDDs degrade by node count, not recursion count; a tighter
		// budget keeps the inevitable blowups cheap to detect.
		obddBudget := 2_000_000
		okDPLL := true
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			for i := 0; i < lin.Len() && okDPLL; i++ {
				if _, err := exact.ProbBudget(lin.Clauses(i), probs, budget); err != nil {
					okDPLL = false
				}
			}
		})))
		okOBDD := true
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			for i := 0; i < lin.Len() && okOBDD; i++ {
				b, err := obdd.Build(lin.Clauses(i), obdd.FrequencyOrder(lin.Clauses(i)), obddBudget)
				if err != nil {
					okOBDD = false
					continue
				}
				b.Prob(probs)
			}
		})))
		var circuits []*exact.Circuit
		okCirc := true
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			for i := 0; i < lin.Len() && okCirc; i++ {
				c, err := exact.Compile(lin.Clauses(i), budget)
				if err != nil {
					okCirc = false
					continue
				}
				circuits = append(circuits, c)
			}
		})))
		row = append(row, fmt.Sprintf("%.4f", timeIt(func() {
			for _, c := range circuits {
				c.Eval(probs)
			}
		})))
		if !okDPLL {
			row[2] = "-"
		}
		if !okOBDD {
			row[3] = "-"
		}
		if !okCirc {
			row[4] = "-"
			row[5] = "-"
		}
		t.Add(row...)
	}
	return t
}
