package exp

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

func TestFig2MatchesPaper(t *testing.T) {
	tab := Fig2(4, 5)
	want := map[string][2]string{
		"star 1":  {"1", "1"},
		"star 2":  {"2", "3"},
		"star 3":  {"6", "13"},
		"star 4":  {"24", "75"},
		"chain 2": {"1", "1"},
		"chain 3": {"2", "3"},
		"chain 4": {"5", "11"},
		"chain 5": {"14", "45"},
	}
	for _, row := range tab.Rows {
		key := row[0] + " " + row[1]
		w, ok := want[key]
		if !ok {
			t.Fatalf("unexpected row %v", row)
		}
		if row[2] != w[0] || row[3] != w[1] {
			t.Errorf("%s: #MP=%s #P=%s, want %s/%s", key, row[2], row[3], w[0], w[1])
		}
	}
	if len(tab.Rows) != len(want) {
		t.Errorf("rows = %d, want %d", len(tab.Rows), len(want))
	}
	if !strings.Contains(tab.String(), "Figure 2") {
		t.Error("rendering misses the figure id")
	}
}

func TestChainDomainKeepsCardinalitySane(t *testing.T) {
	// The calibrated domain should keep 4-chain answers in a loose band
	// around the paper's 20–50.
	for _, n := range []int{1000, 10000} {
		N := ChainDomain(4, n)
		if N <= n {
			t.Errorf("n=%d: N=%d should exceed n for sparse joins", n, N)
		}
	}
}

func TestFig5aQuick(t *testing.T) {
	tab := Fig5a(QuickConfig())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	if len(tab.Header) != 6 {
		t.Errorf("header = %v", tab.Header)
	}
}

func TestFig5dQuick(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig5d(cfg)
	if len(tab.Rows) != 7 { // k = 2..8
		t.Fatalf("rows = %d, want 7", len(tab.Rows))
	}
	// #MP column follows the Catalan numbers.
	wantMP := []string{"1", "2", "5", "14", "42", "132", "429"}
	for i, row := range tab.Rows {
		if row[1] != wantMP[i] {
			t.Errorf("k=%s: #MP = %s, want %s", row[0], row[1], wantMP[i])
		}
	}
}

func TestFig5eQuick(t *testing.T) {
	tab := Fig5e(QuickConfig())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 ($1 sweep)", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		for i, cell := range row {
			if cell == "" {
				t.Errorf("empty cell %d in %v", i, row)
			}
		}
	}
}

func TestFig5iQuick(t *testing.T) {
	tab := Fig5i(QuickConfig())
	// Series: Diss, lineage, 7 MC counts, random baseline.
	if len(tab.Rows) != 10 {
		t.Fatalf("rows = %d, want 10", len(tab.Rows))
	}
	if tab.Rows[9][0] != "Random baseline" {
		t.Errorf("last row = %v", tab.Rows[9])
	}
}

func TestFanoutDBShape(t *testing.T) {
	cfg := QuickConfig()
	_ = cfg
	rngSeed := int64(9)
	tp := FanoutDB(4, 3, 8, 0.5, rand.New(rand.NewSource(rngSeed)))
	nSupp := tp.DB.Relation("Supplier").Len()
	if nSupp < 25 || nSupp > 7*25 {
		t.Errorf("suppliers = %d, want between 25 and 175", nSupp)
	}
	if tp.DB.Relation("Partsupp").Len() != nSupp*3 {
		t.Errorf("partsupp = %d, want %d", tp.DB.Relation("Partsupp").Len(), nSupp*3)
	}
	if tp.DB.Relation("Part").Len() != 8*25 {
		t.Errorf("parts = %d", tp.DB.Relation("Part").Len())
	}
	q := tp.Query(tp.Suppliers, "%")
	run := newRankingRun(tp.DB, q, 5_000_000)
	if run == nil {
		t.Fatal("exact inference should be feasible on the fanout DB")
	}
	if len(run.keys) != 25 {
		t.Errorf("answers = %d, want 25 nations", len(run.keys))
	}
	// Dissociation upper-bounds ground truth on every answer.
	for i := range run.gt {
		if run.diss[i] < run.gt[i]-1e-9 {
			t.Errorf("answer %d: diss %v < gt %v", i, run.diss[i], run.gt[i])
		}
	}
	// Dissociation ranks essentially perfectly on small instances.
	if ap := run.apDiss(); ap < 0.8 {
		t.Errorf("dissociation AP = %v, expected high", ap)
	}
}

func TestScaledScoresShrink(t *testing.T) {
	tp := FanoutDB(3, 2, 6, 0.8, rand.New(rand.NewSource(3)))
	q := tp.Query(tp.Suppliers, "%")
	run := newRankingRun(tp.DB, q, 5_000_000)
	if run == nil {
		t.Fatal("exact infeasible")
	}
	scaled := scaledGTScores(tp.DB, q, run.keys, 0.1, 5_000_000)
	for i := range scaled {
		if scaled[i] > run.gt[i]+1e-12 {
			t.Errorf("scaled GT %v above original %v", scaled[i], run.gt[i])
		}
	}
	// Scaled dissociation approaches the scaled GT (Prop 21): relative
	// error small at f = 0.01.
	sdiss := scaledDissScores(tp.DB, q, run.keys, 0.01)
	sgt := scaledGTScores(tp.DB, q, run.keys, 0.01, 5_000_000)
	for i := range sdiss {
		if sgt[i] == 0 {
			continue
		}
		if rel := (sdiss[i] - sgt[i]) / sgt[i]; rel > 0.05 || rel < -1e-9 {
			t.Errorf("answer %d: relative error %v at f=0.01", i, rel)
		}
	}
}

func TestFig5bQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	cfg := QuickConfig()
	cfg.MaxN = 300
	tab := Fig5b(cfg)
	if len(tab.Rows) != 2 { // n = 100, 300 capped -> only 100
		if len(tab.Rows) == 0 {
			t.Fatal("no rows")
		}
	}
}

func TestFig5cQuick(t *testing.T) {
	tab := Fig5c(QuickConfig())
	if len(tab.Rows) == 0 {
		t.Fatal("no rows")
	}
	if tab.Header[0] != "n" {
		t.Errorf("header = %v", tab.Header)
	}
}

func TestFig5fgQuick(t *testing.T) {
	for _, f := range []func(Config) *Table{Fig5f, Fig5g} {
		tab := f(QuickConfig())
		if len(tab.Rows) != 5 {
			t.Fatalf("%s: rows = %d", tab.ID, len(tab.Rows))
		}
	}
}

func TestFig5hQuick(t *testing.T) {
	tab := Fig5h(QuickConfig())
	if len(tab.Rows) != 15 { // 3 patterns x 5 sweep points
		t.Fatalf("rows = %d, want 15", len(tab.Rows))
	}
	// Rows are sorted by max lineage size.
	prev := -1
	for _, row := range tab.Rows {
		var v int
		if _, err := fmt.Sscanf(row[0], "%d", &v); err != nil {
			t.Fatalf("bad max[lin] cell %q", row[0])
		}
		if v < prev {
			t.Error("rows not sorted by max lineage size")
		}
		prev = v
	}
}

func TestFig5jQuick(t *testing.T) {
	tab := Fig5j(QuickConfig())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 buckets", len(tab.Rows))
	}
}

func TestFig5kQuick(t *testing.T) {
	tab := Fig5k(QuickConfig())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
}

func TestFig5lQuick(t *testing.T) {
	cfg := QuickConfig()
	tab := Fig5l(cfg)
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d, want 5 (avg[d] = 1..5)", len(tab.Rows))
	}
	// avg[d] = 1 means no effective dissociation: MAP should be ~1 at
	// every probability level.
	for col := 1; col <= 3; col++ {
		var v float64
		if _, err := fmt.Sscanf(tab.Rows[0][col], "%g", &v); err != nil {
			t.Fatalf("bad cell %q", tab.Rows[0][col])
		}
		if v < 0.95 {
			t.Errorf("avg[d]=1 column %d: MAP = %v, want ~1", col, v)
		}
	}
}

func TestFig5mQuick(t *testing.T) {
	tab := Fig5m(QuickConfig())
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// At avg[d] = 1 dissociation is exact: it must win every column.
	for col := 1; col <= 3; col++ {
		if tab.Rows[0][col] != "Diss" {
			t.Errorf("avg[d]=1 col %d: winner = %s, want Diss", col, tab.Rows[0][col])
		}
	}
}

func TestFig5nQuick(t *testing.T) {
	tab := Fig5n(QuickConfig())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d, want 6 scale factors", len(tab.Rows))
	}
	// f = 1 is the identity: MAP = 1 in every column.
	for col := 1; col <= 3; col++ {
		if tab.Rows[0][col] != "1" {
			t.Errorf("f=1 col %d = %s, want 1", col, tab.Rows[0][col])
		}
	}
}

func TestFig5oQuick(t *testing.T) {
	tab := Fig5o(QuickConfig())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(tab.Rows))
	}
	if tab.Rows[0][1] != "0.22" {
		t.Errorf("random baseline = %s", tab.Rows[0][1])
	}
	if tab.Rows[3][1] != "1" {
		t.Errorf("GT row = %s, want 1", tab.Rows[3][1])
	}
	// Ordering: random <= lineage <= weights <= exact.
	var vals [4]float64
	for i := range vals {
		fmt.Sscanf(tab.Rows[i][1], "%g", &vals[i])
	}
	for i := 1; i < 4; i++ {
		if vals[i] < vals[i-1]-0.05 {
			t.Errorf("decomposition not increasing: %v", vals)
		}
	}
}

func TestFig5pQuick(t *testing.T) {
	tab := Fig5p(QuickConfig())
	if len(tab.Rows) != 6 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// As f -> 0, ScaledDiss-vs-ScaledGT approaches 1 (Prop 21).
	var last float64
	fmt.Sscanf(tab.Rows[5][1], "%g", &last)
	if last < 0.95 {
		t.Errorf("ScaledDiss vs ScaledGT at f=0.01 = %v, want ~1", last)
	}
}

func TestExtraAblationQuick(t *testing.T) {
	tab := ExtraAblation(QuickConfig())
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 workloads", len(tab.Rows))
	}
	if len(tab.Header) != 8 {
		t.Errorf("header = %v", tab.Header)
	}
}

func TestExtraCorrelationQuick(t *testing.T) {
	tab := ExtraCorrelation(QuickConfig())
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 methods", len(tab.Rows))
	}
	// Dissociation should correlate best with ground truth.
	var dissTau, linTau float64
	fmt.Sscanf(tab.Rows[0][2], "%g", &dissTau)
	fmt.Sscanf(tab.Rows[2][2], "%g", &linTau)
	if dissTau < linTau {
		t.Errorf("dissociation τ (%v) below lineage τ (%v)", dissTau, linTau)
	}
}

func TestExtraExactMethodsQuick(t *testing.T) {
	cfg := QuickConfig()
	tab := ExtraExactMethods(cfg)
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d, want 3 patterns", len(tab.Rows))
	}
	for _, row := range tab.Rows {
		if row[2] == "" {
			t.Errorf("empty DPLL cell in %v", row)
		}
	}
}
