package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"lapushdb/internal/core"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/mc"
	"lapushdb/internal/workload"
)

// tpchMethods is the series order of Figures 5e–5h.
var tpchMethods = []string{"Diss", "Diss+Opt3", "SampleSearch", "MC(1k)", "Lineage query", "Standard SQL"}

// tpchPoint is one measurement of Figures 5e–5h: the query parameters,
// the maximum lineage size, and seconds per method ("-" when exact
// inference exceeded its budget, as the paper's missing SampleSearch
// points do).
type tpchPoint struct {
	dollar1 int
	pattern string
	maxLin  int
	times   map[string]string
}

// runTPCHPoint measures all six methods for one ($1, $2) setting.
func runTPCHPoint(tp *workload.TPCH, dollar1 int, pattern string, mcSamples int, exactBudget int, seed int64) tpchPoint {
	db := tp.DB
	q := tp.Query(dollar1, pattern)
	pt := tpchPoint{dollar1: dollar1, pattern: pattern, times: map[string]string{}}

	// Diss: the two minimal plans evaluated individually.
	plans := core.MinimalPlans(q, nil)
	pt.times["Diss"] = fmt.Sprintf("%.4f", timeIt(func() {
		engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true})
	}))
	// Diss+Opt3: with the deterministic semi-join reduction.
	pt.times["Diss+Opt3"] = fmt.Sprintf("%.4f", timeIt(func() {
		engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
	}))
	// Lineage query: the minimum work of any external probabilistic
	// method.
	var lin *engine.Lineage
	pt.times["Lineage query"] = fmt.Sprintf("%.4f", timeIt(func() {
		lin = engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
	}))
	pt.maxLin = lin.MaxSize()
	// SampleSearch (exact WMC on the lineage), including the lineage
	// retrieval as in the paper's accounting.
	okExact := true
	exactSecs := timeIt(func() {
		l := engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
		for i := 0; i < l.Len() && okExact; i++ {
			if _, err := exact.ProbBudget(l.Clauses(i), db.VarProbs(), exactBudget); err != nil {
				okExact = false
			}
		}
	})
	if okExact {
		pt.times["SampleSearch"] = fmt.Sprintf("%.4f", exactSecs)
	} else {
		pt.times["SampleSearch"] = "-"
	}
	// MC(1k), again including lineage retrieval.
	rng := rand.New(rand.NewSource(seed))
	pt.times["MC(1k)"] = fmt.Sprintf("%.4f", timeIt(func() {
		l := engine.EvalLineage(db, q, engine.SemiJoinReduce(db, q))
		for i := 0; i < l.Len(); i++ {
			mc.Estimate(l.Clauses(i), db.VarProbs(), mcSamples, rng)
		}
	}))
	// Standard SQL: deterministic set-semantics evaluation.
	pt.times["Standard SQL"] = fmt.Sprintf("%.4f", timeIt(func() {
		engine.EvalDeterministic(db, q)
	}))
	return pt
}

// dollar1Sweep returns the $1 values for a given supplier count,
// mirroring the paper's 500..10k sweep proportionally.
func dollar1Sweep(suppliers int) []int {
	fracs := []float64{0.05, 0.1, 0.25, 0.5, 1.0}
	out := make([]int, len(fracs))
	for i, f := range fracs {
		out[i] = int(f * float64(suppliers))
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

func fig5eg(cfg Config, id, pattern string) *Table {
	t := &Table{ID: id,
		Title:  fmt.Sprintf("TPC-H query time [sec] vs $1, $2 = '%s'", pattern),
		Header: append([]string{"$1", "max[lin]"}, tpchMethods...)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	for _, d1 := range dollar1Sweep(tp.Suppliers) {
		pt := runTPCHPoint(tp, d1, pattern, 1000, exactBudgetFor(cfg), cfg.Seed)
		row := []any{d1, pt.maxLin}
		for _, m := range tpchMethods {
			row = append(row, pt.times[m])
		}
		t.Add(row...)
	}
	return t
}

// exactBudgetFor bounds exact inference so large-lineage points give up
// (reported as "-") instead of hanging, as in the paper.
func exactBudgetFor(cfg Config) int {
	return 2_000_000
}

// Fig5e reproduces Figure 5e: $2 = '%red%green%' (small lineages; exact
// inference feasible).
func Fig5e(cfg Config) *Table { return fig5eg(cfg, "Figure 5e", "%red%green%") }

// Fig5f reproduces Figure 5f: $2 = '%red%' (medium lineages).
func Fig5f(cfg Config) *Table { return fig5eg(cfg, "Figure 5f", "%red%") }

// Fig5g reproduces Figure 5g: $2 = '%' (large lineages; exact inference
// infeasible, dissociation still fast).
func Fig5g(cfg Config) *Table { return fig5eg(cfg, "Figure 5g", "%") }

// Fig5h reproduces Figure 5h: the same six series as 5e–5g plotted
// against the maximum lineage size.
func Fig5h(cfg Config) *Table {
	t := &Table{ID: "Figure 5h",
		Title:  "TPC-H query time [sec] vs max lineage size (combining 5e–5g)",
		Header: append([]string{"max[lin]", "$2", "$1"}, tpchMethods...)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	var pts []tpchPoint
	for _, pattern := range []string{"%red%green%", "%red%", "%"} {
		for _, d1 := range dollar1Sweep(tp.Suppliers) {
			pts = append(pts, runTPCHPoint(tp, d1, pattern, 1000, exactBudgetFor(cfg), cfg.Seed))
		}
	}
	sort.Slice(pts, func(i, j int) bool { return pts[i].maxLin < pts[j].maxLin })
	for _, pt := range pts {
		row := []any{pt.maxLin, pt.pattern, pt.dollar1}
		for _, m := range tpchMethods {
			row = append(row, pt.times[m])
		}
		t.Add(row...)
	}
	return t
}
