package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/mc"
	"lapushdb/internal/plan"
	"lapushdb/internal/rank"
	"lapushdb/internal/workload"
)

// rankingRun holds everything needed to score one experiment instance:
// the ground truth and the competing rankings, aligned by answer index.
type rankingRun struct {
	keys    []string
	gt      []float64
	diss    []float64
	linSize []float64
	clauses [][][]int32
	probs   []float64
	// avgPaTop10 is the mean ground-truth probability of the top-10
	// answers; maxPa the maximum over all answers.
	avgPaTop10 float64
	maxPa      float64
}

// newRankingRun evaluates ground truth (exact), dissociation, and
// lineage size for the query over db. It returns nil if exact inference
// exceeds the budget.
func newRankingRun(db *engine.DB, q *cq.Query, budget int) *rankingRun {
	reduced := engine.SemiJoinReduce(db, q)
	lin := engine.EvalLineage(db, q, reduced)
	if lin.Len() == 0 {
		return nil
	}
	r := &rankingRun{probs: db.VarProbs()}
	for i := 0; i < lin.Len(); i++ {
		p, err := exact.ProbBudget(lin.Clauses(i), r.probs, budget)
		if err != nil {
			return nil
		}
		r.keys = append(r.keys, lineageKey(lin, i))
		r.gt = append(r.gt, p)
		r.linSize = append(r.linSize, float64(lin.Size(i)))
		r.clauses = append(r.clauses, lin.Clauses(i))
	}
	// Dissociation scores aligned to the lineage's answer order.
	plans := core.MinimalPlans(q, nil)
	res := engine.EvalPlans(db, q, plans, engine.Options{ReuseSubplans: true, SemiJoin: true})
	r.diss = alignScores(db, res, r.keys)
	// Ground-truth statistics.
	sorted := append([]float64(nil), r.gt...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	top := sorted
	if len(top) > 10 {
		top = top[:10]
	}
	sum := 0.0
	for _, p := range top {
		sum += p
	}
	r.avgPaTop10 = sum / float64(len(top))
	r.maxPa = sorted[0]
	return r
}

func lineageKey(lin *engine.Lineage, i int) string {
	b := make([]byte, 0, 16)
	for _, v := range lin.Key(i) {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

func resultKeyAt(res *engine.Result, i int) string {
	b := make([]byte, 0, 16)
	for _, v := range res.Row(i) {
		u := uint64(v)
		b = append(b, byte(u), byte(u>>8), byte(u>>16), byte(u>>24), byte(u>>32), byte(u>>40), byte(u>>48), byte(u>>56))
	}
	return string(b)
}

func alignScores(db *engine.DB, res *engine.Result, keys []string) []float64 {
	m := map[string]float64{}
	for i := 0; i < res.Len(); i++ {
		m[resultKeyAt(res, i)] = res.Score(i)
	}
	out := make([]float64, len(keys))
	for i, k := range keys {
		out[i] = m[k]
	}
	return out
}

// mcScores estimates every answer with MC(samples).
func (r *rankingRun) mcScores(samples int, rng *rand.Rand) []float64 {
	out := make([]float64, len(r.clauses))
	for i, cs := range r.clauses {
		out[i] = mc.Estimate(cs, r.probs, samples, rng)
	}
	return out
}

// apDiss, apLineage, apOf score rankings against the ground truth.
func (r *rankingRun) apDiss() float64    { return rank.AveragePrecision(r.gt, r.diss, 10) }
func (r *rankingRun) apLineage() float64 { return rank.AveragePrecision(r.gt, r.linSize, 10) }
func (r *rankingRun) apOf(scores []float64) float64 {
	return rank.AveragePrecision(r.gt, scores, 10)
}

// mcSampleCounts is the x-axis of Figure 5i.
var mcSampleCounts = []int{10, 30, 100, 300, 1000, 3000, 10000}

// Fig5i reproduces Figure 5i (Result 3): MAP@10 of MC as a function of
// the number of samples, against the flat lines of dissociation and
// ranking by lineage size. Only instances with avg[pa] of the top 10 in
// (0.1, 0.9) count, as in the paper.
func Fig5i(cfg Config) *Table {
	t := &Table{ID: "Figure 5i",
		Title:  "MAP@10 vs number of MC samples ($2 = '%red%green%'); Diss and lineage-size as flat series",
		Header: []string{"series", "MAP@10", "stddev", "#runs"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	var dissAPs, linAPs []float64
	mcAPs := map[int][]float64{}
	for rep := 0; rep < cfg.Reps; rep++ {
		pimax := 0.2 + 0.8*float64(rep%5)/4 // sweep pimax in [0.2, 1.0]
		workload.AssignProbs(tp.DB, "uniform", pimax, rng)
		q := tp.Query(tp.Suppliers, "%red%green%")
		run := newRankingRun(tp.DB, q, 5_000_000)
		if run == nil || run.avgPaTop10 <= 0.1 || run.avgPaTop10 >= 0.9 {
			continue
		}
		dissAPs = append(dissAPs, run.apDiss())
		linAPs = append(linAPs, run.apLineage())
		for _, x := range mcSampleCounts {
			for mcRep := 0; mcRep < 3; mcRep++ {
				mcAPs[x] = append(mcAPs[x], run.apOf(run.mcScores(x, rng)))
			}
		}
	}
	t.Add("Dissociation", rank.MAP(dissAPs), rank.Stddev(dissAPs), len(dissAPs))
	t.Add("Lineage size", rank.MAP(linAPs), rank.Stddev(linAPs), len(linAPs))
	for _, x := range mcSampleCounts {
		t.Add(fmt.Sprintf("MC(%d)", x), rank.MAP(mcAPs[x]), rank.Stddev(mcAPs[x]), len(mcAPs[x]))
	}
	t.Add("Random baseline", rank.RandomAP(workload.Nations, 10), 0.0, 0)
	return t
}

// paBuckets are the avg[pa] bins of Figure 5j's log-scaled x-axis.
var paBuckets = []struct {
	name string
	lo   float64
	hi   float64
}{
	{"avg[pa] < 0.5", 0, 0.5},
	{"0.5 – 0.9", 0.5, 0.9},
	{"0.9 – 0.99", 0.9, 0.99},
	{"0.99 – 0.999", 0.99, 0.999},
	{"> 0.999", 0.999, 1.0000001},
}

// Fig5j reproduces Figure 5j (Result 4): MAP@10 as a function of the
// average ground-truth probability of the top-10 answers. MC degrades
// towards the random baseline as avg[pa] approaches 0 or 1; dissociation
// stays near 1.
func Fig5j(cfg Config) *Table {
	series := []string{"Dissociation", "Lineage", "MC(10)", "MC(100)", "MC(1k)", "MC(10k)"}
	t := &Table{ID: "Figure 5j",
		Title:  "MAP@10 vs avg[pa] of the top-10 answers",
		Header: append([]string{"bucket", "#runs"}, series...)}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	type acc map[string][]float64
	buckets := make([]acc, len(paBuckets))
	for i := range buckets {
		buckets[i] = acc{}
	}
	mcX := map[string]int{"MC(10)": 10, "MC(100)": 100, "MC(1k)": 1000, "MC(10k)": 10000}
	for rep := 0; rep < cfg.Reps*3; rep++ {
		pimax := 0.05 + 0.95*float64(rep%7)/6
		workload.AssignProbs(tp.DB, "uniform", pimax, rng)
		pattern := []string{"%red%green%", "%red%"}[rep%2]
		q := tp.Query(tp.Suppliers, pattern)
		run := newRankingRun(tp.DB, q, 5_000_000)
		if run == nil || run.maxPa > 0.999999 {
			continue
		}
		bi := -1
		for i, b := range paBuckets {
			if run.avgPaTop10 >= b.lo && run.avgPaTop10 < b.hi {
				bi = i
				break
			}
		}
		if bi < 0 {
			continue
		}
		buckets[bi]["Dissociation"] = append(buckets[bi]["Dissociation"], run.apDiss())
		buckets[bi]["Lineage"] = append(buckets[bi]["Lineage"], run.apLineage())
		for name, x := range mcX {
			buckets[bi][name] = append(buckets[bi][name], run.apOf(run.mcScores(x, rng)))
		}
	}
	for i, b := range paBuckets {
		row := []any{b.name, len(buckets[i]["Dissociation"])}
		for _, s := range series {
			if vals := buckets[i][s]; len(vals) > 0 {
				row = append(row, rank.MAP(vals))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

// Fig5k reproduces Figure 5k (Result 5): the quality of ranking by
// lineage size as a function of the maximum lineage size, under four
// probability assignments: pi = 0.1 and pi = 0.5 (all tuples equal) vs
// avg[pi] = 0.1 and avg[pi] = 0.5 (uniformly random). Equal input
// probabilities make lineage size a good ranking; random ones do not.
func Fig5k(cfg Config) *Table {
	modes := []struct {
		name, kind string
		pimax      float64
	}{
		{"pi=0.1", "const", 0.1},
		{"pi=0.5", "const", 0.5},
		{"avg[pi]=0.1", "uniform", 0.2},
		{"avg[pi]=0.5", "uniform", 1.0},
	}
	t := &Table{ID: "Figure 5k",
		Title:  "MAP@10 of ranking by lineage size vs max lineage size",
		Header: []string{"$2", "$1", "max[lin]", "pi=0.1", "pi=0.5", "avg[pi]=0.1", "avg[pi]=0.5"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	tp := workload.NewTPCH(cfg.Scale, 0.5, rng)
	for _, pattern := range []string{"%red%green%", "%red%"} {
		for _, d1 := range []int{tp.Suppliers / 2, tp.Suppliers} {
			q := tp.Query(d1, pattern)
			row := []any{pattern, d1}
			maxLin := 0
			var maps []any
			for _, m := range modes {
				var aps []float64
				for rep := 0; rep < cfg.Reps; rep++ {
					workload.AssignProbs(tp.DB, m.kind, m.pimax, rng)
					run := newRankingRun(tp.DB, q, 5_000_000)
					if run == nil || run.maxPa > 0.999999 {
						continue
					}
					if len(run.clauses) > 0 {
						lin := engine.EvalLineage(tp.DB, q, engine.SemiJoinReduce(tp.DB, q))
						if lin.MaxSize() > maxLin {
							maxLin = lin.MaxSize()
						}
					}
					aps = append(aps, run.apLineage())
					if m.kind == "const" {
						break // the lineage ranking is identical across reps
					}
				}
				if len(aps) > 0 {
					maps = append(maps, rank.MAP(aps))
				} else {
					maps = append(maps, "-")
				}
			}
			row = append(row, maxLin)
			row = append(row, maps...)
			t.Add(row...)
		}
	}
	return t
}

// FanoutDB generates the controlled-dissociation database used for
// Figures 5l–5p: the TPC-H query shape Q(a) :- S(s,a), PS(s,u), P(u,n)
// where a nation has on average suppPerNation suppliers (drawn from
// 1..2·suppPerNation−1, so nations differ in lineage size and ranking by
// lineage size is non-trivial, as in the paper's TPC-H data), each
// supplier linked to exactly partsPerSupp parts drawn from a per-nation
// pool of poolSize parts. The plan that dissociates Supplier then has
// avg[d] = partsPerSupp, and the plan that dissociates Part has
// avg[d] ≈ suppliers·partsPerSupp/poolSize.
func FanoutDB(suppPerNation, partsPerSupp, poolSize int, pimax float64, rng *rand.Rand) *workload.TPCH {
	db := engine.NewDB()
	sup := db.CreateRelation("Supplier", []string{"s", "a"})
	ps := db.CreateRelation("Partsupp", []string{"s", "u"})
	part := db.CreateRelation("Part", []string{"u", "n"})
	name := db.Intern("part")
	s := 1
	for a := 0; a < workload.Nations; a++ {
		base := a * poolSize
		nSupp := 1 + rng.Intn(2*suppPerNation-1)
		for i := 0; i < nSupp; i++ {
			sup.Insert([]engine.Value{engine.Value(s), engine.Value(a)}, rng.Float64()*pimax)
			seen := map[int]bool{}
			for j := 0; j < partsPerSupp; {
				u := base + rng.Intn(poolSize)
				if seen[u] {
					continue
				}
				seen[u] = true
				ps.Insert([]engine.Value{engine.Value(s), engine.Value(u)}, rng.Float64()*pimax)
				j++
			}
			s++
		}
	}
	for a := 0; a < workload.Nations; a++ {
		for u := a * poolSize; u < (a+1)*poolSize; u++ {
			part.Insert([]engine.Value{engine.Value(u), name}, rng.Float64()*pimax)
		}
	}
	return &workload.TPCH{DB: db, Suppliers: s - 1, Parts: workload.Nations * poolSize}
}

// planDissociating returns the minimal plan whose dissociation adds
// variables to the given relation.
func planDissociating(q *cq.Query, rel string) plan.Node {
	for _, p := range core.MinimalPlans(q, nil) {
		if plan.DeltaOf(q, p).ExtraOf(rel).Len() > 0 {
			return p
		}
	}
	return nil
}

// Fig5l reproduces Figure 5l (Result 6): MAP@10 of ranking by a single
// plan as a function of avg[d] (the mean number of dissociations per
// tuple of the dissociated table), for several avg[pi] levels. Quality
// degrades with both avg[d] and avg[pi].
func Fig5l(cfg Config) *Table {
	pimaxes := []float64{0.1, 0.5, 1.0} // avg[pi] = 0.05, 0.25, 0.5
	t := &Table{ID: "Figure 5l",
		Title:  "MAP@10 of single-plan dissociation vs avg[d], per avg[pi]",
		Header: []string{"avg[d]", "avg[pi]=0.05", "avg[pi]=0.25", "avg[pi]=0.5"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range []int{1, 2, 3, 4, 5} {
		row := []any{d}
		for _, pimax := range pimaxes {
			var aps []float64
			for rep := 0; rep < cfg.Reps; rep++ {
				tp := FanoutDB(4, d, 8, pimax, rng)
				q := tp.Query(tp.Suppliers, "%")
				// Rank by the plan that dissociates Supplier: every
				// supplier splits into its d parts.
				p := planDissociating(q, "Supplier")
				if p == nil {
					continue
				}
				run := newRankingRun(tp.DB, q, 5_000_000)
				if run == nil || run.maxPa > 0.999999 {
					continue
				}
				res := engine.NewEvaluator(tp.DB, q, engine.Options{ReuseSubplans: true}).Eval(p)
				aps = append(aps, run.apOf(alignScores(tp.DB, res, run.keys)))
			}
			if len(aps) > 0 {
				row = append(row, rank.MAP(aps))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

// Fig5m reproduces Figure 5m (Result 6): the regime map of which method
// wins — dissociation or MC(x) — over the (avg[d], avg[pi]) plane. Each
// cell reports "Diss" when dissociation's MAP is at least MC(10k)'s, or
// the smallest sample count x ∈ {1k, 3k, 10k} whose MC MAP beats
// dissociation.
func Fig5m(cfg Config) *Table {
	t := &Table{ID: "Figure 5m",
		Title:  "winner per (avg[d], avg[pi]) cell: Diss, or smallest MC(x) beating it",
		Header: []string{"avg[d]", "avg[pi]=0.05", "avg[pi]=0.25", "avg[pi]=0.5"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, d := range []int{1, 2, 3, 4, 5} {
		row := []any{d}
		for _, pimax := range []float64{0.1, 0.5, 1.0} {
			var dissAPs []float64
			mcAPs := map[int][]float64{}
			for rep := 0; rep < cfg.Reps; rep++ {
				tp := FanoutDB(4, d, 8, pimax, rng)
				q := tp.Query(tp.Suppliers, "%")
				p := planDissociating(q, "Supplier")
				run := newRankingRun(tp.DB, q, 5_000_000)
				if run == nil || p == nil || run.maxPa > 0.999999 {
					continue
				}
				res := engine.NewEvaluator(tp.DB, q, engine.Options{ReuseSubplans: true}).Eval(p)
				dissAPs = append(dissAPs, run.apOf(alignScores(tp.DB, res, run.keys)))
				for _, x := range []int{1000, 3000, 10000} {
					mcAPs[x] = append(mcAPs[x], run.apOf(run.mcScores(x, rng)))
				}
			}
			if len(dissAPs) == 0 {
				row = append(row, "-")
				continue
			}
			diss := rank.MAP(dissAPs)
			winner := "Diss"
			for _, x := range []int{1000, 3000, 10000} {
				if rank.MAP(mcAPs[x]) > diss {
					winner = fmt.Sprintf("MC(%d)", x)
					break
				}
			}
			row = append(row, winner)
		}
		t.Add(row...)
	}
	return t
}

// compiledGT holds every answer's lineage compiled to an arithmetic
// circuit (knowledge compilation), so the exact ranking can be
// re-evaluated under scaled probability vectors in linear time — the
// workload of Figures 5n–5p, which score the same lineages for many
// scaling factors f.
type compiledGT struct {
	keys     []string
	circuits map[string]*exact.Circuit
	probs    []float64
}

// compileGT compiles the lineage of every answer; nil when exact
// compilation exceeds the budget.
func compileGT(db *engine.DB, q *cq.Query, keys []string, budget int) *compiledGT {
	reduced := engine.SemiJoinReduce(db, q)
	lin := engine.EvalLineage(db, q, reduced)
	c := &compiledGT{keys: keys, circuits: map[string]*exact.Circuit{}, probs: db.VarProbs()}
	for i := 0; i < lin.Len(); i++ {
		circ, err := exact.Compile(lin.Clauses(i), budget)
		if err != nil {
			return nil
		}
		c.circuits[lineageKey(lin, i)] = circ
	}
	return c
}

// scores evaluates the compiled circuits under probabilities scaled by
// f, aligned to the instance's answer keys.
func (c *compiledGT) scores(f float64) []float64 {
	scaled := make([]float64, len(c.probs))
	for i, p := range c.probs {
		scaled[i] = p * f
	}
	out := make([]float64, len(c.keys))
	for i, k := range c.keys {
		if circ, ok := c.circuits[k]; ok {
			out[i] = circ.Eval(scaled)
		}
	}
	return out
}

// scaledGTScores computes, for one instance, the exact probabilities on
// a probability-scaled copy of the database, aligned to keys (used by
// tests and one-shot callers; the figure drivers compile once and reuse).
func scaledGTScores(db *engine.DB, q *cq.Query, keys []string, f float64, budget int) []float64 {
	c := compileGT(db, q, keys, budget)
	if c == nil {
		return nil
	}
	return c.scores(f)
}

func scaledDissScores(db *engine.DB, q *cq.Query, keys []string, f float64) []float64 {
	scaled := db.Clone()
	scaled.ScaleProbs(f)
	res := engine.EvalPlans(scaled, q, core.MinimalPlans(q, nil), engine.Options{ReuseSubplans: true, SemiJoin: true})
	return alignScores(scaled, res, keys)
}

var scaleFactors = []float64{1.0, 0.5, 0.2, 0.1, 0.05, 0.01}

// Fig5n reproduces Figure 5n (Result 7): MAP@10 of the exact ranking on
// a down-scaled database against the unscaled ground truth, as a
// function of the scaling factor f, for avg[pi] ∈ {0.1, 0.4, 0.5}.
func Fig5n(cfg Config) *Table {
	pimaxes := []float64{0.2, 0.8, 1.0} // avg[pi] = 0.1, 0.4, 0.5
	t := &Table{ID: "Figure 5n",
		Title:  "MAP@10 of exact ranking on scaled DB vs unscaled GT, by scaling factor f",
		Header: []string{"f", "avg[pi]=0.1", "avg[pi]=0.4", "avg[pi]=0.5"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pre-generate instances per pimax level (avg[d] ≈ 3 as in the
	// paper).
	type inst struct {
		run *rankingRun
		gt  *compiledGT
	}
	insts := map[float64][]inst{}
	for _, pimax := range pimaxes {
		for rep := 0; rep < cfg.Reps; rep++ {
			tp := FanoutDB(4, 3, 8, pimax, rng)
			q := tp.Query(tp.Suppliers, "%")
			run := newRankingRun(tp.DB, q, 5_000_000)
			if run == nil || run.maxPa > 0.999999 {
				continue
			}
			gt := compileGT(tp.DB, q, run.keys, 5_000_000)
			if gt == nil {
				continue
			}
			insts[pimax] = append(insts[pimax], inst{run, gt})
		}
	}
	for _, f := range scaleFactors {
		row := []any{fmt.Sprintf("%.2f", f)}
		for _, pimax := range pimaxes {
			var aps []float64
			for _, in := range insts[pimax] {
				aps = append(aps, in.run.apOf(in.gt.scores(f)))
			}
			if len(aps) > 0 {
				row = append(row, rank.MAP(aps))
			} else {
				row = append(row, "-")
			}
		}
		t.Add(row...)
	}
	return t
}

// Fig5o reproduces Figure 5o (Result 7): the decomposition of ranking
// quality at avg[pi] = 0.5 — random baseline (0.220), ranking by lineage
// size, ranking by relative input weights (exact on a strongly scaled
// database), and exact inference (1.0).
func Fig5o(cfg Config) *Table {
	t := &Table{ID: "Figure 5o",
		Title:  "ranking quality decomposition at avg[pi] = 0.5",
		Header: []string{"method", "MAP@10"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var linAPs, weightAPs []float64
	for rep := 0; rep < cfg.Reps; rep++ {
		tp := FanoutDB(4, 3, 8, 1.0, rng)
		q := tp.Query(tp.Suppliers, "%")
		run := newRankingRun(tp.DB, q, 5_000_000)
		if run == nil || run.maxPa > 0.999999 {
			continue
		}
		linAPs = append(linAPs, run.apLineage())
		if scores := scaledGTScores(tp.DB, q, run.keys, 0.01, 5_000_000); scores != nil {
			weightAPs = append(weightAPs, run.apOf(scores))
		}
	}
	t.Add("Random baseline", rank.RandomAP(workload.Nations, 10))
	t.Add("Ranking by lineage size", rank.MAP(linAPs))
	t.Add("Ranking by relative input weights (f -> 0)", rank.MAP(weightAPs))
	t.Add("Exact probabilistic inference (GT)", 1.0)
	return t
}

// Fig5p reproduces Figure 5p (Result 8): for a scaling-factor sweep,
// the MAP of (i) scaled dissociation against the scaled ground truth,
// (ii) scaled dissociation against the original ground truth, (iii) the
// scaled ground truth against the original, and (iv) lineage size
// against the scaled ground truth.
func Fig5p(cfg Config) *Table {
	t := &Table{ID: "Figure 5p",
		Title:  "scaled dissociation / scaled GT / lineage size, MAP@10 vs f (avg[pi] = 0.5)",
		Header: []string{"f", "ScaledDiss vs ScaledGT", "ScaledDiss vs GT", "ScaledGT vs GT", "Lineage vs ScaledGT"}}
	rng := rand.New(rand.NewSource(cfg.Seed))
	type inst struct {
		tp  *workload.TPCH
		q   *cq.Query
		run *rankingRun
		gt  *compiledGT
	}
	var insts []inst
	for rep := 0; rep < cfg.Reps; rep++ {
		tp := FanoutDB(4, 3, 8, 1.0, rng)
		q := tp.Query(tp.Suppliers, "%")
		run := newRankingRun(tp.DB, q, 5_000_000)
		if run == nil || run.maxPa > 0.999999 {
			continue
		}
		gt := compileGT(tp.DB, q, run.keys, 5_000_000)
		if gt == nil {
			continue
		}
		insts = append(insts, inst{tp, q, run, gt})
	}
	for _, f := range scaleFactors {
		var a, b, c, d []float64
		for _, in := range insts {
			sgt := in.gt.scores(f)
			sdiss := scaledDissScores(in.tp.DB, in.q, in.run.keys, f)
			a = append(a, rank.AveragePrecision(sgt, sdiss, 10))
			b = append(b, rank.AveragePrecision(in.run.gt, sdiss, 10))
			c = append(c, rank.AveragePrecision(in.run.gt, sgt, 10))
			d = append(d, rank.AveragePrecision(sgt, in.run.linSize, 10))
		}
		t.Add(fmt.Sprintf("%.2f", f), rank.MAP(a), rank.MAP(b), rank.MAP(c), rank.MAP(d))
	}
	return t
}
