package exp

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/workload"
)

// EvalMode is one evaluation strategy of the run-time experiments.
type EvalMode int

const (
	// ModeAllPlans evaluates every minimal plan separately (one SQL
	// statement per plan in the paper) and takes the per-answer min.
	ModeAllPlans EvalMode = iota
	// ModeOpt1 evaluates the single merged plan (Algorithm 2).
	ModeOpt1
	// ModeOpt12 adds reuse of common subplans (views).
	ModeOpt12
	// ModeOpt123 adds the deterministic semi-join reduction.
	ModeOpt123
	// ModeDeterministic is the non-probabilistic baseline ("standard
	// SQL"): set-semantics evaluation of the same query.
	ModeDeterministic
)

// String names the mode as in the paper's legends.
func (m EvalMode) String() string {
	switch m {
	case ModeAllPlans:
		return "All plans"
	case ModeOpt1:
		return "Opt1"
	case ModeOpt12:
		return "Opt1-2"
	case ModeOpt123:
		return "Opt1-3"
	case ModeDeterministic:
		return "Standard SQL"
	}
	return "?"
}

// RunModes is the series order of Figures 5a–5d.
var RunModes = []EvalMode{ModeAllPlans, ModeOpt1, ModeOpt12, ModeOpt123, ModeDeterministic}

// Evaluate runs one strategy over a database and query, returning the
// result (nil for the deterministic mode's probabilities) and the number
// of answers.
func Evaluate(db *engine.DB, q *cq.Query, mode EvalMode) int {
	switch mode {
	case ModeAllPlans:
		return engine.EvalPlans(db, q, core.MinimalPlans(q, nil), engine.Options{}).Len()
	case ModeOpt1:
		sp := core.SinglePlan(q, nil)
		return engine.NewEvaluator(db, q, engine.Options{}).Eval(sp).Len()
	case ModeOpt12:
		sp := core.SinglePlan(q, nil)
		return engine.NewEvaluator(db, q, engine.Options{ReuseSubplans: true}).Eval(sp).Len()
	case ModeOpt123:
		sp := core.SinglePlan(q, nil)
		return engine.NewEvaluator(db, q, engine.Options{ReuseSubplans: true, SemiJoin: true}).Eval(sp).Len()
	case ModeDeterministic:
		return engine.EvalDeterministic(db, q).Len()
	}
	panic("exp: unknown mode")
}

// ChainDomain returns the domain size N that keeps the k-chain answer
// cardinality around the paper's 20–50 range for n tuples per table:
// the expected number of distinct (x0, xk) pairs connected by a path is
// ≈ n · (n/N)^(k-1), solved for ≈ 30 answers.
func ChainDomain(k, n int) int {
	target := 30.0
	ratio := math.Pow(target/float64(n), 1/float64(k-1))
	N := int(float64(n) / ratio)
	if N < 2 {
		N = 2
	}
	return N
}

// StarDomain returns the domain size N that keeps the k-star answer
// probability high but below 1: the expected number of full matches is
// ≈ n · (n/N)^k, solved for ≈ 20 matches.
func StarDomain(k, n int) int {
	target := 20.0
	ratio := math.Pow(target/float64(n), 1/float64(k))
	N := int(float64(n) / ratio)
	if N <= n {
		N = n + 1
	}
	return N
}

// timeIt runs f once and returns the wall-clock seconds.
func timeIt(f func()) float64 {
	start := time.Now()
	f()
	return time.Since(start).Seconds()
}

// runTimeSweep measures every mode over a database-size sweep.
func runTimeSweep(t *Table, kind string, k int, ns []int, seed int64) {
	for _, n := range ns {
		rng := rand.New(rand.NewSource(seed))
		var db *engine.DB
		var q *cq.Query
		if kind == "chain" {
			db, q = workload.Chain(k, n, ChainDomain(k, n), 0.5, rng)
		} else {
			db, q = workload.Star(k, n, StarDomain(k, n), 0.5, rng)
		}
		row := []any{n}
		for _, mode := range RunModes {
			m := mode
			secs := timeIt(func() { Evaluate(db, q, m) })
			row = append(row, fmt.Sprintf("%.4f", secs))
		}
		t.Add(row...)
	}
}

// sizesUpTo returns the decade steps 100, 1k, 10k, ... capped at maxN.
func sizesUpTo(maxN int) []int {
	var ns []int
	for n := 100; n <= maxN; n *= 10 {
		ns = append(ns, n)
	}
	if len(ns) == 0 {
		ns = []int{maxN}
	}
	return ns
}

// Fig5a reproduces Figure 5a: 4-chain query time vs tuples per table.
func Fig5a(cfg Config) *Table {
	t := &Table{ID: "Figure 5a", Title: "4-chain query time [sec] vs tuples per table",
		Header: header5ad()}
	runTimeSweep(t, "chain", 4, sizesUpTo(cfg.MaxN), cfg.Seed)
	return t
}

// Fig5b reproduces Figure 5b: 7-chain query time vs tuples per table
// (132 minimal plans).
func Fig5b(cfg Config) *Table {
	t := &Table{ID: "Figure 5b", Title: "7-chain query time [sec] vs tuples per table",
		Header: header5ad()}
	runTimeSweep(t, "chain", 7, sizesUpTo(cfg.MaxN), cfg.Seed)
	return t
}

// Fig5c reproduces Figure 5c: 2-star query time vs tuples per table.
func Fig5c(cfg Config) *Table {
	t := &Table{ID: "Figure 5c", Title: "2-star query time [sec] vs tuples per table",
		Header: header5ad()}
	runTimeSweep(t, "star", 2, sizesUpTo(cfg.MaxN), cfg.Seed)
	return t
}

// Fig5d reproduces Figure 5d: k-chain query time vs query size k at a
// fixed database size, together with the number of minimal plans (the
// right axis of the paper's figure).
func Fig5d(cfg Config) *Table {
	t := &Table{ID: "Figure 5d", Title: "k-chain query time [sec] vs query size k",
		Header: append([]string{"k", "#MP"}, modeNames()...)}
	n := cfg.MaxN / 10
	if n < 100 {
		n = 100
	}
	maxK := 8
	for k := 2; k <= maxK; k++ {
		rng := rand.New(rand.NewSource(cfg.Seed))
		db, q := workload.Chain(k, n, ChainDomain(k, n), 0.5, rng)
		row := []any{k, len(core.MinimalPlans(q, nil))}
		for _, mode := range RunModes {
			m := mode
			secs := timeIt(func() { Evaluate(db, q, m) })
			row = append(row, fmt.Sprintf("%.4f", secs))
		}
		t.Add(row...)
	}
	return t
}

func modeNames() []string {
	out := make([]string, len(RunModes))
	for i, m := range RunModes {
		out[i] = m.String()
	}
	return out
}

func header5ad() []string {
	return append([]string{"n"}, modeNames()...)
}
