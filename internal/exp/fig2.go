package exp

import (
	"lapushdb/internal/core"
	"lapushdb/internal/workload"
)

// Fig2 reproduces the table of Figure 2: the number of minimal plans,
// total plans, and total dissociations for k-star (k = 1..maxStar) and
// k-chain (k = 2..maxChain) queries. The paper reports stars up to k = 7
// and chains up to k = 8; pass smaller maxima for quick runs.
func Fig2(maxStar, maxChain int) *Table {
	t := &Table{
		ID:     "Figure 2",
		Title:  "number of minimal plans (#MP), total plans (#P), and dissociations (#∆)",
		Header: []string{"query", "k", "#MP", "#P", "#∆"},
	}
	for k := 1; k <= maxStar; k++ {
		q := workload.StarQuery(k)
		t.Add("star", k, len(core.MinimalPlans(q, nil)), len(core.AllPlans(q)), core.CountDissociations(q).String())
	}
	for k := 2; k <= maxChain; k++ {
		q := workload.ChainQuery(k)
		t.Add("chain", k, len(core.MinimalPlans(q, nil)), len(core.AllPlans(q)), core.CountDissociations(q).String())
	}
	return t
}
