// Package exp is the experiment harness: one driver per table/figure of
// the paper's evaluation (Section 5), each producing the same rows or
// series the paper reports. The drivers are shared by cmd/experiments
// (which prints them) and the repository's benchmarks.
//
// Experiments run at a configurable scale. The paper's absolute numbers
// came from PostgreSQL / SQL Server on a 1 GB TPC-H instance; this
// harness reproduces the *shape* of every result — which method wins, by
// roughly what factor, and where the crossovers are — on the in-memory
// engine.
package exp

import (
	"fmt"
	"strings"
)

// Config scales the experiments.
type Config struct {
	// Seed makes runs reproducible.
	Seed int64
	// Scale is the TPC-H scale factor for Setup 1 experiments (the paper
	// uses 1.0 ≈ 1 GB; 0.05 runs everything, including exact inference,
	// in seconds).
	Scale float64
	// Reps is the number of repetitions for ranking experiments.
	Reps int
	// MaxN caps the tuples-per-table axis of the Setup 2 run-time
	// experiments.
	MaxN int
}

// DefaultConfig returns a configuration that runs every experiment in
// minutes on a laptop.
func DefaultConfig() Config {
	return Config{Seed: 1, Scale: 0.05, Reps: 10, MaxN: 100_000}
}

// QuickConfig is small enough for unit tests and -short benchmarks.
func QuickConfig() Config {
	return Config{Seed: 1, Scale: 0.01, Reps: 3, MaxN: 1000}
}

// Table is one reproduced table or figure: a header and rows of
// formatted cells.
type Table struct {
	ID     string // e.g. "Figure 2"
	Title  string
	Header []string
	Rows   [][]string
}

// Add appends a row of stringified cells.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	return b.String()
}
