package cq

import (
	"testing"
)

// FuzzParse checks that the parser never panics and that every
// successfully parsed query survives a String/Parse round trip.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"q(z) :- R(z, x), S(x, y), T(y)",
		"q() :- R(x), S(x, y)",
		"Q(a) :- S(s, a), PS(s, u), P(u, n), s <= 1000, n like '%red%'",
		"q() :- R1('a', x1), R2(x2), R0(x1, x2)",
		"q(",
		"q() :- ",
		"q() :- R(x), R(x)",
		"q() :- R('unclosed",
		"1 + 2",
		"q(x) :- R(x), x >= 0, x != 3, x < 9, x > 1, x = 2",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		rendered := q.String()
		back, err := Parse(rendered)
		if err != nil {
			t.Fatalf("round trip failed: %q -> %q: %v", input, rendered, err)
		}
		if back.String() != rendered {
			t.Fatalf("round trip unstable: %q -> %q", rendered, back.String())
		}
	})
}

// FuzzAnalyses runs the structural analyses on every parseable input:
// none of them may panic, and basic coherence must hold.
func FuzzAnalyses(f *testing.F) {
	f.Add("q(z) :- R(z, x), S(x, y), T(y)")
	f.Add("q() :- A(x), B(y), M(x, y)")
	f.Add("q() :- R(x, x)")
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		comps := q.Components()
		if len(comps) < 1 {
			t.Fatal("no components")
		}
		total := 0
		for _, c := range comps {
			total += len(c.Atoms)
		}
		if total != len(q.Atoms) {
			t.Fatalf("components lost atoms: %d vs %d", total, len(q.Atoms))
		}
		if len(q.EVars()) <= 12 {
			for _, y := range q.MinCuts() {
				if !y.SubsetOf(NewVarSet(q.EVars()...)) {
					t.Fatalf("cut %v uses non-existential variables", y)
				}
			}
		}
		_ = q.IsHierarchical()
		_ = q.SeparatorVars()
	})
}
