package cq

import (
	"fmt"
	"strings"
	"unicode"
)

// Parse parses a query in the paper's datalog-style notation:
//
//	q(z) :- R(z, x), S(x, y), T(y)
//	Q(a) :- S(s, a), PS(s, u), P(u, n), s <= 1000, n like '%red%'
//
// Variables are lowercase identifiers; constants are single-quoted strings
// or bare numbers; a Boolean query has an empty head "q()". Comparison
// predicates may appear between or after atoms.
func Parse(input string) (*Query, error) {
	p := &parser{toks: lex(input)}
	q, err := p.parseQuery()
	if err != nil {
		return nil, fmt.Errorf("cq: parse %q: %w", input, err)
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// MustParse is Parse that panics on error, for tests and examples with
// literal queries.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(err)
	}
	return q
}

type tokKind int

const (
	tokIdent tokKind = iota
	tokString
	tokNumber
	tokLParen
	tokRParen
	tokComma
	tokTurnstile // :-
	tokOp        // <=, <, >=, >, =, !=
	tokEOF
	tokErr
)

type token struct {
	kind tokKind
	text string
}

func lex(s string) []token {
	var toks []token
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '(':
			toks = append(toks, token{tokLParen, "("})
			i++
		case c == ')':
			toks = append(toks, token{tokRParen, ")"})
			i++
		case c == ',':
			toks = append(toks, token{tokComma, ","})
			i++
		case c == ':' && i+1 < len(s) && s[i+1] == '-':
			toks = append(toks, token{tokTurnstile, ":-"})
			i += 2
		case c == '\'':
			j := i + 1
			for j < len(s) && s[j] != '\'' {
				j++
			}
			if j >= len(s) {
				toks = append(toks, token{tokErr, "unterminated string"})
				return toks
			}
			toks = append(toks, token{tokString, s[i+1 : j]})
			i = j + 1
		case c == '<' || c == '>' || c == '=':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, s[i : i+2]})
				i += 2
			} else {
				toks = append(toks, token{tokOp, string(c)})
				i++
			}
		case c == '!':
			if i+1 < len(s) && s[i+1] == '=' {
				toks = append(toks, token{tokOp, "!="})
				i += 2
			} else {
				toks = append(toks, token{tokErr, "'!' must be followed by '='"})
				return toks
			}
		case unicode.IsDigit(rune(c)) || (c == '-' && i+1 < len(s) && unicode.IsDigit(rune(s[i+1]))):
			j := i + 1
			for j < len(s) && (unicode.IsDigit(rune(s[j])) || s[j] == '.') {
				j++
			}
			toks = append(toks, token{tokNumber, s[i:j]})
			i = j
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i + 1
			for j < len(s) && (unicode.IsLetter(rune(s[j])) || unicode.IsDigit(rune(s[j])) || s[j] == '_') {
				j++
			}
			toks = append(toks, token{tokIdent, s[i:j]})
			i = j
		default:
			toks = append(toks, token{tokErr, fmt.Sprintf("unexpected character %q", c)})
			return toks
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.next()
	if t.kind == tokErr {
		return t, fmt.Errorf("%s", t.text)
	}
	if t.kind != k {
		return t, fmt.Errorf("expected %s, got %q", what, t.text)
	}
	return t, nil
}

func (p *parser) parseQuery() (*Query, error) {
	name, err := p.expect(tokIdent, "query name")
	if err != nil {
		return nil, err
	}
	q := &Query{Name: name.text}
	if _, err := p.expect(tokLParen, "'('"); err != nil {
		return nil, err
	}
	for p.peek().kind != tokRParen {
		if len(q.Head) > 0 {
			if _, err := p.expect(tokComma, "','"); err != nil {
				return nil, err
			}
		}
		v, err := p.expect(tokIdent, "head variable")
		if err != nil {
			return nil, err
		}
		q.Head = append(q.Head, Var(v.text))
	}
	p.next() // ')'
	if _, err := p.expect(tokTurnstile, "':-'"); err != nil {
		return nil, err
	}
	for {
		if err := p.parseBodyItem(q); err != nil {
			return nil, err
		}
		if p.peek().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if t := p.peek(); t.kind != tokEOF {
		return nil, fmt.Errorf("trailing input at %q", t.text)
	}
	return q, nil
}

// parseBodyItem parses one atom "R(x, y)" or one predicate "x <= 5" /
// "x like '%a%'".
func (p *parser) parseBodyItem(q *Query) error {
	id, err := p.expect(tokIdent, "relation symbol or variable")
	if err != nil {
		return err
	}
	switch t := p.peek(); {
	case t.kind == tokLParen:
		p.next()
		atom := Atom{Rel: id.text}
		for p.peek().kind != tokRParen {
			if len(atom.Args) > 0 {
				if _, err := p.expect(tokComma, "','"); err != nil {
					return err
				}
			}
			term, err := p.parseTerm()
			if err != nil {
				return err
			}
			atom.Args = append(atom.Args, term)
		}
		p.next() // ')'
		q.Atoms = append(q.Atoms, atom)
		return nil
	case t.kind == tokOp:
		p.next()
		val := p.next()
		if val.kind != tokNumber && val.kind != tokString {
			return fmt.Errorf("expected comparison constant, got %q", val.text)
		}
		q.Preds = append(q.Preds, Predicate{Var: Var(id.text), Op: CompareOp(t.text), Const: val.text})
		return nil
	case t.kind == tokIdent && strings.EqualFold(t.text, "like"):
		p.next()
		val, err := p.expect(tokString, "LIKE pattern")
		if err != nil {
			return err
		}
		q.Preds = append(q.Preds, Predicate{Var: Var(id.text), Op: OpLike, Const: val.text})
		return nil
	default:
		return fmt.Errorf("expected '(' or comparison after %q, got %q", id.text, t.text)
	}
}

func (p *parser) parseTerm() (Term, error) {
	t := p.next()
	switch t.kind {
	case tokIdent:
		// Convention: identifiers starting with a lowercase letter are
		// variables; atoms never take bare uppercase constants (quote them).
		return V(t.text), nil
	case tokString:
		return C(t.text), nil
	case tokNumber:
		return C(t.text), nil
	default:
		return Term{}, fmt.Errorf("expected term, got %q", t.text)
	}
}
