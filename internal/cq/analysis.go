package cq

import (
	"sort"
)

// IsHierarchical reports whether the query is hierarchical (Definition 1):
// for any two existential variables x, y, the sets of atoms containing them
// are nested or disjoint. Head variables are ignored — the test treats them
// as constants, which matches the evaluation of non-Boolean queries.
func (q *Query) IsHierarchical() bool {
	evars := q.EVars()
	// atomsOf[x] is the set of atom indices containing x.
	atomsOf := make(map[Var]map[int]bool, len(evars))
	for _, x := range evars {
		atomsOf[x] = map[int]bool{}
	}
	head := q.HeadSet()
	for i, a := range q.Atoms {
		for _, v := range a.Vars() {
			if !head.Has(v) {
				atomsOf[v][i] = true
			}
		}
	}
	for i := 0; i < len(evars); i++ {
		for j := i + 1; j < len(evars); j++ {
			ax, ay := atomsOf[evars[i]], atomsOf[evars[j]]
			if !nestedOrDisjoint(ax, ay) {
				return false
			}
		}
	}
	return true
}

func nestedOrDisjoint(a, b map[int]bool) bool {
	common, aOnly, bOnly := false, false, false
	for i := range a {
		if b[i] {
			common = true
		} else {
			aOnly = true
		}
	}
	for i := range b {
		if !a[i] {
			bOnly = true
		}
	}
	return !common || !aOnly || !bOnly
}

// SeparatorVars returns the separator (root) variables of the query: the
// existential variables that occur in every atom.
func (q *Query) SeparatorVars() VarSet {
	out := VarSet{}
	head := q.HeadSet()
	for _, v := range q.Vars() {
		if head.Has(v) {
			continue
		}
		in := true
		for _, a := range q.Atoms {
			if !a.HasVar(v) {
				in = false
				break
			}
		}
		if in {
			out.Add(v)
		}
	}
	return out
}

// Components partitions the query's atoms into connected components, where
// two atoms are connected when they share an existential variable. Head
// variables act as constants and never connect atoms. Each component is
// returned as a query whose head is the subset of q's head variables that
// occur in it; predicates follow their variable. Components are ordered by
// the first atom position, so the result is deterministic.
func (q *Query) Components() []*Query {
	n := len(q.Atoms)
	parent := make([]int, n)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(i int) int {
		for parent[i] != i {
			parent[i] = parent[parent[i]]
			i = parent[i]
		}
		return i
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	head := q.HeadSet()
	byVar := map[Var][]int{}
	for i, a := range q.Atoms {
		for _, v := range a.Vars() {
			if !head.Has(v) {
				byVar[v] = append(byVar[v], i)
			}
		}
	}
	for _, idxs := range byVar {
		for k := 1; k < len(idxs); k++ {
			union(idxs[0], idxs[k])
		}
	}

	order := []int{}
	groups := map[int][]int{}
	for i := 0; i < n; i++ {
		r := find(i)
		if _, ok := groups[r]; !ok {
			order = append(order, r)
		}
		groups[r] = append(groups[r], i)
	}
	sort.Slice(order, func(a, b int) bool { return groups[order[a]][0] < groups[order[b]][0] })

	var out []*Query
	for _, r := range order {
		sub := &Query{Name: q.Name}
		vars := VarSet{}
		for _, i := range groups[r] {
			sub.Atoms = append(sub.Atoms, q.Atoms[i])
			for _, v := range q.Atoms[i].Vars() {
				vars.Add(v)
			}
		}
		for _, h := range q.Head {
			if vars.Has(h) {
				sub.Head = append(sub.Head, h)
			}
		}
		for _, p := range q.Preds {
			if vars.Has(p.Var) {
				sub.Preds = append(sub.Preds, p)
			}
		}
		out = append(out, sub)
	}
	return out
}

// IsConnected reports whether the query (ignoring head variables) forms a
// single connected component.
func (q *Query) IsConnected() bool { return len(q.Components()) == 1 }

// WithHead returns a copy of q whose head variables are replaced by hs.
func (q *Query) WithHead(hs []Var) *Query {
	c := q.Clone()
	c.Head = append([]Var(nil), hs...)
	return c
}

// MinCuts enumerates the minimal cut-sets of the query (Section 3.2): the
// minimal sets y of existential variables such that removing y disconnects
// the query. For a disconnected query it returns {∅}. Every cut-set must
// contain all separator variables, so the search enumerates subsets of
// EVars that include SeparatorVars, in increasing size, keeping only sets
// with no proper cut subset.
func (q *Query) MinCuts() []VarSet {
	return q.minCuts(func(parts []*Query) bool { return len(parts) >= 2 })
}

// MinPCuts is the deterministic-relations variant of MinCuts (Section
// 3.3.1): it keeps only cut-sets that split the query into at least two
// components containing *probabilistic* atoms, where isProb reports whether
// a relation symbol is probabilistic.
func (q *Query) MinPCuts(isProb func(rel string) bool) []VarSet {
	return q.minCuts(func(parts []*Query) bool {
		n := 0
		for _, p := range parts {
			for _, a := range p.Atoms {
				if isProb(a.Rel) {
					n++
					break
				}
			}
		}
		return n >= 2
	})
}

// minCuts enumerates minimal variable sets whose removal splits q into
// components accepted by ok.
func (q *Query) minCuts(ok func(parts []*Query) bool) []VarSet {
	if !q.IsConnected() {
		if ok(q.Components()) {
			return []VarSet{{}}
		}
		return nil
	}
	evars := q.EVars()
	var cuts []VarSet

	// Enumerate subsets in increasing cardinality so minimality filtering
	// only needs to look at already-found cuts.
	n := len(evars)
	subsetsBySize := make([][]uint64, n+1)
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		c := popcount(mask)
		subsetsBySize[c] = append(subsetsBySize[c], mask)
	}
	for size := 0; size <= n; size++ {
		for _, mask := range subsetsBySize[size] {
			set := VarSet{}
			for i := 0; i < n; i++ {
				if mask&(1<<uint(i)) != 0 {
					set.Add(evars[i])
				}
			}
			if containsAny(cuts, set) {
				continue // a subset is already a cut: not minimal
			}
			rem := q.removeVars(set)
			if ok(rem.Components()) {
				cuts = append(cuts, set)
			}
		}
	}
	return cuts
}

func containsAny(cuts []VarSet, set VarSet) bool {
	for _, c := range cuts {
		if c.SubsetOf(set) {
			return true
		}
	}
	return false
}

func popcount(x uint64) int {
	n := 0
	for ; x != 0; x &= x - 1 {
		n++
	}
	return n
}

// removeVars returns the query q - x of the paper: every variable in x is
// promoted to the head (treated as a constant), which is how "removing" a
// variable behaves for connectivity and hierarchy purposes.
func (q *Query) removeVars(x VarSet) *Query {
	c := q.Clone()
	head := q.HeadSet()
	for _, v := range x.Sorted() {
		if !head.Has(v) {
			c.Head = append(c.Head, v)
		}
	}
	return c
}

// FD is a functional dependency over query variables, written src → dst.
// FDs arise from schema keys: a key constraint on relation R(x, y) with key
// x contributes the FD {x} → y for every non-key variable y.
type FD struct {
	Src []Var
	Dst Var
}

// Closure computes the closure x⁺ of the variable set x under the given
// FDs.
func Closure(x VarSet, fds []FD) VarSet {
	out := x.Clone()
	for changed := true; changed; {
		changed = false
		for _, fd := range fds {
			if out.Has(fd.Dst) {
				continue
			}
			all := true
			for _, s := range fd.Src {
				if !out.Has(s) {
					all = false
					break
				}
			}
			if all {
				out.Add(fd.Dst)
				changed = true
			}
		}
	}
	return out
}

// KeyFDs derives the FDs contributed by a key declaration on an atom: for
// atom a with key positions keyPos (indices into a.Args), each non-key
// variable of a is functionally determined by the key variables.
func KeyFDs(a Atom, keyPos []int) []FD {
	var src []Var
	for _, i := range keyPos {
		if a.Args[i].IsVar() {
			src = append(src, a.Args[i].Var)
		}
	}
	inKey := NewVarSet(src...)
	var out []FD
	for _, v := range a.Vars() {
		if !inKey.Has(v) {
			out = append(out, FD{Src: src, Dst: v})
		}
	}
	return out
}
