// Package cq models self-join-free conjunctive queries: their syntax
// (atoms over a relational vocabulary, head and existential variables,
// comparison predicates), a small datalog-style parser, and the structural
// analyses the dissociation algorithms need — hierarchy testing, connected
// components, separator variables, minimal cut-sets, and functional-
// dependency closures.
//
// Throughout, queries follow Section 2 of Gatterbauer & Suciu, "Approximate
// Lifted Inference with Probabilistic Databases" (VLDB 2015): a query
//
//	q(y) :- R1(x1), ..., Rm(xm)
//
// is self-join-free (all Ri distinct), y are the head variables, and all
// other variables are existentially quantified.
package cq

import (
	"fmt"
	"sort"
	"strings"
)

// Var is a query variable such as "x" or "y2".
type Var string

// Term is one argument position of an atom: either a variable or a constant.
type Term struct {
	// Var is the variable name; empty when the term is a constant.
	Var Var
	// Const is the constant literal, valid only when Var is empty.
	Const string
}

// IsVar reports whether the term is a variable.
func (t Term) IsVar() bool { return t.Var != "" }

// String renders the term as it appears in query syntax: bare variable
// names, single-quoted constants.
func (t Term) String() string {
	if t.IsVar() {
		return string(t.Var)
	}
	return "'" + t.Const + "'"
}

// V returns a variable term.
func V(name string) Term { return Term{Var: Var(name)} }

// C returns a constant term.
func C(lit string) Term { return Term{Const: lit} }

// Atom is one relational atom R(t1, ..., tk) of a query.
type Atom struct {
	// Rel is the relation symbol. In a self-join-free query every atom has
	// a distinct symbol, so Rel doubles as the atom's identity.
	Rel string
	// Args are the terms filling the relation's attribute positions.
	Args []Term
}

// Vars returns the set of variables occurring in the atom, in first-
// occurrence order.
func (a Atom) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, t := range a.Args {
		if t.IsVar() && !seen[t.Var] {
			seen[t.Var] = true
			out = append(out, t.Var)
		}
	}
	return out
}

// HasVar reports whether variable x occurs in the atom.
func (a Atom) HasVar(x Var) bool {
	for _, t := range a.Args {
		if t.Var == x {
			return true
		}
	}
	return false
}

// String renders the atom, e.g. "R(x, 'a')".
func (a Atom) String() string {
	parts := make([]string, len(a.Args))
	for i, t := range a.Args {
		parts[i] = t.String()
	}
	return a.Rel + "(" + strings.Join(parts, ", ") + ")"
}

// CompareOp is a comparison operator usable in a predicate.
type CompareOp string

// Supported comparison operators.
const (
	OpLE   CompareOp = "<="
	OpLT   CompareOp = "<"
	OpGE   CompareOp = ">="
	OpGT   CompareOp = ">"
	OpEQ   CompareOp = "="
	OpNE   CompareOp = "!="
	OpLike CompareOp = "like"
)

// Predicate is a comparison between a variable and a constant, such as
// "s <= 1000" or "n like '%red%'". Predicates restrict the matching tuples
// but play no role in the dissociation structure of the query: they are
// pushed into the scans of the atoms that bind their variable.
type Predicate struct {
	Var   Var
	Op    CompareOp
	Const string
}

// String renders the predicate in query syntax. String constants are
// quoted; numeric literals stay bare, so the output reparses.
func (p Predicate) String() string {
	if p.Op == OpLike {
		return fmt.Sprintf("%s like '%s'", p.Var, p.Const)
	}
	c := p.Const
	if !isNumericLit(c) {
		c = "'" + c + "'"
	}
	return fmt.Sprintf("%s %s %s", p.Var, p.Op, c)
}

func isNumericLit(s string) bool {
	if s == "" {
		return false
	}
	dot := false
	for i := 0; i < len(s); i++ {
		switch {
		case s[i] >= '0' && s[i] <= '9':
		case s[i] == '-' && i == 0 && len(s) > 1:
		case s[i] == '.' && !dot && i > 0:
			dot = true
		default:
			return false
		}
	}
	return true
}

// Query is a self-join-free conjunctive query with optional comparison
// predicates.
type Query struct {
	// Name is the head predicate name, e.g. "q". Cosmetic.
	Name string
	// Head lists the free (head) variables. Empty for a Boolean query.
	Head []Var
	// Atoms is the query body. Relation symbols must be pairwise distinct.
	Atoms []Atom
	// Preds are comparison predicates over body variables.
	Preds []Predicate
}

// Validate checks the structural well-formedness rules the rest of the
// system relies on: at least one atom, pairwise-distinct relation symbols
// (self-join-freeness), head variables and predicate variables appearing in
// the body.
func (q *Query) Validate() error {
	if len(q.Atoms) == 0 {
		return fmt.Errorf("cq: query %s has no atoms", q.Name)
	}
	seen := map[string]bool{}
	for _, a := range q.Atoms {
		if a.Rel == "" {
			return fmt.Errorf("cq: query %s has an atom with an empty relation symbol", q.Name)
		}
		if seen[a.Rel] {
			return fmt.Errorf("cq: query %s is not self-join-free: relation %s occurs twice", q.Name, a.Rel)
		}
		seen[a.Rel] = true
	}
	body := q.varSet()
	for _, h := range q.Head {
		if !body[h] {
			return fmt.Errorf("cq: head variable %s of query %s does not occur in the body", h, q.Name)
		}
	}
	for _, p := range q.Preds {
		if !body[p.Var] {
			return fmt.Errorf("cq: predicate variable %s of query %s does not occur in the body", p.Var, q.Name)
		}
	}
	return nil
}

func (q *Query) varSet() map[Var]bool {
	s := map[Var]bool{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			s[v] = true
		}
	}
	return s
}

// Vars returns all variables of the query in a deterministic order
// (first occurrence across atoms).
func (q *Query) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, a := range q.Atoms {
		for _, v := range a.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// HeadSet returns the head variables as a set.
func (q *Query) HeadSet() VarSet {
	s := VarSet{}
	for _, v := range q.Head {
		s.Add(v)
	}
	return s
}

// EVars returns the existential variables — all body variables that are not
// head variables — in deterministic order.
func (q *Query) EVars() []Var {
	head := q.HeadSet()
	var out []Var
	for _, v := range q.Vars() {
		if !head.Has(v) {
			out = append(out, v)
		}
	}
	return out
}

// IsBoolean reports whether the query has no head variables.
func (q *Query) IsBoolean() bool { return len(q.Head) == 0 }

// Atom returns the atom with the given relation symbol, or nil.
func (q *Query) Atom(rel string) *Atom {
	for i := range q.Atoms {
		if q.Atoms[i].Rel == rel {
			return &q.Atoms[i]
		}
	}
	return nil
}

// AtomsWith returns the atoms containing variable x (the at(x) of the
// paper).
func (q *Query) AtomsWith(x Var) []Atom {
	var out []Atom
	for _, a := range q.Atoms {
		if a.HasVar(x) {
			out = append(out, a)
		}
	}
	return out
}

// PredsOn returns the predicates constraining variable x.
func (q *Query) PredsOn(x Var) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if p.Var == x {
			out = append(out, p)
		}
	}
	return out
}

// PredsOnAtom returns the predicates whose variable occurs in atom a —
// the predicates a scan of a can apply as pushed-down selections.
func (q *Query) PredsOnAtom(a Atom) []Predicate {
	var out []Predicate
	for _, p := range q.Preds {
		if a.HasVar(p.Var) {
			out = append(out, p)
		}
	}
	return out
}

// String renders the query in the paper's datalog-ish notation, e.g.
// "q(z) :- R(z, x), S(x, y), T(y)".
func (q *Query) String() string {
	var b strings.Builder
	name := q.Name
	if name == "" {
		name = "q"
	}
	b.WriteString(name)
	b.WriteString("(")
	for i, h := range q.Head {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(h))
	}
	b.WriteString(") :- ")
	for i, a := range q.Atoms {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(a.String())
	}
	for _, p := range q.Preds {
		b.WriteString(", ")
		b.WriteString(p.String())
	}
	return b.String()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	c := &Query{Name: q.Name}
	c.Head = append([]Var(nil), q.Head...)
	c.Atoms = make([]Atom, len(q.Atoms))
	for i, a := range q.Atoms {
		c.Atoms[i] = Atom{Rel: a.Rel, Args: append([]Term(nil), a.Args...)}
	}
	c.Preds = append([]Predicate(nil), q.Preds...)
	return c
}

// VarSet is a set of variables.
type VarSet map[Var]bool

// NewVarSet builds a set from the given variables.
func NewVarSet(vs ...Var) VarSet {
	s := VarSet{}
	for _, v := range vs {
		s.Add(v)
	}
	return s
}

// Add inserts v.
func (s VarSet) Add(v Var) { s[v] = true }

// Has reports membership of v.
func (s VarSet) Has(v Var) bool { return s[v] }

// Len returns the cardinality.
func (s VarSet) Len() int { return len(s) }

// Clone returns a copy of the set.
func (s VarSet) Clone() VarSet {
	c := make(VarSet, len(s))
	for v := range s {
		c[v] = true
	}
	return c
}

// Union returns a new set containing the members of both sets.
func (s VarSet) Union(o VarSet) VarSet {
	c := s.Clone()
	for v := range o {
		c[v] = true
	}
	return c
}

// Minus returns a new set with the members of o removed.
func (s VarSet) Minus(o VarSet) VarSet {
	c := VarSet{}
	for v := range s {
		if !o[v] {
			c[v] = true
		}
	}
	return c
}

// Intersect returns the intersection of the two sets.
func (s VarSet) Intersect(o VarSet) VarSet {
	c := VarSet{}
	for v := range s {
		if o[v] {
			c[v] = true
		}
	}
	return c
}

// SubsetOf reports whether every member of s is in o.
func (s VarSet) SubsetOf(o VarSet) bool {
	for v := range s {
		if !o[v] {
			return false
		}
	}
	return true
}

// Equal reports whether the two sets have the same members.
func (s VarSet) Equal(o VarSet) bool {
	return len(s) == len(o) && s.SubsetOf(o)
}

// Sorted returns the members in lexicographic order.
func (s VarSet) Sorted() []Var {
	out := make([]Var, 0, len(s))
	for v := range s {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set as "{x, y}".
func (s VarSet) String() string {
	vs := s.Sorted()
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = string(v)
	}
	return "{" + strings.Join(parts, ", ") + "}"
}
