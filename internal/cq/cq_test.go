package cq

import (
	"strings"
	"testing"
)

func TestParseSimple(t *testing.T) {
	q, err := Parse("q(z) :- R(z, x), S(x, y), T(y)")
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != "q" {
		t.Errorf("name = %q, want q", q.Name)
	}
	if len(q.Head) != 1 || q.Head[0] != "z" {
		t.Errorf("head = %v, want [z]", q.Head)
	}
	if len(q.Atoms) != 3 {
		t.Fatalf("atoms = %d, want 3", len(q.Atoms))
	}
	if q.Atoms[1].Rel != "S" || len(q.Atoms[1].Args) != 2 {
		t.Errorf("second atom = %v", q.Atoms[1])
	}
}

func TestParseBoolean(t *testing.T) {
	q := MustParse("q() :- R(x), S(x, y)")
	if !q.IsBoolean() {
		t.Error("expected Boolean query")
	}
	if got := q.EVars(); len(got) != 2 {
		t.Errorf("evars = %v, want [x y]", got)
	}
}

func TestParseConstantsAndPredicates(t *testing.T) {
	q, err := Parse("Q(a) :- S(s, a), PS(s, u), P(u, n), s <= 1000, n like '%red%green%'")
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Preds) != 2 {
		t.Fatalf("preds = %v, want 2", q.Preds)
	}
	if q.Preds[0].Op != OpLE || q.Preds[0].Const != "1000" {
		t.Errorf("pred 0 = %v", q.Preds[0])
	}
	if q.Preds[1].Op != OpLike || q.Preds[1].Const != "%red%green%" {
		t.Errorf("pred 1 = %v", q.Preds[1])
	}
	q2 := MustParse("q() :- R1('a', x1), R2(x2), R0(x1, x2)")
	if q2.Atoms[0].Args[0].IsVar() {
		t.Error("'a' should be a constant")
	}
	if got := q2.EVars(); len(got) != 2 {
		t.Errorf("evars = %v", got)
	}
}

func TestParseRoundTrip(t *testing.T) {
	inputs := []string{
		"q(z) :- R(z, x), S(x, y), T(y)",
		"q() :- R(x), S(x, y)",
		"q() :- R1('a', x1), R2(x2), R0(x1, x2)",
		"Q(a) :- S(s, a), PS(s, u), P(u, n), s <= 1000, n like '%red%'",
		"q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)",
	}
	for _, in := range inputs {
		q := MustParse(in)
		back, err := Parse(q.String())
		if err != nil {
			t.Fatalf("round trip parse of %q failed: %v", q.String(), err)
		}
		if back.String() != q.String() {
			t.Errorf("round trip changed: %q -> %q", q.String(), back.String())
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"q(z)",
		"q(z) :- ",
		"q(z) :- R(z",             // unbalanced
		"q(z) :- R(z, x), R(x)",   // self-join
		"q(w) :- R(z, x)",         // head var not in body
		"q() :- R(x), y <= 5",     // predicate var not in body
		"q() :- R('unterminated)", // bad string
	}
	for _, in := range bad {
		if _, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestValidateSelfJoinFree(t *testing.T) {
	q := &Query{Name: "q", Atoms: []Atom{{Rel: "R", Args: []Term{V("x")}}, {Rel: "R", Args: []Term{V("y")}}}}
	if err := q.Validate(); err == nil || !strings.Contains(err.Error(), "self-join") {
		t.Errorf("expected self-join error, got %v", err)
	}
}

func TestIsHierarchical(t *testing.T) {
	cases := []struct {
		q    string
		want bool
	}{
		// Examples from the paper, Section 2.
		{"q() :- R(x, y), S(y, z), T(y, z, u)", true},
		{"q() :- R(x, y), S(y, z), T(z, u)", false},
		{"q() :- R(x), S(x, y)", true},
		{"q() :- R(x), S(x, y), T(y)", false},
		{"q(z) :- R(z, x), S(x, y), T(y)", false},
		{"q(z) :- R(z, x), S(x, y), K(x, y)", true}, // q1 from the intro
		{"q() :- R(x)", true},
		{"q() :- R(x), S(y)", true},                   // disconnected, both hierarchical
		{"q() :- R(x), S(x), T(x, y), U(y)", false},   // Example 17
		{"q() :- R(x), S(x), T(x, y), U(x, y)", true}, // its dissociation ∆3
		// Head variables are treated as constants.
		{"q(x) :- R(x), S(x, y), T(x, y)", true},
		{"q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)", false},
	}
	for _, c := range cases {
		q := MustParse(c.q)
		if got := q.IsHierarchical(); got != c.want {
			t.Errorf("IsHierarchical(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestSeparatorVars(t *testing.T) {
	q := MustParse("q() :- R(x), S(x, y)")
	if got := q.SeparatorVars(); !got.Equal(NewVarSet("x")) {
		t.Errorf("separators = %v, want {x}", got)
	}
	q = MustParse("q(z) :- R(z, x), S(x, y), K(x, y)")
	if got := q.SeparatorVars(); !got.Equal(NewVarSet("x")) {
		t.Errorf("separators = %v, want {x}", got)
	}
	q = MustParse("q() :- R(x, y), S(y, z)")
	if got := q.SeparatorVars(); !got.Equal(NewVarSet("y")) {
		t.Errorf("separators = %v, want {y}", got)
	}
	q = MustParse("q() :- R(x, y), S(y, z), T(z, u)")
	if got := q.SeparatorVars(); got.Len() != 0 {
		t.Errorf("separators = %v, want empty", got)
	}
}

func TestComponents(t *testing.T) {
	q := MustParse("q() :- R(x, y), S(z, u), T(u, v)")
	comps := q.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if comps[0].Atoms[0].Rel != "R" || len(comps[0].Atoms) != 1 {
		t.Errorf("first component = %v", comps[0])
	}
	if len(comps[1].Atoms) != 2 {
		t.Errorf("second component = %v", comps[1])
	}

	// Head variables never connect atoms.
	q = MustParse("q(x) :- R(x, y), S(x, z)")
	if got := len(q.Components()); got != 2 {
		t.Errorf("components with shared head var = %d, want 2", got)
	}

	// Head variables are distributed to the components using them.
	comps = q.Components()
	for _, c := range comps {
		if len(c.Head) != 1 || c.Head[0] != "x" {
			t.Errorf("component head = %v, want [x]", c.Head)
		}
	}
}

func TestComponentsPredicatesFollow(t *testing.T) {
	q := MustParse("q() :- R(x), S(y), x <= 3, y like '%a%'")
	comps := q.Components()
	if len(comps) != 2 {
		t.Fatalf("components = %d, want 2", len(comps))
	}
	if len(comps[0].Preds) != 1 || comps[0].Preds[0].Var != "x" {
		t.Errorf("component 0 preds = %v", comps[0].Preds)
	}
	if len(comps[1].Preds) != 1 || comps[1].Preds[0].Var != "y" {
		t.Errorf("component 1 preds = %v", comps[1].Preds)
	}
}

func TestMinCuts(t *testing.T) {
	cases := []struct {
		q    string
		want []string
	}{
		{"q() :- R(x), S(x), T(x, y), U(y)", []string{"{x}", "{y}"}},                  // Example 17
		{"q(z) :- R(z, x), S(x, y), T(y)", []string{"{x}", "{y}"}},                    // q2
		{"q(x0, x3) :- R1(x0, x1), R2(x1, x2), R3(x2, x3)", []string{"{x1}", "{x2}"}}, // 3-chain
		{"q() :- R(x), S(x, y)", []string{"{x}"}},
		{"q() :- R(x, y), S(x, y)", []string{"{x, y}"}},
		{"Q(a) :- S(s, a), PS(s, u), P(u, n)", []string{"{s}", "{u}"}}, // TPC-H query: 2 minimal plans
	}
	for _, c := range cases {
		q := MustParse(c.q)
		cuts := q.MinCuts()
		got := make([]string, len(cuts))
		for i, s := range cuts {
			got[i] = s.String()
		}
		if !sameStringSet(got, c.want) {
			t.Errorf("MinCuts(%s) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestMinCutsDisconnected(t *testing.T) {
	q := MustParse("q() :- R(x), S(y)")
	cuts := q.MinCuts()
	if len(cuts) != 1 || cuts[0].Len() != 0 {
		t.Errorf("MinCuts of disconnected query = %v, want {∅}", cuts)
	}
}

func TestMinPCuts(t *testing.T) {
	// Example after Theorem 24: q :- R(x), S(x, y), Td(y).
	q := MustParse("q() :- R(x), S(x, y), T(y)")
	det := map[string]bool{"T": true}
	isProb := func(rel string) bool { return !det[rel] }
	cuts := q.MinPCuts(isProb)
	if len(cuts) != 1 || cuts[0].String() != "{x}" {
		t.Errorf("MinPCuts = %v, want [{x}]", cuts)
	}
	// With Rd and Td deterministic there is no probabilistic cut at all.
	det = map[string]bool{"T": true, "R": true}
	cuts = q.MinPCuts(isProb)
	if len(cuts) != 0 {
		t.Errorf("MinPCuts with single probabilistic relation = %v, want none", cuts)
	}
}

func TestClosure(t *testing.T) {
	fds := []FD{{Src: []Var{"x"}, Dst: "y"}, {Src: []Var{"y"}, Dst: "z"}}
	got := Closure(NewVarSet("x"), fds)
	if !got.Equal(NewVarSet("x", "y", "z")) {
		t.Errorf("closure = %v, want {x, y, z}", got)
	}
	got = Closure(NewVarSet("z"), fds)
	if !got.Equal(NewVarSet("z")) {
		t.Errorf("closure = %v, want {z}", got)
	}
	// Multi-variable source.
	fds = []FD{{Src: []Var{"a", "b"}, Dst: "c"}}
	if got := Closure(NewVarSet("a"), fds); got.Len() != 1 {
		t.Errorf("partial key closure = %v, want {a}", got)
	}
	if got := Closure(NewVarSet("a", "b"), fds); !got.Has("c") {
		t.Errorf("full key closure = %v, want includes c", got)
	}
}

func TestKeyFDs(t *testing.T) {
	a := MustParse("q() :- S(x, y, z)").Atoms[0]
	fds := KeyFDs(a, []int{0})
	if len(fds) != 2 {
		t.Fatalf("fds = %v, want 2", fds)
	}
	for _, fd := range fds {
		if len(fd.Src) != 1 || fd.Src[0] != "x" {
			t.Errorf("fd src = %v, want [x]", fd.Src)
		}
	}
	// Constants in key positions are skipped in the source.
	a = MustParse("q() :- R('a', x1)").Atoms[0]
	fds = KeyFDs(a, []int{0, 1})
	if len(fds) != 0 {
		t.Errorf("fds = %v, want none (x1 is in the key)", fds)
	}
}

func TestVarSetOps(t *testing.T) {
	a := NewVarSet("x", "y")
	b := NewVarSet("y", "z")
	if got := a.Union(b); got.Len() != 3 {
		t.Errorf("union = %v", got)
	}
	if got := a.Minus(b); !got.Equal(NewVarSet("x")) {
		t.Errorf("minus = %v", got)
	}
	if got := a.Intersect(b); !got.Equal(NewVarSet("y")) {
		t.Errorf("intersect = %v", got)
	}
	if a.SubsetOf(b) {
		t.Error("subset should be false")
	}
	if !NewVarSet("y").SubsetOf(a) {
		t.Error("subset should be true")
	}
	if a.String() != "{x, y}" {
		t.Errorf("string = %q", a.String())
	}
}

func sameStringSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	m := map[string]bool{}
	for _, s := range a {
		m[s] = true
	}
	for _, s := range b {
		if !m[s] {
			return false
		}
	}
	return true
}
