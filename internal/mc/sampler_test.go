package mc

import (
	"context"
	"math"
	"math/rand"
	"testing"
)

// exactDNF computes the probability of a small monotone DNF by
// enumerating all assignments of its variables.
func exactDNF(clauses [][]int32, probs []float64) float64 {
	vars := map[int32]bool{}
	var order []int32
	for _, c := range clauses {
		for _, v := range c {
			if !vars[v] {
				vars[v] = true
				order = append(order, v)
			}
		}
	}
	n := len(order)
	total := 0.0
	for mask := 0; mask < 1<<n; mask++ {
		truth := map[int32]bool{}
		p := 1.0
		for i, v := range order {
			if mask&(1<<i) != 0 {
				truth[v] = true
				p *= probs[v]
			} else {
				p *= 1 - probs[v]
			}
		}
		sat := false
		for _, c := range clauses {
			all := true
			for _, v := range c {
				if !truth[v] {
					all = false
					break
				}
			}
			if all {
				sat = true
				break
			}
		}
		if sat {
			total += p
		}
	}
	return total
}

func TestSamplerResumable(t *testing.T) {
	clauses := [][]int32{{0, 1}, {1, 2}, {3}, {0, 4}}
	probs := []float64{0.3, 0.7, 0.5, 0.1, 0.9}

	one := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(42)))
	if err := one.Sample(context.Background(), 1000); err != nil {
		t.Fatal(err)
	}
	split := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(42)))
	for _, n := range []int{300, 1, 699} {
		if err := split.Sample(context.Background(), n); err != nil {
			t.Fatal(err)
		}
	}
	if one.Samples() != 1000 || split.Samples() != 1000 {
		t.Fatalf("samples: %d vs %d", one.Samples(), split.Samples())
	}
	if one.Estimate() != split.Estimate() {
		t.Fatalf("split sampling not bit-identical: %v vs %v", one.Estimate(), split.Estimate())
	}
	if one.StdErr() != split.StdErr() {
		t.Fatalf("stderr diverged: %v vs %v", one.StdErr(), split.StdErr())
	}
}

func TestSamplerMatchesKarpLubyCtx(t *testing.T) {
	clauses := [][]int32{{0, 1}, {1, 2}, {3}}
	probs := []float64{0.3, 0.7, 0.5, 0.1}
	want, err := KarpLubyCtx(context.Background(), clauses, probs, 500, rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	s := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(7)))
	if err := s.Sample(context.Background(), 500); err != nil {
		t.Fatal(err)
	}
	if got := s.Estimate(); got != want {
		t.Fatalf("sampler %v != KarpLubyCtx %v", got, want)
	}
}

func TestSamplerLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		nv := 2 + rng.Intn(6)
		probs := make([]float64, nv)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		nc := 1 + rng.Intn(5)
		clauses := make([][]int32, nc)
		for i := range clauses {
			w := 1 + rng.Intn(3)
			c := make([]int32, w)
			for j := range c {
				c[j] = int32(rng.Intn(nv))
			}
			clauses[i] = c
		}
		exact := exactDNF(clauses, probs)
		s := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(int64(trial))))
		if err := s.Sample(context.Background(), 400); err != nil {
			t.Fatal(err)
		}
		lb := s.LowerBound(4)
		if lb > exact+1e-9 {
			t.Fatalf("trial %d: lower bound %v above exact %v (clauses %v probs %v)", trial, lb, exact, clauses, probs)
		}
		if lb < 0 || lb > 1 {
			t.Fatalf("trial %d: bound %v outside [0,1]", trial, lb)
		}
	}
}

func TestSamplerStdErrShrinks(t *testing.T) {
	clauses := [][]int32{{0, 1}, {1, 2}, {2, 3}}
	probs := []float64{0.4, 0.6, 0.5, 0.3}
	s := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(9)))
	if err := s.Sample(context.Background(), 100); err != nil {
		t.Fatal(err)
	}
	early := s.StdErr()
	if err := s.Sample(context.Background(), 10_000); err != nil {
		t.Fatal(err)
	}
	late := s.StdErr()
	if early == 0 {
		t.Fatal("expected non-zero stderr after 100 samples")
	}
	if late >= early {
		t.Fatalf("stderr did not shrink: %v -> %v", early, late)
	}
}

func TestSamplerTrivial(t *testing.T) {
	probs := []float64{0.5, 0}
	cases := []struct {
		name    string
		clauses [][]int32
		want    float64
	}{
		{"empty formula", nil, 0},
		{"tautology", [][]int32{{0}, {}}, 1},
		{"zero weight", [][]int32{{1}}, 0},
	}
	for _, tc := range cases {
		s := NewKarpLubySampler(tc.clauses, probs, rand.New(rand.NewSource(1)))
		if !s.Exact() {
			t.Fatalf("%s: expected trivial", tc.name)
		}
		if err := s.Sample(context.Background(), 100); err != nil {
			t.Fatal(err)
		}
		if s.Estimate() != tc.want || s.LowerBound(4) != tc.want {
			t.Fatalf("%s: estimate %v bound %v, want %v", tc.name, s.Estimate(), s.LowerBound(4), tc.want)
		}
		if s.StdErr() != 0 {
			t.Fatalf("%s: trivial stderr %v", tc.name, s.StdErr())
		}
	}
}

func TestSamplerSingleClauseExact(t *testing.T) {
	// One clause: every draw is 1/1, the estimate is the clause weight
	// exactly, and the legitimate zero variance must not spook the bound.
	clauses := [][]int32{{0, 1}}
	probs := []float64{0.3, 0.5}
	s := NewKarpLubySampler(clauses, probs, rand.New(rand.NewSource(2)))
	if err := s.Sample(context.Background(), 50); err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.Estimate()-0.15) > 1e-12 {
		t.Fatalf("estimate %v, want 0.15", s.Estimate())
	}
	if lb := s.LowerBound(4); math.Abs(lb-0.15) > 1e-12 {
		t.Fatalf("lower bound %v, want 0.15", lb)
	}
}

func TestSamplerCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s := NewKarpLubySampler([][]int32{{0}, {1}}, []float64{0.5, 0.5}, rand.New(rand.NewSource(3)))
	if err := s.Sample(ctx, 10_000); err == nil {
		t.Fatal("expected cancellation error")
	}
}
