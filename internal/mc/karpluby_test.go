package mc

import (
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/exact"
)

func TestKarpLubyDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	probs := []float64{0.5}
	if got := KarpLuby(nil, probs, 100, rng); got != 0 {
		t.Errorf("empty formula = %v", got)
	}
	if got := KarpLuby([][]int32{{}}, probs, 100, rng); got != 1 {
		t.Errorf("empty clause = %v", got)
	}
	if got := KarpLuby([][]int32{{0}}, []float64{0}, 100, rng); got != 0 {
		t.Errorf("zero-probability clause = %v", got)
	}
}

func TestKarpLubyConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	probs := []float64{0.5, 0.4, 0.7, 0.2, 0.6}
	clauses := [][]int32{{0, 1}, {0, 2}, {3, 4}, {1, 3}}
	want := exact.Prob(clauses, probs)
	got := KarpLuby(clauses, probs, 200000, rng)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("KL = %v, exact = %v", got, want)
	}
}

// TestKarpLubySmallProbabilities: the regime where naive MC fails. With
// tuple probabilities around 1e-3 and P(F) ≈ 4e-6, naive MC with 10k
// samples almost always returns 0 (useless for ranking); Karp–Luby's
// RELATIVE error stays small.
func TestKarpLubySmallProbabilities(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	probs := []float64{2e-3, 1e-3, 2e-3, 1e-3}
	clauses := [][]int32{{0, 1}, {2, 3}}
	want := exact.Prob(clauses, probs)
	if want > 1e-4 {
		t.Fatalf("test setup: P(F) = %v not small", want)
	}
	kl := KarpLuby(clauses, probs, 10000, rng)
	if rel := math.Abs(kl-want) / want; rel > 0.1 {
		t.Errorf("Karp-Luby relative error %v (est %v, exact %v)", rel, kl, want)
	}
	naive := Estimate(clauses, probs, 10000, rng)
	// Not asserting naive==0 (it is random), but document the contrast:
	// its standard deviation exceeds the quantity being measured.
	_ = naive
}

func TestKarpLubyMatchesExactRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for iter := 0; iter < 15; iter++ {
		nvars := 2 + rng.Intn(8)
		probs := make([]float64, nvars)
		for i := range probs {
			probs[i] = rng.Float64()
		}
		var clauses [][]int32
		for i := 0; i < 1+rng.Intn(6); i++ {
			c := make([]int32, 1+rng.Intn(3))
			for j := range c {
				c[j] = int32(rng.Intn(nvars))
			}
			clauses = append(clauses, c)
		}
		want := exact.Prob(clauses, probs)
		got := KarpLuby(clauses, probs, 100000, rng)
		tol := 0.02 + 0.05*want
		if math.Abs(got-want) > tol {
			t.Errorf("iter %d: KL %v vs exact %v", iter, got, want)
		}
	}
}

func BenchmarkKarpLuby(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	nvars := 40
	probs := make([]float64, nvars)
	for i := range probs {
		probs[i] = rng.Float64() * 0.1
	}
	var clauses [][]int32
	for i := 0; i < 30; i++ {
		clauses = append(clauses, []int32{int32(rng.Intn(nvars)), int32(rng.Intn(nvars)), int32(rng.Intn(nvars))})
	}
	b.Run("karp-luby-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			KarpLuby(clauses, probs, 1000, rng)
		}
	})
	b.Run("naive-1k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Estimate(clauses, probs, 1000, rng)
		}
	})
}
