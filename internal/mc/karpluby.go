package mc

import (
	"context"
	"math/rand"
)

// KarpLuby estimates the probability of a monotone DNF with the
// Karp–Luby–Madras coverage algorithm — the classical FPRAS for DNF
// counting, adapted to weighted (probabilistic) variables. Unlike naive
// possible-world sampling, its relative error is bounded independently
// of how small P(F) is, which is exactly the regime (small input
// probabilities) where the paper shows naive MC needs many samples.
//
// The estimator: let U = Σ_i P(clause_i) (clauses treated in
// isolation). Sample a clause i with probability P(clause_i)/U, then a
// world x conditioned on clause_i being true, and output
// U / N(x) where N(x) is the number of clauses satisfied by x. The
// expectation of the output is exactly P(F); averaging over `samples`
// draws gives the estimate.
func KarpLuby(clauses [][]int32, probs []float64, samples int, rng *rand.Rand) float64 {
	p, _ := KarpLubyCtx(nil, clauses, probs, samples, rng)
	return p
}

// KarpLubyCtx is KarpLuby with cooperative cancellation: the sampling
// loop polls ctx every pollInterval rounds and returns its error when it
// is done. A nil ctx never cancels.
//
// It is a one-shot convenience over KarpLubySampler, drawing the same
// RNG stream: KarpLubyCtx(ctx, c, p, n, rng) equals building a sampler
// and calling Sample(ctx, n) once.
func KarpLubyCtx(ctx context.Context, clauses [][]int32, probs []float64, samples int, rng *rand.Rand) (float64, error) {
	s := NewKarpLubySampler(clauses, probs, rng)
	if err := s.Sample(ctx, samples); err != nil {
		return 0, err
	}
	return s.Estimate(), nil
}
