package mc

import (
	"context"
	"math/rand"
	"sort"
)

// KarpLuby estimates the probability of a monotone DNF with the
// Karp–Luby–Madras coverage algorithm — the classical FPRAS for DNF
// counting, adapted to weighted (probabilistic) variables. Unlike naive
// possible-world sampling, its relative error is bounded independently
// of how small P(F) is, which is exactly the regime (small input
// probabilities) where the paper shows naive MC needs many samples.
//
// The estimator: let U = Σ_i P(clause_i) (clauses treated in
// isolation). Sample a clause i with probability P(clause_i)/U, then a
// world x conditioned on clause_i being true, and output
// U / N(x) where N(x) is the number of clauses satisfied by x. The
// expectation of the output is exactly P(F); averaging over `samples`
// draws gives the estimate.
func KarpLuby(clauses [][]int32, probs []float64, samples int, rng *rand.Rand) float64 {
	p, _ := KarpLubyCtx(nil, clauses, probs, samples, rng)
	return p
}

// KarpLubyCtx is KarpLuby with cooperative cancellation: the sampling
// loop polls ctx every pollInterval rounds and returns its error when it
// is done. A nil ctx never cancels.
func KarpLubyCtx(ctx context.Context, clauses [][]int32, probs []float64, samples int, rng *rand.Rand) (float64, error) {
	if len(clauses) == 0 {
		return 0, nil
	}
	// Normalize: drop duplicate variables inside clauses; an empty
	// clause makes the formula true.
	norm := make([][]int32, 0, len(clauses))
	for _, c := range clauses {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		uniq := cc[:0]
		for i, v := range cc {
			if i == 0 || cc[i-1] != v {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) == 0 {
			return 1, nil
		}
		norm = append(norm, uniq)
	}
	// Clause weights and their prefix sums for sampling i ∝ P(c_i).
	weights := make([]float64, len(norm))
	total := 0.0
	for i, c := range norm {
		w := 1.0
		for _, v := range c {
			w *= probs[v]
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		return 0, nil
	}
	prefix := make([]float64, len(norm))
	acc := 0.0
	for i, w := range weights {
		acc += w
		prefix[i] = acc
	}
	// Local dense variable ids.
	varIdx := map[int32]int{}
	var order []int32
	for _, c := range norm {
		for _, v := range c {
			if _, ok := varIdx[v]; !ok {
				varIdx[v] = len(order)
				order = append(order, v)
			}
		}
	}
	local := make([][]int32, len(norm))
	for i, c := range norm {
		lc := make([]int32, len(c))
		for j, v := range c {
			lc[j] = int32(varIdx[v])
		}
		local[i] = lc
	}
	p := make([]float64, len(order))
	for i, v := range order {
		p[i] = probs[v]
	}

	truth := make([]bool, len(order))
	sum := 0.0
	for s := 0; s < samples; s++ {
		if ctx != nil && s%pollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		// Sample clause i with probability weights[i]/total.
		r := rng.Float64() * total
		i := sort.SearchFloat64s(prefix, r)
		if i >= len(norm) {
			i = len(norm) - 1
		}
		// Sample a world conditioned on clause i true: its variables are
		// true, the rest drawn from their marginals.
		for j := range truth {
			truth[j] = rng.Float64() < p[j]
		}
		for _, v := range local[i] {
			truth[v] = true
		}
		// Count satisfied clauses.
		n := 0
		for _, c := range local {
			sat := true
			for _, v := range c {
				if !truth[v] {
					sat = false
					break
				}
			}
			if sat {
				n++
			}
		}
		// Clause i is satisfied by construction, so n >= 1.
		sum += 1.0 / float64(n)
	}
	return total * sum / float64(samples), nil
}
