package mc

import (
	"math"
	"math/rand"
	"testing"

	"lapushdb/internal/exact"
)

func TestEstimateDegenerate(t *testing.T) {
	probs := []float64{0.5}
	rng := rand.New(rand.NewSource(1))
	if got := Estimate(nil, probs, 100, rng); got != 0 {
		t.Errorf("empty formula = %v, want 0", got)
	}
	if got := Estimate([][]int32{{}}, probs, 100, rng); got != 1 {
		t.Errorf("empty clause = %v, want 1", got)
	}
}

func TestEstimateConvergesToExact(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	probs := []float64{0.5, 0.4, 0.7, 0.2}
	clauses := [][]int32{{0, 1}, {0, 2}, {3}}
	want := exact.Prob(clauses, probs)
	got := Estimate(clauses, probs, 200000, rng)
	if math.Abs(got-want) > 0.01 {
		t.Errorf("MC estimate = %v, exact = %v", got, want)
	}
}

func TestEstimateVarianceShrinks(t *testing.T) {
	probs := []float64{0.5, 0.4, 0.7}
	clauses := [][]int32{{0, 1}, {0, 2}}
	want := exact.Prob(clauses, probs)
	spread := func(samples, reps int) float64 {
		worst := 0.0
		for r := 0; r < reps; r++ {
			rng := rand.New(rand.NewSource(int64(1000 + r)))
			if d := math.Abs(Estimate(clauses, probs, samples, rng) - want); d > worst {
				worst = d
			}
		}
		return worst
	}
	small := spread(50, 20)
	large := spread(50000, 20)
	if large >= small {
		t.Errorf("error did not shrink with more samples: %v -> %v", small, large)
	}
	if large > 0.02 {
		t.Errorf("large-sample error too big: %v", large)
	}
}
