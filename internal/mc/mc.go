// Package mc implements the Monte Carlo baseline MC(x) of the paper's
// experiments: the probability of each answer is estimated by sampling
// possible worlds of its lineage DNF x times.
package mc

import (
	"context"
	"math/rand"
	"sort"
)

// pollInterval is how many sampling rounds may pass between two context
// polls in the Ctx variants.
const pollInterval = 1024

// Estimate samples the monotone DNF formula `samples` times: in each
// round every variable is independently set true with its probability and
// the formula evaluated; the estimate is the fraction of satisfying
// rounds.
func Estimate(clauses [][]int32, probs []float64, samples int, rng *rand.Rand) float64 {
	p, _ := EstimateCtx(nil, clauses, probs, samples, rng)
	return p
}

// EstimateCtx is Estimate with cooperative cancellation: the sampling
// loop polls ctx every pollInterval rounds and returns its error when it
// is done. A nil ctx never cancels.
func EstimateCtx(ctx context.Context, clauses [][]int32, probs []float64, samples int, rng *rand.Rand) (float64, error) {
	if len(clauses) == 0 {
		return 0, nil
	}
	for _, c := range clauses {
		if len(c) == 0 {
			return 1, nil
		}
	}
	// Local variable ids keep the truth buffer dense.
	vars := map[int32]int{}
	var order []int32
	for _, c := range clauses {
		for _, v := range c {
			if _, ok := vars[v]; !ok {
				vars[v] = 0
				order = append(order, v)
			}
		}
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	for i, v := range order {
		vars[v] = i
	}
	local := make([][]int32, len(clauses))
	for i, c := range clauses {
		lc := make([]int32, len(c))
		for j, v := range c {
			lc[j] = int32(vars[v])
		}
		local[i] = lc
	}
	p := make([]float64, len(order))
	for i, v := range order {
		p[i] = probs[v]
	}
	truth := make([]bool, len(order))
	hits := 0
	for s := 0; s < samples; s++ {
		if ctx != nil && s%pollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return 0, err
			}
		}
		for i := range truth {
			truth[i] = rng.Float64() < p[i]
		}
		for _, c := range local {
			sat := true
			for _, v := range c {
				if !truth[v] {
					sat = false
					break
				}
			}
			if sat {
				hits++
				break
			}
		}
	}
	return float64(hits) / float64(samples), nil
}
