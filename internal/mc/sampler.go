package mc

import (
	"context"
	"math"
	"math/rand"
	"sort"
)

// KarpLubySampler is the Karp–Luby–Madras estimator as a resumable
// object: construction precomputes the clause weights and dense local
// variable ids once, and successive Sample calls draw further sample
// batches from the same RNG stream, refining the running estimate
// without re-touching earlier samples. This is what an anytime
// evaluator needs — a lower bound that tightens monotonically in
// wall-clock time, with the sampler's state (including the RNG
// position) carried across refinement rounds so that k calls of
// Sample(n) are bit-identical to one call of Sample(k·n).
//
// Alongside the point estimate the sampler tracks the sample variance,
// from which LowerBound derives a one-sided confidence bound
// estimate − z·stderr, clamped to [0, 1]. Trivial formulas (empty,
// tautological, or zero-weight) are detected at construction and
// reported exactly with zero error.
type KarpLubySampler struct {
	local  [][]int32 // clauses over dense local variable ids
	probs  []float64 // marginals, indexed by local id
	prefix []float64 // prefix sums of clause weights
	total  float64   // Σ_i P(clause_i), the estimator's scale
	truth  []bool    // scratch world, reused across samples
	rng    *rand.Rand

	n     int     // samples drawn so far
	sum   float64 // Σ 1/N(x) over samples
	sumSq float64 // Σ (1/N(x))² over samples

	done  bool    // trivial formula: estimate is exact, no sampling
	exact float64 // the trivial formula's probability
}

// NewKarpLubySampler prepares a resumable estimator for the monotone
// DNF over probs, drawing from rng. The rng is owned by the sampler
// from here on: its stream position is part of the resumable state.
func NewKarpLubySampler(clauses [][]int32, probs []float64, rng *rand.Rand) *KarpLubySampler {
	s := &KarpLubySampler{rng: rng}
	if len(clauses) == 0 {
		s.done = true
		return s
	}
	// Normalize: drop duplicate variables inside clauses; an empty
	// clause makes the formula true.
	norm := make([][]int32, 0, len(clauses))
	for _, c := range clauses {
		cc := append([]int32(nil), c...)
		sort.Slice(cc, func(i, j int) bool { return cc[i] < cc[j] })
		uniq := cc[:0]
		for i, v := range cc {
			if i == 0 || cc[i-1] != v {
				uniq = append(uniq, v)
			}
		}
		if len(uniq) == 0 {
			s.done = true
			s.exact = 1
			return s
		}
		norm = append(norm, uniq)
	}
	// Clause weights and their prefix sums for sampling i ∝ P(c_i).
	weights := make([]float64, len(norm))
	total := 0.0
	for i, c := range norm {
		w := 1.0
		for _, v := range c {
			w *= probs[v]
		}
		weights[i] = w
		total += w
	}
	if total == 0 {
		s.done = true
		return s
	}
	s.total = total
	s.prefix = make([]float64, len(norm))
	acc := 0.0
	for i, w := range weights {
		acc += w
		s.prefix[i] = acc
	}
	// Local dense variable ids.
	varIdx := map[int32]int{}
	var order []int32
	for _, c := range norm {
		for _, v := range c {
			if _, ok := varIdx[v]; !ok {
				varIdx[v] = len(order)
				order = append(order, v)
			}
		}
	}
	s.local = make([][]int32, len(norm))
	for i, c := range norm {
		lc := make([]int32, len(c))
		for j, v := range c {
			lc[j] = int32(varIdx[v])
		}
		s.local[i] = lc
	}
	s.probs = make([]float64, len(order))
	for i, v := range order {
		s.probs[i] = probs[v]
	}
	s.truth = make([]bool, len(order))
	return s
}

// Exact reports whether the formula was trivial (empty, tautological,
// or zero-weight): the estimate is its exact probability and sampling
// is a no-op.
func (s *KarpLubySampler) Exact() bool { return s.done }

// Samples returns the number of samples drawn so far.
func (s *KarpLubySampler) Samples() int { return s.n }

// Sample draws n further samples, polling ctx every pollInterval
// samples (counted over the sampler's lifetime, matching KarpLubyCtx)
// and returning its error when it is done. A nil ctx never cancels;
// trivial formulas return immediately.
func (s *KarpLubySampler) Sample(ctx context.Context, n int) error {
	if s.done {
		return nil
	}
	for i := 0; i < n; i++ {
		if ctx != nil && s.n%pollInterval == 0 {
			if err := ctx.Err(); err != nil {
				return err
			}
		}
		// Sample clause i with probability weights[i]/total.
		r := s.rng.Float64() * s.total
		ci := sort.SearchFloat64s(s.prefix, r)
		if ci >= len(s.local) {
			ci = len(s.local) - 1
		}
		// Sample a world conditioned on clause ci true: its variables
		// are true, the rest drawn from their marginals.
		for j := range s.truth {
			s.truth[j] = s.rng.Float64() < s.probs[j]
		}
		for _, v := range s.local[ci] {
			s.truth[v] = true
		}
		// Count satisfied clauses.
		sat := 0
		for _, c := range s.local {
			hit := true
			for _, v := range c {
				if !s.truth[v] {
					hit = false
					break
				}
			}
			if hit {
				sat++
			}
		}
		// Clause ci is satisfied by construction, so sat >= 1.
		x := 1.0 / float64(sat)
		s.sum += x
		s.sumSq += x * x
		s.n++
	}
	return nil
}

// Estimate returns the current probability estimate: total · mean of
// the 1/N(x) draws, whose expectation is exactly P(F). Before any
// sample it returns 0 (the trivial cases return their exact value).
func (s *KarpLubySampler) Estimate() float64 {
	if s.done {
		return s.exact
	}
	if s.n == 0 {
		return 0
	}
	return s.total * s.sum / float64(s.n)
}

// StdErr returns the standard error of Estimate (total · √(var/n)
// with the biased sample variance, 0 before the second sample).
func (s *KarpLubySampler) StdErr() float64 {
	if s.done || s.n < 2 {
		return 0
	}
	n := float64(s.n)
	mean := s.sum / n
	v := s.sumSq/n - mean*mean
	if v < 0 {
		v = 0 // floating-point cancellation on near-constant draws
	}
	return s.total * math.Sqrt(v/n)
}

// LowerBound returns a one-sided confidence lower bound on the
// probability: estimate − z·stderr, clamped to [0, 1]. Trivial
// formulas return their exact probability; with no samples drawn the
// bound is 0. The bound holds with the confidence of a z-sigma normal
// tail — it is statistical, unlike the deterministic bounds the
// dissociation and partial-expansion stages produce.
func (s *KarpLubySampler) LowerBound(z float64) float64 {
	if s.done {
		return s.exact
	}
	if s.n == 0 {
		return 0
	}
	// With a single clause every draw is 1/1: the estimate is the
	// clause's exact probability and the variance is legitimately 0.
	lb := s.Estimate() - z*s.StdErr()
	if len(s.local) > 1 && s.StdErr() == 0 {
		// Multi-clause formula whose draws happened to be constant so
		// far: the variance estimate is degenerate, not zero. Retreat
		// to the largest single clause weight, a deterministic lower
		// bound (P(F) >= max_i P(clause_i) by monotonicity).
		maxW := s.prefix[0]
		for i := 1; i < len(s.prefix); i++ {
			if w := s.prefix[i] - s.prefix[i-1]; w > maxW {
				maxW = w
			}
		}
		lb = maxW
	}
	if lb < 0 {
		return 0
	}
	if lb > 1 {
		return 1
	}
	return lb
}
