package store

import (
	"bytes"
	"context"
	"errors"
	"testing"
	"time"

	"lapushdb"
)

// lapushdbLoadBytes round-trips a Save'd database, standing in for a
// snapshot shipped over the wire.
func lapushdbLoadBytes(b []byte) (*lapushdb.DB, error) {
	return lapushdb.Load(bytes.NewReader(b))
}

func applyN(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := st.Apply([]Mutation{
			{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.1 + float64(i%8)/10)},
		}); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
	}
}

func TestFingerprintMatchesPublished(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v := st.Current()
	if got := Fingerprint(v.DB, v.Seq); got != v.Fingerprint {
		t.Fatalf("Fingerprint() = %q, published %q", got, v.Fingerprint)
	}
	applyN(t, st, 1)
	v = st.Current()
	if got := Fingerprint(v.DB, v.Seq); got != v.Fingerprint {
		t.Fatalf("after apply: Fingerprint() = %q, published %q", got, v.Fingerprint)
	}
}

func TestReadLogBasics(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v0 := st.Current()
	applyN(t, st, 5)

	recs, err := st.ReadLog(0, v0.Fingerprint, 0, 0)
	if err != nil {
		t.Fatalf("ReadLog(0): %v", err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want 5", len(recs))
	}
	for i, rec := range recs {
		if rec.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, rec.Seq)
		}
		if rec.Fingerprint == "" || len(rec.Muts) != 1 {
			t.Fatalf("record %d = %+v", i, rec)
		}
	}
	head := st.Current()
	if recs[4].Fingerprint != head.Fingerprint {
		t.Fatalf("last record fingerprint %q != head %q", recs[4].Fingerprint, head.Fingerprint)
	}
	if seq, fp := st.Head(); seq != head.Seq || fp != head.Fingerprint {
		t.Fatalf("Head() = (%d, %s), Current() = (%d, %s)", seq, fp, head.Seq, head.Fingerprint)
	}

	// max bounds the page.
	recs, err = st.ReadLog(1, "", 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].Seq != 2 || recs[1].Seq != 3 {
		t.Fatalf("paged read = %+v", recs)
	}

	// Reading at the head returns nothing.
	recs, err = st.ReadLog(head.Seq, head.Fingerprint, 0, 0)
	if err != nil || len(recs) != 0 {
		t.Fatalf("read at head = %v, %v", recs, err)
	}

	// A position past the head is divergence.
	if _, err := st.ReadLog(head.Seq+3, "", 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("past-head read: %v, want ErrDiverged", err)
	}

	// A wrong fingerprint at a valid position is divergence.
	if _, err := st.ReadLog(2, "bogus@2", 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("wrong-fingerprint read: %v, want ErrDiverged", err)
	}
}

func TestReadLogTruncatedByCheckpoint(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applyN(t, st, 4)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Records 1..4 folded into the checkpoint; the anchor is now 4.
	if _, err := st.ReadLog(2, "", 0, 0); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("pre-checkpoint read: %v, want ErrLogTruncated", err)
	}
	applyN(t, st, 2)
	recs, err := st.ReadLog(4, st.Current().DB.SchemaFingerprint()+"@4", 0, 0)
	if err != nil {
		t.Fatalf("read from checkpoint anchor: %v", err)
	}
	if len(recs) != 2 || recs[0].Seq != 5 {
		t.Fatalf("post-checkpoint records = %+v", recs)
	}
}

func TestReadLogRetentionAgesOut(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{LogRetention: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applyN(t, st, 10)
	if _, err := st.ReadLog(0, "", 0, 0); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("aged-out read: %v, want ErrLogTruncated", err)
	}
	recs, err := st.ReadLog(7, "", 0, 0)
	if err != nil {
		t.Fatalf("read inside retention: %v", err)
	}
	if len(recs) != 3 || recs[0].Seq != 8 {
		t.Fatalf("retained records = %+v", recs)
	}
}

func TestReplayRebuildsLogTail(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, st, 3)
	want, err := st.ReadLog(0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: WAL replay must rebuild the same retained tail, with the
	// same per-record fingerprints, so a replica can resume against a
	// restarted primary.
	st2, err := Open(nil, Options{Dir: dir, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	got, err := st2.ReadLog(0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed tail has %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seq != want[i].Seq || got[i].Fingerprint != want[i].Fingerprint {
			t.Fatalf("record %d: got (%d, %s), want (%d, %s)",
				i, got[i].Seq, got[i].Fingerprint, want[i].Seq, want[i].Fingerprint)
		}
	}
}

func TestApplyReplicatedParity(t *testing.T) {
	primary, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	replica, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()

	applyN(t, primary, 4)
	recs, err := primary.ReadLog(0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := replica.ApplyReplicated(rec); err != nil {
			t.Fatalf("replicate seq %d: %v", rec.Seq, err)
		}
	}
	pv, rv := primary.Current(), replica.Current()
	if pv.Seq != rv.Seq || pv.Fingerprint != rv.Fingerprint {
		t.Fatalf("replica at (%d, %s), primary at (%d, %s)", rv.Seq, rv.Fingerprint, pv.Seq, pv.Fingerprint)
	}
	if !bytes.Equal(dbBytes(t, pv.DB), dbBytes(t, rv.DB)) {
		t.Fatal("replicated database is not bit-identical to the primary's")
	}

	// Gaps are refused.
	if _, err := replica.ApplyReplicated(LogRecord{Seq: rv.Seq + 2, Muts: recs[0].Muts}); !errors.Is(err, ErrDiverged) {
		t.Fatalf("gap apply: %v, want ErrDiverged", err)
	}
	// A record whose fingerprint the local apply cannot reproduce is
	// refused without publishing.
	bad := LogRecord{Seq: rv.Seq + 1, Fingerprint: "bogus@" + "5", Muts: recs[0].Muts}
	if _, err := replica.ApplyReplicated(bad); !errors.Is(err, ErrDiverged) {
		t.Fatalf("bad-fingerprint apply: %v, want ErrDiverged", err)
	}
	if replica.Current() != rv {
		t.Fatal("refused record still published a version")
	}
}

func TestApplyReplicatedPersists(t *testing.T) {
	primary, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyN(t, primary, 3)
	recs, err := primary.ReadLog(0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	replica, err := Open(testSeedDB(t), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range recs {
		if _, err := replica.ApplyReplicated(rec); err != nil {
			t.Fatalf("replicate seq %d: %v", rec.Seq, err)
		}
	}
	want := dbBytes(t, replica.Current().DB)
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: the replicated records were WAL-logged locally, so the
	// replica recovers to the same (seq, fingerprint) without a primary.
	re, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	v := re.Current()
	if v.Seq != recs[len(recs)-1].Seq || v.Fingerprint != recs[len(recs)-1].Fingerprint {
		t.Fatalf("recovered to (%d, %s), want (%d, %s)",
			v.Seq, v.Fingerprint, recs[len(recs)-1].Seq, recs[len(recs)-1].Fingerprint)
	}
	if !bytes.Equal(want, dbBytes(t, v.DB)) {
		t.Fatal("recovered replica state is not bit-identical")
	}
}

func TestInstallSnapshotDurable(t *testing.T) {
	primary, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	applyN(t, primary, 7)
	pv := primary.Current()

	dir := t.TempDir()
	replica, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	// Install the primary's state at its seq, as a bootstrap would.
	snap, err := lapushdbLoadBytes(dbBytes(t, pv.DB))
	if err != nil {
		t.Fatal(err)
	}
	v, err := replica.InstallSnapshot(snap, pv.Seq, pv.Epoch)
	if err != nil {
		t.Fatalf("InstallSnapshot: %v", err)
	}
	if v.Seq != pv.Seq || v.Fingerprint != pv.Fingerprint {
		t.Fatalf("installed (%d, %s), want (%d, %s)", v.Seq, v.Fingerprint, pv.Seq, pv.Fingerprint)
	}
	// The log tail re-anchored: reads from the install point work,
	// earlier positions are truncated.
	if _, err := replica.ReadLog(pv.Seq-1, "", 0, 0); !errors.Is(err, ErrLogTruncated) {
		t.Fatalf("pre-install read: %v, want ErrLogTruncated", err)
	}
	if err := replica.Close(); err != nil {
		t.Fatal(err)
	}

	// The install went through the checkpoint protocol: a restart
	// recovers it with no WAL replay needed.
	re, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rv := re.Current()
	if rv.Seq != pv.Seq || rv.Fingerprint != pv.Fingerprint {
		t.Fatalf("recovered (%d, %s), want (%d, %s)", rv.Seq, rv.Fingerprint, pv.Seq, pv.Fingerprint)
	}
	if !bytes.Equal(dbBytes(t, pv.DB), dbBytes(t, rv.DB)) {
		t.Fatal("recovered snapshot is not bit-identical")
	}
}

func TestWaitForSeq(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Already satisfied: returns immediately.
	if err := st.WaitForSeq(context.Background(), 0); err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		done <- st.WaitForSeq(ctx, 2)
	}()
	applyN(t, st, 2)
	if err := <-done; err != nil {
		t.Fatalf("WaitForSeq: %v", err)
	}

	// Deadline fires when nothing is published.
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := st.WaitForSeq(ctx, 99); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitForSeq past head: %v, want deadline", err)
	}
}
