package store

import (
	"io"
	"os"
	"path/filepath"
)

// FS abstracts every filesystem operation the store performs, so that
// the WAL and checkpoint protocols never call os.* directly. The point
// is fault injection: the chaos tests swap in errfs, which fails the
// Nth write, fsync, rename, truncate, or close, and then assert that
// the store either recovers bit-identically on reopen or refuses
// cleanly. Production code uses OSFS.
type FS interface {
	// OpenFile opens a file with os.OpenFile semantics.
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// CreateTemp creates a temporary file with os.CreateTemp semantics.
	CreateTemp(dir, pattern string) (File, error)
	// Rename renames (moves) a file, replacing the target if it exists.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// MkdirAll creates a directory tree.
	MkdirAll(path string, perm os.FileMode) error
	// Glob lists the files matching a shell pattern.
	Glob(pattern string) ([]string, error)
	// SyncDir fsyncs a directory, making renames within it durable.
	SyncDir(dir string) error
}

// File is the subset of *os.File the store's durability paths use.
type File interface {
	io.Reader
	io.Writer
	io.Seeker
	io.Closer
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Name() string
}

// OSFS is the real filesystem.
var OSFS FS = osFS{}

type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }

func (osFS) Glob(pattern string) ([]string, error) { return filepath.Glob(pattern) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
