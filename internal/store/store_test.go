package store

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"lapushdb"
)

// testSeedDB builds the small movie database used across the repo.
func testSeedDB(t testing.TB) *lapushdb.DB {
	t.Helper()
	db := lapushdb.Open()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	likes, err := db.CreateRelation("Likes", "user", "movie")
	must(err)
	stars, err := db.CreateRelation("Stars", "movie", "actor")
	must(err)
	must(likes.Insert(0.9, "ann", "heat"))
	must(likes.Insert(0.5, "bob", "heat"))
	must(stars.Insert(0.8, "heat", "deniro"))
	must(stars.Insert(0.3, "heat", "pacino"))
	return db
}

func dbBytes(t testing.TB, db *lapushdb.DB) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := db.Save(&b); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return b.Bytes()
}

func pf(p float64) *float64 { return &p }

func TestEphemeralVersioning(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v0 := st.Current()
	if v0.Seq != 0 {
		t.Fatalf("boot seq = %d, want 0", v0.Seq)
	}
	before := dbBytes(t, v0.DB)

	v1, err := st.Apply([]Mutation{
		{Op: OpInsert, Rel: "Likes", Tuple: []string{"carol", "heat"}, P: pf(0.7)},
		{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.95)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Seq != 1 || v1.Fingerprint == v0.Fingerprint {
		t.Fatalf("v1 = seq %d fp %q, want seq 1 and a fresh fingerprint", v1.Seq, v1.Fingerprint)
	}
	// Snapshot isolation: the pinned v0 is bit-identical to its state
	// before the mutation.
	if !bytes.Equal(before, dbBytes(t, v0.DB)) {
		t.Fatal("published version changed under a later mutation")
	}
	if n := v1.DB.Relation("Likes").Len(); n != 3 {
		t.Fatalf("v1 Likes has %d tuples, want 3", n)
	}
	if n := v0.DB.Relation("Likes").Len(); n != 2 {
		t.Fatalf("v0 Likes has %d tuples, want 2", n)
	}
	if st.Current() != v1 {
		t.Fatal("Current() is not the applied version")
	}
	st2 := st.Stats()
	if st2.Seq != 1 || st2.MutationsTotal != 2 || st2.BatchesTotal != 1 || st2.Durable {
		t.Fatalf("stats = %+v", st2)
	}
}

func TestApplyIsAtomic(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	v0 := st.Current()
	_, err = st.Apply([]Mutation{
		{Op: OpInsert, Rel: "Likes", Tuple: []string{"dave", "ronin"}, P: pf(0.4)},
		{Op: OpSetProb, Rel: "Likes", Tuple: []string{"nobody", "nothing"}, P: pf(0.5)},
	})
	if err == nil {
		t.Fatal("want error for batch with a missing tuple")
	}
	if st.Current() != v0 {
		t.Fatal("failed batch published a new version")
	}
	if n := st.Current().DB.Relation("Likes").Len(); n != 2 {
		t.Fatalf("failed batch leaked a partial insert: %d tuples", n)
	}
	if _, err := st.Apply(nil); err == nil {
		t.Fatal("want error for empty batch")
	}
}

func TestMutationValidation(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	bad := [][]Mutation{
		{{Op: "nope"}},
		{{Op: OpInsert, Rel: "Missing", Tuple: []string{"x"}, P: pf(0.5)}},
		{{Op: OpInsert, Rel: "Likes", Tuple: []string{"a", "b"}}},                   // missing p
		{{Op: OpInsert, Rel: "Likes", Tuple: []string{"a"}, P: pf(0.5)}},            // arity
		{{Op: OpInsert, Rel: "Likes", Tuple: []string{"a", "b"}, P: pf(1.5)}},       // p range
		{{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}}},             // missing p
		{{Op: OpDelete, Rel: "Likes", Tuple: []string{"zz", "zz"}}},                 // missing tuple
		{{Op: OpScaleProbs, Factor: 0}},                                             // factor range
		{{Op: OpScaleProbs, Factor: 1.5}},                                           // factor range
		{{Op: OpCreateRelation, Rel: ""}},                                           // name
		{{Op: OpCreateRelation, Rel: "T"}},                                          // no columns
		{{Op: OpCreateRelation, Rel: "T", Cols: []string{"a"}, Key: []string{"b"}}}, // bad key
		{{Op: OpCreateRelation, Rel: "Likes", Cols: []string{"a"}}},                 // duplicate
	}
	for i, muts := range bad {
		if _, err := st.Apply(muts); err == nil {
			t.Errorf("case %d: batch %+v applied, want error", i, muts)
		}
	}
	if st.Current().Seq != 0 {
		t.Fatalf("invalid batches advanced the version to %d", st.Current().Seq)
	}

	// Deterministic relations: p defaults to 1 and must be 1.
	if _, err := st.Apply([]Mutation{
		{Op: OpCreateRelation, Rel: "Cert", Cols: []string{"x"}, Deterministic: true, Key: []string{"x"}},
		{Op: OpInsert, Rel: "Cert", Tuple: []string{"a"}},
	}); err != nil {
		t.Fatalf("deterministic insert without p: %v", err)
	}
	if _, err := st.Apply([]Mutation{{Op: OpInsert, Rel: "Cert", Tuple: []string{"b"}, P: pf(0.5)}}); err == nil {
		t.Fatal("want error for p != 1 on deterministic relation")
	}
	if _, err := st.Apply([]Mutation{{Op: OpSetProb, Rel: "Cert", Tuple: []string{"a"}, P: pf(0.5)}}); err == nil {
		t.Fatal("want error for set_prob on deterministic relation")
	}
}

func TestDurableRecoverySeedIgnoredOnSecondBoot(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply([]Mutation{
		{Op: OpCreateRelation, Rel: "Fan", Cols: []string{"actor"}},
		{Op: OpInsert, Rel: "Fan", Tuple: []string{"deniro"}, P: pf(0.6)},
	}); err != nil {
		t.Fatal(err)
	}
	v, err := st.Apply([]Mutation{{Op: OpScaleProbs, Factor: 0.5}})
	if err != nil {
		t.Fatal(err)
	}
	want := dbBytes(t, v.DB)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen with a different (even nil) seed: recovered state wins.
	st2, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	v2 := st2.Current()
	if v2.Seq != 2 {
		t.Fatalf("recovered seq = %d, want 2", v2.Seq)
	}
	if !bytes.Equal(want, dbBytes(t, v2.DB)) {
		t.Fatal("recovered database differs from the last published version")
	}
	if v2.Fingerprint != v.Fingerprint {
		t.Fatalf("recovered fingerprint %q, want %q", v2.Fingerprint, v.Fingerprint)
	}
}

func TestCheckpointThresholdTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir, CheckpointEvery: 2, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := st.Apply([]Mutation{
			{Op: OpInsert, Rel: "Likes", Tuple: []string{fmt.Sprintf("u%d", i), "heat"}, P: pf(0.5)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	stats := st.Stats()
	// 3 checkpoints: the boot anchor at seq 0 plus thresholds at 2 and 4.
	if stats.Checkpoints != 3 || stats.CheckpointSeq != 4 {
		t.Fatalf("stats = %+v, want 3 checkpoints with last at seq 4", stats)
	}
	// Only batch 5 outlives the last checkpoint in the WAL.
	if stats.WALBytes <= walHeaderSize || stats.WALBytes > 512 {
		t.Fatalf("wal bytes = %d, want one record's worth", stats.WALBytes)
	}
	want := dbBytes(t, st.Current().DB)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Only the live checkpoint file remains.
	matches, _ := filepath.Glob(filepath.Join(dir, "checkpoint-*.lpd"))
	if len(matches) != 1 {
		t.Fatalf("stale checkpoints left behind: %v", matches)
	}

	st2, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if st2.Current().Seq != 5 || !bytes.Equal(want, dbBytes(t, st2.Current().DB)) {
		t.Fatalf("recovery after checkpointing diverged (seq %d)", st2.Current().Seq)
	}

	// A forced checkpoint empties the WAL.
	if err := st2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := st2.Stats().WALBytes; got != walHeaderSize {
		t.Fatalf("wal bytes after forced checkpoint = %d, want %d", got, walHeaderSize)
	}
}

// randomBatches generates n valid mutation batches against the seed
// database, tracking live Likes tuples so tuple-addressed mutations
// always resolve.
func randomBatches(rng *rand.Rand, n int) [][]Mutation {
	alive := [][]string{{"ann", "heat"}, {"bob", "heat"}}
	var batches [][]Mutation
	for len(batches) < n {
		var muts []Mutation
		for k := rng.Intn(3) + 1; k > 0; k-- {
			switch r := rng.Float64(); {
			case r < 0.45:
				tup := []string{fmt.Sprintf("u%d", rng.Intn(30)), fmt.Sprintf("%d", rng.Intn(20))}
				muts = append(muts, Mutation{Op: OpInsert, Rel: "Likes", Tuple: tup, P: pf(float64(rng.Intn(100)+1) / 100)})
				alive = append(alive, tup)
			case r < 0.7 && len(alive) > 0:
				tup := alive[rng.Intn(len(alive))]
				muts = append(muts, Mutation{Op: OpSetProb, Rel: "Likes", Tuple: tup, P: pf(float64(rng.Intn(100)+1) / 100)})
			case r < 0.85 && len(alive) > 1:
				i := rng.Intn(len(alive))
				tup := alive[i]
				muts = append(muts, Mutation{Op: OpDelete, Rel: "Likes", Tuple: tup})
				// Mirror Find semantics: the first equal tuple goes away.
				for j, a := range alive {
					if a[0] == tup[0] && a[1] == tup[1] {
						alive = append(alive[:j], alive[j+1:]...)
						break
					}
				}
			case r < 0.95:
				muts = append(muts, Mutation{Op: OpScaleProbs, Factor: 0.9})
			default:
				muts = append(muts, Mutation{Op: OpCreateRelation, Rel: fmt.Sprintf("T%d", len(batches)*8+int(k)), Cols: []string{"z"}})
			}
		}
		if len(muts) > 0 {
			batches = append(batches, muts)
		}
	}
	return batches
}

// TestCrashRecoveryEveryWALByte is the crash-recovery property test: it
// applies random mutation batches (with concurrent readers exercising
// snapshot isolation under -race), then simulates a crash at every WAL
// byte boundary — including mid-record torn writes — and asserts the
// reopened store equals exactly the last batch whose record fully fit.
func TestCrashRecoveryEveryWALByte(t *testing.T) {
	dir := t.TempDir()
	seed := testSeedDB(t)
	st, err := Open(seed, Options{Dir: dir, Fsync: FsyncAlways, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	// Concurrent readers: pin versions and query them while the applier
	// runs. Purely for -race coverage of the COW sharing discipline.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := st.Current()
				if _, err := v.DB.Rank("q(u) :- Likes(u, m), Stars(m, a)", &lapushdb.Options{}); err != nil {
					t.Errorf("concurrent rank: %v", err)
					return
				}
			}
		}()
	}

	rng := rand.New(rand.NewSource(7))
	batches := randomBatches(rng, 10)
	snaps := [][]byte{dbBytes(t, st.Current().DB)} // snaps[k] = state after k batches
	walSizes := []int64{st.Stats().WALBytes}       // walSizes[k] = WAL size after k batches
	for _, muts := range batches {
		v, err := st.Apply(muts)
		if err != nil {
			t.Fatalf("apply %+v: %v", muts, err)
		}
		snaps = append(snaps, dbBytes(t, v.DB))
		walSizes = append(walSizes, st.Stats().WALBytes)
	}
	close(stop)
	wg.Wait()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if int64(len(wal)) != walSizes[len(walSizes)-1] {
		t.Fatalf("wal file is %d bytes, stats said %d", len(wal), walSizes[len(walSizes)-1])
	}
	manifestBytes, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	ckptName := fmt.Sprintf("checkpoint-%09d.lpd", 0)
	ckptBytes, err := os.ReadFile(filepath.Join(dir, ckptName))
	if err != nil {
		t.Fatal(err)
	}

	for cut := 0; cut <= len(wal); cut++ {
		crash := filepath.Join(dir, fmt.Sprintf("crash-%d", cut))
		if err := os.Mkdir(crash, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, manifestName), manifestBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, ckptName), ckptBytes, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(crash, walName), wal[:cut], 0o644); err != nil {
			t.Fatal(err)
		}

		// The expected surviving state: the last batch whose WAL record
		// fully fits in the first cut bytes.
		want := 0
		for k := range walSizes {
			if walSizes[k] <= int64(cut) {
				want = k
			}
		}

		rec, err := Open(nil, Options{Dir: crash, Fsync: FsyncNever, CheckpointEvery: -1})
		if err != nil {
			t.Fatalf("cut %d: reopen: %v", cut, err)
		}
		v := rec.Current()
		if v.Seq != uint64(want) {
			t.Fatalf("cut %d: recovered seq %d, want %d", cut, v.Seq, want)
		}
		if !bytes.Equal(snaps[want], dbBytes(t, v.DB)) {
			t.Fatalf("cut %d: recovered state differs from version %d", cut, want)
		}
		rec.Close()
		os.RemoveAll(crash)
	}
}

func TestRecoveryAfterTornTailContinues(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := st.Apply([]Mutation{
			{Op: OpInsert, Rel: "Likes", Tuple: []string{fmt.Sprintf("u%d", i), "heat"}, P: pf(0.5)},
		}); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	// Corrupt a byte inside the last record's payload: CRC must reject
	// it and recovery must truncate back to batch 2.
	walPath := filepath.Join(dir, walName)
	wal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	wal[len(wal)-1] ^= 0xff
	if err := os.WriteFile(walPath, wal, 0o644); err != nil {
		t.Fatal(err)
	}

	st2, err := Open(nil, Options{Dir: dir, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if st2.Current().Seq != 2 {
		t.Fatalf("recovered seq = %d, want 2 after corrupting batch 3", st2.Current().Seq)
	}
	// The store keeps accepting batches after truncating a torn tail.
	v, err := st2.Apply([]Mutation{{Op: OpInsert, Rel: "Likes", Tuple: []string{"zed", "heat"}, P: pf(0.1)}})
	if err != nil {
		t.Fatal(err)
	}
	if v.Seq != 3 {
		t.Fatalf("post-recovery apply got seq %d, want 3", v.Seq)
	}
	want := dbBytes(t, v.DB)
	st2.Close()

	st3, err := Open(nil, Options{Dir: dir, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st3.Close()
	if st3.Current().Seq != 3 || !bytes.Equal(want, dbBytes(t, st3.Current().DB)) {
		t.Fatal("second recovery lost the post-truncation batch")
	}
}

// TestSnapshotIsolationBitIdentical pins one version and checks that
// ranking it while mutations land concurrently stays bit-identical to
// ranking an isolated deep copy of the same version.
func TestSnapshotIsolationBitIdentical(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	const query = "q(u) :- Likes(u, m), Stars(m, a)"
	pinned := st.Current()
	baselineDB := pinned.DB.Clone() // fully isolated deep copy
	baseline, err := baselineDB.Rank(query, &lapushdb.Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(3))
		for _, muts := range randomBatches(rng, 30) {
			if _, err := st.Apply(muts); err != nil {
				t.Errorf("apply: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 20; i++ {
		got, err := pinned.DB.Rank(query, &lapushdb.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(baseline) {
			t.Fatalf("pinned rank returned %d answers, baseline %d", len(got), len(baseline))
		}
		for j := range got {
			if got[j].Score != baseline[j].Score || got[j].Values[0] != baseline[j].Values[0] {
				t.Fatalf("answer %d diverged under concurrent mutations: %+v vs %+v", j, got[j], baseline[j])
			}
		}
	}
	wg.Wait()
}

func TestDurabilityErrorIsTyped(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir, Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	st.wal.f.Close() // simulate the log device going away
	_, err = st.Apply([]Mutation{{Op: OpScaleProbs, Factor: 0.5}})
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("want ErrDurability, got %v", err)
	}
	// A validation failure, by contrast, is not a durability error.
	_, err = st.Apply([]Mutation{{Op: "nope"}})
	if err == nil || errors.Is(err, ErrDurability) {
		t.Fatalf("validation error misclassified: %v", err)
	}
}
