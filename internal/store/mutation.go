package store

import (
	"fmt"

	"lapushdb"
)

// Mutation op names. A WAL record is a batch of these; the same encoding
// travels over POST /v1/ingest.
const (
	// OpCreateRelation adds a relation (Rel, Cols, Deterministic, Key).
	OpCreateRelation = "create_relation"
	// OpInsert adds one tuple (Rel, Tuple, P; P defaults to 1 for
	// deterministic relations and is required otherwise).
	OpInsert = "insert"
	// OpSetProb updates the probability of the first tuple equal to
	// Tuple (Rel, Tuple, P).
	OpSetProb = "set_prob"
	// OpDelete removes the first tuple equal to Tuple (Rel, Tuple).
	OpDelete = "delete"
	// OpScaleProbs multiplies every tuple probability in the database by
	// Factor in (0, 1] — the paper's probability-scaling knob
	// (Proposition 21) as an online operation.
	OpScaleProbs = "scale_probs"
)

// Mutation is one element of a mutation batch. Tuples are addressed by
// their external string values, exactly as they appear in CSV input:
// numeric-looking strings encode as integers, everything else interns
// into the string dictionary, so a tuple inserted from a CSV row and a
// tuple addressed by a mutation resolve identically.
type Mutation struct {
	// Op selects the mutation kind (see the Op* constants).
	Op string `json:"op"`
	// Rel names the target relation (every op except scale_probs).
	Rel string `json:"rel,omitempty"`
	// Cols names the new relation's attribute columns (create_relation).
	Cols []string `json:"cols,omitempty"`
	// Deterministic marks the new relation's tuples as all certain
	// (create_relation).
	Deterministic bool `json:"deterministic,omitempty"`
	// Key optionally declares the new relation's primary key columns
	// (create_relation).
	Key []string `json:"key,omitempty"`
	// Tuple holds the external string values addressing or defining a
	// tuple (insert, set_prob, delete). Duplicate tuples resolve to the
	// first occurrence.
	Tuple []string `json:"tuple,omitempty"`
	// P is the tuple probability in [0, 1] (insert, set_prob). Optional
	// for inserts into deterministic relations, where it must be 1.
	P *float64 `json:"p,omitempty"`
	// Factor is the global probability scale factor in (0, 1]
	// (scale_probs).
	Factor float64 `json:"factor,omitempty"`
}

// applyMutation validates and applies one mutation to db. Validation is
// strict enough that no engine-level panic is reachable from a
// mutation, however malformed: panics would poison WAL replay.
func applyMutation(db *lapushdb.DB, m Mutation) error {
	switch m.Op {
	case OpCreateRelation:
		if m.Rel == "" {
			return fmt.Errorf("missing relation name")
		}
		if len(m.Cols) == 0 {
			return fmt.Errorf("relation %s needs at least one column", m.Rel)
		}
		for _, k := range m.Key {
			if !contains(m.Cols, k) {
				return fmt.Errorf("key column %q is not a column of %s", k, m.Rel)
			}
		}
		var (
			r   *lapushdb.Relation
			err error
		)
		if m.Deterministic {
			r, err = db.CreateDeterministicRelation(m.Rel, m.Cols...)
		} else {
			r, err = db.CreateRelation(m.Rel, m.Cols...)
		}
		if err != nil {
			return err
		}
		if len(m.Key) > 0 {
			r.SetKey(m.Key...)
		}
		return nil

	case OpInsert:
		r := db.Relation(m.Rel)
		if r == nil {
			return fmt.Errorf("unknown relation %q", m.Rel)
		}
		p := 1.0
		if m.P != nil {
			p = *m.P
		} else if !r.Deterministic() {
			return fmt.Errorf("insert into %s requires a probability", m.Rel)
		}
		if r.Deterministic() && p != 1 {
			return fmt.Errorf("deterministic relation %s requires probability 1, got %v", m.Rel, p)
		}
		return r.Insert(p, anyValues(m.Tuple)...)

	case OpSetProb:
		r, i, err := findTuple(db, m)
		if err != nil {
			return err
		}
		if m.P == nil {
			return fmt.Errorf("set_prob on %s requires a probability", m.Rel)
		}
		return r.SetProbAt(i, *m.P)

	case OpDelete:
		r, i, err := findTuple(db, m)
		if err != nil {
			return err
		}
		return r.DeleteAt(i)

	case OpScaleProbs:
		if m.Factor <= 0 || m.Factor > 1 {
			return fmt.Errorf("scale factor %v out of (0, 1]", m.Factor)
		}
		db.ScaleProbs(m.Factor)
		return nil

	default:
		return fmt.Errorf("unknown mutation op %q", m.Op)
	}
}

// findTuple resolves the relation and row index a tuple-addressed
// mutation targets.
func findTuple(db *lapushdb.DB, m Mutation) (*lapushdb.Relation, int, error) {
	r := db.Relation(m.Rel)
	if r == nil {
		return nil, 0, fmt.Errorf("unknown relation %q", m.Rel)
	}
	i, ok := r.Find(anyValues(m.Tuple)...)
	if !ok {
		return nil, 0, fmt.Errorf("no tuple %v in %s", m.Tuple, m.Rel)
	}
	return r, i, nil
}

// applyBatch applies a mutation batch in order, stopping at the first
// failure. The caller provides atomicity by applying to a private
// copy-on-write clone and discarding it on error.
func applyBatch(db *lapushdb.DB, muts []Mutation) error {
	for i := range muts {
		if err := applyMutation(db, muts[i]); err != nil {
			return fmt.Errorf("mutation %d (%s): %w", i, muts[i].Op, err)
		}
	}
	return nil
}

func anyValues(tuple []string) []any {
	out := make([]any, len(tuple))
	for i, s := range tuple {
		out[i] = s
	}
	return out
}

func contains(ss []string, s string) bool {
	for _, c := range ss {
		if c == s {
			return true
		}
	}
	return false
}
