package store

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// All WAL I/O goes through the store's FS interface (see fs.go), never
// os.* directly, so the chaos tests can fail any individual write,
// fsync, or truncate and assert the recovery invariants.

// Write-ahead log. The file starts with an 8-byte magic header; each
// record is
//
//	uint32 LE payload length | uint32 LE CRC32C(payload) | payload
//
// where the payload is the JSON encoding of a walRecord (one mutation
// batch with its version sequence number). Records are appended and
// optionally fsynced before the batch's version is published, so a
// crash can lose at most the batches that were never acknowledged; a
// torn tail (partial record, bad CRC, undecodable payload) is truncated
// on recovery instead of failing it.

const (
	walMagic = "LPDWAL01"
	// walHeaderSize is the byte length of the magic header.
	walHeaderSize = int64(len(walMagic))
	// maxWALRecordBytes bounds one record's payload; a torn or corrupted
	// length prefix must never drive a multi-gigabyte allocation.
	maxWALRecordBytes = 64 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// walRecord is one durably-logged mutation batch. Epoch is the
// promotion epoch the batch was committed under; it is omitted when
// zero so epoch-0 WALs are byte-identical to the pre-epoch format and
// WALs written by pre-epoch binaries decode as epoch 0.
type walRecord struct {
	Seq   uint64     `json:"seq"`
	Epoch uint64     `json:"epoch,omitempty"`
	Muts  []Mutation `json:"muts"`
}

// walWriter appends records to an open WAL file.
type walWriter struct {
	f      File
	size   int64 // current file size = offset of the next record
	sync   bool  // fsync after every append
	broken error // first unrecoverable write error; poisons the writer
}

// append writes one record (and fsyncs under FsyncAlways). On a failed
// or partial write it truncates back to the last clean record boundary
// so later appends don't bury garbage mid-file; if even that fails the
// writer is poisoned and every subsequent append errors.
func (w *walWriter) append(payload []byte) error {
	if w.broken != nil {
		return fmt.Errorf("store: wal writer unusable after earlier error: %w", w.broken)
	}
	if len(payload) > maxWALRecordBytes {
		return fmt.Errorf("store: wal record of %d bytes exceeds the %d byte limit", len(payload), maxWALRecordBytes)
	}
	buf := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.Checksum(payload, crcTable))
	copy(buf[8:], payload)
	if _, err := w.f.Write(buf); err != nil {
		w.restoreTail(err)
		return fmt.Errorf("store: wal append: %w", err)
	}
	if w.sync {
		if err := w.f.Sync(); err != nil {
			// Durability of the record is unknown; roll it back so the
			// acknowledged state and the recovered state stay equal.
			w.restoreTail(err)
			return fmt.Errorf("store: wal fsync: %w", err)
		}
	}
	w.size += int64(len(buf))
	return nil
}

// reset truncates the WAL back to its magic header after a checkpoint
// has captured everything it held. The truncation is always fsynced —
// checkpoints are rare, and replaying stale records over a newer
// checkpoint would be skipped by sequence number anyway, so this only
// bounds recovery work.
func (w *walWriter) reset() error {
	if w.broken != nil {
		return fmt.Errorf("store: wal writer unusable after earlier error: %w", w.broken)
	}
	if err := w.f.Truncate(walHeaderSize); err != nil {
		w.broken = err
		return err
	}
	if _, err := w.f.Seek(walHeaderSize, io.SeekStart); err != nil {
		w.broken = err
		return err
	}
	w.size = walHeaderSize
	return w.f.Sync()
}

// restoreTail truncates the file back to the last clean record
// boundary after a failed append; on failure the writer is poisoned.
func (w *walWriter) restoreTail(cause error) {
	if err := w.f.Truncate(w.size); err != nil {
		w.broken = cause
		return
	}
	if _, err := w.f.Seek(w.size, io.SeekStart); err != nil {
		w.broken = cause
	}
}

// replayWAL scans an open WAL file from the start, invoking apply for
// every intact record, and returns the byte offset of the end of the
// last intact record. Any defect — short header, absurd length, short
// payload, CRC mismatch, undecodable JSON, or an apply error — stops
// the scan there and reports torn=true; the caller truncates. A file
// shorter than the magic header counts as empty (torn if nonzero).
func replayWAL(f File, apply func(rec walRecord) error) (good int64, torn bool, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return 0, false, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	var magic [len(walMagic)]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		if err == io.EOF {
			return 0, false, nil // empty file: fresh WAL
		}
		return 0, true, nil // torn header
	}
	if string(magic[:]) != walMagic {
		return 0, false, fmt.Errorf("store: %s is not a WAL file (bad magic %q)", f.Name(), magic)
	}
	good = walHeaderSize
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return good, err != io.EOF, nil
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length == 0 || length > maxWALRecordBytes {
			return good, true, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			return good, true, nil
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return good, true, nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return good, true, nil
		}
		if err := apply(rec); err != nil {
			return good, true, nil
		}
		good += 8 + int64(length)
	}
}

// openWAL opens (creating if needed) the WAL file, replays it through
// apply, truncates any torn tail, and returns a writer positioned at
// the end plus the number of torn trailing bytes that were discarded
// (0 when the file was clean or fresh).
func openWAL(fs FS, path string, fsync bool, apply func(rec walRecord) error) (w *walWriter, truncated int64, err error) {
	f, err := fs.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, 0, err
	}
	end, err := f.Seek(0, io.SeekEnd)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	good, torn, err := replayWAL(f, apply)
	if err != nil {
		f.Close()
		return nil, 0, err
	}
	if torn {
		truncated = end - good
	}
	if good == 0 {
		// Fresh (or torn-before-header) file: start it with the magic.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, 0, err
		}
		if _, err := f.WriteAt([]byte(walMagic), 0); err != nil {
			f.Close()
			return nil, 0, err
		}
		good = walHeaderSize
	} else if torn {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, 0, err
	}
	w = &walWriter{f: f, size: good, sync: fsync}
	if torn || good == walHeaderSize {
		// Make the truncation (or fresh header) itself durable.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, 0, err
		}
	}
	return w, truncated, nil
}
