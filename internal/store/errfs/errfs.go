// Package errfs is a fault-injecting store.FS for chaos-testing the
// store's WAL and checkpoint protocols. It wraps an inner filesystem,
// counts every operation by kind, and fails the Nth occurrence of a
// chosen kind — optionally as a torn (short) write, and optionally
// sticky from that point on (disk-full semantics). A sweep first runs
// a workload against a passive errfs to learn the operation counts,
// then replays it once per (kind, occurrence) pair with a fault armed.
package errfs

import (
	"fmt"
	"os"
	"sync"

	"lapushdb/internal/store"
)

// Op identifies one class of filesystem operation for counting and
// fault matching.
type Op string

const (
	// OpOpen covers FS.OpenFile and FS.CreateTemp.
	OpOpen Op = "open"
	// OpWrite covers File.Write and File.WriteAt.
	OpWrite Op = "write"
	// OpSync covers File.Sync.
	OpSync Op = "sync"
	// OpTruncate covers File.Truncate.
	OpTruncate Op = "truncate"
	// OpClose covers File.Close. The inner file is still closed when
	// the fault fires, so sweeps do not leak descriptors.
	OpClose Op = "close"
	// OpRename covers FS.Rename.
	OpRename Op = "rename"
	// OpRemove covers FS.Remove.
	OpRemove Op = "remove"
	// OpSyncDir covers FS.SyncDir.
	OpSyncDir Op = "syncdir"
)

// Fault selects which operation fails. The zero value injects nothing
// (pure counting mode).
type Fault struct {
	// Op is the operation kind to fail.
	Op Op
	// Nth is the 1-based occurrence of Op that fails, counted from the
	// moment the fault was armed. 0 disables injection.
	Nth int
	// Err is the injected error. Nil selects a generic injected-fault
	// error; set syscall.ENOSPC or similar for realistic errno tests.
	Err error
	// Short makes a faulted Write torn: half the buffer reaches the
	// underlying file before the error returns, simulating a crash or
	// partial I/O mid-record.
	Short bool
	// Sticky keeps every matching operation from the Nth on failing
	// (a full disk stays full) instead of firing exactly once.
	Sticky bool
}

// FS wraps an inner store.FS, counting operations and injecting the
// configured fault. Safe for concurrent use.
type FS struct {
	inner store.FS

	mu     sync.Mutex
	fault  Fault
	counts map[Op]int
	base   map[Op]int // counts snapshot when the fault was armed
	fired  int
}

// New wraps inner with the given fault armed. A zero Fault counts
// operations without failing any.
func New(inner store.FS, fault Fault) *FS {
	return &FS{inner: inner, fault: fault, counts: map[Op]int{}, base: map[Op]int{}}
}

// Counts returns a copy of the per-operation counters, for discovering
// a workload's sweep bounds.
func (f *FS) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Fired returns how many operations failed by injection so far.
func (f *FS) Fired() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// SetFault arms a new fault. Its Nth counts occurrences from this call,
// not from New, so a healthy warm-up phase does not consume the budget.
func (f *FS) SetFault(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.fault = fault
	f.base = make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		f.base[k] = v
	}
}

// Disarm clears the fault: every later operation succeeds.
func (f *FS) Disarm() { f.SetFault(Fault{}) }

// step counts one operation and returns the error to inject, if any.
func (f *FS) step(op Op) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	fl := f.fault
	if fl.Nth <= 0 || fl.Op != op {
		return nil
	}
	n := f.counts[op] - f.base[op]
	if n == fl.Nth || (fl.Sticky && n > fl.Nth) {
		f.fired++
		if fl.Err != nil {
			return fl.Err
		}
		return fmt.Errorf("errfs: injected fault on %s #%d", op, n)
	}
	return nil
}

// short reports whether the armed fault tears writes.
func (f *FS) short() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fault.Short
}

func (f *FS) OpenFile(name string, flag int, perm os.FileMode) (store.File, error) {
	if err := f.step(OpOpen); err != nil {
		return nil, err
	}
	inner, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f}, nil
}

func (f *FS) CreateTemp(dir, pattern string) (store.File, error) {
	if err := f.step(OpOpen); err != nil {
		return nil, err
	}
	inner, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &file{File: inner, fs: f}, nil
}

func (f *FS) Rename(oldpath, newpath string) error {
	if err := f.step(OpRename); err != nil {
		return err
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FS) Remove(name string) error {
	if err := f.step(OpRemove); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FS) ReadFile(name string) ([]byte, error) { return f.inner.ReadFile(name) }

func (f *FS) MkdirAll(path string, perm os.FileMode) error { return f.inner.MkdirAll(path, perm) }

func (f *FS) Glob(pattern string) ([]string, error) { return f.inner.Glob(pattern) }

func (f *FS) SyncDir(dir string) error {
	if err := f.step(OpSyncDir); err != nil {
		return err
	}
	return f.inner.SyncDir(dir)
}

// file intercepts the mutating File operations; reads and seeks pass
// through untouched.
type file struct {
	store.File
	fs *FS
}

func (f *file) Write(p []byte) (int, error) {
	if err := f.fs.step(OpWrite); err != nil {
		if f.fs.short() && len(p) > 1 {
			n, _ := f.File.Write(p[:len(p)/2])
			return n, err
		}
		return 0, err
	}
	return f.File.Write(p)
}

func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if err := f.fs.step(OpWrite); err != nil {
		if f.fs.short() && len(p) > 1 {
			n, _ := f.File.WriteAt(p[:len(p)/2], off)
			return n, err
		}
		return 0, err
	}
	return f.File.WriteAt(p, off)
}

func (f *file) Sync() error {
	if err := f.fs.step(OpSync); err != nil {
		return err
	}
	return f.File.Sync()
}

func (f *file) Truncate(size int64) error {
	if err := f.fs.step(OpTruncate); err != nil {
		return err
	}
	return f.File.Truncate(size)
}

func (f *file) Close() error {
	if err := f.fs.step(OpClose); err != nil {
		_ = f.File.Close() // release the descriptor regardless
		return err
	}
	return f.File.Close()
}
