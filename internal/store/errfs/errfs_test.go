package errfs_test

import (
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"lapushdb/internal/store"
	"lapushdb/internal/store/errfs"
)

func open(t *testing.T, fs store.FS, dir string) store.File {
	t.Helper()
	f, err := fs.OpenFile(filepath.Join(dir, "f"), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNthWriteFails(t *testing.T) {
	fs := errfs.New(store.OSFS, errfs.Fault{Op: errfs.OpWrite, Nth: 2, Err: syscall.EIO})
	f := open(t, fs, t.TempDir())
	defer f.Close()
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, syscall.EIO) {
		t.Fatalf("write 2: want EIO, got %v", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 (one-shot fault must not repeat): %v", err)
	}
	if fs.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", fs.Fired())
	}
	if fs.Counts()[errfs.OpWrite] != 3 {
		t.Fatalf("write count = %d, want 3", fs.Counts()[errfs.OpWrite])
	}
}

func TestStickyFault(t *testing.T) {
	fs := errfs.New(store.OSFS, errfs.Fault{Op: errfs.OpSync, Nth: 1, Err: syscall.ENOSPC, Sticky: true})
	f := open(t, fs, t.TempDir())
	defer f.Close()
	for i := 0; i < 3; i++ {
		if err := f.Sync(); !errors.Is(err, syscall.ENOSPC) {
			t.Fatalf("sync %d: want ENOSPC, got %v", i, err)
		}
	}
	fs.Disarm()
	if err := f.Sync(); err != nil {
		t.Fatalf("sync after disarm: %v", err)
	}
}

func TestShortWriteReachesInnerFile(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(store.OSFS, errfs.Fault{Op: errfs.OpWrite, Nth: 1, Short: true})
	f := open(t, fs, dir)
	if _, err := f.Write([]byte("abcdef")); err == nil {
		t.Fatal("short write did not report an error")
	}
	f.Close()
	got, err := os.ReadFile(filepath.Join(dir, "f"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "abc" {
		t.Fatalf("inner file holds %q, want the torn half %q", got, "abc")
	}
}

func TestSetFaultCountsFromArming(t *testing.T) {
	fs := errfs.New(store.OSFS, errfs.Fault{})
	f := open(t, fs, t.TempDir())
	defer f.Close()
	for i := 0; i < 5; i++ {
		if _, err := f.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	fs.SetFault(errfs.Fault{Op: errfs.OpWrite, Nth: 1})
	if _, err := f.Write([]byte("y")); err == nil {
		t.Fatal("first write after arming should fail even though 5 writes preceded it")
	}
}
