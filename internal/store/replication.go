package store

// Replication support: the store retains an in-memory tail of recent
// mutation batches — mirroring exactly what the on-disk WAL holds, i.e.
// every record applied after the last checkpoint — so a primary can
// serve a replica's log reads without touching the WAL file behind the
// writer's back. Each retained record carries the fingerprint of the
// version it produced (SchemaFingerprint@seq, the same fingerprint the
// plan and result caches key on), which makes parity checkable at every
// step of the pipeline: a replica that applies record N must arrive at
// record N's fingerprint, and a log read that claims position N must
// present N's fingerprint to be served the records after it.
//
// The replica side of the pipeline uses two more entry points:
// ApplyReplicated funnels a primary's record through the same single
// serialized applier (and local WAL) as a direct Apply, pinning the
// primary's sequence numbering; InstallSnapshot bootstraps (or
// re-anchors, after divergence) the whole database at an explicit
// sequence number, durably, via the regular checkpoint protocol.

import (
	"context"
	"errors"
	"fmt"

	"lapushdb"
)

// ErrLogTruncated reports that a requested log position predates the
// retained tail: the records were folded into a checkpoint (or aged out
// of retention), so the reader must bootstrap from a snapshot instead.
var ErrLogTruncated = errors.New("store: log truncated before requested position")

// ErrDiverged reports a fingerprint parity failure: the state claimed
// by a log reader (or produced by applying a replicated record) does
// not match the fingerprint the log records for that sequence number.
// The only safe recovery is a snapshot bootstrap.
var ErrDiverged = errors.New("store: fingerprint divergence")

// LogRecord is one replicable mutation batch: the batch itself, the
// sequence number of the version it produced, that version's
// fingerprint (so every consumer can verify it arrived at the same
// state the producer did), and the promotion epoch it was committed
// under (so every consumer can prove which write lineage it belongs
// to). Epoch is omitted when zero for compatibility with pre-epoch
// consumers.
type LogRecord struct {
	Seq         uint64     `json:"seq"`
	Epoch       uint64     `json:"epoch,omitempty"`
	Fingerprint string     `json:"fingerprint"`
	Muts        []Mutation `json:"muts"`
}

// fingerprintAt renders the version fingerprint db would publish at
// seq. publish derives the same value; keeping one formula here means
// log records and published versions can never disagree about it.
func Fingerprint(db *lapushdb.DB, seq uint64) string {
	return fmt.Sprintf("%s@%d", db.SchemaFingerprint(), seq)
}

// appendLog retains one committed record in the tail, aging out the
// oldest records beyond the retention bound (the anchor advances to the
// last aged-out record, exactly as it advances to the checkpoint on a
// checkpoint-driven trim).
func (s *Store) appendLog(rec LogRecord) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.logTail = append(s.logTail, rec)
	if n := len(s.logTail) - s.opts.LogRetention; n > 0 {
		last := s.logTail[n-1]
		s.logTail = append([]LogRecord(nil), s.logTail[n:]...)
		s.anchorSeq, s.anchorFP, s.anchorEpoch = last.Seq, last.Fingerprint, last.Epoch
	}
}

// trimLog drops retained records at or below seq after a checkpoint
// captured them; the anchor moves to the checkpointed version. epoch is
// the epoch the anchor state was *produced* under — on a promotion trim
// that is the pre-bump epoch, which is what lets a follower still
// sitting at the fork point (same state, old epoch) tail the new
// lineage without a needless snapshot bootstrap.
func (s *Store) trimLog(seq uint64, fp string, epoch uint64) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	i := 0
	for i < len(s.logTail) && s.logTail[i].Seq <= seq {
		i++
	}
	s.logTail = append([]LogRecord(nil), s.logTail[i:]...)
	s.anchorSeq, s.anchorFP, s.anchorEpoch = seq, fp, epoch
}

// resetLog empties the tail and re-anchors it, for snapshot installs.
func (s *Store) resetLog(seq uint64, fp string, epoch uint64) {
	s.logMu.Lock()
	defer s.logMu.Unlock()
	s.logTail = nil
	s.anchorSeq, s.anchorFP, s.anchorEpoch = seq, fp, epoch
}

// Head returns the published head's sequence number and fingerprint.
func (s *Store) Head() (uint64, string) {
	v := s.cur.Load()
	return v.Seq, v.Fingerprint
}

// ReadLog returns up to max retained records with sequence numbers in
// (after, head], oldest first. afterFP, when non-empty, is the
// fingerprint the caller's state has at sequence `after` and is
// verified against the log — and so is afterEpoch, the promotion epoch
// the caller's state at that position was published under. The epoch
// check is what makes position claims forgery-proof across failovers:
// the fingerprint covers schema shape and tuple counts only, so two
// forked lineages can collide at the same (seq, fingerprint), but they
// can never collide at the same (seq, fingerprint, epoch) — epochs are
// bumped exactly once per promotion and stamped into every record. A
// mismatch on either (or a position past the head) reports ErrDiverged,
// a position older than the retained tail reports ErrLogTruncated.
// max <= 0 means no bound. The returned records alias the retained tail
// and must be treated as immutable.
//
// At the anchor two epochs are accepted: the epoch the anchor state was
// produced under, and the epoch it was re-published under when the
// anchor is a promotion point (a promotion relabels the fork-point
// state without changing it, so a follower carrying either label holds
// the identical state and may tail from here).
func (s *Store) ReadLog(after uint64, afterFP string, afterEpoch uint64, max int) ([]LogRecord, error) {
	s.logMu.RLock()
	defer s.logMu.RUnlock()
	head := s.cur.Load()
	if after > head.Seq {
		return nil, fmt.Errorf("%w: position %d is past the head %d", ErrDiverged, after, head.Seq)
	}
	if after < s.anchorSeq {
		return nil, fmt.Errorf("%w: position %d predates the retained tail (anchor %d)", ErrLogTruncated, after, s.anchorSeq)
	}
	if afterFP != "" {
		want := s.anchorFP
		okEpochs := []uint64{s.anchorEpoch}
		if after > s.anchorSeq {
			rec, ok := s.recordAtLocked(after)
			if !ok {
				// Published but not yet retained (the applier is between
				// commit steps) — only reachable for after == head.Seq,
				// where the published fingerprint is authoritative.
				want, okEpochs = head.Fingerprint, []uint64{head.Epoch}
			} else {
				want, okEpochs = rec.Fingerprint, []uint64{rec.Epoch}
			}
			if after == head.Seq && head.Epoch != okEpochs[0] {
				okEpochs = append(okEpochs, head.Epoch)
			}
		} else if after == head.Seq {
			// Anchor == head: a promotion or snapshot install re-anchored
			// here; the relabeled epoch is as valid a claim as the
			// producing one.
			want = head.Fingerprint
			okEpochs = append(okEpochs, head.Epoch)
		} else if len(s.logTail) > 0 {
			// Anchor with retained records after it. If the first retained
			// record carries a newer epoch than the anchor, the promotion
			// happened exactly at the anchor, so the relabeled claim is
			// valid too.
			okEpochs = append(okEpochs, s.logTail[0].Epoch)
		}
		if afterFP != want {
			return nil, fmt.Errorf("%w: at seq %d the log has %s, reader claims %s", ErrDiverged, after, want, afterFP)
		}
		epochOK := false
		for _, e := range okEpochs {
			if afterEpoch == e {
				epochOK = true
				break
			}
		}
		if !epochOK {
			return nil, fmt.Errorf("%w: at seq %d the log is on promotion epoch %d, reader claims epoch %d (forked lineage)",
				ErrDiverged, after, okEpochs[0], afterEpoch)
		}
	}
	out := make([]LogRecord, 0)
	for _, rec := range s.logTail {
		if rec.Seq <= after || rec.Seq > head.Seq {
			continue
		}
		out = append(out, rec)
		if max > 0 && len(out) >= max {
			break
		}
	}
	return out, nil
}

// recordAtLocked finds the retained record for seq. Caller holds logMu.
func (s *Store) recordAtLocked(seq uint64) (LogRecord, bool) {
	if len(s.logTail) == 0 {
		return LogRecord{}, false
	}
	first := s.logTail[0].Seq
	if seq < first || seq > s.logTail[len(s.logTail)-1].Seq {
		return LogRecord{}, false
	}
	return s.logTail[seq-first], true
}

// watch returns a channel that is closed the next time a version is
// published.
func (s *Store) watch() <-chan struct{} {
	s.notifyMu.Lock()
	defer s.notifyMu.Unlock()
	return s.notify
}

// notifyPublish wakes every watcher.
func (s *Store) notifyPublish() {
	s.notifyMu.Lock()
	close(s.notify)
	s.notify = make(chan struct{})
	s.notifyMu.Unlock()
}

// WaitForSeq blocks until the published head reaches seq or ctx is
// done. It never blocks when the head is already there.
func (s *Store) WaitForSeq(ctx context.Context, seq uint64) error {
	for {
		if s.cur.Load().Seq >= seq {
			return nil
		}
		ch := s.watch()
		// Re-check after grabbing the channel: a publish between the
		// first check and watch() would otherwise be missed forever.
		if s.cur.Load().Seq >= seq {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// ApplyReplicated applies one record shipped from a primary through the
// same serialized applier (and local WAL) as a direct Apply, preserving
// the primary's sequence numbering. The record must directly follow the
// local head; applying it must reproduce the fingerprint the record
// carries, or nothing is published and ErrDiverged is reported — a
// replica that cannot reproduce the primary's state bit-for-bit must
// not pretend to serve it.
//
// Epoch handling enforces lineage monotonicity: a record from a newer
// epoch is adopted (the epoch bump rides the record's own WAL entry, so
// it survives a crash), while a record from an older epoch than the
// store has already observed is refused with ErrFenced — it belongs to
// a lineage this store has moved past.
func (s *Store) ApplyReplicated(rec LogRecord) (*Version, error) {
	if len(rec.Muts) == 0 {
		return nil, errors.New("store: empty replicated batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if rec.Epoch < s.epoch {
		return nil, fmt.Errorf("%w: record epoch %d predates local epoch %d", ErrFenced, rec.Epoch, s.epoch)
	}
	cur := s.cur.Load()
	if rec.Seq != cur.Seq+1 {
		return nil, fmt.Errorf("%w: record %d does not follow local head %d", ErrDiverged, rec.Seq, cur.Seq)
	}
	next := cur.DB.CloneCOW()
	if err := applyBatch(next, rec.Muts); err != nil {
		return nil, fmt.Errorf("%w: record %d failed to apply: %v", ErrDiverged, rec.Seq, err)
	}
	if rec.Fingerprint != "" {
		if got := Fingerprint(next, rec.Seq); got != rec.Fingerprint {
			return nil, fmt.Errorf("%w: applying record %d yields %s, log records %s", ErrDiverged, rec.Seq, got, rec.Fingerprint)
		}
	}
	s.epoch = rec.Epoch // adopt (no-op when equal) before the commit stamps it
	return s.commitLocked(next, rec.Seq, rec.Muts)
}

// InstallSnapshot replaces the whole database with db at sequence seq
// and promotion epoch epoch: the bootstrap (and divergence-recovery)
// path of a replica that cannot reach seq through the log. On a durable
// store the snapshot goes through the regular checkpoint protocol —
// checkpoint file, manifest, WAL reset — so a restart recovers from it
// exactly like from any other checkpoint. The caller must not use db
// afterwards.
//
// Installing a snapshot is the one sanctioned way to move a store to a
// different lineage, including re-seeding a fenced old primary from the
// promoted one, so unlike ApplyReplicated it accepts any epoch — the
// caller (the tailer) is responsible for refusing to bootstrap from a
// stale-epoch source.
func (s *Store) InstallSnapshot(db *lapushdb.DB, seq, epoch uint64) (*Version, error) {
	if db == nil {
		return nil, errors.New("store: nil snapshot")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if s.wal != nil {
		if err := s.writeCheckpoint(db, seq, epoch); err != nil {
			s.noteDurabilityFailureLocked()
			return nil, err
		}
		if err := s.wal.reset(); err != nil {
			s.noteDurabilityFailureLocked()
			return nil, fmt.Errorf("%w: truncate wal: %v", ErrDurability, err)
		}
		s.failures = 0
		s.checkpointSeq = seq
		s.sinceCheckpoint = 0
		s.removeStaleCheckpoints()
	}
	s.epoch = epoch
	s.resetLog(seq, Fingerprint(db, seq), epoch)
	return s.publish(db, seq), nil
}

// Epoch returns the promotion epoch of the currently published version.
func (s *Store) Epoch() uint64 { return s.cur.Load().Epoch }

// Promote durably bumps the store's promotion epoch, turning a caught-up
// replica's store into the head of a new write lineage. minSeq guards
// against lossy promotions: if the published head has not reached it,
// nothing changes and ErrBehind is reported — callers pass the highest
// sequence number known to have been acknowledged to a client, so the
// system never silently promotes past acknowledged writes.
//
// The bump goes through the full checkpoint protocol (snapshot, then a
// manifest carrying the new epoch, then WAL reset), so the new lineage
// claim is crash-durable before any write is accepted under it. The
// re-published version keeps its sequence number and fingerprint —
// only the epoch changes.
func (s *Store) Promote(minSeq uint64) (*Version, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	cur := s.cur.Load()
	if cur.Seq < minSeq {
		return nil, fmt.Errorf("%w: head %d has not reached required seq %d", ErrBehind, cur.Seq, minSeq)
	}
	// The new lineage must outrank not only our own epoch but every
	// epoch observed elsewhere in the cluster (Fence): promoting to an
	// epoch some other lineage already claimed would make the two
	// indistinguishable.
	newEpoch := s.epoch + 1
	if s.fencedEpoch >= newEpoch {
		newEpoch = s.fencedEpoch + 1
	}
	if s.wal != nil {
		if err := s.writeCheckpoint(cur.DB, cur.Seq, newEpoch); err != nil {
			s.noteDurabilityFailureLocked()
			return nil, err
		}
		if err := s.wal.reset(); err != nil {
			s.noteDurabilityFailureLocked()
			return nil, fmt.Errorf("%w: truncate wal: %v", ErrDurability, err)
		}
		s.failures = 0
		s.checkpointSeq = cur.Seq
		s.sinceCheckpoint = 0
		s.removeStaleCheckpoints()
	}
	s.epoch = newEpoch
	// The anchor keeps the epoch the fork-point state was produced
	// under: followers still sitting there on the old epoch hold the
	// identical state and may tail the new lineage from it.
	s.trimLog(cur.Seq, cur.Fingerprint, cur.Epoch)
	return s.publish(cur.DB, cur.Seq), nil
}

// Fence records a promotion epoch observed elsewhere in the cluster
// (a peer handshake, a higher-epoch tailer). Once an epoch higher than
// the store's own has been recorded, Apply refuses new write batches
// with ErrFenced — the check happens under the applier's lock, so a
// write racing the server-level role transition still cannot commit on
// the stale lineage. Replication entry points are unaffected:
// ApplyReplicated and InstallSnapshot adopt newer epochs by design, and
// Promote picks an epoch above every observed one.
func (s *Store) Fence(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.fencedEpoch {
		s.fencedEpoch = epoch
	}
}
