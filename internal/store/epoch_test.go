package store

// Promotion-epoch tests: the epoch must bump durably on Promote, ride
// replicated records across crashes, refuse stale lineages, and — the
// compatibility half — stay entirely absent from the bytes an epoch-0
// store writes, so stores produced by pre-epoch binaries and stores
// produced by this one are interchangeable until the first promotion.

import (
	"bytes"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"lapushdb"
)

// shipRecords applies n batches on a fresh primary and returns its
// retained log records, a canned record stream for replica-side tests.
func shipRecords(t *testing.T, n int) []LogRecord {
	t.Helper()
	pst, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer pst.Close()
	applyN(t, pst, n)
	recs, err := pst.ReadLog(0, "", 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	return recs
}

func TestPromoteBumpsEpochDurably(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, st, 3)
	before := st.Current()

	v, err := st.Promote(before.Seq)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if v.Epoch != 1 || v.Seq != before.Seq || v.Fingerprint != before.Fingerprint {
		t.Fatalf("promoted to (%d, %s, epoch %d), want (%d, %s, epoch 1)",
			v.Seq, v.Fingerprint, v.Epoch, before.Seq, before.Fingerprint)
	}
	// Writes continue on the new lineage and stamp the new epoch.
	applyN(t, st, 2)
	if got := st.Current().Epoch; got != 1 {
		t.Fatalf("post-promotion writes published epoch %d, want 1", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The lineage claim survives a restart — manifest plus the replayed
	// WAL records both carry it.
	re, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	rv := re.Current()
	if rv.Epoch != 1 || rv.Seq != before.Seq+2 {
		t.Fatalf("recovered (%d, epoch %d), want (%d, epoch 1)", rv.Seq, rv.Epoch, before.Seq+2)
	}

	// Promotion is monotonic: a second promotion moves to epoch 2.
	if v, err := re.Promote(0); err != nil || v.Epoch != 2 {
		t.Fatalf("second Promote = (%+v, %v), want epoch 2", v, err)
	}
}

func TestPromoteRefusesWhenBehindMinSeq(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applyN(t, st, 2)
	head := st.Current()

	if _, err := st.Promote(head.Seq + 5); !errors.Is(err, ErrBehind) {
		t.Fatalf("Promote past the head = %v, want ErrBehind", err)
	}
	if got := st.Current(); got.Epoch != 0 || got.Seq != head.Seq {
		t.Fatalf("refused promotion still changed the version: %+v", got)
	}
}

func TestApplyReplicatedAdoptsNewerEpoch(t *testing.T) {
	recs := shipRecords(t, 3)
	dir := t.TempDir()
	rst, err := Open(testSeedDB(t), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}

	// Records 1 and 2 arrive on epoch 0; record 3 arrives stamped with
	// epoch 2 (its producer was promoted twice) and must be adopted.
	for i, rec := range recs {
		if i == 2 {
			rec.Epoch = 2
		}
		if _, err := rst.ApplyReplicated(rec); err != nil {
			t.Fatalf("ApplyReplicated %d: %v", rec.Seq, err)
		}
	}
	if got := rst.Epoch(); got != 2 {
		t.Fatalf("epoch after adoption = %d, want 2", got)
	}
	if err := rst.Close(); err != nil {
		t.Fatal(err)
	}

	// The adoption is crash-durable without any checkpoint: the epoch
	// rides the replicated record's own WAL entry.
	re, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Epoch(); got != 2 {
		t.Fatalf("recovered epoch = %d, want 2", got)
	}
}

func TestApplyReplicatedRefusesOlderEpoch(t *testing.T) {
	recs := shipRecords(t, 2)
	rst, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rst.Close()

	first := recs[0]
	first.Epoch = 3
	if _, err := rst.ApplyReplicated(first); err != nil {
		t.Fatal(err)
	}
	// A record from the lineage this store has moved past is fenced out,
	// and nothing is published.
	stale := recs[1]
	stale.Epoch = 1
	if _, err := rst.ApplyReplicated(stale); !errors.Is(err, ErrFenced) {
		t.Fatalf("stale-epoch record = %v, want ErrFenced", err)
	}
	if v := rst.Current(); v.Seq != first.Seq || v.Epoch != 3 {
		t.Fatalf("fenced record still moved the store: %+v", v)
	}
}

// TestReadLogEpochRejectsForkedLineage pins the log read's lineage
// check. The workload mutates one tuple's probability over and over, so
// the count-based fingerprint at a given seq is identical across forked
// lineages — exactly the collision a replica that applied unacked
// epoch-0 records past the promotion point would present. Only the
// epoch stamped on the record at the claimed position can refuse it.
func TestReadLogEpochRejectsForkedLineage(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applyN(t, st, 3)
	fork := st.Current() // promotion point: (3, fp, epoch 0)
	if _, err := st.Promote(0); err != nil {
		t.Fatalf("Promote: %v", err)
	}
	applyN(t, st, 2) // seqs 4 and 5, committed under epoch 1

	// At the fork point both the producing epoch (0) and the relabeled
	// epoch (1) identify the same state; both claims must be served.
	recs, err := st.ReadLog(fork.Seq, fork.Fingerprint, 0, 0)
	if err != nil || len(recs) != 2 {
		t.Fatalf("fork-point read (old epoch) = %v, %v; want records 4 and 5", recs, err)
	}
	if _, err := st.ReadLog(fork.Seq, fork.Fingerprint, 1, 0); err != nil {
		t.Fatalf("fork-point read (relabeled epoch): %v", err)
	}
	// Any other epoch at the fork point is a different lineage.
	if _, err := st.ReadLog(fork.Seq, fork.Fingerprint, 2, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("fork-point read on epoch 2 = %v, want ErrDiverged", err)
	}

	// A forked replica: it applied its own unacked record 4 under epoch
	// 0, and the fingerprints collide with the promoted lineage's record
	// 4. The epoch-0 claim must be refused — serving it would silently
	// fork the replica forever.
	rec4 := recs[0]
	if rec4.Seq != 4 || rec4.Epoch != 1 {
		t.Fatalf("record 4 = %+v, want seq 4 on epoch 1", rec4)
	}
	if _, err := st.ReadLog(rec4.Seq, rec4.Fingerprint, 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("forked epoch-0 claim at seq 4 = %v, want ErrDiverged", err)
	}
	// The genuine epoch-1 follower at the same position is served.
	got, err := st.ReadLog(rec4.Seq, rec4.Fingerprint, 1, 0)
	if err != nil || len(got) != 1 || got[0].Seq != 5 {
		t.Fatalf("epoch-1 claim at seq 4 = %v, %v; want record 5", got, err)
	}
	// And the same holds at the head.
	head := st.Current()
	if _, err := st.ReadLog(head.Seq, head.Fingerprint, 0, 0); !errors.Is(err, ErrDiverged) {
		t.Fatalf("forked epoch-0 claim at the head = %v, want ErrDiverged", err)
	}
	if _, err := st.ReadLog(head.Seq, head.Fingerprint, head.Epoch, 0); err != nil {
		t.Fatalf("epoch-1 claim at the head: %v", err)
	}
}

// TestFenceRefusesApply pins the store-level fence: once a higher epoch
// has been observed anywhere in the cluster, Apply refuses new batches
// under the applier's lock (closing the race with the server's
// asynchronous role transition), and a subsequent promotion claims an
// epoch above every observed one, lifting the fence on the new lineage.
func TestFenceRefusesApply(t *testing.T) {
	st, err := Open(testSeedDB(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	applyN(t, st, 1)

	st.Fence(3)
	if _, err := st.Apply([]Mutation{
		{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.5)},
	}); !errors.Is(err, ErrFenced) {
		t.Fatalf("Apply under fence = %v, want ErrFenced", err)
	}
	if got := st.Stats().FencedEpoch; got != 3 {
		t.Fatalf("Stats().FencedEpoch = %d, want 3", got)
	}
	// A lower observation never regresses the fence.
	st.Fence(2)
	if got := st.Stats().FencedEpoch; got != 3 {
		t.Fatalf("Fence(2) regressed the fence to %d", got)
	}

	// Promotion skips past the observed epoch: the new lineage must
	// outrank the one that fenced us.
	v, err := st.Promote(0)
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if v.Epoch != 4 {
		t.Fatalf("promoted to epoch %d, want 4 (observed 3 + 1)", v.Epoch)
	}
	if _, err := st.Apply([]Mutation{
		{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.6)},
	}); err != nil {
		t.Fatalf("Apply after promotion: %v", err)
	}
}

// TestEpochZeroManifestCompat pins backward compatibility with stores
// written by pre-epoch binaries: a hand-authored MANIFEST and WAL in
// the exact pre-epoch layout (no "epoch" key anywhere) must open
// cleanly at epoch 0 with every record replayed.
func TestEpochZeroManifestCompat(t *testing.T) {
	dir := t.TempDir()

	// Checkpoint: an empty database snapshot at seq 0, as a pre-epoch
	// first boot would write it.
	db := lapushdb.Open()
	if _, err := db.CreateRelation("Likes", "user", "movie"); err != nil {
		t.Fatal(err)
	}
	var snap bytes.Buffer
	if err := db.Save(&snap); err != nil {
		t.Fatal(err)
	}
	ckName := "checkpoint-000000000.lpd"
	if err := os.WriteFile(filepath.Join(dir, ckName), snap.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	// MANIFEST: literal pre-epoch JSON, no epoch key.
	man := fmt.Sprintf(`{"seq":0,"checkpoint":"%s"}`, ckName)
	if err := os.WriteFile(filepath.Join(dir, manifestName), []byte(man), 0o644); err != nil {
		t.Fatal(err)
	}
	// WAL: magic header plus one CRC-framed record, also without an
	// epoch key.
	payload := []byte(`{"seq":1,"muts":[{"op":"insert","rel":"Likes","tuple":["ann","heat"],"p":0.9}]}`)
	var wal bytes.Buffer
	wal.WriteString(walMagic)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	wal.Write(hdr[:])
	wal.Write(payload)
	if err := os.WriteFile(filepath.Join(dir, walName), wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	st, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatalf("open pre-epoch store: %v", err)
	}
	defer st.Close()
	v := st.Current()
	if v.Seq != 1 || v.Epoch != 0 {
		t.Fatalf("recovered (%d, epoch %d), want (1, epoch 0)", v.Seq, v.Epoch)
	}
	if rel := v.DB.Relation("Likes"); rel == nil || rel.Len() != 1 {
		t.Fatalf("replayed state: Likes = %v, want 1 tuple", rel)
	}
}

// TestEpochZeroOutputHasNoEpochKey pins the other direction: everything
// an epoch-0 store writes — MANIFEST and WAL alike — must stay byte-
// compatible with pre-epoch readers, which means no "epoch" key may
// ever appear until the first promotion.
func TestEpochZeroOutputHasNoEpochKey(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(testSeedDB(t), Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	applyN(t, st, 3)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyN(t, st, 2)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{manifestName, walName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(data, []byte(`"epoch"`)) {
			t.Fatalf("%s written at epoch 0 contains an epoch key: %s", name, data)
		}
	}

	// Whereas after a promotion the epoch is recorded in both.
	st2, err := Open(nil, Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st2.Promote(0); err != nil {
		t.Fatal(err)
	}
	applyN(t, st2, 1)
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{manifestName, walName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Contains(data, []byte(`"epoch":1`)) {
			t.Fatalf("%s written at epoch 1 does not record the epoch: %s", name, data)
		}
	}
}

// TestLogRecordEpochWireCompat pins the JSON wire shape both ways: an
// epoch-0 record marshals without the key, and a pre-epoch consumer's
// record (no key) unmarshals to epoch 0.
func TestLogRecordEpochWireCompat(t *testing.T) {
	b, err := json.Marshal(LogRecord{Seq: 4, Fingerprint: "fp@4"})
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("epoch")) {
		t.Fatalf("epoch-0 record marshals the key: %s", b)
	}
	var rec LogRecord
	if err := json.Unmarshal([]byte(`{"seq":9,"fingerprint":"fp@9","muts":[]}`), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Epoch != 0 || rec.Seq != 9 {
		t.Fatalf("pre-epoch record decoded as %+v", rec)
	}
}
