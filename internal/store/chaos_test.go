package store_test

// Chaos suite: sweep an injected syscall failure across every
// filesystem operation the WAL and checkpoint protocols perform, and
// assert the store's failure-domain invariant after each one — the
// directory, reopened with a healthy filesystem, recovers bit-
// identically to the last acknowledged version (or to the seed when
// Open itself was refused), and a tripped breaker keeps serving reads
// from the pinned version. This extends the byte-boundary crash test
// (store_test.go) from "process death at offset k" to "syscall failure
// at operation n". External test package: errfs imports store, so an
// in-package test would cycle.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"lapushdb"
	"lapushdb/internal/store"
	"lapushdb/internal/store/errfs"
)

// quietLogf discards the store's operational log lines: the sweep
// provokes hundreds of expected failures.
func quietLogf(string, ...any) {}

// chaosSeedDB builds the deterministic seed used by every sweep
// iteration; identical insert order makes Save bytes comparable.
func chaosSeedDB(t testing.TB) *lapushdb.DB {
	t.Helper()
	db := lapushdb.Open()
	likes, err := db.CreateRelation("Likes", "user", "movie")
	if err != nil {
		t.Fatal(err)
	}
	for _, ins := range [][2]string{{"ann", "heat"}, {"bob", "heat"}, {"ann", "casino"}} {
		if err := likes.Insert(0.8, ins[0], ins[1]); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

func chaosSaveBytes(t testing.TB, db *lapushdb.DB) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := db.Save(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func pfloat(p float64) *float64 { return &p }

// chaosBatches is the mutation workload: enough batches to cross the
// CheckpointEvery=3 threshold twice, touching every mutation kind.
func chaosBatches() [][]store.Mutation {
	return [][]store.Mutation{
		{{Op: store.OpCreateRelation, Rel: "Stars", Cols: []string{"movie", "actor"}}},
		{{Op: store.OpInsert, Rel: "Stars", Tuple: []string{"heat", "deniro"}, P: pfloat(0.9)}},
		{{Op: store.OpInsert, Rel: "Stars", Tuple: []string{"heat", "pacino"}, P: pfloat(0.7)},
			{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"carl", "heat"}, P: pfloat(0.4)}},
		{{Op: store.OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pfloat(0.95)}},
		{{Op: store.OpDelete, Rel: "Likes", Tuple: []string{"bob", "heat"}}},
		{{Op: store.OpScaleProbs, Factor: 0.5}},
		{{Op: store.OpInsert, Rel: "Stars", Tuple: []string{"casino", "stone"}, P: pfloat(0.6)}},
		{{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"dora", "casino"}, P: pfloat(0.3)}},
	}
}

// chaosResult is what one workload run acknowledged.
type chaosResult struct {
	acked    []byte // Save bytes of the last acknowledged version
	ackedSeq uint64
	openErr  error
}

// runChaosWorkload opens a store in dir over fs, applies the workload,
// and reports the last state the store acknowledged. Apply failures
// must be cleanly typed (ErrDurability or ErrReadOnly) — anything else
// fails the test. Retries are disabled so a one-shot fault surfaces
// instead of being absorbed; the breaker is disabled so the sweep
// keeps exercising operations after a failure.
func runChaosWorkload(t *testing.T, dir string, fs store.FS) chaosResult {
	t.Helper()
	st, err := store.Open(chaosSeedDB(t), store.Options{
		Dir:              dir,
		FS:               fs,
		Fsync:            store.FsyncAlways,
		CheckpointEvery:  3,
		BreakerThreshold: -1,
		RetryAttempts:    -1,
		Logf:             quietLogf,
	})
	if err != nil {
		return chaosResult{openErr: err}
	}
	defer st.Close()
	res := chaosResult{
		acked:    chaosSaveBytes(t, st.Current().DB),
		ackedSeq: st.Current().Seq,
	}
	allPriorOK := true
	for i, batch := range chaosBatches() {
		v, err := st.Apply(batch)
		if err == nil {
			res.acked = chaosSaveBytes(t, v.DB)
			res.ackedSeq = v.Seq
			continue
		}
		// With an intact prefix the only legitimate failures are I/O
		// ones, and they must be cleanly typed. After a failed batch,
		// later batches may also fail validation (they can reference
		// state the dropped batch would have created) — still a clean
		// refusal, so only the no-publication invariant applies.
		if allPriorOK && !errors.Is(err, store.ErrDurability) && !errors.Is(err, store.ErrReadOnly) {
			t.Fatalf("apply batch %d: failure is not cleanly typed: %v", i, err)
		}
		allPriorOK = false
		if got := st.Current().Seq; got != res.ackedSeq {
			t.Fatalf("apply batch %d failed (%v) but published version %d (last acknowledged was %d)", i, err, got, res.ackedSeq)
		}
	}
	// Exercise the manual checkpoint path too; its failure modes are
	// covered by the same recovery invariant.
	_ = st.Checkpoint()
	return res
}

// verifyRecovery reopens dir with the real filesystem and asserts the
// recovered state is bit-identical to want.
func verifyRecovery(t *testing.T, dir string, want []byte, context string) {
	t.Helper()
	st, err := store.Open(chaosSeedDB(t), store.Options{Dir: dir, Logf: quietLogf})
	if err != nil {
		t.Fatalf("%s: reopen after fault failed: %v", context, err)
	}
	defer st.Close()
	got := chaosSaveBytes(t, st.Current().DB)
	if !bytes.Equal(got, want) {
		t.Fatalf("%s: recovered state differs from last acknowledged state (%d vs %d bytes)", context, len(got), len(want))
	}
}

// TestChaosFaultSweep injects one failure at every (operation kind,
// occurrence) site the workload reaches — every write, fsync,
// truncate, rename, close, and directory fsync of the WAL append and
// checkpoint paths — and asserts the invariant: the store either kept
// running past the fault or refused cleanly, and reopening recovers
// exactly the acknowledged prefix.
func TestChaosFaultSweep(t *testing.T) {
	// Discovery pass: count the workload's operations per kind.
	counting := errfs.New(store.OSFS, errfs.Fault{})
	base := runChaosWorkload(t, t.TempDir(), counting)
	if base.openErr != nil {
		t.Fatalf("fault-free workload failed to open: %v", base.openErr)
	}
	seedBytes := chaosSaveBytes(t, chaosSeedDB(t))
	counts := counting.Counts()
	sweep := []errfs.Op{errfs.OpWrite, errfs.OpSync, errfs.OpTruncate, errfs.OpRename, errfs.OpClose, errfs.OpSyncDir}
	for _, op := range sweep {
		if counts[op] == 0 {
			t.Fatalf("workload performed no %s operations; the sweep would be vacuous", op)
		}
	}
	for _, op := range sweep {
		for nth := 1; nth <= counts[op]; nth++ {
			name := fmt.Sprintf("%s-%d", op, nth)
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				fs := errfs.New(store.OSFS, errfs.Fault{Op: op, Nth: nth})
				res := runChaosWorkload(t, dir, fs)
				if fs.Fired() == 0 {
					t.Fatalf("fault %s never fired", name)
				}
				want := res.acked
				if res.openErr != nil {
					// Open refused cleanly; a fresh boot must still
					// land on the seed, whether or not the first-boot
					// checkpoint had completed.
					want = seedBytes
				}
				verifyRecovery(t, dir, want, name)
			})
		}
	}
}

// TestChaosTornWriteSweep repeats the sweep over write operations with
// torn (short) writes: half the buffer reaches the file before the
// error, simulating partial I/O mid-record. Recovery must truncate the
// torn bytes and still land on the acknowledged prefix.
func TestChaosTornWriteSweep(t *testing.T) {
	counting := errfs.New(store.OSFS, errfs.Fault{})
	base := runChaosWorkload(t, t.TempDir(), counting)
	if base.openErr != nil {
		t.Fatalf("fault-free workload failed to open: %v", base.openErr)
	}
	seedBytes := chaosSaveBytes(t, chaosSeedDB(t))
	writes := counting.Counts()[errfs.OpWrite]
	for nth := 1; nth <= writes; nth++ {
		name := fmt.Sprintf("torn-write-%d", nth)
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fs := errfs.New(store.OSFS, errfs.Fault{Op: errfs.OpWrite, Nth: nth, Short: true})
			res := runChaosWorkload(t, dir, fs)
			want := res.acked
			if res.openErr != nil {
				want = seedBytes
			}
			verifyRecovery(t, dir, want, name)
		})
	}
}

// TestChaosBreakerReadOnlyAndRearm drives the full degraded-mode
// lifecycle on a disk that "fills up": bounded retries are exhausted,
// K consecutive failures trip the breaker, reads keep serving the
// pinned version while Apply fails fast with ErrReadOnly, and once the
// disk heals the probe re-arms the breaker and writes flow again.
func TestChaosBreakerReadOnlyAndRearm(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(store.OSFS, errfs.Fault{})
	st, err := store.Open(chaosSeedDB(t), store.Options{
		Dir:              dir,
		FS:               fs,
		Fsync:            store.FsyncAlways,
		CheckpointEvery:  -1,
		BreakerThreshold: 2,
		RetryAttempts:    1,
		RetryBackoff:     time.Millisecond,
		ProbeInterval:    2 * time.Millisecond,
		Logf:             quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	goodBatch := []store.Mutation{{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"eve", "heat"}, P: pfloat(0.5)}}
	v1, err := st.Apply(goodBatch)
	if err != nil {
		t.Fatalf("healthy apply: %v", err)
	}
	acked := chaosSaveBytes(t, v1.DB)

	// The disk fills: every fsync fails from here on. Each Apply burns
	// its one retry and fails; the second consecutive failure trips the
	// breaker.
	fs.SetFault(errfs.Fault{Op: errfs.OpSync, Nth: 1, Err: syscall.ENOSPC, Sticky: true})
	failing := []store.Mutation{{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"fred", "heat"}, P: pfloat(0.5)}}
	for i := 0; i < 2; i++ {
		if _, err := st.Apply(failing); !errors.Is(err, store.ErrDurability) {
			t.Fatalf("apply %d under ENOSPC: want ErrDurability, got %v", i, err)
		}
	}
	if !st.ReadOnly() {
		t.Fatal("breaker did not trip after 2 consecutive durability failures")
	}
	if _, err := st.Apply(failing); !errors.Is(err, store.ErrReadOnly) {
		t.Fatalf("apply in degraded mode: want ErrReadOnly, got %v", err)
	}
	if st.Stats().ReadOnly != true {
		t.Fatal("Stats does not report read-only")
	}
	// Reads still serve the pinned (last acknowledged) version.
	if got := chaosSaveBytes(t, st.Current().DB); !bytes.Equal(got, acked) {
		t.Fatal("degraded store no longer serves the last acknowledged version")
	}

	// The disk heals; the probe must re-arm the breaker.
	fs.Disarm()
	deadline := time.Now().Add(5 * time.Second)
	for st.ReadOnly() {
		if time.Now().After(deadline) {
			t.Fatal("breaker did not re-arm within 5s of the disk healing")
		}
		time.Sleep(2 * time.Millisecond)
	}
	v2, err := st.Apply(failing)
	if err != nil {
		t.Fatalf("apply after re-arm: %v", err)
	}
	acked = chaosSaveBytes(t, v2.DB)
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	verifyRecovery(t, dir, acked, "post-rearm")
}

// TestTornTailTruncationCounted crashes a WAL mid-record (torn write,
// then process death simulated by dropping the store without Close) and
// asserts recovery reports the truncation through Stats — the counters
// behind the lapushd_store_wal_truncations_total metric.
func TestTornTailTruncationCounted(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(chaosSeedDB(t), store.Options{Dir: dir, Logf: quietLogf})
	if err != nil {
		t.Fatal(err)
	}
	batch := []store.Mutation{{Op: store.OpInsert, Rel: "Likes", Tuple: []string{"gil", "heat"}, P: pfloat(0.5)}}
	if _, err := st.Apply(batch); err != nil {
		t.Fatal(err)
	}
	acked := chaosSaveBytes(t, st.Current().DB)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Crash mid-append: a partial record (plausible length prefix, short
	// payload) lands at the WAL's tail.
	torn := []byte{0x40, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}
	f, err := os.OpenFile(filepath.Join(dir, "wal.log"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
	st2, err := store.Open(chaosSeedDB(t), store.Options{Dir: dir, Logf: quietLogf})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer st2.Close()
	stats := st2.Stats()
	if stats.WALTruncations != 1 {
		t.Fatalf("WALTruncations = %d, want 1", stats.WALTruncations)
	}
	if stats.WALTruncatedBytes != int64(len(torn)) {
		t.Fatalf("WALTruncatedBytes = %d, want %d", stats.WALTruncatedBytes, len(torn))
	}
	if got := chaosSaveBytes(t, st2.Current().DB); !bytes.Equal(got, acked) {
		t.Fatal("recovery after torn tail lost the acknowledged prefix")
	}
}

// TestChaosReadsDuringFailedApplies pins a version, then asserts it
// stays bit-identical while a stream of Applies fails against a broken
// disk — the failure domain of the writer must not leak into readers.
func TestChaosReadsDuringFailedApplies(t *testing.T) {
	dir := t.TempDir()
	fs := errfs.New(store.OSFS, errfs.Fault{})
	st, err := store.Open(chaosSeedDB(t), store.Options{
		Dir:              dir,
		FS:               fs,
		BreakerThreshold: -1,
		RetryAttempts:    -1,
		Logf:             quietLogf,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	pinned := st.Current()
	want := chaosSaveBytes(t, pinned.DB)
	fs.SetFault(errfs.Fault{Op: errfs.OpWrite, Nth: 1, Err: syscall.EIO, Sticky: true})
	batch := []store.Mutation{{Op: store.OpScaleProbs, Factor: 0.9}}
	for i := 0; i < 5; i++ {
		if _, err := st.Apply(batch); !errors.Is(err, store.ErrDurability) {
			t.Fatalf("apply %d: want ErrDurability, got %v", i, err)
		}
		if got := chaosSaveBytes(t, pinned.DB); !bytes.Equal(got, want) {
			t.Fatalf("pinned version mutated after failed apply %d", i)
		}
	}
}
