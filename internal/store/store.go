// Package store is lapushd's durable versioned database store. It
// publishes immutable lapushdb.DB versions behind an atomic pointer:
// every in-flight query pins the version it started on (snapshot
// isolation, preserving the engine's bit-identical determinism
// contract) while a single serialized applier builds the next version
// as a copy-on-write clone. Durability comes from a CRC-checked
// write-ahead log of mutation batches with a configurable fsync
// policy, threshold-triggered checkpointing to the .lpd snapshot
// format, and crash recovery that loads the latest checkpoint, replays
// the WAL, and truncates a torn tail instead of failing.
//
// Failure is a first-class state. Every filesystem call goes through
// the FS interface (fs.go), so faults are injectable at each step of
// the WAL and checkpoint protocols (see errfs and the chaos tests).
// Transient WAL append failures are retried a bounded number of times
// with exponential backoff; after BreakerThreshold consecutive
// durability failures the store degrades to read-only mode — reads
// keep serving the last published version, Apply returns ErrReadOnly,
// and a probe goroutine re-arms the breaker (fresh checkpoint + fresh
// WAL) once the directory is writable again.
//
// On-disk layout of a store directory:
//
//	MANIFEST              JSON {seq, checkpoint}: which checkpoint is live
//	checkpoint-<seq>.lpd  database snapshot at sequence number <seq>
//	wal.log               mutation batches applied after that checkpoint
//
// Checkpoint protocol (crash-safe at every step): write the snapshot to
// a temp file, fsync, rename to checkpoint-<seq>.lpd; write the new
// manifest to a temp file, fsync, rename over MANIFEST; then truncate
// the WAL. A crash between any two steps recovers correctly because WAL
// records carry sequence numbers and replay skips records at or below
// the manifest's checkpoint sequence.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"lapushdb"
)

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

// ErrDurability wraps WAL and checkpoint I/O failures, distinguishing
// them from mutation validation errors: a validation error is the
// client's fault, a durability error is the server's.
var ErrDurability = errors.New("store: durability failure")

// ErrReadOnly reports that the store has degraded to read-only mode
// after repeated durability failures. Reads keep serving the last
// published version; mutations are refused until the re-arm probe
// finds the directory writable again.
var ErrReadOnly = errors.New("store: read-only (degraded after durability failures)")

// ErrFenced reports a write lineage conflict: the store has observed a
// newer promotion epoch than the one a replicated record (or caller)
// belongs to. Accepting the write would fork the WAL across lineages,
// so it is refused; the stale side must re-seed from the new lineage.
var ErrFenced = errors.New("store: fenced (newer promotion epoch observed)")

// ErrBehind reports a promotion refused because the store's applied
// head has not reached the caller's required minimum sequence number:
// promoting would silently discard acknowledged writes the caller
// knows exist.
var ErrBehind = errors.New("store: behind required sequence")

// FsyncPolicy selects when the WAL is fsynced.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every mutation batch, before the batch is
	// acknowledged: a crash never loses an acknowledged batch.
	FsyncAlways FsyncPolicy = "always"
	// FsyncNever leaves flushing to the OS: a crash may lose recently
	// acknowledged batches, but never recovers a corrupt state (torn
	// tails truncate).
	FsyncNever FsyncPolicy = "never"
)

// Options configures a store.
type Options struct {
	// Dir is the store directory. Empty selects ephemeral mode: full
	// versioning and snapshot isolation, no WAL and no checkpoints.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// CheckpointEvery checkpoints after that many mutation batches have
	// accumulated in the WAL (default 256; negative disables automatic
	// checkpointing).
	CheckpointEvery int
	// FS is the filesystem the WAL and checkpointer use (default OSFS).
	// Tests inject faults by passing an errfs.FS.
	FS FS
	// BreakerThreshold is the number of consecutive durability failures
	// that flips the store into read-only mode (default 3; negative
	// disables the breaker).
	BreakerThreshold int
	// RetryAttempts bounds how many times a failed WAL append is
	// retried within one Apply before the failure is surfaced (default
	// 2; negative disables retries). Retries stop early when the writer
	// is poisoned — a rollback failure is not transient.
	RetryAttempts int
	// RetryBackoff is the delay before the first retry, doubling per
	// attempt (default 5ms).
	RetryBackoff time.Duration
	// ProbeInterval is the delay before the first re-arm probe after
	// the breaker trips, doubling per failed probe up to one minute
	// (default 1s).
	ProbeInterval time.Duration
	// LogRetention bounds the in-memory replication log tail (default
	// 4096 records). The tail normally mirrors the WAL — records since
	// the last checkpoint — but ephemeral stores and stores with
	// checkpointing disabled would otherwise retain it unboundedly.
	// A replica asking for records older than the tail is told to
	// bootstrap from a snapshot instead (ErrLogTruncated).
	LogRetention int
	// Logf receives operational log lines (torn-tail truncations,
	// breaker transitions). Nil selects the standard logger.
	Logf func(format string, args ...any)
}

// Version is one immutable published database version. DB must be
// treated as read-only; the fingerprint combines the schema fingerprint
// with the sequence number, so it changes on every mutation batch —
// plan-cache keys scoped by it invalidate naturally. Epoch is the
// promotion epoch the version was published under: it proves which
// write lineage the version belongs to (the fingerprint alone cannot,
// because it covers schema shape and tuple counts, not tuple contents).
type Version struct {
	DB          *lapushdb.DB
	Seq         uint64
	Fingerprint string
	Epoch       uint64
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Seq                 uint64 `json:"version"`
	Fingerprint         string `json:"fingerprint"`
	// Epoch is the store's current promotion epoch (0 until the first
	// promotion anywhere in the lineage).
	Epoch uint64 `json:"epoch"`
	// FencedEpoch is the highest promotion epoch observed elsewhere in
	// the cluster (via Fence); while it exceeds Epoch, Apply refuses
	// writes with ErrFenced.
	FencedEpoch uint64 `json:"fenced_epoch,omitempty"`
	Durable             bool   `json:"durable"`
	Fsync               string `json:"fsync,omitempty"`
	WALBytes            int64  `json:"wal_bytes"`
	CheckpointSeq       uint64 `json:"last_checkpoint_seq"`
	Checkpoints         int64  `json:"checkpoints_total"`
	MutationsTotal      int64  `json:"mutations_total"`
	BatchesTotal        int64  `json:"batches_total"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
	// ReadOnly reports degraded mode: the breaker tripped and mutations
	// are refused until the re-arm probe succeeds.
	ReadOnly bool `json:"read_only"`
	// ConsecutiveFailures is the current run of durability failures
	// feeding the breaker (reset by any successful append).
	ConsecutiveFailures int `json:"consecutive_durability_failures,omitempty"`
	// WALTruncations counts torn-tail truncations performed during
	// recovery since this store was opened.
	WALTruncations int64 `json:"wal_truncations_total"`
	// WALTruncatedBytes is the total torn-tail byte count discarded by
	// those truncations.
	WALTruncatedBytes int64 `json:"wal_truncated_bytes_total,omitempty"`
}

// manifest is the JSON sidecar naming the live checkpoint. Epoch is
// omitted when zero, so epoch-0 manifests are byte-identical to the
// pre-epoch format and manifests written by pre-epoch binaries decode
// as epoch 0.
type manifest struct {
	Seq        uint64 `json:"seq"`
	Checkpoint string `json:"checkpoint"`
	Epoch      uint64 `json:"epoch,omitempty"`
}

// Store is a concurrently-mutable versioned database. Readers call
// Current and use the pinned version lock-free; Apply serializes
// writers.
type Store struct {
	cur  atomic.Pointer[Version]
	opts Options
	fs   FS

	readOnly atomic.Bool // breaker state; reads are lock-free

	mu              sync.Mutex // serializes Apply, Checkpoint, Close, Stats
	wal             *walWriter // nil in ephemeral mode
	closed          bool
	epoch           uint64 // promotion epoch; mutated under mu, read via published Versions
	fencedEpoch     uint64 // highest epoch observed elsewhere (Fence); Apply refuses while it exceeds epoch
	checkpointSeq   uint64
	sinceCheckpoint int
	checkpoints     int64
	failures        int // consecutive durability failures
	probeRunning    bool
	probeStop       chan struct{}
	mutations       atomic.Int64
	batches         atomic.Int64
	truncations     atomic.Int64
	truncatedBytes  atomic.Int64
	lastCkptErr     string

	// Replication log tail (see replication.go): records since the last
	// checkpoint, each with the fingerprint of the version it produced.
	// anchorSeq/anchorFP/anchorEpoch identify the state just before the
	// oldest retained record (the epoch is the one that state was
	// produced under, which ReadLog verifies position claims against).
	logMu       sync.RWMutex
	logTail     []LogRecord
	anchorSeq   uint64
	anchorFP    string
	anchorEpoch uint64

	// notify is closed and replaced on every publish; WaitForSeq
	// watchers block on it.
	notifyMu sync.Mutex
	notify   chan struct{}
}

// Open opens (or creates) a store. seed provides the initial database
// contents on first boot only: once the directory holds a manifest,
// recovered state wins and seed is ignored, so restarting with the same
// -rel flags does not clobber ingested data. A nil seed starts empty.
// Ephemeral mode (Options.Dir == "") never touches the filesystem.
func Open(seed *lapushdb.DB, opts Options) (*Store, error) {
	switch opts.Fsync {
	case "":
		opts.Fsync = FsyncAlways
	case FsyncAlways, FsyncNever:
	default:
		return nil, fmt.Errorf("store: unknown fsync policy %q (want %q or %q)", opts.Fsync, FsyncAlways, FsyncNever)
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 256
	}
	if opts.FS == nil {
		opts.FS = OSFS
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 3
	}
	if opts.RetryAttempts == 0 {
		opts.RetryAttempts = 2
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = 5 * time.Millisecond
	}
	if opts.ProbeInterval <= 0 {
		opts.ProbeInterval = time.Second
	}
	if opts.LogRetention <= 0 {
		opts.LogRetention = 4096
	}
	if seed == nil {
		seed = lapushdb.Open()
	}
	s := &Store{opts: opts, fs: opts.FS, probeStop: make(chan struct{}), notify: make(chan struct{})}
	if opts.Dir == "" {
		db := seed.CloneCOW()
		s.anchorSeq, s.anchorFP = 0, Fingerprint(db, 0)
		s.publish(db, 0)
		return s, nil
	}
	if err := s.fs.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	var db *lapushdb.DB
	man, err := readManifest(s.fs, filepath.Join(opts.Dir, manifestName))
	switch {
	case err == nil:
		db, err = loadSnapshotFile(s.fs, filepath.Join(opts.Dir, man.Checkpoint))
		if err != nil {
			return nil, fmt.Errorf("store: load checkpoint %s: %w", man.Checkpoint, err)
		}
		s.checkpointSeq = man.Seq
		s.epoch = man.Epoch
	case errors.Is(err, os.ErrNotExist):
		// First boot: anchor recovery with a checkpoint of the seed.
		db = seed.CloneCOW()
		if err := s.writeCheckpoint(db, 0, 0); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}

	// Replay the WAL over the checkpoint. Each record applies to a
	// private clone that is adopted only when the whole batch succeeds,
	// so a corrupt record can never leave a half-applied batch behind —
	// the recovered state is always exactly a prefix of logged batches.
	// Adopted records are retained in the replication log tail (with
	// their recomputed fingerprints), so a freshly recovered store can
	// serve replicas from the same positions the WAL covers.
	s.anchorSeq, s.anchorFP, s.anchorEpoch = s.checkpointSeq, Fingerprint(db, s.checkpointSeq), s.epoch
	last := s.checkpointSeq
	replayed := 0
	apply := func(rec walRecord) error {
		if rec.Seq <= s.checkpointSeq {
			return nil // already folded into the checkpoint
		}
		if rec.Seq != last+1 {
			return fmt.Errorf("store: wal sequence gap: have %d, next record is %d", last, rec.Seq)
		}
		next := db.CloneCOW()
		if err := applyBatch(next, rec.Muts); err != nil {
			return err
		}
		db = next
		last = rec.Seq
		replayed++
		// A replicated record committed under a newer epoch re-adopts it
		// on recovery, even if no checkpoint captured it before the crash.
		if rec.Epoch > s.epoch {
			s.epoch = rec.Epoch
		}
		s.appendLog(LogRecord{Seq: rec.Seq, Epoch: rec.Epoch, Fingerprint: Fingerprint(next, rec.Seq), Muts: rec.Muts})
		return nil
	}
	walPath := filepath.Join(opts.Dir, walName)
	w, truncated, err := openWAL(s.fs, walPath, opts.Fsync == FsyncAlways, apply)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if truncated > 0 {
		// A torn tail is expected after a crash or syscall failure, but
		// never silent: it is the store discarding unacknowledgeable
		// bytes, and operators should be able to correlate it.
		s.truncations.Add(1)
		s.truncatedBytes.Add(truncated)
		s.logf("store: wal %s: truncated %d bytes of torn tail during recovery", walPath, truncated)
	}
	s.wal = w
	s.sinceCheckpoint = replayed
	s.publish(db, last)
	s.removeStaleCheckpoints()
	return s, nil
}

// Current returns the live published version. The result is immutable
// and remains valid (and consistent) for as long as the caller holds
// it, however many mutations are applied meanwhile.
func (s *Store) Current() *Version { return s.cur.Load() }

// ReadOnly reports whether the breaker has tripped: the store serves
// reads from the last published version but refuses mutations.
func (s *Store) ReadOnly() bool { return s.readOnly.Load() }

// Apply atomically applies one mutation batch and publishes the
// resulting version. The batch is all-or-nothing: any validation error
// leaves the store unchanged. Under FsyncAlways the batch is durable
// before Apply returns. Durability failures wrap ErrDurability; in
// degraded mode Apply fails fast with ErrReadOnly.
func (s *Store) Apply(muts []Mutation) (*Version, error) {
	if len(muts) == 0 {
		return nil, errors.New("store: empty mutation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	if s.readOnly.Load() {
		return nil, ErrReadOnly
	}
	if s.fencedEpoch > s.epoch {
		// A newer lineage exists somewhere in the cluster (Fence observed
		// it); committing here would fork the WAL no replica will follow.
		// Checked under s.mu so a write racing the server-level role
		// transition still cannot slip through.
		return nil, fmt.Errorf("%w: observed promotion epoch %d exceeds local epoch %d", ErrFenced, s.fencedEpoch, s.epoch)
	}
	cur := s.cur.Load()
	next := cur.DB.CloneCOW()
	if err := applyBatch(next, muts); err != nil {
		return nil, err
	}
	return s.commitLocked(next, cur.Seq+1, muts)
}

// commitLocked is the shared tail of Apply and ApplyReplicated: log the
// batch to the WAL, retain it in the replication tail, publish the
// version, and checkpoint when due. Caller holds s.mu.
func (s *Store) commitLocked(next *lapushdb.DB, seq uint64, muts []Mutation) (*Version, error) {
	if s.wal != nil {
		payload, err := json.Marshal(walRecord{Seq: seq, Epoch: s.epoch, Muts: muts})
		if err != nil {
			return nil, fmt.Errorf("%w: encode batch: %v", ErrDurability, err)
		}
		if err := s.appendWithRetry(payload); err != nil {
			s.noteDurabilityFailureLocked()
			return nil, fmt.Errorf("%w: %v", ErrDurability, err)
		}
		s.failures = 0
	}
	// Retain the record before publishing: a log reader woken by the
	// publish must find the record already in the tail.
	s.appendLog(LogRecord{Seq: seq, Epoch: s.epoch, Fingerprint: Fingerprint(next, seq), Muts: muts})
	v := s.publish(next, seq)
	s.mutations.Add(int64(len(muts)))
	s.batches.Add(1)
	s.sinceCheckpoint++
	if s.wal != nil && s.opts.CheckpointEvery > 0 && s.sinceCheckpoint >= s.opts.CheckpointEvery {
		// The batch is already durable and published; a checkpoint
		// failure only delays WAL truncation, so it must not fail the
		// Apply. It is surfaced through Stats instead.
		if err := s.checkpointLocked(v); err != nil {
			s.lastCkptErr = err.Error()
		} else {
			s.lastCkptErr = ""
		}
	}
	return v, nil
}

// appendWithRetry appends one WAL record, retrying transient failures
// up to RetryAttempts times with exponential backoff. A poisoned writer
// (rollback failed, file state unknown) is not transient, so retries
// stop there. Caller holds s.mu; backoffs are small by construction.
func (s *Store) appendWithRetry(payload []byte) error {
	err := s.wal.append(payload)
	backoff := s.opts.RetryBackoff
	for attempt := 0; err != nil && attempt < s.opts.RetryAttempts && s.wal.broken == nil; attempt++ {
		time.Sleep(backoff)
		backoff *= 2
		err = s.wal.append(payload)
	}
	return err
}

// noteDurabilityFailureLocked advances the breaker: after
// BreakerThreshold consecutive durability failures the store flips to
// read-only and the re-arm probe starts. Caller holds s.mu.
func (s *Store) noteDurabilityFailureLocked() {
	s.failures++
	if s.opts.BreakerThreshold <= 0 || s.failures < s.opts.BreakerThreshold || s.readOnly.Load() {
		return
	}
	s.readOnly.Store(true)
	s.logf("store: entering read-only mode after %d consecutive durability failures", s.failures)
	if !s.probeRunning {
		s.probeRunning = true
		go s.probeLoop()
	}
}

// Checkpoint forces a checkpoint of the current version and truncates
// the WAL. A no-op in ephemeral mode; refused in degraded mode.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.wal == nil {
		return nil
	}
	if s.readOnly.Load() {
		return ErrReadOnly
	}
	return s.checkpointLocked(s.cur.Load())
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	st := Stats{
		Seq:                 v.Seq,
		Fingerprint:         v.Fingerprint,
		Epoch:               s.epoch,
		FencedEpoch:         s.fencedEpoch,
		Durable:             s.wal != nil,
		CheckpointSeq:       s.checkpointSeq,
		Checkpoints:         s.checkpoints,
		MutationsTotal:      s.mutations.Load(),
		BatchesTotal:        s.batches.Load(),
		LastCheckpointError: s.lastCkptErr,
		ReadOnly:            s.readOnly.Load(),
		ConsecutiveFailures: s.failures,
		WALTruncations:      s.truncations.Load(),
		WALTruncatedBytes:   s.truncatedBytes.Load(),
	}
	if s.wal != nil {
		st.Fsync = string(s.opts.Fsync)
		st.WALBytes = s.wal.size
	}
	return st
}

// Close releases the WAL file and stops the re-arm probe. Published
// versions stay readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	close(s.probeStop)
	if s.wal != nil {
		return s.wal.f.Close()
	}
	return nil
}

func (s *Store) publish(db *lapushdb.DB, seq uint64) *Version {
	v := &Version{DB: db, Seq: seq, Fingerprint: Fingerprint(db, seq), Epoch: s.epoch}
	s.cur.Store(v)
	s.notifyPublish()
	return v
}

func (s *Store) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
		return
	}
	log.Printf(format, args...)
}

// checkpointLocked runs the checkpoint protocol for version v and
// resets the WAL. Caller holds s.mu.
func (s *Store) checkpointLocked(v *Version) error {
	if err := s.writeCheckpoint(v.DB, v.Seq, s.epoch); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return fmt.Errorf("%w: truncate wal: %v", ErrDurability, err)
	}
	s.checkpointSeq = v.Seq
	s.sinceCheckpoint = 0
	s.removeStaleCheckpoints()
	s.trimLog(v.Seq, v.Fingerprint, v.Epoch)
	return nil
}

// writeCheckpoint durably writes checkpoint-<seq>.lpd and points the
// manifest at it (snapshot first, manifest second, each via fsynced
// temp file + rename). The manifest records epoch, making the lineage
// claim durable.
func (s *Store) writeCheckpoint(db *lapushdb.DB, seq, epoch uint64) error {
	name := fmt.Sprintf("checkpoint-%09d.lpd", seq)
	if err := writeFileDurable(s.fs, s.opts.Dir, name, func(f File) error { return db.Save(f) }); err != nil {
		return fmt.Errorf("%w: write checkpoint: %v", ErrDurability, err)
	}
	buf, err := json.Marshal(manifest{Seq: seq, Checkpoint: name, Epoch: epoch})
	if err != nil {
		return fmt.Errorf("%w: encode manifest: %v", ErrDurability, err)
	}
	err = writeFileDurable(s.fs, s.opts.Dir, manifestName, func(f File) error {
		_, err := f.Write(buf)
		return err
	})
	if err != nil {
		return fmt.Errorf("%w: write manifest: %v", ErrDurability, err)
	}
	s.checkpoints++
	return nil
}

// removeStaleCheckpoints deletes checkpoint files the manifest no
// longer references (leftovers of a crash mid-protocol or of an earlier
// checkpoint). Best effort.
func (s *Store) removeStaleCheckpoints() {
	live := fmt.Sprintf("checkpoint-%09d.lpd", s.checkpointSeq)
	matches, err := s.fs.Glob(filepath.Join(s.opts.Dir, "checkpoint-*.lpd"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if filepath.Base(m) != live {
			_ = s.fs.Remove(m)
		}
	}
}

// writeFileDurable writes dir/name via a temp file: write, fsync,
// close, rename, fsync the directory. The file either exists complete
// or not at all.
func writeFileDurable(fs FS, dir, name string, write func(f File) error) error {
	tmp, err := fs.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer fs.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}

func readManifest(fs FS, path string) (manifest, error) {
	buf, err := fs.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if m.Checkpoint == "" || filepath.Base(m.Checkpoint) != m.Checkpoint {
		return manifest{}, fmt.Errorf("parse %s: bad checkpoint name %q", path, m.Checkpoint)
	}
	return m, nil
}

func loadSnapshotFile(fs FS, path string) (*lapushdb.DB, error) {
	f, err := fs.OpenFile(path, os.O_RDONLY, 0)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lapushdb.Load(f)
}
