// Package store is lapushd's durable versioned database store. It
// publishes immutable lapushdb.DB versions behind an atomic pointer:
// every in-flight query pins the version it started on (snapshot
// isolation, preserving the engine's bit-identical determinism
// contract) while a single serialized applier builds the next version
// as a copy-on-write clone. Durability comes from a CRC-checked
// write-ahead log of mutation batches with a configurable fsync
// policy, threshold-triggered checkpointing to the .lpd snapshot
// format, and crash recovery that loads the latest checkpoint, replays
// the WAL, and truncates a torn tail instead of failing.
//
// On-disk layout of a store directory:
//
//	MANIFEST              JSON {seq, checkpoint}: which checkpoint is live
//	checkpoint-<seq>.lpd  database snapshot at sequence number <seq>
//	wal.log               mutation batches applied after that checkpoint
//
// Checkpoint protocol (crash-safe at every step): write the snapshot to
// a temp file, fsync, rename to checkpoint-<seq>.lpd; write the new
// manifest to a temp file, fsync, rename over MANIFEST; then truncate
// the WAL. A crash between any two steps recovers correctly because WAL
// records carry sequence numbers and replay skips records at or below
// the manifest's checkpoint sequence.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"lapushdb"
)

const (
	manifestName = "MANIFEST"
	walName      = "wal.log"
)

// ErrDurability wraps WAL and checkpoint I/O failures, distinguishing
// them from mutation validation errors: a validation error is the
// client's fault, a durability error is the server's.
var ErrDurability = errors.New("store: durability failure")

// FsyncPolicy selects when the WAL is fsynced.
type FsyncPolicy string

const (
	// FsyncAlways fsyncs after every mutation batch, before the batch is
	// acknowledged: a crash never loses an acknowledged batch.
	FsyncAlways FsyncPolicy = "always"
	// FsyncNever leaves flushing to the OS: a crash may lose recently
	// acknowledged batches, but never recovers a corrupt state (torn
	// tails truncate).
	FsyncNever FsyncPolicy = "never"
)

// Options configures a store.
type Options struct {
	// Dir is the store directory. Empty selects ephemeral mode: full
	// versioning and snapshot isolation, no WAL and no checkpoints.
	Dir string
	// Fsync is the WAL fsync policy (default FsyncAlways).
	Fsync FsyncPolicy
	// CheckpointEvery checkpoints after that many mutation batches have
	// accumulated in the WAL (default 256; negative disables automatic
	// checkpointing).
	CheckpointEvery int
}

// Version is one immutable published database version. DB must be
// treated as read-only; the fingerprint combines the schema fingerprint
// with the sequence number, so it changes on every mutation batch —
// plan-cache keys scoped by it invalidate naturally.
type Version struct {
	DB          *lapushdb.DB
	Seq         uint64
	Fingerprint string
}

// Stats is a point-in-time snapshot of the store's counters.
type Stats struct {
	Seq                 uint64 `json:"version"`
	Fingerprint         string `json:"fingerprint"`
	Durable             bool   `json:"durable"`
	Fsync               string `json:"fsync,omitempty"`
	WALBytes            int64  `json:"wal_bytes"`
	CheckpointSeq       uint64 `json:"last_checkpoint_seq"`
	Checkpoints         int64  `json:"checkpoints_total"`
	MutationsTotal      int64  `json:"mutations_total"`
	BatchesTotal        int64  `json:"batches_total"`
	LastCheckpointError string `json:"last_checkpoint_error,omitempty"`
}

// manifest is the JSON sidecar naming the live checkpoint.
type manifest struct {
	Seq        uint64 `json:"seq"`
	Checkpoint string `json:"checkpoint"`
}

// Store is a concurrently-mutable versioned database. Readers call
// Current and use the pinned version lock-free; Apply serializes
// writers.
type Store struct {
	cur  atomic.Pointer[Version]
	opts Options

	mu              sync.Mutex // serializes Apply, Checkpoint, Close, Stats
	wal             *walWriter // nil in ephemeral mode
	closed          bool
	checkpointSeq   uint64
	sinceCheckpoint int
	checkpoints     int64
	mutations       atomic.Int64
	batches         atomic.Int64
	lastCkptErr     string
}

// Open opens (or creates) a store. seed provides the initial database
// contents on first boot only: once the directory holds a manifest,
// recovered state wins and seed is ignored, so restarting with the same
// -rel flags does not clobber ingested data. A nil seed starts empty.
// Ephemeral mode (Options.Dir == "") never touches the filesystem.
func Open(seed *lapushdb.DB, opts Options) (*Store, error) {
	switch opts.Fsync {
	case "":
		opts.Fsync = FsyncAlways
	case FsyncAlways, FsyncNever:
	default:
		return nil, fmt.Errorf("store: unknown fsync policy %q (want %q or %q)", opts.Fsync, FsyncAlways, FsyncNever)
	}
	if opts.CheckpointEvery == 0 {
		opts.CheckpointEvery = 256
	}
	if seed == nil {
		seed = lapushdb.Open()
	}
	s := &Store{opts: opts}
	if opts.Dir == "" {
		s.publish(seed.CloneCOW(), 0)
		return s, nil
	}
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}

	var db *lapushdb.DB
	man, err := readManifest(filepath.Join(opts.Dir, manifestName))
	switch {
	case err == nil:
		db, err = loadSnapshotFile(filepath.Join(opts.Dir, man.Checkpoint))
		if err != nil {
			return nil, fmt.Errorf("store: load checkpoint %s: %w", man.Checkpoint, err)
		}
		s.checkpointSeq = man.Seq
	case errors.Is(err, os.ErrNotExist):
		// First boot: anchor recovery with a checkpoint of the seed.
		db = seed.CloneCOW()
		if err := s.writeCheckpoint(db, 0); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("store: read manifest: %w", err)
	}

	// Replay the WAL over the checkpoint. Each record applies to a
	// private clone that is adopted only when the whole batch succeeds,
	// so a corrupt record can never leave a half-applied batch behind —
	// the recovered state is always exactly a prefix of logged batches.
	last := s.checkpointSeq
	replayed := 0
	apply := func(rec walRecord) error {
		if rec.Seq <= s.checkpointSeq {
			return nil // already folded into the checkpoint
		}
		if rec.Seq != last+1 {
			return fmt.Errorf("store: wal sequence gap: have %d, next record is %d", last, rec.Seq)
		}
		next := db.CloneCOW()
		if err := applyBatch(next, rec.Muts); err != nil {
			return err
		}
		db = next
		last = rec.Seq
		replayed++
		return nil
	}
	w, err := openWAL(filepath.Join(opts.Dir, walName), opts.Fsync == FsyncAlways, apply)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.wal = w
	s.sinceCheckpoint = replayed
	s.publish(db, last)
	s.removeStaleCheckpoints()
	return s, nil
}

// Current returns the live published version. The result is immutable
// and remains valid (and consistent) for as long as the caller holds
// it, however many mutations are applied meanwhile.
func (s *Store) Current() *Version { return s.cur.Load() }

// Apply atomically applies one mutation batch and publishes the
// resulting version. The batch is all-or-nothing: any validation error
// leaves the store unchanged. Under FsyncAlways the batch is durable
// before Apply returns. Durability failures wrap ErrDurability.
func (s *Store) Apply(muts []Mutation) (*Version, error) {
	if len(muts) == 0 {
		return nil, errors.New("store: empty mutation batch")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, errors.New("store: closed")
	}
	cur := s.cur.Load()
	next := cur.DB.CloneCOW()
	if err := applyBatch(next, muts); err != nil {
		return nil, err
	}
	seq := cur.Seq + 1
	if s.wal != nil {
		payload, err := json.Marshal(walRecord{Seq: seq, Muts: muts})
		if err != nil {
			return nil, fmt.Errorf("%w: encode batch: %v", ErrDurability, err)
		}
		if err := s.wal.append(payload); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrDurability, err)
		}
	}
	v := s.publish(next, seq)
	s.mutations.Add(int64(len(muts)))
	s.batches.Add(1)
	s.sinceCheckpoint++
	if s.wal != nil && s.opts.CheckpointEvery > 0 && s.sinceCheckpoint >= s.opts.CheckpointEvery {
		// The batch is already durable and published; a checkpoint
		// failure only delays WAL truncation, so it must not fail the
		// Apply. It is surfaced through Stats instead.
		if err := s.checkpointLocked(v); err != nil {
			s.lastCkptErr = err.Error()
		} else {
			s.lastCkptErr = ""
		}
	}
	return v, nil
}

// Checkpoint forces a checkpoint of the current version and truncates
// the WAL. A no-op in ephemeral mode.
func (s *Store) Checkpoint() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return errors.New("store: closed")
	}
	if s.wal == nil {
		return nil
	}
	return s.checkpointLocked(s.cur.Load())
}

// Stats returns the store's counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	v := s.cur.Load()
	st := Stats{
		Seq:                 v.Seq,
		Fingerprint:         v.Fingerprint,
		Durable:             s.wal != nil,
		CheckpointSeq:       s.checkpointSeq,
		Checkpoints:         s.checkpoints,
		MutationsTotal:      s.mutations.Load(),
		BatchesTotal:        s.batches.Load(),
		LastCheckpointError: s.lastCkptErr,
	}
	if s.wal != nil {
		st.Fsync = string(s.opts.Fsync)
		st.WALBytes = s.wal.size
	}
	return st
}

// Close releases the WAL file. Published versions stay readable.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.f.Close()
	}
	return nil
}

func (s *Store) publish(db *lapushdb.DB, seq uint64) *Version {
	v := &Version{DB: db, Seq: seq, Fingerprint: fmt.Sprintf("%s@%d", db.SchemaFingerprint(), seq)}
	s.cur.Store(v)
	return v
}

// checkpointLocked runs the checkpoint protocol for version v and
// resets the WAL. Caller holds s.mu.
func (s *Store) checkpointLocked(v *Version) error {
	if err := s.writeCheckpoint(v.DB, v.Seq); err != nil {
		return err
	}
	if err := s.wal.reset(); err != nil {
		return fmt.Errorf("%w: truncate wal: %v", ErrDurability, err)
	}
	s.checkpointSeq = v.Seq
	s.sinceCheckpoint = 0
	s.removeStaleCheckpoints()
	return nil
}

// writeCheckpoint durably writes checkpoint-<seq>.lpd and points the
// manifest at it (snapshot first, manifest second, each via fsynced
// temp file + rename).
func (s *Store) writeCheckpoint(db *lapushdb.DB, seq uint64) error {
	name := fmt.Sprintf("checkpoint-%09d.lpd", seq)
	if err := writeFileDurable(s.opts.Dir, name, func(f *os.File) error { return db.Save(f) }); err != nil {
		return fmt.Errorf("%w: write checkpoint: %v", ErrDurability, err)
	}
	buf, err := json.Marshal(manifest{Seq: seq, Checkpoint: name})
	if err != nil {
		return fmt.Errorf("%w: encode manifest: %v", ErrDurability, err)
	}
	err = writeFileDurable(s.opts.Dir, manifestName, func(f *os.File) error {
		_, err := f.Write(buf)
		return err
	})
	if err != nil {
		return fmt.Errorf("%w: write manifest: %v", ErrDurability, err)
	}
	s.checkpoints++
	return nil
}

// removeStaleCheckpoints deletes checkpoint files the manifest no
// longer references (leftovers of a crash mid-protocol or of an earlier
// checkpoint). Best effort.
func (s *Store) removeStaleCheckpoints() {
	live := fmt.Sprintf("checkpoint-%09d.lpd", s.checkpointSeq)
	matches, err := filepath.Glob(filepath.Join(s.opts.Dir, "checkpoint-*.lpd"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if filepath.Base(m) != live {
			_ = os.Remove(m)
		}
	}
}

// writeFileDurable writes dir/name via a temp file: write, fsync,
// close, rename, fsync the directory. The file either exists complete
// or not at all.
func writeFileDurable(dir, name string, write func(f *os.File) error) error {
	tmp, err := os.CreateTemp(dir, name+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := write(tmp); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, name)); err != nil {
		return err
	}
	return syncDir(dir)
}

func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

func readManifest(path string) (manifest, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, fmt.Errorf("parse %s: %w", path, err)
	}
	if m.Checkpoint == "" || filepath.Base(m.Checkpoint) != m.Checkpoint {
		return manifest{}, fmt.Errorf("parse %s: bad checkpoint name %q", path, m.Checkpoint)
	}
	return m, nil
}

func loadSnapshotFile(path string) (*lapushdb.DB, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return lapushdb.Load(f)
}
