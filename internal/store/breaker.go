package store

import (
	"os"
	"path/filepath"
	"time"
)

// Degraded read-only mode. After BreakerThreshold consecutive
// durability failures (each already past its bounded in-Apply retries)
// the store stops accepting mutations: the WAL's on-disk state is
// still a clean prefix of acknowledged batches, the published version
// keeps serving every reader, and Apply fails fast with ErrReadOnly
// instead of burning a sick disk with doomed writes. This file holds
// the half that un-trips the breaker: a probe goroutine that retries
// with exponential backoff until the directory is writable again.

// maxProbeBackoff caps the re-arm probe's exponential backoff.
const maxProbeBackoff = time.Minute

// probeLoop periodically attempts to re-arm the breaker, doubling its
// delay after every failed probe. It exits when the probe succeeds or
// the store closes.
func (s *Store) probeLoop() {
	backoff := s.opts.ProbeInterval
	for {
		select {
		case <-s.probeStop:
			return
		case <-time.After(backoff):
		}
		if s.tryRearm() {
			return
		}
		if backoff < maxProbeBackoff {
			backoff *= 2
			if backoff > maxProbeBackoff {
				backoff = maxProbeBackoff
			}
		}
	}
}

// tryRearm attempts to exit read-only mode. The probe is the real
// write path, not a synthetic touch-file: it checkpoints the current
// version (temp file, fsync, rename, directory fsync) and replaces the
// possibly-poisoned WAL with a fresh one, so success proves every
// syscall the store needs is working and leaves the directory in a
// self-consistent state anchored at the published version. Returns
// true when probing should stop (re-armed, or store closed).
func (s *Store) tryRearm() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		s.probeRunning = false
		return true
	}
	v := s.cur.Load()
	if err := s.writeCheckpoint(v.DB, v.Seq, s.epoch); err != nil {
		s.logf("store: re-arm probe: %v", err)
		return false
	}
	if err := s.replaceWALLocked(); err != nil {
		s.logf("store: re-arm probe: replace wal: %v", err)
		return false
	}
	s.checkpointSeq = v.Seq
	s.sinceCheckpoint = 0
	s.removeStaleCheckpoints()
	s.failures = 0
	s.probeRunning = false
	s.readOnly.Store(false)
	s.logf("store: wal writable again, leaving read-only mode at version %d", v.Seq)
	return true
}

// replaceWALLocked swaps the (possibly poisoned) WAL writer for a
// fresh, empty, fsynced log. Only safe right after a successful
// checkpoint of the current version: every batch the old WAL held is
// at or below the manifest's sequence number by then. Caller holds
// s.mu.
func (s *Store) replaceWALLocked() error {
	f, err := s.fs.OpenFile(filepath.Join(s.opts.Dir, walName), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte(walMagic)); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	old := s.wal.f
	s.wal = &walWriter{f: f, size: walHeaderSize, sync: s.opts.Fsync == FsyncAlways}
	_ = old.Close()
	return nil
}
