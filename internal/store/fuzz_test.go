package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"lapushdb"
)

// fuzzBaseDB is the fixed pre-WAL state every fuzz execution starts
// from (standing in for the checkpoint the WAL would be replayed over).
func fuzzBaseDB(t testing.TB) *lapushdb.DB {
	return testSeedDB(t)
}

// buildCorpusWAL exercises a real store and returns its WAL bytes for
// the seed corpus.
func buildCorpusWAL(t testing.TB) []byte {
	dir, err := os.MkdirTemp("", "lpdwal")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	st, err := Open(fuzzBaseDB(t), Options{Dir: dir, Fsync: FsyncNever, CheckpointEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	batches := [][]Mutation{
		{{Op: OpInsert, Rel: "Likes", Tuple: []string{"carol", "heat"}, P: pf(0.7)}},
		{{Op: OpSetProb, Rel: "Likes", Tuple: []string{"ann", "heat"}, P: pf(0.25)},
			{Op: OpCreateRelation, Rel: "Fan", Cols: []string{"actor"}, Key: []string{"actor"}}},
		{{Op: OpDelete, Rel: "Likes", Tuple: []string{"bob", "heat"}},
			{Op: OpScaleProbs, Factor: 0.5}},
	}
	for _, muts := range batches {
		if _, err := st.Apply(muts); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	wal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	return wal
}

// FuzzWALReplay feeds arbitrary bytes to WAL recovery and checks the
// two safety properties the store relies on: recovery never panics, and
// whatever state it produces is exactly the sequential application of
// the prefix of records it accepted — never a half-applied batch, never
// a record past a defect. It also checks that the truncation recovery
// performs makes the file replay cleanly a second time.
func FuzzWALReplay(f *testing.F) {
	wal := buildCorpusWAL(f)
	f.Add(wal)
	f.Add(wal[:len(wal)-3]) // torn tail mid-record
	flipped := append([]byte(nil), wal...)
	flipped[len(flipped)/2] ^= 0xff // corrupt payload byte
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(walMagic))
	f.Add(append([]byte(walMagic), 0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0)) // absurd length prefix
	f.Add([]byte("GARBAGE!"))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, walName)
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}

		// Mirror Store.Open's replay: skip already-checkpointed records,
		// reject sequence gaps, adopt a batch only if it applies cleanly
		// to a private clone.
		db := fuzzBaseDB(t).CloneCOW()
		var accepted []walRecord
		last := uint64(0)
		w, _, err := openWAL(OSFS, path, false, func(rec walRecord) error {
			if rec.Seq <= 0 {
				return nil
			}
			if rec.Seq != last+1 {
				return fmt.Errorf("sequence gap")
			}
			next := db.CloneCOW()
			if err := applyBatch(next, rec.Muts); err != nil {
				return err
			}
			db = next
			last = rec.Seq
			accepted = append(accepted, rec)
			return nil
		})
		if err != nil {
			return // clean rejection (e.g. bad magic) is a valid outcome
		}
		w.f.Close()

		// Property 1: the recovered state equals re-applying exactly the
		// accepted prefix to a fresh base — nothing more, nothing less.
		check := fuzzBaseDB(t).CloneCOW()
		for i, rec := range accepted {
			if err := applyBatch(check, rec.Muts); err != nil {
				t.Fatalf("accepted record %d does not re-apply: %v", i, err)
			}
		}
		if !bytes.Equal(dbBytes(t, db), dbBytes(t, check)) {
			t.Fatal("recovered state is not the application of the accepted record prefix")
		}

		// Property 2: recovery truncated the defect away, so a second
		// replay accepts the same records and reports no tear.
		count := 0
		last = 0
		w2, _, err := openWAL(OSFS, path, false, func(rec walRecord) error {
			if rec.Seq <= 0 {
				return nil
			}
			if rec.Seq != last+1 {
				return fmt.Errorf("sequence gap")
			}
			last = rec.Seq
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("replay after truncation failed: %v", err)
		}
		w2.f.Close()
		if count != len(accepted) {
			t.Fatalf("second replay accepted %d records, first accepted %d", count, len(accepted))
		}
	})
}
