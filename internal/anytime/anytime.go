// Package anytime evaluates a query as a monotonically tightening
// [lower, upper] probability interval, exploiting the paper's central
// asymmetry: every minimal dissociation plan's propagation score is a
// guaranteed upper bound on the true probability (Corollary 19), while
// lineage-based Monte Carlo and partial exact expansion bound it from
// below. Refinement proceeds in stages —
//
//	plans: evaluate minimal plans cheapest-first (engine.PlanCost);
//	       upper = min over plan scores, which only decreases. Safe
//	       queries collapse immediately (the plan score is exact).
//	mc:    Karp–Luby sampling of the semi-join-reduced lineage with a
//	       resumable per-answer sampler; lower rises to the one-sided
//	       confidence bound estimate − z·stderr, never past upper.
//	exact: budgeted weighted model counting over a growing prefix of
//	       the lineage clauses (heaviest first). P(prefix) is a
//	       deterministic lower bound by monotonicity; covering every
//	       clause collapses the interval to the exact probability.
//
// — stopping as soon as every answer's width reaches epsilon, the
// context's deadline fires, or the row budget is exhausted. The
// best-so-far interval is always returned: a deadline or budget after
// at least one completed refinement step degrades the result (Degraded
// marks why) instead of discarding the work.
package anytime

import (
	"context"
	"encoding/binary"
	"errors"
	"hash/fnv"
	"math/rand"
	"sort"

	"lapushdb/internal/cq"
	"lapushdb/internal/engine"
	"lapushdb/internal/exact"
	"lapushdb/internal/mc"
	"lapushdb/internal/plan"
)

// Defaults for Config's refinement knobs.
const (
	DefaultMCBatch      = 256
	DefaultMCMaxSamples = 1 << 16
	// DefaultMCZ is the z of the MC stage's one-sided confidence lower
	// bound (estimate − z·stderr). 6 sigma puts the per-bound violation
	// probability near 1e-9: the bound is evaluated once per answer per
	// round, and the sandwich property test asserts lower <= exact over
	// thousands of such evaluations — at z=4 (p ≈ 3e-5) a fixed seed can
	// land on a violation.
	DefaultMCZ         = 6.0
	DefaultExactBudget = 2_000_000
	DefaultExactPrefix = 8
)

// Config parameterizes one anytime evaluation.
type Config struct {
	// Epsilon is the target interval width: refinement stops once every
	// answer's upper − lower <= Epsilon. Zero demands exact collapse.
	Epsilon float64
	// Engine options for the plan stage, mirroring lapushdb.Options.
	Workers             int
	CostBasedJoins      bool
	ReuseSubplans       bool
	SemiJoin            bool
	MaxIntermediateRows int
	// Safe marks the query safe: its single plan computes the exact
	// probability, so the interval collapses after the first plan.
	Safe bool
	// Memo, when non-nil, shares subplan results (and the batch row
	// budget) with other evaluations of one batch. When nil a private
	// memo scoped by Scope spans this evaluation's own stages.
	Memo  *engine.BatchMemo
	Scope string
	// MC stage: samples per refinement round (doubling up to 8192),
	// per-answer sample cap, and the z of the confidence lower bound.
	MCBatch      int
	MCMaxSamples int
	MCZ          float64
	// Exact stage: solver node budget per answer and the initial clause
	// prefix length (quadrupling each round).
	ExactBudget int
	ExactPrefix int
	// Seed derives the per-answer sampler seeds (seed ^ FNV of the
	// answer key), keeping sampling independent of iteration and worker
	// order so results stay bit-identical across Workers settings.
	Seed int64
	// TopK, when positive, prunes answers whose upper bound falls below
	// the running k-th largest lower bound — they cannot reach the top
	// k, so refining them is wasted work.
	TopK int
	// OnStage, when non-nil, observes the interval state after every
	// refinement step (one plan, one MC round, one exact round). The
	// snapshot's answers are copies; the callback must not retain or
	// race — it is called synchronously.
	OnStage func(Snapshot)
}

// Answer is one query answer with its probability interval.
type Answer struct {
	Key   []engine.Value
	Lower float64
	Upper float64
	// Converged reports width <= epsilon for this answer.
	Converged bool
	// Pruned marks answers eliminated by TopK bound pruning; their
	// interval is valid but no longer refined.
	Pruned bool
}

// StageStats reports one refinement stage's work.
type StageStats struct {
	Name  string // "plans", "mc", "exact"
	Steps int    // refinement steps completed (plans, MC rounds, exact rounds)
}

// Snapshot is the interval state handed to Config.OnStage.
type Snapshot struct {
	Stage   string
	Answers []Answer
}

// Result is the outcome of one anytime evaluation.
type Result struct {
	Cols    []cq.Var
	Answers []Answer
	// Converged reports whether every non-pruned answer reached epsilon.
	Converged bool
	// Degraded is "" for a run that refined to its natural end,
	// "deadline" when the context's deadline fired mid-refinement, and
	// "budget" when the intermediate-row budget was exhausted — in both
	// cases after at least one completed refinement step, so the
	// intervals are valid, just wider than requested.
	Degraded       string
	Stages         []StageStats
	PlansTotal     int
	PlansEvaluated int
	MCSamples      int
}

// Width returns the widest non-pruned answer interval (0 when there are
// no answers).
func (r *Result) Width() float64 {
	w := 0.0
	for _, a := range r.Answers {
		if a.Pruned {
			continue
		}
		if d := a.Upper - a.Lower; d > w {
			w = d
		}
	}
	return w
}

// ansState is the per-answer refinement state.
type ansState struct {
	key        []engine.Value
	lower      float64
	upper      float64
	converged  bool
	pruned     bool
	clauses    [][]int32 // lineage, sorted heaviest clause first
	sampler    *mc.KarpLubySampler
	exactStuck bool // exact solver exceeded its budget on this answer
}

func (a *ansState) width() float64 { return a.upper - a.lower }

// setLower raises the lower bound, clamped to [current lower, upper] so
// intervals only tighten and stay well-formed.
func (a *ansState) setLower(lb float64) {
	if lb > a.upper {
		lb = a.upper
	}
	if lb > a.lower {
		a.lower = lb
	}
}

// evaluation is one run's full state.
type evaluation struct {
	ctx     context.Context
	db      *engine.DB
	q       *cq.Query
	cfg     Config
	reduced map[string][]int32
	cols    []cq.Var
	answers []*ansState
	res     *Result
	err     error // hard failure (cancellation): discard the result
}

// Evaluate runs the staged anytime refinement of q over db. plans are
// the query's minimal plans (any order; they are re-ordered cheapest
// first). The error is non-nil only when no refinement step completed —
// once a first plan has been evaluated, deadline and budget failures
// degrade the result instead.
func Evaluate(ctx context.Context, db *engine.DB, q *cq.Query, plans []plan.Node, cfg Config) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.MCBatch <= 0 {
		cfg.MCBatch = DefaultMCBatch
	}
	if cfg.MCMaxSamples <= 0 {
		cfg.MCMaxSamples = DefaultMCMaxSamples
	}
	if cfg.MCZ <= 0 {
		cfg.MCZ = DefaultMCZ
	}
	if cfg.ExactBudget <= 0 {
		cfg.ExactBudget = DefaultExactBudget
	}
	if cfg.ExactPrefix <= 0 {
		cfg.ExactPrefix = DefaultExactPrefix
	}
	if cfg.Memo == nil {
		// A private memo makes the row budget span every stage of this
		// evaluation and shares subplans between its plan rounds.
		cfg.Memo = engine.NewBatchMemo(cfg.Scope, cfg.MaxIntermediateRows, cfg.ReuseSubplans)
	}
	ev := &evaluation{ctx: ctx, db: db, q: q, cfg: cfg, res: &Result{PlansTotal: len(plans)}}

	if err := ev.stagePlans(plans); err != nil {
		return nil, err
	}
	if ev.res.Degraded == "" && ev.err == nil && !ev.done() {
		ev.stageMC()
	}
	if ev.res.Degraded == "" && ev.err == nil && !ev.done() {
		ev.stageExact()
	}
	if ev.err != nil {
		return nil, ev.err
	}
	return ev.finish(), nil
}

// degradeClass maps an evaluation error to the Degraded label, or ""
// for errors that must propagate (cancellation, internal failures).
func degradeClass(err error) string {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return "deadline"
	case errors.Is(err, engine.ErrBudget):
		return "budget"
	}
	return ""
}

// stagePlans evaluates the minimal plans cheapest-first, tightening the
// upper bound with each one. The first plan must succeed (otherwise
// there is no interval to return); later failures degrade.
func (ev *evaluation) stagePlans(plans []plan.Node) error {
	costs := make([]float64, len(plans))
	idx := make([]int, len(plans))
	for i, p := range plans {
		costs[i] = engine.PlanCost(ev.db, p)
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return costs[idx[i]] < costs[idx[j]] })
	ordered := make([]plan.Node, len(plans))
	for i, j := range idx {
		ordered[i] = plans[j]
	}

	eopts := engine.Options{
		ReuseSubplans:  ev.cfg.ReuseSubplans,
		CostBasedJoins: ev.cfg.CostBasedJoins,
		Workers:        ev.cfg.Workers,
		Memo:           ev.cfg.Memo,
	}
	stage := StageStats{Name: "plans"}
	for _, p := range ordered {
		var r *engine.Result
		err := engine.TrapCancel(func() {
			if ev.reduced == nil && ev.cfg.SemiJoin {
				ev.reduced = engine.SemiJoinReduceCtx(ev.ctx, ev.db, ev.q)
			}
			o := eopts
			o.Reduced = ev.reduced
			r = engine.NewEvaluatorCtx(ev.ctx, ev.db, ev.q, o).Eval(p)
		})
		if err != nil {
			if stage.Steps == 0 {
				return err
			}
			if class := degradeClass(err); class != "" {
				ev.res.Degraded = class
				break
			}
			return err
		}
		if ev.answers == nil {
			ev.cols = r.Cols
			ev.answers = make([]*ansState, r.Len())
			for i := 0; i < r.Len(); i++ {
				key := append([]engine.Value(nil), r.Row(i)...)
				ev.answers[i] = &ansState{key: key, lower: 0, upper: r.Score(i)}
			}
		} else {
			for _, a := range ev.answers {
				if s, ok := r.ScoreOf(a.key); ok && s < a.upper {
					a.upper = s
					if a.lower > a.upper {
						a.lower = a.upper
					}
				}
			}
		}
		if ev.cfg.Safe {
			// A safe plan's score is the exact probability.
			for _, a := range ev.answers {
				a.lower = a.upper
			}
		}
		stage.Steps++
		ev.res.PlansEvaluated++
		ev.afterStep("plans")
		if ev.done() {
			break
		}
	}
	ev.res.Stages = append(ev.res.Stages, stage)
	return nil
}

// stageMC raises the lower bounds by Karp–Luby sampling of the
// semi-join-reduced lineage, in rounds of a doubling sample batch.
func (ev *evaluation) stageMC() {
	var lin *engine.Lineage
	err := engine.TrapCancel(func() {
		if ev.reduced == nil && ev.cfg.SemiJoin {
			ev.reduced = engine.SemiJoinReduceCtx(ev.ctx, ev.db, ev.q)
		}
		lin = engine.EvalLineageCtx(ev.ctx, ev.db, ev.q, ev.reduced)
	})
	if err != nil {
		if class := degradeClass(err); class != "" {
			ev.res.Degraded = class
		} else {
			ev.err = err // cancellation: the caller no longer wants the result
		}
		return
	}
	clausesByKey := make(map[string][][]int32, lin.Len())
	for i := 0; i < lin.Len(); i++ {
		clausesByKey[string(keyBytes(lin.Key(i)))] = lin.Clauses(i)
	}
	probs := ev.db.VarProbs()
	stage := StageStats{Name: "mc"}
	for _, a := range ev.answers {
		a.clauses = sortClausesByWeight(clausesByKey[string(keyBytes(a.key))], probs)
		if a.pruned || a.converged || len(a.clauses) == 0 {
			continue
		}
		rng := rand.New(rand.NewSource(ev.cfg.Seed ^ keySeed(a.key)))
		a.sampler = mc.NewKarpLubySampler(a.clauses, probs, rng)
		if a.sampler.Exact() {
			// Trivial lineage: the sampler's value is exact.
			p := a.sampler.Estimate()
			if p > a.upper {
				p = a.upper
			}
			if p < a.lower {
				p = a.lower
			}
			a.lower, a.upper = p, p
		}
	}
	batch := ev.cfg.MCBatch
	for {
		active := false
		for _, a := range ev.answers {
			if a.pruned || a.converged || a.sampler == nil || a.sampler.Exact() {
				continue
			}
			if a.sampler.Samples() >= ev.cfg.MCMaxSamples {
				continue
			}
			active = true
			if err := a.sampler.Sample(ev.ctx, batch); err != nil {
				if class := degradeClass(err); class != "" {
					ev.res.Degraded = class
				} else {
					ev.err = err
				}
				for _, b := range ev.answers {
					if b.sampler != nil {
						ev.res.MCSamples += b.sampler.Samples()
					}
				}
				ev.res.Stages = append(ev.res.Stages, stage)
				return
			}
			a.setLower(a.sampler.LowerBound(ev.cfg.MCZ))
		}
		if !active {
			break
		}
		stage.Steps++
		ev.afterStep("mc")
		if ev.done() {
			break
		}
		if batch < 8192 {
			batch *= 2
		}
	}
	for _, a := range ev.answers {
		if a.sampler != nil {
			ev.res.MCSamples += a.sampler.Samples()
		}
	}
	ev.res.Stages = append(ev.res.Stages, stage)
}

// stageExact raises the lower bounds by exact model counting over a
// growing prefix of each answer's lineage clauses, heaviest first:
// P(any prefix of a monotone DNF) <= P(the full DNF), so every prefix
// probability is a deterministic lower bound, and the full set collapses
// the interval.
func (ev *evaluation) stageExact() {
	probs := ev.db.VarProbs()
	stage := StageStats{Name: "exact"}
	defer func() { ev.res.Stages = append(ev.res.Stages, stage) }()
	m := ev.cfg.ExactPrefix
	for {
		progress := false
		for _, a := range ev.answers {
			if a.pruned || a.converged || a.exactStuck || len(a.clauses) == 0 {
				continue
			}
			if err := ev.ctx.Err(); err != nil {
				// The plans stage already completed at least one step,
				// so a deadline here degrades rather than fails.
				if class := degradeClass(err); class != "" {
					ev.res.Degraded = class
				} else {
					ev.err = err
				}
				return
			}
			k := m
			if k > len(a.clauses) {
				k = len(a.clauses)
			}
			p, err := exact.ProbBudget(a.clauses[:k], probs, ev.cfg.ExactBudget)
			if err != nil {
				a.exactStuck = true
				continue
			}
			if k == len(a.clauses) {
				// Exact probability: collapse, clamped into the current
				// interval so bounds never move the wrong way.
				if p > a.upper {
					p = a.upper
				}
				if p < a.lower {
					p = a.lower
				}
				a.lower, a.upper = p, p
			} else {
				a.setLower(p)
				progress = true
			}
		}
		stage.Steps++
		ev.afterStep("exact")
		if ev.done() || !progress {
			return
		}
		m *= 4
	}
}

// afterStep updates convergence flags, applies top-k pruning, and
// notifies the observer.
func (ev *evaluation) afterStep(stageName string) {
	for _, a := range ev.answers {
		if !a.converged && a.width() <= ev.cfg.Epsilon {
			a.converged = true
		}
	}
	if k := ev.cfg.TopK; k > 0 && len(ev.answers) > k {
		lowers := make([]float64, 0, len(ev.answers))
		for _, a := range ev.answers {
			if !a.pruned {
				lowers = append(lowers, a.lower)
			}
		}
		if len(lowers) > k {
			sort.Sort(sort.Reverse(sort.Float64Slice(lowers)))
			kth := lowers[k-1]
			for _, a := range ev.answers {
				if !a.pruned && a.upper < kth {
					a.pruned = true
				}
			}
		}
	}
	if ev.cfg.OnStage != nil {
		ev.cfg.OnStage(Snapshot{Stage: stageName, Answers: ev.snapshotAnswers()})
	}
}

// done reports whether every non-pruned answer has converged.
func (ev *evaluation) done() bool {
	if ev.answers == nil {
		return false
	}
	for _, a := range ev.answers {
		if !a.pruned && !a.converged {
			return false
		}
	}
	return true
}

func (ev *evaluation) snapshotAnswers() []Answer {
	out := make([]Answer, len(ev.answers))
	for i, a := range ev.answers {
		out[i] = Answer{
			Key:       a.key,
			Lower:     a.lower,
			Upper:     a.upper,
			Converged: a.converged,
			Pruned:    a.pruned,
		}
	}
	return out
}

func (ev *evaluation) finish() *Result {
	ev.res.Cols = ev.cols
	ev.res.Answers = ev.snapshotAnswers()
	ev.res.Converged = ev.done()
	return ev.res
}

// sortClausesByWeight orders clauses by descending probability weight
// (∏ of their variables' marginals), stably so equal weights keep the
// lineage order — a deterministic order for the exact stage's prefixes.
func sortClausesByWeight(clauses [][]int32, probs []float64) [][]int32 {
	if len(clauses) == 0 {
		return clauses
	}
	out := make([][]int32, len(clauses))
	copy(out, clauses)
	weight := func(c []int32) float64 {
		w := 1.0
		for _, v := range c {
			w *= probs[v]
		}
		return w
	}
	ws := make([]float64, len(out))
	for i, c := range out {
		ws[i] = weight(c)
	}
	idx := make([]int, len(out))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(i, j int) bool { return ws[idx[i]] > ws[idx[j]] })
	sorted := make([][]int32, len(out))
	for i, j := range idx {
		sorted[i] = out[j]
	}
	return sorted
}

// keyBytes encodes an answer key for map lookup, matching the engine's
// 8-byte little-endian value encoding.
func keyBytes(vals []engine.Value) []byte {
	b := make([]byte, 0, len(vals)*8)
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		b = append(b, buf[:]...)
	}
	return b
}

// keySeed derives a per-answer seed component from the answer key, so
// sampling streams are a function of the answer alone — independent of
// iteration order, worker count, and which other answers converge first.
func keySeed(vals []engine.Value) int64 {
	h := fnv.New64a()
	h.Write(keyBytes(vals))
	return int64(h.Sum64())
}
