// Package sqlgen renders probabilistic query plans to SQL — the artifact
// the paper's implementation generates (in Java) and ships to PostgreSQL
// or SQL Server. Each plan node becomes a SELECT:
//
//   - a scan reads the base table with its probability column and any
//     pushed-down predicates;
//   - a join multiplies the children's probabilities;
//   - a probabilistic projection groups by the kept variables and
//     combines duplicates as independent events with the standard
//     1 − EXP(SUM(LN(1 − p))) aggregate;
//   - a min node joins its alternatives on the head variables and takes
//     LEAST of their probabilities (Optimization 1);
//   - common subplans are emitted once as CTEs and referenced by name
//     (Optimization 2, Algorithm 3).
//
// The generated SQL is not executed by this repository (the in-memory
// engine plays the database's role) but is tested for structure and kept
// byte-stable so it can be diffed against a real DBMS setup.
package sqlgen

import (
	"fmt"
	"sort"
	"strings"

	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

// Schema supplies the physical column names of a relation, in atom
// argument order. The probability column is assumed to be named "p".
type Schema func(rel string) []string

// DefaultSchema names columns c0, c1, ... for every relation.
func DefaultSchema(q *cq.Query) Schema {
	arity := map[string]int{}
	for _, a := range q.Atoms {
		arity[a.Rel] = len(a.Args)
	}
	return func(rel string) []string {
		cols := make([]string, arity[rel])
		for i := range cols {
			cols[i] = fmt.Sprintf("c%d", i)
		}
		return cols
	}
}

// Generate renders the plan as a single SQL statement. Common subplans
// that occur more than once become CTEs in dependency order.
func Generate(q *cq.Query, p plan.Node, schema Schema) string {
	if schema == nil {
		schema = DefaultSchema(q)
	}
	g := &gen{q: q, schema: schema, views: map[string]string{}}
	// Detect shared subplans (Opt2): assign view names in inside-out
	// order so later views can reference earlier ones.
	common := plan.CommonSubplans(p)
	type sized struct {
		key  string
		node plan.Node
	}
	var order []sized
	for k, n := range common {
		order = append(order, sized{k, n})
	}
	sort.Slice(order, func(i, j int) bool {
		si, sj := plan.Size(order[i].node), plan.Size(order[j].node)
		if si != sj {
			return si < sj
		}
		return order[i].key < order[j].key
	})
	var ctes []string
	for i, s := range order {
		name := fmt.Sprintf("v%d", i+1)
		body := g.sql(s.node) // views may reference previously named views
		g.views[s.key] = name
		ctes = append(ctes, fmt.Sprintf("%s AS (\n%s\n)", name, indent(body, 2)))
	}
	body := g.sql(p)
	if len(ctes) == 0 {
		return body
	}
	return "WITH " + strings.Join(ctes, ",\n") + "\n" + body
}

type gen struct {
	q      *cq.Query
	schema Schema
	views  map[string]string
	alias  int
}

func (g *gen) nextAlias() string {
	g.alias++
	return fmt.Sprintf("t%d", g.alias)
}

// sql renders a node as a full SELECT statement.
func (g *gen) sql(n plan.Node) string {
	if name, ok := g.views[n.Key()]; ok {
		return "SELECT * FROM " + name
	}
	switch t := n.(type) {
	case *plan.Scan:
		return g.scanSQL(t)
	case *plan.Project:
		return g.projectSQL(t)
	case *plan.Join:
		return g.joinSQL(t.Subs)
	case *plan.Min:
		return g.minSQL(t)
	default:
		panic("sqlgen: unknown node")
	}
}

// fromClause renders a node as a FROM-able term plus its exported
// columns.
func (g *gen) fromClause(n plan.Node) (term, alias string) {
	alias = g.nextAlias()
	if name, ok := g.views[n.Key()]; ok {
		return name + " AS " + alias, alias
	}
	return "(\n" + indent(g.sql(n), 2) + "\n) AS " + alias, alias
}

func (g *gen) scanSQL(s *plan.Scan) string {
	cols := g.schema(s.Atom.Rel)
	var selects, wheres []string
	seen := map[cq.Var]string{}
	for i, a := range s.Atom.Args {
		switch {
		case a.IsVar():
			if prev, ok := seen[a.Var]; ok {
				wheres = append(wheres, fmt.Sprintf("%s = %s", prev, cols[i]))
			} else {
				seen[a.Var] = cols[i]
				selects = append(selects, fmt.Sprintf("%s AS %s", cols[i], a.Var))
			}
		default:
			wheres = append(wheres, fmt.Sprintf("%s = %s", cols[i], sqlLit(a.Const)))
		}
	}
	for _, p := range s.Preds {
		col, ok := seen[p.Var]
		if !ok {
			continue
		}
		if p.Op == cq.OpLike {
			wheres = append(wheres, fmt.Sprintf("%s LIKE %s", col, sqlLit(p.Const)))
		} else {
			op := string(p.Op)
			if p.Op == cq.OpNE {
				op = "<>"
			}
			wheres = append(wheres, fmt.Sprintf("%s %s %s", col, op, sqlLit(p.Const)))
		}
	}
	selects = append(selects, "p AS pr")
	out := "SELECT " + strings.Join(selects, ", ") + "\nFROM " + s.Atom.Rel
	if len(wheres) > 0 {
		out += "\nWHERE " + strings.Join(wheres, " AND ")
	}
	return out
}

func (g *gen) joinSQL(subs []plan.Node) string {
	type child struct {
		alias string
		head  []cq.Var
	}
	var froms []string
	var children []child
	for _, s := range subs {
		term, alias := g.fromClause(s)
		froms = append(froms, term)
		children = append(children, child{alias, s.Head()})
	}
	// Column sources: first child exporting each variable wins.
	src := map[cq.Var]string{}
	var outVars []cq.Var
	var conds []string
	for _, c := range children {
		for _, v := range c.head {
			if prev, ok := src[v]; ok {
				conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", prev, v, c.alias, v))
			} else {
				src[v] = c.alias
				outVars = append(outVars, v)
			}
		}
	}
	sort.Slice(outVars, func(i, j int) bool { return outVars[i] < outVars[j] })
	var selects []string
	for _, v := range outVars {
		selects = append(selects, fmt.Sprintf("%s.%s AS %s", src[v], v, v))
	}
	var prs []string
	for _, c := range children {
		prs = append(prs, c.alias+".pr")
	}
	selects = append(selects, strings.Join(prs, " * ")+" AS pr")
	out := "SELECT " + strings.Join(selects, ", ") + "\nFROM " + strings.Join(froms, "\n  CROSS JOIN ")
	if len(conds) > 0 {
		out += "\nWHERE " + strings.Join(conds, " AND ")
	}
	return out
}

func (g *gen) projectSQL(p *plan.Project) string {
	term, alias := g.fromClause(p.Child)
	var selects, groups []string
	for _, v := range p.OnTo {
		selects = append(selects, fmt.Sprintf("%s.%s AS %s", alias, v, v))
		groups = append(groups, fmt.Sprintf("%s.%s", alias, v))
	}
	// Independent-OR aggregate: 1 − ∏(1 − pr), computed as
	// 1 − EXP(SUM(LN(1 − pr))) with a clamp for pr = 1.
	agg := fmt.Sprintf("1 - EXP(SUM(LN(CASE WHEN %s.pr > 0.999999999999 THEN 1e-12 ELSE 1 - %s.pr END))) AS pr", alias, alias)
	selects = append(selects, agg)
	out := "SELECT " + strings.Join(selects, ", ") + "\nFROM " + term
	if len(groups) > 0 {
		out += "\nGROUP BY " + strings.Join(groups, ", ")
	}
	return out
}

func (g *gen) minSQL(m *plan.Min) string {
	head := m.Head()
	var froms []string
	var aliases []string
	for _, s := range m.Subs {
		term, alias := g.fromClause(s)
		froms = append(froms, term)
		aliases = append(aliases, alias)
	}
	var selects []string
	for _, v := range head {
		selects = append(selects, fmt.Sprintf("%s.%s AS %s", aliases[0], v, v))
	}
	var prs []string
	for _, a := range aliases {
		prs = append(prs, a+".pr")
	}
	selects = append(selects, "LEAST("+strings.Join(prs, ", ")+") AS pr")
	var conds []string
	for _, a := range aliases[1:] {
		for _, v := range head {
			conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", aliases[0], v, a, v))
		}
	}
	out := "SELECT " + strings.Join(selects, ", ") + "\nFROM " + strings.Join(froms, "\n  CROSS JOIN ")
	if len(conds) > 0 {
		out += "\nWHERE " + strings.Join(conds, " AND ")
	}
	return out
}

// SemiJoinReductionSQL renders Optimization 3 as SQL: one reducing
// statement per relation of the query, semi-joining it with every
// neighbor it shares variables with.
func SemiJoinReductionSQL(q *cq.Query, schema Schema) []string {
	if schema == nil {
		schema = DefaultSchema(q)
	}
	varCols := func(a cq.Atom) map[cq.Var]string {
		cols := schema(a.Rel)
		m := map[cq.Var]string{}
		for i, t := range a.Args {
			if t.IsVar() {
				if _, ok := m[t.Var]; !ok {
					m[t.Var] = cols[i]
				}
			}
		}
		return m
	}
	head := q.HeadSet()
	var out []string
	for _, a := range q.Atoms {
		av := varCols(a)
		var exists []string
		for _, b := range q.Atoms {
			if b.Rel == a.Rel {
				continue
			}
			bv := varCols(b)
			var conds []string
			for v, ac := range av {
				if head.Has(v) {
					continue
				}
				if bc, ok := bv[v]; ok {
					conds = append(conds, fmt.Sprintf("%s.%s = %s.%s", b.Rel, bc, a.Rel, ac))
				}
			}
			if len(conds) > 0 {
				sort.Strings(conds)
				exists = append(exists, fmt.Sprintf("EXISTS (SELECT 1 FROM %s WHERE %s)", b.Rel, strings.Join(conds, " AND ")))
			}
		}
		if len(exists) == 0 {
			continue
		}
		out = append(out, fmt.Sprintf("CREATE TEMP TABLE %s_reduced AS\nSELECT * FROM %s\nWHERE %s;",
			a.Rel, a.Rel, strings.Join(exists, "\n  AND ")))
	}
	return out
}

func sqlLit(s string) string {
	if isNumeric(s) {
		return s
	}
	return "'" + strings.ReplaceAll(s, "'", "''") + "'"
}

func isNumeric(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		if c == '-' && i == 0 && len(s) > 1 {
			continue
		}
		if c < '0' || c > '9' {
			return false
		}
	}
	return true
}

func indent(s string, n int) string {
	pad := strings.Repeat(" ", n)
	lines := strings.Split(s, "\n")
	for i := range lines {
		lines[i] = pad + lines[i]
	}
	return strings.Join(lines, "\n")
}
