package sqlgen

import (
	"strings"
	"testing"

	"lapushdb/internal/core"
	"lapushdb/internal/cq"
	"lapushdb/internal/plan"
)

func TestGenerateSafePlan(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y)")
	plans := core.MinimalPlans(q, nil)
	if len(plans) != 1 {
		t.Fatal("expected one plan")
	}
	sql := Generate(q, plans[0], nil)
	for _, want := range []string{"SELECT", "FROM R", "FROM S", "GROUP BY", "1 - EXP(SUM(LN("} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestGenerateMinPlanUsesLeast(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sp := core.SinglePlan(q, nil)
	sql := Generate(q, sp, nil)
	if !strings.Contains(sql, "LEAST(") {
		t.Errorf("merged plan should use LEAST:\n%s", sql)
	}
}

func TestGenerateViewsForCommonSubplans(t *testing.T) {
	// Example 29's query has shared subplans V1/V2/V3 (Figure 4c).
	q := cq.MustParse("q() :- R(x, z), S(y, u), T(z), U(u), M(x, y, z, u)")
	sp := core.SinglePlan(q, nil)
	sql := Generate(q, sp, nil)
	if !strings.Contains(sql, "WITH v1 AS (") {
		t.Errorf("expected CTEs for common subplans:\n%s", sql[:min(400, len(sql))])
	}
	if !strings.Contains(sql, "FROM v1") && !strings.Contains(sql, "v1 AS t") {
		t.Errorf("views are defined but never referenced")
	}
}

func TestGenerateConstantsAndPredicates(t *testing.T) {
	q := cq.MustParse("Q(a) :- S(s, a), PS(s, u), P(u, n), s <= 1000, n like '%red%'")
	plans := core.MinimalPlans(q, nil)
	sql := Generate(q, plans[0], nil)
	if !strings.Contains(sql, "<= 1000") {
		t.Errorf("missing numeric predicate:\n%s", sql)
	}
	if !strings.Contains(sql, "LIKE '%red%'") {
		t.Errorf("missing LIKE predicate:\n%s", sql)
	}
	q2 := cq.MustParse("q() :- R1('a', x1), R0(x1)")
	sql2 := Generate(q2, core.MinimalPlans(q2, nil)[0], nil)
	if !strings.Contains(sql2, "= 'a'") {
		t.Errorf("missing constant selection:\n%s", sql2)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	sp := core.SinglePlan(q, nil)
	a := Generate(q, sp, nil)
	b := Generate(q, sp, nil)
	if a != b {
		t.Error("generation is not deterministic")
	}
}

func TestSemiJoinReductionSQL(t *testing.T) {
	q := cq.MustParse("q() :- R(x), S(x, y), T(y)")
	stmts := SemiJoinReductionSQL(q, nil)
	if len(stmts) != 3 {
		t.Fatalf("statements = %d, want 3", len(stmts))
	}
	joined := strings.Join(stmts, "\n")
	for _, want := range []string{"R_reduced", "S_reduced", "T_reduced", "EXISTS (SELECT 1 FROM"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in:\n%s", want, joined)
		}
	}
}

func TestCustomSchemaNames(t *testing.T) {
	q := cq.MustParse("Q(a) :- Supplier(s, a), Partsupp(s, u), Part(u, n)")
	schema := func(rel string) []string {
		switch rel {
		case "Supplier":
			return []string{"s_suppkey", "s_nationkey"}
		case "Partsupp":
			return []string{"ps_suppkey", "ps_partkey"}
		case "Part":
			return []string{"p_partkey", "p_name"}
		}
		return nil
	}
	sql := Generate(q, core.MinimalPlans(q, nil)[0], schema)
	for _, want := range []string{"s_suppkey AS s", "s_nationkey AS a", "p_name AS n"} {
		if !strings.Contains(sql, want) {
			t.Errorf("missing %q in:\n%s", want, sql)
		}
	}
}

func TestScanRepeatedVariable(t *testing.T) {
	q := cq.MustParse("q() :- R(x, x)")
	p := plan.NewProject(nil, plan.NewScan(q.Atoms[0], nil))
	sql := Generate(q, p, nil)
	if !strings.Contains(sql, "c0 = c1") {
		t.Errorf("repeated variable should equate columns:\n%s", sql)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
