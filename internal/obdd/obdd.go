// Package obdd builds reduced ordered binary decision diagrams for
// monotone DNF lineage — the exact-inference representation of Olteanu
// and Huang ("Using OBDDs for efficient query evaluation on
// probabilistic databases", reference [38] of the paper) underlying the
// SPROUT system the paper compares against.
//
// An OBDD fixes a variable order and merges isomorphic subgraphs; its
// probability is one bottom-up pass. Lineages of safe (hierarchical)
// queries admit linear-size OBDDs under the right order, while hard
// lineages blow up — the same dichotomy the paper's dissociation
// side-steps by never computing exactly.
package obdd

import (
	"fmt"
	"sort"
)

// BDD is a reduced ordered binary decision diagram over the variables
// in Order. Node ids 0 and 1 are the terminals false and true.
type BDD struct {
	// Order maps level -> variable id.
	Order []int32
	nodes []node
	root  int32
	// unique is the reduction table: (level, lo, hi) -> node id.
	unique map[[3]int32]int32
}

type node struct {
	level  int32 // index into Order; terminals use level = maxLevel
	lo, hi int32
}

const (
	termFalse int32 = 0
	termTrue  int32 = 1
)

// ErrTooLarge is returned when construction exceeds the node budget.
var ErrTooLarge = fmt.Errorf("obdd: node budget exhausted")

// Size returns the number of nodes including the two terminals.
func (b *BDD) Size() int { return len(b.nodes) }

// Build constructs the reduced OBDD of the monotone DNF under the given
// variable order (every variable of the formula must appear in order).
// Construction applies OR over per-clause AND chains with memoization;
// it fails with ErrTooLarge when the node count exceeds maxNodes.
func Build(clauses [][]int32, order []int32, maxNodes int) (*BDD, error) {
	level := map[int32]int32{}
	for i, v := range order {
		level[v] = int32(i)
	}
	b := &BDD{Order: append([]int32(nil), order...), unique: map[[3]int32]int32{}}
	sentinel := int32(len(order))
	b.nodes = []node{{level: sentinel}, {level: sentinel}} // terminals
	b.root = termFalse
	maxN := maxNodes
	for _, c := range clauses {
		if len(c) == 0 {
			b.root = termTrue
			return b, nil
		}
		// Clause = AND chain, built bottom-up in descending level order.
		sorted := append([]int32(nil), c...)
		sort.Slice(sorted, func(i, j int) bool { return level[sorted[i]] > level[sorted[j]] })
		cur := termTrue
		prev := int32(-1)
		for _, v := range sorted {
			lv, ok := level[v]
			if !ok {
				return nil, fmt.Errorf("obdd: variable %d missing from order", v)
			}
			if lv == prev {
				continue // duplicate variable in clause
			}
			prev = lv
			cur = b.mk(lv, termFalse, cur)
		}
		var err error
		memo := map[[2]int32]int32{}
		b.root, err = b.or(b.root, cur, memo, maxN)
		if err != nil {
			return nil, err
		}
	}
	return b, nil
}

// mk returns the (reduced, deduplicated) node (level, lo, hi).
func (b *BDD) mk(level, lo, hi int32) int32 {
	if lo == hi {
		return lo
	}
	key := [3]int32{level, lo, hi}
	if id, ok := b.unique[key]; ok {
		return id
	}
	id := int32(len(b.nodes))
	b.nodes = append(b.nodes, node{level: level, lo: lo, hi: hi})
	b.unique[key] = id
	return id
}

// or applies the OR operation with memoization.
func (b *BDD) or(u, v int32, memo map[[2]int32]int32, maxNodes int) (int32, error) {
	if len(b.nodes) > maxNodes {
		return 0, ErrTooLarge
	}
	if u == termTrue || v == termTrue {
		return termTrue, nil
	}
	if u == termFalse {
		return v, nil
	}
	if v == termFalse {
		return u, nil
	}
	if u == v {
		return u, nil
	}
	if u > v {
		u, v = v, u
	}
	key := [2]int32{u, v}
	if r, ok := memo[key]; ok {
		return r, nil
	}
	nu, nv := b.nodes[u], b.nodes[v]
	var lvl int32
	var ulo, uhi, vlo, vhi int32
	switch {
	case nu.level == nv.level:
		lvl = nu.level
		ulo, uhi = nu.lo, nu.hi
		vlo, vhi = nv.lo, nv.hi
	case nu.level < nv.level:
		lvl = nu.level
		ulo, uhi = nu.lo, nu.hi
		vlo, vhi = v, v
	default:
		lvl = nv.level
		ulo, uhi = u, u
		vlo, vhi = nv.lo, nv.hi
	}
	lo, err := b.or(ulo, vlo, memo, maxNodes)
	if err != nil {
		return 0, err
	}
	hi, err := b.or(uhi, vhi, memo, maxNodes)
	if err != nil {
		return 0, err
	}
	r := b.mk(lvl, lo, hi)
	memo[key] = r
	return r, nil
}

// Prob computes the probability of the BDD being true under the given
// variable probabilities, in one bottom-up pass.
func (b *BDD) Prob(probs []float64) float64 {
	vals := make([]float64, len(b.nodes))
	vals[termFalse] = 0
	vals[termTrue] = 1
	// Nodes were appended after their children, so index order is a
	// valid evaluation order.
	for i := 2; i < len(b.nodes); i++ {
		n := b.nodes[i]
		p := probs[b.Order[n.level]]
		vals[i] = (1-p)*vals[n.lo] + p*vals[n.hi]
	}
	return vals[b.root]
}

// FrequencyOrder returns the formula's variables ordered by decreasing
// clause frequency — a simple but effective heuristic order.
func FrequencyOrder(clauses [][]int32) []int32 {
	count := map[int32]int{}
	var vars []int32
	for _, c := range clauses {
		seen := map[int32]bool{}
		for _, v := range c {
			if !seen[v] {
				seen[v] = true
				count[v]++
			}
			if count[v] == 1 && !containsVar(vars, v) {
				vars = append(vars, v)
			}
		}
	}
	sort.Slice(vars, func(i, j int) bool {
		if count[vars[i]] != count[vars[j]] {
			return count[vars[i]] > count[vars[j]]
		}
		return vars[i] < vars[j]
	})
	return vars
}

func containsVar(vs []int32, v int32) bool {
	for _, x := range vs {
		if x == v {
			return true
		}
	}
	return false
}
